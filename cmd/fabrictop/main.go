// Command fabrictop is a live one-screen view of a running fabricd:
// it polls GET /metrics (Prometheus text), GET /events (the
// control-plane journal, tailed incrementally with the ?since=
// cursor) and GET /trace (the tracer's flight recorder) and renders
// the fabric's vitals — the serving generation, resolve counters and
// latency quantiles, wire listener traffic, scheduler pool occupancy,
// evaluator cache effectiveness — plus the most recent control-plane
// events and a span waterfall for the most recent trace.
//
// Usage:
//
//	fabrictop -addr 127.0.0.1:7420
//	fabrictop -addr 127.0.0.1:7420 -interval 1s -events 12 -spans 12
//	fabrictop -addr 127.0.0.1:7420 -once
//	fabrictop -addr 127.0.0.1:7420 -once -json
//
// Events are tailed with the journal sequence cursor: each poll asks
// only for events past the last one seen, and a cursor gap (the ring
// overwrote entries between polls) is flagged on the events header
// as "dropped N".
//
// -once prints a single frame and exits (no screen clearing) — the
// scriptable form the CLI smoke test drives. With -json the frame is
// instead emitted as one deterministic JSON document (top-level and
// nested map keys sorted, arrays in server order) bundling the
// metrics snapshot, the event tail and the span tail — the form to
// archive or diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7420", "fabricd HTTP address (host:port or URL)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		events   = flag.Int("events", 8, "journal events to show")
		once     = flag.Bool("once", false, "print one frame and exit")
		spans    = flag.Int("spans", 8, "flight-recorder spans to fetch for the waterfall")
		jsonOut  = flag.Bool("json", false, "with -once: emit the frame as one deterministic JSON document")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()
	if *jsonOut && !*once {
		fmt.Fprintln(os.Stderr, "fabrictop: -json requires -once")
		os.Exit(2)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	p := &poller{
		client: &http.Client{Timeout: *timeout},
		base:   base, nEvents: *events, nSpans: *spans,
	}
	for {
		frame, err := p.poll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabrictop:", err)
			os.Exit(2)
		}
		if *jsonOut {
			if err := writeJSON(os.Stdout, frame); err != nil {
				fmt.Fprintln(os.Stderr, "fabrictop:", err)
				os.Exit(2)
			}
			return
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, *addr, frame, time.Now())
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// frame is one poll's worth of daemon state.
type frame struct {
	metrics map[string]float64
	events  []obs.Event
	dropped uint64 // journal entries lost to ring overwrites since the last poll
	// Trace pane, absent (traced == false) when the daemon predates
	// GET /trace.
	traced    bool
	sample    string
	spanCount uint64
	anomalies uint64
	spans     []trace.SpanRecord
}

// poller tails a daemon across polls: it remembers the last journal
// sequence seen so each /events request fetches only the delta, and
// keeps the rolling display buffer of recent events.
type poller struct {
	client          *http.Client
	base            string
	nEvents, nSpans int
	seq             uint64 // last journal sequence seen; 0 = first poll
	tail            []obs.Event
}

// poll fetches one frame from the daemon.
func (p *poller) poll() (frame, error) {
	var f frame
	resp, err := p.client.Get(p.base + "/metrics")
	if err != nil {
		return f, err
	}
	f.metrics, err = parseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		return f, fmt.Errorf("parsing /metrics: %w", err)
	}
	if err := p.pollEvents(&f); err != nil {
		return f, err
	}
	if err := p.pollTrace(&f); err != nil {
		return f, err
	}
	return f, nil
}

// pollEvents tails the journal incrementally. The first poll takes a
// plain tail; every later one uses the ?since= cursor and flags the
// gap when the ring overwrote entries between polls.
func (p *poller) pollEvents(f *frame) error {
	url := fmt.Sprintf("%s/events?n=%d", p.base, p.nEvents)
	if p.seq > 0 {
		url = fmt.Sprintf("%s/events?since=%d", p.base, p.seq)
	}
	resp, err := p.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var tail struct {
		Seq    uint64      `json:"seq"`
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		return fmt.Errorf("parsing /events: %w", err)
	}
	if p.seq > 0 && len(tail.Events) > 0 && tail.Events[0].Seq > p.seq+1 {
		f.dropped = tail.Events[0].Seq - p.seq - 1
	}
	p.tail = append(p.tail, tail.Events...)
	if len(p.tail) > p.nEvents {
		p.tail = p.tail[len(p.tail)-p.nEvents:]
	}
	if tail.Seq > p.seq {
		p.seq = tail.Seq
	}
	f.events = append([]obs.Event(nil), p.tail...)
	return nil
}

// pollTrace fetches the span tail; a 404 means the daemon has no
// tracer endpoint and the pane is skipped.
func (p *poller) pollTrace(f *frame) error {
	resp, err := p.client.Get(fmt.Sprintf("%s/trace?n=%d", p.base, p.nSpans))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	var body struct {
		Sample    string             `json:"sample"`
		Count     uint64             `json:"count"`
		Anomalies uint64             `json:"anomalies"`
		Spans     []trace.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("parsing /trace: %w", err)
	}
	f.traced = true
	f.sample, f.spanCount, f.anomalies, f.spans = body.Sample, body.Count, body.Anomalies, body.Spans
	return nil
}

// writeJSON emits the frame as one deterministic JSON document:
// top-level and nested keys ride maps (encoding/json sorts map keys),
// arrays keep server order.
func writeJSON(w io.Writer, f frame) error {
	doc := map[string]any{
		"metrics": f.metrics,
		"events":  f.events,
	}
	if f.traced {
		doc["trace"] = map[string]any{
			"sample":    f.sample,
			"count":     f.spanCount,
			"anomalies": f.anomalies,
			"spans":     f.spans,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseMetrics reads a Prometheus text exposition into a name -> value
// map; labelled samples keep their labels in the key, exactly as
// internal/obs writes them.
func parseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 1 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %v", line, err)
		}
		out[line[:cut]] = v
	}
	return out, sc.Err()
}

// render writes the one-screen view.
func render(w io.Writer, addr string, f frame, now time.Time) {
	m := f.metrics
	get := func(name string) float64 { return m[name] }
	q := func(hist, quantile string) string {
		return fmtDur(get(hist + `{quantile="` + quantile + `"}`))
	}
	fmt.Fprintf(w, "fabrictop %s — generation %.0f, %.0f swaps\n",
		addr, get("fabric_generation"), get("fabric_generation_swaps_total"))

	fmt.Fprintf(w, "fabric    resolves %s  unresolved %s  batches %s  served(gen) %s\n",
		fmtCount(get("fabric_resolves_total")), fmtCount(get("fabric_unresolved_total")),
		fmtCount(get("fabric_resolve_batches_total")), fmtCount(get("fabric_routes_served")))
	fmt.Fprintf(w, "          packed batch p50 %s  p90 %s  p99 %s  max %s\n",
		q("fabric_resolve_batch_packed_ns", "0.5"), q("fabric_resolve_batch_packed_ns", "0.9"),
		q("fabric_resolve_batch_packed_ns", "0.99"), fmtDur(get("fabric_resolve_batch_packed_ns_max")))

	fmt.Fprintf(w, "wire      conns %.0f (total %.0f)  frames %s  in %s  out %s  cuts %.0f\n",
		get("wire_conns_active"), get("wire_conns_total"),
		fmtCount(get("wire_frames_total")),
		fmtBytes(get("wire_bytes_read_total")), fmtBytes(get("wire_bytes_written_total")),
		get("wire_deadline_cuts_total"))
	fmt.Fprintf(w, "          request p50 %s  p90 %s  p99 %s  max %s\n",
		q("wire_request_ns", "0.5"), q("wire_request_ns", "0.9"),
		q("wire_request_ns", "0.99"), fmtDur(get("wire_request_ns_max")))

	fmt.Fprintf(w, "sched     jobs %.0f  free %.0f leaves  frag %.2f  placements %s  releases %s  rejections %s\n",
		get("sched_jobs"), get("sched_free_leaves"), get("sched_fragmentation"),
		fmtCount(sumLabeled(m, "sched_placements_total")),
		fmtCount(get("sched_releases_total")), fmtCount(get("sched_rejections_total")))

	fmt.Fprintf(w, "evaluate  hits %s  misses %s  coalesced %s  score p99 %s\n",
		fmtCount(get("evaluate_cache_hits_total")), fmtCount(get("evaluate_cache_misses_total")),
		fmtCount(get("evaluate_cache_coalesced_total")), q("evaluate_score_ns", "0.99"))

	if f.traced {
		fmt.Fprintf(w, "trace     sample %s  spans %d  anomalies %d\n",
			f.sample, f.spanCount, f.anomalies)
		renderWaterfall(w, f.spans)
	}

	if f.dropped > 0 {
		fmt.Fprintf(w, "events    (%d most recent, dropped %d)\n", len(f.events), f.dropped)
	} else {
		fmt.Fprintf(w, "events    (%d most recent)\n", len(f.events))
	}
	for _, ev := range f.events {
		fmt.Fprintf(w, "  #%-4d %s  %-16s %s\n",
			ev.Seq, ev.Time.Format("15:04:05"), ev.Type, eventFields(ev))
	}
}

// renderWaterfall draws the most recent trace in the span tail as an
// offset/duration waterfall: every span of that trace, start order,
// bar position scaled to the trace's time window.
func renderWaterfall(w io.Writer, spans []trace.SpanRecord) {
	if len(spans) == 0 {
		return
	}
	id := spans[len(spans)-1].TraceID
	var tr []trace.SpanRecord
	for _, s := range spans {
		if s.TraceID == id {
			tr = append(tr, s)
		}
	}
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].Start < tr[j].Start })
	lo, hi := tr[0].Start, tr[0].Start+tr[0].Dur
	for _, s := range tr {
		if s.Start < lo {
			lo = s.Start
		}
		if end := s.Start + s.Dur; end > hi {
			hi = end
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	const cols = 32
	fmt.Fprintf(w, "  trace %s… (%d spans, %s)\n", id[:8], len(tr), fmtDur(float64(span)))
	for _, s := range tr {
		from := int(int64(cols) * (s.Start - lo) / span)
		width := int(int64(cols) * s.Dur / span)
		if width < 1 {
			width = 1
		}
		if from+width > cols {
			width = cols - from
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("#", width)
		fmt.Fprintf(w, "    %-28s |%-*s| %s\n", s.Name, cols, bar, fmtDur(float64(s.Dur)))
	}
}

// sumLabeled totals every sample of a labelled metric family (e.g.
// sched_placements_total across policies).
func sumLabeled(m map[string]float64, base string) float64 {
	total := m[base]
	for name, v := range m {
		if strings.HasPrefix(name, base+"{") {
			total += v
		}
	}
	return total
}

// eventFields renders an event's payload as "k=v" pairs in sorted key
// order, with the duration first when measured.
func eventFields(ev obs.Event) string {
	var sb strings.Builder
	if ev.Dur > 0 {
		fmt.Fprintf(&sb, "dur=%s", ev.Dur.Round(time.Microsecond))
	}
	keys := make([]string, 0, len(ev.Fields))
	for k := range ev.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", k, ev.Fields[k])
	}
	return sb.String()
}

// fmtCount renders a sample count compactly (12.3k, 4.5M).
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// fmtDur renders a nanosecond sample as a rounded duration; zero (no
// samples yet) renders as "-".
func fmtDur(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}
