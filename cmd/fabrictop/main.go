// Command fabrictop is a live one-screen view of a running fabricd:
// it polls GET /metrics (Prometheus text) and GET /events (the
// control-plane journal tail) and renders the fabric's vitals — the
// serving generation, resolve counters and latency quantiles, wire
// listener traffic, scheduler pool occupancy, evaluator cache
// effectiveness — plus the most recent control-plane events.
//
// Usage:
//
//	fabrictop -addr 127.0.0.1:7420
//	fabrictop -addr 127.0.0.1:7420 -interval 1s -events 12
//	fabrictop -addr 127.0.0.1:7420 -once
//
// -once prints a single frame and exits (no screen clearing) — the
// scriptable form the CLI smoke test drives.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7420", "fabricd HTTP address (host:port or URL)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		events   = flag.Int("events", 8, "journal events to show")
		once     = flag.Bool("once", false, "print one frame and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: *timeout}
	for {
		frame, err := poll(client, base, *events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabrictop:", err)
			os.Exit(2)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, *addr, frame, time.Now())
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// frame is one poll's worth of daemon state.
type frame struct {
	metrics map[string]float64
	events  []obs.Event
}

// poll fetches one frame from the daemon.
func poll(client *http.Client, base string, nEvents int) (frame, error) {
	var f frame
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return f, err
	}
	f.metrics, err = parseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		return f, fmt.Errorf("parsing /metrics: %w", err)
	}
	resp, err = client.Get(fmt.Sprintf("%s/events?n=%d", base, nEvents))
	if err != nil {
		return f, err
	}
	defer resp.Body.Close()
	var tail struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		return f, fmt.Errorf("parsing /events: %w", err)
	}
	f.events = tail.Events
	return f, nil
}

// parseMetrics reads a Prometheus text exposition into a name -> value
// map; labelled samples keep their labels in the key, exactly as
// internal/obs writes them.
func parseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 1 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %v", line, err)
		}
		out[line[:cut]] = v
	}
	return out, sc.Err()
}

// render writes the one-screen view.
func render(w io.Writer, addr string, f frame, now time.Time) {
	m := f.metrics
	get := func(name string) float64 { return m[name] }
	q := func(hist, quantile string) string {
		return fmtDur(get(hist + `{quantile="` + quantile + `"}`))
	}
	fmt.Fprintf(w, "fabrictop %s — generation %.0f, %.0f swaps\n",
		addr, get("fabric_generation"), get("fabric_generation_swaps_total"))

	fmt.Fprintf(w, "fabric    resolves %s  unresolved %s  batches %s  served(gen) %s\n",
		fmtCount(get("fabric_resolves_total")), fmtCount(get("fabric_unresolved_total")),
		fmtCount(get("fabric_resolve_batches_total")), fmtCount(get("fabric_routes_served")))
	fmt.Fprintf(w, "          packed batch p50 %s  p90 %s  p99 %s  max %s\n",
		q("fabric_resolve_batch_packed_ns", "0.5"), q("fabric_resolve_batch_packed_ns", "0.9"),
		q("fabric_resolve_batch_packed_ns", "0.99"), fmtDur(get("fabric_resolve_batch_packed_ns_max")))

	fmt.Fprintf(w, "wire      conns %.0f (total %.0f)  frames %s  in %s  out %s  cuts %.0f\n",
		get("wire_conns_active"), get("wire_conns_total"),
		fmtCount(get("wire_frames_total")),
		fmtBytes(get("wire_bytes_read_total")), fmtBytes(get("wire_bytes_written_total")),
		get("wire_deadline_cuts_total"))
	fmt.Fprintf(w, "          request p50 %s  p90 %s  p99 %s  max %s\n",
		q("wire_request_ns", "0.5"), q("wire_request_ns", "0.9"),
		q("wire_request_ns", "0.99"), fmtDur(get("wire_request_ns_max")))

	fmt.Fprintf(w, "sched     jobs %.0f  free %.0f leaves  frag %.2f  placements %s  releases %s  rejections %s\n",
		get("sched_jobs"), get("sched_free_leaves"), get("sched_fragmentation"),
		fmtCount(sumLabeled(m, "sched_placements_total")),
		fmtCount(get("sched_releases_total")), fmtCount(get("sched_rejections_total")))

	fmt.Fprintf(w, "evaluate  hits %s  misses %s  coalesced %s  score p99 %s\n",
		fmtCount(get("evaluate_cache_hits_total")), fmtCount(get("evaluate_cache_misses_total")),
		fmtCount(get("evaluate_cache_coalesced_total")), q("evaluate_score_ns", "0.99"))

	fmt.Fprintf(w, "events    (%d most recent)\n", len(f.events))
	for _, ev := range f.events {
		fmt.Fprintf(w, "  #%-4d %s  %-16s %s\n",
			ev.Seq, ev.Time.Format("15:04:05"), ev.Type, eventFields(ev))
	}
}

// sumLabeled totals every sample of a labelled metric family (e.g.
// sched_placements_total across policies).
func sumLabeled(m map[string]float64, base string) float64 {
	total := m[base]
	for name, v := range m {
		if strings.HasPrefix(name, base+"{") {
			total += v
		}
	}
	return total
}

// eventFields renders an event's payload as "k=v" pairs in sorted key
// order, with the duration first when measured.
func eventFields(ev obs.Event) string {
	var sb strings.Builder
	if ev.Dur > 0 {
		fmt.Fprintf(&sb, "dur=%s", ev.Dur.Round(time.Microsecond))
	}
	keys := make([]string, 0, len(ev.Fields))
	for k := range ev.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", k, ev.Fields[k])
	}
	return sb.String()
}

// fmtCount renders a sample count compactly (12.3k, 4.5M).
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// fmtDur renders a nanosecond sample as a rounded duration; zero (no
// samples yet) renders as "-".
func fmtDur(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}
