package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// testDaemon serves canned /metrics and /events the way fabricd does:
// a real obs.Registry exposition, a real journal tail.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("fabric_resolves_total", "", 1).Add(1_234_567)
	reg.Counter("fabric_unresolved_total", "", 1).Add(3)
	reg.Counter("fabric_resolve_batches_total", "", 1).Add(42)
	reg.Gauge("fabric_generation", "").Set(7)
	reg.Counter("fabric_generation_swaps_total", "", 1).Add(7)
	reg.GaugeFunc("fabric_routes_served", "", func() float64 { return 900 })
	h := reg.Histogram("fabric_resolve_batch_packed_ns", "")
	for v := int64(1000); v <= 100_000; v += 1000 {
		h.Observe(v)
	}
	reg.Gauge("wire_conns_active", "").Set(2)
	reg.Counter("wire_conns_total", "", 1).Add(5)
	reg.Counter("wire_bytes_read_total", "", 1).Add(3 << 20)
	reg.Counter(`sched_placements_total{policy="linear"}`, "", 1).Add(11)
	reg.Counter(`sched_placements_total{policy="random"}`, "", 1).Add(4)
	reg.Gauge("sched_jobs", "").Set(3)
	reg.Gauge("sched_fragmentation", "").Set(0.25)
	jnl := obs.NewJournal(16, nil)
	jnl.Record("generation.swap", 2*time.Millisecond, map[string]any{"reason": "optimize", "seq": uint64(7)})
	jnl.Record("job.submit", time.Millisecond, map[string]any{"job": uint64(1), "n": 8})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"seq":2,"events":[`))
		// Reuse encoding from the journal's own Event JSON form.
		for i, ev := range jnl.Tail(0) {
			if i > 0 {
				w.Write([]byte(","))
			}
			b, err := json.Marshal(ev)
			if err != nil {
				t.Errorf("marshal event: %v", err)
			}
			w.Write(b)
		}
		w.Write([]byte(`]}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPollAndRender(t *testing.T) {
	srv := testDaemon(t)
	p := &poller{client: srv.Client(), base: srv.URL, nEvents: 8, nSpans: 8}
	f, err := p.poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.metrics["fabric_resolves_total"]; got != 1_234_567 {
		t.Fatalf("fabric_resolves_total = %v", got)
	}
	if got := f.metrics[`sched_placements_total{policy="linear"}`]; got != 11 {
		t.Fatalf("labelled placements = %v", got)
	}
	if len(f.events) != 2 || f.events[0].Type != "generation.swap" {
		t.Fatalf("events = %+v", f.events)
	}
	var sb strings.Builder
	render(&sb, "test:7420", f, time.Now())
	out := sb.String()
	for _, want := range []string{
		"generation 7",
		"resolves 1.2M",
		"placements 15", // 11 + 4 across policies
		"frag 0.25",
		"generation.swap",
		"reason=optimize",
		"job.submit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// One-screen discipline: a frame stays comfortably under 25 lines.
	if lines := strings.Count(out, "\n"); lines > 24 {
		t.Errorf("frame is %d lines", lines)
	}
}

func TestParseMetrics(t *testing.T) {
	in := `# HELP a_total help
# TYPE a_total counter
a_total 5
b{quantile="0.5"} 1200
c -2.5
`
	m, err := parseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m["a_total"] != 5 || m[`b{quantile="0.5"}`] != 1200 || m["c"] != -2.5 {
		t.Fatalf("parsed %v", m)
	}
	if _, err := parseMetrics(strings.NewReader("garbage")); err == nil {
		t.Fatal("malformed exposition parsed")
	}
}

func TestFormatters(t *testing.T) {
	if got := fmtCount(1_500_000); got != "1.5M" {
		t.Errorf("fmtCount = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MiB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtDur(0); got != "-" {
		t.Errorf("fmtDur(0) = %q", got)
	}
	if got := fmtDur(2500); got != "2.5µs" {
		t.Errorf("fmtDur = %q", got)
	}
}

// tracedTestDaemon serves /metrics, a cursorable /events and /trace
// the way a tracing fabricd does, from live obs/trace instances.
func tracedTestDaemon(t *testing.T, jnl *obs.Journal, tr *trace.Tracer) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Gauge("fabric_generation", "").Set(1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		var evs []obs.Event
		if v := r.URL.Query().Get("since"); v != "" {
			since, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				t.Errorf("bad since %q", v)
			}
			evs = jnl.Since(since)
		} else {
			evs = jnl.Tail(8)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"seq": jnl.Seq(), "events": evs})
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"sample": "1/1", "count": tr.SpanCount(), "anomalies": tr.Anomalies(),
			"names": tr.Names(), "spans": tr.Spans(8),
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestIncrementalTailAndGapFlag: the poller fetches only the delta on
// repeat polls, and a ring overrun between polls is surfaced as a
// dropped-events count.
func TestIncrementalTailAndGapFlag(t *testing.T) {
	jnl := obs.NewJournal(4, nil)
	tr := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 16})
	srv := tracedTestDaemon(t, jnl, tr)
	p := &poller{client: srv.Client(), base: srv.URL, nEvents: 8, nSpans: 8}

	jnl.Record("a", 0, nil)
	jnl.Record("b", 0, nil)
	f, err := p.poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.events) != 2 || f.dropped != 0 {
		t.Fatalf("first poll: %d events, dropped %d", len(f.events), f.dropped)
	}

	// One new event: the cursor fetches exactly it.
	jnl.Record("c", 0, nil)
	f, err = p.poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.events) != 3 || f.events[2].Type != "c" || f.dropped != 0 {
		t.Fatalf("delta poll: %+v dropped %d", f.events, f.dropped)
	}

	// Overrun the capacity-4 ring: 6 more events, the cursor's next
	// fetch starts past seq 4 — two entries are gone and flagged.
	for _, typ := range []string{"d", "e", "f", "g", "h", "i"} {
		jnl.Record(typ, 0, nil)
	}
	f, err = p.poll()
	if err != nil {
		t.Fatal(err)
	}
	if f.dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (ring overran the cursor)", f.dropped)
	}
	if len(f.events) != 7 { // 3 buffered + 4 surviving
		t.Fatalf("rolling tail has %d events", len(f.events))
	}
}

// TestWaterfallAndJSON: the trace pane renders the latest trace as a
// waterfall, and -once -json emits one deterministic document.
func TestWaterfallAndJSON(t *testing.T) {
	jnl := obs.NewJournal(8, nil)
	clk := int64(0)
	tr := trace.New(trace.Config{
		SampleNum: 1, SampleDen: 1, RecorderCap: 16,
		Clock: func() int64 { clk += 1000; return clk },
	})
	root := tr.Root(1, 1)
	req := tr.StartSpan(root, "wire.request")
	child := tr.StartChild(req.Context(), "wire.resolve")
	child.End()
	req.End()
	jnl.Record("generation.swap", 0, map[string]any{"seq": uint64(1)})

	srv := tracedTestDaemon(t, jnl, tr)
	p := &poller{client: srv.Client(), base: srv.URL, nEvents: 8, nSpans: 8}
	f, err := p.poll()
	if err != nil {
		t.Fatal(err)
	}
	if !f.traced || len(f.spans) != 2 {
		t.Fatalf("traced %v, %d spans", f.traced, len(f.spans))
	}

	var sb strings.Builder
	render(&sb, "test:7420", f, time.Now())
	out := sb.String()
	for _, want := range []string{"trace     sample 1/1", "wire.request", "wire.resolve", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}

	var a, b strings.Builder
	if err := writeJSON(&a, f); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(&b, f); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("writeJSON is not deterministic for the same frame")
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(a.String()), &doc); err != nil {
		t.Fatalf("json doc does not parse: %v", err)
	}
	for _, key := range []string{"metrics", "events", "trace"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("json doc lacks %q", key)
		}
	}
	spans := doc["trace"].(map[string]any)["spans"].([]any)
	if len(spans) != 2 {
		t.Errorf("json doc has %d spans", len(spans))
	}
}
