package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testDaemon serves canned /metrics and /events the way fabricd does:
// a real obs.Registry exposition, a real journal tail.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("fabric_resolves_total", "", 1).Add(1_234_567)
	reg.Counter("fabric_unresolved_total", "", 1).Add(3)
	reg.Counter("fabric_resolve_batches_total", "", 1).Add(42)
	reg.Gauge("fabric_generation", "").Set(7)
	reg.Counter("fabric_generation_swaps_total", "", 1).Add(7)
	reg.GaugeFunc("fabric_routes_served", "", func() float64 { return 900 })
	h := reg.Histogram("fabric_resolve_batch_packed_ns", "")
	for v := int64(1000); v <= 100_000; v += 1000 {
		h.Observe(v)
	}
	reg.Gauge("wire_conns_active", "").Set(2)
	reg.Counter("wire_conns_total", "", 1).Add(5)
	reg.Counter("wire_bytes_read_total", "", 1).Add(3 << 20)
	reg.Counter(`sched_placements_total{policy="linear"}`, "", 1).Add(11)
	reg.Counter(`sched_placements_total{policy="random"}`, "", 1).Add(4)
	reg.Gauge("sched_jobs", "").Set(3)
	reg.Gauge("sched_fragmentation", "").Set(0.25)
	jnl := obs.NewJournal(16, nil)
	jnl.Record("generation.swap", 2*time.Millisecond, map[string]any{"reason": "optimize", "seq": uint64(7)})
	jnl.Record("job.submit", time.Millisecond, map[string]any{"job": uint64(1), "n": 8})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"seq":2,"events":[`))
		// Reuse encoding from the journal's own Event JSON form.
		for i, ev := range jnl.Tail(0) {
			if i > 0 {
				w.Write([]byte(","))
			}
			b, err := json.Marshal(ev)
			if err != nil {
				t.Errorf("marshal event: %v", err)
			}
			w.Write(b)
		}
		w.Write([]byte(`]}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPollAndRender(t *testing.T) {
	srv := testDaemon(t)
	f, err := poll(srv.Client(), srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.metrics["fabric_resolves_total"]; got != 1_234_567 {
		t.Fatalf("fabric_resolves_total = %v", got)
	}
	if got := f.metrics[`sched_placements_total{policy="linear"}`]; got != 11 {
		t.Fatalf("labelled placements = %v", got)
	}
	if len(f.events) != 2 || f.events[0].Type != "generation.swap" {
		t.Fatalf("events = %+v", f.events)
	}
	var sb strings.Builder
	render(&sb, "test:7420", f, time.Now())
	out := sb.String()
	for _, want := range []string{
		"generation 7",
		"resolves 1.2M",
		"placements 15", // 11 + 4 across policies
		"frag 0.25",
		"generation.swap",
		"reason=optimize",
		"job.submit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// One-screen discipline: a frame stays comfortably under 25 lines.
	if lines := strings.Count(out, "\n"); lines > 24 {
		t.Errorf("frame is %d lines", lines)
	}
}

func TestParseMetrics(t *testing.T) {
	in := `# HELP a_total help
# TYPE a_total counter
a_total 5
b{quantile="0.5"} 1200
c -2.5
`
	m, err := parseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m["a_total"] != 5 || m[`b{quantile="0.5"}`] != 1200 || m["c"] != -2.5 {
		t.Fatalf("parsed %v", m)
	}
	if _, err := parseMetrics(strings.NewReader("garbage")); err == nil {
		t.Fatal("malformed exposition parsed")
	}
}

func TestFormatters(t *testing.T) {
	if got := fmtCount(1_500_000); got != "1.5M" {
		t.Errorf("fmtCount = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MiB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtDur(0); got != "-" {
		t.Errorf("fmtDur(0) = %q", got)
	}
	if got := fmtDur(2500); got != "2.5µs" {
		t.Errorf("fmtDur = %q", got)
	}
}
