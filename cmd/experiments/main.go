// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index):
//
//	experiments -table1             Table I label schema
//	experiments -fig2a -fig2b       Fig. 2: WRF/CG slimming sweeps
//	experiments -fig3               Fig. 3: CG traffic decomposition
//	experiments -fig4a -fig4b       Fig. 4: routes per NCA
//	experiments -fig5a -fig5b       Fig. 5: r-NCA-u/d boxplots
//	experiments -faults             degraded-topology sweep (failed links)
//	experiments -shift              shifting-traffic sweep (online re-optimization)
//	experiments -placement          multi-tenant placement churn sweep
//	experiments -churn              churn convergence sweep (incremental vs full re-optimization)
//	experiments -fidelity           analytic bound vs venus simulation (rank agreement)
//	experiments -all                everything above
//
// By default the fast analytic engine is used; -engine simulated runs
// the full trace-replay pipeline (minutes with paper message sizes;
// use -bytes to scale down). -csv switches the sweep output format.
//
// Sweeps fan their independent (topology, algorithm, pattern, seed)
// cells out over -parallel workers (default: all CPUs) and reuse
// routing tables across figures through a process-wide cache;
// -progress reports cell completion on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/xgft"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table I")
		fig2a    = flag.Bool("fig2a", false, "Fig. 2a (WRF)")
		fig2b    = flag.Bool("fig2b", false, "Fig. 2b (CG)")
		fig3     = flag.Bool("fig3", false, "Fig. 3 (CG pattern)")
		fig4a    = flag.Bool("fig4a", false, "Fig. 4a (census, w2=16)")
		fig4b    = flag.Bool("fig4b", false, "Fig. 4b (census, w2=10)")
		fig5a    = flag.Bool("fig5a", false, "Fig. 5a (WRF boxplots)")
		fig5b    = flag.Bool("fig5b", false, "Fig. 5b (CG boxplots)")
		ext      = flag.Bool("ext", false, "extension: three-level XGFT generalization sweep")
		faults   = flag.Bool("faults", false, "extension: degraded-topology sweep (failed top-level links)")
		shift    = flag.Bool("shift", false, "extension: shifting-traffic sweep (static d-mod-k vs online re-optimization)")
		place    = flag.Bool("placement", false, "extension: multi-tenant placement churn sweep (scheduler policies)")
		churn    = flag.Bool("churn", false, "extension: churn convergence sweep (incremental vs full re-optimization)")
		fidelity = flag.Bool("fidelity", false, "extension: analytic bound vs venus simulation fidelity sweep")
		ablate   = flag.Bool("ablation", false, "ablation: balanced vs uniform relabeling")
		adaptive = flag.Bool("adaptive", false, "extension: adaptive vs oblivious routing")
		engine   = flag.String("engine", "analytic", "analytic or simulated")
		seeds    = flag.Int("seeds", 40, "seeds per boxplot (paper: 40-60)")
		bytes    = flag.Int64("bytes", 0, "message size override (0 = paper sizes)")
		par      = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent sweep cells")
		progress = flag.Bool("progress", false, "report sweep-cell completion on stderr")
		csv      = flag.Bool("csv", false, "CSV output for sweeps")
	)
	flag.Parse()

	opt := experiments.Options{
		Engine:       experiments.Engine(*engine),
		Seeds:        *seeds,
		MessageBytes: *bytes,
		Parallelism:  *par,
	}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	any := false
	fail := func(err error) {
		if *progress {
			// Terminate a partially-written progress line so the
			// error starts on its own line.
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	section := func(name string) func() {
		any = true
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		return func() { fmt.Printf("    [%.2fs]\n\n", time.Since(start).Seconds()) }
	}

	if *all || *table1 {
		done := section("Table I")
		for _, spec := range []string{"2;16,16;1,16", "2;16,16;1,10", "3;4,4,4;1,2,2"} {
			tp, err := xgft.Parse(spec)
			if err != nil {
				fail(err)
			}
			experiments.WriteTable1(os.Stdout, tp, experiments.Table1(tp))
			fmt.Println()
		}
		done()
	}
	if *all || *fig2a {
		done := section("Figure 2a — WRF-256")
		app := experiments.WRFApp()
		rows, err := experiments.Figure2(app, opt)
		if err != nil {
			fail(err)
		}
		if *csv {
			experiments.WriteFigure2CSV(os.Stdout, rows)
		} else {
			experiments.WriteFigure2(os.Stdout, app, rows)
		}
		done()
	}
	if *all || *fig2b {
		done := section("Figure 2b — CG.D-128")
		app := experiments.CGApp()
		rows, err := experiments.Figure2(app, opt)
		if err != nil {
			fail(err)
		}
		if *csv {
			experiments.WriteFigure2CSV(os.Stdout, rows)
		} else {
			experiments.WriteFigure2(os.Stdout, app, rows)
		}
		done()
	}
	if *all || *fig3 {
		done := section("Figure 3 — CG.D-128 traffic")
		res, err := experiments.Figure3(opt)
		if err != nil {
			fail(err)
		}
		experiments.WriteFigure3(os.Stdout, res)
		done()
	}
	if *all || *fig4a {
		done := section("Figure 4a — routes per NCA, w2=16")
		res, err := experiments.Figure4(16, opt)
		if err != nil {
			fail(err)
		}
		experiments.WriteFigure4(os.Stdout, res)
		done()
	}
	if *all || *fig4b {
		done := section("Figure 4b — routes per NCA, w2=10")
		res, err := experiments.Figure4(10, opt)
		if err != nil {
			fail(err)
		}
		experiments.WriteFigure4(os.Stdout, res)
		done()
	}
	if *all || *fig5a {
		done := section("Figure 5a — WRF-256 boxplots")
		app := experiments.WRFApp()
		rows, err := experiments.Figure5(app, opt)
		if err != nil {
			fail(err)
		}
		if *csv {
			experiments.WriteFigure5CSV(os.Stdout, rows)
		} else {
			experiments.WriteFigure5(os.Stdout, app, rows)
		}
		done()
	}
	if *all || *fig5b {
		done := section("Figure 5b — CG.D-128 boxplots")
		app := experiments.CGApp()
		rows, err := experiments.Figure5(app, opt)
		if err != nil {
			fail(err)
		}
		if *csv {
			experiments.WriteFigure5CSV(os.Stdout, rows)
		} else {
			experiments.WriteFigure5(os.Stdout, app, rows)
		}
		done()
	}
	if *all || *ext {
		done := section("Extension — three-level XGFT sweep")
		rows, err := experiments.DeepTreeSweep(opt)
		if err != nil {
			fail(err)
		}
		experiments.WriteDeepTreeSweep(os.Stdout, rows)
		done()
	}
	if *all || *faults {
		if opt.Engine == experiments.Simulated && !*faults {
			// The fault sweep is analytic-only; during -all with a
			// simulated engine, skip it visibly rather than abort.
			fmt.Println("=== Extension — degraded topology — skipped (analytic engine only) ===")
			fmt.Println()
		} else {
			done := section("Extension — degraded topology (failed top-level links)")
			for _, app := range []*experiments.App{experiments.WRFApp(), experiments.CGApp()} {
				rows, err := experiments.FaultSweep(app, opt)
				if err != nil {
					fail(err)
				}
				experiments.WriteFaultSweep(os.Stdout, app, rows)
				fmt.Println()
			}
			done()
		}
	}
	if *all || *shift {
		if opt.Engine == experiments.Simulated && !*shift {
			// Analytic-only, like the fault sweep: during -all with a
			// simulated engine, skip it visibly rather than abort.
			fmt.Println("=== Extension — shifting traffic — skipped (analytic engine only) ===")
			fmt.Println()
		} else {
			done := section("Extension — shifting traffic (online re-optimization)")
			rows, err := experiments.ShiftSweep(opt)
			if err != nil {
				fail(err)
			}
			experiments.WriteShiftSweep(os.Stdout, rows)
			done()
		}
	}
	if *all || *place {
		if opt.Engine == experiments.Simulated && !*place {
			// Analytic-only, like the fault sweep: during -all with a
			// simulated engine, skip it visibly rather than abort.
			fmt.Println("=== Extension — placement churn — skipped (analytic engine only) ===")
			fmt.Println()
		} else {
			done := section("Extension — placement churn (multi-tenant scheduler policies)")
			rows, err := experiments.PlacementSweep(opt)
			if err != nil {
				fail(err)
			}
			experiments.WritePlacementSweep(os.Stdout, rows)
			done()
		}
	}
	if *all || *churn {
		if opt.Engine == experiments.Simulated && !*churn {
			// Analytic-only, like the fault sweep: during -all with a
			// simulated engine, skip it visibly rather than abort.
			fmt.Println("=== Extension — churn convergence — skipped (analytic engine only) ===")
			fmt.Println()
		} else {
			done := section("Extension — churn convergence (incremental vs full re-optimization)")
			rows, err := experiments.ChurnSweep(opt)
			if err != nil {
				fail(err)
			}
			experiments.WriteChurnSweep(os.Stdout, rows)
			done()
		}
	}
	if *all || *fidelity {
		if opt.Engine == experiments.Simulated && !*fidelity {
			// The sweep pairs its own analytic and venus backends;
			// during -all with a simulated engine, skip it visibly.
			fmt.Println("=== Extension — analytic vs simulation fidelity — skipped (manages its own backends) ===")
			fmt.Println()
		} else {
			done := section("Extension — analytic vs simulation fidelity")
			rows, err := experiments.FidelitySweep(opt)
			if err != nil {
				fail(err)
			}
			experiments.WriteFidelitySweep(os.Stdout, rows)
			done()
		}
	}
	if *all || *ablate {
		done := section("Ablation — balanced vs uniform relabeling")
		for _, w2 := range []int{10, 6} {
			row, err := experiments.BalanceAblation(w2, opt)
			if err != nil {
				fail(err)
			}
			experiments.WriteBalanceAblation(os.Stdout, row)
			fmt.Println()
		}
		done()
	}
	if *all || *adaptive {
		done := section("Extension — adaptive vs oblivious")
		rows, err := experiments.AdaptiveComparison(opt)
		if err != nil {
			fail(err)
		}
		experiments.WriteAdaptiveComparison(os.Stdout, rows)
		done()
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	if *progress {
		cache := experiments.SharedTableCache()
		hits, misses := cache.Stats()
		algoHits, algoMisses := cache.MemoStats()
		fmt.Fprintf(os.Stderr, "routing-table cache: %d hits, %d misses, %d tables retained; algorithm memo: %d hits, %d misses\n",
			hits, misses, cache.Len(), algoHits, algoMisses)
	}
}
