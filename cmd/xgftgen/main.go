// Command xgftgen describes an XGFT topology: the Table I label
// schema, node and link counts per level, and the Eq. (1) switch
// count.
//
// Usage:
//
//	xgftgen -xgft "2;16,16;1,10"
//	xgftgen -kary 16 -n 2
//	xgftgen -xgft "3;4,4,4;1,2,2" -labels 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/xgft"
)

func main() {
	var (
		spec   = flag.String("xgft", "", `topology as "h;m1,..,mh;w1,..,wh" (e.g. "2;16,16;1,10")`)
		kary   = flag.Int("kary", 0, "build a k-ary n-tree with this k (with -n)")
		levels = flag.Int("n", 0, "number of levels for -kary")
		labels = flag.Int("labels", -1, "also print every node label of this level")
	)
	flag.Parse()

	tp, err := buildTopology(*spec, *kary, *levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xgftgen:", err)
		os.Exit(2)
	}

	experiments.WriteTable1(os.Stdout, tp, experiments.Table1(tp))
	fmt.Printf("leaves: %d   slimmed: %v", tp.Leaves(), tp.IsSlimmed())
	if k, ok := tp.IsKaryNTree(); ok {
		fmt.Printf("   (%d-ary %d-tree)", k, tp.Height())
	}
	fmt.Println()

	if *labels >= 0 {
		if *labels > tp.Height() {
			fmt.Fprintf(os.Stderr, "xgftgen: level %d out of range [0,%d]\n", *labels, tp.Height())
			os.Exit(2)
		}
		fmt.Printf("labels of level %d:\n", *labels)
		for idx := 0; idx < tp.NodesAt(*labels); idx++ {
			fmt.Printf("  %4d  %s\n", idx, tp.FormatLabel(*labels, idx))
		}
	}
}

func buildTopology(spec string, kary, levels int) (*xgft.Topology, error) {
	switch {
	case spec != "" && kary != 0:
		return nil, fmt.Errorf("give either -xgft or -kary, not both")
	case spec != "":
		return xgft.Parse(spec)
	case kary != 0:
		if levels <= 0 {
			return nil, fmt.Errorf("-kary needs -n")
		}
		return xgft.NewKaryNTree(kary, levels)
	default:
		return nil, fmt.Errorf("give -xgft or -kary (see -help)")
	}
}
