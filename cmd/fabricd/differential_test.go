package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/wire"
	"repro/internal/xgft"
)

// startWire serves the binary protocol for a fabric on a loopback
// port and returns a connected client.
func startWire(t *testing.T, f *fabric.Fabric) *wire.Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Resolver: f}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := wire.Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// httpResolve resolves one pair over the HTTP front door, returning
// the up-ports, serving generation and whether the pair resolved
// (404 = unreachable).
func httpResolve(t *testing.T, base string, src, dst int) (up []int, generation uint64, ok bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/resolve?src=%d&dst=%d", base, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Up         []int   `json:"up"`
		Generation uint64  `json:"generation"`
		Error      *string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET /resolve?src=%d&dst=%d: %v", src, dst, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body.Up, body.Generation, true
	case http.StatusNotFound:
		return nil, 0, false
	default:
		t.Fatalf("GET /resolve?src=%d&dst=%d: status %d", src, dst, resp.StatusCode)
		return nil, 0, false
	}
}

// diffPairs builds a keyed batch mixing normal, self and (for the
// binary path) out-of-range pairs.
func diffPairs(n, count int, key uint64, outOfRange bool) [][2]int {
	st := hashutil.NewStream(0xd1ff, key)
	pairs := make([][2]int, count)
	for i := range pairs {
		switch {
		case outOfRange && st.Intn(16) == 0:
			pairs[i] = [2]int{n + st.Intn(9), st.Intn(n)}
		case st.Intn(16) == 1:
			s := st.Intn(n)
			pairs[i] = [2]int{s, s}
		default:
			pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
		}
	}
	return pairs
}

// TestDifferentialResolvePaths proves the three resolve paths serve
// the same table: for keyed-random batches, the binary protocol's
// packed words are byte-identical to in-process ResolveBatchPacked,
// its decoded routes equal in-process ResolveBatch, and the HTTP
// /resolve answers agree pair by pair — on the healthy generation
// and again on a degraded one with real unreachable pairs.
func TestDifferentialResolvePaths(t *testing.T) {
	d, err := build(options{spec: "2;8,8;1,4", algo: "d-mod-k", policy: "linear", evaluator: "analytic", seed: 1, telemetry: true, journalCap: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := d.f
	wc := startWire(t, f)
	hs := httptest.NewServer(newMux(d, 0, false))
	defer hs.Close()
	n := f.Topology().Leaves()

	check := func(t *testing.T, key uint64) {
		t.Helper()
		gen := f.Generation()
		pairs := diffPairs(n, 512, key, true)

		// Binary vs in-process: packed words byte-identical.
		wantPacked := make([]uint64, len(pairs))
		gen.ResolveBatchPacked(pairs, wantPacked)
		gotGen, gotPacked, err := wc.ResolveBatchPacked(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if gotGen != gen.Seq() {
			t.Fatalf("wire generation %d, in-process %d", gotGen, gen.Seq())
		}
		for i := range pairs {
			if gotPacked[i] != wantPacked[i] {
				t.Fatalf("pair %v: wire packed %#x, in-process %#x", pairs[i], gotPacked[i], wantPacked[i])
			}
		}

		// Binary decoded vs in-process materialized routes.
		wantRoutes := make([]xgft.Route, len(pairs))
		wantResolved := gen.ResolveBatch(pairs, wantRoutes)
		gotRoutes := make([]xgft.Route, len(pairs))
		_, gotResolved, err := wc.ResolveBatch(pairs, gotRoutes)
		if err != nil {
			t.Fatal(err)
		}
		if gotResolved != wantResolved {
			t.Fatalf("wire resolved %d, in-process %d", gotResolved, wantResolved)
		}
		for i := range pairs {
			if fmt.Sprint(gotRoutes[i]) != fmt.Sprint(wantRoutes[i]) {
				t.Fatalf("pair %v: wire route %v, in-process %v", pairs[i], gotRoutes[i], wantRoutes[i])
			}
		}

		// HTTP vs in-process, on an in-range subset (the HTTP handler
		// rejects out-of-range pairs with 400 by design).
		for _, p := range diffPairs(n, 48, key+100, false) {
			up, hgen, ok := httpResolve(t, hs.URL, p[0], p[1])
			r, wantOK := gen.Resolve(p[0], p[1])
			if ok != wantOK {
				t.Fatalf("pair %v: HTTP ok %v, in-process %v", p, ok, wantOK)
			}
			if !ok {
				continue
			}
			if hgen != gen.Seq() {
				t.Fatalf("pair %v: HTTP generation %d, in-process %d", p, hgen, gen.Seq())
			}
			if len(up) != len(r.Up) {
				t.Fatalf("pair %v: HTTP up %v, in-process %v", p, up, r.Up)
			}
			for j := range up {
				if up[j] != r.Up[j] {
					t.Fatalf("pair %v: HTTP up %v, in-process %v", p, up, r.Up)
				}
			}
		}
	}

	t.Run("healthy", func(t *testing.T) { check(t, 1) })

	// Isolate leaf 5 (its only level-0 up wire) so the degraded
	// generation has genuinely unreachable pairs on every path.
	if _, err := f.FailLink(0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Resolve(5, 9); ok {
		t.Fatal("leaf 5 still reachable after fault")
	}
	t.Run("fault-view", func(t *testing.T) { check(t, 2) })
}

// TestDifferentialUnderGenerationSwaps hammers the binary path while
// Optimize passes and fault/heal cycles hot-swap generations
// underneath it (run under -race in CI). Every response must be
// internally consistent: tagged with a generation that existed, and
// when no swap happened around the request, byte-identical to the
// in-process packed resolve of that exact generation.
func TestDifferentialUnderGenerationSwaps(t *testing.T) {
	d, err := build(options{spec: "2;8,8;1,4", algo: "d-mod-k", policy: "linear", evaluator: "analytic", seed: 1, telemetry: true, journalCap: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := d.f
	n := f.Topology().Leaves()

	// Seed skewed telemetry so Optimize has something to chew on.
	st := hashutil.NewStream(0xa7, 3)
	for i := 0; i < 512; i++ {
		f.Resolve(st.Intn(8), 8+st.Intn(n-8))
	}

	wc := startWire(t, f)

	// Phase 1 — no churn yet: every batch must match the pinned
	// generation byte for byte, so the exact-equality arm is exercised
	// deterministically rather than depending on winning a race below.
	for bi := 0; bi < 50; bi++ {
		pairs := diffPairs(n, 128, uint64(1000+bi), true)
		gen := f.Generation()
		gotGen, packed, err := wc.ResolveBatchPacked(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if gotGen != gen.Seq() {
			t.Fatalf("quiescent batch %d: wire generation %d, pinned %d", bi, gotGen, gen.Seq())
		}
		want := make([]uint64, len(pairs))
		gen.ResolveBatchPacked(pairs, want)
		for i := range pairs {
			if packed[i] != want[i] {
				t.Fatalf("quiescent batch %d pair %v: wire %#x, in-process %#x", bi, pairs[i], packed[i], want[i])
			}
		}
	}

	// Phase 2 — live churn underneath the same connection.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	var swaps atomic.Int64
	churn.Add(2)
	go func() { // Optimize churn: threshold 0 swaps on any improvement
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if res, err := f.Optimize(fabric.OptimizeConfig{Threshold: 0}); err == nil && res.Swapped {
				swaps.Add(1)
			}
		}
	}()
	go func() { // fault/heal churn: guaranteed generation swaps
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := f.FailLink(1, i%8, i%4); err == nil {
				swaps.Add(1)
			}
			if _, err := f.Heal(); err == nil {
				swaps.Add(1)
			}
		}
	}()

	exact, raced := 0, 0
	for bi := 0; bi < 200; bi++ {
		pairs := diffPairs(n, 128, uint64(bi), true)
		before := f.Generation()
		gotGen, packed, err := wc.ResolveBatchPacked(pairs)
		if err != nil {
			t.Fatal(err)
		}
		after := f.Generation()
		if before.Seq() == after.Seq() {
			// Quiescent window: the response must be exactly that
			// generation's table.
			if gotGen != before.Seq() {
				t.Fatalf("batch %d: wire generation %d, pinned %d", bi, gotGen, before.Seq())
			}
			want := make([]uint64, len(pairs))
			before.ResolveBatchPacked(pairs, want)
			for i := range pairs {
				if packed[i] != want[i] {
					t.Fatalf("batch %d pair %v: wire %#x, in-process %#x", bi, pairs[i], packed[i], want[i])
				}
			}
			exact++
			continue
		}
		// A swap raced the request: the batch must still be a
		// consistent table — generation in the observed window and
		// every word a well-formed route of the topology.
		raced++
		if gotGen < before.Seq() || gotGen > after.Seq() {
			t.Fatalf("batch %d: wire generation %d outside window [%d,%d]", bi, gotGen, before.Seq(), after.Seq())
		}
		for i, p := range pairs {
			if packed[i] == wire.Unreachable {
				continue
			}
			src, dst := p[0], p[1]
			if src == dst && packed[i] == 0 {
				continue
			}
			r := xgft.Route{Src: src, Dst: dst, Up: fabric.AppendPackedUp(packed[i], nil)}
			if !r.VerifyConnects(f.Topology()) {
				t.Fatalf("batch %d pair %v: packed %#x decodes to a route that does not connect", bi, p, packed[i])
			}
		}
	}
	close(stop)
	churn.Wait()
	t.Logf("200 churned batches: %d exact-match windows, %d raced swaps (%d total swaps)", exact, raced, swaps.Load())
	if swaps.Load() == 0 {
		t.Error("churn produced no generation swaps; raced arm untested")
	}
}

// TestDifferentialTracedProtocol proves the wire protocol's trace
// extension changes observability, not answers: on a tracer-enabled
// server, the traced (v2) and untraced (v1) request variants on the
// same connection return byte-identical generations and packed route
// payloads, and the traced response's timing trailer is coherent.
func TestDifferentialTracedProtocol(t *testing.T) {
	d := tracedDaemon(t, "", 0)
	f := d.f
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Resolver: f, Metrics: d.reg, Tracer: d.tracer}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	wc, err := wire.Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })
	n := f.Topology().Leaves()

	for key := uint64(1); key <= 3; key++ {
		pairs := diffPairs(n, 256, key, true)
		gen, packed, err := wc.ResolveBatchPacked(pairs)
		if err != nil {
			t.Fatal(err)
		}
		tc := wire.TraceContext{TraceHi: key, TraceLo: key + 1, SpanID: key + 2, Flags: 1}
		tgen, tpacked, tm, err := wc.ResolveBatchPackedTraced(tc, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if tgen != gen {
			t.Fatalf("key %d: traced generation %d, untraced %d", key, tgen, gen)
		}
		for i := range pairs {
			if tpacked[i] != packed[i] {
				t.Fatalf("key %d pair %v: traced %#x, untraced %#x", key, pairs[i], tpacked[i], packed[i])
			}
		}
		if tm.TotalNS <= 0 {
			t.Fatalf("key %d: timing trailer total %d, want > 0", key, tm.TotalNS)
		}
		if sum := tm.DecodeNS + tm.ResolveNS + tm.EncodeNS; sum > tm.TotalNS {
			t.Fatalf("key %d: stage sum %d exceeds total %d", key, sum, tm.TotalNS)
		}
	}
}
