// Command fabricd runs the fabric-manager daemon: it compiles a
// routing scheme into an all-pairs route store and serves resolution
// and fault-handling over HTTP, hot-swapping route generations as
// links and switches fail (see internal/fabric). With telemetry on
// (the default) every resolve feeds per-pair flow counters, and the
// optimizer — on demand via POST /optimize or periodically via
// -reoptimize — re-fits the routing table to the observed traffic.
//
// Usage:
//
//	fabricd -xgft "2;16,16;1,16" -algo d-mod-k -addr :7420
//	fabricd -xgft "2;16,16;1,16" -listen-binary :7421
//	fabricd -xgft "2;16,16;1,16" -algo r-NCA-u -seed 7 -addr :7420
//	fabricd -xgft "2;16,16;1,10" -reoptimize 30s -threshold 0.05
//	fabricd -xgft "2;16,16;1,10" -sched balanced
//	fabricd -xgft "2;8,8;1,8" -evaluator venus -demo
//	fabricd -demo
//
// The -evaluator flag selects the scoring backend (internal/evaluate:
// analytic, grouped or venus) the optimizer and the telemetry
// placement policy judge routing quality with; backends are wrapped
// in a memoizing CachedEvaluator, so repeated passes over a stable
// observed pattern are free.
//
// The daemon also runs the multi-tenant job scheduler
// (internal/sched): it owns the leaf pool, places submitted jobs with
// the -sched policy (linear, random, balanced or telemetry), and
// after every submission or release runs a threshold-gated optimizer
// pass over the combined tenant pattern, so the routing table follows
// the tenant mix.
//
// Endpoints:
//
//	GET  /resolve?src=S&dst=D      installed route for the pair
//	GET  /stats                    current generation statistics
//	GET  /telemetry                observed traffic (counters, top flows)
//	POST /optimize                 one re-optimization pass (?threshold=&reset=)
//	POST /jobs?n=N&app=A           submit a job (app: perm, uniform, alltoall, wrf, cg;
//	                               also &name=&bytes=&seed=)
//	GET  /jobs                     scheduler snapshot (jobs, free pool, fragmentation)
//	DELETE /jobs/{id}              release a job
//	POST /fail-link?level=L&index=I&port=P
//	POST /fail-switch?level=L&index=I
//	POST /heal                     recompile the healthy table
//	GET  /healthz                  liveness + readiness (generation age,
//	                               last optimize outcome, wire listener; 503
//	                               until a generation is published)
//	GET  /metrics                  Prometheus text exposition (internal/obs)
//	GET  /events?n=                control-plane event journal tail
//	GET  /wire                     binary-listener per-connection stats
//
// With -pprof the net/http/pprof handlers are additionally served
// under /debug/pprof/ on the HTTP listener.
//
// Logging is structured (log/slog) on stderr; -log-format selects
// text (default) or json. Every journal event (generation swaps,
// faults, optimize decisions, job lifecycle) is also streamed to the
// logger, so a daemon's stderr is a complete control-plane history
// even after the in-memory ring wraps. The two stdout announcement
// lines ("binary resolve protocol on ...", "serving ... on ...") are
// plain prints — scripted clients parse them.
//
// Query parameters are bounds-checked against the topology: negative
// or out-of-range src/dst/level/index/port/n values are rejected with
// 400 and a structured error body; a job that does not fit the free
// pool is 409.
//
// -listen-binary additionally serves the wire-speed binary resolve
// protocol (internal/wire: length-prefixed frames, batched pairs in,
// packed routes + generation out, zero allocations per batch) on a
// second TCP port — the front door for resolvers that need the
// fabric's in-process rate rather than HTTP's. Drive it with
// cmd/resolveload or wire.Client.
//
// -demo runs a scripted cycle without binding a port: start, resolve,
// fail a top-level link, watch the generation swap, measure
// resolution throughput, heal, drive a skewed traffic pattern and
// watch the optimizer re-fit the table to it, then submit jobs
// through the scheduler and watch placement drive re-optimization.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xgft"
)

func main() {
	var (
		spec       = flag.String("xgft", "2;16,16;1,16", `topology as "h;m1,..;w1,.."`)
		algo       = flag.String("algo", "d-mod-k", "routing scheme: "+strings.Join(core.AlgorithmNames(), ", "))
		seed       = flag.Uint64("seed", 1, "seed for randomized schemes")
		addr       = flag.String("addr", ":7420", "HTTP listen address")
		telemetry  = flag.Bool("telemetry", true, "count per-pair flows on the resolve path")
		reopt      = flag.Duration("reoptimize", 0, "periodic re-optimization interval (0 = only on POST /optimize)")
		threshold  = flag.Float64("threshold", 0.05, "minimum relative slowdown improvement required to swap tables")
		policy     = flag.String("sched", "linear", "job placement policy: "+strings.Join(sched.PolicyNames(), ", "))
		backend    = flag.String("evaluator", "analytic", "routing-quality scoring backend: "+strings.Join(evaluate.Names(), ", "))
		binAddr    = flag.String("listen-binary", "", "TCP listen address for the binary resolve protocol (internal/wire); empty disables it")
		demo       = flag.Bool("demo", false, "run a scripted failure/heal/re-optimize/schedule cycle and exit (no server)")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		journalCap = flag.Int("journal", 1024, "control-plane event journal capacity (ring entries)")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP listener")
		sample     = flag.String("trace-sample", "0/1", `head-sampling rate for request traces as "num/den" (0/1 = off, 1/1 = all)`)
		budget     = flag.Duration("span-budget", 0, "per-span latency budget; a span lasting longer triggers a blackbox dump (0 = off)")
		bbDir      = flag.String("blackbox-dir", "", "spool directory for anomaly blackbox bundles; empty disables dumping")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "fabricd: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(2)
	}

	num, den, err := trace.ParseRate(*sample)
	if err != nil {
		fatal("bad -trace-sample", err)
	}
	d, err := build(options{
		spec: *spec, algo: *algo, policy: *policy, evaluator: *backend,
		seed: *seed, telemetry: *telemetry || *demo, journalCap: *journalCap,
		sampleNum: num, sampleDen: den, spanBudget: *budget, blackboxDir: *bbDir,
	}, logger)
	if err != nil {
		fatal("startup failed", err)
	}
	if *demo {
		if err := runDemo(d.f, d.s, *threshold); err != nil {
			fatal("demo failed", err)
		}
		return
	}
	if *reopt > 0 {
		if !*telemetry {
			fatal("flag conflict", fmt.Errorf("-reoptimize needs -telemetry"))
		}
		go d.reoptimizeLoop(*reopt, *threshold)
	}
	// Bind before announcing so the printed addresses are the real
	// (possibly :0-assigned) ones — the CLI smoke test and scripted
	// clients parse them.
	httpL, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("http listen failed", err)
	}
	if *binAddr != "" {
		binL, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fatal("binary listen failed", err)
		}
		srv := &wire.Server{Resolver: d.f, Metrics: d.reg, Tracer: d.tracer}
		d.wsrv = srv
		d.wireAddr = binL.Addr().String()
		fmt.Printf("fabricd: binary resolve protocol on %s\n", binL.Addr())
		go func() {
			if err := srv.Serve(binL); err != nil {
				fatal("binary listener failed", err)
			}
		}()
	}
	fmt.Printf("fabricd: serving %s under %s on %s (scheduler policy %s)\n", d.f.Topology(), *algo, httpL.Addr(), d.s.Policy())
	logger.Info("fabricd serving",
		"topology", d.f.Topology().String(), "algo", *algo,
		"addr", httpL.Addr().String(), "policy", d.s.Policy(),
		"evaluator", d.f.Evaluator().Name(), "pprof", *pprofOn)
	if err := http.Serve(httpL, newMux(d, *threshold, *pprofOn)); err != nil {
		fatal("http server failed", err)
	}
}

// optimizeOutcome is the last optimize pass's result as /healthz
// reports it.
type optimizeOutcome struct {
	Time     time.Time `json:"time"`
	Swapped  bool      `json:"swapped"`
	Best     string    `json:"best,omitempty"`
	Current  float64   `json:"current_slowdown,omitempty"`
	BestSlow float64   `json:"best_slowdown,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// daemon bundles the serving pieces: the fabric, the scheduler that
// owns its pool, and the observability spine (metrics registry plus
// event journal) every layer records into.
type daemon struct {
	f        *fabric.Fabric
	s        *sched.Scheduler
	reg      *obs.Registry
	jnl      *obs.Journal
	tracer   *trace.Tracer
	bb       *trace.Blackbox // Dir == "" means dumping is disabled
	wsrv     *wire.Server    // nil when -listen-binary is off
	wireAddr string
	started  time.Time
	lastOpt  atomic.Pointer[optimizeOutcome]
}

// recordOptimize stamps the pass outcome /healthz reports.
func (d *daemon) recordOptimize(res fabric.OptimizeResult, err error) {
	out := &optimizeOutcome{Time: time.Now()}
	if err != nil {
		out.Err = err.Error()
	} else {
		out.Swapped = res.Swapped
		out.Best = res.Best
		out.Current = res.Current
		out.BestSlow = res.BestSlowdown
	}
	d.lastOpt.Store(out)
}

// options collects build's knobs: the topology and scheme, the
// serving policies, and the tracing configuration.
type options struct {
	spec, algo, policy, evaluator string
	seed                          uint64
	telemetry                     bool
	journalCap                    int
	sampleNum, sampleDen          uint64 // head-sampling rate; den 0 means 1
	spanBudget                    time.Duration
	blackboxDir                   string // "" disables anomaly dumps
}

func build(o options, logger *slog.Logger) (*daemon, error) {
	tp, err := xgft.Parse(o.spec)
	if err != nil {
		return nil, err
	}
	algo, err := core.NewByName(o.algo, tp, o.seed, nil)
	if err != nil {
		return nil, err
	}
	policy, err := sched.PolicyByName(o.policy)
	if err != nil {
		return nil, err
	}
	// The fabric, the optimizer's candidate builds and the evaluator
	// share one table cache; the chosen backend is wrapped in a
	// memoizing CachedEvaluator so re-optimization rounds over a
	// stable observed pattern never re-score. Every layer shares one
	// metrics registry, one event journal and one tracer.
	reg := obs.NewRegistry()
	jnl := obs.NewJournal(o.journalCap, logger)
	cache := core.NewTableCache(16)
	backend, err := evaluate.New(o.evaluator, evaluate.Options{Cache: cache})
	if err != nil {
		return nil, err
	}
	cached := evaluate.NewCached(backend, 256)
	cached.Instrument(reg)
	den := o.sampleDen
	if den == 0 {
		den = 1
	}
	// The blackbox is declared before the tracer so the anomaly hook
	// can capture it; its sources are attached right after. With no
	// spool directory the hook stays quiet (anomalies still count).
	bb := &trace.Blackbox{Dir: o.blackboxDir, Pprof: false}
	cfg := trace.Config{
		SampleNum: o.sampleNum, SampleDen: den,
		Budget: o.spanBudget, Metrics: reg,
	}
	if o.blackboxDir != "" {
		cfg.OnAnomaly = func(a trace.Anomaly) {
			if _, err := bb.Dump(a.Reason); err != nil && logger != nil {
				logger.Error("blackbox dump failed", "reason", a.Reason, "error", err)
			}
		}
	}
	tr := trace.New(cfg)
	bb.Tracer, bb.Journal, bb.Metrics = tr, jnl, reg
	cached.Trace(tr)
	f, err := fabric.New(fabric.Config{
		Topo:      tp,
		Algo:      algo,
		Cache:     cache,
		Telemetry: o.telemetry,
		Evaluator: cached,
		Metrics:   reg,
		Journal:   jnl,
		Tracer:    tr,
	})
	if err != nil {
		return nil, err
	}
	s, err := sched.New(sched.Config{Fabric: f, Policy: policy, Seed: o.seed, Metrics: reg, Journal: jnl, Tracer: tr})
	if err != nil {
		return nil, err
	}
	return &daemon{f: f, s: s, reg: reg, jnl: jnl, tracer: tr, bb: bb, started: time.Now()}, nil
}

// jobSpec builds a submission from the job endpoint's parameters: a
// size plus one of the canned application profiles.
func jobSpec(name, app string, n int, bytes int64, seed uint64) (sched.JobSpec, error) {
	if bytes <= 0 {
		bytes = 64 * 1024
	}
	var phases []*pattern.Pattern
	switch app {
	case "", "perm", "permutation":
		phases = []*pattern.Pattern{pattern.KeyedRandomPermutation(n, bytes, hashutil.Mix(0x10b5, seed))}
	case "uniform":
		phases = []*pattern.Pattern{pattern.UniformRandom(n, 1, bytes, hashutil.Mix(0x10b6, seed))}
	case "alltoall":
		phases = []*pattern.Pattern{pattern.AllToAll(n, bytes)}
	case "wrf":
		if n < 32 || n%16 != 0 {
			return sched.JobSpec{}, fmt.Errorf("wrf needs a size that is a multiple of 16 and >= 32, got %d", n)
		}
		phases = []*pattern.Pattern{pattern.WRF(n/16, 16, bytes)}
	case "cg":
		cg, err := pattern.CGPhases(n, bytes)
		if err != nil {
			return sched.JobSpec{}, err
		}
		phases = cg
	default:
		return sched.JobSpec{}, fmt.Errorf("unknown app %q (want perm, uniform, alltoall, wrf or cg)", app)
	}
	if name == "" {
		if app == "" {
			app = "perm"
		}
		name = fmt.Sprintf("%s-%d", app, n)
	}
	return sched.JobSpec{Name: name, N: n, Phases: phases}, nil
}

// reoptimizeLoop periodically re-fits the table to the traffic
// observed since the previous pass, logging installed swaps.
func (d *daemon) reoptimizeLoop(every time.Duration, threshold float64) {
	logger := d.jnl.Logger()
	cfg := fabric.OptimizeConfig{Threshold: threshold, Reset: true}
	for range time.Tick(every) {
		res, err := d.f.Optimize(cfg)
		d.recordOptimize(res, err)
		switch {
		case err != nil:
			logger.Error("reoptimize failed", "error", err)
		case res.Swapped:
			logger.Info("reoptimized",
				"best", res.Best, "current_slowdown", res.Current,
				"best_slowdown", res.BestSlowdown, "pairs", res.Pairs,
				"generation", res.Stats.Seq)
		}
	}
}

// statsJSON is the wire form of fabric.Stats (BuildTime in
// milliseconds instead of opaque nanoseconds).
type statsJSON struct {
	Seq            uint64  `json:"seq"`
	Algo           string  `json:"algo"`
	Routes         int     `json:"routes"`
	Patched        int     `json:"patched"`
	Unreachable    int     `json:"unreachable"`
	FailedWires    int     `json:"failed_wires"`
	FailedSwitches int     `json:"failed_switches"`
	CacheHit       bool    `json:"cache_hit"`
	BuildMillis    float64 `json:"build_ms"`
}

func toJSON(st fabric.Stats) statsJSON {
	return statsJSON{
		Seq:            st.Seq,
		Algo:           st.Algo,
		Routes:         st.Routes,
		Patched:        st.Patched,
		Unreachable:    st.Unreachable,
		FailedWires:    st.FailedWires,
		FailedSwitches: st.FailedSwitches,
		CacheHit:       st.CacheHit,
		BuildMillis:    float64(st.BuildTime.Microseconds()) / 1000,
	}
}

// optimizeJSON is the wire form of fabric.OptimizeResult.
type optimizeJSON struct {
	Pairs      int             `json:"pairs"`
	Resolves   int64           `json:"resolves"`
	Current    float64         `json:"current_slowdown"`
	Candidates []candidateJSON `json:"candidates"`
	Best       string          `json:"best"`
	BestSlow   float64         `json:"best_slowdown"`
	Swapped    bool            `json:"swapped"`
	Stats      statsJSON       `json:"stats"`
}

type candidateJSON struct {
	Algo     string  `json:"algo"`
	Slowdown float64 `json:"slowdown"`
}

func optimizeToJSON(res fabric.OptimizeResult) optimizeJSON {
	out := optimizeJSON{
		Pairs:    res.Pairs,
		Resolves: res.Resolves,
		Current:  res.Current,
		Best:     res.Best,
		BestSlow: res.BestSlowdown,
		Swapped:  res.Swapped,
		Stats:    toJSON(res.Stats),
	}
	for _, c := range res.Candidates {
		out.Candidates = append(out.Candidates, candidateJSON{Algo: c.Algo, Slowdown: c.Slowdown})
	}
	return out
}

type errJSON struct {
	Error string `json:"error"`
}

// jobJSON is the wire form of a placed job.
type jobJSON struct {
	ID     uint64 `json:"id"`
	Name   string `json:"name"`
	N      int    `json:"n"`
	Policy string `json:"policy"`
	Leaves []int  `json:"leaves"`
}

func jobToJSON(j *sched.Job) jobJSON {
	return jobJSON{ID: j.ID, Name: j.Name, N: j.N, Policy: j.Policy, Leaves: j.Leaves}
}

// snapshotJSON is the wire form of sched.Snapshot.
type snapshotJSON struct {
	Policy        string    `json:"policy"`
	Leaves        int       `json:"leaves"`
	Free          int       `json:"free"`
	FreeBlocks    int       `json:"free_blocks"`
	LargestFree   int       `json:"largest_free"`
	Fragmentation float64   `json:"fragmentation"`
	Jobs          []jobJSON `json:"jobs"`
}

func snapshotToJSON(snap sched.Snapshot) snapshotJSON {
	out := snapshotJSON{
		Policy:        snap.Policy,
		Leaves:        snap.Leaves,
		Free:          snap.Free,
		FreeBlocks:    snap.FreeBlocks,
		LargestFree:   snap.LargestFree,
		Fragmentation: snap.Fragmentation,
		Jobs:          []jobJSON{},
	}
	for _, j := range snap.Jobs {
		out.Jobs = append(out.Jobs, jobJSON{ID: j.ID, Name: j.Name, N: j.N, Policy: snap.Policy, Leaves: j.Leaves})
	}
	return out
}

// intArgIn parses query parameter name as an integer in [lo, hi]; a
// missing, malformed or out-of-range value is a client error.
func intArgIn(r *http.Request, name string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		return 0, fmt.Errorf("bad or missing %q: %v", name, err)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%q=%d out of range [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

func newMux(d *daemon, threshold float64, pprofOn bool) *http.ServeMux {
	f, s := d.f, d.s
	tp := f.Topology()
	mux := http.NewServeMux()
	reply := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	// reoptimize runs the threshold-gated pass over the combined
	// tenant pattern after a placement change and returns the fields
	// to merge into the response: the pass result, or nil when
	// telemetry is off, or an "optimize_error" when the pass itself
	// failed. The placement has already committed either way, so the
	// handler must still report it — a pass failure keeps the old
	// routing table serving, it does not undo the allocation.
	reoptimize := func(resp map[string]any) {
		res, ran, err := s.Reoptimize(threshold)
		if ran || err != nil {
			d.recordOptimize(res, err)
		}
		switch {
		case err != nil:
			resp["optimize"] = nil
			resp["optimize_error"] = err.Error()
		case ran:
			resp["optimize"] = optimizeToJSON(res)
		default:
			resp["optimize"] = nil
		}
	}
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, snapshotToJSON(s.Snapshot()))
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		n, err := intArgIn(r, "n", 1, tp.Leaves())
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		var bytes int64
		if v := r.URL.Query().Get("bytes"); v != "" {
			b, err := strconv.ParseInt(v, 10, 64)
			if err != nil || b < 1 {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want a positive integer", "bytes")})
				return
			}
			bytes = b
		}
		var seed uint64 = 1
		if v := r.URL.Query().Get("seed"); v != "" {
			sd, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want an unsigned integer", "seed")})
				return
			}
			seed = sd
		}
		spec, err := jobSpec(r.URL.Query().Get("name"), r.URL.Query().Get("app"), n, bytes, seed)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		job, err := s.Submit(spec)
		switch {
		case errors.Is(err, sched.ErrNoCapacity):
			reply(w, http.StatusConflict, errJSON{err.Error()})
			return
		case err != nil:
			reply(w, http.StatusInternalServerError, errJSON{err.Error()})
			return
		}
		resp := map[string]any{"job": jobToJSON(job)}
		reoptimize(resp)
		reply(w, http.StatusOK, resp)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad job id %q", r.PathValue("id"))})
			return
		}
		if err := s.Release(id); err != nil {
			reply(w, http.StatusNotFound, errJSON{err.Error()})
			return
		}
		resp := map[string]any{"released": id}
		reoptimize(resp)
		resp["scheduler"] = snapshotToJSON(s.Snapshot())
		reply(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness plus readiness: a daemon whose store never
		// published a generation is alive but cannot serve routes.
		gen := f.Generation()
		if gen == nil {
			reply(w, http.StatusServiceUnavailable, map[string]any{
				"status": "unready", "reason": "no generation published",
			})
			return
		}
		st := f.Stats()
		resp := map[string]any{
			"status":            "ok",
			"generation":        st.Seq,
			"algo":              st.Algo,
			"generation_age_ms": float64(time.Since(f.LastSwap()).Microseconds()) / 1000,
			"uptime_ms":         float64(time.Since(d.started).Microseconds()) / 1000,
			"journal_seq":       d.jnl.Seq(),
		}
		if out := d.lastOpt.Load(); out != nil {
			resp["last_optimize"] = out
		} else {
			resp["last_optimize"] = nil
		}
		if d.wsrv != nil {
			resp["wire_listener"] = map[string]any{
				"addr": d.wireAddr, "conns": len(d.wsrv.ConnStats()),
			}
		} else {
			resp["wire_listener"] = nil
		}
		reply(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		// ?since=S is the incremental cursor: everything after journal
		// sequence S, oldest first. A client that tails with the last
		// seq it saw detects ring overruns by comparing the first
		// returned Seq against since+1. ?n= is the plain tail.
		if v := r.URL.Query().Get("since"); v != "" {
			since, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want an unsigned integer", "since")})
				return
			}
			reply(w, http.StatusOK, map[string]any{
				"seq": d.jnl.Seq(), "events": d.jnl.Since(since),
			})
			return
		}
		n := 32
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want a non-negative integer", "n")})
				return
			}
			n = parsed
		}
		reply(w, http.StatusOK, map[string]any{
			"seq": d.jnl.Seq(), "events": d.jnl.Tail(n),
		})
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want a non-negative integer", "n")})
				return
			}
			n = parsed
		}
		num, den := d.tracer.SampleRate()
		reply(w, http.StatusOK, map[string]any{
			"sample":    fmt.Sprintf("%d/%d", num, den),
			"count":     d.tracer.SpanCount(),
			"anomalies": d.tracer.Anomalies(),
			"names":     d.tracer.Names(),
			"spans":     d.tracer.Spans(n),
		})
	})
	mux.HandleFunc("GET /blackbox", func(w http.ResponseWriter, r *http.Request) {
		if d.bb.Dir == "" {
			reply(w, http.StatusNotFound, errJSON{"blackbox dumping is disabled (-blackbox-dir)"})
			return
		}
		names, err := d.bb.List()
		if err != nil {
			reply(w, http.StatusInternalServerError, errJSON{err.Error()})
			return
		}
		reply(w, http.StatusOK, map[string]any{"dir": d.bb.Dir, "bundles": names})
	})
	mux.HandleFunc("POST /blackbox", func(w http.ResponseWriter, r *http.Request) {
		// Forced dump: capture the current flight recorder, journal
		// tail and metrics right now, without waiting for an anomaly.
		if d.bb.Dir == "" {
			reply(w, http.StatusConflict, errJSON{"blackbox dumping is disabled (-blackbox-dir)"})
			return
		}
		path, err := d.bb.Dump("forced")
		if err != nil {
			reply(w, http.StatusInternalServerError, errJSON{err.Error()})
			return
		}
		reply(w, http.StatusOK, map[string]any{"bundle": path})
	})
	mux.HandleFunc("GET /wire", func(w http.ResponseWriter, r *http.Request) {
		if d.wsrv == nil {
			reply(w, http.StatusNotFound, errJSON{"binary listener is disabled (-listen-binary)"})
			return
		}
		reply(w, http.StatusOK, map[string]any{
			"addr": d.wireAddr, "conns": d.wsrv.ConnStats(),
		})
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, toJSON(f.Stats()))
	})
	mux.HandleFunc("GET /resolve", func(w http.ResponseWriter, r *http.Request) {
		src, err := intArgIn(r, "src", 0, tp.Leaves()-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		dst, err := intArgIn(r, "dst", 0, tp.Leaves()-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		// One generation snapshot for both the route and its seq, so
		// a concurrent swap cannot tag a stale route as current.
		gen := f.Generation()
		route, ok := gen.Resolve(src, dst)
		if !ok {
			reply(w, http.StatusNotFound, errJSON{fmt.Sprintf("pair (%d,%d) unreachable", src, dst)})
			return
		}
		if tel := f.Telemetry(); tel != nil {
			// Generation.Resolve bypasses the fabric's counting
			// resolve; record the served route explicitly.
			tel.Record(src, dst)
		}
		up := route.Up
		if up == nil {
			up = []int{}
		}
		reply(w, http.StatusOK, map[string]any{
			"src": src, "dst": dst, "up": up,
			"nca_level": route.NCALevel(), "generation": gen.Seq(),
		})
	})
	mux.HandleFunc("GET /telemetry", func(w http.ResponseWriter, r *http.Request) {
		tel := f.Telemetry()
		if tel == nil {
			reply(w, http.StatusConflict, errJSON{"telemetry is disabled (-telemetry=false)"})
			return
		}
		top := tel.TopFlows(10)
		flows := make([]map[string]any, 0, len(top))
		for _, fc := range top {
			flows = append(flows, map[string]any{"src": fc.Src, "dst": fc.Dst, "count": fc.Count})
		}
		obs := tel.SnapshotFlows()
		reply(w, http.StatusOK, map[string]any{
			"pairs":    len(obs.Flows),
			"resolves": obs.TotalBytes(),
			"top":      flows,
		})
	})
	mux.HandleFunc("POST /optimize", func(w http.ResponseWriter, r *http.Request) {
		cfg := fabric.OptimizeConfig{Threshold: threshold, Reset: true}
		if v := r.URL.Query().Get("threshold"); v != "" {
			t, err := strconv.ParseFloat(v, 64)
			if err != nil || t < 0 {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want a non-negative float", "threshold")})
				return
			}
			cfg.Threshold = t
		}
		if v := r.URL.Query().Get("reset"); v != "" {
			keep, err := strconv.ParseBool(v)
			if err != nil {
				reply(w, http.StatusBadRequest, errJSON{fmt.Sprintf("bad %q: want a boolean", "reset")})
				return
			}
			cfg.Reset = keep
		}
		if f.Telemetry() == nil {
			reply(w, http.StatusConflict, errJSON{"telemetry is disabled (-telemetry=false)"})
			return
		}
		res, err := f.Optimize(cfg)
		d.recordOptimize(res, err)
		if err != nil {
			// With telemetry on, an Optimize error is a server-side
			// fault (candidate build or verification failure), not a
			// request conflict.
			reply(w, http.StatusInternalServerError, errJSON{err.Error()})
			return
		}
		reply(w, http.StatusOK, optimizeToJSON(res))
	})
	admin := func(op func() (fabric.Stats, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			st, err := op()
			if err != nil {
				reply(w, http.StatusConflict, errJSON{err.Error()})
				return
			}
			reply(w, http.StatusOK, toJSON(st))
		}
	}
	mux.HandleFunc("POST /fail-link", func(w http.ResponseWriter, r *http.Request) {
		level, err := intArgIn(r, "level", 0, tp.Height()-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		index, err := intArgIn(r, "index", 0, tp.NodesAt(level)-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		port, err := intArgIn(r, "port", 0, tp.W(level)-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		admin(func() (fabric.Stats, error) { return f.FailLink(level, index, port) })(w, r)
	})
	mux.HandleFunc("POST /fail-switch", func(w http.ResponseWriter, r *http.Request) {
		level, err := intArgIn(r, "level", 1, tp.Height())
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		index, err := intArgIn(r, "index", 0, tp.NodesAt(level)-1)
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		admin(func() (fabric.Stats, error) { return f.FailSwitch(level, index) })(w, r)
	})
	mux.HandleFunc("POST /heal", admin(f.Heal))
	return mux
}

// runDemo walks the daemon's lifecycle on stdout: compile, resolve,
// degrade, observe the generation swap, measure throughput, heal,
// skew the traffic and watch the optimizer re-fit the table, then
// place jobs through the scheduler and watch submissions drive
// re-optimization over the tenant mix.
func runDemo(f *fabric.Fabric, s *sched.Scheduler, threshold float64) error {
	tp := f.Topology()
	printStats := func(st fabric.Stats) {
		fmt.Printf("  generation %d (%s): %d routes, %d patched, %d unreachable, %d failed wires, cache hit %v, built in %v\n",
			st.Seq, st.Algo, st.Routes, st.Patched, st.Unreachable, st.FailedWires, st.CacheHit, st.BuildTime.Round(10*time.Microsecond))
	}
	fmt.Printf("fabricd demo on %s\n", tp)
	printStats(f.Stats())

	src, dst := 0, tp.Leaves()-1
	before, _ := f.Resolve(src, dst)
	fmt.Printf("  resolve %d -> %d: up%v\n", src, dst, before.Up)

	// Fail the top-level link the displayed route actually rides: the
	// wire from src's level-(h-1) ancestor through the route's last
	// up-port.
	top := tp.Height() - 1
	ancestor := src
	for l := 0; l < top; l++ {
		ancestor = tp.Parent(l, ancestor, before.Up[l])
	}
	fmt.Printf("failing link (level %d, switch %d, port %d)...\n", top, ancestor, before.Up[top])
	st, err := f.FailLink(top, ancestor, before.Up[top])
	if err != nil {
		return err
	}
	printStats(st)
	after, ok := f.Resolve(src, dst)
	fmt.Printf("  resolve %d -> %d: up%v (ok %v)\n", src, dst, after.Up, ok)

	const batch = 65536
	pairs := make([][2]int, batch)
	out := make([]xgft.Route, batch)
	h := uint64(1)
	n := tp.Leaves()
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	start := time.Now()
	resolved := f.ResolveBatch(pairs, out)
	elapsed := time.Since(start)
	fmt.Printf("  resolved %d/%d pairs in %v (%.1fM routes/s)\n",
		resolved, batch, elapsed.Round(time.Microsecond), float64(batch)/elapsed.Seconds()/1e6)

	fmt.Println("healing...")
	st, err = f.Heal()
	if err != nil {
		return err
	}
	printStats(st)

	// Telemetry-driven re-optimization: skew the traffic into a
	// pattern the serving scheme handles badly — every leaf of switch
	// 0 sending to destinations in one mod-k residue class, the
	// funnel the paper's pattern-aware analysis dissects — and let
	// the optimizer re-fit.
	f.Telemetry().Reset()
	m, wTop := tp.M(0), tp.W(tp.Height()-1)
	for s := 0; s < m; s++ {
		d := (m + s*wTop) % n
		if d == s {
			continue
		}
		if _, ok := f.Resolve(s, d); !ok {
			return fmt.Errorf("demo: pair (%d,%d) did not resolve", s, d)
		}
	}
	obs := f.SnapshotFlows()
	fmt.Printf("skewed traffic observed: %d pairs, %d resolves\n", len(obs.Flows), obs.TotalBytes())
	res, err := f.Optimize(fabric.OptimizeConfig{Reset: true})
	if err != nil {
		return err
	}
	for _, c := range res.Candidates {
		fmt.Printf("  candidate %-9s %s slowdown %.3f\n", c.Algo, f.Evaluator().Name(), c.Slowdown)
	}
	if res.Swapped {
		fmt.Printf("re-optimized: %s (%.3f) -> %s (%.3f)\n", st.Algo, res.Current, res.Best, res.BestSlowdown)
	} else {
		fmt.Printf("kept %s: best candidate %s (%.3f) does not beat current %.3f\n", st.Algo, res.Best, res.BestSlowdown, res.Current)
	}
	printStats(f.Stats())

	// Multi-tenant scheduling: submit two jobs, watch placement
	// trigger a threshold-gated optimizer pass over the tenant mix,
	// release one and watch the pool heal.
	f.Telemetry().Reset()
	fmt.Printf("scheduler: policy %s over %d leaves\n", s.Policy(), tp.Leaves())
	submit := func(app string, jn int) (*sched.Job, error) {
		spec, err := jobSpec("", app, jn, 0, 1)
		if err != nil {
			return nil, err
		}
		job, err := s.Submit(spec)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  job %d (%s): leaves %v\n", job.ID, job.Name, job.Leaves)
		res, ran, err := s.Reoptimize(threshold)
		if err != nil {
			return nil, err
		}
		if ran && res.Swapped {
			fmt.Printf("  re-optimized for the tenant mix: %s (%.3f) -> %s (%.3f)\n",
				res.Stats.Algo, res.Current, res.Best, res.BestSlowdown)
		} else if ran {
			fmt.Printf("  kept %s for the tenant mix (best %s %.3f vs current %.3f)\n",
				f.Stats().Algo, res.Best, res.BestSlowdown, res.Current)
		}
		return job, nil
	}
	// CG needs a power-of-two size: the largest one at most a quarter
	// of the pool, so the stage works for any -xgft the demo accepts.
	cgSize := 4
	for cgSize*2 <= tp.Leaves()/4 {
		cgSize *= 2
	}
	first, err := submit("cg", cgSize)
	if err != nil {
		return err
	}
	permSize := tp.Leaves() / 8
	if permSize < 2 {
		permSize = 2
	}
	if _, err := submit("perm", permSize); err != nil {
		return err
	}
	snap := s.Snapshot()
	fmt.Printf("  pool: %d/%d free, %d blocks, fragmentation %.2f\n",
		snap.Free, snap.Leaves, snap.FreeBlocks, snap.Fragmentation)
	fmt.Printf("releasing job %d...\n", first.ID)
	if err := s.Release(first.ID); err != nil {
		return err
	}
	snap = s.Snapshot()
	fmt.Printf("  pool: %d/%d free, %d blocks, fragmentation %.2f, %d jobs remain\n",
		snap.Free, snap.Leaves, snap.FreeBlocks, snap.Fragmentation, len(snap.Jobs))
	printStats(f.Stats())
	return nil
}
