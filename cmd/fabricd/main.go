// Command fabricd runs the fabric-manager daemon: it compiles a
// routing scheme into an all-pairs route store and serves resolution
// and fault-handling over HTTP, hot-swapping route generations as
// links and switches fail (see internal/fabric).
//
// Usage:
//
//	fabricd -xgft "2;16,16;1,16" -algo d-mod-k -addr :7420
//	fabricd -xgft "2;16,16;1,16" -algo r-NCA-u -seed 7 -addr :7420
//	fabricd -demo
//
// Endpoints:
//
//	GET  /resolve?src=S&dst=D      installed route for the pair
//	GET  /stats                    current generation statistics
//	POST /fail-link?level=L&index=I&port=P
//	POST /fail-switch?level=L&index=I
//	POST /heal                     recompile the healthy table
//	GET  /healthz                  liveness
//
// -demo runs a scripted failure/heal cycle without binding a port:
// start, resolve, fail a top-level link, watch the generation swap,
// measure resolution throughput, heal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/xgft"
)

func main() {
	var (
		spec = flag.String("xgft", "2;16,16;1,16", `topology as "h;m1,..;w1,.."`)
		algo = flag.String("algo", "d-mod-k", "routing scheme: "+strings.Join(core.AlgorithmNames(), ", "))
		seed = flag.Uint64("seed", 1, "seed for randomized schemes")
		addr = flag.String("addr", ":7420", "HTTP listen address")
		demo = flag.Bool("demo", false, "run a scripted failure/heal cycle and exit (no server)")
	)
	flag.Parse()

	f, err := build(*spec, *algo, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricd:", err)
		os.Exit(2)
	}
	if *demo {
		if err := runDemo(f); err != nil {
			fmt.Fprintln(os.Stderr, "fabricd:", err)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("fabricd: serving %s under %s on %s\n", f.Topology(), *algo, *addr)
	if err := http.ListenAndServe(*addr, newMux(f)); err != nil {
		fmt.Fprintln(os.Stderr, "fabricd:", err)
		os.Exit(2)
	}
}

func build(spec, algoName string, seed uint64) (*fabric.Fabric, error) {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return nil, err
	}
	algo, err := core.NewByName(algoName, tp, seed, nil)
	if err != nil {
		return nil, err
	}
	return fabric.New(fabric.Config{Topo: tp, Algo: algo})
}

// statsJSON is the wire form of fabric.Stats (BuildTime in
// milliseconds instead of opaque nanoseconds).
type statsJSON struct {
	Seq            uint64  `json:"seq"`
	Algo           string  `json:"algo"`
	Routes         int     `json:"routes"`
	Patched        int     `json:"patched"`
	Unreachable    int     `json:"unreachable"`
	FailedWires    int     `json:"failed_wires"`
	FailedSwitches int     `json:"failed_switches"`
	CacheHit       bool    `json:"cache_hit"`
	BuildMillis    float64 `json:"build_ms"`
}

func toJSON(st fabric.Stats) statsJSON {
	return statsJSON{
		Seq:            st.Seq,
		Algo:           st.Algo,
		Routes:         st.Routes,
		Patched:        st.Patched,
		Unreachable:    st.Unreachable,
		FailedWires:    st.FailedWires,
		FailedSwitches: st.FailedSwitches,
		CacheHit:       st.CacheHit,
		BuildMillis:    float64(st.BuildTime.Microseconds()) / 1000,
	}
}

func newMux(f *fabric.Fabric) *http.ServeMux {
	mux := http.NewServeMux()
	reply := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	intArg := func(r *http.Request, name string) (int, error) {
		v, err := strconv.Atoi(r.URL.Query().Get(name))
		if err != nil {
			return 0, fmt.Errorf("bad or missing %q: %v", name, err)
		}
		return v, nil
	}
	type errJSON struct {
		Error string `json:"error"`
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]uint64{"generation": f.Stats().Seq})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, toJSON(f.Stats()))
	})
	mux.HandleFunc("GET /resolve", func(w http.ResponseWriter, r *http.Request) {
		src, err := intArg(r, "src")
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		dst, err := intArg(r, "dst")
		if err != nil {
			reply(w, http.StatusBadRequest, errJSON{err.Error()})
			return
		}
		// One generation snapshot for both the route and its seq, so
		// a concurrent swap cannot tag a stale route as current.
		gen := f.Generation()
		route, ok := gen.Resolve(src, dst)
		if !ok {
			reply(w, http.StatusNotFound, errJSON{fmt.Sprintf("pair (%d,%d) out of range or unreachable", src, dst)})
			return
		}
		up := route.Up
		if up == nil {
			up = []int{}
		}
		reply(w, http.StatusOK, map[string]any{
			"src": src, "dst": dst, "up": up,
			"nca_level": route.NCALevel(), "generation": gen.Seq(),
		})
	})
	admin := func(op func() (fabric.Stats, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			st, err := op()
			if err != nil {
				reply(w, http.StatusConflict, errJSON{err.Error()})
				return
			}
			reply(w, http.StatusOK, toJSON(st))
		}
	}
	mux.HandleFunc("POST /fail-link", func(w http.ResponseWriter, r *http.Request) {
		level, err1 := intArg(r, "level")
		index, err2 := intArg(r, "index")
		port, err3 := intArg(r, "port")
		for _, err := range []error{err1, err2, err3} {
			if err != nil {
				reply(w, http.StatusBadRequest, errJSON{err.Error()})
				return
			}
		}
		admin(func() (fabric.Stats, error) { return f.FailLink(level, index, port) })(w, r)
	})
	mux.HandleFunc("POST /fail-switch", func(w http.ResponseWriter, r *http.Request) {
		level, err1 := intArg(r, "level")
		index, err2 := intArg(r, "index")
		for _, err := range []error{err1, err2} {
			if err != nil {
				reply(w, http.StatusBadRequest, errJSON{err.Error()})
				return
			}
		}
		admin(func() (fabric.Stats, error) { return f.FailSwitch(level, index) })(w, r)
	})
	mux.HandleFunc("POST /heal", admin(f.Heal))
	return mux
}

// runDemo walks the daemon's lifecycle on stdout: compile, resolve,
// degrade, observe the generation swap, measure throughput, heal.
func runDemo(f *fabric.Fabric) error {
	tp := f.Topology()
	printStats := func(st fabric.Stats) {
		fmt.Printf("  generation %d (%s): %d routes, %d patched, %d unreachable, %d failed wires, cache hit %v, built in %v\n",
			st.Seq, st.Algo, st.Routes, st.Patched, st.Unreachable, st.FailedWires, st.CacheHit, st.BuildTime.Round(10*time.Microsecond))
	}
	fmt.Printf("fabricd demo on %s\n", tp)
	printStats(f.Stats())

	src, dst := 0, tp.Leaves()-1
	before, _ := f.Resolve(src, dst)
	fmt.Printf("  resolve %d -> %d: up%v\n", src, dst, before.Up)

	// Fail the top-level link the displayed route actually rides: the
	// wire from src's level-(h-1) ancestor through the route's last
	// up-port.
	top := tp.Height() - 1
	ancestor := src
	for l := 0; l < top; l++ {
		ancestor = tp.Parent(l, ancestor, before.Up[l])
	}
	fmt.Printf("failing link (level %d, switch %d, port %d)...\n", top, ancestor, before.Up[top])
	st, err := f.FailLink(top, ancestor, before.Up[top])
	if err != nil {
		return err
	}
	printStats(st)
	after, ok := f.Resolve(src, dst)
	fmt.Printf("  resolve %d -> %d: up%v (ok %v)\n", src, dst, after.Up, ok)

	const batch = 65536
	pairs := make([][2]int, batch)
	out := make([]xgft.Route, batch)
	h := uint64(1)
	n := tp.Leaves()
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	start := time.Now()
	resolved := f.ResolveBatch(pairs, out)
	elapsed := time.Since(start)
	fmt.Printf("  resolved %d/%d pairs in %v (%.1fM routes/s)\n",
		resolved, batch, elapsed.Round(time.Microsecond), float64(batch)/elapsed.Seconds()/1e6)

	fmt.Println("healing...")
	st, err = f.Heal()
	if err != nil {
		return err
	}
	printStats(st)
	return nil
}
