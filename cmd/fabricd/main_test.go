package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/xgft"
)

func testMux(t *testing.T, spec string) *http.ServeMux {
	t.Helper()
	d, err := build(options{spec: spec, algo: "d-mod-k", policy: "balanced", evaluator: "analytic", seed: 1, telemetry: true, journalCap: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return newMux(d, 0, false)
}

func do(t *testing.T, mux *http.ServeMux, method, target string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s %s: body %q is not JSON: %v", method, target, rec.Body.String(), err)
	}
	return rec.Code, body
}

func TestResolveHandler(t *testing.T) {
	mux := testMux(t, "2;8,8;1,8")
	code, body := do(t, mux, "GET", "/resolve?src=0&dst=63")
	if code != http.StatusOK {
		t.Fatalf("resolve: %d %v", code, body)
	}
	if body["src"] != float64(0) || body["dst"] != float64(63) || body["generation"] != float64(0) {
		t.Errorf("resolve body %v", body)
	}
	if _, ok := body["up"].([]any); !ok {
		t.Errorf("resolve body has no up-ports: %v", body)
	}
}

func TestResolveHandlerRejectsBadBounds(t *testing.T) {
	mux := testMux(t, "2;8,8;1,8")
	for _, target := range []string{
		"/resolve?src=-1&dst=5",
		"/resolve?src=0&dst=64", // 64 leaves: valid dst is 0..63
		"/resolve?src=0&dst=notanint",
		"/resolve?dst=5",
	} {
		code, body := do(t, mux, "GET", target)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: code %d, want 400 (%v)", target, code, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("GET %s: no structured error body: %v", target, body)
		}
	}
}

func TestFailLinkHandlerRejectsBadBounds(t *testing.T) {
	mux := testMux(t, "2;8,8;1,8")
	for _, target := range []string{
		"/fail-link?level=-1&index=0&port=0",
		"/fail-link?level=2&index=0&port=0", // levels with up-ports: 0, 1
		"/fail-link?level=1&index=8&port=0", // 8 level-1 switches: 0..7
		"/fail-link?level=1&index=0&port=8", // w2=8: ports 0..7
		"/fail-link?level=1&index=0",        // missing port
		"/fail-switch?level=0&index=0",      // leaves are not switches
		"/fail-switch?level=1&index=-3",
	} {
		code, body := do(t, mux, "POST", target)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s: code %d, want 400 (%v)", target, code, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("POST %s: no structured error body: %v", target, body)
		}
	}
	// Sanity: in-range failure still works and swaps the generation.
	code, body := do(t, mux, "POST", "/fail-link?level=1&index=0&port=0")
	if code != http.StatusOK || body["seq"] != float64(1) || body["failed_wires"] != float64(1) {
		t.Fatalf("in-range fail-link: %d %v", code, body)
	}
	// Re-failing the same link is a conflict, not a client error.
	if code, _ := do(t, mux, "POST", "/fail-link?level=1&index=0&port=0"); code != http.StatusConflict {
		t.Errorf("double failure: code %d, want 409", code)
	}
}

func TestTelemetryHandler(t *testing.T) {
	mux := testMux(t, "2;8,8;1,8")
	for i := 0; i < 3; i++ {
		if code, body := do(t, mux, "GET", "/resolve?src=1&dst=9"); code != http.StatusOK {
			t.Fatalf("resolve: %d %v", code, body)
		}
	}
	do(t, mux, "GET", "/resolve?src=2&dst=17")
	code, body := do(t, mux, "GET", "/telemetry")
	if code != http.StatusOK {
		t.Fatalf("telemetry: %d %v", code, body)
	}
	if body["pairs"] != float64(2) || body["resolves"] != float64(4) {
		t.Errorf("telemetry body %v, want 2 pairs / 4 resolves", body)
	}
	top, _ := body["top"].([]any)
	if len(top) != 2 {
		t.Fatalf("top flows %v", body["top"])
	}
	first, _ := top[0].(map[string]any)
	if first["src"] != float64(1) || first["dst"] != float64(9) || first["count"] != float64(3) {
		t.Errorf("heaviest flow %v", first)
	}
}

func TestOptimizeHandler(t *testing.T) {
	// Slimmed tree + the d-mod-k funnel: every leaf of switch 0 sends
	// to a distinct destination in residue class 0 mod 4, so the
	// optimizer must find a strictly better table and swap.
	mux := testMux(t, "2;8,8;1,4")
	for s := 0; s < 8; s++ {
		target := "/resolve?src=" + itoa(s) + "&dst=" + itoa(8+s*4)
		if code, body := do(t, mux, "GET", target); code != http.StatusOK {
			t.Fatalf("resolve: %d %v", code, body)
		}
	}
	code, body := do(t, mux, "POST", "/optimize?threshold=0")
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %v", code, body)
	}
	if body["swapped"] != true {
		t.Fatalf("optimize did not swap: %v", body)
	}
	if body["current_slowdown"] != float64(8) {
		t.Errorf("current slowdown %v, want 8", body["current_slowdown"])
	}
	cands, _ := body["candidates"].([]any)
	if len(cands) != 4 {
		t.Errorf("candidates %v", body["candidates"])
	}
	best, _ := body["best"].(string)
	stats, _ := body["stats"].(map[string]any)
	if best == "" || stats["algo"] != best || stats["seq"] != float64(1) {
		t.Errorf("swap result inconsistent: best %q stats %v", best, stats)
	}
	// The generation visible through /stats is the swapped one.
	if code, st := do(t, mux, "GET", "/stats"); code != http.StatusOK || st["algo"] != best {
		t.Errorf("stats after optimize: %d %v", code, st)
	}
	// Bad optimize parameters are client errors.
	for _, target := range []string{"/optimize?threshold=-1", "/optimize?threshold=x", "/optimize?reset=maybe"} {
		if code, _ := do(t, mux, "POST", target); code != http.StatusBadRequest {
			t.Errorf("POST %s: code %d, want 400", target, code)
		}
	}
}

func TestOptimizeHandlerWithoutTelemetry(t *testing.T) {
	d, err := build(options{spec: "2;4,4;1,4", algo: "d-mod-k", policy: "linear", evaluator: "analytic", seed: 1, telemetry: false, journalCap: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(d, 0, false)
	if code, _ := do(t, mux, "POST", "/optimize"); code != http.StatusConflict {
		t.Errorf("optimize without telemetry: code %d, want 409", code)
	}
	if code, _ := do(t, mux, "GET", "/telemetry"); code != http.StatusConflict {
		t.Errorf("telemetry endpoint without telemetry: code %d, want 409", code)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestJobEndpoints(t *testing.T) {
	mux := testMux(t, "2;8,8;1,4")
	// An empty scheduler snapshot.
	code, body := do(t, mux, "GET", "/jobs")
	if code != http.StatusOK || body["policy"] != "balanced" || body["free"] != float64(64) {
		t.Fatalf("initial snapshot: %d %v", code, body)
	}
	if jobs, ok := body["jobs"].([]any); !ok || len(jobs) != 0 {
		t.Fatalf("initial snapshot jobs: %v", body["jobs"])
	}
	// Submit a CG job; the response carries the placement and the
	// optimizer pass over the tenant mix.
	code, body = do(t, mux, "POST", "/jobs?app=cg&n=16&name=tenant-a")
	if code != http.StatusOK {
		t.Fatalf("submit: %d %v", code, body)
	}
	job, _ := body["job"].(map[string]any)
	if job["id"] != float64(1) || job["name"] != "tenant-a" || job["policy"] != "balanced" {
		t.Fatalf("submitted job %v", job)
	}
	if leaves, _ := job["leaves"].([]any); len(leaves) != 16 {
		t.Fatalf("job leaves %v", job["leaves"])
	}
	if _, ok := body["optimize"].(map[string]any); !ok {
		t.Fatalf("submit response has no optimizer pass: %v", body)
	}
	// A second job, then the snapshot shows both in submission order.
	if code, body = do(t, mux, "POST", "/jobs?app=perm&n=8"); code != http.StatusOK {
		t.Fatalf("second submit: %d %v", code, body)
	}
	code, body = do(t, mux, "GET", "/jobs")
	jobs, _ := body["jobs"].([]any)
	if code != http.StatusOK || len(jobs) != 2 || body["free"] != float64(64-24) {
		t.Fatalf("snapshot with tenants: %d %v", code, body)
	}
	first, _ := jobs[0].(map[string]any)
	if first["id"] != float64(1) || first["name"] != "tenant-a" {
		t.Fatalf("snapshot job order: %v", jobs)
	}
	// Release the first job.
	code, body = do(t, mux, "DELETE", "/jobs/1")
	if code != http.StatusOK || body["released"] != float64(1) {
		t.Fatalf("release: %d %v", code, body)
	}
	snap, _ := body["scheduler"].(map[string]any)
	if snap["free"] != float64(64-8) {
		t.Fatalf("post-release snapshot: %v", snap)
	}
	// Releasing it again is 404; garbage IDs are 400.
	if code, _ = do(t, mux, "DELETE", "/jobs/1"); code != http.StatusNotFound {
		t.Errorf("double release: code %d, want 404", code)
	}
	if code, _ = do(t, mux, "DELETE", "/jobs/banana"); code != http.StatusBadRequest {
		t.Errorf("garbage id: code %d, want 400", code)
	}
}

func TestJobSubmitRejectsBadRequests(t *testing.T) {
	mux := testMux(t, "2;8,8;1,8")
	for _, target := range []string{
		"/jobs",                  // missing n
		"/jobs?n=0",              // too small
		"/jobs?n=65",             // larger than the pool
		"/jobs?n=notanint",       // malformed
		"/jobs?n=8&app=spiral",   // unknown app
		"/jobs?n=24&app=cg",      // CG needs a power of two
		"/jobs?n=24&app=wrf",     // WRF needs a multiple of 16 >= 32
		"/jobs?n=8&bytes=-4",     // bad message size
		"/jobs?n=8&seed=notuint", // bad seed
	} {
		code, body := do(t, mux, "POST", target)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s: code %d, want 400 (%v)", target, code, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("POST %s: no structured error body: %v", target, body)
		}
	}
	// A job that does not fit the free pool is a conflict, not a
	// client error.
	if code, _ := do(t, mux, "POST", "/jobs?n=64"); code != http.StatusOK {
		t.Fatalf("pool-filling job rejected: %d", code)
	}
	if code, _ := do(t, mux, "POST", "/jobs?n=1"); code != http.StatusConflict {
		t.Errorf("over-capacity job: code %d, want 409", code)
	}
}

// TestJobChurnRacingResolveBatch hammers the job endpoints while a
// resolver floods ResolveBatch (run with -race): scheduler-driven
// optimizer swaps must never disturb the lock-free resolve path.
func TestJobChurnRacingResolveBatch(t *testing.T) {
	d, err := build(options{spec: "2;8,8;1,4", algo: "d-mod-k", policy: "telemetry", evaluator: "analytic", seed: 1, telemetry: true, journalCap: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := d.f
	mux := newMux(d, 0, false)
	n := f.Topology().Leaves()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pairs := make([][2]int, 128)
			out := make([]xgft.Route, len(pairs))
			for i := range pairs {
				pairs[i] = [2]int{(i + w) % n, (i * 11) % n}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := f.ResolveBatch(pairs, out); got != len(pairs) {
					t.Errorf("resolved %d/%d", got, len(pairs))
					return
				}
			}
		}(w)
	}
	for i := 0; i < 15; i++ {
		code, body := do(t, mux, "POST", "/jobs?app=cg&n=16")
		if code != http.StatusOK {
			t.Fatalf("submit %d: %d %v", i, code, body)
		}
		job, _ := body["job"].(map[string]any)
		id := int(job["id"].(float64))
		if code, body = do(t, mux, "DELETE", "/jobs/"+itoa(id)); code != http.StatusOK {
			t.Fatalf("release %d: %d %v", id, code, body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestObservabilityEndpoints exercises the introspection surface: an
// enriched /healthz, the Prometheus exposition, and the event journal
// tail, all fed by real control-plane activity.
func TestObservabilityEndpoints(t *testing.T) {
	mux := testMux(t, "2;8,8;1,4")

	code, body := do(t, mux, "GET", "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	for _, key := range []string{"generation", "algo", "generation_age_ms", "uptime_ms", "journal_seq"} {
		if _, ok := body[key]; !ok {
			t.Errorf("healthz lacks %q: %v", key, body)
		}
	}
	if wl, ok := body["wire_listener"]; !ok || wl != nil {
		t.Errorf("healthz wire_listener = %v (present %v), want null", wl, ok)
	}

	// Drive some control-plane activity: a resolve, a submit, a
	// release, a fault and a heal.
	if code, b := do(t, mux, "GET", "/resolve?src=0&dst=9"); code != http.StatusOK {
		t.Fatalf("resolve: %d %v", code, b)
	}
	if code, b := do(t, mux, "POST", "/jobs?app=perm&n=8"); code != http.StatusOK {
		t.Fatalf("submit: %d %v", code, b)
	}
	if code, b := do(t, mux, "DELETE", "/jobs/1"); code != http.StatusOK {
		t.Fatalf("release: %d %v", code, b)
	}
	if code, b := do(t, mux, "POST", "/fail-link?level=1&index=0&port=0"); code != http.StatusOK {
		t.Fatalf("fail-link: %d %v", code, b)
	}
	if code, b := do(t, mux, "POST", "/heal"); code != http.StatusOK {
		t.Fatalf("heal: %d %v", code, b)
	}

	// The exposition carries instruments from every layer.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE fabric_resolves_total counter",
		"# TYPE fabric_generation gauge",
		"fabric_generation_swaps_total",
		`sched_placements_total{policy="balanced"}`,
		"sched_fragmentation",
		"evaluate_cache_hits_total",
		`fabric_resolve_batch_packed_ns{quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// The journal tail replays the activity in order.
	code, body = do(t, mux, "GET", "/events?n=0")
	if code != http.StatusOK {
		t.Fatalf("events: %d %v", code, body)
	}
	events, _ := body["events"].([]any)
	if len(events) == 0 {
		t.Fatalf("no events: %v", body)
	}
	types := map[string]int{}
	for _, e := range events {
		ev, _ := e.(map[string]any)
		types[ev["type"].(string)]++
	}
	for _, want := range []string{"generation.swap", "job.submit", "job.release", "optimize"} {
		if types[want] == 0 {
			t.Errorf("journal has no %q event (saw %v)", want, types)
		}
	}
	if code, b := do(t, mux, "GET", "/events?n=-1"); code != http.StatusBadRequest {
		t.Errorf("events with bad n: %d %v", code, b)
	}

	// No binary listener in this mux: /wire is a 404.
	if code, b := do(t, mux, "GET", "/wire"); code != http.StatusNotFound {
		t.Errorf("wire without listener: %d %v", code, b)
	}
}
