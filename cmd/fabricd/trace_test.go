package main

import (
	"net/http"
	"testing"
	"time"
)

// tracedDaemon builds a daemon with sampling on and a blackbox spool.
func tracedDaemon(t *testing.T, dir string, budget time.Duration) *daemon {
	t.Helper()
	d, err := build(options{
		spec: "2;8,8;1,4", algo: "d-mod-k", policy: "linear", evaluator: "analytic",
		seed: 1, telemetry: true, journalCap: 64,
		sampleNum: 1, sampleDen: 1, spanBudget: budget, blackboxDir: dir,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTraceEndpoint: serving traffic shows up in GET /trace — span
// records, the name inventory, and the configured sampling rate.
func TestTraceEndpoint(t *testing.T) {
	d := tracedDaemon(t, "", 0)
	mux := newMux(d, 0, false)
	pairs := [][2]int{{0, 9}, {1, 10}, {2, 17}}
	out := make([]uint64, len(pairs))
	d.f.ResolveBatchPacked(pairs, out)

	code, body := do(t, mux, "GET", "/trace?n=8")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d %v", code, body)
	}
	if body["sample"] != "1/1" {
		t.Errorf("sample = %v, want 1/1", body["sample"])
	}
	if body["count"].(float64) < 1 {
		t.Errorf("count = %v, want >= 1", body["count"])
	}
	spans, ok := body["spans"].([]any)
	if !ok || len(spans) == 0 {
		t.Fatalf("no spans in %v", body)
	}
	found := false
	for _, s := range spans {
		if s.(map[string]any)["name"] == "fabric.resolve_batch_packed" {
			found = true
		}
	}
	if !found {
		t.Errorf("batch span missing from /trace: %v", spans)
	}
	if code, body := do(t, mux, "GET", "/trace?n=-1"); code != http.StatusBadRequest {
		t.Errorf("/trace?n=-1: %d %v", code, body)
	}
}

// TestBlackboxEndpoints: with a spool dir, POST /blackbox forces a
// bundle and GET /blackbox lists it; a budget breach dumps one on its
// own. Without a dir both report the feature off.
func TestBlackboxEndpoints(t *testing.T) {
	d := tracedDaemon(t, t.TempDir(), time.Nanosecond)
	mux := newMux(d, 0, false)

	code, body := do(t, mux, "POST", "/blackbox")
	if code != http.StatusOK || body["bundle"] == "" {
		t.Fatalf("forced dump: %d %v", code, body)
	}
	// Any span outlives a 1ns budget: serving one batch trips the
	// anomaly hook and spools a second bundle.
	pairs := [][2]int{{0, 9}}
	out := make([]uint64, 1)
	d.f.ResolveBatchPacked(pairs, out)

	code, body = do(t, mux, "GET", "/blackbox")
	if code != http.StatusOK {
		t.Fatalf("/blackbox: %d %v", code, body)
	}
	bundles, ok := body["bundles"].([]any)
	if !ok || len(bundles) < 2 {
		t.Fatalf("bundles = %v, want the forced dump plus an anomaly dump", body["bundles"])
	}

	off := tracedDaemon(t, "", 0)
	omux := newMux(off, 0, false)
	if code, _ := do(t, omux, "GET", "/blackbox"); code != http.StatusNotFound {
		t.Errorf("GET /blackbox without a dir: %d, want 404", code)
	}
	if code, _ := do(t, omux, "POST", "/blackbox"); code != http.StatusConflict {
		t.Errorf("POST /blackbox without a dir: %d, want 409", code)
	}
}

// TestEventsSinceCursor: /events?since= returns only events past the
// cursor, and the first Seq exposes ring overruns to the client.
func TestEventsSinceCursor(t *testing.T) {
	d := tracedDaemon(t, "", 0)
	mux := newMux(d, 0, false)
	// Each fault/heal cycle journals events.
	for i := 0; i < 3; i++ {
		if _, err := d.f.FailLink(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.f.Heal(); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, mux, "GET", "/events?since=0")
	if code != http.StatusOK {
		t.Fatalf("/events?since=0: %d %v", code, body)
	}
	all := body["events"].([]any)
	if len(all) == 0 {
		t.Fatal("no events since 0")
	}
	first := all[0].(map[string]any)["seq"].(float64)
	last := all[len(all)-1].(map[string]any)["seq"].(float64)
	if body["seq"].(float64) != last {
		t.Errorf("head seq %v != last event seq %v", body["seq"], last)
	}

	// Cursor at the penultimate event: exactly the tail past it.
	code, body = do(t, mux, "GET", "/events?since="+itoa(int(last-1)))
	if code != http.StatusOK {
		t.Fatalf("/events cursor: %d %v", code, body)
	}
	tail := body["events"].([]any)
	if len(tail) != 1 || tail[0].(map[string]any)["seq"].(float64) != last {
		t.Errorf("since=%v returned %v", last-1, tail)
	}
	// A cursor at the head returns nothing new.
	code, body = do(t, mux, "GET", "/events?since="+itoa(int(last)))
	if code != http.StatusOK || body["events"] != nil {
		t.Errorf("since=head: %d %v", code, body["events"])
	}
	if code, _ := do(t, mux, "GET", "/events?since=x"); code != http.StatusBadRequest {
		t.Errorf("since=x: %d, want 400", code)
	}
	_ = first
}
