// Command benchgate turns the perf trajectory into a regression gate:
// it reduces `go test -json` benchmark streams (what scripts/bench.sh
// writes to BENCH_<date>.json) to a compact name → ns/op map, and
// compares a fresh run against a committed baseline, failing when a
// hot-path benchmark slowed beyond the threshold. Multiple samples of
// one benchmark (`go test -count=N`) reduce to the minimum — the
// standard trick for gating on machine-noise-prone timings: the min
// is the least-interfered-with sample.
//
// Usage:
//
//	benchgate -extract BENCH_2026-08-08.json        # stream → compact JSON on stdout
//	benchgate -baseline scripts/bench_baseline.json -current /tmp/gate.json \
//	          -threshold 0.10 -match 'ResolveBatch|Wire|CachedScore'
//
// Compare mode exits 1 when any baseline benchmark matching -match
// regressed by more than -threshold (relative ns/op), or disappeared
// from the current run. Benchmarks faster than -floor in the baseline
// are reported but never gate — below a few microseconds the timer
// granularity drowns the signal. -current accepts either a raw
// stream or a compact extract.
//
// Shared CI runners drift tens of percent run to run, which would
// drown a 10% gate in machine noise. Each gated package therefore
// carries a BenchmarkCalibration (internal/benchcal), a fixed
// ALU-bound reference workload; when both baseline and current record
// it, every benchmark in that package is compared after dividing out
// the calibration drift ratio, so the gate tracks code changes, not
// runner speed. Calibration entries themselves never gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// compact is the committed-baseline form: benchmark key → best ns/op.
type compact struct {
	// Note records how the file was produced, for humans diffing it.
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	var (
		extract   = flag.String("extract", "", "reduce this go test -json stream to compact JSON on stdout")
		baseline  = flag.String("baseline", "", "compact baseline to compare against")
		current   = flag.String("current", "", "fresh run (stream or compact) to compare")
		threshold = flag.Float64("threshold", 0.10, "maximum tolerated relative ns/op regression")
		match     = flag.String("match", ".", "gate only baseline benchmarks matching this regexp")
		floor     = flag.Duration("floor", time.Microsecond, "baseline entries faster than this are reported but never fail the gate")
		note      = flag.String("note", "", "annotation stored in -extract output")
	)
	flag.Parse()
	switch {
	case *extract != "":
		if err := runExtract(*extract, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	case *baseline != "" && *current != "":
		ok, err := runCompare(*baseline, *current, *threshold, *match, *floor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgate: need -extract FILE, or -baseline FILE -current FILE")
		os.Exit(2)
	}
}

// parseStream reduces a `go test -json` event stream to benchmark key
// → min ns/op. Benchmark results arrive as output events whose Test
// field names the benchmark and whose Output line carries
// "<iters> <ns> ns/op ...".
func parseStream(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action  string
			Package string
			Test    string
			Output  string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s is not a go test -json stream: %w", path, err)
		}
		if ev.Action != "output" || !strings.HasPrefix(ev.Test, "Benchmark") || !strings.Contains(ev.Output, " ns/op") {
			continue
		}
		fields := strings.Fields(ev.Output)
		ns := -1.0
		for i := 1; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op value in %q", path, ev.Output)
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		key := ev.Package + "." + ev.Test
		if cur, seen := best[key]; !seen || ns < cur {
			best[key] = ns
		}
	}
	return best, sc.Err()
}

// load reads benchmarks from either a compact extract or a raw
// stream, detected by shape.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c compact
	if err := json.Unmarshal(data, &c); err == nil && c.Benchmarks != nil {
		return c.Benchmarks, nil
	}
	return parseStream(path)
}

func runExtract(path, note string) error {
	best, err := parseStream(path)
	if err != nil {
		return err
	}
	if len(best) == 0 {
		return fmt.Errorf("%s contains no benchmark results", path)
	}
	out, err := json.MarshalIndent(compact{Note: note, Benchmarks: best}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}

// calibration is the per-package machine-speed reference benchmark
// (internal/benchcal) that normalizes the gate against runner drift.
const calibration = "BenchmarkCalibration"

// pkgOf splits a "<package>.Benchmark<Name>" key back into its
// package half.
func pkgOf(key string) string {
	if i := strings.LastIndex(key, ".Benchmark"); i >= 0 {
		return key[:i]
	}
	return key
}

// calibrationScales returns, per package with a calibration sample in
// both runs, current/baseline calibration ns/op — the machine drift
// factor to divide out of that package's current timings.
func calibrationScales(base, cur map[string]float64) map[string]float64 {
	scales := make(map[string]float64)
	for k, b := range base {
		if !strings.HasSuffix(k, "."+calibration) || b <= 0 {
			continue
		}
		if c, present := cur[k]; present && c > 0 {
			scales[pkgOf(k)] = c / b
		}
	}
	return scales
}

func runCompare(basePath, curPath string, threshold float64, match string, floor time.Duration) (ok bool, err error) {
	re, err := regexp.Compile(match)
	if err != nil {
		return false, fmt.Errorf("bad -match: %w", err)
	}
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(curPath)
	if err != nil {
		return false, err
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		if re.MatchString(k) && !strings.HasSuffix(k, "."+calibration) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return false, fmt.Errorf("no baseline benchmark matches %q", match)
	}
	scales := calibrationScales(base, cur)
	pkgs := make([]string, 0, len(scales))
	for pkg := range scales {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		fmt.Printf("cal  %-70s machine drift x%.3f (divided out below)\n", pkg, scales[pkg])
	}
	failures := 0
	for _, k := range keys {
		b := base[k]
		c, present := cur[k]
		if !present {
			fmt.Printf("FAIL %-70s baseline %10.0f ns/op, missing from current run\n", k, b)
			failures++
			continue
		}
		if scale, ok := scales[pkgOf(k)]; ok {
			c /= scale
		}
		rel := (c - b) / b
		status := "ok  "
		gated := b >= float64(floor.Nanoseconds())
		switch {
		case rel > threshold && gated:
			status = "FAIL"
			failures++
		case rel > threshold:
			status = "warn" // too fast to gate reliably; report only
		}
		fmt.Printf("%s %-70s %10.0f -> %10.0f ns/op (%+6.1f%%)\n", status, k, b, c, 100*rel)
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d benchmark(s) regressed beyond %.0f%% of the committed baseline\n", failures, 100*threshold)
		return false, nil
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of the committed baseline\n", len(keys), 100*threshold)
	return true, nil
}
