package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// stream mimics real `go test -json` benchmark output, including the
// quirk that a benchmark's name and its measurement arrive as
// separate output events (the name event ends with a tab).
const stream = `{"Action":"output","Package":"repro/internal/fabric","Test":"BenchmarkResolveBatch","Output":"BenchmarkResolveBatch \t"}
{"Action":"output","Package":"repro/internal/fabric","Test":"BenchmarkResolveBatch","Output":"      10\t     87730 ns/op\t  46765892 routes/s\n"}
{"Action":"output","Package":"repro/internal/fabric","Test":"BenchmarkResolveBatch","Output":"      10\t     91000 ns/op\t  45000000 routes/s\n"}
{"Action":"run","Package":"repro/internal/wire","Test":"BenchmarkWireEncodeRequest"}
{"Action":"output","Package":"repro/internal/wire","Test":"BenchmarkWireEncodeRequest","Output":"     100\t      9000 ns/op\n"}
{"Action":"output","Package":"repro/internal/wire","Output":"PASS\n"}
`

func TestParseStreamKeepsMinPerBenchmark(t *testing.T) {
	got, err := parseStream(writeFile(t, "stream.json", stream))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro/internal/fabric.BenchmarkResolveBatch":    87730,
		"repro/internal/wire.BenchmarkWireEncodeRequest": 9000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestLoadAcceptsBothShapes(t *testing.T) {
	compactPath := writeFile(t, "compact.json", `{"benchmarks":{"p.BenchmarkX":100}}`)
	fromCompact, err := load(compactPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromCompact["p.BenchmarkX"] != 100 {
		t.Fatalf("compact load = %v", fromCompact)
	}
	fromStream, err := load(writeFile(t, "stream.json", stream))
	if err != nil {
		t.Fatal(err)
	}
	if fromStream["repro/internal/wire.BenchmarkWireEncodeRequest"] != 9000 {
		t.Fatalf("stream load = %v", fromStream)
	}
}

func compare(t *testing.T, base, cur string, threshold float64, floor time.Duration) bool {
	t.Helper()
	ok, err := runCompare(writeFile(t, "base.json", base), writeFile(t, "cur.json", cur), threshold, ".", floor)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := `{"benchmarks":{"p.BenchmarkX":10000}}`
	if !compare(t, base, `{"benchmarks":{"p.BenchmarkX":10900}}`, 0.10, time.Microsecond) {
		t.Error("9% slower must pass a 10% gate")
	}
	if compare(t, base, `{"benchmarks":{"p.BenchmarkX":11500}}`, 0.10, time.Microsecond) {
		t.Error("15% slower must fail a 10% gate")
	}
	if compare(t, base, `{"benchmarks":{}}`, 0.10, time.Microsecond) {
		t.Error("a missing benchmark must fail the gate")
	}
}

func TestCompareFloorReportsButNeverGates(t *testing.T) {
	base := `{"benchmarks":{"p.BenchmarkTiny":500}}`
	cur := `{"benchmarks":{"p.BenchmarkTiny":900}}`
	if !compare(t, base, cur, 0.10, time.Microsecond) {
		t.Error("sub-floor benchmark regressed but must not gate")
	}
	if compare(t, base, cur, 0.10, 100*time.Nanosecond) {
		t.Error("with the floor lowered the same regression must gate")
	}
}

func TestCompareDividesOutCalibrationDrift(t *testing.T) {
	// The machine ran 1.5x slower (calibration 1000 → 1500); the
	// benchmark's raw 50% "regression" normalizes away to 0%.
	base := `{"benchmarks":{"p.BenchmarkX":10000,"p.BenchmarkCalibration":1000}}`
	cur := `{"benchmarks":{"p.BenchmarkX":15000,"p.BenchmarkCalibration":1500}}`
	if !compare(t, base, cur, 0.10, time.Microsecond) {
		t.Error("uniform machine drift must not fail the gate")
	}
	// Same drift, but the benchmark slowed 2x: still fails.
	cur = `{"benchmarks":{"p.BenchmarkX":30000,"p.BenchmarkCalibration":1500}}`
	if compare(t, base, cur, 0.10, time.Microsecond) {
		t.Error("a real regression must fail even with calibration drift")
	}
	// Calibration never gates itself, even when it is all that moved.
	base = `{"benchmarks":{"p.BenchmarkCalibration":1000,"p.BenchmarkX":10000}}`
	cur = `{"benchmarks":{"p.BenchmarkCalibration":2000,"p.BenchmarkX":10000}}`
	if !compare(t, base, cur, 0.10, time.Microsecond) {
		t.Error("calibration drift alone must not fail the gate")
	}
}

func TestPkgOf(t *testing.T) {
	if got := pkgOf("repro/internal/wire.BenchmarkWireEncodeRequest"); got != "repro/internal/wire" {
		t.Fatalf("pkgOf = %q", got)
	}
}
