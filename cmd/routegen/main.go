// Command routegen computes static routing tables: the routes a
// subnet manager would install for a pattern on an XGFT under one of
// the paper's routing schemes, plus the contention census of the
// result.
//
// Usage:
//
//	routegen -xgft "2;16,16;1,10" -algo d-mod-k -pattern cg-transpose
//	routegen -xgft "2;16,16;1,16" -algo r-NCA-u -seed 7 -pattern wrf -routes
//	routegen -xgft "2;16,16;1,16" -algo colored -pattern shift:37
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

func main() {
	var (
		spec    = flag.String("xgft", "2;16,16;1,16", `topology as "h;m1,..;w1,.."`)
		algo    = flag.String("algo", "d-mod-k", "routing scheme: "+strings.Join(core.AlgorithmNames(), ", "))
		patName = flag.String("pattern", "wrf", "pattern: wrf, cg, cg-transpose, shift:K, transpose, bitrev, tornado, alltoall, random-perm")
		seed    = flag.Uint64("seed", 1, "seed for randomized schemes and patterns")
		bytes   = flag.Int64("bytes", 64*1024, "bytes per flow")
		dump    = flag.Bool("routes", false, "dump every route")
		table   = flag.String("dump-table", "", "write the routing table (LFT-style text) to this file")
	)
	flag.Parse()

	if err := run(*spec, *algo, *patName, *seed, *bytes, *dump, *table); err != nil {
		fmt.Fprintln(os.Stderr, "routegen:", err)
		os.Exit(2)
	}
}

func run(spec, algoName, patName string, seed uint64, bytes int64, dump bool, tableFile string) error {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return err
	}
	phases, err := buildPattern(patName, tp.Leaves(), bytes, seed)
	if err != nil {
		return err
	}
	algorithm, err := core.NewByName(algoName, tp, seed, phases)
	if err != nil {
		return err
	}
	fmt.Printf("topology %s, algorithm %s\n", tp, algorithm.Name())
	if tableFile != "" {
		var pairs [][2]int
		for _, p := range phases {
			for _, f := range p.Flows {
				pairs = append(pairs, [2]int{f.Src, f.Dst})
			}
		}
		snap, err := core.Snapshot(tp, algorithm, pairs)
		if err != nil {
			return err
		}
		out, err := os.Create(tableFile)
		if err != nil {
			return err
		}
		defer out.Close()
		if _, err := snap.WriteTo(out); err != nil {
			return err
		}
		fmt.Printf("wrote %d routes to %s\n", snap.Len(), tableFile)
	}
	for pi, p := range phases {
		tbl, err := core.BuildTable(tp, algorithm, p)
		if err != nil {
			return err
		}
		a, err := contention.Analyze(tp, p, tbl.Routes)
		if err != nil {
			return err
		}
		xb := contention.CrossbarBound(p)
		slow := 1.0
		if xb > 0 {
			slow = float64(a.CompletionBound()) / float64(xb)
		}
		fmt.Printf("phase %d: %d flows, endpoint contention %d, network contention %d, max flows/channel %d, analytic slowdown %.2f\n",
			pi+1, len(p.Flows), a.MaxEndpointContention(), a.MaxNetworkContention(), a.MaxFlowsPerChannel(), slow)
		if dump {
			for _, r := range tbl.Routes {
				if r.Src == r.Dst {
					continue
				}
				level, nca := r.NCA(tp)
				fmt.Printf("  %4d -> %-4d via NCA level %d #%d  up%v\n", r.Src, r.Dst, level, nca, r.Up)
			}
		}
	}
	return nil
}

// buildPattern resolves the pattern selector. Multi-phase names (cg)
// return several phases; everything else one. Randomized patterns
// come from the keyed splitmix64 stream, so the same -seed prints the
// same table on every platform and Go version.
func buildPattern(name string, n int, bytes int64, seed uint64) ([]*pattern.Pattern, error) {
	switch {
	case name == "wrf":
		if n < 256 {
			return nil, fmt.Errorf("wrf needs >= 256 leaves, topology has %d", n)
		}
		return []*pattern.Pattern{pattern.WRF256()}, nil
	case name == "cg":
		if n < 128 {
			return nil, fmt.Errorf("cg needs >= 128 leaves, topology has %d", n)
		}
		phases, err := pattern.CGPhases(128, bytes)
		if err != nil {
			return nil, err
		}
		for _, ph := range phases {
			ph.N = n
		}
		return phases, nil
	case name == "cg-transpose":
		if n < 128 {
			return nil, fmt.Errorf("cg-transpose needs >= 128 leaves, topology has %d", n)
		}
		ph, err := pattern.CGTransposePhase(128, bytes)
		if err != nil {
			return nil, err
		}
		ph.N = n
		return []*pattern.Pattern{ph}, nil
	case strings.HasPrefix(name, "shift:"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "shift:"))
		if err != nil {
			return nil, fmt.Errorf("bad shift distance: %v", err)
		}
		return []*pattern.Pattern{pattern.Shift(n, k, bytes)}, nil
	case name == "transpose":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("transpose needs a square node count, got %d", n)
		}
		return []*pattern.Pattern{pattern.Transpose(side, side, bytes)}, nil
	case name == "bitrev":
		p, err := pattern.BitReversal(n, bytes)
		if err != nil {
			return nil, err
		}
		return []*pattern.Pattern{p}, nil
	case name == "tornado":
		return []*pattern.Pattern{pattern.Tornado(n, bytes)}, nil
	case name == "alltoall":
		return []*pattern.Pattern{pattern.AllToAll(n, bytes)}, nil
	case name == "random-perm":
		return []*pattern.Pattern{pattern.KeyedRandomPermutation(n, bytes, seed)}, nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}
