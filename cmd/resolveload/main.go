// Command resolveload drives a fabricd binary resolve listener
// (fabricd -listen-binary, internal/wire) with keyed-deterministic
// traffic and reports the served rate: total resolves/s plus batch
// round-trip latency percentiles. It is the load half of the
// wire-speed serving story — the number it prints is what the fabric
// sustains through the daemon, not in-process.
//
// Usage:
//
//	resolveload -addr 127.0.0.1:7421 -xgft "2;16,16;1,16"
//	resolveload -addr 127.0.0.1:7421 -conns 8 -batch 4096 -duration 5s
//	resolveload -addr 127.0.0.1:7421 -conns 2 -batch 512 -batches 50
//	resolveload -addr 127.0.0.1:7421 -trace -batches 20
//
// Traffic is a pure function of (-seed, connection, batch index):
// every run with the same flags resolves the same pairs in the same
// order, so two runs against the same daemon state are comparable
// load for load. -batches fixes the per-connection batch count (a
// deterministic amount of work); otherwise each connection issues
// batches until -duration elapses.
//
// Round-trip percentiles come from a shared internal/obs histogram —
// the same lock-free instrument fabricd serves on GET /metrics — fed
// by every connection's wire.Client; -metrics-dump prints the run's
// full Prometheus-text exposition after the summary.
//
// -trace switches every batch to the protocol's traced request
// variant (wire frame version 2): each batch runs under a client
// span ("resolveload.batch") whose context propagates to the server,
// so the daemon's flight recorder (GET /trace) shows this run's
// requests, and the response's timing trailer splits the measured RTT
// into server-side decode/resolve/encode versus queue + network time,
// printed after the percentile summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xgft"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7421", "fabricd binary resolve address")
		spec     = flag.String("xgft", "2;16,16;1,16", `topology served by the daemon, as "h;m1,..;w1,.." (sets the endpoint range)`)
		conns    = flag.Int("conns", 4, "concurrent connections")
		batch    = flag.Int("batch", 1024, "pairs per request")
		batches  = flag.Int("batches", 0, "batches per connection (0 = run for -duration)")
		duration = flag.Duration("duration", 2*time.Second, "run length when -batches is 0")
		seed     = flag.Uint64("seed", 1, "traffic key")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request network timeout")
		dump     = flag.Bool("metrics-dump", false, "print the run's Prometheus-text metrics after the summary")
		traced   = flag.Bool("trace", false, "propagate trace context on every batch and report the server-side RTT split")
	)
	flag.Parse()
	if err := run(*addr, *spec, *conns, *batch, *batches, *duration, *seed, *timeout, *dump, *traced); err != nil {
		fmt.Fprintln(os.Stderr, "resolveload:", err)
		os.Exit(2)
	}
}

// connResult is one connection's tally; the latency samples land in
// the shared histogram instead.
type connResult struct {
	batches   int
	resolved  int64
	requested int64
	err       error
	// Traced-run attribution sums (nanoseconds across all batches):
	// client-observed RTT and the server's timing-trailer stages.
	rttNS, serverNS, decodeNS, resolveNS, encodeNS int64
}

// loadMetrics is the run's instrument set, shared by every
// connection: counters sharded by connection index, one RTT
// histogram observed by each wire.Client.
type loadMetrics struct {
	rtt       *obs.Histogram
	batches   *obs.Counter
	resolved  *obs.Counter
	requested *obs.Counter
}

// Metric and span names, as constants so repolint's obskeys pass can
// tie the inventory to the code.
const (
	metricBatchRTT  = "resolveload_batch_rtt_ns"
	metricBatches   = "resolveload_batches_total"
	metricResolved  = "resolveload_resolved_total"
	metricRequested = "resolveload_requested_total"

	spanBatch    = "resolveload.batch"
	attrServerNS = "server_ns"
)

func newLoadMetrics(reg *obs.Registry, conns int) *loadMetrics {
	return &loadMetrics{
		rtt:       reg.Histogram(metricBatchRTT, "client-observed batch round-trip latency"),
		batches:   reg.Counter(metricBatches, "batches completed", conns),
		resolved:  reg.Counter(metricResolved, "pairs resolved", conns),
		requested: reg.Counter(metricRequested, "pairs requested", conns),
	}
}

func run(addr, spec string, conns, batch, batches int, duration time.Duration, seed uint64, timeout time.Duration, dump, traced bool) error {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return err
	}
	if conns < 1 || batch < 1 || batch > wire.MaxPairs {
		return fmt.Errorf("need -conns >= 1 and 1 <= -batch <= %d", wire.MaxPairs)
	}
	n := tp.Leaves()
	if batches > 0 {
		fmt.Printf("resolveload: %d conns x %d batches x %d pairs against %s (%d leaves, seed %d)\n",
			conns, batches, batch, addr, n, seed)
	} else {
		fmt.Printf("resolveload: %d conns x %d-pair batches for %v against %s (%d leaves, seed %d)\n",
			conns, batch, duration, addr, n, seed)
	}

	reg := obs.NewRegistry()
	m := newLoadMetrics(reg, conns)
	// With -trace on, every batch rides the protocol's traced request
	// variant under a sampled client span, so the server's flight
	// recorder sees this run's requests and the timing trailer
	// attributes each RTT to queue+network vs server stages.
	var tr *trace.Tracer
	if traced {
		tr = trace.New(trace.Config{SampleNum: 1, SampleDen: 1, Key: seed, RecorderCap: 1024, Metrics: reg})
	}
	results := make([]connResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(duration)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results[ci] = drive(addr, n, ci, batch, batches, stop, seed, timeout, m, tr)
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total connResult
	for ci := range results {
		r := &results[ci]
		if r.err != nil {
			return fmt.Errorf("connection %d: %w", ci, r.err)
		}
		total.batches += r.batches
		total.resolved += r.resolved
		total.requested += r.requested
		total.rttNS += r.rttNS
		total.serverNS += r.serverNS
		total.decodeNS += r.decodeNS
		total.resolveNS += r.resolveNS
		total.encodeNS += r.encodeNS
	}
	if total.batches == 0 {
		return fmt.Errorf("no batches completed")
	}
	fmt.Printf("  resolved %d/%d pairs in %d batches over %v (%.2fM resolves/s)\n",
		total.resolved, total.requested, total.batches, elapsed.Round(time.Millisecond),
		float64(total.resolved)/elapsed.Seconds()/1e6)
	q := func(p float64) time.Duration { return time.Duration(m.rtt.Quantile(p)) }
	fmt.Printf("  batch RTT p50 %v p90 %v p99 %v max %v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), time.Duration(m.rtt.Max()).Round(time.Microsecond))
	if traced {
		// Average per-batch attribution: the server's timing trailer
		// splits its share of the RTT into decode/resolve/encode; the
		// remainder against the client-observed RTT is queue + network.
		nb := int64(total.batches)
		avg := func(sum int64) time.Duration { return time.Duration(sum / nb).Round(time.Microsecond) }
		queue := total.rttNS - total.serverNS
		if queue < 0 {
			queue = 0
		}
		fmt.Printf("  server split (avg/batch): decode %v resolve %v encode %v server-total %v, queue+net %v\n",
			avg(total.decodeNS), avg(total.resolveNS), avg(total.encodeNS), avg(total.serverNS), avg(queue))
	}
	if dump {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// drive runs one connection's load: batches of pairs drawn from a
// stream keyed by (seed, connection, batch index), so the traffic is
// reproducible per flag set. Latency lands in the shared histogram
// via the client's own RTT instrument.
func drive(addr string, n, ci, batch, batches int, stop time.Time, seed uint64, timeout time.Duration, m *loadMetrics, tr *trace.Tracer) connResult {
	var res connResult
	c, err := wire.Dial(addr, timeout)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	c.RTT = m.rtt
	key := uint64(ci)
	pairs := make([][2]int, batch)
	for bi := 0; ; bi++ {
		if batches > 0 {
			if bi >= batches {
				return res
			}
		} else if time.Now().After(stop) {
			return res
		}
		st := hashutil.NewStream(0x10ad, seed, uint64(ci), uint64(bi))
		for i := range pairs {
			pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
		}
		var packed []uint64
		if tr != nil {
			// One client span per batch, rooted at (connection, batch
			// index) so the trace ids — and the server's sampling
			// verdict — are reproducible run to run. The span context
			// rides the request; the response's timing trailer
			// attributes the RTT.
			root := tr.Root(uint64(ci)+1, uint64(bi)+1)
			sp := tr.StartSpan(root, spanBatch)
			rstart := time.Now()
			var tm wire.Timing
			_, packed, tm, err = c.ResolveBatchPackedTraced(wire.TraceContext{
				TraceHi: root.Trace.Hi, TraceLo: root.Trace.Lo,
				SpanID: sp.Context().Span, Flags: root.Flags,
			}, pairs)
			if err == nil {
				res.rttNS += time.Since(rstart).Nanoseconds()
				res.serverNS += tm.TotalNS
				res.decodeNS += tm.DecodeNS
				res.resolveNS += tm.ResolveNS
				res.encodeNS += tm.EncodeNS
				sp.SetAttr(attrServerNS, tm.TotalNS)
			}
			sp.End()
		} else {
			_, packed, err = c.ResolveBatchPacked(pairs)
		}
		if err != nil {
			res.err = err
			return res
		}
		res.batches++
		res.requested += int64(len(pairs))
		m.batches.AddAt(key, 1)
		m.requested.AddAt(key, uint64(len(pairs)))
		hit := int64(0)
		for _, p := range packed {
			if p != wire.Unreachable {
				hit++
			}
		}
		res.resolved += hit
		m.resolved.AddAt(key, uint64(hit))
	}
}
