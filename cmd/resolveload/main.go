// Command resolveload drives a fabricd binary resolve listener
// (fabricd -listen-binary, internal/wire) with keyed-deterministic
// traffic and reports the served rate: total resolves/s plus batch
// round-trip latency percentiles. It is the load half of the
// wire-speed serving story — the number it prints is what the fabric
// sustains through the daemon, not in-process.
//
// Usage:
//
//	resolveload -addr 127.0.0.1:7421 -xgft "2;16,16;1,16"
//	resolveload -addr 127.0.0.1:7421 -conns 8 -batch 4096 -duration 5s
//	resolveload -addr 127.0.0.1:7421 -conns 2 -batch 512 -batches 50
//
// Traffic is a pure function of (-seed, connection, batch index):
// every run with the same flags resolves the same pairs in the same
// order, so two runs against the same daemon state are comparable
// load for load. -batches fixes the per-connection batch count (a
// deterministic amount of work); otherwise each connection issues
// batches until -duration elapses.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/hashutil"
	"repro/internal/wire"
	"repro/internal/xgft"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7421", "fabricd binary resolve address")
		spec     = flag.String("xgft", "2;16,16;1,16", `topology served by the daemon, as "h;m1,..;w1,.." (sets the endpoint range)`)
		conns    = flag.Int("conns", 4, "concurrent connections")
		batch    = flag.Int("batch", 1024, "pairs per request")
		batches  = flag.Int("batches", 0, "batches per connection (0 = run for -duration)")
		duration = flag.Duration("duration", 2*time.Second, "run length when -batches is 0")
		seed     = flag.Uint64("seed", 1, "traffic key")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request network timeout")
	)
	flag.Parse()
	if err := run(*addr, *spec, *conns, *batch, *batches, *duration, *seed, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "resolveload:", err)
		os.Exit(2)
	}
}

// connResult is one connection's tally.
type connResult struct {
	batches   int
	resolved  int64
	requested int64
	rtts      []time.Duration
	err       error
}

func run(addr, spec string, conns, batch, batches int, duration time.Duration, seed uint64, timeout time.Duration) error {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return err
	}
	if conns < 1 || batch < 1 || batch > wire.MaxPairs {
		return fmt.Errorf("need -conns >= 1 and 1 <= -batch <= %d", wire.MaxPairs)
	}
	n := tp.Leaves()
	if batches > 0 {
		fmt.Printf("resolveload: %d conns x %d batches x %d pairs against %s (%d leaves, seed %d)\n",
			conns, batches, batch, addr, n, seed)
	} else {
		fmt.Printf("resolveload: %d conns x %d-pair batches for %v against %s (%d leaves, seed %d)\n",
			conns, batch, duration, addr, n, seed)
	}

	results := make([]connResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(duration)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results[ci] = drive(addr, n, ci, batch, batches, stop, seed, timeout)
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total connResult
	var rtts []time.Duration
	for ci := range results {
		r := &results[ci]
		if r.err != nil {
			return fmt.Errorf("connection %d: %w", ci, r.err)
		}
		total.batches += r.batches
		total.resolved += r.resolved
		total.requested += r.requested
		rtts = append(rtts, r.rtts...)
	}
	if total.batches == 0 {
		return fmt.Errorf("no batches completed")
	}
	fmt.Printf("  resolved %d/%d pairs in %d batches over %v (%.2fM resolves/s)\n",
		total.resolved, total.requested, total.batches, elapsed.Round(time.Millisecond),
		float64(total.resolved)/elapsed.Seconds()/1e6)
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(rtts)-1))
		return rtts[i]
	}
	fmt.Printf("  batch RTT p50 %v p90 %v p99 %v max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), rtts[len(rtts)-1].Round(time.Microsecond))
	return nil
}

// drive runs one connection's load: batches of pairs drawn from a
// stream keyed by (seed, connection, batch index), so the traffic is
// reproducible per flag set.
func drive(addr string, n, ci, batch, batches int, stop time.Time, seed uint64, timeout time.Duration) connResult {
	var res connResult
	c, err := wire.Dial(addr, timeout)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	pairs := make([][2]int, batch)
	for bi := 0; ; bi++ {
		if batches > 0 {
			if bi >= batches {
				return res
			}
		} else if time.Now().After(stop) {
			return res
		}
		st := hashutil.NewStream(0x10ad, seed, uint64(ci), uint64(bi))
		for i := range pairs {
			pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
		}
		t0 := time.Now()
		_, packed, err := c.ResolveBatchPacked(pairs)
		rtt := time.Since(t0)
		if err != nil {
			res.err = err
			return res
		}
		res.batches++
		res.requested += int64(len(pairs))
		res.rtts = append(res.rtts, rtt)
		for _, p := range packed {
			if p != wire.Unreachable {
				res.resolved++
			}
		}
	}
}
