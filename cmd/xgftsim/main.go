// Command xgftsim runs one simulation: an application trace (or a
// one-shot pattern) replayed over an XGFT under a routing scheme,
// reporting absolute completion time and the slowdown against the
// ideal full crossbar — one data point of the paper's Figs. 2/5.
//
// Usage:
//
//	xgftsim -xgft "2;16,16;1,10" -algo r-NCA-u -app cg -bytes 65536
//	xgftsim -xgft "2;16,16;1,16" -algo random -app wrf -seed 3
//	xgftsim -xgft "2;16,16;1,8" -algo d-mod-k -app cg -engine analytic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/experiments"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func main() {
	var (
		spec    = flag.String("xgft", "2;16,16;1,16", `topology as "h;m1,..;w1,.."`)
		algo    = flag.String("algo", "d-mod-k", "routing scheme: "+strings.Join(core.AlgorithmNames(), ", "))
		app     = flag.String("app", "cg", "application: wrf or cg")
		seed    = flag.Uint64("seed", 1, "seed for randomized schemes")
		bytes   = flag.Int64("bytes", 0, "message size override (0 = paper sizes)")
		engine  = flag.String("engine", "simulated", "engine: simulated or analytic")
		mapping = flag.String("mapping", "linear", "rank placement: linear, round-robin, random or an explicit leaves:0,17,... allocation")
		cut     = flag.Bool("cut-through", false, "virtual cut-through instead of store-and-forward")
	)
	flag.Parse()

	if err := run(*spec, *algo, *app, *seed, *bytes, *engine, *mapping, *cut); err != nil {
		fmt.Fprintln(os.Stderr, "xgftsim:", err)
		os.Exit(2)
	}
}

func run(spec, algoName, appName string, seed uint64, bytes int64, engine, mapping string, cutThrough bool) error {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return err
	}
	app, err := experiments.AppByName(appName)
	if err != nil {
		return err
	}
	if app.Ranks > tp.Leaves() {
		return fmt.Errorf("%s needs %d leaves, topology has %d", app.Name, app.Ranks, tp.Leaves())
	}
	phases := app.Phases(bytes)
	algorithm, err := core.NewByName(algoName, tp, seed, phases)
	if err != nil {
		return err
	}
	fmt.Printf("application %s on %s under %s\n", app.Name, tp, algorithm.Name())

	switch engine {
	case "analytic":
		slow, err := contention.PhasedSlowdown(tp, algorithm, phases)
		if err != nil {
			return err
		}
		fmt.Printf("analytic slowdown vs full crossbar: %.3f\n", slow)
		return nil
	case "simulated":
		tr, err := traces.FromPhases(app.Ranks, phases, 1, 0)
		if err != nil {
			return err
		}
		netCfg := venus.DefaultConfig()
		netCfg.CutThrough = cutThrough
		m, err := dimemas.MappingByName(mapping, tp, app.Ranks, int64(seed))
		if err != nil {
			return err
		}
		cfg := dimemas.Config{Net: netCfg, Mapping: m}
		start := time.Now()
		net, err := dimemas.Replay(tr, tp, algorithm, cfg)
		if err != nil {
			return err
		}
		ref, err := dimemas.ReplayOnCrossbar(tr, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("network time:  %12d ns\n", net)
		fmt.Printf("crossbar time: %12d ns\n", ref)
		fmt.Printf("measured slowdown: %.3f   (wall time %.2fs)\n",
			float64(net)/float64(ref), time.Since(start).Seconds())
		return nil
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}
}
