// Command xgftsim runs one evaluation: an application trace (or a
// one-shot pattern) scored over an XGFT under a routing scheme,
// reporting the slowdown against the ideal full crossbar — one data
// point of the paper's Figs. 2/5.
//
// The -engine flag selects how the score is obtained. The evaluator
// backends of internal/evaluate score the application's communication
// phases directly:
//
//	analytic   congestion completion bound (fast, byte-exact)
//	grouped    §IV grouped-contention level
//	venus      flit-level event-driven simulation of every phase
//
// while "simulated" (the default) replays the full MPI trace through
// the Dimemas-style engine coupled to the venus network model,
// including rank placement (-mapping).
//
// Usage:
//
//	xgftsim -xgft "2;16,16;1,10" -algo r-NCA-u -app cg -bytes 65536
//	xgftsim -xgft "2;16,16;1,16" -algo random -app wrf -seed 3
//	xgftsim -xgft "2;16,16;1,8" -algo d-mod-k -app cg -engine analytic
//	xgftsim -xgft "2;8,8;1,4" -algo d-mod-k -app cg -engine venus -bytes 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/evaluate"
	"repro/internal/experiments"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func main() {
	var (
		spec    = flag.String("xgft", "2;16,16;1,16", `topology as "h;m1,..;w1,.."`)
		algo    = flag.String("algo", "d-mod-k", "routing scheme: "+strings.Join(core.AlgorithmNames(), ", "))
		app     = flag.String("app", "cg", "application: wrf or cg")
		seed    = flag.Uint64("seed", 1, "seed for randomized schemes")
		bytes   = flag.Int64("bytes", 0, "message size override (0 = paper sizes)")
		engine  = flag.String("engine", "simulated", "simulated (trace replay) or an evaluator backend: "+strings.Join(evaluate.Names(), ", "))
		mapping = flag.String("mapping", "linear", "rank placement: linear, round-robin, random or an explicit leaves:0,17,... allocation (simulated engine only)")
		cut     = flag.Bool("cut-through", false, "virtual cut-through instead of store-and-forward")
	)
	flag.Parse()

	if err := run(*spec, *algo, *app, *seed, *bytes, *engine, *mapping, *cut); err != nil {
		fmt.Fprintln(os.Stderr, "xgftsim:", err)
		os.Exit(2)
	}
}

func run(spec, algoName, appName string, seed uint64, bytes int64, engine, mapping string, cutThrough bool) error {
	tp, err := xgft.Parse(spec)
	if err != nil {
		return err
	}
	app, err := experiments.AppByName(appName)
	if err != nil {
		return err
	}
	if app.Ranks > tp.Leaves() {
		return fmt.Errorf("%s needs %d leaves, topology has %d", app.Name, app.Ranks, tp.Leaves())
	}
	phases := app.Phases(bytes)
	algorithm, err := core.NewByName(algoName, tp, seed, phases)
	if err != nil {
		return err
	}
	fmt.Printf("application %s on %s under %s\n", app.Name, tp, algorithm.Name())

	netCfg := venus.DefaultConfig()
	netCfg.CutThrough = cutThrough

	if engine != "simulated" {
		// Pattern-level scoring through the evaluation layer: one code
		// path for every backend.
		ev, err := evaluate.New(engine, evaluate.Options{
			Cache: core.NewTableCache(len(phases)),
			Venus: netCfg,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := ev.Score(tp, algorithm, phases)
		if err != nil {
			return err
		}
		for i, s := range res.PerPhase {
			fmt.Printf("  phase %d: %.3f\n", i, s)
		}
		fmt.Printf("%s slowdown vs full crossbar: %.3f   (wall time %.2fs)\n",
			ev.Name(), res.Slowdown, time.Since(start).Seconds())
		if res.Cost.SimEvents > 0 {
			fmt.Printf("simulated %d events\n", res.Cost.SimEvents)
		}
		return nil
	}

	tr, err := traces.FromPhases(app.Ranks, phases, 1, 0)
	if err != nil {
		return err
	}
	m, err := dimemas.MappingByName(mapping, tp, app.Ranks, int64(seed))
	if err != nil {
		return err
	}
	cfg := dimemas.Config{Net: netCfg, Mapping: m}
	start := time.Now()
	net, err := dimemas.Replay(tr, tp, algorithm, cfg)
	if err != nil {
		return err
	}
	ref, err := dimemas.ReplayOnCrossbar(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("network time:  %12d ns\n", net)
	fmt.Printf("crossbar time: %12d ns\n", ref)
	fmt.Printf("measured slowdown: %.3f   (wall time %.2fs)\n",
		float64(net)/float64(ref), time.Since(start).Seconds())
	return nil
}
