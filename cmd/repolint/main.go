// Command repolint runs the repo's custom static analyzers (package
// internal/lint) over the module and exits nonzero on any finding.
//
// Usage:
//
//	repolint [-json] [-list] [pattern ...]
//
// Patterns default to ./... (the whole module, fixtures excluded).
// -json emits machine-readable findings for tooling; -list prints the
// analyzer inventory and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON for tooling")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, module, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(root, module, patterns)
	if err != nil {
		fatal(err)
	}
	findings, suppressed := prog.Run(lint.Analyzers)

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     relPath(cwd, f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			f.Pos.Filename = relPath(cwd, f.Pos.Filename)
			fmt.Println(f)
		}
	}

	if len(suppressed) > 0 {
		names := make([]string, 0, len(suppressed))
		for name := range suppressed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s) suppressed by //lint:allow %s\n", suppressed[name], name)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relPath renders a finding path relative to the working directory
// when that is shorter, matching how go vet prints positions.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(1)
}
