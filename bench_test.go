package repro_test

import (
	"fmt"
	"io"
	"testing"

	repro "repro"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// Benchmarks regenerating the paper's tables and figures (one per
// artifact; see DESIGN.md §3). Reduced message sizes and seed counts
// keep iterations meaningful while preserving every contention ratio;
// cmd/experiments reproduces the full-size sweeps.

// benchOpt is the figure-sweep configuration used by benchmarks:
// sequential and uncached, so iterations measure the work itself
// rather than pool scaling or memoization (see
// internal/experiments/bench_test.go for those).
func benchOpt() experiments.Options {
	return experiments.Options{
		Engine:      experiments.Analytic,
		Seeds:       10,
		Parallelism: 1,
		Cache:       core.NewTableCache(0),
	}
}

func BenchmarkTable1Labels(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(tp)
		experiments.WriteTable1(io.Discard, tp, rows)
	}
}

func BenchmarkFig2aWRF(b *testing.B) {
	app := experiments.WRFApp()
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(app, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2bCG(b *testing.B) {
	app := experiments.CGApp()
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(app, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CGDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Distribution(b *testing.B) {
	for _, w2 := range []int{16, 10} {
		b.Run(fmt.Sprintf("w2=%d", w2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure4(w2, experiments.Options{Seeds: 5, Parallelism: 1, Cache: core.NewTableCache(0)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5aWRF(b *testing.B) {
	app := experiments.WRFApp()
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(app, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bCG(b *testing.B) {
	app := experiments.CGApp()
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(app, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2bSimulated is the measured-engine counterpart of one
// Fig. 2b data point: the full trace-replay pipeline for CG.D-128 on
// the full tree (message sizes scaled down 16x).
func BenchmarkFig2bSimulated(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traces.CG(128, 48*1024, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dimemas.Config{Net: venus.DefaultConfig()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dimemas.Replay(tr, tp, core.NewDModK(tp), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the load-bearing substrates ---

func BenchmarkRouteComputation(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	algos := map[string]core.Algorithm{
		"s-mod-k": core.NewSModK(tp),
		"random":  core.NewRandom(tp, 1),
		"r-NCA-u": core.NewRandomNCAUp(tp, 1),
	}
	for name, algo := range algos {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			n := tp.Leaves()
			for i := 0; i < b.N; i++ {
				s := i % n
				d := (i*31 + 17) % n
				_ = algo.Route(s, d)
			}
		})
	}
}

func BenchmarkRoutingTableWRF(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.WRF256()
	algo := core.NewDModK(tp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildTable(tp, algo, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColoredOptimizer(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	phases := repro.CGD128Phases()
	for i := 0; i < b.N; i++ {
		_ = core.NewColored(tp, phases, core.ColoredConfig{})
	}
}

func BenchmarkContentionAnalysis(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.UniformRandom(256, 4, 64*1024, 3)
	tbl, err := core.BuildTable(tp, core.NewRandom(tp, 1), p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := contention.Analyze(tp, p, tbl.Routes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Event-processing rate of the network simulator under a loaded
	// random permutation.
	tp, err := xgft.NewSlimmedTree(16, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.KeyedRandomPermutation(256, 64*1024, 5)
	algo := core.NewRandom(tp, 9)
	cfg := venus.DefaultConfig()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		s, err := venus.New(tp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range p.Flows {
			if err := s.Inject(venus.Message{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes, Route: algo.Route(f.Src, f.Dst)}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Run(0); err != nil {
			b.Fatal(err)
		}
		events += s.Q.Processed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkTraceReplayWRF(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traces.WRF(16, 16, 32*1024, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dimemas.Config{Net: venus.DefaultConfig()}
	algo := core.NewRandomNCADown(tp, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dimemas.Replay(tr, tp, algo, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices DESIGN.md calls out) ---

// BenchmarkAblationBalancedRelabeling compares the paper's balanced
// maps against naive uniform relabeling: same cost per route, but the
// census spread (reported as a custom metric) shows what balance buys.
func BenchmarkAblationBalancedRelabeling(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	variants := map[string]func(uint64) core.Algorithm{
		"balanced":   func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
		"unbalanced": func(s uint64) core.Algorithm { return core.NewUnbalancedNCAUp(tp, s) },
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			spread := 0
			for i := 0; i < b.N; i++ {
				census := core.AllPairsNCACensus(tp, mk(uint64(i)+1))
				min, max := 1<<31, 0
				for _, c := range census {
					if c < min {
						min = c
					}
					if c > max {
						max = c
					}
				}
				spread += max - min
			}
			b.ReportMetric(float64(spread)/float64(b.N), "census-spread")
		})
	}
}

// BenchmarkAblationForwardingMode compares store-and-forward against
// virtual cut-through on the same loaded run: bandwidth ratios match,
// absolute latency differs.
func BenchmarkAblationForwardingMode(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.KeyedRandomPermutation(256, 32*1024, 2)
	algo := core.NewRandomNCADown(tp, 4)
	for _, mode := range []struct {
		name string
		cut  bool
	}{{"store-and-forward", false}, {"cut-through", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := venus.DefaultConfig()
			cfg.CutThrough = mode.cut
			var last int64
			for i := 0; i < b.N; i++ {
				end, err := venus.RunPattern(tp, algo, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = int64(end)
			}
			b.ReportMetric(float64(last), "sim-ns")
		})
	}
}

// BenchmarkAblationBufferDepth sweeps the switch input buffer depth:
// tiny buffers throttle the pipeline, large ones stop paying off.
func BenchmarkAblationBufferDepth(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.KeyedRandomPermutation(256, 32*1024, 8)
	algo := core.NewRandom(tp, 6)
	for _, depth := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := venus.DefaultConfig()
			cfg.BufferSegments = depth
			var last int64
			for i := 0; i < b.N; i++ {
				end, err := venus.RunPattern(tp, algo, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = int64(end)
			}
			b.ReportMetric(float64(last), "sim-ns")
		})
	}
}

// BenchmarkAblationColoredPasses sweeps the local-search budget of
// the pattern-aware baseline: the CG transpose needs few passes to
// reach a conflict-free coloring.
func BenchmarkAblationColoredPasses(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	ph, err := pattern.CGTransposePhase(128, 1024)
	if err != nil {
		b.Fatal(err)
	}
	phases := []*pattern.Pattern{ph}
	for _, passes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			var groups int
			for i := 0; i < b.N; i++ {
				col := core.NewColored(tp, phases, core.ColoredConfig{MaxPasses: passes})
				groups = col.MaxGroups(ph)
			}
			b.ReportMetric(float64(groups), "max-groups")
		})
	}
}

// BenchmarkExtensionDeepTree regenerates the three-level XGFT
// generalization sweep.
func BenchmarkExtensionDeepTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DeepTreeSweep(experiments.Options{Seeds: 3, MessageBytes: 16 * 1024, Parallelism: 1, Cache: core.NewTableCache(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNCACensus(b *testing.B) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	algo := core.NewRandomNCAUp(tp, 1)
	for i := 0; i < b.N; i++ {
		_ = core.AllPairsNCACensus(tp, algo)
	}
}
