// WRF-256 halo exchange over progressively slimmed trees: the
// scenario of the paper's Fig. 2a / Fig. 5a. Shows why the endpoint-
// contention-concentrating schemes (S-mod-k, D-mod-k, r-NCA-*) beat
// static Random on a pairwise-exchange pattern.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// WRF-256: tasks on a 16x16 mesh exchange with their ±16
	// neighbours; every interior task has two outstanding sends.
	p := repro.WRF256()
	fmt.Printf("WRF-256: %d flows over %d tasks (pairwise ±16 exchanges)\n\n", len(p.Flows), p.N)

	// Sweep the slimming parameter like the paper: w2 = 16 (full
	// bisection) down to 2.
	fmt.Printf("%4s  %8s  %8s  %8s  %8s\n", "w2", "random", "d-mod-k", "r-NCA-u", "r-NCA-d")
	for _, w2 := range []int{16, 12, 8, 4, 2} {
		tree, err := repro.NewSlimmedTree(16, 16, w2)
		if err != nil {
			log.Fatal(err)
		}
		row := []float64{}
		for _, algo := range []repro.Algorithm{
			repro.NewRandom(tree, 1),
			repro.NewDModK(tree),
			repro.NewRandomNCAUp(tree, 1),
			repro.NewRandomNCADown(tree, 1),
		} {
			s, err := repro.AnalyticSlowdown(tree, algo, p)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, s)
		}
		fmt.Printf("%4d  %8.2f  %8.2f  %8.2f  %8.2f\n", w2, row[0], row[1], row[2], row[3])
	}

	// The mechanism: D-mod-k gives every destination a single
	// descending path, so WRF's two-senders-per-destination endpoint
	// contention is not amplified into network contention.
	tree, err := repro.NewSlimmedTree(16, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []repro.Algorithm{repro.NewDModK(tree), repro.NewRandom(tree, 1)} {
		tbl, err := repro.BuildRoutingTable(tree, algo, p)
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.AnalyzeContention(tree, p, tbl.Routes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: endpoint contention %d, network contention %d",
			algo.Name(), a.MaxEndpointContention(), a.MaxNetworkContention())
	}
	fmt.Println()
}
