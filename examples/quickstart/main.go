// Quickstart: build a slimmed fat tree, route a permutation under
// several oblivious schemes, and compare contention — the smallest
// end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// The paper's evaluation topology: a 16-ary 2-tree slimmed to 10
	// top switches — XGFT(2;16,16;1,10), 256 nodes, blocking.
	tree, err := repro.NewSlimmedTree(16, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s  (%d leaves, %d switches, slimmed=%v)\n\n",
		tree, tree.Leaves(), tree.InnerSwitches(), tree.IsSlimmed())

	// A cyclic-shift permutation: every node sends 64 KB to the node
	// 37 positions away.
	p := repro.Shift(tree.Leaves(), 37, 64*1024)

	// Route it under four oblivious schemes and the pattern-aware
	// bound, and compare network contention and analytic slowdown.
	algos := []repro.Algorithm{
		repro.NewSModK(tree),
		repro.NewDModK(tree),
		repro.NewRandom(tree, 1),
		repro.NewRandomNCAUp(tree, 1), // the paper's proposal
		repro.NewColored(tree, []*repro.Pattern{p}, repro.ColoredConfig{}),
	}
	fmt.Printf("%-10s  %-18s  %-17s  %s\n", "algorithm", "network contention", "analytic slowdown", "simulated slowdown")
	for _, algo := range algos {
		tbl, err := repro.BuildRoutingTable(tree, algo, p)
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.AnalyzeContention(tree, p, tbl.Routes)
		if err != nil {
			log.Fatal(err)
		}
		analytic, err := repro.AnalyticSlowdown(tree, algo, p)
		if err != nil {
			log.Fatal(err)
		}
		simulated, err := repro.MeasuredSlowdown(tree, algo, p, repro.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %-18d  %-17.2f  %.2f\n",
			algo.Name(), a.MaxNetworkContention(), analytic, simulated)
	}
}
