// Tree slimming cost/performance tradeoff: how many top-level
// switches does a workload actually need? Sweeps XGFT(2;16,16;1,w2)
// like the works the paper cites on network over-provisioning, and
// reports hardware cost (Eq. 1 switch count) against delivered
// performance under the best oblivious routing.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const n = 256

	// Three workload classes: a nearest-neighbour application
	// (WRF-like), an adversarial regular permutation (CG transpose),
	// and random permutations (the classic evaluation traffic).
	wrf := repro.WRF256()
	cgT, err := repro.CGPhases(128, 64*1024)
	if err != nil {
		log.Fatal(err)
	}
	transpose := cgT[len(cgT)-1]
	randPerm := repro.UniformRandom(n, 1, 64*1024, 7)

	fmt.Println("Slimming sweep of XGFT(2;16,16;1,w2) under r-NCA-u (seeded median of 5):")
	fmt.Printf("%4s  %9s  %10s  %12s  %12s\n", "w2", "#switches", "wrf", "cg-transpose", "random")
	for w2 := 16; w2 >= 1; w2-- {
		tree, err := repro.NewSlimmedTree(16, 16, w2)
		if err != nil {
			log.Fatal(err)
		}
		med := func(p *repro.Pattern) float64 {
			var samples []float64
			for seed := uint64(1); seed <= 5; seed++ {
				s, err := repro.AnalyticSlowdown(tree, repro.NewRandomNCAUp(tree, seed), p)
				if err != nil {
					log.Fatal(err)
				}
				samples = append(samples, s)
			}
			return repro.Summarize(samples).Median
		}
		fmt.Printf("%4d  %9d  %10.2f  %12.2f  %12.2f\n",
			w2, tree.InnerSwitches(), med(wrf), med(transpose), med(randPerm))
	}
	fmt.Println("\nReading: a w2 around half the full bisection often costs little for")
	fmt.Println("nearest-neighbour traffic — the over-provisioning observation that")
	fmt.Println("motivates slimmed trees — while adversarial permutations degrade fast.")
}
