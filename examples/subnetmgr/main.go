// Subnet-manager workflow: compute a routing table offline, persist
// it (and the application trace), then reload both and replay — the
// way the paper's routes were "supplied, along with the topology and
// mapping, to the Venus simulator". Demonstrates the FixedTable and
// trace serialization APIs.
package main

import (
	"bytes"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	tree, err := repro.NewSlimmedTree(16, 16, 12)
	if err != nil {
		log.Fatal(err)
	}
	phases, err := repro.CGPhases(128, 64*1024)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Offline: pick routes with the pattern-aware optimizer and
	// freeze them into an explicit table.
	colored := repro.NewColored(tree, phases, repro.ColoredConfig{})
	var pairs [][2]int
	for _, ph := range phases {
		for _, f := range ph.Flows {
			pairs = append(pairs, [2]int{f.Src, f.Dst})
		}
	}
	table, err := repro.SnapshotRoutes(tree, colored, pairs)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Persist the table and the application trace (here to memory
	// buffers; files work the same).
	var tableFile, traceFile bytes.Buffer
	if _, err := table.WriteTo(&tableFile); err != nil {
		log.Fatal(err)
	}
	trace, err := repro.TraceFromPhases(128, phases, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteTrace(&traceFile, trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d routes (%d bytes) and a %d-message trace (%d bytes)\n",
		table.Len(), tableFile.Len(), trace.CountMessages(), traceFile.Len())

	// 3. Later: reload both and replay. Unlisted pairs fall back to
	// D-mod-k, exactly like a default-routed fabric.
	loadedTable, err := repro.ReadRoutingTable(tree, &tableFile, repro.NewDModK(tree))
	if err != nil {
		log.Fatal(err)
	}
	loadedTrace, err := repro.ReadTrace(&traceFile)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := repro.ReplaySlowdown(loadedTrace, tree, loadedTable,
		repro.ReplayConfig{Net: repro.DefaultSimConfig()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed CG.D-128 with the frozen pattern-aware table: slowdown %.2f\n", slow)

	// Contrast: the same replay under plain D-mod-k.
	dmodk, err := repro.ReplaySlowdown(loadedTrace, tree, repro.NewDModK(tree),
		repro.ReplayConfig{Net: repro.DefaultSimConfig()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the same fabric under d-mod-k:                        slowdown %.2f\n", dmodk)
}
