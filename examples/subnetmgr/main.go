// Subnet-manager workflow: compute a routing table offline, persist
// it (and the application trace), then reload both and replay — the
// way the paper's routes were "supplied, along with the topology and
// mapping, to the Venus simulator". Demonstrates the FixedTable and
// trace serialization APIs, then the online counterpart: a serving
// fabric with the multi-tenant job scheduler on top (submit two
// jobs, fail a link, release a job, re-optimize for the tenant mix).
package main

import (
	"bytes"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	tree, err := repro.NewSlimmedTree(16, 16, 12)
	if err != nil {
		log.Fatal(err)
	}
	phases, err := repro.CGPhases(128, 64*1024)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Offline: pick routes with the pattern-aware optimizer and
	// freeze them into an explicit table.
	colored := repro.NewColored(tree, phases, repro.ColoredConfig{})
	var pairs [][2]int
	for _, ph := range phases {
		for _, f := range ph.Flows {
			pairs = append(pairs, [2]int{f.Src, f.Dst})
		}
	}
	table, err := repro.SnapshotRoutes(tree, colored, pairs)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Persist the table and the application trace (here to memory
	// buffers; files work the same).
	var tableFile, traceFile bytes.Buffer
	if _, err := table.WriteTo(&tableFile); err != nil {
		log.Fatal(err)
	}
	trace, err := repro.TraceFromPhases(128, phases, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteTrace(&traceFile, trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d routes (%d bytes) and a %d-message trace (%d bytes)\n",
		table.Len(), tableFile.Len(), trace.CountMessages(), traceFile.Len())

	// 3. Later: reload both and replay. Unlisted pairs fall back to
	// D-mod-k, exactly like a default-routed fabric.
	loadedTable, err := repro.ReadRoutingTable(tree, &tableFile, repro.NewDModK(tree))
	if err != nil {
		log.Fatal(err)
	}
	loadedTrace, err := repro.ReadTrace(&traceFile)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := repro.ReplaySlowdown(loadedTrace, tree, loadedTable,
		repro.ReplayConfig{Net: repro.DefaultSimConfig()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed CG.D-128 with the frozen pattern-aware table: slowdown %.2f\n", slow)

	// Contrast: the same replay under plain D-mod-k.
	dmodk, err := repro.ReplaySlowdown(loadedTrace, tree, repro.NewDModK(tree),
		repro.ReplayConfig{Net: repro.DefaultSimConfig()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the same fabric under d-mod-k:                        slowdown %.2f\n", dmodk)

	// 4. Online: the same role as a live subnet manager — a serving
	// fabric whose leaf pool the job scheduler owns. Placement is
	// policy-driven and every job's pattern is remapped onto its
	// allocation (the MappingFromLeaves path used for replays too).
	fab, err := repro.NewFabric(repro.FabricConfig{
		Topo: tree, Algo: repro.NewDModK(tree), Telemetry: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := repro.NewScheduler(repro.SchedulerConfig{
		Fabric: fab, Policy: repro.BalancedPlacement(),
	})
	if err != nil {
		log.Fatal(err)
	}
	cgPhases, err := repro.CGPhases(64, 64*1024)
	if err != nil {
		log.Fatal(err)
	}
	jobA, err := sched.Submit(repro.JobSpec{Name: "cg-64", N: 64, Phases: cgPhases})
	if err != nil {
		log.Fatal(err)
	}
	jobB, err := sched.Submit(repro.JobSpec{
		Name: "wrf-32", N: 32,
		Phases: []*repro.Pattern{repro.WRF(2, 16, 64*1024)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s on leaves %d-%d and %s on leaves %d-%d (policy %s)\n",
		jobA.Name, jobA.Leaves[0], jobA.Leaves[len(jobA.Leaves)-1],
		jobB.Name, jobB.Leaves[0], jobB.Leaves[len(jobB.Leaves)-1], sched.Policy())

	// A top-level link fails under the tenants: the fabric patches
	// only the routes riding it and hot-swaps the generation.
	st, err := fab.FailLink(1, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed link (1,0,0): generation %d patched %d routes\n", st.Seq, st.Patched)

	// One tenant departs; re-optimizing over the remaining mix lets
	// the pattern-aware candidate take the table if it helps.
	if err := sched.Release(jobA.ID); err != nil {
		log.Fatal(err)
	}
	res, ran, err := sched.Reoptimize(0)
	if err != nil {
		log.Fatal(err)
	}
	snap := sched.Snapshot()
	if ran && res.Swapped {
		fmt.Printf("released %s; re-optimized to %s (slowdown %.2f -> %.2f), %d/%d leaves free\n",
			jobA.Name, res.Best, res.Current, res.BestSlowdown, snap.Free, snap.Leaves)
	} else {
		fmt.Printf("released %s; kept %s (best %s %.2f vs current %.2f), %d/%d leaves free\n",
			jobA.Name, fab.Stats().Algo, res.Best, res.BestSlowdown, res.Current, snap.Free, snap.Leaves)
	}
}
