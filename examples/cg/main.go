// CG.D-128 pathology: reproduces the paper's §VII-A analysis of why
// D-mod-k collapses on NAS CG's transpose phase (Fig. 3) — the
// pattern's regularity is congruent with the modulo route assignment,
// funnelling every switch's 16 flows through 2 of its 16 up-links —
// and how the relabeling-based r-NCA schemes break the congruence.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const bytes = 64 * 1024
	phases, err := repro.CGPhases(128, bytes)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := repro.NewSlimmedTree(16, 16, 16) // full 16-ary 2-tree
	if err != nil {
		log.Fatal(err)
	}

	// Phase anatomy under D-mod-k: four switch-local butterfly phases
	// and the Eq. (2) transpose.
	fmt.Println("CG.D-128 phases under d-mod-k on the full 16-ary 2-tree:")
	dmodk := repro.NewDModK(tree)
	for i, ph := range phases {
		s, err := repro.AnalyticSlowdown(tree, dmodk, ph)
		if err != nil {
			log.Fatal(err)
		}
		kind := "switch-local"
		if s > 1 {
			kind = "inter-switch  <-- the pathological transpose"
		}
		fmt.Printf("  phase %d: slowdown %.2f  %s\n", i+1, s, kind)
	}

	// Eq. (2): within switch 0 the transpose sends s -> s/2*16 + s%2,
	// so d mod 16 is the sender's parity: D-mod-k uses 2 of 16 roots.
	transpose := phases[len(phases)-1]
	fmt.Println("\nEq. (2) destinations of switch-0 sources (d mod 16 is 0 or 1):")
	for _, f := range transpose.Flows[:8] {
		fmt.Printf("  %3d -> %3d   (d mod 16 = %d)\n", f.Src, f.Dst, f.Dst%16)
	}

	// The full five-phase run, simulated: D-mod-k pays the transpose,
	// Random pays a spread tax everywhere, r-NCA-d avoids both worst
	// cases, Colored is the pattern-aware bound.
	fmt.Println("\nfull CG.D-128 run (simulated, slowdown vs full crossbar):")
	for _, algo := range []repro.Algorithm{
		dmodk,
		repro.NewRandom(tree, 1),
		repro.NewRandomNCADown(tree, 1),
		repro.NewColored(tree, phases, repro.ColoredConfig{}),
	} {
		s, err := repro.MeasuredPhasedSlowdown(tree, algo, phases, repro.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %.2f\n", algo.Name(), s)
	}
}
