package repro_test

import (
	"bytes"
	"testing"

	repro "repro"
)

// TestPipelineOfflineTablesAndTraces exercises the full
// subnet-manager workflow end to end through the public API:
// optimize routes offline, persist table + trace, reload both, replay
// — and verify the replay is bit-identical to the direct run.
func TestPipelineOfflineTablesAndTraces(t *testing.T) {
	tree, err := repro.NewSlimmedTree(16, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := repro.CGPhases(128, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	colored := repro.NewColored(tree, phases, repro.ColoredConfig{})

	var pairs [][2]int
	for _, ph := range phases {
		for _, f := range ph.Flows {
			pairs = append(pairs, [2]int{f.Src, f.Dst})
		}
	}
	table, err := repro.SnapshotRoutes(tree, colored, pairs)
	if err != nil {
		t.Fatal(err)
	}

	var tableBuf, traceBuf bytes.Buffer
	if _, err := table.WriteTo(&tableBuf); err != nil {
		t.Fatal(err)
	}
	trace, err := repro.TraceFromPhases(128, phases, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteTrace(&traceBuf, trace); err != nil {
		t.Fatal(err)
	}

	loadedTable, err := repro.ReadRoutingTable(tree, &tableBuf, repro.NewDModK(tree))
	if err != nil {
		t.Fatal(err)
	}
	loadedTrace, err := repro.ReadTrace(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := repro.ReplayConfig{Net: repro.DefaultSimConfig()}
	direct, err := repro.ReplayTrace(trace, tree, colored, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := repro.ReplayTrace(loadedTrace, tree, loadedTable, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct != reloaded {
		t.Errorf("direct replay %d ns != reloaded replay %d ns", direct, reloaded)
	}
}

// TestPipelineHeadlineNumbers asserts the paper's headline results
// end to end on the simulated engine: CG's mod-k pathology, WRF's
// mod-k optimality, and the proposal sitting between Random and
// Colored on CG.
func TestPipelineHeadlineNumbers(t *testing.T) {
	tree, err := repro.NewSlimmedTree(16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.DefaultSimConfig()

	cgPhases, err := repro.CGPhases(128, 24*1024)
	if err != nil {
		t.Fatal(err)
	}
	dmodk, err := repro.MeasuredPhasedSlowdown(tree, repro.NewDModK(tree), cgPhases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dmodk < 2.0 || dmodk > 2.5 {
		t.Errorf("CG d-mod-k slowdown %.2f, want ~2.2 (paper: >2)", dmodk)
	}
	rncad, err := repro.MeasuredPhasedSlowdown(tree, repro.NewRandomNCADown(tree, 1), cgPhases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rncad >= dmodk {
		t.Errorf("r-NCA-d %.2f not better than d-mod-k %.2f on CG", rncad, dmodk)
	}

	wrf := repro.WRF(16, 16, 24*1024)
	wrfMod, err := repro.MeasuredSlowdown(tree, repro.NewDModK(tree), wrf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wrfMod > 1.3 {
		t.Errorf("WRF d-mod-k slowdown %.2f, want ~1", wrfMod)
	}
	wrfRand, err := repro.MeasuredSlowdown(tree, repro.NewRandom(tree, 1), wrf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wrfRand <= wrfMod {
		t.Errorf("WRF random %.2f not worse than d-mod-k %.2f", wrfRand, wrfMod)
	}
}

// TestPipelineAnalyticMatchesSimulated verifies the two engines agree
// on the slowdown ratios within tolerance across algorithms.
func TestPipelineAnalyticMatchesSimulated(t *testing.T) {
	tree, err := repro.NewSlimmedTree(16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := repro.Shift(256, 37, 32*1024)
	for _, algo := range []repro.Algorithm{
		repro.NewDModK(tree),
		repro.NewRandomNCAUp(tree, 3),
	} {
		analytic, err := repro.AnalyticSlowdown(tree, algo, p)
		if err != nil {
			t.Fatal(err)
		}
		simulated, err := repro.MeasuredSlowdown(tree, algo, p, repro.DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		ratio := simulated / analytic
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: simulated %.2f vs analytic %.2f (ratio %.2f) disagree",
				algo.Name(), simulated, analytic, ratio)
		}
	}
}
