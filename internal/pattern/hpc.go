package pattern

import "fmt"

// Additional HPC communication structures beyond the paper's two
// applications: the halo exchanges, spectral transposes and
// collectives that dominate the workload studies the paper cites
// (Kamil et al., Desai et al.) on network over-provisioning.

// Halo2D builds the full 4-neighbour (von Neumann) halo exchange on a
// rows x cols grid. periodic selects torus wrap-around.
func Halo2D(rows, cols int, bytes int64, periodic bool) (*Pattern, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("pattern: halo2d grid %dx%d invalid", rows, cols)
	}
	n := rows * cols
	p := New(n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			src := r*cols + c
			add := func(nr, nc int) {
				if periodic {
					nr = (nr + rows) % rows
					nc = (nc + cols) % cols
				} else if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					return
				}
				dst := nr*cols + nc
				if dst != src {
					p.Add(src, dst, bytes)
				}
			}
			add(r-1, c)
			add(r+1, c)
			add(r, c-1)
			add(r, c+1)
		}
	}
	return p, nil
}

// Halo3D builds the 6-neighbour halo exchange on an x*y*z grid.
func Halo3D(x, y, z int, bytes int64, periodic bool) (*Pattern, error) {
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("pattern: halo3d grid %dx%dx%d invalid", x, y, z)
	}
	n := x * y * z
	p := New(n)
	idx := func(i, j, k int) int { return (i*y+j)*z + k }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				src := idx(i, j, k)
				add := func(ni, nj, nk int) {
					if periodic {
						ni, nj, nk = (ni+x)%x, (nj+y)%y, (nk+z)%z
					} else if ni < 0 || ni >= x || nj < 0 || nj >= y || nk < 0 || nk >= z {
						return
					}
					dst := idx(ni, nj, nk)
					if dst != src {
						p.Add(src, dst, bytes)
					}
				}
				add(i-1, j, k)
				add(i+1, j, k)
				add(i, j-1, k)
				add(i, j+1, k)
				add(i, j, k-1)
				add(i, j, k+1)
			}
		}
	}
	return p, nil
}

// FFTPhases builds the log2(n) butterfly exchange phases of a
// distributed radix-2 FFT: phase k exchanges with partner XOR 2^k.
func FFTPhases(n int, bytes int64) ([]*Pattern, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pattern: FFT needs a power of two, got %d", n)
	}
	var phases []*Pattern
	for dist := 1; dist < n; dist <<= 1 {
		ph := New(n)
		for i := 0; i < n; i++ {
			ph.Add(i, i^dist, bytes)
		}
		phases = append(phases, ph)
	}
	return phases, nil
}

// HotSpot sends from every node to a single hot destination plus a
// background random permutation — the classic adversarial mix for
// adaptive-vs-oblivious studies. frac in (0,1] selects the share of
// nodes hitting the hot spot.
func HotSpot(n, hot int, frac float64, bytes int64) (*Pattern, error) {
	if hot < 0 || hot >= n {
		return nil, fmt.Errorf("pattern: hot node %d out of range", hot)
	}
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("pattern: hot fraction %f out of (0,1]", frac)
	}
	p := New(n)
	stride := int(1 / frac)
	if stride < 1 {
		stride = 1
	}
	for s := 0; s < n; s += stride {
		if s != hot {
			p.Add(s, hot, bytes)
		}
	}
	return p, nil
}

// Gather sends from every node to a single root (MPI_Gather's
// network traffic).
func Gather(n, root int, bytes int64) (*Pattern, error) {
	if root < 0 || root >= n {
		return nil, fmt.Errorf("pattern: gather root %d out of range", root)
	}
	p := New(n)
	for s := 0; s < n; s++ {
		if s != root {
			p.Add(s, root, bytes)
		}
	}
	return p, nil
}

// Scatter sends from a single root to every other node.
func Scatter(n, root int, bytes int64) (*Pattern, error) {
	if root < 0 || root >= n {
		return nil, fmt.Errorf("pattern: scatter root %d out of range", root)
	}
	p := New(n)
	for d := 0; d < n; d++ {
		if d != root {
			p.Add(root, d, bytes)
		}
	}
	return p, nil
}

// Ring builds the nearest-neighbour ring exchange: i sends to both
// (i+1) mod n and (i-1) mod n.
func Ring(n int, bytes int64) *Pattern {
	p := New(n)
	for i := 0; i < n; i++ {
		p.Add(i, (i+1)%n, bytes)
		p.Add(i, (i-1+n)%n, bytes)
	}
	return p
}

// AllToAllPhases decomposes the complete exchange into n-1 shift
// permutation phases (the classic linear-exchange schedule): phase k
// is i -> (i+k) mod n.
func AllToAllPhases(n int, bytes int64) []*Pattern {
	phases := make([]*Pattern, 0, n-1)
	for k := 1; k < n; k++ {
		phases = append(phases, Shift(n, k, bytes))
	}
	return phases
}
