package pattern

import "testing"

func TestHalo2DInterior(t *testing.T) {
	p, err := Halo2D(4, 4, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	out := p.OutDegree()
	// Corner nodes have 2 neighbours, edges 3, interior 4.
	if out[0] != 2 {
		t.Errorf("corner degree = %d, want 2", out[0])
	}
	if out[1] != 3 {
		t.Errorf("edge degree = %d, want 3", out[1])
	}
	if out[5] != 4 {
		t.Errorf("interior degree = %d, want 4", out[5])
	}
	// Symmetric pattern.
	m := p.ConnectivityMatrix()
	for s := range m {
		for d := range m[s] {
			if m[s][d] != m[d][s] {
				t.Fatalf("halo not symmetric at (%d,%d)", s, d)
			}
		}
	}
}

func TestHalo2DPeriodic(t *testing.T) {
	p, err := Halo2D(4, 4, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p.OutDegree() {
		if d != 4 {
			t.Fatalf("periodic degree = %d, want 4", d)
		}
	}
	if _, err := Halo2D(0, 4, 1, false); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestHalo2DDegenerate(t *testing.T) {
	// A 1x2 periodic grid: wraparound collapses onto the single
	// neighbour; no self flows allowed.
	p, err := Halo2D(1, 2, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		if f.Src == f.Dst {
			t.Errorf("self flow %d", f.Src)
		}
	}
}

func TestHalo3D(t *testing.T) {
	p, err := Halo3D(3, 3, 3, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	out := p.OutDegree()
	center := (1*3+1)*3 + 1
	if out[center] != 6 {
		t.Errorf("center degree = %d, want 6", out[center])
	}
	if out[0] != 3 {
		t.Errorf("corner degree = %d, want 3", out[0])
	}
	periodic, err := Halo3D(3, 3, 3, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range periodic.OutDegree() {
		if d != 6 {
			t.Fatalf("periodic degree = %d, want 6", d)
		}
	}
	if _, err := Halo3D(3, 0, 3, 1, false); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestFFTPhases(t *testing.T) {
	phases, err := FFTPhases(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(phases))
	}
	for k, ph := range phases {
		if !ph.IsPermutation() {
			t.Errorf("phase %d not a permutation", k)
		}
		for _, f := range ph.Flows {
			if f.Dst != f.Src^(1<<k) {
				t.Errorf("phase %d flow %d->%d", k, f.Src, f.Dst)
			}
		}
	}
	if _, err := FFTPhases(12, 1); err == nil {
		t.Error("non power of two accepted")
	}
}

func TestHotSpot(t *testing.T) {
	p, err := HotSpot(64, 5, 0.25, 100)
	if err != nil {
		t.Fatal(err)
	}
	in := p.InDegree()
	for d, c := range in {
		if d == 5 {
			if c < 10 {
				t.Errorf("hot node got %d flows", c)
			}
		} else if c != 0 {
			t.Errorf("cold node %d got %d flows", d, c)
		}
	}
	if _, err := HotSpot(64, 99, 0.5, 1); err == nil {
		t.Error("bad hot node accepted")
	}
	if _, err := HotSpot(64, 0, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestGatherScatterAreInverses(t *testing.T) {
	g, err := Gather(32, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Scatter(32, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	gi := g.Inverse().ConnectivityMatrix()
	sm := s.ConnectivityMatrix()
	for i := range gi {
		for j := range gi[i] {
			if gi[i][j] != sm[i][j] {
				t.Fatalf("gather^-1 != scatter at (%d,%d)", i, j)
			}
		}
	}
	if _, err := Gather(32, -1, 1); err == nil {
		t.Error("bad gather root accepted")
	}
	if _, err := Scatter(32, 32, 1); err == nil {
		t.Error("bad scatter root accepted")
	}
}

func TestRing(t *testing.T) {
	p := Ring(8, 100)
	for _, d := range p.OutDegree() {
		if d != 2 {
			t.Fatalf("ring degree = %d", d)
		}
	}
	if len(p.Flows) != 16 {
		t.Errorf("flows = %d", len(p.Flows))
	}
}

func TestAllToAllPhases(t *testing.T) {
	phases := AllToAllPhases(8, 10)
	if len(phases) != 7 {
		t.Fatalf("phases = %d, want 7", len(phases))
	}
	union, err := Union(phases...)
	if err != nil {
		t.Fatal(err)
	}
	want := AllToAll(8, 10)
	um := union.ConnectivityMatrix()
	wm := want.ConnectivityMatrix()
	for i := range um {
		for j := range um[i] {
			if um[i][j] != wm[i][j] {
				t.Fatalf("union of phases != all-to-all at (%d,%d)", i, j)
			}
		}
	}
	for _, ph := range phases {
		if !ph.IsPermutation() {
			t.Error("phase is not a permutation")
		}
	}
}
