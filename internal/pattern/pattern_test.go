package pattern

import (
	"repro/internal/hashutil"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	p := New(4)
	p.Add(0, 1, 100)
	p.Add(3, 2, 200)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	bad := []*Pattern{
		{N: 0},
		{N: 4, Flows: []Flow{{Src: -1, Dst: 0, Bytes: 1}}},
		{N: 4, Flows: []Flow{{Src: 0, Dst: 4, Bytes: 1}}},
		{N: 4, Flows: []Flow{{Src: 0, Dst: 1, Bytes: -5}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad pattern %d accepted", i)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	p := New(8)
	p.Add(0, 5, 10)
	p.Add(5, 0, 20)
	p.Add(3, 3, 30)
	inv := p.Inverse()
	if inv.Flows[0] != (Flow{Src: 5, Dst: 0, Bytes: 10}) {
		t.Errorf("inverse flow 0 = %+v", inv.Flows[0])
	}
	back := inv.Inverse()
	for i := range p.Flows {
		if back.Flows[i] != p.Flows[i] {
			t.Errorf("double inverse flow %d = %+v, want %+v", i, back.Flows[i], p.Flows[i])
		}
	}
}

func TestIsPermutation(t *testing.T) {
	perm := New(4)
	perm.Add(0, 1, 1)
	perm.Add(1, 0, 1)
	perm.Add(2, 3, 1)
	if !perm.IsPermutation() {
		t.Error("permutation not recognized")
	}
	dupSrc := New(4)
	dupSrc.Add(0, 1, 1)
	dupSrc.Add(0, 2, 1)
	if dupSrc.IsPermutation() {
		t.Error("duplicate source accepted as permutation")
	}
	dupDst := New(4)
	dupDst.Add(0, 2, 1)
	dupDst.Add(1, 2, 1)
	if dupDst.IsPermutation() {
		t.Error("duplicate destination accepted as permutation")
	}
	selfFlow := New(4)
	selfFlow.Add(2, 2, 1)
	if selfFlow.IsPermutation() {
		t.Error("self flow accepted as permutation")
	}
}

func TestConnectivityMatrix(t *testing.T) {
	p := New(3)
	p.Add(0, 1, 10)
	p.Add(0, 1, 5)
	p.Add(2, 0, 7)
	m := p.ConnectivityMatrix()
	if m[0][1] != 15 || m[2][0] != 7 || m[1][2] != 0 {
		t.Errorf("matrix = %v", m)
	}
}

func TestDegreesAndBytes(t *testing.T) {
	p := New(4)
	p.Add(0, 1, 10)
	p.Add(0, 2, 20)
	p.Add(3, 1, 5)
	p.Add(2, 2, 99) // self flow: ignored by degree/byte accounting
	out := p.OutDegree()
	in := p.InDegree()
	if out[0] != 2 || out[3] != 1 || out[2] != 0 {
		t.Errorf("out degrees = %v", out)
	}
	if in[1] != 2 || in[2] != 1 || in[0] != 0 {
		t.Errorf("in degrees = %v", in)
	}
	bo, bi := p.BytesOut(), p.BytesIn()
	if bo[0] != 30 || bo[2] != 0 {
		t.Errorf("bytes out = %v", bo)
	}
	if bi[1] != 15 || bi[2] != 20 {
		t.Errorf("bytes in = %v", bi)
	}
	if p.TotalBytes() != 134 {
		t.Errorf("total bytes = %d", p.TotalBytes())
	}
}

func TestDecomposePreservesFlows(t *testing.T) {
	p := UniformRandom(16, 3, 100, 7)
	p.Add(4, 4, 50) // self flow survives decomposition
	rounds := p.Decompose()
	count := make(map[Flow]int)
	for _, f := range p.Flows {
		count[f]++
	}
	for _, r := range rounds {
		if !r.IsPermutation() && hasNetworkConflict(r) {
			t.Fatal("round is not conflict-free")
		}
		for _, f := range r.Flows {
			count[f]--
		}
	}
	for f, c := range count {
		if c != 0 {
			t.Errorf("flow %+v count mismatch %d after decomposition", f, c)
		}
	}
}

// hasNetworkConflict reports whether two non-self flows share a source
// or destination.
func hasNetworkConflict(p *Pattern) bool {
	src := make(map[int]bool)
	dst := make(map[int]bool)
	for _, f := range p.Flows {
		if f.Src == f.Dst {
			continue
		}
		if src[f.Src] || dst[f.Dst] {
			return true
		}
		src[f.Src] = true
		dst[f.Dst] = true
	}
	return false
}

func TestDecomposeRoundsAreConflictFree(t *testing.T) {
	p := AllToAll(8, 10)
	rounds := p.Decompose()
	if len(rounds) != 7 {
		t.Errorf("all-to-all on 8 decomposed into %d rounds, want 7", len(rounds))
	}
	for i, r := range rounds {
		if hasNetworkConflict(r) {
			t.Errorf("round %d has conflicts", i)
		}
	}
}

func TestUnion(t *testing.T) {
	a := New(4)
	a.Add(0, 1, 1)
	b := New(4)
	b.Add(2, 3, 2)
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Flows) != 2 {
		t.Errorf("union has %d flows", len(u.Flows))
	}
	c := New(5)
	if _, err := Union(a, c); err == nil {
		t.Error("union of mismatched sizes accepted")
	}
	if _, err := Union(); err == nil {
		t.Error("empty union accepted")
	}
}

func TestPermAlgebra(t *testing.T) {
	id := Identity(5)
	for i, v := range id {
		if v != i {
			t.Fatalf("identity[%d] = %d", i, v)
		}
	}
	p := KeyedPerm(8, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	comp := p.Compose(inv)
	for i, v := range comp {
		if v != i {
			t.Fatalf("p∘p⁻¹[%d] = %d", i, v)
		}
	}
}

func TestPermPartial(t *testing.T) {
	p := Perm{2, -1, 0}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	if inv[0] != 2 || inv[1] != -1 || inv[2] != 0 {
		t.Errorf("partial inverse = %v", inv)
	}
	bad := Perm{0, 0, 1}
	if bad.Validate() == nil {
		t.Error("duplicate image accepted")
	}
	oob := Perm{3, 1, 2}
	if oob.Validate() == nil {
		t.Error("out-of-range image accepted")
	}
}

func TestPermPattern(t *testing.T) {
	p := Perm{1, 0, 2, -1}
	pat := p.Pattern(64)
	if len(pat.Flows) != 2 {
		t.Fatalf("pattern has %d flows, want 2 (self and silent skipped)", len(pat.Flows))
	}
	if !pat.IsPermutation() {
		t.Error("perm pattern is not a permutation")
	}
}

func TestQuickPermInverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		n := 2 + rng.Intn(64)
		p := KeyedPerm(n, uint64(seed))
		q := p.Inverse().Inverse()
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecomposeUnionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		n := 2 + rng.Intn(24)
		p := UniformRandom(n, 1+rng.Intn(4), 10, uint64(seed))
		rounds := p.Decompose()
		total := 0
		for _, r := range rounds {
			if hasNetworkConflict(r) {
				return false
			}
			total += len(r.Flows)
		}
		return total == len(p.Flows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
