// Package pattern models communication patterns as sets of flows
// (source, destination, byte count), the connectivity-matrix view of
// the paper's §III, and provides the permutation algebra used by the
// combinatorial analysis of §VII-B/C (inverses, decomposition of
// general patterns into permutations) plus generators for the
// application patterns of the evaluation (WRF halo exchange, NAS CG)
// and classic synthetic patterns.
package pattern

import (
	"fmt"
	"sort"

	"repro/internal/hashutil"
)

// Flow is a single point-to-point transfer of Bytes bytes.
type Flow struct {
	Src, Dst int
	Bytes    int64
}

// Pattern is a communication pattern over N endpoints. The same
// (Src, Dst) pair may appear in several flows (multigraph), matching
// the paper's general connectivity matrices where m_ij carries a cost
// such as a byte count.
type Pattern struct {
	N     int
	Flows []Flow
}

// New returns an empty pattern over n endpoints.
func New(n int) *Pattern { return &Pattern{N: n} }

// Add appends a flow. Self-flows (src == dst) are legal but carry no
// network traffic; routing layers skip them.
func (p *Pattern) Add(src, dst int, bytes int64) {
	p.Flows = append(p.Flows, Flow{Src: src, Dst: dst, Bytes: bytes})
}

// Validate checks all endpoints are within [0, N) and byte counts are
// non-negative.
func (p *Pattern) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("pattern: N=%d must be positive", p.N)
	}
	for i, f := range p.Flows {
		if f.Src < 0 || f.Src >= p.N {
			return fmt.Errorf("pattern: flow %d source %d out of range [0,%d)", i, f.Src, p.N)
		}
		if f.Dst < 0 || f.Dst >= p.N {
			return fmt.Errorf("pattern: flow %d destination %d out of range [0,%d)", i, f.Dst, p.N)
		}
		if f.Bytes < 0 {
			return fmt.Errorf("pattern: flow %d has negative byte count %d", i, f.Bytes)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{N: p.N, Flows: append([]Flow(nil), p.Flows...)}
}

// TotalBytes sums the byte counts of all flows.
func (p *Pattern) TotalBytes() int64 {
	var total int64
	for _, f := range p.Flows {
		total += f.Bytes
	}
	return total
}

// Fingerprint returns a 64-bit content hash of the pattern: N plus
// every flow in order. Two patterns built independently from the same
// flows hash identically, which is what lets routing-table caches key
// on pattern *content* rather than pointer identity. Flow order is
// significant (tables are flow-order aligned).
func (p *Pattern) Fingerprint() uint64 {
	h := hashutil.Fold(0x9e3779b97f4a7c15, uint64(p.N), uint64(len(p.Flows)))
	for _, f := range p.Flows {
		h = hashutil.Fold(h, uint64(f.Src), uint64(f.Dst), uint64(f.Bytes))
	}
	return h
}

// Inverse returns the pattern with every flow reversed: the D -> S
// pattern of §VII-B whose D-mod-k behaviour mirrors S-mod-k on the
// original.
func (p *Pattern) Inverse() *Pattern {
	inv := &Pattern{N: p.N, Flows: make([]Flow, len(p.Flows))}
	for i, f := range p.Flows {
		inv.Flows[i] = Flow{Src: f.Dst, Dst: f.Src, Bytes: f.Bytes}
	}
	return inv
}

// Union merges several patterns over the same endpoint count.
func Union(ps ...*Pattern) (*Pattern, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("pattern: union of nothing")
	}
	out := &Pattern{N: ps[0].N}
	for _, p := range ps {
		if p.N != out.N {
			return nil, fmt.Errorf("pattern: union size mismatch %d vs %d", p.N, out.N)
		}
		out.Flows = append(out.Flows, p.Flows...)
	}
	return out, nil
}

// IsPermutation reports whether the pattern is a permutation in the
// paper's sense: every source sends to at most one destination, every
// destination receives from at most one source, and no flow is a
// self-flow.
func (p *Pattern) IsPermutation() bool {
	srcSeen := make([]bool, p.N)
	dstSeen := make([]bool, p.N)
	for _, f := range p.Flows {
		if f.Src == f.Dst {
			return false
		}
		if srcSeen[f.Src] || dstSeen[f.Dst] {
			return false
		}
		srcSeen[f.Src] = true
		dstSeen[f.Dst] = true
	}
	return true
}

// ConnectivityMatrix materializes the N x N byte matrix M with
// M[s][d] = total bytes from s to d (the paper's §III view). Only
// sensible for small N.
func (p *Pattern) ConnectivityMatrix() [][]int64 {
	m := make([][]int64, p.N)
	row := make([]int64, p.N*p.N)
	for i := range m {
		m[i], row = row[:p.N:p.N], row[p.N:]
	}
	for _, f := range p.Flows {
		m[f.Src][f.Dst] += f.Bytes
	}
	return m
}

// OutDegree returns, per source, the number of flows it originates;
// InDegree the number of flows each destination receives. These are
// the endpoint-contention counts of §IV.
func (p *Pattern) OutDegree() []int {
	d := make([]int, p.N)
	for _, f := range p.Flows {
		if f.Src != f.Dst {
			d[f.Src]++
		}
	}
	return d
}

// InDegree is the receive-side counterpart of OutDegree.
func (p *Pattern) InDegree() []int {
	d := make([]int, p.N)
	for _, f := range p.Flows {
		if f.Src != f.Dst {
			d[f.Dst]++
		}
	}
	return d
}

// BytesOut returns per-source injected bytes; BytesIn per-destination
// ejected bytes. Self-flows are excluded (they never enter the
// network). These drive the full-crossbar completion bound.
func (p *Pattern) BytesOut() []int64 {
	b := make([]int64, p.N)
	for _, f := range p.Flows {
		if f.Src != f.Dst {
			b[f.Src] += f.Bytes
		}
	}
	return b
}

// BytesIn is the receive-side counterpart of BytesOut.
func (p *Pattern) BytesIn() []int64 {
	b := make([]int64, p.N)
	for _, f := range p.Flows {
		if f.Src != f.Dst {
			b[f.Dst] += f.Bytes
		}
	}
	return b
}

// Decompose splits a general pattern into permutations (§VII-C:
// "any general pattern G can be decomposed into a certain set of
// permutations"). Flows are greedily packed: each round takes at most
// one flow per source and per destination. The union of the returned
// patterns has exactly the original flows. Self-flows are emitted in
// rounds like other flows but never block a slot.
func (p *Pattern) Decompose() []*Pattern {
	remaining := make([]Flow, len(p.Flows))
	copy(remaining, p.Flows)
	// Deterministic order: by source then destination, so the
	// decomposition is reproducible.
	sort.SliceStable(remaining, func(i, j int) bool {
		if remaining[i].Src != remaining[j].Src {
			return remaining[i].Src < remaining[j].Src
		}
		return remaining[i].Dst < remaining[j].Dst
	})
	var rounds []*Pattern
	for len(remaining) > 0 {
		round := New(p.N)
		srcUsed := make([]bool, p.N)
		dstUsed := make([]bool, p.N)
		var next []Flow
		for _, f := range remaining {
			if f.Src == f.Dst {
				round.Flows = append(round.Flows, f)
				continue
			}
			if srcUsed[f.Src] || dstUsed[f.Dst] {
				next = append(next, f)
				continue
			}
			srcUsed[f.Src] = true
			dstUsed[f.Dst] = true
			round.Flows = append(round.Flows, f)
		}
		rounds = append(rounds, round)
		remaining = next
	}
	return rounds
}

// Perm is a (possibly partial) permutation mapping: Perm[i] = j means
// i sends to j; Perm[i] = -1 means i is silent.
type Perm []int

// Identity returns the identity mapping on n points.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// KeyedPerm draws a uniform full permutation on n points from the
// keyed splitmix64 stream: a pure function of (seed, n), so the same
// seed names the same permutation on every platform and Go version —
// the coordinate-derived-randomness rule the routing schemes follow,
// available to workload generators.
func KeyedPerm(n int, seed uint64) Perm {
	p := Identity(n)
	// Fisher–Yates with hash-derived draws; modulo bias over i+1 is
	// negligible at fat-tree scales (i+1 << 2^64).
	for i := n - 1; i > 0; i-- {
		j := int(hashutil.Mix(seed, uint64(i)) % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandomDerangementLike draws a keyed random permutation and retries
// a few times to avoid fixed points; used by traffic generators that
// want every node to actually send. If fixed points survive, they
// remain (they simply produce self-flows that carry no traffic). Like
// KeyedPerm, the result is a pure function of (seed, n).
func RandomDerangementLike(n int, seed uint64) Perm {
	p := KeyedPerm(n, seed)
	for attempt := 0; attempt < 8; attempt++ {
		fixed := false
		for i, v := range p {
			if i == v {
				fixed = true
				j := int(hashutil.Mix(seed, uint64(attempt), uint64(i)) % uint64(n))
				p[i], p[j] = p[j], p[i]
			}
		}
		if !fixed {
			break
		}
	}
	return p
}

// Validate checks the mapping is a partial permutation.
func (pm Perm) Validate() error {
	seen := make([]bool, len(pm))
	for i, v := range pm {
		if v == -1 {
			continue
		}
		if v < 0 || v >= len(pm) {
			return fmt.Errorf("perm: image %d of %d out of range", v, i)
		}
		if seen[v] {
			return fmt.Errorf("perm: image %d hit twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns the inverse partial permutation.
func (pm Perm) Inverse() Perm {
	inv := make(Perm, len(pm))
	for i := range inv {
		inv[i] = -1
	}
	for i, v := range pm {
		if v >= 0 {
			inv[v] = i
		}
	}
	return inv
}

// Compose returns the mapping q∘p: (q after p).
func (pm Perm) Compose(q Perm) Perm {
	out := make(Perm, len(pm))
	for i, v := range pm {
		if v < 0 || q[v] < 0 {
			out[i] = -1
			continue
		}
		out[i] = q[v]
	}
	return out
}

// Pattern converts the mapping into a Pattern with the given per-flow
// byte count, skipping silent sources and self-mappings.
func (pm Perm) Pattern(bytes int64) *Pattern {
	p := New(len(pm))
	for i, v := range pm {
		if v >= 0 && v != i {
			p.Add(i, v, bytes)
		}
	}
	return p
}
