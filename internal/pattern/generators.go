package pattern

import (
	"fmt"

	"repro/internal/hashutil"
)

// DefaultCGPhaseBytes is the per-message size of every CG exchange
// phase reported by the paper (§VII-A): 750 KB.
const DefaultCGPhaseBytes = 750 * 1024

// DefaultWRFBytes is the per-message halo size used for WRF. The
// paper does not state it; slowdowns are ratios, so the choice only
// scales absolute times (see DESIGN.md substitution #5).
const DefaultWRFBytes = 512 * 1024

// WRF builds the paper's WRF-256 communication structure on a
// rows x cols task mesh: every task T_i exchanges with T_{i±cols}
// ("pairwise exchanges in a 16x16 mesh; every task initiates two
// outstanding communications to nodes T_{i±16}"). The first and last
// row only talk to one neighbour. Both directions are injected
// simultaneously, matching the paper's description of outstanding
// sends.
func WRF(rows, cols int, bytes int64) *Pattern {
	n := rows * cols
	p := New(n)
	for i := 0; i < n; i++ {
		if i+cols < n {
			p.Add(i, i+cols, bytes)
		}
		if i-cols >= 0 {
			p.Add(i, i-cols, bytes)
		}
	}
	return p
}

// WRF256 is the exact WRF-256 instance of the evaluation.
func WRF256() *Pattern { return WRF(16, 16, DefaultWRFBytes) }

// CGPhases builds the NAS CG communication structure for nprocs
// ranks (nprocs must be a power of two >= 4) as a sequence of
// phases. With the grid factorization nprows x npcols
// (npcols = nprows or 2*nprows), CG performs log2(npcols) butterfly
// exchanges across each processor row — ranks of one row are
// contiguous, so on trees with >= npcols-port first-level switches
// these are switch-local — followed by the transpose exchange. For
// nprocs=128 this yields the paper's five phases of which only the
// fifth leaves the first-level switch, and the fifth phase follows
// the paper's Eq. (2): within switch 0, d = s/2*16 + (s mod 2).
func CGPhases(nprocs int, bytes int64) ([]*Pattern, error) {
	if nprocs < 4 || nprocs&(nprocs-1) != 0 {
		return nil, fmt.Errorf("pattern: CG needs a power-of-two process count >= 4, got %d", nprocs)
	}
	log2 := 0
	for v := nprocs; v > 1; v >>= 1 {
		log2++
	}
	nprows := 1 << (log2 / 2)
	npcols := nprocs / nprows // npcols == nprows or 2*nprows
	// Butterfly phases across each row: partner = rank XOR 2^k for
	// k = 0..log2(npcols)-1. Row-mates are contiguous ranks.
	var phases []*Pattern
	for dist := 1; dist < npcols; dist <<= 1 {
		ph := New(nprocs)
		for r := 0; r < nprocs; r++ {
			ph.Add(r, r^dist, bytes)
		}
		phases = append(phases, ph)
	}
	phases = append(phases, cgTranspose(nprocs, nprows, npcols, bytes))
	return phases, nil
}

// cgTranspose builds CG's irregular "exchange" phase: the transpose
// partner permutation of the NAS CG kernel.
func cgTranspose(nprocs, nprows, npcols int, bytes int64) *Pattern {
	ph := New(nprocs)
	for me := 0; me < nprocs; me++ {
		var partner int
		if npcols == nprows {
			partner = (me%nprows)*nprows + me/nprows
		} else {
			// npcols == 2*nprows: pairs of ranks transpose together.
			half := me / 2
			partner = 2*((half%nprows)*nprows+half/nprows) + me%2
		}
		ph.Add(me, partner, bytes)
	}
	return ph
}

// CGTransposePhase returns only the non-local fifth phase for nprocs
// ranks; for nprocs=128 this is the permutation of the paper's
// Eq. (2) analysis.
func CGTransposePhase(nprocs int, bytes int64) (*Pattern, error) {
	phases, err := CGPhases(nprocs, bytes)
	if err != nil {
		return nil, err
	}
	return phases[len(phases)-1], nil
}

// CGD128Phases is the exact CG.D-128 instance of the evaluation:
// five phases of 750 KB messages.
func CGD128Phases() []*Pattern {
	phases, err := CGPhases(128, DefaultCGPhaseBytes)
	if err != nil {
		panic(err) //lint:allow banned unreachable: 128 is a valid count
	}
	return phases
}

// Shift builds the cyclic shift pattern i -> (i+k) mod n used by the
// InfiniBand fat-tree routing literature the paper cites.
func Shift(n, k int, bytes int64) *Pattern {
	p := New(n)
	for i := 0; i < n; i++ {
		d := ((i+k)%n + n) % n
		if d != i {
			p.Add(i, d, bytes)
		}
	}
	return p
}

// Transpose builds the matrix-transpose permutation on an r x c grid
// (rank i=row*c+col sends to col*r+row).
func Transpose(rows, cols int, bytes int64) *Pattern {
	n := rows * cols
	p := New(n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		d := c*rows + r
		if d != i {
			p.Add(i, d, bytes)
		}
	}
	return p
}

// BitReversal builds the bit-reversal permutation on n = 2^k nodes.
func BitReversal(n int, bytes int64) (*Pattern, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pattern: bit reversal needs a power of two, got %d", n)
	}
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	p := New(n)
	for i := 0; i < n; i++ {
		d := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				d |= 1 << (bits - 1 - b)
			}
		}
		if d != i {
			p.Add(i, d, bytes)
		}
	}
	return p, nil
}

// BitComplement builds i -> ^i (mod n) for power-of-two n.
func BitComplement(n int, bytes int64) (*Pattern, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pattern: bit complement needs a power of two, got %d", n)
	}
	p := New(n)
	for i := 0; i < n; i++ {
		p.Add(i, (n-1)^i, bytes)
	}
	return p, nil
}

// Tornado builds the tornado pattern i -> (i + n/2 - 1) mod n.
func Tornado(n int, bytes int64) *Pattern {
	return Shift(n, n/2-1, bytes)
}

// Butterfly builds the butterfly-stage exchange i -> i XOR 2^stage.
func Butterfly(n, stage int, bytes int64) (*Pattern, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pattern: butterfly needs a power of two, got %d", n)
	}
	if dist := 1 << stage; dist >= n || stage < 0 {
		return nil, fmt.Errorf("pattern: butterfly stage %d out of range for n=%d", stage, n)
	}
	p := New(n)
	for i := 0; i < n; i++ {
		p.Add(i, i^(1<<stage), bytes)
	}
	return p, nil
}

// AllToAll builds the complete exchange: every node sends bytes to
// every other node.
func AllToAll(n int, bytes int64) *Pattern {
	p := New(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				p.Add(s, d, bytes)
			}
		}
	}
	return p
}

// UniformRandom builds a pattern where every node sends `flowsPerNode`
// messages to independently drawn uniform destinations (the "random
// traffic" of the simulation studies the paper discusses). Every
// destination draw comes from the keyed splitmix64 stream, so the
// pattern is a pure function of (seed, n, flowsPerNode) — the
// coordinate-derived-randomness rule the routing schemes follow.
func UniformRandom(n, flowsPerNode int, bytes int64, seed uint64) *Pattern {
	p := New(n)
	for s := 0; s < n; s++ {
		for k := 0; k < flowsPerNode; k++ {
			// Modulo bias over n-1 is negligible at fat-tree scales.
			d := int(hashutil.Mix(seed, uint64(s), uint64(k)) % uint64(n-1))
			if d >= s {
				d++
			}
			p.Add(s, d, bytes)
		}
	}
	return p
}

// KeyedRandomPermutation draws a uniform random permutation pattern
// from the keyed splitmix64 stream — deterministic per (seed, n) with
// no rand.Rand state (see KeyedPerm).
func KeyedRandomPermutation(n int, bytes int64, seed uint64) *Pattern {
	return KeyedPerm(n, seed).Pattern(bytes)
}
