package pattern

import (
	"reflect"
	"testing"
)

func TestWRF256Shape(t *testing.T) {
	p := WRF256()
	if p.N != 256 {
		t.Fatalf("N = %d", p.N)
	}
	// Paper: every task exchanges with T_{i±16}; first and last 16
	// tasks have a single partner. Flows: 2*256 - 2*16 = 480.
	if len(p.Flows) != 480 {
		t.Errorf("flows = %d, want 480", len(p.Flows))
	}
	out := p.OutDegree()
	for i, d := range out {
		want := 2
		if i < 16 || i >= 240 {
			want = 1
		}
		if d != want {
			t.Errorf("task %d out degree = %d, want %d", i, d, want)
		}
	}
	// Symmetric pattern: its inverse has the same connectivity matrix.
	m := p.ConnectivityMatrix()
	mi := p.Inverse().ConnectivityMatrix()
	for s := range m {
		for d := range m[s] {
			if m[s][d] != mi[s][d] {
				t.Fatalf("WRF not symmetric at (%d,%d)", s, d)
			}
		}
	}
}

func TestCGPhasesStructure(t *testing.T) {
	phases, err := CGPhases(128, DefaultCGPhaseBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: five exchanges of equal size, four local to the
	// first-level 16-port switch.
	if len(phases) != 5 {
		t.Fatalf("phases = %d, want 5", len(phases))
	}
	for i, ph := range phases[:4] {
		for _, f := range ph.Flows {
			if f.Src/16 != f.Dst/16 {
				t.Errorf("phase %d flow %d->%d leaves the switch", i, f.Src, f.Dst)
			}
		}
	}
	nonLocal := 0
	for _, f := range phases[4].Flows {
		if f.Src/16 != f.Dst/16 {
			nonLocal++
		}
	}
	if nonLocal == 0 {
		t.Error("fifth phase has no inter-switch traffic")
	}
}

func TestCGEquation2(t *testing.T) {
	// Paper Eq. (2): within switch 0, d = s/2*16 + (s mod 2).
	ph, err := CGTransposePhase(128, DefaultCGPhaseBytes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(map[int]int)
	for _, f := range ph.Flows {
		dst[f.Src] = f.Dst
	}
	for s := 0; s < 16; s++ {
		want := s/2*16 + s%2
		if dst[s] != want {
			t.Errorf("Eq.(2): d(%d) = %d, want %d", s, dst[s], want)
		}
	}
	// The phase is a permutation overall (self-flows allowed as
	// fixed points that carry no traffic).
	seen := make(map[int]bool)
	for _, f := range ph.Flows {
		if seen[f.Dst] {
			t.Fatalf("destination %d repeated", f.Dst)
		}
		seen[f.Dst] = true
	}
	if len(seen) != 128 {
		t.Fatalf("transpose covers %d destinations, want 128", len(seen))
	}
	// D-mod-k pathology precondition: within every switch, d mod 16
	// takes exactly two values (2b and 2b+1 for switch b).
	for b := 0; b < 8; b++ {
		vals := make(map[int]bool)
		for s := 16 * b; s < 16*(b+1); s++ {
			vals[dst[s]%16] = true
		}
		if len(vals) != 2 {
			t.Errorf("switch %d uses %d distinct d mod 16 values, want 2", b, len(vals))
		}
		if !vals[2*b] || !vals[2*b+1] {
			t.Errorf("switch %d d mod 16 values %v, want {%d,%d}", b, vals, 2*b, 2*b+1)
		}
	}
}

func TestCGSquareGrid(t *testing.T) {
	// 64 procs: nprows = npcols = 8, transpose is the plain 8x8 one.
	phases, err := CGPhases(64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 { // 3 butterfly stages + transpose
		t.Fatalf("phases = %d, want 4", len(phases))
	}
	last := phases[len(phases)-1]
	for _, f := range last.Flows {
		want := (f.Src%8)*8 + f.Src/8
		if f.Dst != want {
			t.Errorf("transpose(%d) = %d, want %d", f.Src, f.Dst, want)
		}
	}
}

func TestCGErrors(t *testing.T) {
	for _, n := range []int{0, 2, 3, 100} {
		if _, err := CGPhases(n, 1); err == nil {
			t.Errorf("CGPhases(%d) accepted", n)
		}
	}
}

func TestShift(t *testing.T) {
	p := Shift(8, 3, 10)
	for _, f := range p.Flows {
		if f.Dst != (f.Src+3)%8 {
			t.Errorf("shift flow %d->%d", f.Src, f.Dst)
		}
	}
	if !p.IsPermutation() {
		t.Error("shift is not a permutation")
	}
	neg := Shift(8, -3, 10)
	for _, f := range neg.Flows {
		if f.Dst != (f.Src+5)%8 {
			t.Errorf("negative shift flow %d->%d", f.Src, f.Dst)
		}
	}
	zero := Shift(8, 0, 10)
	if len(zero.Flows) != 0 {
		t.Error("zero shift produced flows")
	}
}

func TestTranspose(t *testing.T) {
	p := Transpose(4, 4, 10)
	if !p.IsPermutation() {
		t.Error("transpose not a permutation")
	}
	// (1,2) -> rank 6 maps to (2,1) -> rank 9.
	found := false
	for _, f := range p.Flows {
		if f.Src == 6 {
			found = true
			if f.Dst != 9 {
				t.Errorf("transpose(6) = %d, want 9", f.Dst)
			}
		}
	}
	if !found {
		t.Error("rank 6 silent in transpose")
	}
}

func TestBitReversal(t *testing.T) {
	p, err := BitReversal(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{1: 4, 4: 1, 3: 6, 6: 3}
	for _, f := range p.Flows {
		if w, ok := want[f.Src]; ok && f.Dst != w {
			t.Errorf("reverse(%d) = %d, want %d", f.Src, f.Dst, w)
		}
	}
	if _, err := BitReversal(6, 10); err == nil {
		t.Error("non power of two accepted")
	}
}

func TestBitComplement(t *testing.T) {
	p, err := BitComplement(16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsPermutation() {
		t.Error("bit complement not a permutation")
	}
	for _, f := range p.Flows {
		if f.Dst != 15-f.Src {
			t.Errorf("complement(%d) = %d", f.Src, f.Dst)
		}
	}
	if _, err := BitComplement(10, 1); err == nil {
		t.Error("non power of two accepted")
	}
}

func TestTornado(t *testing.T) {
	p := Tornado(8, 10)
	for _, f := range p.Flows {
		if f.Dst != (f.Src+3)%8 {
			t.Errorf("tornado flow %d->%d", f.Src, f.Dst)
		}
	}
}

func TestButterfly(t *testing.T) {
	p, err := Butterfly(8, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		if f.Dst != f.Src^2 {
			t.Errorf("butterfly flow %d->%d", f.Src, f.Dst)
		}
	}
	if _, err := Butterfly(8, 3, 10); err == nil {
		t.Error("stage out of range accepted")
	}
	if _, err := Butterfly(7, 0, 10); err == nil {
		t.Error("non power of two accepted")
	}
}

func TestAllToAll(t *testing.T) {
	p := AllToAll(5, 10)
	if len(p.Flows) != 20 {
		t.Errorf("flows = %d, want 20", len(p.Flows))
	}
	out := p.OutDegree()
	in := p.InDegree()
	for i := 0; i < 5; i++ {
		if out[i] != 4 || in[i] != 4 {
			t.Errorf("node %d degrees out=%d in=%d", i, out[i], in[i])
		}
	}
}

func TestUniformRandomNoSelfFlows(t *testing.T) {
	p := UniformRandom(32, 4, 10, 11)
	if len(p.Flows) != 128 {
		t.Errorf("flows = %d, want 128", len(p.Flows))
	}
	for _, f := range p.Flows {
		if f.Src == f.Dst {
			t.Errorf("self flow %d", f.Src)
		}
	}
}

func TestRandomDerangementLike(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		p := RandomDerangementLike(32, uint64(trial)+17)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		// Determinism: the same seed names the same mapping.
		q := RandomDerangementLike(32, uint64(trial)+17)
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("seed %d not reproducible: %v vs %v", trial+17, p, q)
			}
		}
	}
}

func TestKeyedPerm(t *testing.T) {
	const n = 128
	a := KeyedPerm(n, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	for _, v := range a {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[v] = true
	}
	b := KeyedPerm(n, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("KeyedPerm not deterministic per seed")
	}
	if reflect.DeepEqual(a, KeyedPerm(n, 8)) {
		t.Fatal("different seeds drew the same permutation")
	}
	// Known-answer pin: any change to the keyed stream or the
	// Fisher–Yates draw silently re-draws every CLI workload, so it
	// must fail loudly here.
	want := Perm{2, 0, 1, 7, 4, 5, 6, 3}
	if got := KeyedPerm(8, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("KeyedPerm(8,1) = %v, want pinned %v", got, want)
	}
}

func TestKeyedRandomPermutation(t *testing.T) {
	p := KeyedRandomPermutation(64, 10, 3)
	if p.N != 64 {
		t.Fatalf("N = %d", p.N)
	}
	if !p.IsPermutation() {
		t.Fatal("keyed pattern is not a permutation")
	}
	if p.Fingerprint() != KeyedRandomPermutation(64, 10, 3).Fingerprint() {
		t.Fatal("keyed pattern not reproducible")
	}
	if p.Fingerprint() == KeyedRandomPermutation(64, 10, 4).Fingerprint() {
		t.Fatal("seed ignored")
	}
	for _, f := range p.Flows {
		if f.Bytes != 10 {
			t.Fatalf("flow bytes %d, want 10", f.Bytes)
		}
	}
}
