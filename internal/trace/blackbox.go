package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Blackbox dumps anomaly bundles — the flight-recorder tail, the
// journal tail, a metrics snapshot and optional pprof profiles — to a
// spool directory as deterministic JSON: struct fields in declaration
// order, maps with sorted keys, ids as fixed-width hex, timestamps
// from the tracer clock. Given a fixed clock seam the same span
// history renders byte-identically.
type Blackbox struct {
	// Dir is the spool directory, created on first dump.
	Dir string
	// Tracer supplies the flight-recorder spans. Required.
	Tracer *Tracer
	// Journal, when set, contributes its event tail.
	Journal *obs.Journal
	// Metrics, when set, contributes a Snapshot and registers the dump
	// counter.
	Metrics *obs.Registry
	// Pprof includes goroutine and heap profiles (debug-text form) in
	// each bundle. Profiles are inherently nondeterministic; leave off
	// where bundles must be reproducible.
	Pprof bool
	// MaxSpans / MaxEvents bound the bundle tails; <= 0 selects 256
	// spans and 64 events.
	MaxSpans  int
	MaxEvents int

	mu    sync.Mutex // serializes dumps; seq and dumps counter init under it
	seq   uint64
	dumps *obs.Counter
}

// Bundle is one blackbox dump.
type Bundle struct {
	Seq      uint64             `json:"seq"`
	Reason   string             `json:"reason"`
	Spans    []SpanRecord       `json:"spans"`
	Events   []obs.Event        `json:"events,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Profiles map[string]string  `json:"profiles,omitempty"`
}

// Dump writes one bundle and returns its path. Concurrent dumps
// serialize; sequence numbers order the spool.
func (b *Blackbox) Dump(reason string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dumps == nil && b.Metrics != nil {
		b.dumps = b.Metrics.Counter(metricDumps, "blackbox bundles written", 1)
	}
	b.seq++
	bundle := Bundle{Seq: b.seq, Reason: reason, Spans: []SpanRecord{}}
	maxSpans, maxEvents := b.MaxSpans, b.MaxEvents
	if maxSpans <= 0 {
		maxSpans = 256
	}
	if maxEvents <= 0 {
		maxEvents = 64
	}
	if b.Tracer != nil {
		bundle.Spans = b.Tracer.Spans(maxSpans)
	}
	if b.Journal != nil {
		bundle.Events = b.Journal.Tail(maxEvents)
	}
	if b.Metrics != nil {
		bundle.Metrics = b.Metrics.Snapshot()
	}
	if b.Pprof {
		bundle.Profiles = profiles()
	}
	data, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		return "", fmt.Errorf("trace: encoding blackbox bundle: %w", err)
	}
	if err := os.MkdirAll(b.Dir, 0o755); err != nil {
		return "", fmt.Errorf("trace: blackbox spool: %w", err)
	}
	path := filepath.Join(b.Dir, fmt.Sprintf("blackbox-%06d.json", b.seq))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("trace: writing blackbox bundle: %w", err)
	}
	if b.dumps != nil {
		b.dumps.Inc()
	}
	return path, nil
}

// List returns the spool's bundle file names, sorted (and so in dump
// order). A missing spool directory lists as empty.
func (b *Blackbox) List() ([]string, error) {
	ents, err := os.ReadDir(b.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "blackbox-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// profiles captures the goroutine and heap profiles in debug-text
// form.
func profiles() map[string]string {
	out := make(map[string]string, 2)
	for _, name := range []string{"goroutine", "heap"} {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 1); err == nil {
			out[name] = buf.String()
		}
	}
	return out
}

// FlipDetector watches a boolean decision stream (did the Optimize
// pass swap?) and flags instability: two flips within the note
// window. A fabric oscillating between two tables is the paper's
// re-optimization loop failing to converge — exactly the state worth
// a blackbox bundle.
type FlipDetector struct {
	mu       sync.Mutex
	window   uint64
	n        uint64 // notes seen
	last     bool
	has      bool
	lastFlip uint64 // note index of the most recent flip, 0 when none
}

// NewFlipDetector returns a detector with the given note window
// (<= 0 selects 8).
func NewFlipDetector(window int) *FlipDetector {
	if window <= 0 {
		window = 8
	}
	return &FlipDetector{window: uint64(window)}
}

// Note records one decision outcome and reports whether it completed
// the second flip within the window — the anomaly.
func (d *FlipDetector) Note(outcome bool) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	if !d.has {
		d.has, d.last = true, outcome
		return false
	}
	if outcome == d.last {
		return false
	}
	d.last = outcome
	prev := d.lastFlip
	d.lastFlip = d.n
	return prev != 0 && d.n-prev <= d.window
}
