package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fixedClock returns a deterministic clock advancing step ns per
// call.
func fixedClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

// finish ends a span returned by value, for one-line call sites.
func finish(s Span) { s.End() }

func TestRootDeterministicAndKeyed(t *testing.T) {
	a := New(Config{Key: 7, SampleNum: 1, SampleDen: 4, RecorderCap: 8})
	b := New(Config{Key: 7, SampleNum: 1, SampleDen: 4, RecorderCap: 8})
	c := New(Config{Key: 8, SampleNum: 1, SampleDen: 4, RecorderCap: 8})
	diffKey := false
	for i := uint64(0); i < 64; i++ {
		sa, sb, sc := a.Root(3, i), b.Root(3, i), c.Root(3, i)
		if sa != sb {
			t.Fatalf("Root(3,%d) differs across tracers with equal keys: %+v vs %+v", i, sa, sb)
		}
		if !sa.Valid() {
			t.Fatalf("Root(3,%d) produced an invalid context", i)
		}
		if sa.Trace != sc.Trace {
			diffKey = true
		}
	}
	if !diffKey {
		t.Error("trace ids identical under different keys; derivation is not keyed")
	}
}

func TestSamplingRational(t *testing.T) {
	tr := New(Config{SampleNum: 1, SampleDen: 4, RecorderCap: 8})
	sampled := 0
	const n = 4096
	for i := uint64(0); i < n; i++ {
		if tr.Root(0, i).Sampled() {
			sampled++
		}
	}
	if sampled < n/8 || sampled > n/2 {
		t.Errorf("1/4 sampling selected %d of %d roots", sampled, n)
	}
	if num, den := tr.SampleRate(); num != 1 || den != 4 {
		t.Errorf("SampleRate() = %d/%d, want 1/4", num, den)
	}

	off := New(Config{SampleNum: 0, SampleDen: 1, RecorderCap: 8})
	all := New(Config{SampleNum: 9, SampleDen: 4, RecorderCap: 8})
	for i := uint64(0); i < 64; i++ {
		if off.Root(0, i).Sampled() {
			t.Fatal("0-rate tracer sampled a trace")
		}
		if !all.Root(0, i).Sampled() {
			t.Fatal("num>=den tracer skipped a trace")
		}
	}
}

// The head-sampling promise: the verdict is a function of the trace
// id, so a second tracer with the same key and rate — another layer
// of the same deployment — agrees per trace.
func TestSamplingConsistentAcrossLayers(t *testing.T) {
	client := New(Config{Key: 42, SampleNum: 3, SampleDen: 16, RecorderCap: 8})
	server := New(Config{Key: 42, SampleNum: 3, SampleDen: 16, RecorderCap: 8})
	for i := uint64(0); i < 512; i++ {
		id := client.Root(9, i).Trace
		if client.sampleID(id) != server.sampleID(id) {
			t.Fatalf("layers disagree on trace %v", id)
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in       string
		num, den uint64
		ok       bool
	}{
		{"0", 0, 1, true},
		{"1", 1, 1, true},
		{"1/1024", 1, 1024, true},
		{" 3 / 7 ", 3, 7, true},
		{"1/0", 0, 0, false},
		{"x", 0, 0, false},
		{"-1/2", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		num, den, err := ParseRate(c.in)
		if (err == nil) != c.ok || num != c.num || (c.ok && den != c.den) {
			t.Errorf("ParseRate(%q) = %d/%d, %v; want %d/%d ok=%v", c.in, num, den, err, c.num, c.den, c.ok)
		}
	}
}

func TestSpanRecordingAndParentLinks(t *testing.T) {
	tr := New(Config{Clock: fixedClock(10), SampleNum: 1, SampleDen: 1, RecorderCap: 32})
	root := tr.Root(1, 2)
	parent := tr.StartSpan(root, "test.parent")
	child := tr.StartChild(parent.Context(), "test.child")
	child.SetAttr("items", 5)
	child.End()
	parent.End()

	recs := tr.Spans(0)
	if len(recs) != 2 {
		t.Fatalf("Spans(0) = %d records, want 2", len(recs))
	}
	// Oldest first: the child ended before the parent.
	c, p := recs[0], recs[1]
	if c.Name != "test.child" || p.Name != "test.parent" {
		t.Fatalf("names = %q, %q", c.Name, p.Name)
	}
	if c.TraceID != p.TraceID {
		t.Errorf("trace ids differ: %s vs %s", c.TraceID, p.TraceID)
	}
	if c.Parent != p.SpanID {
		t.Errorf("child parent = %s, want parent span id %s", c.Parent, p.SpanID)
	}
	if p.Parent != "" {
		t.Errorf("root-level span has parent %q", p.Parent)
	}
	if !c.Sampled || !p.Sampled {
		t.Error("1/1 sampled trace recorded as unsampled")
	}
	if c.Attrs["items"] != 5 {
		t.Errorf("child attrs = %v", c.Attrs)
	}
	if c.Dur != 10 {
		t.Errorf("child dur = %d, want 10 (fixed clock, one step)", c.Dur)
	}
	if tr.SpanCount() != 2 {
		t.Errorf("SpanCount = %d", tr.SpanCount())
	}
}

func TestUnsampledStillHitsFlightRecorder(t *testing.T) {
	tr := New(Config{SampleNum: 0, SampleDen: 1, RecorderCap: 16})
	s := tr.StartSpan(tr.Root(0, 1), "test.coarse")
	s.End()
	recs := tr.Spans(0)
	if len(recs) != 1 || recs[0].Name != "test.coarse" || recs[0].Sampled {
		t.Fatalf("flight recorder after unsampled span: %+v", recs)
	}
	// Children of unsampled traces are no-ops and never recorded.
	c := tr.StartChild(tr.Root(0, 1), "test.fine")
	c.End()
	if got := tr.SpanCount(); got != 1 {
		t.Errorf("SpanCount after unsampled child = %d, want 1", got)
	}
}

func TestFlightRecorderRetainsLastN(t *testing.T) {
	tr := New(Config{RecorderCap: 8, SampleNum: 1, SampleDen: 1})
	for i := 0; i < 20; i++ {
		s := tr.StartSpan(tr.Root(0, uint64(i)), "test.span")
		s.SetAttr("i", int64(i))
		s.End()
	}
	recs := tr.Spans(0)
	if len(recs) != 8 {
		t.Fatalf("retained %d spans, want 8", len(recs))
	}
	for k, r := range recs {
		if want := int64(12 + k); r.Attrs["i"] != want {
			t.Errorf("recs[%d] i = %d, want %d (oldest first)", k, r.Attrs["i"], want)
		}
	}
	if recs2 := tr.Spans(3); len(recs2) != 3 || recs2[2].Attrs["i"] != 19 {
		t.Errorf("Spans(3) = %+v", recs2)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := New(Config{RecorderCap: 8})
	s := tr.StartSpan(tr.Root(0, 1), "test.span")
	for i := 0; i < MaxAttrs+3; i++ {
		s.SetAttr("k"+string(rune('a'+i)), int64(i))
	}
	s.End()
	recs := tr.Spans(0)
	if len(recs) != 1 || len(recs[0].Attrs) != MaxAttrs {
		t.Fatalf("attrs = %v, want exactly %d", recs[0].Attrs, MaxAttrs)
	}
}

func TestNamesInventory(t *testing.T) {
	tr := New(Config{RecorderCap: 8})
	s := tr.StartSpan(tr.Root(0, 1), "test.b")
	s.SetAttr("attrkey", 1)
	s.End()
	finish(tr.StartSpan(tr.Root(0, 2), "test.a"))
	tr.SetBudget("test.budgeted", time.Second)
	got := tr.Names()
	want := []string{"test.a", "test.b", "test.budgeted"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v (attr keys excluded)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestBudgetAnomalyAndCooldown(t *testing.T) {
	var mu sync.Mutex
	var fired []Anomaly
	tr := New(Config{
		Clock:           fixedClock(100),
		RecorderCap:     16,
		Budget:          50 * time.Nanosecond,
		AnomalyCooldown: 10 * time.Microsecond,
		OnAnomaly: func(a Anomaly) {
			mu.Lock()
			fired = append(fired, a)
			mu.Unlock()
		},
	})
	// Every span lasts 100ns under the fixed clock: over the 50ns
	// default budget, so each End is an anomaly; the cooldown lets only
	// the first through until 10us of clock passes.
	for i := 0; i < 5; i++ {
		finish(tr.StartSpan(tr.Root(0, uint64(i)), "test.slow"))
	}
	if tr.Anomalies() != 5 {
		t.Errorf("Anomalies() = %d, want 5 (cooled-down ones still count)", tr.Anomalies())
	}
	if len(fired) != 1 {
		t.Fatalf("OnAnomaly fired %d times, want 1 (cooldown)", len(fired))
	}
	a := fired[0]
	if a.Reason != ReasonBudget || a.Span.Name != "test.slow" || a.Span.Dur != 100 {
		t.Errorf("anomaly = %+v", a)
	}

	// A per-name budget overrides the default: raise it and the spans
	// stop breaching.
	before := tr.Anomalies()
	tr.SetBudget("test.slow", time.Millisecond)
	finish(tr.StartSpan(tr.Root(0, 99), "test.slow"))
	if tr.Anomalies() != before {
		t.Error("span within its per-name budget still flagged")
	}
}

func TestReportAnomaly(t *testing.T) {
	var got []string
	tr := New(Config{AnomalyCooldown: -1, RecorderCap: 8,
		OnAnomaly: func(a Anomaly) { got = append(got, a.Reason) }})
	tr.ReportAnomaly(ReasonFlipFlop)
	tr.ReportAnomaly(ReasonFlipFlop)
	if len(got) != 2 || got[0] != ReasonFlipFlop {
		t.Errorf("ReportAnomaly hook calls = %v", got)
	}
}

func TestNilTracerAndZeroSpanAreNoops(t *testing.T) {
	var tr *Tracer
	if sc := tr.Root(1, 2); sc.Valid() {
		t.Error("nil tracer minted a root")
	}
	s := tr.StartSpan(SpanContext{}, "x")
	s.SetAttr("k", 1)
	s.End()
	c := tr.StartChild(SpanContext{}, "x")
	c.End()
	ctx, sp := tr.Start(context.Background(), "x")
	sp.End()
	if FromContext(ctx).Valid() {
		t.Error("nil tracer stored a span context")
	}
	tr.SetBudget("x", 1)
	tr.ReportAnomaly("x")
	if tr.Names() != nil || tr.Spans(1) != nil || tr.SpanCount() != 0 || tr.Anomalies() != 0 {
		t.Error("nil tracer leaked state")
	}
	if num, den := tr.SampleRate(); num != 0 || den != 1 {
		t.Errorf("nil SampleRate = %d/%d", num, den)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{SampleNum: 1, SampleDen: 1, RecorderCap: 8})
	ctx, parent := tr.Start(context.Background(), "test.outer")
	ctx2, child := tr.Start(ctx, "test.inner")
	if FromContext(ctx2) != child.Context() {
		t.Error("derived context does not carry the child span")
	}
	child.End()
	parent.End()
	recs := tr.Spans(0)
	if len(recs) != 2 || recs[0].Parent != recs[1].SpanID {
		t.Fatalf("ctx chain records = %+v", recs)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Metrics: reg, SampleNum: 1, SampleDen: 1, RecorderCap: 8, Budget: time.Nanosecond,
		Clock: fixedClock(5), AnomalyCooldown: -1})
	finish(tr.StartSpan(tr.Root(0, 1), "test.span"))
	snap := reg.Snapshot()
	if snap[metricSpans] != 1 || snap[metricSampled] != 1 || snap[metricAnomalies] != 1 {
		t.Errorf("snapshot = spans %v sampled %v anomalies %v",
			snap[metricSpans], snap[metricSampled], snap[metricAnomalies])
	}
}

func TestFlipDetector(t *testing.T) {
	d := NewFlipDetector(4)
	seq := []struct {
		outcome bool
		want    bool
	}{
		{false, false}, // first note establishes state
		{false, false},
		{true, false}, // first flip
		{false, true}, // second flip within window: anomaly
		{false, false},
	}
	for i, s := range seq {
		if got := d.Note(s.outcome); got != s.want {
			t.Fatalf("note %d (%v): Note = %v, want %v", i, s.outcome, got, s.want)
		}
	}

	// Flips spaced beyond the window do not trigger.
	d2 := NewFlipDetector(2)
	d2.Note(false)
	d2.Note(true) // flip 1
	d2.Note(true)
	d2.Note(true)
	if d2.Note(false) { // flip 2, three notes later: outside window
		t.Error("flips outside the window triggered")
	}
	var nilDet *FlipDetector
	if nilDet.Note(true) {
		t.Error("nil detector triggered")
	}
}

func TestBlackboxDumpAndList(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	jnl := obs.NewJournal(8, nil)
	jnl.Record("test.event", time.Millisecond, map[string]any{"k": 1})
	tr := New(Config{Clock: fixedClock(7), SampleNum: 1, SampleDen: 1, RecorderCap: 16, Metrics: reg})
	finish(tr.StartSpan(tr.Root(0, 1), "test.span"))
	bb := &Blackbox{Dir: dir, Tracer: tr, Journal: jnl, Metrics: reg, Pprof: true}

	path, err := bb.Dump("manual")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading bundle: %v", err)
	}
	var bundle Bundle
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if bundle.Seq != 1 || bundle.Reason != "manual" {
		t.Errorf("bundle header = %+v", bundle)
	}
	if len(bundle.Spans) != 1 || bundle.Spans[0].Name != "test.span" {
		t.Errorf("bundle spans = %+v", bundle.Spans)
	}
	if len(bundle.Events) != 1 || bundle.Events[0].Type != "test.event" {
		t.Errorf("bundle events = %+v", bundle.Events)
	}
	if bundle.Metrics[metricSpans] != 1 {
		t.Errorf("bundle metrics = %v", bundle.Metrics)
	}
	if bundle.Profiles["goroutine"] == "" {
		t.Error("pprof profile missing from bundle")
	}

	if _, err := bb.Dump("again"); err != nil {
		t.Fatalf("second Dump: %v", err)
	}
	names, err := bb.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 2 || names[0] != "blackbox-000001.json" || names[1] != "blackbox-000002.json" {
		t.Errorf("List = %v", names)
	}

	empty := &Blackbox{Dir: filepath.Join(dir, "missing")}
	if names, err := empty.List(); err != nil || names != nil {
		t.Errorf("List on missing spool = %v, %v", names, err)
	}
}

// The acceptance criterion: a forced anomaly (1ns budget) with a
// fixed clock produces byte-identical bundles across independent
// runs, at any test parallelism.
func TestBlackboxDeterministicBytes(t *testing.T) {
	t.Parallel()
	run := func(dir string) [][]byte {
		bb := &Blackbox{Dir: dir}
		tr := New(Config{
			Clock:           fixedClock(3),
			Key:             11,
			SampleNum:       1,
			SampleDen:       2,
			RecorderCap:     32,
			Budget:          time.Nanosecond,
			AnomalyCooldown: -1,
			OnAnomaly:       func(a Anomaly) { bb.Dump(a.Reason) },
		})
		bb.Tracer = tr
		for i := uint64(0); i < 6; i++ {
			root := tr.Root(5, i)
			s := tr.StartSpan(root, "test.req")
			c := tr.StartChild(s.Context(), "test.step")
			c.SetAttr("i", int64(i))
			c.End()
			s.SetAttr("i", int64(i))
			s.End()
		}
		names, err := bb.List()
		if err != nil || len(names) == 0 {
			t.Fatalf("spool after run: %v, %v", names, err)
		}
		out := make([][]byte, len(names))
		for i, n := range names {
			data, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				t.Fatalf("reading %s: %v", n, err)
			}
			out[i] = data
		}
		return out
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("runs dumped %d vs %d bundles", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("bundle %d differs between runs:\n%s\n----\n%s", i, a[i], b[i])
		}
	}
}

// Churn under the race detector: concurrent span traffic, flight
// recorder scrapes, budget mutation and blackbox dumps.
func TestChurnRace(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bb := &Blackbox{Dir: dir, Metrics: reg}
	tr := New(Config{
		SampleNum: 1, SampleDen: 2, RecorderCap: 64, Metrics: reg,
		Budget: 10 * time.Millisecond, AnomalyCooldown: time.Millisecond,
		OnAnomaly: func(a Anomaly) { bb.Dump(a.Reason) },
	})
	bb.Tracer = tr

	const writers, perWriter = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := tr.Root(uint64(w), uint64(i))
				s := tr.StartSpan(root, "churn.op")
				c := tr.StartChild(s.Context(), "churn.step")
				c.SetAttr("w", int64(w))
				c.End()
				s.End()
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range tr.Spans(0) {
					if rec.Name != "churn.op" && rec.Name != "churn.step" {
						t.Errorf("scraped unknown span %q", rec.Name)
						return
					}
				}
				tr.Names()
				bb.Dump("scrape")
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.SetBudget("churn.op", time.Duration(i%3)*time.Second)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := tr.SpanCount(), uint64(0); got < uint64(writers*perWriter) {
		t.Errorf("SpanCount = %d, want >= %d (+want0 %d)", got, writers*perWriter, want)
	}
}

// The recorder's zero-allocation contract, span decision included:
// an unsampled trace pays 0 allocs for the root span and 0 for each
// declined child; a sampled trace still records alloc-free once its
// names are interned.
func TestZeroAllocSpans(t *testing.T) {
	reg := obs.NewRegistry()
	for _, tc := range []struct {
		name     string
		num, den uint64
	}{
		{"unsampled", 0, 1},
		{"sampled", 1, 1},
	} {
		tr := New(Config{SampleNum: tc.num, SampleDen: tc.den, RecorderCap: 64,
			Metrics: reg, Budget: time.Hour})
		// Warm the intern table: first use allocates by design.
		warm := tr.StartSpan(tr.Root(0, 0), "alloc.op")
		finish(Span(tr.StartChild(warm.Context(), "alloc.step")))
		warm.SetAttr("n", 1)
		warm.End()
		var i uint64
		allocs := testing.AllocsPerRun(200, func() {
			i++
			root := tr.Root(1, i)
			s := tr.StartSpan(root, "alloc.op")
			c := tr.StartChild(s.Context(), "alloc.step")
			c.End()
			s.SetAttr("n", int64(i))
			s.End()
		})
		if allocs != 0 {
			t.Errorf("%s trace: %v allocs per span chain, want 0", tc.name, allocs)
		}
	}
}
