// Package trace is the causal-tracing layer over internal/obs:
// request-scoped spans with 16-byte trace ids, parent links and a
// bounded attribute set; keyed-deterministic head sampling (the
// decision is a pure function of the trace id, so every layer of one
// request — client, wire server, fabric — agrees without
// coordination); an always-on lock-free flight recorder retaining the
// last N completed spans regardless of sampling; and an anomaly
// trigger that hands budget breaches and optimizer flip-flops to a
// blackbox dumper.
//
// The discipline mirrors internal/obs: naming (interning a span name
// or attribute key) allocates once and takes a mutex; starting and
// ending spans afterwards is a handful of atomic stores — zero
// allocations, no locks — so spans can live inside the resolve hot
// path the bench gate defends. Trace ids come from the keyed
// splitmix64 stream (internal/hashutil), never math/rand, so a fixed
// coordinate tuple maps to the same trace id — and the same sampling
// verdict — on every run.
package trace

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashutil"
	"repro/internal/obs"
)

// MaxAttrs bounds the attributes one span can carry; later SetAttr
// calls are dropped. The bound keeps the span value and the flight
// recorder slot fixed-size.
const MaxAttrs = 4

// FlagSampled marks a trace selected by head sampling: child spans
// are created for it on every layer.
const FlagSampled = uint8(1)

// ReasonBudget is the anomaly reason for a span exceeding its latency
// budget; ReasonFlipFlop for an optimizer decision flipping twice
// within the detector window.
const (
	ReasonBudget   = "budget"
	ReasonFlipFlop = "flipflop"
)

// Metric names, constants so repolint's obskeys pass keeps the
// inventory tied to the code.
const (
	metricSpans     = "trace_spans_total"
	metricSampled   = "trace_spans_sampled_total"
	metricAnomalies = "trace_anomalies_total"
	metricDumps     = "trace_blackbox_dumps_total"
)

// TraceID is the 16-byte trace identifier, derived from request
// coordinates through keyed splitmix64.
type TraceID struct {
	Hi, Lo uint64
}

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// SpanContext is the propagated part of a span: enough to parent a
// child locally or on the far side of a wire frame.
type SpanContext struct {
	Trace TraceID
	Span  uint64 // 0 at the root, before any span has started
	Flags uint8
}

// Valid reports whether the context carries a trace id.
//
//repro:hotpath
func (sc SpanContext) Valid() bool { return sc.Trace != TraceID{} }

// Sampled reports whether head sampling selected this trace.
//
//repro:hotpath
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// Config parameterizes a Tracer.
type Config struct {
	// Clock returns monotonic nanoseconds. nil uses a monotonic reading
	// anchored at construction. Tests inject fixed sequences to make
	// span timings — and with them blackbox bundles — byte-identical
	// across runs.
	Clock func() int64
	// Key seeds the trace-id derivation and the sampling hash, so two
	// deployments can sample disjoint request subsets. 0 selects a
	// fixed default.
	Key uint64
	// SampleNum/SampleDen is the head-sampling rate as a rational:
	// 1/1024 samples one trace in 1024, 0/x none, x/x (or more) all.
	// The verdict is a pure function of (Key, trace id), so every layer
	// holding the same rate agrees.
	SampleNum, SampleDen uint64
	// RecorderCap is the flight-recorder capacity in spans, rounded up
	// to a power of two; <= 0 selects 4096.
	RecorderCap int
	// Budget is the default per-span latency budget; spans lasting
	// longer trigger the anomaly hook. 0 disables the default (per-name
	// budgets via SetBudget still apply).
	Budget time.Duration
	// AnomalyCooldown is the minimum spacing between OnAnomaly
	// invocations (anomalies inside the window are still counted).
	// 0 selects 1s; negative disables the cooldown.
	AnomalyCooldown time.Duration
	// OnAnomaly receives budget breaches and reported anomalies,
	// subject to the cooldown. Typically Blackbox.Dump. Called
	// synchronously from Span.End — keep it off the steady state.
	OnAnomaly func(Anomaly)
	// Metrics, when set, registers the trace_* instruments.
	Metrics *obs.Registry
}

// Anomaly is one anomaly-trigger firing: the reason and, for budget
// breaches, the offending span.
type Anomaly struct {
	Reason string     `json:"reason"`
	Span   SpanRecord `json:"span"`
}

// tracerMetrics is the tracer's instrument set.
type tracerMetrics struct {
	spans     *obs.Counter
	sampled   *obs.Counter
	anomalies *obs.Counter
}

// nameTable is the immutable intern table: readers load it through
// one atomic pointer and index with plain map/slice reads (no
// boxing, no locks); writers copy-on-write under the tracer mutex.
type nameTable struct {
	ids     map[string]uint32
	strs    []string
	span    []bool  // strs[i] was interned as a span name (vs attr key)
	budgets []int64 // per-name latency budget in ns; 0 = tracer default
}

// Tracer mints spans. The zero *Tracer (nil) is a valid no-op: every
// method short-circuits, so instrumented packages need no nil checks
// at call sites.
type Tracer struct {
	clock    func() int64
	key      uint64
	num, den uint64
	budget   int64 // default per-span budget, ns
	cooldown int64 // ns between OnAnomaly firings; <= 0 none

	rec       *Recorder
	onAnomaly func(Anomaly)
	m         *tracerMetrics

	mu      sync.Mutex // serializes nameTable copy-on-write
	names   atomic.Pointer[nameTable]
	autoSeq atomic.Uint64 // trace-id fallback for parentless spans

	lastAnomaly atomic.Int64
	anomalies   atomic.Uint64
}

// New builds a tracer. The flight recorder is always on; sampling
// only gates child-span creation (StartChild).
func New(cfg Config) *Tracer {
	t := &Tracer{
		clock:     cfg.Clock,
		key:       cfg.Key,
		num:       cfg.SampleNum,
		den:       cfg.SampleDen,
		budget:    int64(cfg.Budget),
		onAnomaly: cfg.OnAnomaly,
		rec:       newRecorder(cfg.RecorderCap),
	}
	if t.clock == nil {
		base := time.Now()
		t.clock = func() int64 { return int64(time.Since(base)) }
	}
	if t.key == 0 {
		t.key = 0x7ace1d5eed
	}
	if t.den == 0 {
		t.den = 1
	}
	switch {
	case cfg.AnomalyCooldown == 0:
		t.cooldown = int64(time.Second)
	case cfg.AnomalyCooldown > 0:
		t.cooldown = int64(cfg.AnomalyCooldown)
	}
	// Arm the cooldown so the very first anomaly fires even on clocks
	// that start near zero.
	t.lastAnomaly.Store(-t.cooldown)
	t.names.Store(&nameTable{ids: make(map[string]uint32)})
	if cfg.Metrics != nil {
		t.m = &tracerMetrics{
			spans:     cfg.Metrics.Counter(metricSpans, "spans completed (all, sampled or not)", 8),
			sampled:   cfg.Metrics.Counter(metricSampled, "completed spans belonging to sampled traces", 1),
			anomalies: cfg.Metrics.Counter(metricAnomalies, "anomaly triggers (budget breaches and reported anomalies)", 1),
		}
	}
	return t
}

// ParseRate parses a -trace-sample style rational: "0" (off), "1"
// (everything), or "num/den".
func ParseRate(s string) (num, den uint64, err error) {
	numS, denS, ok := strings.Cut(s, "/")
	num, err = strconv.ParseUint(strings.TrimSpace(numS), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: bad sample rate %q: %w", s, err)
	}
	den = 1
	if ok {
		den, err = strconv.ParseUint(strings.TrimSpace(denS), 10, 64)
		if err != nil || den == 0 {
			return 0, 0, fmt.Errorf("trace: bad sample rate %q: denominator must be a positive integer", s)
		}
	}
	return num, den, nil
}

// SampleRate returns the tracer's head-sampling rational.
func (t *Tracer) SampleRate() (num, den uint64) {
	if t == nil {
		return 0, 1
	}
	return t.num, t.den
}

// mutate applies fn to a copy of the name table and publishes it.
func (t *Tracer) mutate(fn func(nt *nameTable)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.names.Load()
	nt := &nameTable{
		ids:     make(map[string]uint32, len(old.ids)+1),
		strs:    append([]string(nil), old.strs...),
		span:    append([]bool(nil), old.span...),
		budgets: append([]int64(nil), old.budgets...),
	}
	for k, v := range old.ids {
		nt.ids[k] = v
	}
	fn(nt)
	t.names.Store(nt)
}

// internLocked returns s's id, appending it on first use.
func (nt *nameTable) internLocked(s string, isSpan bool) uint32 {
	if id, ok := nt.ids[s]; ok {
		if isSpan {
			nt.span[id] = true
		}
		return id
	}
	id := uint32(len(nt.strs))
	nt.ids[s] = id
	nt.strs = append(nt.strs, s)
	nt.span = append(nt.span, isSpan)
	nt.budgets = append(nt.budgets, 0)
	return id
}

// intern is the cold first-use path; every later start takes the
// lock-free map hit in StartSpan.
func (t *Tracer) intern(s string, isSpan bool) uint32 {
	var id uint32
	t.mutate(func(nt *nameTable) { id = nt.internLocked(s, isSpan) })
	return id
}

// SetBudget sets name's latency budget, overriding the tracer
// default. 0 restores the default.
func (t *Tracer) SetBudget(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mutate(func(nt *nameTable) { nt.budgets[nt.internLocked(name, true)] = int64(d) })
}

// Names returns every interned span name, sorted — the machine-read
// side of the docs/ARCHITECTURE.md span inventory.
func (t *Tracer) Names() []string {
	if t == nil {
		return nil
	}
	tbl := t.names.Load()
	out := make([]string, 0, len(tbl.strs))
	for i, s := range tbl.strs {
		if tbl.span[i] {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Root derives a root span context from request coordinates: the
// trace id is keyed splitmix64 over (key, hi, lo), and the sampling
// verdict is decided here, from that id, once per trace.
//
//repro:hotpath
func (t *Tracer) Root(hi, lo uint64) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	h := hashutil.Splitmix64(t.key ^ hi)
	l := hashutil.Splitmix64(h ^ lo)
	sc := SpanContext{Trace: TraceID{Hi: h, Lo: l}}
	if t.sampleID(sc.Trace) {
		sc.Flags = FlagSampled
	}
	return sc
}

// sampleID is the head-sampling rule: hash the trace id under the
// tracer key and keep the fraction num/den of the hash space.
//
//repro:hotpath
func (t *Tracer) sampleID(id TraceID) bool {
	if t.num == 0 {
		return false
	}
	if t.num >= t.den {
		return true
	}
	return hashutil.Splitmix64(t.key^id.Lo^bits.RotateLeft64(id.Hi, 31))%t.den < t.num
}

// spanID derives a child span id deterministically from its parent
// coordinates, name and start time.
//
//repro:hotpath
func spanID(parent SpanContext, nameID uint32, start int64) uint64 {
	return hashutil.Splitmix64(parent.Trace.Lo ^ parent.Span ^ uint64(nameID)<<32 ^ uint64(start))
}

// StartSpan starts a span under parent (an invalid parent starts a
// new auto-keyed trace). The span always lands in the flight recorder
// at End, sampled or not. Zero allocations after the name's first
// use.
//
//repro:hotpath
func (t *Tracer) StartSpan(parent SpanContext, name string) Span {
	if t == nil {
		return Span{}
	}
	if !parent.Valid() {
		parent = t.Root(0xa070, t.autoSeq.Add(1))
	}
	id, ok := t.names.Load().ids[name]
	if !ok {
		id = t.intern(name, true) //lint:allow hotpath a span name interns once, on first use; every later start takes the lock-free map hit above
	}
	start := t.clock() //lint:allow hotpath the clock is a seam (tests inject fixed clocks for byte-identical bundles); one dynamic call per span
	return Span{
		tr:     t,
		sc:     SpanContext{Trace: parent.Trace, Span: spanID(parent, id, start), Flags: parent.Flags},
		parent: parent.Span,
		nameID: id,
		start:  start,
	}
}

// StartChild starts a fine-grained child span only when the parent's
// trace is sampled; otherwise it returns the no-op zero Span. This is
// the 0-alloc sampling decision the hot paths pay per child.
//
//repro:hotpath
func (t *Tracer) StartChild(parent SpanContext, name string) Span {
	if t == nil || parent.Flags&FlagSampled == 0 {
		return Span{}
	}
	return t.StartSpan(parent, name)
}

// ctxKey carries a SpanContext through a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, zero when
// none.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Start starts a control-plane span parented from ctx and returns a
// derived context carrying the new span. Unlike StartSpan it
// allocates (the context chain and the *Span); use it where clarity
// beats the last allocation — Optimize passes, placements — and
// StartSpan on the resolve path.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := new(Span)
	*s = t.StartSpan(FromContext(ctx), name)
	return ContextWithSpan(ctx, s.Context()), s
}

// attr is one interned attribute.
type attr struct {
	key uint32
	val int64
}

// Span is one in-flight operation. The zero Span is a no-op, so
// conditional instrumentation needs no branches at End. Spans are
// values; do not copy one after SetAttr/End.
type Span struct {
	tr     *Tracer
	sc     SpanContext
	parent uint64
	nameID uint32
	nattrs uint8
	start  int64
	attrs  [MaxAttrs]attr
}

// Context returns the span's propagatable context (its own id as the
// parent link for children).
//
//repro:hotpath
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Sampled reports whether the span belongs to a sampled trace.
//
//repro:hotpath
func (s *Span) Sampled() bool { return s != nil && s.sc.Flags&FlagSampled != 0 }

// SetAttr attaches an integer attribute; beyond MaxAttrs it is
// dropped. Keys intern once, like span names.
//
//repro:hotpath
func (s *Span) SetAttr(key string, val int64) {
	if s == nil || s.tr == nil || int(s.nattrs) >= MaxAttrs {
		return
	}
	id, ok := s.tr.names.Load().ids[key]
	if !ok {
		id = s.tr.intern(key, false) //lint:allow hotpath an attribute key interns once, on first use
	}
	s.attrs[s.nattrs] = attr{key: id, val: val}
	s.nattrs++
}

// End completes the span: one flight-recorder write (always — the
// recorder ignores sampling), the span counters, and the budget
// check.
//
//repro:hotpath
func (s *Span) End() {
	if s == nil {
		return // nil-tracer Start hands out a nil span
	}
	t := s.tr
	if t == nil {
		return
	}
	end := t.clock() //lint:allow hotpath the clock is a seam (tests inject fixed clocks for byte-identical bundles); one dynamic call per span
	raw := s.raw(end - s.start)
	t.rec.write(&raw)
	if t.m != nil {
		t.m.spans.AddAt(s.sc.Span, 1)
		if s.sc.Flags&FlagSampled != 0 {
			t.m.sampled.Inc()
		}
	}
	if bud := t.budgetFor(s.nameID); bud > 0 && raw.dur >= bud {
		t.spanAnomaly(raw) //lint:allow hotpath the breach path is rare by construction (budget exceeded) and off the steady state
	}
}

// raw packs the span into its fixed recorder form.
//
//repro:hotpath
func (s *Span) raw(dur int64) rawSpan {
	return rawSpan{
		trHi:   s.sc.Trace.Hi,
		trLo:   s.sc.Trace.Lo,
		span:   s.sc.Span,
		parent: s.parent,
		meta:   uint64(s.nameID)<<32 | uint64(s.nattrs)<<8 | uint64(s.sc.Flags),
		start:  s.start,
		dur:    dur,
		attrs:  s.attrs,
	}
}

// budgetFor returns name id's latency budget: the per-name override
// when set, else the tracer default.
//
//repro:hotpath
func (t *Tracer) budgetFor(id uint32) int64 {
	tbl := t.names.Load()
	if int(id) < len(tbl.budgets) {
		if b := tbl.budgets[id]; b != 0 {
			return b
		}
	}
	return t.budget
}

// claimAnomaly applies the cooldown: one OnAnomaly per window.
func (t *Tracer) claimAnomaly() bool {
	if t.cooldown <= 0 {
		return true
	}
	now := t.clock()
	last := t.lastAnomaly.Load()
	return now-last >= t.cooldown && t.lastAnomaly.CompareAndSwap(last, now)
}

// spanAnomaly handles a budget breach: count it, then fire the hook
// unless cooled down.
func (t *Tracer) spanAnomaly(raw rawSpan) {
	t.anomalies.Add(1)
	if t.m != nil {
		t.m.anomalies.Inc()
	}
	if t.onAnomaly == nil || !t.claimAnomaly() {
		return
	}
	t.onAnomaly(Anomaly{Reason: ReasonBudget, Span: t.decode(t.names.Load(), &raw)})
}

// ReportAnomaly fires the anomaly hook for a non-span trigger (the
// optimizer flip-flop detector), subject to the same cooldown.
func (t *Tracer) ReportAnomaly(reason string) {
	if t == nil {
		return
	}
	t.anomalies.Add(1)
	if t.m != nil {
		t.m.anomalies.Inc()
	}
	if t.onAnomaly == nil || !t.claimAnomaly() {
		return
	}
	t.onAnomaly(Anomaly{Reason: reason})
}

// Anomalies returns the total anomaly triggers (including cooled-down
// ones).
func (t *Tracer) Anomalies() uint64 {
	if t == nil {
		return 0
	}
	return t.anomalies.Load()
}

// SpanCount returns the number of spans completed since construction
// (the flight recorder retains the most recent capacity of them).
func (t *Tracer) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	return t.rec.count()
}

// Spans decodes the most recent n completed spans from the flight
// recorder, oldest first; n <= 0 returns everything retained.
func (t *Tracer) Spans(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	raws := t.rec.snapshot(n)
	tbl := t.names.Load()
	out := make([]SpanRecord, 0, len(raws))
	for i := range raws {
		out = append(out, t.decode(tbl, &raws[i]))
	}
	return out
}

// decode renders one raw recorder slot as a SpanRecord.
func (t *Tracer) decode(tbl *nameTable, raw *rawSpan) SpanRecord {
	nameID := uint32(raw.meta >> 32)
	nattrs := int(raw.meta >> 8 & 0xff)
	flags := uint8(raw.meta & 0xff)
	rec := SpanRecord{
		TraceID: TraceID{Hi: raw.trHi, Lo: raw.trLo}.String(),
		SpanID:  fmt.Sprintf("%016x", raw.span),
		Name:    "?",
		Start:   raw.start,
		Dur:     raw.dur,
		Sampled: flags&FlagSampled != 0,
	}
	if raw.parent != 0 {
		rec.Parent = fmt.Sprintf("%016x", raw.parent)
	}
	if int(nameID) < len(tbl.strs) {
		rec.Name = tbl.strs[nameID]
	}
	if nattrs > 0 {
		rec.Attrs = make(map[string]int64, nattrs)
		for i := 0; i < nattrs && i < MaxAttrs; i++ {
			key := "?"
			if int(raw.attrs[i].key) < len(tbl.strs) {
				key = tbl.strs[raw.attrs[i].key]
			}
			rec.Attrs[key] = raw.attrs[i].val
		}
	}
	return rec
}
