package trace

import "sync/atomic"

// The flight recorder: a lock-free power-of-two ring of fixed-size
// span slots. Writers claim a monotonically increasing ticket with
// one atomic add — concurrent writers land in distinct slots until
// the ring wraps a full lap — and publish through a per-slot seqlock
// word encoding the ticket: 2t+1 while writing, 2t+2 when slot
// ticket t is complete. Readers accept a slot only when the seqlock
// word reads exactly 2t+2 both before and after copying the fields,
// so a slot being overwritten (by ticket t+capacity) is skipped, not
// torn. Every word is an atomic.Uint64, which keeps the race
// detector, the lock-free guarantee and the zero-allocation
// guarantee all satisfied at once.

// slotWords is the fixed slot size: seqlock word, trace id (2),
// span id, parent id, meta, start, dur, then MaxAttrs (key, val)
// pairs.
const slotWords = 8 + 2*MaxAttrs

// defaultRecorderCap is the flight-recorder capacity when the config
// leaves it zero.
const defaultRecorderCap = 4096

// rawSpan is a completed span in recorder form: plain words, no
// pointers, passed by value on the anomaly path so the hot path never
// leaks a span to the heap.
type rawSpan struct {
	trHi, trLo   uint64
	span, parent uint64
	meta         uint64 // nameID<<32 | nattrs<<8 | flags
	start, dur   int64
	attrs        [MaxAttrs]attr
}

type slot struct {
	w [slotWords]atomic.Uint64
}

// Recorder is the always-on flight recorder. Construct through
// Tracer (Config.RecorderCap).
type Recorder struct {
	mask  uint64
	head  atomic.Uint64 // completed-span tickets issued
	slots []slot
}

func newRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]slot, n)}
}

// count returns the completed-span total (not bounded by capacity).
func (r *Recorder) count() uint64 { return r.head.Load() }

// write claims the next slot and publishes raw into it.
//
//repro:hotpath
func (r *Recorder) write(raw *rawSpan) {
	t := r.head.Add(1) - 1
	sl := &r.slots[t&r.mask]
	sl.w[0].Store(2*t + 1)
	sl.w[1].Store(raw.trHi)
	sl.w[2].Store(raw.trLo)
	sl.w[3].Store(raw.span)
	sl.w[4].Store(raw.parent)
	sl.w[5].Store(raw.meta)
	sl.w[6].Store(uint64(raw.start))
	sl.w[7].Store(uint64(raw.dur))
	for i := 0; i < MaxAttrs; i++ {
		sl.w[8+2*i].Store(uint64(raw.attrs[i].key))
		sl.w[9+2*i].Store(uint64(raw.attrs[i].val))
	}
	sl.w[0].Store(2*t + 2)
}

// snapshot copies the most recent max completed spans, oldest first
// (max <= 0 means everything retained). Slots overwritten or still
// being written during the scan are skipped.
func (r *Recorder) snapshot(max int) []rawSpan {
	h := r.head.Load()
	lo := uint64(0)
	if n := uint64(len(r.slots)); h > n {
		lo = h - n
	}
	if max > 0 && h-lo > uint64(max) {
		lo = h - uint64(max)
	}
	out := make([]rawSpan, 0, h-lo)
	for ticket := lo; ticket < h; ticket++ {
		sl := &r.slots[ticket&r.mask]
		want := 2*ticket + 2
		if sl.w[0].Load() != want {
			continue
		}
		var raw rawSpan
		raw.trHi = sl.w[1].Load()
		raw.trLo = sl.w[2].Load()
		raw.span = sl.w[3].Load()
		raw.parent = sl.w[4].Load()
		raw.meta = sl.w[5].Load()
		raw.start = int64(sl.w[6].Load())
		raw.dur = int64(sl.w[7].Load())
		for i := 0; i < MaxAttrs; i++ {
			raw.attrs[i].key = uint32(sl.w[8+2*i].Load())
			raw.attrs[i].val = int64(sl.w[9+2*i].Load())
		}
		if sl.w[0].Load() != want {
			continue
		}
		out = append(out, raw)
	}
	return out
}

// SpanRecord is one decoded flight-recorder span, the JSON form
// /trace and blackbox bundles serve. Ids are fixed-width lowercase
// hex; Attrs marshals with sorted keys, so rendering is
// deterministic.
type SpanRecord struct {
	TraceID string           `json:"trace_id"`
	SpanID  string           `json:"span_id"`
	Parent  string           `json:"parent_id,omitempty"`
	Name    string           `json:"name"`
	Start   int64            `json:"start_ns"`
	Dur     int64            `json:"dur_ns"`
	Sampled bool             `json:"sampled"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}
