package venus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

func paperTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// smallCfg keeps tests fast: smaller segments and messages preserve
// all contention ratios.
func smallCfg() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{LinkBytesPerSec: -1, SegmentBytes: 1024, FlitBytes: 8, BufferSegments: 4},
		{LinkBytesPerSec: 1, SegmentBytes: 0, FlitBytes: 8, BufferSegments: 4},
		{LinkBytesPerSec: 1, SegmentBytes: 8, FlitBytes: 16, BufferSegments: 4},
		{LinkBytesPerSec: 1, SegmentBytes: 8, FlitBytes: 8, BufferSegments: 0},
		{LinkBytesPerSec: 1, SegmentBytes: 8, FlitBytes: 8, BufferSegments: 4, WireLatency: -1},
	}
	tp := paperTree(t, 16)
	for i, cfg := range bad {
		if _, err := New(tp, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(tp, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestFlitTimeMatchesPaperParameters(t *testing.T) {
	// 8 B at 2 Gb/s = 32 ns per flit; 1 KB segment = 4096 ns.
	cfg := DefaultConfig()
	if got := cfg.flitTime(); got != 32 {
		t.Errorf("flit time = %d ns, want 32", got)
	}
}

func TestSingleMessageLatency(t *testing.T) {
	// One 1 KB message, 4 hops on the 2-level tree: serialization on
	// each hop (store-and-forward) plus wire latency.
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	var deliveredAt eventq.Time
	err = s.Inject(Message{
		Src: 0, Dst: 16, Bytes: 1024, Route: algo.Route(0, 16),
		OnDelivered: func(at eventq.Time) { deliveredAt = at },
	})
	if err != nil {
		t.Fatal(err)
	}
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 hops x (4096 ns transmission + 32 ns wire) = 16512 ns.
	want := eventq.Time(4 * (4096 + 32))
	if end != want || deliveredAt != want {
		t.Errorf("completion = %d (callback %d), want %d", end, deliveredAt, want)
	}
}

func TestLocalMessageStaysLocal(t *testing.T) {
	// Same-switch pairs traverse only 2 hops.
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	err = s.Inject(Message{Src: 0, Dst: 1, Bytes: 1024, Route: algo.Route(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	want := eventq.Time(2 * (4096 + 32))
	if end != want {
		t.Errorf("completion = %d, want %d", end, want)
	}
}

func TestSelfMessage(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := s.Inject(Message{Src: 3, Dst: 3, Bytes: 1 << 20, OnDelivered: func(eventq.Time) { fired = true }}); err != nil {
		t.Fatal(err)
	}
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("self message never delivered")
	}
	if end != DefaultConfig().WireLatency {
		t.Errorf("self message took %d ns", end)
	}
}

func TestInjectValidation(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(Message{Src: 0, Dst: 1, Bytes: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if err := s.Inject(Message{Src: 0, Dst: 16, Bytes: 10}); err == nil {
		t.Error("missing route accepted")
	}
}

func TestZeroByteMessageDelivered(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	if err := s.Inject(Message{Src: 0, Dst: 16, Bytes: 0, Route: algo.Route(0, 16)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Delivered()); got != 1 {
		t.Errorf("delivered %d messages, want 1", got)
	}
}

func TestBandwidthSharingIsFair(t *testing.T) {
	// Two messages from different sources into the same destination
	// share the ejection link round-robin: both finish in ~2x the
	// solo time and within one segment of each other.
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	const bytes = 64 * 1024
	var t1, t2 eventq.Time
	if err := s.Inject(Message{Src: 0, Dst: 17, Bytes: bytes, Route: algo.Route(0, 17), OnDelivered: func(at eventq.Time) { t1 = at }}); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(Message{Src: 32, Dst: 17, Bytes: bytes, Route: algo.Route(32, 17), OnDelivered: func(at eventq.Time) { t2 = at }}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	soloSerialization := eventq.Time(bytes / 8 * 32) // 64 segments at 4096 ns
	slower := t1
	if t2 > slower {
		slower = t2
	}
	if slower < 2*soloSerialization {
		t.Errorf("shared ejection finished in %d ns, faster than serialization bound %d", slower, 2*soloSerialization)
	}
	diff := t1 - t2
	if diff < 0 {
		diff = -diff
	}
	if diff > 8*4096 {
		t.Errorf("unfair sharing: deliveries %d and %d ns apart", t1, t2)
	}
}

func TestAdapterRoundRobinInterleaving(t *testing.T) {
	// One source sending two messages: they interleave, so both take
	// about twice the solo time instead of one finishing first.
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	const bytes = 64 * 1024
	var t1, t2 eventq.Time
	s.Inject(Message{Src: 0, Dst: 17, Bytes: bytes, Route: algo.Route(0, 17), OnDelivered: func(at eventq.Time) { t1 = at }})
	s.Inject(Message{Src: 0, Dst: 33, Bytes: bytes, Route: algo.Route(0, 33), OnDelivered: func(at eventq.Time) { t2 = at }})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	injection := eventq.Time(2*bytes/8) * 32
	if t1 < injection || t2 < injection {
		t.Errorf("deliveries %d/%d beat the shared injection bound %d", t1, t2, injection)
	}
	diff := t1 - t2
	if diff < 0 {
		diff = -diff
	}
	if diff > 8*4096 {
		t.Errorf("messages not interleaved: deliveries %d and %d", t1, t2)
	}
}

func TestDisjointPairsRunAtFullBandwidth(t *testing.T) {
	// A permutation routed conflict-free completes in (close to) the
	// solo time of one message regardless of how many pairs run.
	tp := paperTree(t, 16)
	const bytes = 32 * 1024
	p := pattern.New(256)
	for i := 0; i < 16; i++ {
		p.Add(i, 16+i, bytes) // switch 0 -> switch 1, distinct ports under d-mod-k
	}
	end, err := RunPattern(tp, core.NewDModK(tp), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	solo := eventq.Time(bytes/8*32) + 3*4096 + 4*32 // pipeline fill
	if end > solo+4096*4 {
		t.Errorf("conflict-free permutation took %d ns, want about %d", end, solo)
	}
}

func TestCrossbarMatchesEndpointBound(t *testing.T) {
	// On the crossbar, WRF's completion is set by the busiest adapter
	// (2 messages in and out), not by any internal contention.
	p := pattern.WRF(4, 4, 16*1024)
	end, err := CrossbarTime(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Busiest adapter moves 2*16 KB = 32 KB = 32 segments.
	bound := eventq.Time(32 * 4096)
	if end < bound {
		t.Errorf("crossbar finished at %d, below the endpoint bound %d", end, bound)
	}
	if end > bound+bound/4 {
		t.Errorf("crossbar finished at %d, far above the endpoint bound %d", end, bound)
	}
}

func TestMeasuredSlowdownCGPathology(t *testing.T) {
	// The simulated counterpart of the paper's §VII-A analysis: CG's
	// transpose phase under D-mod-k on the full 16-ary 2-tree runs
	// ~7x slower than on the crossbar (8 even/odd sources per switch
	// share one upward port each; two are local fixed points).
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := MeasuredSlowdown(tp, core.NewDModK(tp), ph, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s < 6.0 || s > 8.0 {
		t.Errorf("measured CG phase-5 slowdown = %.2f, want ~7", s)
	}
}

func TestMeasuredSlowdownWRFDMODKNearOne(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.WRF(16, 16, 32*1024)
	s, err := MeasuredSlowdown(tp, core.NewDModK(tp), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s > 1.3 {
		t.Errorf("WRF D-mod-k measured slowdown = %.2f, want ~1", s)
	}
}

func TestMeasuredSlowdownRandomWorseOnWRF(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.WRF(16, 16, 32*1024)
	sRand, err := MeasuredSlowdown(tp, core.NewRandom(tp, 3), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sMod, err := MeasuredSlowdown(tp, core.NewDModK(tp), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sRand <= sMod {
		t.Errorf("random %.2f not worse than d-mod-k %.2f", sRand, sMod)
	}
}

func TestPhasedRun(t *testing.T) {
	tp := paperTree(t, 16)
	phases, err := pattern.CGPhases(128, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	total, err := RunPhases(tp, core.NewDModK(tp), phases, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("phased run took no time")
	}
	ref, err := CrossbarPhases(phases, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ref <= 0 || total <= ref {
		t.Errorf("network %d should exceed crossbar %d for CG under d-mod-k", total, ref)
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	tp := paperTree(t, 10)
	p := pattern.KeyedRandomPermutation(256, 8*1024, 21)
	a, err := RunPattern(tp, core.NewRandom(tp, 5), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPattern(tp, core.NewRandom(tp, 5), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical runs took %d and %d ns", a, b)
	}
}

func TestAllTrafficDelivered(t *testing.T) {
	tp := paperTree(t, 4)
	p := pattern.UniformRandom(256, 2, 4*1024, 9)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewRandomNCAUp(tp, 1)
	for _, f := range p.Flows {
		if err := s.Inject(Message{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes, Route: algo.Route(f.Src, f.Dst)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Delivered()); got != len(p.Flows) {
		t.Errorf("delivered %d of %d messages", got, len(p.Flows))
	}
	if s.InFlight() != 0 {
		t.Errorf("%d messages still in flight", s.InFlight())
	}
	var bytes int64
	for _, d := range s.Delivered() {
		bytes += d.Bytes
		if d.DeliveredAt < d.InjectedAt {
			t.Error("delivery precedes injection")
		}
	}
	if bytes != p.TotalBytes() {
		t.Errorf("delivered %d bytes, want %d", bytes, p.TotalBytes())
	}
}

func TestBackpressureSmallBuffers(t *testing.T) {
	// With 1-segment buffers the network must still drain correctly
	// (no deadlock) even under heavy fan-in.
	tp := paperTree(t, 2)
	cfg := DefaultConfig()
	cfg.BufferSegments = 1
	p := pattern.New(256)
	for s := 0; s < 32; s++ {
		p.Add(s, 255-s, 8*1024)
	}
	end, err := RunPattern(tp, core.NewRandom(tp, 7), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("no time elapsed")
	}
}

func TestEventBudgetAborts(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	s.Inject(Message{Src: 0, Dst: 16, Bytes: 1 << 20, Route: algo.Route(0, 16)})
	if _, err := s.Run(10); err == nil {
		t.Error("exhausted budget did not error")
	}
}
