package venus

import (
	"fmt"
	"sort"

	"repro/internal/eventq"
)

// ChannelUsage reports the load one directed channel carried during a
// run.
type ChannelUsage struct {
	// Wire is the undirected wire ID (xgft channel ID); Up tells the
	// direction.
	Wire int
	Up   bool
	// Level/Node/Port locate the wire (child-side endpoint).
	Level, Node, Port int
	// Bytes moved and time spent transmitting.
	Bytes    int64
	BusyTime eventq.Time
	Segments int
}

// Utilization returns the fraction of the horizon this channel spent
// transmitting.
func (u ChannelUsage) Utilization(horizon eventq.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(u.BusyTime) / float64(horizon)
}

// ChannelUsages returns per-channel statistics of everything
// transmitted so far, ordered by descending busy time. Channels that
// carried nothing are omitted.
func (s *Sim) ChannelUsages() []ChannelUsage {
	n := s.Topo.TotalChannels()
	var out []ChannelUsage
	for i, c := range s.chans {
		if c.segments == 0 {
			continue
		}
		wire := i
		up := true
		if i >= n {
			wire = i - n
			up = false
		}
		level, node, port := s.Topo.ChannelOf(wire)
		out = append(out, ChannelUsage{
			Wire: wire, Up: up,
			Level: level, Node: node, Port: port,
			Bytes: c.bytes, BusyTime: c.busyTime, Segments: c.segments,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyTime != out[j].BusyTime {
			return out[i].BusyTime > out[j].BusyTime
		}
		if out[i].Wire != out[j].Wire {
			return out[i].Wire < out[j].Wire
		}
		return out[i].Up && !out[j].Up
	})
	return out
}

// MaxUtilization returns the highest per-channel utilization over the
// run so far (busiest wire direction / current time).
func (s *Sim) MaxUtilization() float64 {
	horizon := s.Q.Now()
	if horizon == 0 {
		return 0
	}
	var max float64
	for _, c := range s.chans {
		if u := float64(c.busyTime) / float64(horizon); u > max {
			max = u
		}
	}
	return max
}

// UsageSummary aggregates the per-level byte totals — a quick view of
// where the traffic concentrated.
func (s *Sim) UsageSummary() string {
	n := s.Topo.TotalChannels()
	upByLevel := make(map[int]int64)
	downByLevel := make(map[int]int64)
	for i, c := range s.chans {
		if c.segments == 0 {
			continue
		}
		wire := i
		byLevel := upByLevel
		if i >= n {
			wire = i - n
			byLevel = downByLevel
		}
		level, _, _ := s.Topo.ChannelOf(wire)
		byLevel[level] += c.bytes
	}
	out := ""
	for l := 0; l < s.Topo.Height(); l++ {
		out += fmt.Sprintf("level %d: up %d B, down %d B\n", l, upByLevel[l], downByLevel[l])
	}
	return out
}
