package venus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/pattern"
)

func TestAdaptiveSingleMessage(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	err = s.InjectAdaptive(Message{Src: 0, Dst: 17, Bytes: 4 * 1024,
		OnDelivered: func(at eventq.Time) { delivered = true }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("adaptive message not delivered")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectAdaptive(Message{Src: 0, Dst: 1, Bytes: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if err := s.InjectAdaptive(Message{Src: 0, Dst: 999, Bytes: 1}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestAdaptiveSelfMessage(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectAdaptive(Message{Src: 5, Dst: 5, Bytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(s.Delivered()) != 1 {
		t.Error("self message lost")
	}
}

func TestAdaptiveDeliversEverything(t *testing.T) {
	tp := paperTree(t, 6)
	p := pattern.UniformRandom(256, 2, 8*1024, 7)
	end, err := RunPatternAdaptive(tp, p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("no time elapsed")
	}
}

func TestAdaptiveBeatsDModKOnCGTranspose(t *testing.T) {
	// Per-segment adaptivity spreads CG's transpose over all up
	// ports, escaping the modulo pathology.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	adaptive, err := MeasuredSlowdownAdaptive(tp, ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := MeasuredSlowdown(tp, core.NewDModK(tp), ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive >= oblivious {
		t.Errorf("adaptive %.2f not better than d-mod-k %.2f on the pathological transpose", adaptive, oblivious)
	}
	if adaptive > 3 {
		t.Errorf("adaptive transpose slowdown %.2f, want close to 1", adaptive)
	}
}

func TestAdaptiveNotAlwaysBetter(t *testing.T) {
	// The paper's point (§I): local adaptive decisions are not always
	// better than a good oblivious scheme. On WRF, D-mod-k routes
	// conflict-free; adaptive decisions cannot beat it.
	tp := paperTree(t, 16)
	p := pattern.WRF(16, 16, 32*1024)
	cfg := DefaultConfig()
	adaptive, err := MeasuredSlowdownAdaptive(tp, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := MeasuredSlowdown(tp, core.NewDModK(tp), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive < oblivious*0.95 {
		t.Errorf("adaptive %.2f significantly beats conflict-free d-mod-k %.2f", adaptive, oblivious)
	}
}

func TestAdaptivePhased(t *testing.T) {
	tp := paperTree(t, 10)
	phases, err := pattern.CGPhases(128, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := MeasuredPhasedSlowdownAdaptive(tp, phases, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || s > 3 {
		t.Errorf("adaptive phased slowdown = %.2f", s)
	}
}
