package venus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/pattern"
)

func TestChannelUsagesAccounting(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	const bytes = 4 * 1024
	if err := s.Inject(Message{Src: 0, Dst: 16, Bytes: bytes, Route: algo.Route(0, 16)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	usages := s.ChannelUsages()
	// 4 hops: 2 up channels and 2 down channels carried the message.
	if len(usages) != 4 {
		t.Fatalf("%d channels used, want 4", len(usages))
	}
	var up, down int
	for _, u := range usages {
		if u.Bytes != bytes {
			t.Errorf("channel (%d up=%v) carried %d bytes, want %d", u.Wire, u.Up, u.Bytes, bytes)
		}
		if u.Segments != 4 {
			t.Errorf("channel carried %d segments, want 4", u.Segments)
		}
		if u.BusyTime != eventq.Time(bytes/8)*32 {
			t.Errorf("busy time %d, want %d", u.BusyTime, bytes/8*32)
		}
		if u.Up {
			up++
		} else {
			down++
		}
	}
	if up != 2 || down != 2 {
		t.Errorf("up/down = %d/%d, want 2/2", up, down)
	}
	if u := usages[0].Utilization(s.Q.Now()); u <= 0 || u > 1 {
		t.Errorf("utilization = %.3f", u)
	}
}

func TestMaxUtilizationBounds(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxUtilization(); got != 0 {
		t.Errorf("idle utilization = %.3f", got)
	}
	algo := core.NewDModK(tp)
	p := pattern.WRF(16, 16, 16*1024)
	for _, f := range p.Flows {
		if err := s.Inject(Message{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes, Route: algo.Route(f.Src, f.Dst)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	u := s.MaxUtilization()
	if u <= 0.5 || u > 1.0001 {
		t.Errorf("max utilization = %.3f, want (0.5, 1]", u)
	}
}

func TestUsageSummary(t *testing.T) {
	tp := paperTree(t, 16)
	s, err := New(tp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	s.Inject(Message{Src: 0, Dst: 16, Bytes: 1024, Route: algo.Route(0, 16)})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	sum := s.UsageSummary()
	if !strings.Contains(sum, "level 0") || !strings.Contains(sum, "level 1") {
		t.Errorf("summary missing levels: %q", sum)
	}
}

func TestCutThroughReducesLatencyNotBandwidth(t *testing.T) {
	tp := paperTree(t, 16)
	algo := core.NewDModK(tp)

	run := func(cut bool, bytes int64) eventq.Time {
		cfg := DefaultConfig()
		cfg.CutThrough = cut
		s, err := New(tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(Message{Src: 0, Dst: 16, Bytes: bytes, Route: algo.Route(0, 16)}); err != nil {
			t.Fatal(err)
		}
		end, err := s.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}

	// Single segment: cut-through collapses the 4x store-and-forward
	// serialization to ~1 segment + 3 flit headers.
	sf := run(false, 1024)
	ct := run(true, 1024)
	if ct >= sf {
		t.Errorf("cut-through %d not faster than store-and-forward %d", ct, sf)
	}
	want := eventq.Time(4096 + 3*32 + 4*32) // tail + 3 header hops + 4 wires
	if ct != want {
		t.Errorf("cut-through latency = %d, want %d", ct, want)
	}

	// Long message: both are bandwidth-bound; difference stays within
	// the pipeline fill (3 segments).
	sfLong := run(false, 256*1024)
	ctLong := run(true, 256*1024)
	if ctLong >= sfLong {
		t.Errorf("cut-through long %d not faster than SF %d", ctLong, sfLong)
	}
	if sfLong-ctLong > 4*4096 {
		t.Errorf("cut-through saved %d ns on a long message, more than pipeline fill", sfLong-ctLong)
	}
}

func TestCutThroughContentionRatiosUnchanged(t *testing.T) {
	// The Fig. 2 slowdown ratios must be engine-invariant: cut-through
	// and store-and-forward agree on the CG pathology factor.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	sSF, err := MeasuredSlowdown(tp, core.NewDModK(tp), ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CutThrough = true
	sCT, err := MeasuredSlowdown(tp, core.NewDModK(tp), ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sSF - sCT; diff > 0.5 || diff < -0.5 {
		t.Errorf("slowdown differs across forwarding modes: SF %.2f vs CT %.2f", sSF, sCT)
	}
}

func TestCutThroughAllDelivered(t *testing.T) {
	tp := paperTree(t, 4)
	cfg := DefaultConfig()
	cfg.CutThrough = true
	cfg.BufferSegments = 2
	p := pattern.Tornado(256, 16*1024)
	end, err := RunPattern(tp, core.NewRandom(tp, 11), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("no time elapsed")
	}
}
