package venus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// RunPattern injects every flow of the pattern at t=0 (the paper's
// strategy (ii): all messages fragmented and injected simultaneously)
// and runs to completion, returning the makespan.
func RunPattern(t *xgft.Topology, algo core.Algorithm, p *pattern.Pattern, cfg Config) (eventq.Time, error) {
	s, err := New(t, cfg)
	if err != nil {
		return 0, err
	}
	for _, f := range p.Flows {
		m := Message{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes}
		if f.Src != f.Dst {
			m.Route = algo.Route(f.Src, f.Dst)
		}
		if err := s.Inject(m); err != nil {
			return 0, err
		}
	}
	return s.Run(eventBudget(p, cfg))
}

// RunPhases simulates a sequence of synchronization-separated phases
// (each phase starts when the previous one fully completes) and
// returns the total time.
func RunPhases(t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern, cfg Config) (eventq.Time, error) {
	var total eventq.Time
	for i, p := range phases {
		d, err := RunPattern(t, algo, p, cfg)
		if err != nil {
			return 0, fmt.Errorf("venus: phase %d: %w", i, err)
		}
		total += d
	}
	return total, nil
}

// CrossbarTime simulates the pattern on the paper's Full-Crossbar
// reference: an ideal single-stage network where only the adapters
// serialize.
func CrossbarTime(p *pattern.Pattern, cfg Config) (eventq.Time, error) {
	xb, err := xgft.NewFullCrossbar(p.N)
	if err != nil {
		return 0, err
	}
	return RunPattern(xb, core.NewSModK(xb), p, cfg)
}

// CrossbarPhases is RunPhases on the Full-Crossbar reference.
func CrossbarPhases(phases []*pattern.Pattern, cfg Config) (eventq.Time, error) {
	var total eventq.Time
	for i, p := range phases {
		d, err := CrossbarTime(p, cfg)
		if err != nil {
			return 0, fmt.Errorf("venus: crossbar phase %d: %w", i, err)
		}
		total += d
	}
	return total, nil
}

// MeasuredSlowdown runs the pattern on the topology and on the
// crossbar and returns the ratio — the simulated counterpart of
// contention.Slowdown and the quantity on the Y axis of the paper's
// Figs. 2 and 5.
func MeasuredSlowdown(t *xgft.Topology, algo core.Algorithm, p *pattern.Pattern, cfg Config) (float64, error) {
	net, err := RunPattern(t, algo, p, cfg)
	if err != nil {
		return 0, err
	}
	ref, err := CrossbarTime(p, cfg)
	if err != nil {
		return 0, err
	}
	if ref == 0 {
		return 1, nil
	}
	return float64(net) / float64(ref), nil
}

// MeasuredPhasedSlowdown is MeasuredSlowdown over dependent phases.
func MeasuredPhasedSlowdown(t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern, cfg Config) (float64, error) {
	net, err := RunPhases(t, algo, phases, cfg)
	if err != nil {
		return 0, err
	}
	ref, err := CrossbarPhases(phases, cfg)
	if err != nil {
		return 0, err
	}
	if ref == 0 {
		return 1, nil
	}
	return float64(net) / float64(ref), nil
}

// EventBudget bounds the event count for a pattern run: a generous
// multiple of the theoretical segment-hop count, so genuine deadlock
// or livelock fails fast instead of hanging. Exported for engines
// that drive Sim directly (the evaluate venus backend).
func EventBudget(p *pattern.Pattern, cfg Config) uint64 { return eventBudget(p, cfg) }

// eventBudget bounds the event count for a pattern run: generous
// multiple of the theoretical segment-hop count, so genuine deadlock
// or livelock fails fast instead of hanging tests.
func eventBudget(p *pattern.Pattern, cfg Config) uint64 {
	var segs uint64
	for _, f := range p.Flows {
		segs += uint64(f.Bytes/int64(cfg.SegmentBytes)) + 2
	}
	const maxHops = 2 * xgft.MaxHeight
	budget := segs * maxHops * 8
	if budget < 1_000_000 {
		budget = 1_000_000
	}
	return budget
}
