package venus

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Adaptive routing support: the paper's §I discusses adaptive
// algorithms that take local decisions and notes prior results that
// they "are not always better than oblivious algorithms". This file
// provides that comparison point: messages flagged Adaptive choose
// each ascending output port at the moment the segment leaves a
// switch, picking the port with the least backlog (queued segments +
// busy flag). Any up-port below the NCA level is minimal and valid in
// an XGFT (every up-path from the source reaches a common ancestor at
// the NCA level), and the descent stays deterministic, so adaptivity
// never lengthens a route and deadlock freedom is preserved.

// adaptiveState is the per-segment hop tracker used instead of a
// precompiled path.
type adaptiveState struct {
	level      int // current node's level
	node       int // current node index
	dst        int
	descending bool
	ncaLevel   int
}

// InjectAdaptive posts a message routed adaptively. OnDelivered and
// the other Message fields behave as in Inject; the Route field is
// ignored.
func (s *Sim) InjectAdaptive(m Message) error {
	if m.Bytes < 0 {
		return fmt.Errorf("venus: negative message size")
	}
	if m.Src == m.Dst {
		return s.Inject(m)
	}
	if m.Src < 0 || m.Src >= s.Topo.Leaves() || m.Dst < 0 || m.Dst >= s.Topo.Leaves() {
		return fmt.Errorf("venus: adaptive endpoints (%d,%d) out of range", m.Src, m.Dst)
	}
	msg := &message{Message: m, id: s.nextMsg, injectedAt: s.Q.Now(), adaptive: true}
	s.nextMsg++
	seg := int64(s.Cfg.SegmentBytes)
	msg.segsTotal = int((m.Bytes + seg - 1) / seg)
	if msg.segsTotal == 0 {
		msg.segsTotal = 1
	}
	msg.lastBytes = int(m.Bytes - seg*int64(msg.segsTotal-1))
	if msg.lastBytes <= 0 {
		msg.lastBytes = 1
	}
	s.inflight++
	s.enqueueNextAdaptiveSegment(msg)
	return nil
}

// enqueueNextAdaptiveSegment releases the adapter's next segment,
// choosing the first ascending channel adaptively.
func (s *Sim) enqueueNextAdaptiveSegment(msg *message) {
	if msg.segsInjected >= msg.segsTotal {
		return
	}
	bytes := s.Cfg.SegmentBytes
	if msg.segsInjected == msg.segsTotal-1 {
		bytes = msg.lastBytes
	}
	st := &adaptiveState{level: 0, node: msg.Src, dst: msg.Dst, ncaLevel: s.Topo.NCALevel(msg.Src, msg.Dst)}
	seg := &segment{msg: msg, bytes: bytes, adaptive: st}
	msg.segsInjected++
	ch := s.pickAdaptive(st)
	s.enqueue(ch, seg, adapterClassBase+msg.id)
	s.kick(ch)
}

// pickAdaptive selects the next directed channel for a segment at its
// current node and advances the state to the node that channel leads
// to.
func (s *Sim) pickAdaptive(st *adaptiveState) *channel {
	t := s.Topo
	if !st.descending && st.level == st.ncaLevel {
		st.descending = true
	}
	if !st.descending {
		// Choose the least-backlogged up port of the current node,
		// breaking ties pseudo-randomly. Deterministic tie-breaking
		// (always the lowest port) makes the "adaptive" choice a
		// regular function of arrival order, which regular patterns
		// like CG's transpose re-align with — the same congruence
		// pathology the paper describes for mod-k, reborn on the
		// descending side. Randomized tie-breaking restores the
		// intended load spreading while keeping runs reproducible.
		w := t.W(st.level)
		bestPort, best := 0, int(^uint(0)>>1)
		s.adaptTie = splitmixStep(s.adaptTie)
		offset := int(s.adaptTie % uint64(w))
		for i := 0; i < w; i++ {
			p := (offset + i) % w
			c := s.chans[s.upID(t.UpChannelID(st.level, st.node, p))]
			load := c.queued
			if c.busy {
				load++
			}
			if !c.sink && c.credits == 0 {
				load += s.Cfg.BufferSegments
			}
			if load < best {
				best = load
				bestPort = p
			}
		}
		wire := t.UpChannelID(st.level, st.node, bestPort)
		st.node = t.Parent(st.level, st.node, bestPort)
		st.level++
		return s.chans[s.upID(wire)]
	}
	// Deterministic descent towards the destination.
	dstDigit := s.dstDigit(st)
	child := t.Child(st.level, st.node, dstDigit)
	wire := t.UpChannelID(st.level-1, child, t.UpPortOf(st.level-1, st.node))
	st.node = child
	st.level--
	return s.chans[s.downID(wire)]
}

// dstDigit returns the destination's label digit steering the next
// descent hop.
func (s *Sim) dstDigit(st *adaptiveState) int {
	// digit (level-1) of the destination in the leaf mixed radix.
	d := st.dst
	for j := 0; j < st.level-1; j++ {
		d /= s.Topo.M(j)
	}
	return d % s.Topo.M(st.level-1)
}

// AdaptiveAlgorithmName is the reporting label for adaptive runs.
const AdaptiveAlgorithmName = "adaptive"

// splitmixStep advances the tie-breaking stream (splitmix64).
func splitmixStep(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunPatternAdaptive is RunPattern with per-segment adaptive routing.
func RunPatternAdaptive(t *xgft.Topology, p *pattern.Pattern, cfg Config) (eventq.Time, error) {
	s, err := New(t, cfg)
	if err != nil {
		return 0, err
	}
	for _, f := range p.Flows {
		if err := s.InjectAdaptive(Message{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes}); err != nil {
			return 0, err
		}
	}
	return s.Run(eventBudget(p, cfg))
}

// MeasuredSlowdownAdaptive is the adaptive counterpart of
// MeasuredSlowdown.
func MeasuredSlowdownAdaptive(t *xgft.Topology, p *pattern.Pattern, cfg Config) (float64, error) {
	net, err := RunPatternAdaptive(t, p, cfg)
	if err != nil {
		return 0, err
	}
	ref, err := CrossbarTime(p, cfg)
	if err != nil {
		return 0, err
	}
	if ref == 0 {
		return 1, nil
	}
	return float64(net) / float64(ref), nil
}

// MeasuredPhasedSlowdownAdaptive sums dependent phases.
func MeasuredPhasedSlowdownAdaptive(t *xgft.Topology, phases []*pattern.Pattern, cfg Config) (float64, error) {
	var net, ref eventq.Time
	for i, p := range phases {
		n, err := RunPatternAdaptive(t, p, cfg)
		if err != nil {
			return 0, fmt.Errorf("venus: adaptive phase %d: %w", i, err)
		}
		r, err := CrossbarTime(p, cfg)
		if err != nil {
			return 0, err
		}
		net += n
		ref += r
	}
	if ref == 0 {
		return 1, nil
	}
	return float64(net) / float64(ref), nil
}
