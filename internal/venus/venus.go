// Package venus is the event-driven network simulator substituting
// for the Venus flit-level simulator of the paper's methodology
// (§VI-B). It simulates an XGFT (or the ideal crossbar, itself an
// XGFT(1;N;1)) at segment granularity with flit-quantized timing:
//
//   - full-duplex links of configurable bandwidth (default 2 Gb/s),
//   - messages segmented at the adapter (default 1 KB segments) with
//     round-robin interleaving among concurrent messages,
//   - input-buffered switches: per-input-channel buffers of
//     configurable depth, credit-based backpressure, round-robin
//     arbitration among inputs competing for an output,
//   - store-and-forward per segment with configurable wire latency.
//
// The simulation is deterministic: a single discrete-event calendar
// with FIFO ordering among simultaneous events.
package venus

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/xgft"
)

// Config carries the network parameters of the paper's §VI-B model.
type Config struct {
	// LinkBytesPerSec is the link speed; the paper uses 2 Gbit/s.
	LinkBytesPerSec int64
	// SegmentBytes is the adapter segmentation unit (paper: 1 KB).
	SegmentBytes int
	// FlitBytes quantizes transmission times (paper: 8 B flits).
	FlitBytes int
	// BufferSegments is the per-input-channel buffer depth of
	// switches, in segments.
	BufferSegments int
	// WireLatency is the propagation delay of every hop.
	WireLatency eventq.Time
	// CutThrough enables virtual cut-through forwarding: a segment
	// becomes available at the next hop one flit time after its
	// transmission starts instead of after it fully arrives
	// (store-and-forward, the default). Bandwidth and contention are
	// unaffected; per-hop latency shrinks from a full segment to a
	// flit. Used by the latency-model ablation benchmarks.
	CutThrough bool
}

// DefaultConfig returns the paper's parameters: 2 Gb/s links, 1 KB
// segments, 8 B flits, 8-segment input buffers, 32 ns wires.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec: 250_000_000, // 2 Gbit/s
		SegmentBytes:    1024,
		FlitBytes:       8,
		BufferSegments:  8,
		WireLatency:     32,
	}
}

func (c Config) validate() error {
	if c.LinkBytesPerSec <= 0 {
		return fmt.Errorf("venus: link speed %d must be positive", c.LinkBytesPerSec)
	}
	if c.SegmentBytes <= 0 {
		return fmt.Errorf("venus: segment size %d must be positive", c.SegmentBytes)
	}
	if c.FlitBytes <= 0 || c.FlitBytes > c.SegmentBytes {
		return fmt.Errorf("venus: flit size %d must be in (0,%d]", c.FlitBytes, c.SegmentBytes)
	}
	if c.BufferSegments <= 0 {
		return fmt.Errorf("venus: buffer depth %d must be positive", c.BufferSegments)
	}
	if c.WireLatency < 0 {
		return fmt.Errorf("venus: negative wire latency")
	}
	return nil
}

// flitTime returns the transmission time of one flit.
func (c Config) flitTime() eventq.Time {
	// ns per flit = FlitBytes / (bytes per ns); computed in integer
	// arithmetic: 1e9 * FlitBytes / LinkBytesPerSec.
	return eventq.Time(int64(c.FlitBytes) * 1_000_000_000 / c.LinkBytesPerSec)
}

// Message is one end-to-end transfer.
type Message struct {
	Src, Dst int
	Bytes    int64
	// Route must connect Src to Dst (empty for Src == Dst).
	Route xgft.Route
	// Tag is caller-defined (MPI tag matching in the replay engine).
	Tag int
	// OnDelivered, if non-nil, fires when the last byte is ejected at
	// the destination adapter.
	OnDelivered func(at eventq.Time)
}

// message is the in-flight state of a Message.
type message struct {
	Message
	id           int
	segsTotal    int
	segsInjected int
	segsArrived  int
	path         []int // directed channel sequence (nil for adaptive)
	lastBytes    int   // size of the final (possibly short) segment
	adaptive     bool
	injectedAt   eventq.Time
	deliveredAt  eventq.Time
}

// segment is one unit of transfer.
type segment struct {
	msg      *message
	bytes    int
	hop      int      // index into msg.path of the channel it waits for / rides
	origin   *channel // channel whose downstream buffer it occupies (nil at the source adapter)
	adaptive *adaptiveState
}

// directed channel states.
type channel struct {
	id      int
	busy    bool
	credits int  // space left in the downstream input buffer
	sink    bool // downstream is a leaf adapter (infinite credit)
	queues  []segFIFO
	class   map[int]int // arbitration class -> queue index
	rr      int
	queued  int

	// usage accounting (see stats.go)
	bytes    int64
	busyTime eventq.Time
	segments int
}

type segFIFO struct {
	segs []*segment
}

func (f *segFIFO) push(s *segment) { f.segs = append(f.segs, s) }
func (f *segFIFO) empty() bool     { return len(f.segs) == 0 }
func (f *segFIFO) pop() *segment {
	s := f.segs[0]
	copy(f.segs, f.segs[1:])
	f.segs = f.segs[:len(f.segs)-1]
	return s
}

// Sim is one simulation instance. Not safe for concurrent use; run
// one Sim per goroutine for parallel sweeps.
type Sim struct {
	Topo *xgft.Topology
	Cfg  Config
	Q    *eventq.Queue

	chans    []*channel // 2*TotalChannels: ups then downs
	nextMsg  int
	inflight int
	done     []*message

	// Stats
	SegmentsMoved uint64
	adaptTie      uint64
}

// New builds a simulator for the topology. The event queue is owned
// by the Sim but exported so coupled engines (internal/dimemas) can
// schedule their own events on the same clock.
func New(t *xgft.Topology, cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sim{Topo: t, Cfg: cfg, Q: new(eventq.Queue)}
	n := t.TotalChannels()
	s.chans = make([]*channel, 2*n)
	for i := range s.chans {
		c := &channel{id: i, credits: cfg.BufferSegments, class: make(map[int]int)}
		if i >= n {
			// Down channel: sinks into a leaf when its wire is at
			// level 0.
			level, _, _ := t.ChannelOf(i - n)
			c.sink = level == 0
		}
		s.chans[i] = c
	}
	return s, nil
}

// upID and downID map wire IDs to directed channel indices.
func (s *Sim) upID(wire int) int   { return wire }
func (s *Sim) downID(wire int) int { return s.Topo.TotalChannels() + wire }

// pathOf compiles a route into its directed channel sequence.
func (s *Sim) pathOf(r xgft.Route) []int {
	path := make([]int, 0, r.Hops())
	r.Walk(s.Topo, func(_, _, _, wire int, up bool) {
		if up {
			path = append(path, s.upID(wire))
		} else {
			path = append(path, s.downID(wire))
		}
	})
	return path
}

// Inject posts a message at the current simulated time. Messages with
// Src == Dst are delivered after a zero-copy local latency of one
// wire delay without touching the network.
func (s *Sim) Inject(m Message) error {
	if m.Bytes < 0 {
		return fmt.Errorf("venus: negative message size")
	}
	if m.Src != m.Dst {
		if m.Route.Src != m.Src || m.Route.Dst != m.Dst {
			return fmt.Errorf("venus: inject: route endpoints (%d,%d) do not match message (%d,%d)", m.Route.Src, m.Route.Dst, m.Src, m.Dst)
		}
		if err := m.Route.Validate(s.Topo); err != nil {
			return fmt.Errorf("venus: inject: %w", err)
		}
	}
	msg := &message{Message: m, id: s.nextMsg, injectedAt: s.Q.Now()}
	s.nextMsg++
	if m.Src == m.Dst {
		s.Q.After(s.Cfg.WireLatency, func() {
			msg.deliveredAt = s.Q.Now()
			s.done = append(s.done, msg)
			if msg.OnDelivered != nil {
				msg.OnDelivered(s.Q.Now())
			}
		})
		s.inflight++
		s.Q.After(s.Cfg.WireLatency, func() { s.inflight-- })
		return nil
	}
	msg.path = s.pathOf(m.Route)
	seg := int64(s.Cfg.SegmentBytes)
	msg.segsTotal = int((m.Bytes + seg - 1) / seg)
	if msg.segsTotal == 0 {
		msg.segsTotal = 1 // zero-byte message still sends a header
	}
	msg.lastBytes = int(m.Bytes - seg*int64(msg.segsTotal-1))
	if msg.lastBytes <= 0 {
		msg.lastBytes = 1 // header flit for empty payloads
	}
	s.inflight++
	// The adapter feeds the first channel; arbitration class is the
	// message ID, giving the paper's round-robin interleaving of
	// concurrent messages at the adapter.
	first := s.chans[msg.path[0]]
	s.enqueueNextSegment(msg, first)
	return nil
}

// enqueueNextSegment hands the adapter's next segment of msg to the
// injection channel. Only one segment of a message occupies the
// injection queue at a time; the next is enqueued when the previous
// one starts transmission, which keeps per-message order while
// letting round-robin interleave messages fairly.
func (s *Sim) enqueueNextSegment(msg *message, first *channel) {
	if msg.segsInjected >= msg.segsTotal {
		return
	}
	bytes := s.Cfg.SegmentBytes
	if msg.segsInjected == msg.segsTotal-1 {
		bytes = msg.lastBytes
	}
	seg := &segment{msg: msg, bytes: bytes, hop: 0}
	msg.segsInjected++
	s.enqueue(first, seg, adapterClassBase+msg.id)
	s.kick(first)
}

// adapterClassBase keeps message-ID arbitration classes from
// colliding with channel-ID classes on shared output ports.
const adapterClassBase = 1 << 30

// enqueue places a segment into the channel's virtual queue for its
// arbitration class.
func (s *Sim) enqueue(c *channel, seg *segment, class int) {
	qi, ok := c.class[class]
	if !ok {
		qi = len(c.queues)
		c.class[class] = qi
		c.queues = append(c.queues, segFIFO{})
	}
	c.queues[qi].push(seg)
	c.queued++
}

// kick starts a transmission on the channel if it is idle, has
// credit, and has a queued segment. Round-robin scans the virtual
// queues starting after the last served one.
func (s *Sim) kick(c *channel) {
	if c.busy || c.queued == 0 {
		return
	}
	if !c.sink && c.credits == 0 {
		return
	}
	n := len(c.queues)
	for i := 1; i <= n; i++ {
		qi := (c.rr + i) % n
		if c.queues[qi].empty() {
			continue
		}
		c.rr = qi
		seg := c.queues[qi].pop()
		c.queued--
		s.transmit(c, seg)
		return
	}
}

// transmit serializes the segment on the channel and schedules its
// arrival downstream. The segment's claim on its current input buffer
// (if any) is released as soon as serialization starts and the credit
// travels back upstream after one wire delay — the standard
// credit-based flow control loop.
func (s *Sim) transmit(c *channel, seg *segment) {
	c.busy = true
	if !c.sink {
		c.credits--
	}
	if orig := seg.origin; orig != nil {
		seg.origin = nil
		s.Q.After(s.Cfg.WireLatency, func() {
			orig.credits++
			s.kick(orig)
		})
	}
	flits := (seg.bytes + s.Cfg.FlitBytes - 1) / s.Cfg.FlitBytes
	if flits == 0 {
		flits = 1
	}
	dur := eventq.Time(flits) * s.Cfg.flitTime()
	c.bytes += int64(seg.bytes)
	c.busyTime += dur
	c.segments++
	// If this segment came from the adapter, release the next one of
	// its message now that serialization started.
	if seg.hop == 0 {
		if seg.adaptive != nil {
			s.enqueueNextAdaptiveSegment(seg.msg)
		} else {
			s.enqueueNextSegment(seg.msg, c)
		}
	}
	var lastHop bool
	if seg.adaptive != nil {
		lastHop = seg.adaptive.level == 0
	} else {
		lastHop = seg.hop == len(seg.msg.path)-1
	}
	if s.Cfg.CutThrough && !lastHop {
		// The head flit reaches the next switch after one flit time
		// plus the wire; the segment can contend for its next output
		// while its tail is still on this wire. The final ejection
		// (delivery) always waits for the tail.
		s.Q.After(s.Cfg.flitTime()+s.Cfg.WireLatency, func() { s.arrive(c, seg) })
		s.Q.After(dur, func() {
			c.busy = false
			s.kick(c)
		})
		return
	}
	s.Q.After(dur, func() {
		c.busy = false
		s.kick(c)
		// Arrival after the wire delay.
		s.Q.After(s.Cfg.WireLatency, func() { s.arrive(c, seg) })
	})
}

// arrive lands the segment downstream of channel c: either it reached
// the destination adapter (last hop) or it queues for its next hop,
// holding a buffer slot of c (seg.origin) until it moves on.
func (s *Sim) arrive(from *channel, seg *segment) {
	s.SegmentsMoved++
	msg := seg.msg
	atDestination := false
	if seg.adaptive != nil {
		atDestination = seg.adaptive.level == 0
	} else {
		atDestination = seg.hop == len(msg.path)-1
	}
	if atDestination {
		// Ejected at the destination adapter.
		msg.segsArrived++
		if msg.segsArrived == msg.segsTotal {
			msg.deliveredAt = s.Q.Now()
			s.inflight--
			s.done = append(s.done, msg)
			if msg.OnDelivered != nil {
				msg.OnDelivered(s.Q.Now())
			}
		}
		return
	}
	seg.hop++
	seg.origin = from
	var next *channel
	if seg.adaptive != nil {
		next = s.pickAdaptive(seg.adaptive)
	} else {
		next = s.chans[msg.path[seg.hop]]
	}
	s.enqueue(next, seg, from.id)
	s.kick(next)
}

// Run drains all pending traffic and returns the completion time of
// the last delivery. maxEvents <= 0 means unbounded.
func (s *Sim) Run(maxEvents uint64) (eventq.Time, error) {
	if !s.Q.Run(maxEvents) {
		return 0, fmt.Errorf("venus: event budget %d exhausted with %d messages in flight", maxEvents, s.inflight)
	}
	if s.inflight != 0 {
		return 0, fmt.Errorf("venus: simulation stalled with %d messages in flight (deadlock?)", s.inflight)
	}
	return s.Q.Now(), nil
}

// Delivered returns per-message delivery records in completion order.
func (s *Sim) Delivered() []Delivery {
	out := make([]Delivery, len(s.done))
	for i, m := range s.done {
		out[i] = Delivery{
			Src: m.Src, Dst: m.Dst, Bytes: m.Bytes, Tag: m.Tag,
			InjectedAt: m.injectedAt, DeliveredAt: m.deliveredAt,
		}
	}
	return out
}

// Delivery is the public record of one completed message.
type Delivery struct {
	Src, Dst    int
	Bytes       int64
	Tag         int
	InjectedAt  eventq.Time
	DeliveredAt eventq.Time
}

// InFlight returns the number of undelivered messages.
func (s *Sim) InFlight() int { return s.inflight }
