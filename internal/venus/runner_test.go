package venus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pattern"
)

func TestRunPatternRejectsBadPattern(t *testing.T) {
	tp := paperTree(t, 16)
	bad := pattern.New(300) // larger than the tree
	bad.Add(0, 299, 100)
	if _, err := RunPattern(tp, core.NewDModK(tp), bad, DefaultConfig()); err == nil {
		t.Error("oversized pattern accepted")
	}
}

func TestRunPatternBadConfig(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.Shift(256, 1, 100)
	if _, err := RunPattern(tp, core.NewDModK(tp), p, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestCrossbarPhasesSumsPhases(t *testing.T) {
	phases, err := pattern.CGPhases(64, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	total, err := CrossbarPhases(phases, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, ph := range phases {
		d, err := CrossbarTime(ph, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sum += int64(d)
	}
	if int64(total) != sum {
		t.Errorf("CrossbarPhases %d != sum of phases %d", total, sum)
	}
}

func TestMeasuredSlowdownEmptyPattern(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.New(256) // no flows
	s, err := MeasuredSlowdown(tp, core.NewDModK(tp), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("empty pattern slowdown = %.2f, want 1", s)
	}
}

func TestRunPhasesPropagatesErrors(t *testing.T) {
	tp := paperTree(t, 16)
	bad := pattern.New(300)
	bad.Add(0, 299, 100)
	if _, err := RunPhases(tp, core.NewDModK(tp), []*pattern.Pattern{bad}, DefaultConfig()); err == nil {
		t.Error("bad phase accepted")
	}
}

func TestMeasuredSlowdownConsistencyAcrossSizes(t *testing.T) {
	// Bandwidth-bound slowdowns are nearly message-size invariant —
	// the property that lets benchmarks scale sizes down.
	tp := paperTree(t, 8)
	p16 := pattern.KeyedRandomPermutation(256, 16*1024, 13)
	p64 := pattern.New(256)
	for _, f := range p16.Flows {
		p64.Add(f.Src, f.Dst, 64*1024)
	}
	algo := core.NewRandom(tp, 2)
	s16, err := MeasuredSlowdown(tp, algo, p16, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s64, err := MeasuredSlowdown(tp, algo, p64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := s64 / s16; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("slowdown size-dependent: 16KB %.2f vs 64KB %.2f", s16, s64)
	}
}
