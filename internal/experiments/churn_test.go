package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func churnOpts(par int) Options {
	return Options{Seeds: 2, Parallelism: par}
}

func TestChurnSweepModesAgree(t *testing.T) {
	rows, err := ChurnSweep(churnOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(churnModes) {
		t.Fatalf("%d rows, want %d", len(rows), len(churnModes))
	}
	inc, full := rows[0], rows[1]
	if inc.Mode != "incremental" || full.Mode != "full" {
		t.Fatalf("row order %q/%q, want incremental/full", inc.Mode, full.Mode)
	}
	// ChurnSweep errors out on per-seed hash divergence; the aggregate
	// decision stream and every deterministic counter must agree too.
	if inc.DecisionHash != full.DecisionHash {
		t.Errorf("decision hashes diverged: %#x vs %#x", inc.DecisionHash, full.DecisionHash)
	}
	if inc.Placed != full.Placed || inc.Rejected != full.Rejected ||
		inc.Flaps != full.Flaps || inc.Optimizes != full.Optimizes || inc.Swaps != full.Swaps {
		t.Errorf("deterministic counters diverged:\nincremental %+v\nfull        %+v", inc, full)
	}
	if inc.Placed == 0 {
		t.Error("churn schedule placed no jobs")
	}
	if inc.Swaps == 0 {
		t.Error("churn schedule never swapped a generation — the sweep is not exercising re-optimization")
	}
	// The delta discipline's fingerprints: incremental swaps install by
	// route delta (touched counts accumulate), full swaps repack.
	if inc.TouchedRoutes == 0 {
		t.Error("incremental mode installed swaps without route deltas")
	}
	if full.TouchedRoutes != 0 {
		t.Errorf("full mode reports %d touched routes, want 0 (full repack)", full.TouchedRoutes)
	}
	if len(inc.SwapNS) != inc.Swaps || len(full.SwapNS) != full.Swaps {
		t.Errorf("swap latency samples %d/%d, want one per swap (%d/%d)",
			len(inc.SwapNS), len(full.SwapNS), inc.Swaps, full.Swaps)
	}
}

// TestChurnSweepParallelismInvariant is the sweep's determinism gate:
// the deterministic output (everything outside bracketed wall-clock
// lines) must be byte-identical between a sequential run and a
// maximally parallel one.
func TestChurnSweepParallelismInvariant(t *testing.T) {
	render := func(par int) string {
		rows, err := ChurnSweep(churnOpts(par))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteChurnSweep(&buf, rows)
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "[") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("sequential and parallel runs differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
