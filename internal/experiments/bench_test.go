package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
)

// Benchmarks of the sweep engine itself: pool scaling and table
// memoization. The root bench_test.go measures the per-figure work;
// here the work is fixed and the engine varies.

// benchSweepOpt is a Figure2-sized workload big enough for the pool
// to matter: full W2 sweep, paper-scale seed count.
func benchSweepOpt(parallelism int, cache *core.TableCache) Options {
	return Options{
		Engine:      Analytic,
		Seeds:       20,
		W2Values:    []int{16, 12, 8, 4},
		Parallelism: parallelism,
		Cache:       cache,
	}
}

// BenchmarkFigure2Engine compares the sequential engine against the
// worker pool at GOMAXPROCS, both uncached: the ratio is the
// wall-clock speedup of the tentpole runner.
func BenchmarkFigure2Engine(b *testing.B) {
	app := WRFApp()
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Figure2(app, benchSweepOpt(par, core.NewTableCache(0))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5Engine is the boxplot sweep under the same
// comparison (3x the randomized cells of Figure 2).
func BenchmarkFigure5Engine(b *testing.B) {
	app := CGApp()
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Figure5(app, benchSweepOpt(par, core.NewTableCache(0))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Cache measures what the routing-table cache buys on
// repeated sweeps (the -all scenario where Figure 5 re-uses every
// Figure 2 cell): cold builds every table, warm serves them all.
func BenchmarkFigure2Cache(b *testing.B) {
	app := WRFApp()
	par := runtime.GOMAXPROCS(0)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Figure2(app, benchSweepOpt(par, core.NewTableCache(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := core.NewTableCache(4096)
		if _, err := Figure2(app, benchSweepOpt(par, cache)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Figure2(app, benchSweepOpt(par, cache)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
