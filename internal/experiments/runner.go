package experiments

import (
	"sync"

	"repro/internal/core"
	"repro/internal/evaluate"
)

// This file is the concurrent sweep engine: every figure and table
// decomposes into independent (topology, algorithm, pattern, seed)
// cells, which run on a bounded worker pool. Three invariants make
// parallel runs byte-identical to sequential ones:
//
//   - each cell writes only its own pre-allocated result slot, indexed
//     by the cell's position in the deterministic cell enumeration;
//   - randomness is derived per cell from (seed, cell coordinates) —
//     there is no shared rand.Rand, so scheduling order cannot leak
//     into results;
//   - aggregation (medians, boxplot summaries) happens after the pool
//     drains, over slices whose order is fixed by the enumeration.
//
// Errors are deterministic too: the error of the lowest-indexed
// failing cell is returned, regardless of completion order.

// sharedTableCache is the process-wide routing-table cache used when
// Options.Cache is nil: `cmd/experiments -all` reuses tables across
// figures (Figure2 and Figure5 share all fixed-algorithm and Random
// cells; Figure3 shares d-mod-k tables with the CG sweeps).
var sharedTableCache = core.NewTableCache(4096)

// SharedTableCache exposes the process-wide cache (for stats
// reporting and tests).
func SharedTableCache() *core.TableCache { return sharedTableCache }

// tableCache resolves the cache an experiment run should use.
func (o Options) tableCache() *core.TableCache {
	if o.Cache != nil {
		return o.Cache
	}
	return sharedTableCache
}

// evaluator resolves the scoring backend pattern-level sweeps use:
// the injected one, or the analytic bound over the options' cache.
func (o Options) evaluator() evaluate.Evaluator {
	if o.Evaluator != nil {
		return o.Evaluator
	}
	return evaluate.NewAnalytic(o.tableCache())
}

// runCells executes fn(0..n-1) on a pool of the given width, invoking
// progress (if non-nil) after each completed cell with monotonically
// increasing done counts, and returning the error of the
// lowest-indexed failing cell.
func runCells(n, workers int, progress func(done, total int), fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			err := fn(i)
			// Failed cells count as done (matching the parallel
			// path); on error the pool drains in-flight cells, so a
			// parallel run may report a few more cells than this
			// path before stopping — results on success are
			// parallelism-independent, error-path progress is
			// best-effort.
			if progress != nil {
				progress(i+1, n)
			}
			if err != nil {
				// In-order execution: the first error is the
				// lowest-indexed one, so stop immediately.
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		done     int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				err := fn(i)
				mu.Lock()
				if err != nil && i < firstIdx {
					firstErr, firstIdx = err, i
				}
				done++
				if progress != nil {
					progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		// Stop dispatching once any cell has failed. Cells are
		// dispatched in index order, so every cell below an observed
		// failure has already been dispatched and will still report:
		// the returned error remains the globally lowest-indexed one.
		mu.Lock()
		failed := firstIdx < n
		mu.Unlock()
		if failed {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// run executes n cells under the options' parallelism and progress
// callback.
func (o Options) run(n int, fn func(i int) error) error {
	return runCells(n, o.Parallelism, o.Progress, fn)
}
