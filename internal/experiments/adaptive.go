package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// AdaptiveRow compares per-segment adaptive routing against the
// oblivious schemes on one workload/topology point (simulated
// engine; adaptivity has no analytic counterpart).
type AdaptiveRow struct {
	Workload string
	W2       int
	Adaptive float64
	DModK    float64
	RNCADn   float64
	Random   float64
}

// AdaptiveComparison reproduces the §I observation the paper cites
// (Gomez et al.): local adaptive decisions beat bad oblivious
// assignments on adversarial regular patterns, but do not beat a good
// oblivious scheme on patterns it routes conflict-free.
// Options.MessageBytes (default 32 KiB) sets the per-flow size;
// Parallelism and Progress apply to the (workload, w2) cells.
func AdaptiveComparison(opt Options) ([]AdaptiveRow, error) {
	if opt.MessageBytes <= 0 {
		opt.MessageBytes = 32 * 1024
	}
	opt = opt.withDefaults()
	bytes := opt.MessageBytes
	cfg := venus.DefaultConfig()
	type workload struct {
		name   string
		phases []*pattern.Pattern
	}
	cgT, err := pattern.CGTransposePhase(128, bytes)
	if err != nil {
		return nil, err
	}
	workloads := []workload{
		{"wrf-halo", []*pattern.Pattern{pattern.WRF(16, 16, bytes)}},
		{"cg-transpose", []*pattern.Pattern{cgT}},
	}
	w2s := []int{16, 8}
	rows := make([]AdaptiveRow, len(workloads)*len(w2s))
	// Each (workload, w2) point is an independent cell: every
	// simulated slowdown constructs its own venus.Sim, so points can
	// run on separate workers.
	err = opt.run(len(rows), func(i int) error {
		wl := workloads[i/len(w2s)]
		w2 := w2s[i%len(w2s)]
		tp, err := xgft.NewSlimmedTree(16, 16, w2)
		if err != nil {
			return err
		}
		row := AdaptiveRow{Workload: wl.name, W2: w2}
		if row.Adaptive, err = venus.MeasuredPhasedSlowdownAdaptive(tp, wl.phases, cfg); err != nil {
			return err
		}
		if row.DModK, err = venus.MeasuredPhasedSlowdown(tp, core.NewDModK(tp), wl.phases, cfg); err != nil {
			return err
		}
		if row.RNCADn, err = venus.MeasuredPhasedSlowdown(tp, core.NewRandomNCADown(tp, 1), wl.phases, cfg); err != nil {
			return err
		}
		if row.Random, err = venus.MeasuredPhasedSlowdown(tp, core.NewRandom(tp, 1), wl.phases, cfg); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteAdaptiveComparison renders the comparison.
func WriteAdaptiveComparison(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "Extension — per-segment adaptive routing vs oblivious (simulated slowdowns)")
	fmt.Fprintf(w, "%-14s %4s  %9s  %8s  %8s  %8s\n", "workload", "w2", "adaptive", "d-mod-k", "r-NCA-d", "random")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %4d  %9.2f  %8.2f  %8.2f  %8.2f\n",
			r.Workload, r.W2, r.Adaptive, r.DModK, r.RNCADn, r.Random)
	}
}
