package experiments

import (
	"reflect"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/xgft"
)

func TestTopWireOrder(t *testing.T) {
	tp, _ := xgft.NewSlimmedTree(16, 16, 16)
	a := topWireOrder(tp, 1)
	b := topWireOrder(tp, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("topWireOrder not deterministic per seed")
	}
	c := topWireOrder(tp, 2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew the same wire order")
	}
	// A permutation of exactly the top-level wire IDs.
	if len(a) != tp.ChannelsAt(1) {
		t.Fatalf("order over %d wires, want %d", len(a), tp.ChannelsAt(1))
	}
	base := tp.TotalChannels() - tp.ChannelsAt(1)
	seen := make(map[int]bool)
	for _, id := range a {
		if id < base || id >= tp.TotalChannels() || seen[id] {
			t.Fatalf("order is not a top-wire permutation: %d", id)
		}
		seen[id] = true
	}
}

func TestFaultSweep(t *testing.T) {
	opt := Options{Seeds: 3, Parallelism: 4, Cache: core.NewTableCache(256)}
	app := WRFApp()
	rows, err := FaultSweep(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(faultFractions) {
		t.Fatalf("%d rows, want %d", len(rows), len(faultFractions))
	}

	// The healthy row is the Figure-2 w2=16 baseline: every seed sees
	// the same (empty) failure set, so the distributions collapse.
	tp, _ := xgft.NewSlimmedTree(16, 16, 16)
	phases := app.Phases(0)
	want, err := contention.PhasedSlowdown(tp, core.NewDModK(tp), phases)
	if err != nil {
		t.Fatal(err)
	}
	r0 := rows[0]
	if r0.FailedLinks != 0 || r0.Unreachable != 0 {
		t.Fatalf("healthy row carries failures: %+v", r0)
	}
	if r0.DModK.Min != r0.DModK.Max || absDiff(r0.DModK.Median, want) > 1e-12 {
		t.Fatalf("healthy d-mod-k row %+v, want all-equal %v", r0.DModK, want)
	}

	for i, r := range rows {
		for _, s := range []float64{r.DModK.Min, r.Random.Min, r.RNCAUp.Min, r.RNCADn.Min} {
			if s < 1-1e-9 {
				t.Fatalf("row %d: slowdown %v below the minimal-routing bound", i, s)
			}
		}
		if r.Unreachable < 0 || r.Unreachable > 1 {
			t.Fatalf("row %d: unreachable fraction %v", i, r.Unreachable)
		}
	}
	// More failures cannot speed up the deterministic scheme: the
	// failure sets are nested per seed, so d-mod-k's median is
	// monotone up to reroute noise.
	if rows[len(rows)-1].DModK.Median < rows[0].DModK.Median {
		t.Fatalf("d-mod-k median improved under failures: %v -> %v",
			rows[0].DModK.Median, rows[len(rows)-1].DModK.Median)
	}
}

func TestFaultSweepRejectsSimulatedEngine(t *testing.T) {
	if _, err := FaultSweep(WRFApp(), Options{Engine: Simulated, Seeds: 1}); err == nil {
		t.Fatal("simulated engine accepted by the analytic-only sweep")
	}
}

func TestFaultSweepParallelismInvariant(t *testing.T) {
	app := CGApp()
	seq, err := FaultSweep(app, Options{Seeds: 2, Parallelism: 1, Cache: core.NewTableCache(256)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FaultSweep(app, Options{Seeds: 2, Parallelism: 8, Cache: core.NewTableCache(256)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FaultSweep results depend on parallelism")
	}
}

// TestDegradedPatchedTablesDeadlockFree certifies the sweep's repair
// path: even at the highest failure fraction the patched route set
// keeps the up/down channel dependency graph acyclic.
func TestDegradedPatchedTablesDeadlockFree(t *testing.T) {
	tp, _ := xgft.NewSlimmedTree(16, 16, 16)
	v := xgft.NewView(tp)
	order := topWireOrder(tp, 1)
	frac := faultFractions[len(faultFractions)-1]
	for _, wire := range order[:int(frac*float64(len(order))+0.5)] {
		v.FailWire(wire)
	}
	phases := WRFApp().Phases(0)
	for _, p := range phases {
		tbl, err := core.BuildTable(tp, core.NewDModK(tp), p)
		if err != nil {
			t.Fatal(err)
		}
		patched, st, err := core.PatchTable(tbl, v)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rerouted == 0 {
			t.Fatal("40% top-level failures patched nothing")
		}
		routes := patched.Routes
		if st.Unreachable > 0 {
			routes = nil
			for i, f := range p.Flows {
				if r := patched.Routes[i]; f.Src == f.Dst || r.Up != nil {
					routes = append(routes, r)
				}
			}
		}
		if err := contention.VerifyDeadlockFree(tp, routes); err != nil {
			t.Fatalf("patched WRF table not deadlock-free: %v", err)
		}
		// Cross-check degradedSlowdown's arithmetic against the
		// public SlowdownRoutes helper on the same patched set.
		if st.Unreachable == 0 {
			want, err := contention.SlowdownRoutes(tp, p, patched.Routes)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := degradedSlowdown(nil, tp, v, core.NewDModK(tp), phases[:1])
			if err != nil {
				t.Fatal(err)
			}
			if absDiff(got, want) > 1e-12 {
				t.Fatalf("degradedSlowdown %v, SlowdownRoutes %v", got, want)
			}
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
