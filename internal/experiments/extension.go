package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/xgft"
)

// The experiments in this file go beyond the paper's figures along
// the directions its text opens: the generalization claim ("extends
// the previous work from k-ary n-trees to the more general class of
// extended generalized fat trees") exercised on three-level trees,
// and an ablation of the balanced-map design choice of §VIII.

// DeepRow is one data point of the three-level generalization sweep:
// XGFT(3;8,8,8;1,w,w) under progressive slimming of both upper
// levels.
type DeepRow struct {
	W        int
	Topology string
	Switches int
	SModK    float64
	DModK    float64
	RNCAUp   stats.Summary
	RNCADn   stats.Summary
	Random   stats.Summary
}

// deepSchemes enumerates the sweep's routing schemes in result
// order: the two fixed baselines, then the three randomized schemes.
// Fixed schemes ignore the seed argument (they are averaged over the
// per-seed permutations instead).
var deepSchemes = []func(tp *xgft.Topology, seed uint64) core.Algorithm{
	func(tp *xgft.Topology, _ uint64) core.Algorithm { return core.NewSModK(tp) },
	func(tp *xgft.Topology, _ uint64) core.Algorithm { return core.NewDModK(tp) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandom(tp, s) },
}

// DeepTreeSweep evaluates the routing family on three-level slimmed
// trees XGFT(3;8,8,8;1,w,w), w = 8..1, under a workload of random
// permutations (the regime where the paper's analysis predicts the
// relabeling family matches Random's balance while keeping mod-k's
// concentration). Slowdowns are analytic; Options.Seeds (default 10
// here) parameterizes both the permutations and the randomized
// algorithms, Options.MessageBytes (default 64 KiB) the per-flow
// size. Every (w, scheme, seed) triple is an independent sweep cell.
func DeepTreeSweep(opt Options) ([]DeepRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 10
	}
	if opt.MessageBytes <= 0 {
		opt.MessageBytes = 64 * 1024
	}
	opt = opt.withDefaults()
	seeds := opt.Seeds
	ws := []int{8, 7, 6, 5, 4, 3, 2, 1}
	topos := make([]*xgft.Topology, len(ws))
	perms := make([][]*pattern.Pattern, len(ws))
	for i, w := range ws {
		tp, err := xgft.New(3, []int{8, 8, 8}, []int{1, w, w})
		if err != nil {
			return nil, err
		}
		topos[i] = tp
		// Permutations come from the keyed splitmix64 stream per seed,
		// so the workload is identical however the cells are scheduled.
		perms[i] = make([]*pattern.Pattern, seeds)
		for s := 0; s < seeds; s++ {
			perms[i][s] = pattern.KeyedRandomPermutation(tp.Leaves(), opt.MessageBytes, uint64(s)+1)
		}
	}
	nSchemes := len(deepSchemes)
	cellsPerW := nSchemes * seeds
	// values[i][k][seed]: slowdown of scheme k on topology i.
	values := make([][][]float64, len(ws))
	for i := range values {
		values[i] = make([][]float64, nSchemes)
		for k := range values[i] {
			values[i][k] = make([]float64, seeds)
		}
	}
	err := opt.run(len(ws)*cellsPerW, func(idx int) error {
		i, c := idx/cellsPerW, idx%cellsPerW
		k, seed := c/seeds, c%seeds
		tp := topos[i]
		algo := deepSchemes[k](tp, uint64(seed)+1)
		res, err := opt.evaluator().Score(tp, algo, []*pattern.Pattern{perms[i][seed]})
		if err != nil {
			return err
		}
		values[i][k][seed] = res.Slowdown
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]DeepRow, len(ws))
	for i, w := range ws {
		rows[i] = DeepRow{
			W:        w,
			Topology: topos[i].String(),
			Switches: topos[i].InnerSwitches(),
			SModK:    stats.Summarize(values[i][0]).Mean,
			DModK:    stats.Summarize(values[i][1]).Mean,
			RNCAUp:   stats.Summarize(values[i][2]),
			RNCADn:   stats.Summarize(values[i][3]),
			Random:   stats.Summarize(values[i][4]),
		}
	}
	return rows, nil
}

// WriteDeepTreeSweep renders the generalization sweep.
func WriteDeepTreeSweep(w io.Writer, rows []DeepRow) {
	fmt.Fprintln(w, "Extension — three-level slimmed trees XGFT(3;8,8,8;1,w,w), random permutations")
	fmt.Fprintf(w, "%3s  %-22s %9s  %8s %8s  %-24s %-24s %-24s\n",
		"w", "topology", "#switches", "s-mod-k", "d-mod-k", "r-NCA-u [med]", "r-NCA-d [med]", "random [med]")
	for _, r := range rows {
		fmt.Fprintf(w, "%3d  %-22s %9d  %8.2f %8.2f  med=%-6.2f (%.2f-%.2f)    med=%-6.2f (%.2f-%.2f)    med=%-6.2f (%.2f-%.2f)\n",
			r.W, r.Topology, r.Switches, r.SModK, r.DModK,
			r.RNCAUp.Median, r.RNCAUp.Min, r.RNCAUp.Max,
			r.RNCADn.Median, r.RNCADn.Min, r.RNCADn.Max,
			r.Random.Median, r.Random.Min, r.Random.Max)
	}
}

// AblationRow compares the balanced relabeling against its unbalanced
// ablation on one topology.
type AblationRow struct {
	Topology string
	// CensusSpreadBalanced/Unbalanced: mean (max-min) of the
	// all-pairs NCA census over seeds — Fig. 4b's balance view.
	CensusSpreadBalanced   float64
	CensusSpreadUnbalanced float64
	// CG slowdown medians over seeds.
	CGBalanced   stats.Summary
	CGUnbalanced stats.Summary
}

// BalanceAblation quantifies what the paper's balanced maps buy over
// naive per-subtree uniform relabeling on the slimmed tree
// XGFT(2;16,16;1,w2). Options.Seeds defaults to 10 here; each
// (variant, metric, seed) triple is an independent sweep cell.
func BalanceAblation(w2 int, opt Options) (*AblationRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 10
	}
	opt = opt.withDefaults()
	seeds := opt.Seeds
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		return nil, err
	}
	variants := []func(seed uint64) core.Algorithm{
		func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
		func(s uint64) core.Algorithm { return core.NewUnbalancedNCAUp(tp, s) },
	}
	phases := pattern.CGD128Phases()
	// spreads[v][seed] and slowdowns[v][seed], v = balanced/unbalanced.
	spreads := [2][]float64{make([]float64, seeds), make([]float64, seeds)}
	slowdowns := [2][]float64{make([]float64, seeds), make([]float64, seeds)}
	// Cell layout: variant-major, census cells before slowdown cells.
	cellsPerVariant := 2 * seeds
	err = opt.run(2*cellsPerVariant, func(idx int) error {
		v, c := idx/cellsPerVariant, idx%cellsPerVariant
		metric, seed := c/seeds, c%seeds
		algo := variants[v](uint64(seed) + 1)
		if metric == 0 {
			census := core.AllPairsNCACensus(tp, algo)
			min, max := int(^uint(0)>>1), 0
			for _, n := range census {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			spreads[v][seed] = float64(max - min)
			return nil
		}
		res, err := opt.evaluator().Score(tp, algo, phases)
		if err != nil {
			return err
		}
		slowdowns[v][seed] = res.Slowdown
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Topology:               tp.String(),
		CensusSpreadBalanced:   stats.Summarize(spreads[0]).Mean,
		CensusSpreadUnbalanced: stats.Summarize(spreads[1]).Mean,
		CGBalanced:             stats.Summarize(slowdowns[0]),
		CGUnbalanced:           stats.Summarize(slowdowns[1]),
	}, nil
}

// WriteBalanceAblation renders the ablation.
func WriteBalanceAblation(w io.Writer, row *AblationRow) {
	fmt.Fprintf(w, "Ablation — balanced vs uniform relabeling on %s\n", row.Topology)
	fmt.Fprintf(w, "all-pairs census spread (max-min per seed, mean): balanced %.0f, unbalanced %.0f\n",
		row.CensusSpreadBalanced, row.CensusSpreadUnbalanced)
	fmt.Fprintf(w, "CG.D-128 slowdown: balanced %s\n", row.CGBalanced)
	fmt.Fprintf(w, "                 unbalanced %s\n", row.CGUnbalanced)
}
