package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/xgft"
)

// The experiments in this file go beyond the paper's figures along
// the directions its text opens: the generalization claim ("extends
// the previous work from k-ary n-trees to the more general class of
// extended generalized fat trees") exercised on three-level trees,
// and an ablation of the balanced-map design choice of §VIII.

// DeepRow is one data point of the three-level generalization sweep:
// XGFT(3;8,8,8;1,w,w) under progressive slimming of both upper
// levels.
type DeepRow struct {
	W        int
	Topology string
	Switches int
	SModK    float64
	DModK    float64
	RNCAUp   stats.Summary
	RNCADn   stats.Summary
	Random   stats.Summary
}

// DeepTreeSweep evaluates the routing family on three-level slimmed
// trees XGFT(3;8,8,8;1,w,w), w = 8..1, under a workload of random
// permutations (the regime where the paper's analysis predicts the
// relabeling family matches Random's balance while keeping mod-k's
// concentration). Slowdowns are analytic; seeds parameterize both the
// permutations and the randomized algorithms.
func DeepTreeSweep(seeds int, bytes int64) ([]DeepRow, error) {
	if seeds <= 0 {
		seeds = 10
	}
	if bytes <= 0 {
		bytes = 64 * 1024
	}
	var rows []DeepRow
	for w := 8; w >= 1; w-- {
		tp, err := xgft.New(3, []int{8, 8, 8}, []int{1, w, w})
		if err != nil {
			return nil, err
		}
		row := DeepRow{W: w, Topology: tp.String(), Switches: tp.InnerSwitches()}
		perms := make([]*pattern.Pattern, seeds)
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(int64(s) + 1))
			perms[s] = pattern.RandomPermutationPattern(tp.Leaves(), bytes, rng)
		}
		fixed := func(algo core.Algorithm) (float64, error) {
			var sum float64
			for _, p := range perms {
				s, err := contention.Slowdown(tp, algo, p)
				if err != nil {
					return 0, err
				}
				sum += s
			}
			return sum / float64(len(perms)), nil
		}
		if row.SModK, err = fixed(core.NewSModK(tp)); err != nil {
			return nil, err
		}
		if row.DModK, err = fixed(core.NewDModK(tp)); err != nil {
			return nil, err
		}
		sample := func(mk func(seed uint64) core.Algorithm) (stats.Summary, error) {
			samples := make([]float64, seeds)
			for s := 0; s < seeds; s++ {
				v, err := contention.Slowdown(tp, mk(uint64(s)+1), perms[s])
				if err != nil {
					return stats.Summary{}, err
				}
				samples[s] = v
			}
			return stats.Summarize(samples), nil
		}
		if row.RNCAUp, err = sample(func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) }); err != nil {
			return nil, err
		}
		if row.RNCADn, err = sample(func(s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) }); err != nil {
			return nil, err
		}
		if row.Random, err = sample(func(s uint64) core.Algorithm { return core.NewRandom(tp, s) }); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteDeepTreeSweep renders the generalization sweep.
func WriteDeepTreeSweep(w io.Writer, rows []DeepRow) {
	fmt.Fprintln(w, "Extension — three-level slimmed trees XGFT(3;8,8,8;1,w,w), random permutations")
	fmt.Fprintf(w, "%3s  %-22s %9s  %8s %8s  %-24s %-24s %-24s\n",
		"w", "topology", "#switches", "s-mod-k", "d-mod-k", "r-NCA-u [med]", "r-NCA-d [med]", "random [med]")
	for _, r := range rows {
		fmt.Fprintf(w, "%3d  %-22s %9d  %8.2f %8.2f  med=%-6.2f (%.2f-%.2f)    med=%-6.2f (%.2f-%.2f)    med=%-6.2f (%.2f-%.2f)\n",
			r.W, r.Topology, r.Switches, r.SModK, r.DModK,
			r.RNCAUp.Median, r.RNCAUp.Min, r.RNCAUp.Max,
			r.RNCADn.Median, r.RNCADn.Min, r.RNCADn.Max,
			r.Random.Median, r.Random.Min, r.Random.Max)
	}
}

// AblationRow compares the balanced relabeling against its unbalanced
// ablation on one topology.
type AblationRow struct {
	Topology string
	// CensusSpreadBalanced/Unbalanced: mean (max-min) of the
	// all-pairs NCA census over seeds — Fig. 4b's balance view.
	CensusSpreadBalanced   float64
	CensusSpreadUnbalanced float64
	// CG slowdown medians over seeds.
	CGBalanced   stats.Summary
	CGUnbalanced stats.Summary
}

// BalanceAblation quantifies what the paper's balanced maps buy over
// naive per-subtree uniform relabeling on the slimmed tree
// XGFT(2;16,16;1,w2).
func BalanceAblation(w2, seeds int) (*AblationRow, error) {
	if seeds <= 0 {
		seeds = 10
	}
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		return nil, err
	}
	row := &AblationRow{Topology: tp.String()}
	spread := func(mk func(seed uint64) core.Algorithm) float64 {
		total := 0
		for seed := 1; seed <= seeds; seed++ {
			census := core.AllPairsNCACensus(tp, mk(uint64(seed)))
			min, max := int(^uint(0)>>1), 0
			for _, c := range census {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			total += max - min
		}
		return float64(total) / float64(seeds)
	}
	row.CensusSpreadBalanced = spread(func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) })
	row.CensusSpreadUnbalanced = spread(func(s uint64) core.Algorithm { return core.NewUnbalancedNCAUp(tp, s) })

	phases := pattern.CGD128Phases()
	slowdowns := func(mk func(seed uint64) core.Algorithm) (stats.Summary, error) {
		samples := make([]float64, seeds)
		for seed := 1; seed <= seeds; seed++ {
			s, err := contention.PhasedSlowdown(tp, mk(uint64(seed)), phases)
			if err != nil {
				return stats.Summary{}, err
			}
			samples[seed-1] = s
		}
		return stats.Summarize(samples), nil
	}
	if row.CGBalanced, err = slowdowns(func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) }); err != nil {
		return nil, err
	}
	if row.CGUnbalanced, err = slowdowns(func(s uint64) core.Algorithm { return core.NewUnbalancedNCAUp(tp, s) }); err != nil {
		return nil, err
	}
	return row, nil
}

// WriteBalanceAblation renders the ablation.
func WriteBalanceAblation(w io.Writer, row *AblationRow) {
	fmt.Fprintf(w, "Ablation — balanced vs uniform relabeling on %s\n", row.Topology)
	fmt.Fprintf(w, "all-pairs census spread (max-min per seed, mean): balanced %.0f, unbalanced %.0f\n",
		row.CensusSpreadBalanced, row.CensusSpreadUnbalanced)
	fmt.Fprintf(w, "CG.D-128 slowdown: balanced %s\n", row.CGBalanced)
	fmt.Fprintf(w, "                 unbalanced %s\n", row.CGUnbalanced)
}
