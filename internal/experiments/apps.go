// Package experiments reproduces every table and figure of the
// paper's evaluation: the Table I label schema, the Fig. 2 slowdown
// curves of Random/S-mod-k/D-mod-k/Colored under progressive tree
// slimming, the Fig. 3 CG traffic decomposition, the Fig. 4
// routes-per-NCA censuses, and the Fig. 5 boxplot comparison of the
// proposed r-NCA-u / r-NCA-d schemes. Each experiment can run on the
// fast analytic contention model or on the full trace-replay +
// network-simulation pipeline.
package experiments

import (
	"fmt"

	"repro/internal/dimemas"
	"repro/internal/pattern"
	"repro/internal/traces"
)

// App is one of the paper's benchmark applications, reduced to the
// structure the routing study needs: its communication phases and a
// replayable trace.
type App struct {
	// Name is the paper's label ("WRF-256", "CG.D-128").
	Name string
	// Ranks is the process count.
	Ranks int
	// DefaultBytes is the per-message size of the paper's runs.
	DefaultBytes int64
	// phases builds the communication phases at a message size.
	phases func(bytes int64) []*pattern.Pattern
}

// Phases returns the communication phases with the given per-message
// size (0 means the paper's default).
func (a *App) Phases(bytes int64) []*pattern.Pattern {
	if bytes <= 0 {
		bytes = a.DefaultBytes
	}
	return a.phases(bytes)
}

// Trace lowers the phases into a replayable trace.
func (a *App) Trace(bytes int64) (*dimemas.Trace, error) {
	return traces.FromPhases(a.Ranks, a.Phases(bytes), 1, 0)
}

// WRFApp returns the paper's WRF-256 workload: pairwise ±16
// exchanges on a 16x16 task mesh, one communication phase.
func WRFApp() *App {
	return &App{
		Name:         "WRF-256",
		Ranks:        256,
		DefaultBytes: pattern.DefaultWRFBytes,
		phases: func(bytes int64) []*pattern.Pattern {
			return []*pattern.Pattern{pattern.WRF(16, 16, bytes)}
		},
	}
}

// CGApp returns the paper's CG.D-128 workload: four switch-local
// butterfly phases plus the Eq. (2) transpose, 750 KB messages.
func CGApp() *App {
	return &App{
		Name:         "CG.D-128",
		Ranks:        128,
		DefaultBytes: pattern.DefaultCGPhaseBytes,
		phases: func(bytes int64) []*pattern.Pattern {
			phases, err := pattern.CGPhases(128, bytes)
			if err != nil {
				panic(err) //lint:allow banned unreachable: 128 is a valid rank count
			}
			return phases
		},
	}
}

// AppByName resolves "wrf" or "cg" (case-sensitive short names used
// by the command-line tools).
func AppByName(name string) (*App, error) {
	switch name {
	case "wrf", "WRF-256":
		return WRFApp(), nil
	case "cg", "CG.D-128":
		return CGApp(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown application %q (want wrf or cg)", name)
	}
}
