package experiments

import (
	"fmt"
	"io"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/xgft"
)

// The degraded-topology sweep: a Figure-2-style study of how the
// paper's schemes hold up when the fabric does not. Top-level links
// of the full 16-ary 2-tree fail in increasing fractions; each
// scheme's healthy table is patched through the degraded view
// (core.PatchTable — the fabric manager's repair path) and the
// analytic slowdown of the patched routes is measured. Robustness
// under contaminated inputs is the cluster-analysis framing of
// Gallegos & Ritter applied to routing: how gracefully does each
// scheme's balance degrade as its assumptions break?

// faultFractions is the sweep's x-axis: the fraction of failed
// top-level links.
var faultFractions = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}

// faultSchemes enumerates the sweep's routing schemes in result
// order. D-mod-k ignores the seed (its variance comes from the
// failed-link draw alone).
var faultSchemes = []func(tp *xgft.Topology, seed uint64) core.Algorithm{
	func(tp *xgft.Topology, _ uint64) core.Algorithm { return core.NewDModK(tp) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandom(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) },
}

// FaultRow is one x-position of the degraded-topology sweep.
type FaultRow struct {
	// Fraction of top-level links failed; FailedLinks is the count.
	Fraction    float64
	FailedLinks int
	// Per-scheme slowdown distributions over seeds. Each seed draws
	// its own failed-link set, so even the deterministic d-mod-k gets
	// a distribution.
	DModK  stats.Summary
	Random stats.Summary
	RNCAUp stats.Summary
	RNCADn stats.Summary
	// Unreachable is the mean fraction of flows with no surviving
	// minimal path (dropped from the slowdown; scheme-independent).
	Unreachable float64
}

// topWireOrder returns a keyed-hash permutation of the top-level wire
// IDs: seed s fails the first k wires of its permutation, so one
// seed's failure sets are nested across fractions (monotone
// degradation per seed) while different seeds draw independent sets.
// The shuffle itself is pattern.KeyedPerm under a domain-separated
// seed.
func topWireOrder(tp *xgft.Topology, seed uint64) []int {
	top := tp.Height() - 1
	base := tp.TotalChannels() - tp.ChannelsAt(top)
	perm := pattern.KeyedPerm(tp.ChannelsAt(top), hashutil.Mix(0xfab71c, seed))
	order := make([]int, len(perm))
	for i, p := range perm {
		order[i] = base + p
	}
	return order
}

// degradedSlowdown evaluates one (scheme, view) cell: healthy tables
// are served from the cache, patched through the view, and the
// analytic bound of the surviving flows is normalized against the
// crossbar bound of the same (reduced) flow set. unreachFrac is the
// fraction of flows dropped as unreachable.
func degradedSlowdown(c *core.TableCache, tp *xgft.Topology, v *xgft.View, algo core.Algorithm, phases []*pattern.Pattern) (slow, unreachFrac float64, err error) {
	var network, crossbar int64
	flows, unreachable := 0, 0
	for _, p := range phases {
		tbl, err := c.Build(tp, algo, p)
		if err != nil {
			return 0, 0, err
		}
		patched, st, err := core.PatchTable(tbl, v)
		if err != nil {
			return 0, 0, err
		}
		flows += st.Examined
		unreachable += st.Unreachable
		q, routes := p, patched.Routes
		if st.Unreachable > 0 {
			q = pattern.New(p.N)
			routes = routes[:0:0]
			for i, f := range p.Flows {
				r := patched.Routes[i]
				if f.Src != f.Dst && r.Up == nil {
					continue // unreachable pair, dropped
				}
				q.Add(f.Src, f.Dst, f.Bytes)
				routes = append(routes, r)
			}
		}
		a, err := contention.Analyze(tp, q, routes)
		if err != nil {
			return 0, 0, err
		}
		network += a.CompletionBound()
		crossbar += contention.CrossbarBound(q)
	}
	if flows > 0 {
		unreachFrac = float64(unreachable) / float64(flows)
	}
	if crossbar == 0 {
		return 1, unreachFrac, nil
	}
	return float64(network) / float64(crossbar), unreachFrac, nil
}

// FaultSweep measures analytic slowdown against the fraction of
// failed top-level links on the full tree XGFT(2;16,16;1,16) for
// D-mod-k, Random and r-NCA-u/d. Every (fraction, scheme, seed)
// triple is an independent cell on the parallel engine; seed s draws
// failure set s, and healthy routing tables are shared across all
// fractions through the options' cache (only the patching differs).
// Options.Seeds defaults to 10 here. The sweep is analytic-only:
// patched tables bypass the trace-replay pipeline, so a Simulated
// engine is rejected rather than silently ignored.
func FaultSweep(app *App, opt Options) ([]FaultRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 10
	}
	opt = opt.withDefaults()
	if opt.Engine != Analytic {
		return nil, fmt.Errorf("experiments: the degraded-topology sweep supports only the analytic engine, not %q", opt.Engine)
	}
	seeds := opt.Seeds
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		return nil, err
	}
	phases := app.Phases(opt.MessageBytes)
	topWires := tp.ChannelsAt(tp.Height() - 1)
	// Failure views are derived sequentially up-front and shared
	// read-only by the cells (the coordinate-derived-randomness rule).
	orders := make([][]int, seeds)
	for s := 0; s < seeds; s++ {
		orders[s] = topWireOrder(tp, uint64(s)+1)
	}
	views := make([][]*xgft.View, len(faultFractions))
	counts := make([]int, len(faultFractions))
	for i, frac := range faultFractions {
		k := int(frac*float64(topWires) + 0.5)
		counts[i] = k
		views[i] = make([]*xgft.View, seeds)
		for s := 0; s < seeds; s++ {
			v := xgft.NewView(tp)
			for _, wire := range orders[s][:k] {
				v.FailWire(wire)
			}
			views[i][s] = v
		}
	}
	nSchemes := len(faultSchemes)
	cellsPerF := nSchemes * seeds
	// values[i][k][seed] and unreach[i][k][seed].
	values := make([][][]float64, len(faultFractions))
	unreach := make([][][]float64, len(faultFractions))
	for i := range values {
		values[i] = make([][]float64, nSchemes)
		unreach[i] = make([][]float64, nSchemes)
		for k := range values[i] {
			values[i][k] = make([]float64, seeds)
			unreach[i][k] = make([]float64, seeds)
		}
	}
	err = opt.run(len(faultFractions)*cellsPerF, func(idx int) error {
		i, c := idx/cellsPerF, idx%cellsPerF
		k, seed := c/seeds, c%seeds
		algo := faultSchemes[k](tp, uint64(seed)+1)
		s, u, err := degradedSlowdown(opt.tableCache(), tp, views[i][seed], algo, phases)
		if err != nil {
			return err
		}
		values[i][k][seed], unreach[i][k][seed] = s, u
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FaultRow, len(faultFractions))
	for i := range rows {
		var u float64
		for k := 0; k < nSchemes; k++ {
			u += stats.Summarize(unreach[i][k]).Mean
		}
		rows[i] = FaultRow{
			Fraction:    faultFractions[i],
			FailedLinks: counts[i],
			DModK:       stats.Summarize(values[i][0]),
			Random:      stats.Summarize(values[i][1]),
			RNCAUp:      stats.Summarize(values[i][2]),
			RNCADn:      stats.Summarize(values[i][3]),
			Unreachable: u / float64(nSchemes),
		}
	}
	return rows, nil
}

// WriteFaultSweep renders the degraded-topology sweep.
func WriteFaultSweep(w io.Writer, app *App, rows []FaultRow) {
	fmt.Fprintf(w, "Degraded topology — %s on XGFT(2;16,16;1,16), slowdown vs fraction of failed top-level links\n", app.Name)
	fmt.Fprintf(w, "%6s %6s  %-22s %-22s %-22s %-22s %9s\n",
		"failed", "links", "d-mod-k [med]", "random [med]", "r-NCA-u [med]", "r-NCA-d [med]", "unreach")
	for _, r := range rows {
		cell := func(s stats.Summary) string {
			return fmt.Sprintf("med=%-5.2f (%.2f-%.2f)", s.Median, s.Min, s.Max)
		}
		fmt.Fprintf(w, "%5.0f%% %6d  %-22s %-22s %-22s %-22s %8.2f%%\n",
			r.Fraction*100, r.FailedLinks,
			cell(r.DModK), cell(r.Random), cell(r.RNCAUp), cell(r.RNCADn),
			r.Unreachable*100)
	}
}
