package experiments

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
)

// uncached returns options that bypass the shared table cache, so
// determinism tests compare actual recomputation, not cache hits.
func uncached(opt Options) Options {
	opt.Cache = core.NewTableCache(0)
	return opt
}

// TestFigure2ParallelByteIdentical is the engine's core contract: a
// parallel sweep renders byte-identically to the sequential one.
func TestFigure2ParallelByteIdentical(t *testing.T) {
	app := CGApp()
	base := uncached(Options{Seeds: 6, W2Values: []int{16, 9, 2}})

	seq := base
	seq.Parallelism = 1
	seqRows, err := Figure2(app, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	parRows, err := Figure2(app, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("parallel rows differ from sequential:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	var seqBuf, parBuf bytes.Buffer
	WriteFigure2(&seqBuf, app, seqRows)
	WriteFigure2(&parBuf, app, parRows)
	if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
		t.Error("rendered Figure 2 output differs between sequential and parallel runs")
	}
}

func TestFigure5ParallelMatchesSequential(t *testing.T) {
	app := WRFApp()
	base := uncached(Options{Seeds: 4, W2Values: []int{16, 8}})
	seq := base
	seq.Parallelism = 1
	seqRows, err := Figure5(app, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	parRows, err := Figure5(app, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("parallel Figure5 differs:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
}

func TestDeepTreeSweepParallelMatchesSequential(t *testing.T) {
	base := uncached(Options{Seeds: 3, MessageBytes: 8 * 1024})
	seq := base
	seq.Parallelism = 1
	seqRows, err := DeepTreeSweep(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	parRows, err := DeepTreeSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Error("parallel DeepTreeSweep differs from sequential")
	}
}

func TestFigure4ParallelMatchesSequential(t *testing.T) {
	seqRes, err := Figure4(10, uncached(Options{Seeds: 4, Parallelism: 1}))
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Figure4(10, uncached(Options{Seeds: 4, Parallelism: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("parallel Figure4 differs from sequential")
	}
}

// TestCachedMatchesUncached pins the cache's correctness contract:
// serving tables from the cache must not change any figure value.
func TestCachedMatchesUncached(t *testing.T) {
	app := CGApp()
	base := Options{Seeds: 4, W2Values: []int{16, 6}, Parallelism: 8}

	cold := base
	cold.Cache = core.NewTableCache(0)
	coldRows, err := Figure2(app, cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := base
	warm.Cache = core.NewTableCache(1024)
	// Prime the cache with Figure5 (shares every fixed and Random
	// cell with Figure2), then re-run Figure2 against it.
	if _, err := Figure5(app, warm); err != nil {
		t.Fatal(err)
	}
	warmRows, err := Figure2(app, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRows, warmRows) {
		t.Errorf("cached rows differ from uncached:\ncold: %+v\nwarm: %+v", coldRows, warmRows)
	}
	if hits, _ := warm.Cache.Stats(); hits == 0 {
		t.Error("cross-figure run produced no cache hits")
	}
}

func TestProgressReporting(t *testing.T) {
	var calls []int
	lastTotal := 0
	opt := uncached(Options{
		Seeds:       3,
		W2Values:    []int{16, 4},
		Parallelism: 8,
		Progress: func(done, total int) {
			calls = append(calls, done)
			lastTotal = total
		},
	})
	if _, err := Figure2(CGApp(), opt); err != nil {
		t.Fatal(err)
	}
	want := 2 * (3 + 3) // two topologies x (3 fixed + 3 seeds)
	if lastTotal != want {
		t.Errorf("total = %d, want %d", lastTotal, want)
	}
	if len(calls) != want {
		t.Fatalf("progress called %d times, want %d", len(calls), want)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress out of order: call %d reported done=%d", i, done)
		}
	}
}

func TestRunCellsDeterministicError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Whatever the scheduling, the lowest-indexed error wins.
	for trial := 0; trial < 20; trial++ {
		err := runCells(16, 8, nil, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 12:
				return errHigh
			default:
				return nil
			}
		})
		if err != errLow {
			t.Fatalf("trial %d: got %v, want lowest-indexed error", trial, err)
		}
	}
}
