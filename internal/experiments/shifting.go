package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/xgft"
)

// The shifting-traffic sweep: the paper's evaluation shows no single
// oblivious table winning across patterns — the best choice is
// pattern-dependent (Figures 2-5). This sweep runs a *schedule* of
// traffic phases (random permutation → uniform random → bit-reversal
// → a fresh permutation) against two fabrics: a static one serving
// d-mod-k forever, and an online one whose telemetry-driven optimizer
// (fabric.Optimize) re-fits the table to each observed phase. The
// online fabric must match or beat the static one on every phase —
// the operational payoff of the paper's pattern-awareness argument.

// shiftPhase is one entry of the traffic schedule. Patterns are pure
// functions of (n, bytes, seed): the engine's coordinate-derived-
// randomness rule, so parallel runs are byte-identical.
type shiftPhase struct {
	Name    string
	pattern func(n int, bytes int64, seed uint64) (*pattern.Pattern, error)
}

// shiftSeed domain-separates the schedule's random draws.
const shiftSeed = 0x5f1f7

var shiftSchedule = []shiftPhase{
	{"permutation", func(n int, bytes int64, seed uint64) (*pattern.Pattern, error) {
		return pattern.KeyedRandomPermutation(n, bytes, hashutil.Mix(shiftSeed, seed, 1)), nil
	}},
	{"uniform", func(n int, bytes int64, seed uint64) (*pattern.Pattern, error) {
		return pattern.UniformRandom(n, 1, bytes, hashutil.Mix(shiftSeed, seed, 2)), nil
	}},
	{"bit-reversal", func(n int, bytes int64, seed uint64) (*pattern.Pattern, error) {
		return pattern.BitReversal(n, bytes)
	}},
	{"permutation-2", func(n int, bytes int64, seed uint64) (*pattern.Pattern, error) {
		return pattern.KeyedRandomPermutation(n, bytes, hashutil.Mix(shiftSeed, seed, 4)), nil
	}},
}

// ShiftRow is one phase of the shifting-traffic schedule, aggregated
// over seeds.
type ShiftRow struct {
	Phase string
	// Static is the distribution of d-mod-k's analytic slowdown on
	// the phase pattern; Online the re-optimized fabric's, measured
	// after its optimizer pass over the observed traffic.
	Static stats.Summary
	Online stats.Summary
	// Swaps counts the seeds whose optimizer installed a new table
	// during this phase; Chosen histograms the serving scheme after
	// the phase across seeds.
	Swaps  int
	Chosen map[string]int
}

// ShiftSweep runs the shifting-pattern schedule on the paper's
// cost-reduced tree XGFT(2;16,16;1,10). Each seed is one independent
// cell on the parallel engine: it draws its own phase patterns,
// drives them through a telemetry-enabled fabric (initially d-mod-k),
// lets the optimizer re-fit after each phase, and measures both
// fabrics on the phase pattern. Routing tables and Colored optimizer
// instances are shared across cells through the options' cache;
// results are byte-identical for any Parallelism. Measurement and
// optimization both go through the options' evaluator (analytic by
// default); the Simulated trace-replay engine is rejected, like in
// the degraded-topology sweep.
func ShiftSweep(opt Options) ([]ShiftRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 10
	}
	opt = opt.withDefaults()
	if opt.Engine != Analytic {
		return nil, fmt.Errorf("experiments: the shifting-traffic sweep supports only the analytic engine, not %q", opt.Engine)
	}
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		return nil, err
	}
	bytes := opt.MessageBytes
	if bytes <= 0 {
		bytes = 64 * 1024
	}
	seeds := opt.Seeds
	nPhases := len(shiftSchedule)
	// Patterns are drawn up-front, sequentially, so the cells only
	// read shared state.
	pats := make([][]*pattern.Pattern, nPhases)
	for pi, ph := range shiftSchedule {
		pats[pi] = make([]*pattern.Pattern, seeds)
		for s := 0; s < seeds; s++ {
			p, err := ph.pattern(tp.Leaves(), bytes, uint64(s)+1)
			if err != nil {
				return nil, err
			}
			pats[pi][s] = p
		}
	}
	staticV := make([][]float64, nPhases) // [phase][seed]
	onlineV := make([][]float64, nPhases)
	swapped := make([][]bool, nPhases)
	chosen := make([][]string, nPhases)
	for pi := 0; pi < nPhases; pi++ {
		staticV[pi] = make([]float64, seeds)
		onlineV[pi] = make([]float64, seeds)
		swapped[pi] = make([]bool, seeds)
		chosen[pi] = make([]string, seeds)
	}
	cache := opt.tableCache()
	eval := opt.evaluator()
	err = opt.run(seeds, func(s int) error {
		f, err := fabric.New(fabric.Config{
			Topo:      tp,
			Algo:      core.NewDModK(tp),
			Cache:     cache,
			Telemetry: true,
			Evaluator: eval,
		})
		if err != nil {
			return err
		}
		for pi := range shiftSchedule {
			p := pats[pi][s]
			// Phase traffic: one resolve per flow feeds the counters.
			for _, fl := range p.Flows {
				if _, ok := f.Resolve(fl.Src, fl.Dst); !ok {
					return fmt.Errorf("experiments: shift seed %d phase %s: pair (%d,%d) did not resolve", s, shiftSchedule[pi].Name, fl.Src, fl.Dst)
				}
			}
			// Re-fit to the observed window. Threshold 0: any strict
			// improvement swaps, so the online fabric never serves a
			// table worse than the best candidate — which includes
			// static d-mod-k itself.
			res, err := f.Optimize(fabric.OptimizeConfig{Threshold: 0, Reset: true})
			if err != nil {
				return err
			}
			swapped[pi][s] = res.Swapped
			chosen[pi][s] = f.Stats().Algo
			// Static baseline on the phase pattern (cache-served).
			st, err := eval.Score(tp, core.NewDModK(tp), []*pattern.Pattern{p})
			if err != nil {
				return err
			}
			staticV[pi][s] = st.Slowdown
			// Online fabric measured on the same pattern. Resolution
			// goes through the pinned generation so measurement
			// traffic does not leak into the next phase's telemetry.
			gen := f.Generation()
			routes := make([]xgft.Route, len(p.Flows))
			for i, fl := range p.Flows {
				r, ok := gen.Resolve(fl.Src, fl.Dst)
				if !ok {
					return fmt.Errorf("experiments: shift seed %d phase %s: optimized fabric lost pair (%d,%d)", s, shiftSchedule[pi].Name, fl.Src, fl.Dst)
				}
				routes[i] = r
			}
			on, err := eval.ScoreRoutes(tp, p, routes)
			if err != nil {
				return err
			}
			onlineV[pi][s] = on.Slowdown
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ShiftRow, nPhases)
	for pi := range rows {
		row := ShiftRow{
			Phase:  shiftSchedule[pi].Name,
			Static: stats.Summarize(staticV[pi]),
			Online: stats.Summarize(onlineV[pi]),
			Chosen: make(map[string]int),
		}
		for s := 0; s < seeds; s++ {
			if swapped[pi][s] {
				row.Swaps++
			}
			row.Chosen[chosen[pi][s]]++
		}
		rows[pi] = row
	}
	return rows, nil
}

// WriteShiftSweep renders the shifting-traffic sweep.
func WriteShiftSweep(w io.Writer, rows []ShiftRow) {
	fmt.Fprintln(w, "Shifting traffic — XGFT(2;16,16;1,10), static d-mod-k vs telemetry-driven re-optimization")
	fmt.Fprintf(w, "%-14s %-24s %-24s %6s  %s\n", "phase", "static d-mod-k [med]", "online re-opt [med]", "swaps", "serving tables")
	for _, r := range rows {
		cell := func(s stats.Summary) string {
			return fmt.Sprintf("med=%-5.2f (%.2f-%.2f)", s.Median, s.Min, s.Max)
		}
		names := make([]string, 0, len(r.Chosen))
		for name := range r.Chosen {
			names = append(names, name)
		}
		sort.Strings(names)
		serving := ""
		for i, name := range names {
			if i > 0 {
				serving += " "
			}
			serving += fmt.Sprintf("%s×%d", name, r.Chosen[name])
		}
		fmt.Fprintf(w, "%-14s %-24s %-24s %3d/%-2d  %s\n",
			r.Phase, cell(r.Static), cell(r.Online), r.Swaps, r.Static.N, serving)
	}
}
