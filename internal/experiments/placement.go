package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/xgft"
)

// The placement churn sweep: the paper evaluates routing for one
// workload owning the whole XGFT; a multi-tenant cluster instead runs
// a churning mix of jobs whose placement decides which routes ever
// carry traffic. This sweep drives an arrival/departure schedule
// (keyed-hash interarrivals and lifetimes, a WRF/CG/permutation job
// mix) through a scheduler per placement policy and measures, per
// placed job, the analytic slowdown of the job's remapped traffic
// inside the full tenant mix — plus the free-pool fragmentation the
// policy leaves behind over time. Placement quality and routing
// quality interact: a policy that scatters a job turns its locality
// into top-level crossings no routing table can undo.

// placementSeed domain-separates the churn schedule's draws.
const placementSeed = 0x9ac37

// placementJobs is the number of arrivals each seed's schedule
// submits.
const placementJobs = 30

// placementPolicies enumerates the compared policies in result order.
var placementPolicies = []string{"linear", "random", "balanced", "telemetry"}

// placementJob is one arrival of the churn schedule.
type placementJob struct {
	arrive int64
	depart int64
	spec   sched.JobSpec
}

// placementSpec draws job e of seed s from the keyed splitmix64
// stream: a WRF halo, a CG phase set or a random permutation, sized
// so the mix fragments the pool (sizes are not all multiples of each
// other) without filling it.
func placementSpec(seed uint64, e int, bytes int64) (sched.JobSpec, error) {
	kind := hashutil.Mix(placementSeed, seed, uint64(e), 1) % 3
	pick := hashutil.Mix(placementSeed, seed, uint64(e), 2)
	switch kind {
	case 0: // WRF halo on an n/16 x 16 task mesh
		n := []int{32, 48, 64}[pick%3]
		return sched.JobSpec{
			Name:   fmt.Sprintf("wrf-%d", n),
			N:      n,
			Phases: []*pattern.Pattern{pattern.WRF(n/16, 16, bytes)},
		}, nil
	case 1: // NAS CG phase structure
		n := []int{32, 64, 128}[pick%3]
		phases, err := pattern.CGPhases(n, bytes)
		if err != nil {
			return sched.JobSpec{}, err
		}
		return sched.JobSpec{
			Name:   fmt.Sprintf("cg-%d", n),
			N:      n,
			Phases: phases,
		}, nil
	default: // random permutation
		n := []int{8, 16, 24, 40}[pick%4]
		p := pattern.KeyedRandomPermutation(n, bytes, hashutil.Mix(placementSeed, seed, uint64(e), 3))
		return sched.JobSpec{
			Name:   fmt.Sprintf("perm-%d", n),
			N:      n,
			Phases: []*pattern.Pattern{p},
		}, nil
	}
}

// placementSchedule draws seed s's full arrival schedule: keyed-hash
// interarrivals (1-15 ticks) and lifetimes (25-84 ticks), so the
// steady state holds several concurrent tenants and departures
// interleave with arrivals.
func placementSchedule(seed uint64, bytes int64) ([]placementJob, error) {
	jobs := make([]placementJob, placementJobs)
	var t int64
	for e := range jobs {
		t += 1 + int64(hashutil.Mix(placementSeed, seed, uint64(e), 4)%15)
		life := 25 + int64(hashutil.Mix(placementSeed, seed, uint64(e), 5)%60)
		spec, err := placementSpec(seed, e, bytes)
		if err != nil {
			return nil, err
		}
		jobs[e] = placementJob{arrive: t, depart: t + life, spec: spec}
	}
	return jobs, nil
}

// perJobSlowdown measures one job inside the current tenant mix: the
// congestion bound restricted to the resources the job's flows touch
// (its injection/ejection adapters and every channel its routes
// ride, loaded with all tenants' bytes), normalized by the job's own
// crossbar bound. 1 means the placement added no contention at all;
// interference from co-tenants sharing a channel counts against the
// job.
func perJobSlowdown(tp *xgft.Topology, gen *fabric.Generation, combined, job *pattern.Pattern) (float64, error) {
	routes := make([]xgft.Route, len(combined.Flows))
	for i, fl := range combined.Flows {
		r, ok := gen.Resolve(fl.Src, fl.Dst)
		if !ok {
			return 0, fmt.Errorf("experiments: pair (%d,%d) did not resolve", fl.Src, fl.Dst)
		}
		routes[i] = r
	}
	a, err := contention.Analyze(tp, combined, routes)
	if err != nil {
		return 0, err
	}
	var bound int64
	max := func(v int64) {
		if v > bound {
			bound = v
		}
	}
	for _, fl := range job.Flows {
		if fl.Src == fl.Dst {
			continue
		}
		max(a.InjectBytes[fl.Src])
		max(a.EjectBytes[fl.Dst])
		r, ok := gen.Resolve(fl.Src, fl.Dst)
		if !ok {
			return 0, fmt.Errorf("experiments: job pair (%d,%d) did not resolve", fl.Src, fl.Dst)
		}
		r.Walk(tp, func(_, _, _, ch int, up bool) {
			if up {
				max(a.UpBytes[ch])
			} else {
				max(a.DownBytes[ch])
			}
		})
	}
	xb := contention.CrossbarBound(job)
	if xb == 0 {
		return 1, nil
	}
	return float64(bound) / float64(xb), nil
}

// PlacementRow is one policy's aggregate over the churn schedule.
type PlacementRow struct {
	Policy string
	// Placed and Rejected count submissions across all seeds.
	Placed   int
	Rejected int
	// PerJob is the distribution of per-job slowdowns at placement
	// time; Frag the distribution of free-pool fragmentation sampled
	// after every arrival.
	PerJob stats.Summary
	Frag   stats.Summary
}

// PlacementSweep runs the churn schedule on the paper's cost-reduced
// tree XGFT(2;16,16;1,10) once per (policy, seed) cell on the
// parallel engine. Every cell owns a telemetry-enabled d-mod-k fabric
// and a scheduler; the fabric's counters are re-synced to the tenant
// mix after every event, so the telemetry policy scores candidates
// against genuinely observed background flows. The routing table is
// held static (d-mod-k) for every policy, isolating placement quality
// from the optimizer's table churn. Schedules, placements and
// measurements are pure functions of the cell coordinates, so results
// are byte-identical for any Parallelism. Options.Seeds defaults to 8
// here; the sweep is analytic-only.
func PlacementSweep(opt Options) ([]PlacementRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 8
	}
	opt = opt.withDefaults()
	if opt.Engine != Analytic {
		return nil, fmt.Errorf("experiments: the placement sweep supports only the analytic engine, not %q", opt.Engine)
	}
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		return nil, err
	}
	bytes := opt.MessageBytes
	if bytes <= 0 {
		bytes = 64 * 1024
	}
	seeds := opt.Seeds
	nPol := len(placementPolicies)
	cache := opt.tableCache()
	// slows[k][s] and frags[k][s]: policy k, seed s; variable-length
	// per cell, concatenated in (policy, seed, event) order after the
	// pool drains.
	slows := make([][][]float64, nPol)
	frags := make([][][]float64, nPol)
	rejected := make([][]int, nPol)
	for k := range slows {
		slows[k] = make([][]float64, seeds)
		frags[k] = make([][]float64, seeds)
		rejected[k] = make([]int, seeds)
	}
	err = opt.run(nPol*seeds, func(idx int) error {
		k, s := idx/seeds, idx%seeds
		policy, err := sched.PolicyByName(placementPolicies[k])
		if err != nil {
			return err
		}
		f, err := fabric.New(fabric.Config{
			Topo:      tp,
			Algo:      core.NewDModK(tp),
			Cache:     cache,
			Telemetry: true,
			Evaluator: opt.evaluator(),
		})
		if err != nil {
			return err
		}
		sc, err := sched.New(sched.Config{Fabric: f, Policy: policy, Seed: uint64(s) + 1})
		if err != nil {
			return err
		}
		schedule, err := placementSchedule(uint64(s)+1, bytes)
		if err != nil {
			return err
		}
		type active struct {
			id     uint64
			depart int64
		}
		var running []active
		for _, ev := range schedule {
			// Departures due before this arrival, in (depart, id) order.
			sort.Slice(running, func(i, j int) bool {
				if running[i].depart != running[j].depart {
					return running[i].depart < running[j].depart
				}
				return running[i].id < running[j].id
			})
			for len(running) > 0 && running[0].depart <= ev.arrive {
				if err := sc.Release(running[0].id); err != nil {
					return err
				}
				running = running[1:]
				sc.SyncTelemetry()
			}
			job, err := sc.Submit(ev.spec)
			if errors.Is(err, sched.ErrNoCapacity) {
				rejected[k][s]++
				frags[k][s] = append(frags[k][s], sc.Snapshot().Fragmentation)
				continue
			}
			if err != nil {
				return err
			}
			running = append(running, active{id: job.ID, depart: ev.depart})
			sc.SyncTelemetry()
			slow, err := perJobSlowdown(tp, f.Generation(), sc.TenantPattern(), job.LeafPattern())
			if err != nil {
				return err
			}
			slows[k][s] = append(slows[k][s], slow)
			frags[k][s] = append(frags[k][s], sc.Snapshot().Fragmentation)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PlacementRow, nPol)
	for k := range rows {
		var allSlow, allFrag []float64
		rej := 0
		for s := 0; s < seeds; s++ {
			allSlow = append(allSlow, slows[k][s]...)
			allFrag = append(allFrag, frags[k][s]...)
			rej += rejected[k][s]
		}
		rows[k] = PlacementRow{
			Policy:   placementPolicies[k],
			Placed:   len(allSlow),
			Rejected: rej,
			PerJob:   stats.Summarize(allSlow),
			Frag:     stats.Summarize(allFrag),
		}
	}
	return rows, nil
}

// WritePlacementSweep renders the placement churn sweep.
func WritePlacementSweep(w io.Writer, rows []PlacementRow) {
	fmt.Fprintln(w, "Placement churn — XGFT(2;16,16;1,10), d-mod-k fabric, WRF/CG/permutation job mix")
	fmt.Fprintf(w, "%-10s %6s %8s  %-30s %-22s\n",
		"policy", "jobs", "rejected", "per-job slowdown [med]", "fragmentation [mean]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %8d  med=%-5.2f q3=%-5.2f (%.2f-%.2f)  mean=%.2f max=%.2f\n",
			r.Policy, r.Placed, r.Rejected,
			r.PerJob.Median, r.PerJob.Q3, r.PerJob.Min, r.PerJob.Max,
			r.Frag.Mean, r.Frag.Max)
	}
}
