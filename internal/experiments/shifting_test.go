package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func TestShiftSweepOnlineNeverWorseThanStatic(t *testing.T) {
	opt := experiments.Options{Seeds: 4, Parallelism: 2, Cache: core.NewTableCache(64)}
	rows, err := experiments.ShiftSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d phases", len(rows))
	}
	for _, r := range rows {
		// The acceptance bar: the re-optimized fabric matches or
		// beats static d-mod-k on every phase — distribution-wide,
		// since the optimizer's candidate set includes d-mod-k and
		// any strict improvement swaps.
		if r.Online.Max > r.Static.Max || r.Online.Median > r.Static.Median {
			t.Errorf("phase %s: online %+v worse than static %+v", r.Phase, r.Online, r.Static)
		}
		if r.Online.Min < 1-1e-9 || r.Static.Min < 1-1e-9 {
			t.Errorf("phase %s: slowdown below 1: online %v static %v", r.Phase, r.Online.Min, r.Static.Min)
		}
		total := 0
		for _, c := range r.Chosen {
			total += c
		}
		if total != 4 {
			t.Errorf("phase %s: chosen histogram covers %d seeds, want 4: %v", r.Phase, total, r.Chosen)
		}
	}
	// Permutations contend on the slimmed tree under d-mod-k, so the
	// optimizer must actually improve somewhere, not just tie.
	improved := false
	for _, r := range rows {
		if r.Online.Median < r.Static.Median {
			improved = true
		}
	}
	if !improved {
		t.Error("online fabric never improved on static d-mod-k in any phase")
	}
}

func TestShiftSweepParallelismInvariant(t *testing.T) {
	run := func(parallel int) []experiments.ShiftRow {
		rows, err := experiments.ShiftSweep(experiments.Options{
			Seeds: 3, Parallelism: parallel, Cache: core.NewTableCache(64),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	render := func(rows []experiments.ShiftRow) string {
		var buf bytes.Buffer
		experiments.WriteShiftSweep(&buf, rows)
		return buf.String()
	}
	seq := render(run(1))
	par := render(run(8))
	if seq != par {
		t.Errorf("parallel output differs from sequential:\n--- sequential\n%s--- parallel\n%s", seq, par)
	}
}

func TestShiftSweepRejectsSimulatedEngine(t *testing.T) {
	_, err := experiments.ShiftSweep(experiments.Options{Engine: experiments.Simulated, Seeds: 1})
	if err == nil || !strings.Contains(err.Error(), "analytic") {
		t.Fatalf("simulated engine accepted: %v", err)
	}
}
