package experiments

import (
	"fmt"
	"io"

	"repro/internal/xgft"
)

// WriteFigure2 renders Fig. 2 rows as an aligned text table.
func WriteFigure2(w io.Writer, app *App, rows []Fig2Row) {
	fmt.Fprintf(w, "Figure 2 — %s, progressive tree-slimming of XGFT(2;16,16;1,w2)\n", app.Name)
	fmt.Fprintf(w, "Slowdown vs Full-Crossbar (1.00)\n")
	fmt.Fprintf(w, "%4s  %8s  %8s  %8s  %8s  %8s\n", "w2", "crossbar", "random", "s-mod-k", "d-mod-k", "colored")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d  %8.2f  %8.2f  %8.2f  %8.2f  %8.2f\n",
			r.W2, r.Crossbar, r.Random, r.SModK, r.DModK, r.Colored)
	}
}

// WriteFigure2CSV renders Fig. 2 rows as CSV.
func WriteFigure2CSV(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "w2,crossbar,random,s_mod_k,d_mod_k,colored")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f,%.4f\n", r.W2, r.Crossbar, r.Random, r.SModK, r.DModK, r.Colored)
	}
}

// WriteFigure5 renders Fig. 5 rows: fixed curves plus boxplot
// five-number summaries.
func WriteFigure5(w io.Writer, app *App, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5 — %s, oblivious routing schemes (boxplots over seeds)\n", app.Name)
	fmt.Fprintf(w, "%4s  %8s %8s %8s  %-44s %-44s %-44s\n",
		"w2", "s-mod-k", "d-mod-k", "colored", "r-NCA-u [min q1 med q3 max]", "r-NCA-d [min q1 med q3 max]", "random [min q1 med q3 max]")
	box := func(s fmt.Stringer) string { return s.String() }
	for _, r := range rows {
		fmt.Fprintf(w, "%4d  %8.2f %8.2f %8.2f  %-44s %-44s %-44s\n",
			r.W2, r.SModK, r.DModK, r.Colored, box(r.RNCAUp), box(r.RNCADn), box(r.Random))
	}
}

// WriteFigure5CSV renders Fig. 5 rows as CSV.
func WriteFigure5CSV(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "w2,s_mod_k,d_mod_k,colored,"+
		"rncau_min,rncau_q1,rncau_med,rncau_q3,rncau_max,"+
		"rncad_min,rncad_q1,rncad_med,rncad_q3,rncad_max,"+
		"random_min,random_q1,random_med,random_q3,random_max")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.W2, r.SModK, r.DModK, r.Colored,
			r.RNCAUp.Min, r.RNCAUp.Q1, r.RNCAUp.Median, r.RNCAUp.Q3, r.RNCAUp.Max,
			r.RNCADn.Min, r.RNCADn.Q1, r.RNCADn.Median, r.RNCADn.Q3, r.RNCADn.Max,
			r.Random.Min, r.Random.Q1, r.Random.Median, r.Random.Q3, r.Random.Max)
	}
}

// WriteFigure4 renders a routes-per-NCA census.
func WriteFigure4(w io.Writer, res *Fig4Result) {
	fmt.Fprintf(w, "Figure 4 — routes assigned per NCA, %s (%d roots)\n", res.Topology, res.Roots)
	fmt.Fprintf(w, "%4s  %8s  %8s  %-40s %-40s %-40s\n", "NCA", "s-mod-k", "d-mod-k", "random [min med max]", "r-NCA-u [min med max]", "r-NCA-d [min med max]")
	for root := 0; root < res.Roots; root++ {
		fmt.Fprintf(w, "%4d  %8d  %8d  min=%5.0f med=%7.1f max=%5.0f   min=%5.0f med=%7.1f max=%5.0f   min=%5.0f med=%7.1f max=%5.0f\n",
			root, res.SModK[root], res.DModK[root],
			res.Random[root].Min, res.Random[root].Median, res.Random[root].Max,
			res.RNCAUp[root].Min, res.RNCAUp[root].Median, res.RNCAUp[root].Max,
			res.RNCADn[root].Min, res.RNCADn[root].Median, res.RNCADn[root].Max)
	}
}

// WriteFigure3 renders the CG.D-128 decomposition: per-phase factors
// and a coarse view of the aggregate connectivity matrix.
func WriteFigure3(w io.Writer, res *Fig3Result) {
	fmt.Fprintln(w, "Figure 3 — CG.D-128 traffic pattern")
	fmt.Fprintln(w, "Per-phase completion bound under d-mod-k on XGFT(2;16,16;1,16):")
	for i := range res.PhaseNet {
		local := "switch-local"
		if res.PhaseFactor[i] > 1 {
			local = "inter-switch"
		}
		fmt.Fprintf(w, "  phase %d: %10d bytes (crossbar %10d), factor %.2f  [%s]\n",
			i+1, res.PhaseNet[i], res.PhaseXbar[i], res.PhaseFactor[i], local)
	}
	fmt.Fprintln(w, "Aggregate connectivity matrix (16x16 rank blocks, '#' = traffic):")
	n := len(res.Matrix)
	const block = 8
	for bs := 0; bs < n; bs += block {
		for bd := 0; bd < n; bd += block {
			has := false
			for s := bs; s < bs+block && s < n; s++ {
				for d := bd; d < bd+block && d < n; d++ {
					if res.Matrix[s][d] > 0 && s != d {
						has = true
					}
				}
			}
			if has {
				fmt.Fprint(w, "#")
			} else {
				fmt.Fprint(w, ".")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteTable1 renders the Table I schema of a topology.
func WriteTable1(w io.Writer, tp *xgft.Topology, rows []Table1Row) {
	fmt.Fprintf(w, "Table I — node and link labels of %s\n", tp.String())
	fmt.Fprintf(w, "%5s  %8s  %-28s  %10s  %10s  %-16s\n", "level", "#nodes", "label form", "#links up", "#links dn", "last label")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %8d  %-28s  %10d  %10d  %-16s\n",
			r.Level, r.Nodes, r.LabelForm, r.UpLinks, r.DownLinks, r.ExampleLab)
	}
	fmt.Fprintf(w, "inner switches (Eq. 1): %d\n", tp.InnerSwitches())
}
