package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func placementOpts(par int) Options {
	return Options{
		Seeds:       3,
		Parallelism: par,
		// A private cache keeps the test hermetic from the shared one.
		Cache: core.NewTableCache(64),
	}
}

func TestPlacementSweepPolicyOrdering(t *testing.T) {
	rows, err := PlacementSweep(placementOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(placementPolicies) {
		t.Fatalf("%d rows, want %d", len(rows), len(placementPolicies))
	}
	byName := make(map[string]PlacementRow)
	for i, r := range rows {
		if r.Policy != placementPolicies[i] {
			t.Errorf("row %d is %q, want %q", i, r.Policy, placementPolicies[i])
		}
		if r.Placed == 0 {
			t.Errorf("policy %s placed no jobs", r.Policy)
		}
		byName[r.Policy] = r
	}
	// Admission is capacity-only, so every policy sees the same
	// schedule succeed and fail identically.
	for _, r := range rows {
		if r.Placed != rows[0].Placed || r.Rejected != rows[0].Rejected {
			t.Errorf("admission differs across policies: %+v vs %+v", r, rows[0])
		}
	}
	// The headline claim: topology- and pattern-aware placement beats
	// oblivious scatter on median per-job slowdown.
	if b, r := byName["balanced"], byName["random"]; b.PerJob.Median >= r.PerJob.Median {
		t.Errorf("balanced median %.3f not better than random %.3f", b.PerJob.Median, r.PerJob.Median)
	}
	if tl, r := byName["telemetry"], byName["random"]; tl.PerJob.Median >= r.PerJob.Median {
		t.Errorf("telemetry median %.3f not better than random %.3f", tl.PerJob.Median, r.PerJob.Median)
	}
	// Scattering also shatters the free pool.
	if b, r := byName["balanced"], byName["random"]; b.Frag.Mean >= r.Frag.Mean {
		t.Errorf("balanced fragmentation %.3f not better than random %.3f", b.Frag.Mean, r.Frag.Mean)
	}
}

// TestPlacementSweepParallelismInvariant is the sweep's determinism
// gate: the rendered table must be byte-identical between a
// sequential run and a maximally parallel one (the CI check behind
// `cmd/experiments -placement -parallel=N`).
func TestPlacementSweepParallelismInvariant(t *testing.T) {
	render := func(par int) string {
		rows, err := PlacementSweep(placementOpts(par))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WritePlacementSweep(&buf, rows)
		return buf.String()
	}
	seq := render(1)
	for _, par := range []int{4, 16} {
		if got := render(par); got != seq {
			t.Fatalf("parallel=%d output differs from sequential:\n%s\nvs\n%s", par, got, seq)
		}
	}
	if seq == "" {
		t.Fatal("empty render")
	}
}

func TestPlacementSweepRejectsSimulatedEngine(t *testing.T) {
	opt := placementOpts(1)
	opt.Engine = Simulated
	if _, err := PlacementSweep(opt); err == nil {
		t.Fatal("simulated engine accepted")
	}
}

func TestPlacementScheduleDeterministic(t *testing.T) {
	a, err := placementSchedule(7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := placementSchedule(7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != placementJobs || len(b) != placementJobs {
		t.Fatalf("schedule lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].arrive != b[i].arrive || a[i].depart != b[i].depart || a[i].spec.Name != b[i].spec.Name {
			t.Fatalf("schedule event %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].depart <= a[i].arrive {
			t.Fatalf("event %d departs before it arrives: %+v", i, a[i])
		}
		if i > 0 && a[i].arrive <= a[i-1].arrive {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
}
