package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// The analytic-vs-simulation fidelity sweep: everything this system
// steers by — the fabric optimizer, the telemetry placement policy,
// every analytic sweep — trusts the congestion completion bound to
// rank routing schemes the way a real network would. This sweep is
// the first quantitative check of that trust: the same (scheme,
// phase schedule) cells are scored by the analytic backend and by the
// venus flit-level simulation, and the sweep reports whether the two
// backends agree on the winning scheme (rank agreement) and how far
// the bound sits from the measured makespan (relative error). §VI-B
// of the paper performs exactly this calibration between its
// combinatorial analysis and the Venus/Dimemas toolchain.

// fidelitySeed domain-separates the sweep's random draws.
const fidelitySeed = 0xf1de1

// fidelitySchemes enumerates the compared schemes in result order:
// the classic deterministic baseline, the paper's two proposals, and
// the pattern-aware Colored bound. Colored is built per schedule from
// its phases (memoized through the options' cache).
var fidelitySchemes = []string{"d-mod-k", "r-NCA-u", "r-NCA-d", "colored"}

// fidelitySchedule is one column of the sweep: a named traffic
// schedule drawn as a pure function of its coordinates.
type fidelitySchedule struct {
	Name    string
	pattern func(n int, bytes int64) (*pattern.Pattern, error)
}

var fidelitySchedules = []fidelitySchedule{
	{"permutation", func(n int, bytes int64) (*pattern.Pattern, error) {
		return pattern.KeyedRandomPermutation(n, bytes, hashutil.Mix(fidelitySeed, 1)), nil
	}},
	{"uniform", func(n int, bytes int64) (*pattern.Pattern, error) {
		return pattern.UniformRandom(n, 1, bytes, hashutil.Mix(fidelitySeed, 2)), nil
	}},
	{"bit-reversal", func(n int, bytes int64) (*pattern.Pattern, error) {
		return pattern.BitReversal(n, bytes)
	}},
}

// FidelityCell is one (schedule, scheme) comparison.
type FidelityCell struct {
	Scheme   string
	Analytic float64
	Venus    float64
	// RelErr is |venus - analytic| / venus: how far the bound sits
	// from the measured makespan slowdown.
	RelErr float64
}

// FidelityRow is one traffic schedule's comparison across schemes.
type FidelityRow struct {
	Schedule string
	Cells    []FidelityCell
	// BestAnalytic / BestVenus name the scheme each backend ranks
	// first (ties break on scheme order); Agree reports whether the
	// cheap bound picked the same winner the simulation did.
	BestAnalytic string
	BestVenus    string
	Agree        bool
	// MaxRelErr is the largest relative error over the schemes.
	MaxRelErr float64
}

// fidelityAlgo builds scheme k for the schedule's phases, memoizing
// Colored through the options' cache.
func fidelityAlgo(k int, tp *xgft.Topology, phases []*pattern.Pattern, opt Options) (core.Algorithm, error) {
	switch fidelitySchemes[k] {
	case "d-mod-k":
		return core.NewDModK(tp), nil
	case "r-NCA-u":
		return core.NewRandomNCAUp(tp, 1), nil
	case "r-NCA-d":
		return core.NewRandomNCADown(tp, 1), nil
	case "colored":
		return coloredFor(tp, phases, opt), nil
	default:
		return nil, fmt.Errorf("experiments: unknown fidelity scheme %q", fidelitySchemes[k])
	}
}

// FidelitySweep scores every (schedule, scheme) cell under both the
// analytic bound and the venus flit-level simulation on the paper's
// cost-reduced tree XGFT(2;16,16;1,10) and reports rank agreement and
// relative error per schedule. Options.MessageBytes defaults to 16
// KiB here (simulation time scales with segment count); cells are
// independent on the parallel engine and every input is a pure
// function of the cell coordinates, so the table is byte-identical
// for any Parallelism. The Simulated trace-replay engine is rejected:
// the sweep manages its own pair of backends.
func FidelitySweep(opt Options) ([]FidelityRow, error) {
	if opt.MessageBytes <= 0 {
		opt.MessageBytes = 16 * 1024
	}
	opt = opt.withDefaults()
	if opt.Engine != Analytic {
		return nil, fmt.Errorf("experiments: the fidelity sweep supports only the analytic engine, not %q", opt.Engine)
	}
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		return nil, err
	}
	cache := opt.tableCache()
	analytic := evaluate.NewAnalytic(cache)
	// One venus backend for the whole sweep: its crossbar-reference
	// memo is shared across schemes (deterministic values, so sharing
	// cannot perturb results).
	sim := evaluate.NewVenus(cache, venus.Config{})
	backends := []evaluate.Evaluator{analytic, sim}

	nSched, nSchemes, nBackends := len(fidelitySchedules), len(fidelitySchemes), len(backends)
	// Schedules are drawn up-front, sequentially; cells only read.
	phases := make([][]*pattern.Pattern, nSched)
	for i, sc := range fidelitySchedules {
		p, err := sc.pattern(tp.Leaves(), opt.MessageBytes)
		if err != nil {
			return nil, err
		}
		phases[i] = []*pattern.Pattern{p}
	}
	// values[i][k][b]: schedule i, scheme k, backend b.
	values := make([][][]float64, nSched)
	for i := range values {
		values[i] = make([][]float64, nSchemes)
		for k := range values[i] {
			values[i][k] = make([]float64, nBackends)
		}
	}
	cellsPerSched := nSchemes * nBackends
	err = opt.run(nSched*cellsPerSched, func(idx int) error {
		i, c := idx/cellsPerSched, idx%cellsPerSched
		k, b := c/nBackends, c%nBackends
		algo, err := fidelityAlgo(k, tp, phases[i], opt)
		if err != nil {
			return err
		}
		res, err := backends[b].Score(tp, algo, phases[i])
		if err != nil {
			return err
		}
		values[i][k][b] = res.Slowdown
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FidelityRow, nSched)
	for i := range rows {
		row := FidelityRow{Schedule: fidelitySchedules[i].Name}
		bestA, bestV := 0, 0
		for k := 0; k < nSchemes; k++ {
			a, v := values[i][k][0], values[i][k][1]
			cell := FidelityCell{Scheme: fidelitySchemes[k], Analytic: a, Venus: v}
			if v > 0 {
				cell.RelErr = math.Abs(v-a) / v
			}
			row.Cells = append(row.Cells, cell)
			if a < values[i][bestA][0] {
				bestA = k
			}
			if v < values[i][bestV][1] {
				bestV = k
			}
			if cell.RelErr > row.MaxRelErr {
				row.MaxRelErr = cell.RelErr
			}
		}
		row.BestAnalytic = fidelitySchemes[bestA]
		row.BestVenus = fidelitySchemes[bestV]
		row.Agree = bestA == bestV
		rows[i] = row
	}
	return rows, nil
}

// WriteFidelitySweep renders the fidelity sweep.
func WriteFidelitySweep(w io.Writer, rows []FidelityRow) {
	fmt.Fprintln(w, "Fidelity — analytic bound vs venus simulation, XGFT(2;16,16;1,10)")
	fmt.Fprintf(w, "%-14s", "schedule")
	for _, s := range fidelitySchemes {
		fmt.Fprintf(w, " %-19s", s+" (bound/sim)")
	}
	fmt.Fprintf(w, " %-22s %7s\n", "best (bound vs sim)", "maxerr")
	agreed := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Schedule)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %8.2f /%8.2f ", c.Analytic, c.Venus)
		}
		verdict := "AGREE"
		if !r.Agree {
			verdict = "DISAGREE"
		} else {
			agreed++
		}
		fmt.Fprintf(w, " %-8s vs %-8s %s %5.1f%%\n", r.BestAnalytic, r.BestVenus, verdict, r.MaxRelErr*100)
	}
	fmt.Fprintf(w, "rank agreement: %d/%d schedules\n", agreed, len(rows))
}
