package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAdaptiveComparisonShapes(t *testing.T) {
	rows, err := AdaptiveComparison(Options{MessageBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := make(map[string]AdaptiveRow)
	for _, r := range rows {
		byKey[r.Workload+"/"+itoa(r.W2)] = r
	}
	// Adaptive escapes the mod-k pathology on the transpose.
	cg := byKey["cg-transpose/16"]
	if cg.Adaptive >= cg.DModK {
		t.Errorf("adaptive %.2f not better than d-mod-k %.2f on cg-transpose", cg.Adaptive, cg.DModK)
	}
	// Adaptive does not beat conflict-free d-mod-k on WRF (the cited
	// "adaptive not always better" result).
	wrf := byKey["wrf-halo/16"]
	if wrf.Adaptive < wrf.DModK*0.9 {
		t.Errorf("adaptive %.2f significantly beats d-mod-k %.2f on wrf", wrf.Adaptive, wrf.DModK)
	}
}

func TestWriteAdaptiveComparison(t *testing.T) {
	rows := []AdaptiveRow{{Workload: "x", W2: 16, Adaptive: 1, DModK: 2, RNCADn: 1.5, Random: 1.7}}
	var buf bytes.Buffer
	WriteAdaptiveComparison(&buf, rows)
	if !strings.Contains(buf.String(), "adaptive") {
		t.Error("missing header")
	}
}

func itoa(v int) string {
	if v == 16 {
		return "16"
	}
	if v == 8 {
		return "8"
	}
	return "?"
}
