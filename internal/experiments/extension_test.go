package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeepTreeSweepShapes(t *testing.T) {
	rows, err := DeepTreeSweep(Options{Seeds: 4, MessageBytes: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	full := rows[0] // w = 8: full bisection 8-ary 3-tree
	if full.Switches != 3*64 {
		t.Errorf("full tree switches = %d, want 192", full.Switches)
	}
	// On random permutations the relabeling family must not be worse
	// than mod-k (which suffers random collisions with regular digit
	// assignment just as the relabeled one does, but without the
	// per-subtree independence).
	for _, r := range rows {
		if r.RNCAUp.Median > r.Random.Median*1.5 {
			t.Errorf("w=%d: r-NCA-u median %.2f far above random %.2f", r.W, r.RNCAUp.Median, r.Random.Median)
		}
		if r.SModK < 1 || r.DModK < 1 {
			t.Errorf("w=%d: slowdowns below 1", r.W)
		}
	}
	// Slimming monotonicity at the extremes.
	if rows[len(rows)-1].Random.Median <= rows[0].Random.Median {
		t.Error("slimming to w=1 did not degrade random permutations")
	}
}

func TestDeepTreeSweepDefaults(t *testing.T) {
	rows, err := DeepTreeSweep(Options{}) // defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestBalanceAblation(t *testing.T) {
	row, err := BalanceAblation(10, Options{Seeds: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The design choice the paper argues for must be visible: tighter
	// census spread for the balanced maps.
	if row.CensusSpreadUnbalanced <= row.CensusSpreadBalanced {
		t.Errorf("balanced spread %.0f not tighter than unbalanced %.0f",
			row.CensusSpreadBalanced, row.CensusSpreadUnbalanced)
	}
	// Both avoid the mod-k CG pathology; medians near each other.
	if row.CGBalanced.Median > 2.2 || row.CGUnbalanced.Median > 2.6 {
		t.Errorf("relabeling medians %.2f/%.2f hit the pathology", row.CGBalanced.Median, row.CGUnbalanced.Median)
	}
}

func TestExtensionRenderers(t *testing.T) {
	rows, err := DeepTreeSweep(Options{Seeds: 2, MessageBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteDeepTreeSweep(&buf, rows)
	if !strings.Contains(buf.String(), "XGFT(3;8,8,8;1,8,8)") {
		t.Errorf("sweep output missing topology: %s", buf.String()[:120])
	}
	ab, err := BalanceAblation(10, Options{Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteBalanceAblation(&buf, ab)
	if !strings.Contains(buf.String(), "balanced") {
		t.Error("ablation output missing header")
	}
}
