package experiments

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/evaluate"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// Engine selects how slowdowns are obtained.
type Engine string

const (
	// Analytic uses the congestion bound model of
	// internal/contention: exact, fast, byte-size independent.
	Analytic Engine = "analytic"
	// Simulated replays the application trace over the event-driven
	// network simulator (the paper's methodology).
	Simulated Engine = "simulated"
)

// Options parameterizes the sweeps.
type Options struct {
	// Engine defaults to Analytic.
	Engine Engine
	// Seeds is the number of samples for the randomized schemes
	// (paper: 40-60 per boxplot). Defaults to 40.
	Seeds int
	// MessageBytes scales message sizes for Simulated runs; 0 keeps
	// the paper's sizes (slow), tests use small values.
	MessageBytes int64
	// W2Values lists the slimming sweep; defaults to 16..1.
	W2Values []int
	// Parallelism bounds the worker pool the sweep cells run on
	// (default: 4). Results are independent of the value: every cell
	// derives its randomness from its own coordinates and writes its
	// own result slot, so parallel and sequential runs are
	// byte-identical.
	Parallelism int
	// Progress, when non-nil, is called after each completed sweep
	// cell with monotonically increasing done counts and the total
	// cell count of the running experiment. It is called from the
	// sweep goroutines under a lock (never concurrently).
	Progress func(done, total int)
	// Cache overrides the routing-table cache. nil selects the
	// process-wide shared cache; a zero-capacity cache
	// (core.NewTableCache(0)) disables memoization entirely.
	Cache *core.TableCache
	// Evaluator overrides the scoring backend for pattern-level
	// sweeps: nil selects the analytic congestion bound over the
	// options' cache (the historical behavior, bit-identical). Any
	// evaluate.Evaluator — grouped, venus, a CachedEvaluator, a test
	// double — slots in; the Simulated engine's trace-replay pipeline
	// is still selected by Engine, not here.
	Evaluator evaluate.Evaluator
}

func (o Options) withDefaults() Options {
	if o.Engine == "" {
		o.Engine = Analytic
	}
	if o.Seeds <= 0 {
		o.Seeds = 40
	}
	if len(o.W2Values) == 0 {
		for w2 := 16; w2 >= 1; w2-- {
			o.W2Values = append(o.W2Values, w2)
		}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return o
}

// phasedSlowdown evaluates one (topology, algorithm) cell over the
// app's communication phases. Analytic-engine cells score through the
// options' evaluator (routing tables shared through the cache);
// simulated cells build their own simulator instances, so workers
// never share mutable state.
func phasedSlowdown(tp *xgft.Topology, algo core.Algorithm, ranks int, phases []*pattern.Pattern, opt Options) (float64, error) {
	switch opt.Engine {
	case Analytic:
		res, err := opt.evaluator().Score(tp, algo, phases)
		if err != nil {
			return 0, err
		}
		return res.Slowdown, nil
	case Simulated:
		tr, err := traces.FromPhases(ranks, phases, 1, 0)
		if err != nil {
			return 0, err
		}
		return dimemas.MeasuredSlowdown(tr, tp, algo, dimemas.Config{Net: venus.DefaultConfig()})
	default:
		return 0, fmt.Errorf("experiments: unknown engine %q", opt.Engine)
	}
}

// coloredFor returns the pattern-aware baseline for a sweep cell,
// memoized through the options' cache: the optimizer is deterministic
// in (topology, phases) and costs milliseconds, so Figure2 and
// Figure5 share one instance per sweep topology. Colored's Route is
// read-only after construction, hence safe to share across workers.
func coloredFor(tp *xgft.Topology, phases []*pattern.Pattern, opt Options) core.Algorithm {
	key := "colored|" + tp.String()
	for _, ph := range phases {
		// Exact invariants ride along with the fingerprint so a
		// 64-bit collision alone cannot alias two keys (the tableKey
		// design rule).
		key += fmt.Sprintf("|%d:%#x:%#x", len(ph.Flows), ph.TotalBytes(), ph.Fingerprint())
	}
	return opt.tableCache().MemoAlgorithm(key, func() core.Algorithm {
		return core.NewColored(tp, phases, core.ColoredConfig{})
	})
}

// fixedCellAlgo maps the fixed-baseline cell indices shared by
// Figure2 and Figure5 (0: s-mod-k, 1: d-mod-k, 2: colored) to their
// algorithm.
func fixedCellAlgo(c int, tp *xgft.Topology, phases []*pattern.Pattern, opt Options) core.Algorithm {
	switch c {
	case 0:
		return core.NewSModK(tp)
	case 1:
		return core.NewDModK(tp)
	default:
		return coloredFor(tp, phases, opt)
	}
}

// slimmedTopologies builds the sweep's topology per W2 value.
func slimmedTopologies(w2s []int) ([]*xgft.Topology, error) {
	topos := make([]*xgft.Topology, len(w2s))
	for i, w2 := range w2s {
		tp, err := xgft.NewSlimmedTree(16, 16, w2)
		if err != nil {
			return nil, err
		}
		topos[i] = tp
	}
	return topos, nil
}

// Fig2Row is one x-position of Fig. 2: the slowdown of each fixed
// algorithm on XGFT(2;16,16;1,W2), with Random represented by the
// median over seeds (the paper plots one static table).
type Fig2Row struct {
	W2       int
	Random   float64
	SModK    float64
	DModK    float64
	Colored  float64
	Crossbar float64 // always 1 by construction; kept for the figure
}

// Figure2 reproduces Fig. 2a (WRF-256) or Fig. 2b (CG.D-128):
// progressive tree slimming of the 16-ary 2-tree under the three
// classic oblivious routings and the pattern-aware bound. Cells —
// one per (topology, fixed algorithm) plus one per (topology, Random
// seed) — fan out over the options' worker pool.
func Figure2(app *App, opt Options) ([]Fig2Row, error) {
	opt = opt.withDefaults()
	phases := app.Phases(opt.MessageBytes)
	topos, err := slimmedTopologies(opt.W2Values)
	if err != nil {
		return nil, err
	}
	const fixedCells = 3 // s-mod-k, d-mod-k, colored
	cellsPerW := fixedCells + opt.Seeds
	rows := make([]Fig2Row, len(topos))
	randSamples := make([][]float64, len(topos))
	for i := range randSamples {
		randSamples[i] = make([]float64, opt.Seeds)
	}
	err = opt.run(len(topos)*cellsPerW, func(idx int) error {
		i, c := idx/cellsPerW, idx%cellsPerW
		tp := topos[i]
		var algo core.Algorithm
		var slot *float64
		if c < fixedCells {
			algo = fixedCellAlgo(c, tp, phases, opt)
			slot = [...]*float64{&rows[i].SModK, &rows[i].DModK, &rows[i].Colored}[c]
		} else {
			seed := c - fixedCells
			algo, slot = core.NewRandom(tp, uint64(seed)+1), &randSamples[i][seed]
		}
		s, err := phasedSlowdown(tp, algo, app.Ranks, phases, opt)
		if err != nil {
			return err
		}
		*slot = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].W2 = opt.W2Values[i]
		rows[i].Crossbar = 1
		rows[i].Random = stats.Summarize(randSamples[i]).Median
	}
	return rows, nil
}

// Fig5Row is one x-position of Fig. 5: fixed curves for
// S-mod-k/D-mod-k/Colored plus seed boxplots for the randomized
// schemes.
type Fig5Row struct {
	W2      int
	SModK   float64
	DModK   float64
	Colored float64
	RNCAUp  stats.Summary
	RNCADn  stats.Summary
	Random  stats.Summary
}

// figure5Schemes enumerates the randomized schemes of Fig. 5 in
// result order.
var figure5Schemes = []func(tp *xgft.Topology, seed uint64) core.Algorithm{
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandom(tp, s) },
}

// Figure5 reproduces Fig. 5a/5b: the proposed r-NCA-u and r-NCA-d
// schemes against Random (boxplots over seeds) and the fixed
// baselines, under progressive slimming. Every (topology, scheme,
// seed) triple is an independent sweep cell.
func Figure5(app *App, opt Options) ([]Fig5Row, error) {
	opt = opt.withDefaults()
	phases := app.Phases(opt.MessageBytes)
	topos, err := slimmedTopologies(opt.W2Values)
	if err != nil {
		return nil, err
	}
	const fixedCells = 3
	nSchemes := len(figure5Schemes)
	cellsPerW := fixedCells + nSchemes*opt.Seeds
	rows := make([]Fig5Row, len(topos))
	// samples[i][k][seed]: topology i, randomized scheme k.
	samples := make([][][]float64, len(topos))
	for i := range samples {
		samples[i] = make([][]float64, nSchemes)
		for k := range samples[i] {
			samples[i][k] = make([]float64, opt.Seeds)
		}
	}
	err = opt.run(len(topos)*cellsPerW, func(idx int) error {
		i, c := idx/cellsPerW, idx%cellsPerW
		tp := topos[i]
		var algo core.Algorithm
		var slot *float64
		if c < fixedCells {
			algo = fixedCellAlgo(c, tp, phases, opt)
			slot = [...]*float64{&rows[i].SModK, &rows[i].DModK, &rows[i].Colored}[c]
		} else {
			k := (c - fixedCells) / opt.Seeds
			seed := (c - fixedCells) % opt.Seeds
			algo, slot = figure5Schemes[k](tp, uint64(seed)+1), &samples[i][k][seed]
		}
		s, err := phasedSlowdown(tp, algo, app.Ranks, phases, opt)
		if err != nil {
			return err
		}
		*slot = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].W2 = opt.W2Values[i]
		rows[i].RNCAUp = stats.Summarize(samples[i][0])
		rows[i].RNCADn = stats.Summarize(samples[i][1])
		rows[i].Random = stats.Summarize(samples[i][2])
	}
	return rows, nil
}

// Fig4Result holds the routes-per-NCA census of one topology:
// deterministic vectors for the mod-k schemes and per-NCA boxplots
// over seeds for the randomized ones.
type Fig4Result struct {
	Topology string
	Roots    int
	SModK    []int
	DModK    []int
	Random   []stats.Summary
	RNCAUp   []stats.Summary
	RNCADn   []stats.Summary
}

// figure4Schemes enumerates the randomized schemes of Fig. 4 in
// result order.
var figure4Schemes = []func(tp *xgft.Topology, seed uint64) core.Algorithm{
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandom(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) },
	func(tp *xgft.Topology, s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) },
}

// Figure4 reproduces Fig. 4a (w2=16) / 4b (w2=10): the distribution
// of all-pairs route assignments over the roots. Cells are the two
// deterministic censuses plus one census per (scheme, seed).
func Figure4(w2 int, opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		Topology: tp.String(),
		Roots:    tp.NodesAt(2),
	}
	nSchemes := len(figure4Schemes)
	// censuses[k][seed]: scheme k's census at one seed.
	censuses := make([][][]int, nSchemes)
	for k := range censuses {
		censuses[k] = make([][]int, opt.Seeds)
	}
	err = opt.run(2+nSchemes*opt.Seeds, func(idx int) error {
		switch idx {
		case 0:
			res.SModK = core.AllPairsNCACensus(tp, core.NewSModK(tp))
		case 1:
			res.DModK = core.AllPairsNCACensus(tp, core.NewDModK(tp))
		default:
			k := (idx - 2) / opt.Seeds
			seed := (idx - 2) % opt.Seeds
			censuses[k][seed] = core.AllPairsNCACensus(tp, figure4Schemes[k](tp, uint64(seed)+1))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	summarize := func(k int) []stats.Summary {
		out := make([]stats.Summary, res.Roots)
		perRoot := make([]float64, opt.Seeds)
		for root := 0; root < res.Roots; root++ {
			for seed := 0; seed < opt.Seeds; seed++ {
				perRoot[seed] = float64(censuses[k][seed][root])
			}
			out[root] = stats.Summarize(perRoot)
		}
		return out
	}
	res.Random = summarize(0)
	res.RNCAUp = summarize(1)
	res.RNCADn = summarize(2)
	return res, nil
}

// Fig3Result decomposes CG.D-128: its aggregate connectivity matrix
// and the per-phase slowdown of D-mod-k on the full 16-ary 2-tree
// (the paper's "fifth phase takes ~8x longer" analysis; here 7x — see
// EXPERIMENTS.md X1).
type Fig3Result struct {
	Matrix      [][]int64
	PhaseNet    []int64 // per-phase completion bound, bytes
	PhaseXbar   []int64 // per-phase crossbar bound, bytes
	PhaseFactor []float64
}

// Figure3 reproduces Fig. 3. The d-mod-k phase tables are served from
// the options' routing-table cache, so a -all run shares them with
// the Fig. 2b/5b sweeps.
func Figure3(opt Options) (*Fig3Result, error) {
	opt = opt.withDefaults()
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		return nil, err
	}
	phases := pattern.CGD128Phases()
	all, err := pattern.Union(phases...)
	if err != nil {
		return nil, err
	}
	net, xbar, err := contention.PhaseBoundsCached(opt.tableCache(), tp, core.NewDModK(tp), phases)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Matrix:    all.ConnectivityMatrix(),
		PhaseNet:  net,
		PhaseXbar: xbar,
	}
	res.PhaseFactor = make([]float64, len(net))
	for i := range net {
		if xbar[i] > 0 {
			res.PhaseFactor[i] = float64(net[i]) / float64(xbar[i])
		}
	}
	return res, nil
}

// Table1Row describes one level of an XGFT the way the paper's
// Table I does.
type Table1Row struct {
	Level      int
	Nodes      int
	LabelForm  string
	UpLinks    int
	DownLinks  int
	ExampleLab string
}

// Table1 renders the label schema of a topology.
func Table1(tp *xgft.Topology) []Table1Row {
	h := tp.Height()
	rows := make([]Table1Row, h+1)
	for l := 0; l <= h; l++ {
		form := "<"
		for j := h - 1; j >= 0; j-- {
			if j < h-1 {
				form += ","
			}
			if j < l {
				form += fmt.Sprintf("W%d", j+1)
			} else {
				form += fmt.Sprintf("M%d", j+1)
			}
		}
		form += ">"
		up := 0
		if l < h {
			up = tp.ChannelsAt(l)
		}
		down := 0
		if l > 0 {
			down = tp.ChannelsAt(l - 1)
		}
		example := ""
		if tp.NodesAt(l) > 1 {
			example = tp.FormatLabel(l, tp.NodesAt(l)-1)
		} else {
			example = tp.FormatLabel(l, 0)
		}
		rows[l] = Table1Row{
			Level:      l,
			Nodes:      tp.NodesAt(l),
			LabelForm:  form,
			UpLinks:    up,
			DownLinks:  down,
			ExampleLab: example,
		}
	}
	return rows
}
