package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// Engine selects how slowdowns are obtained.
type Engine string

const (
	// Analytic uses the congestion bound model of
	// internal/contention: exact, fast, byte-size independent.
	Analytic Engine = "analytic"
	// Simulated replays the application trace over the event-driven
	// network simulator (the paper's methodology).
	Simulated Engine = "simulated"
)

// Options parameterizes the sweeps.
type Options struct {
	// Engine defaults to Analytic.
	Engine Engine
	// Seeds is the number of samples for the randomized schemes
	// (paper: 40-60 per boxplot). Defaults to 40.
	Seeds int
	// MessageBytes scales message sizes for Simulated runs; 0 keeps
	// the paper's sizes (slow), tests use small values.
	MessageBytes int64
	// W2Values lists the slimming sweep; defaults to 16..1.
	W2Values []int
	// Parallelism bounds concurrent simulations (default: 4).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Engine == "" {
		o.Engine = Analytic
	}
	if o.Seeds <= 0 {
		o.Seeds = 40
	}
	if len(o.W2Values) == 0 {
		for w2 := 16; w2 >= 1; w2-- {
			o.W2Values = append(o.W2Values, w2)
		}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return o
}

// slowdownOf evaluates one (topology, algorithm) point for an app.
func slowdownOf(app *App, tp *xgft.Topology, algo core.Algorithm, opt Options) (float64, error) {
	phases := app.Phases(opt.MessageBytes)
	switch opt.Engine {
	case Analytic:
		return contention.PhasedSlowdown(tp, algo, phases)
	case Simulated:
		tr, err := traces.FromPhases(app.Ranks, phases, 1, 0)
		if err != nil {
			return 0, err
		}
		return dimemas.MeasuredSlowdown(tr, tp, algo, dimemas.Config{Net: venus.DefaultConfig()})
	default:
		return 0, fmt.Errorf("experiments: unknown engine %q", opt.Engine)
	}
}

// Fig2Row is one x-position of Fig. 2: the slowdown of each fixed
// algorithm on XGFT(2;16,16;1,W2), with Random represented by the
// median over seeds (the paper plots one static table).
type Fig2Row struct {
	W2       int
	Random   float64
	SModK    float64
	DModK    float64
	Colored  float64
	Crossbar float64 // always 1 by construction; kept for the figure
}

// Figure2 reproduces Fig. 2a (WRF-256) or Fig. 2b (CG.D-128):
// progressive tree slimming of the 16-ary 2-tree under the three
// classic oblivious routings and the pattern-aware bound.
func Figure2(app *App, opt Options) ([]Fig2Row, error) {
	opt = opt.withDefaults()
	rows := make([]Fig2Row, len(opt.W2Values))
	err := forEach(len(opt.W2Values), opt.Parallelism, func(i int) error {
		w2 := opt.W2Values[i]
		tp, err := xgft.NewSlimmedTree(16, 16, w2)
		if err != nil {
			return err
		}
		row := Fig2Row{W2: w2, Crossbar: 1}
		if row.SModK, err = slowdownOf(app, tp, core.NewSModK(tp), opt); err != nil {
			return err
		}
		if row.DModK, err = slowdownOf(app, tp, core.NewDModK(tp), opt); err != nil {
			return err
		}
		col := core.NewColored(tp, app.Phases(opt.MessageBytes), core.ColoredConfig{})
		if row.Colored, err = slowdownOf(app, tp, col, opt); err != nil {
			return err
		}
		// Median random table over a few seeds.
		samples := make([]float64, 0, opt.Seeds)
		for seed := 0; seed < opt.Seeds; seed++ {
			s, err := slowdownOf(app, tp, core.NewRandom(tp, uint64(seed)+1), opt)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		}
		row.Random = stats.Summarize(samples).Median
		rows[i] = row
		return nil
	})
	return rows, err
}

// Fig5Row is one x-position of Fig. 5: fixed curves for
// S-mod-k/D-mod-k/Colored plus seed boxplots for the randomized
// schemes.
type Fig5Row struct {
	W2      int
	SModK   float64
	DModK   float64
	Colored float64
	RNCAUp  stats.Summary
	RNCADn  stats.Summary
	Random  stats.Summary
}

// Figure5 reproduces Fig. 5a/5b: the proposed r-NCA-u and r-NCA-d
// schemes against Random (boxplots over seeds) and the fixed
// baselines, under progressive slimming.
func Figure5(app *App, opt Options) ([]Fig5Row, error) {
	opt = opt.withDefaults()
	rows := make([]Fig5Row, len(opt.W2Values))
	err := forEach(len(opt.W2Values), opt.Parallelism, func(i int) error {
		w2 := opt.W2Values[i]
		tp, err := xgft.NewSlimmedTree(16, 16, w2)
		if err != nil {
			return err
		}
		row := Fig5Row{W2: w2}
		if row.SModK, err = slowdownOf(app, tp, core.NewSModK(tp), opt); err != nil {
			return err
		}
		if row.DModK, err = slowdownOf(app, tp, core.NewDModK(tp), opt); err != nil {
			return err
		}
		col := core.NewColored(tp, app.Phases(opt.MessageBytes), core.ColoredConfig{})
		if row.Colored, err = slowdownOf(app, tp, col, opt); err != nil {
			return err
		}
		sample := func(mk func(seed uint64) core.Algorithm) (stats.Summary, error) {
			samples := make([]float64, opt.Seeds)
			for seed := 0; seed < opt.Seeds; seed++ {
				s, err := slowdownOf(app, tp, mk(uint64(seed)+1), opt)
				if err != nil {
					return stats.Summary{}, err
				}
				samples[seed] = s
			}
			return stats.Summarize(samples), nil
		}
		if row.RNCAUp, err = sample(func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) }); err != nil {
			return err
		}
		if row.RNCADn, err = sample(func(s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) }); err != nil {
			return err
		}
		if row.Random, err = sample(func(s uint64) core.Algorithm { return core.NewRandom(tp, s) }); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// Fig4Result holds the routes-per-NCA census of one topology:
// deterministic vectors for the mod-k schemes and per-NCA boxplots
// over seeds for the randomized ones.
type Fig4Result struct {
	Topology string
	Roots    int
	SModK    []int
	DModK    []int
	Random   []stats.Summary
	RNCAUp   []stats.Summary
	RNCADn   []stats.Summary
}

// Figure4 reproduces Fig. 4a (w2=16) / 4b (w2=10): the distribution
// of all-pairs route assignments over the roots.
func Figure4(w2, seeds int) (*Fig4Result, error) {
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		return nil, err
	}
	if seeds <= 0 {
		seeds = 40
	}
	res := &Fig4Result{
		Topology: tp.String(),
		Roots:    tp.NodesAt(2),
		SModK:    core.AllPairsNCACensus(tp, core.NewSModK(tp)),
		DModK:    core.AllPairsNCACensus(tp, core.NewDModK(tp)),
	}
	sample := func(mk func(seed uint64) core.Algorithm) []stats.Summary {
		perRoot := make([][]float64, res.Roots)
		for seed := 0; seed < seeds; seed++ {
			census := core.AllPairsNCACensus(tp, mk(uint64(seed)+1))
			for root, c := range census {
				perRoot[root] = append(perRoot[root], float64(c))
			}
		}
		out := make([]stats.Summary, res.Roots)
		for root := range out {
			out[root] = stats.Summarize(perRoot[root])
		}
		return out
	}
	res.Random = sample(func(s uint64) core.Algorithm { return core.NewRandom(tp, s) })
	res.RNCAUp = sample(func(s uint64) core.Algorithm { return core.NewRandomNCAUp(tp, s) })
	res.RNCADn = sample(func(s uint64) core.Algorithm { return core.NewRandomNCADown(tp, s) })
	return res, nil
}

// Fig3Result decomposes CG.D-128: its aggregate connectivity matrix
// and the per-phase slowdown of D-mod-k on the full 16-ary 2-tree
// (the paper's "fifth phase takes ~8x longer" analysis; here 7x — see
// EXPERIMENTS.md X1).
type Fig3Result struct {
	Matrix      [][]int64
	PhaseNet    []int64 // per-phase completion bound, bytes
	PhaseXbar   []int64 // per-phase crossbar bound, bytes
	PhaseFactor []float64
}

// Figure3 reproduces Fig. 3.
func Figure3() (*Fig3Result, error) {
	tp, err := xgft.NewSlimmedTree(16, 16, 16)
	if err != nil {
		return nil, err
	}
	phases := pattern.CGD128Phases()
	all, err := pattern.Union(phases...)
	if err != nil {
		return nil, err
	}
	net, xbar, err := contention.PhaseBounds(tp, core.NewDModK(tp), phases)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Matrix:    all.ConnectivityMatrix(),
		PhaseNet:  net,
		PhaseXbar: xbar,
	}
	res.PhaseFactor = make([]float64, len(net))
	for i := range net {
		if xbar[i] > 0 {
			res.PhaseFactor[i] = float64(net[i]) / float64(xbar[i])
		}
	}
	return res, nil
}

// Table1Row describes one level of an XGFT the way the paper's
// Table I does.
type Table1Row struct {
	Level      int
	Nodes      int
	LabelForm  string
	UpLinks    int
	DownLinks  int
	ExampleLab string
}

// Table1 renders the label schema of a topology.
func Table1(tp *xgft.Topology) []Table1Row {
	h := tp.Height()
	rows := make([]Table1Row, h+1)
	for l := 0; l <= h; l++ {
		form := "<"
		for j := h - 1; j >= 0; j-- {
			if j < h-1 {
				form += ","
			}
			if j < l {
				form += fmt.Sprintf("W%d", j+1)
			} else {
				form += fmt.Sprintf("M%d", j+1)
			}
		}
		form += ">"
		up := 0
		if l < h {
			up = tp.ChannelsAt(l)
		}
		down := 0
		if l > 0 {
			down = tp.ChannelsAt(l - 1)
		}
		example := ""
		if tp.NodesAt(l) > 1 {
			example = tp.FormatLabel(l, tp.NodesAt(l)-1)
		} else {
			example = tp.FormatLabel(l, 0)
		}
		rows[l] = Table1Row{
			Level:      l,
			Nodes:      tp.NodesAt(l),
			LabelForm:  form,
			UpLinks:    up,
			DownLinks:  down,
			ExampleLab: example,
		}
	}
	return rows
}

// forEach runs fn(0..n-1) over a bounded worker pool, collecting the
// first error.
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errs[0]
	}
	return nil
}
