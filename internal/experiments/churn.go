package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/xgft"
)

// The churn convergence sweep: the incremental-evaluation claim is
// operational, not just microbenchmarked — under sustained job
// arrivals, departures and link flaps, a fabric that converges by
// deltas must reach each new generation with exactly the decisions a
// from-scratch fabric makes, faster. This sweep drives the same
// keyed-hash churn schedule through two modes per seed — delta
// scoring (the default) and forced full rebuilds — folds every
// placement and optimizer decision into a hash, and refuses to return
// if the modes ever diverge. Wall-clock figures (time to a new
// generation, placement rate) are observational and rendered in
// bracketed lines; everything else is a pure function of the cell
// coordinates, so runs are byte-identical at any Parallelism.

// churnSeed domain-separates the churn schedule's draws.
const churnSeed = 0xc84a7

// churnJobs is the number of arrivals per seed; churnOptEvery gates
// the re-optimization cadence (one threshold-gated pass every third
// arrival); churnFlapEvery/churnHealAfter shape the link-flap cycle
// (a keyed level-1 link fails before every fifth arrival and heals
// two arrivals later).
const (
	churnJobs      = 18
	churnOptEvery  = 3
	churnFlapEvery = 5
	churnHealAfter = 2
	churnThreshold = 0.0
)

// churnModes enumerates the compared modes in result order.
var churnModes = []string{"incremental", "full"}

// churnJob is one arrival of the churn schedule.
type churnJob struct {
	arrive int64
	depart int64
	spec   sched.JobSpec
}

// churnSchedule draws seed s's arrival schedule: a resident
// bit-reversal tenant on half the machine (the structured adversary
// d-mod-k cannot serve contention-free, so the optimizer has a swap
// to earn after every heal), then keyed-hash interarrivals (1-10
// ticks) and lifetimes (20-69 ticks) over the placement sweep's
// WRF/CG/permutation job mix.
func churnSchedule(seed uint64, bytes int64) ([]churnJob, error) {
	jobs := make([]churnJob, churnJobs)
	br, err := pattern.BitReversal(128, bytes)
	if err != nil {
		return nil, err
	}
	jobs[0] = churnJob{
		arrive: 1,
		depart: int64(math.MaxInt64),
		spec:   sched.JobSpec{Name: "resident-br", N: 128, Phases: []*pattern.Pattern{br}},
	}
	t := int64(1)
	for e := 1; e < len(jobs); e++ {
		t += 1 + int64(hashutil.Mix(churnSeed, seed, uint64(e), 1)%10)
		life := 20 + int64(hashutil.Mix(churnSeed, seed, uint64(e), 2)%50)
		spec, err := placementSpec(seed, e, bytes)
		if err != nil {
			return nil, err
		}
		jobs[e] = churnJob{arrive: t, depart: t + life, spec: spec}
	}
	return jobs, nil
}

// churnCell is one (mode, seed) cell's outcome.
type churnCell struct {
	placed, rejected  int
	flaps             int
	optimizes, swaps  int
	touched           int
	hash              uint64
	swapNS            []int64
	placeSec, swapSec float64
}

// ChurnRow is one mode's aggregate over the seeds.
type ChurnRow struct {
	Mode string
	// Placed/Rejected count submissions; Flaps the injected link
	// failures; Optimizes/Swaps the re-optimization passes and the
	// ones that installed a new generation.
	Placed    int
	Rejected  int
	Flaps     int
	Optimizes int
	Swaps     int
	// TouchedRoutes sums the installed generations' route deltas
	// against their predecessors — 0 in full mode, where every swap
	// repacks the table from scratch.
	TouchedRoutes int
	// DecisionHash folds every placement (job leaves), rejection, and
	// optimizer decision (swap verdict, scores as exact float bits,
	// winning algorithm) across the seeds in order. The sweep errors
	// out if the modes' hashes diverge, so a returned result is
	// itself the differential proof.
	DecisionHash uint64
	// SwapNS (time from deciding a pass to serving the new
	// generation, per swap) and PlaceSeconds (total wall time inside
	// Submit) are observational wall-clock figures: excluded from the
	// hash and rendered only in bracketed lines.
	SwapNS       []int64
	PlaceSeconds float64
}

// churnFold mixes a decision into the running hash.
func churnFold(h uint64, vs ...uint64) uint64 {
	return hashutil.Mix(append([]uint64{h}, vs...)...)
}

// ChurnSweep runs the churn schedule on the paper's cost-reduced tree
// XGFT(2;16,16;1,10), one cell per (mode, seed) on the parallel
// engine. Every cell owns a telemetry-enabled d-mod-k fabric and a
// telemetry-policy scheduler; after every third arrival the tenant
// mix is synced into the fabric's counters and a threshold-gated
// optimizer pass runs — scoring by deltas in incremental mode, from
// scratch in full mode — while keyed link flaps degrade and heal the
// topology underneath. Decision hashes must match across modes for
// every seed or the sweep returns an error. Options.Seeds defaults to
// 4 here; the sweep is analytic-only.
func ChurnSweep(opt Options) ([]ChurnRow, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 4
	}
	opt = opt.withDefaults()
	if opt.Engine != Analytic {
		return nil, fmt.Errorf("experiments: the churn sweep supports only the analytic engine, not %q", opt.Engine)
	}
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		return nil, err
	}
	bytes := opt.MessageBytes
	if bytes <= 0 {
		bytes = 64 * 1024
	}
	seeds := opt.Seeds
	cells := make([]churnCell, len(churnModes)*seeds)
	err = opt.run(len(cells), func(idx int) error {
		m, s := idx/seeds, idx%seeds
		full := churnModes[m] == "full"
		seed := uint64(s) + 1
		// Every cell owns its table cache (unlike the other sweeps,
		// which share the process-wide one): the two modes must pay
		// identical table-construction work, or memo hits leaking
		// across cells would skew the wall-clock comparison that is
		// this sweep's point.
		cache := core.NewTableCache(64)
		f, err := fabric.New(fabric.Config{
			Topo:      tp,
			Algo:      core.NewDModK(tp),
			Cache:     cache,
			Telemetry: true,
			Evaluator: evaluate.NewAnalytic(cache),
		})
		if err != nil {
			return err
		}
		policy, err := sched.PolicyByName("telemetry")
		if err != nil {
			return err
		}
		sc, err := sched.New(sched.Config{Fabric: f, Policy: policy, Seed: seed, FullRescore: full})
		if err != nil {
			return err
		}
		schedule, err := churnSchedule(seed, bytes)
		if err != nil {
			return err
		}
		cell := &cells[idx]
		cell.hash = hashutil.Mix(churnSeed, seed)
		type active struct {
			id     uint64
			depart int64
		}
		var running []active
		healIn := 0
		for e, ev := range schedule {
			// The flap cycle: fail a keyed level-1 link before every
			// fifth arrival, heal it two arrivals later. Heal rebuilds
			// the configured healthy table, discarding any optimized
			// choice — the optimizer has to re-earn its swap, which is
			// exactly the churn the sweep measures.
			if healIn > 0 {
				if healIn--; healIn == 0 {
					if _, err := f.Heal(); err != nil {
						return err
					}
				}
			}
			if e%churnFlapEvery == churnFlapEvery-1 {
				li := int(hashutil.Mix(churnSeed, seed, uint64(e), 3) % uint64(tp.M(1)))
				lp := int(hashutil.Mix(churnSeed, seed, uint64(e), 4) % uint64(tp.W(1)))
				if _, err := f.FailLink(1, li, lp); err != nil {
					return err
				}
				cell.flaps++
				healIn = churnHealAfter
			}
			// Departures due before this arrival, in (depart, id) order.
			sort.Slice(running, func(i, j int) bool {
				if running[i].depart != running[j].depart {
					return running[i].depart < running[j].depart
				}
				return running[i].id < running[j].id
			})
			for len(running) > 0 && running[0].depart <= ev.arrive {
				if err := sc.Release(running[0].id); err != nil {
					return err
				}
				running = running[1:]
			}
			placeStart := time.Now() //lint:allow nondeterminism placement rate is observational (bracketed output only)
			job, err := sc.Submit(ev.spec)
			cell.placeSec += time.Since(placeStart).Seconds() //lint:allow nondeterminism placement rate is observational (bracketed output only)
			if errors.Is(err, sched.ErrNoCapacity) {
				cell.rejected++
				cell.hash = churnFold(cell.hash, 2, uint64(e))
			} else if err != nil {
				return err
			} else {
				cell.placed++
				cell.hash = churnFold(cell.hash, 1, job.ID)
				for _, l := range job.Leaves {
					cell.hash = churnFold(cell.hash, uint64(l))
				}
				running = append(running, active{id: job.ID, depart: ev.depart})
			}
			if e%churnOptEvery != churnOptEvery-1 {
				continue
			}
			// Re-fit the table to the tenant mix: sync the counters,
			// then one threshold-gated pass — the delta path in
			// incremental mode, forced rebuilds in full mode.
			sc.SyncTelemetry()
			optStart := time.Now() //lint:allow nondeterminism time-to-new-generation is observational (bracketed output only)
			res, err := f.Optimize(fabric.OptimizeConfig{
				Threshold:   churnThreshold,
				Seed:        seed,
				Reset:       true,
				FullRebuild: full,
			})
			optNS := time.Since(optStart).Nanoseconds() //lint:allow nondeterminism time-to-new-generation is observational (bracketed output only)
			if err != nil {
				return err
			}
			cell.optimizes++
			cell.hash = churnFold(cell.hash, 3,
				boolBit(res.Swapped),
				math.Float64bits(res.Current),
				math.Float64bits(res.BestSlowdown))
			for _, c := range res.Best {
				cell.hash = churnFold(cell.hash, uint64(c))
			}
			if res.Swapped {
				cell.swaps++
				cell.touched += res.SwapTouched
				cell.swapNS = append(cell.swapNS, optNS)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChurnRow, len(churnModes))
	for m, mode := range churnModes {
		row := ChurnRow{Mode: mode, DecisionHash: hashutil.Mix(churnSeed)}
		for s := 0; s < seeds; s++ {
			c := cells[m*seeds+s]
			row.Placed += c.placed
			row.Rejected += c.rejected
			row.Flaps += c.flaps
			row.Optimizes += c.optimizes
			row.Swaps += c.swaps
			row.TouchedRoutes += c.touched
			row.DecisionHash = churnFold(row.DecisionHash, c.hash)
			row.SwapNS = append(row.SwapNS, c.swapNS...)
			row.PlaceSeconds += c.placeSec
		}
		rows[m] = row
	}
	// The differential check: both modes must have made the same
	// decisions, seed by seed. Hashes fold exact float bits, so this
	// is bit-identity, not approximate agreement.
	for s := 0; s < seeds; s++ {
		inc, ful := cells[s], cells[seeds+s]
		if inc.hash != ful.hash {
			return nil, fmt.Errorf("experiments: churn seed %d: incremental and full modes diverged (hash %#x vs %#x)", s+1, inc.hash, ful.hash)
		}
	}
	return rows, nil
}

// boolBit maps a bool to a hashable word.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// swapPercentileNS returns the p-th percentile (nearest-rank) of the
// per-swap latencies.
func swapPercentileNS(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// WriteChurnSweep renders the churn sweep: deterministic decision
// columns first, then the wall-clock figures in bracketed lines
// (stripped by the CLI determinism check, like every timing line).
func WriteChurnSweep(w io.Writer, rows []ChurnRow) {
	fmt.Fprintln(w, "Churn convergence — XGFT(2;16,16;1,10), telemetry placement + threshold-gated re-optimization under link flaps")
	fmt.Fprintf(w, "%-12s %6s %8s %6s %9s %6s %8s  %s\n",
		"mode", "placed", "rejected", "flaps", "optimizes", "swaps", "touched", "decision-hash")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %8d %6d %9d %6d %8d  %#016x\n",
			r.Mode, r.Placed, r.Rejected, r.Flaps, r.Optimizes, r.Swaps, r.TouchedRoutes, r.DecisionHash)
	}
	for _, r := range rows {
		if len(r.SwapNS) == 0 {
			fmt.Fprintf(w, "[%s: no swaps]\n", r.Mode)
			continue
		}
		p50 := float64(swapPercentileNS(r.SwapNS, 0.50)) / 1e6
		p99 := float64(swapPercentileNS(r.SwapNS, 0.99)) / 1e6
		rate := 0.0
		if r.PlaceSeconds > 0 {
			rate = float64(r.Placed) / r.PlaceSeconds
		}
		fmt.Fprintf(w, "[%s: time-to-new-generation p50=%.1fms p99=%.1fms over %d swaps, %.0f placements/s]\n",
			r.Mode, p50, p99, len(r.SwapNS), rate)
	}
}
