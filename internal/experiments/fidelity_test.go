package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFidelitySweepRankAgreement(t *testing.T) {
	rows, err := FidelitySweep(Options{MessageBytes: 8192, Cache: core.NewTableCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d schedules, want 3", len(rows))
	}
	agreed := 0
	for _, r := range rows {
		if len(r.Cells) != len(fidelitySchemes) {
			t.Fatalf("%s: %d cells for %d schemes", r.Schedule, len(r.Cells), len(fidelitySchemes))
		}
		for _, c := range r.Cells {
			if c.Analytic < 1 || c.Venus <= 0 {
				t.Errorf("%s/%s: implausible scores analytic=%v venus=%v", r.Schedule, c.Scheme, c.Analytic, c.Venus)
			}
			if c.RelErr > 0.5 {
				t.Errorf("%s/%s: relative error %.2f implausibly large", r.Schedule, c.Scheme, c.RelErr)
			}
		}
		if r.Agree {
			agreed++
		}
	}
	// The whole system steers by the analytic bound; it must predict
	// the simulated winner on at least 2 of the 3 schedules.
	if agreed < 2 {
		t.Errorf("analytic and venus agree on only %d/3 schedules: %+v", agreed, rows)
	}
}

func TestFidelitySweepParallelInvariance(t *testing.T) {
	run := func(par int) []FidelityRow {
		rows, err := FidelitySweep(Options{
			MessageBytes: 4096,
			Parallelism:  par,
			Cache:        core.NewTableCache(64),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("fidelity rows differ across parallelism:\n%+v\nvs\n%+v", seq, par)
	}
	var a, b bytes.Buffer
	WriteFidelitySweep(&a, seq)
	WriteFidelitySweep(&b, par)
	if a.String() != b.String() {
		t.Errorf("rendered fidelity tables differ across parallelism")
	}
	if !strings.Contains(a.String(), "rank agreement:") {
		t.Errorf("rendered table missing the rank-agreement footer:\n%s", a.String())
	}
}

func TestFidelitySweepRejectsSimulatedEngine(t *testing.T) {
	if _, err := FidelitySweep(Options{Engine: Simulated}); err == nil {
		t.Error("Simulated engine accepted")
	}
}
