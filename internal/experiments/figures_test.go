package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/xgft"
)

// fastOpt keeps test sweeps small: a few topologies, few seeds,
// analytic engine.
func fastOpt() Options {
	return Options{
		Engine:   Analytic,
		Seeds:    5,
		W2Values: []int{16, 10, 4, 1},
	}
}

func TestAppByName(t *testing.T) {
	for _, name := range []string{"wrf", "cg", "WRF-256", "CG.D-128"} {
		app, err := AppByName(name)
		if err != nil {
			t.Errorf("AppByName(%q): %v", name, err)
			continue
		}
		if app.Ranks == 0 || len(app.Phases(0)) == 0 {
			t.Errorf("app %q is empty", name)
		}
	}
	if _, err := AppByName("hpl"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAppPhasesScaleBytes(t *testing.T) {
	app := CGApp()
	small := app.Phases(100)
	if small[0].Flows[0].Bytes != 100 {
		t.Errorf("scaled phase bytes = %d", small[0].Flows[0].Bytes)
	}
	def := app.Phases(0)
	if def[0].Flows[0].Bytes != app.DefaultBytes {
		t.Errorf("default phase bytes = %d", def[0].Flows[0].Bytes)
	}
}

func TestAppTrace(t *testing.T) {
	for _, app := range []*App{WRFApp(), CGApp()} {
		tr, err := app.Trace(1024)
		if err != nil {
			t.Fatalf("%s trace: %v", app.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s trace invalid: %v", app.Name, err)
		}
	}
}

func TestFigure2ShapesWRF(t *testing.T) {
	rows, err := Figure2(WRFApp(), fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0] // w2 = 16
	// Paper Fig. 2a: on the full tree, Random is worse than the
	// mod-k schemes, which match Colored.
	if full.Random <= full.DModK {
		t.Errorf("w2=16: random %.2f not worse than d-mod-k %.2f", full.Random, full.DModK)
	}
	if full.DModK > full.Colored*1.05 {
		t.Errorf("w2=16: d-mod-k %.2f above colored %.2f", full.DModK, full.Colored)
	}
	// Slimming to w2=1 degrades every scheme heavily.
	last := rows[len(rows)-1]
	if last.DModK < 8 || last.Random < 8 {
		t.Errorf("w2=1 slowdowns %.2f/%.2f too small", last.DModK, last.Random)
	}
}

func TestFigure2ShapesCG(t *testing.T) {
	rows, err := Figure2(CGApp(), fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	full := rows[0]
	// Paper Fig. 2b: the mod-k schemes hit the pathology (~2.2x),
	// Random sits between them and Colored (~1).
	if full.DModK < 2 {
		t.Errorf("w2=16: d-mod-k %.2f does not show the pathology", full.DModK)
	}
	if full.SModK != full.DModK {
		t.Errorf("w2=16: s-mod-k %.2f != d-mod-k %.2f on symmetric CG", full.SModK, full.DModK)
	}
	if full.Random >= full.DModK {
		t.Errorf("w2=16: random %.2f not better than d-mod-k %.2f", full.Random, full.DModK)
	}
	if full.Colored > 1.1 {
		t.Errorf("w2=16: colored %.2f, want ~1", full.Colored)
	}
}

func TestFigure5ShapesCG(t *testing.T) {
	rows, err := Figure5(CGApp(), fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	full := rows[0]
	// Paper Fig. 5b: r-NCA-u/d avoid the mod-k pathology and their
	// medians beat Random's.
	if full.RNCAUp.Median >= full.DModK {
		t.Errorf("r-NCA-u median %.2f not better than d-mod-k %.2f", full.RNCAUp.Median, full.DModK)
	}
	if full.RNCAUp.Median > full.Random.Median {
		t.Errorf("r-NCA-u median %.2f worse than random %.2f", full.RNCAUp.Median, full.Random.Median)
	}
	if full.RNCADn.Median > full.Random.Median {
		t.Errorf("r-NCA-d median %.2f worse than random %.2f", full.RNCADn.Median, full.Random.Median)
	}
}

func TestFigure5ShapesWRF(t *testing.T) {
	rows, err := Figure5(WRFApp(), fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	full := rows[0]
	// Paper Fig. 5a: r-NCA-* stay below Random on WRF.
	if full.RNCAUp.Median > full.Random.Median {
		t.Errorf("r-NCA-u median %.2f worse than random %.2f", full.RNCAUp.Median, full.Random.Median)
	}
}

func TestFigure5SimulatedEngineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated engine in -short mode")
	}
	opt := Options{
		Engine:       Simulated,
		Seeds:        2,
		MessageBytes: 8 * 1024,
		W2Values:     []int{16},
	}
	rows, err := Figure5(CGApp(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DModK < 1.5 {
		t.Errorf("simulated d-mod-k slowdown %.2f, want pathology > 1.5", rows[0].DModK)
	}
	if rows[0].RNCAUp.Median >= rows[0].DModK {
		t.Errorf("simulated r-NCA-u %.2f not better than d-mod-k %.2f", rows[0].RNCAUp.Median, rows[0].DModK)
	}
}

func TestFigure4Shapes(t *testing.T) {
	// Fig. 4a: flat 3840 for mod-k at w2=16.
	a, err := Figure4(16, Options{Seeds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for root, c := range a.SModK {
		if c != 3840 {
			t.Errorf("4a s-mod-k root %d = %d, want 3840", root, c)
		}
	}
	// Fig. 4b: bimodal for mod-k at w2=10; r-NCA medians closer to
	// the 6144 mean than the mod-k extremes.
	b, err := Figure4(10, Options{Seeds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Roots != 10 {
		t.Fatalf("roots = %d", b.Roots)
	}
	for root := 0; root < 6; root++ {
		if b.DModK[root] != 7680 {
			t.Errorf("4b d-mod-k root %d = %d, want 7680", root, b.DModK[root])
		}
	}
	for root := 6; root < 10; root++ {
		if b.DModK[root] != 3840 {
			t.Errorf("4b d-mod-k root %d = %d, want 3840", root, b.DModK[root])
		}
	}
	for root := 0; root < 10; root++ {
		med := b.RNCAUp[root].Median
		if med < 4500 || med > 7500 {
			t.Errorf("4b r-NCA-u root %d median %.0f far from mean 6144", root, med)
		}
	}
}

func TestFigure3(t *testing.T) {
	res, err := Figure3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseFactor) != 5 {
		t.Fatalf("phases = %d", len(res.PhaseFactor))
	}
	for i := 0; i < 4; i++ {
		if res.PhaseFactor[i] != 1 {
			t.Errorf("local phase %d factor %.2f, want 1", i+1, res.PhaseFactor[i])
		}
	}
	if res.PhaseFactor[4] < 6.5 || res.PhaseFactor[4] > 7.5 {
		t.Errorf("transpose factor %.2f, want ~7", res.PhaseFactor[4])
	}
	if len(res.Matrix) != 128 {
		t.Errorf("matrix size %d", len(res.Matrix))
	}
}

func TestTable1(t *testing.T) {
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1(tp)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Nodes != 256 || rows[1].Nodes != 16 || rows[2].Nodes != 10 {
		t.Errorf("node counts = %d/%d/%d", rows[0].Nodes, rows[1].Nodes, rows[2].Nodes)
	}
	if rows[0].LabelForm != "<M2,M1>" {
		t.Errorf("leaf label form = %s", rows[0].LabelForm)
	}
	if rows[1].LabelForm != "<M2,W1>" {
		t.Errorf("switch label form = %s", rows[1].LabelForm)
	}
	if rows[2].LabelForm != "<W2,W1>" {
		t.Errorf("root label form = %s", rows[2].LabelForm)
	}
	if rows[0].UpLinks != 256 || rows[1].UpLinks != 160 {
		t.Errorf("up links = %d/%d", rows[0].UpLinks, rows[1].UpLinks)
	}
}

func TestRenderers(t *testing.T) {
	opt := fastOpt()
	opt.W2Values = []int{16, 1}
	opt.Seeds = 2
	app := CGApp()
	f2, err := Figure2(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteFigure2(&buf, app, f2)
	if !strings.Contains(buf.String(), "d-mod-k") {
		t.Error("figure 2 text missing header")
	}
	buf.Reset()
	WriteFigure2CSV(&buf, f2)
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("figure 2 CSV has %d lines, want 3", lines)
	}

	f5, err := Figure5(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure5(&buf, app, f5)
	if !strings.Contains(buf.String(), "r-NCA-u") {
		t.Error("figure 5 text missing header")
	}
	buf.Reset()
	WriteFigure5CSV(&buf, f5)
	if !strings.Contains(buf.String(), "rncau_med") {
		t.Error("figure 5 CSV missing header")
	}

	f4, err := Figure4(10, Options{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure4(&buf, f4)
	if !strings.Contains(buf.String(), "NCA") {
		t.Error("figure 4 text missing header")
	}

	f3, err := Figure3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure3(&buf, f3)
	if !strings.Contains(buf.String(), "phase 5") {
		t.Error("figure 3 text missing phases")
	}

	tp, _ := xgft.NewSlimmedTree(16, 16, 10)
	buf.Reset()
	WriteTable1(&buf, tp, Table1(tp))
	if !strings.Contains(buf.String(), "Eq. 1") {
		t.Error("table 1 text missing Eq. 1")
	}
}

func TestRunCellsParallelAndErrors(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := runCells(20, 4, nil, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Errorf("visited %d of 20", len(seen))
	}
	wantErr := runCells(10, 3, nil, func(i int) error {
		if i == 7 {
			return errTest
		}
		return nil
	})
	if wantErr != errTest {
		t.Errorf("error not propagated: %v", wantErr)
	}
}

var errTest = errDummy{}

type errDummy struct{}

func (errDummy) Error() string { return "test error" }
