package dimemas

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Mapping strategies assign MPI ranks to leaf nodes. The paper maps
// processes sequentially ("the mapping of processes to nodes
// (sequential)"); the alternatives here exist to study how placement
// interacts with routing (locality-preserving vs locality-destroying).

// LinearMapping places rank r on leaf r — the paper's sequential
// mapping and the engine default.
func LinearMapping(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// RoundRobinMapping scatters consecutive ranks across first-level
// switches: rank r goes to switch r mod S, local slot r / S. It
// destroys the switch locality that patterns like CG's butterfly
// phases rely on, and is the classic "interleaved" placement.
func RoundRobinMapping(t *xgft.Topology, n int) ([]int, error) {
	if n > t.Leaves() {
		return nil, fmt.Errorf("dimemas: %d ranks do not fit %d leaves", n, t.Leaves())
	}
	if t.Height() < 1 {
		return nil, fmt.Errorf("dimemas: topology has no switches")
	}
	switches := t.NodesAt(1)
	perSwitch := t.M(0)
	m := make([]int, n)
	for r := 0; r < n; r++ {
		sw := r % switches
		slot := r / switches
		if slot >= perSwitch {
			return nil, fmt.Errorf("dimemas: round-robin overflow: rank %d needs slot %d of %d", r, slot, perSwitch)
		}
		m[r] = sw*perSwitch + slot
	}
	return m, nil
}

// RandomMapping places ranks on a uniformly random subset of leaves.
// The shuffle is a keyed splitmix64 permutation (pattern.KeyedPerm
// under a domain-separated seed), so the placement is a pure function
// of (topology, n, seed) on every platform and Go version.
func RandomMapping(t *xgft.Topology, n int, seed int64) ([]int, error) {
	if n > t.Leaves() {
		return nil, fmt.Errorf("dimemas: %d ranks do not fit %d leaves", n, t.Leaves())
	}
	perm := pattern.KeyedPerm(t.Leaves(), hashutil.Mix(0xd13e3a5, uint64(seed)))
	return []int(perm[:n]), nil
}

// MappingFromLeaves places rank r on leaves[r]: the mapping that
// replays a trace onto an arbitrary allocation, such as one handed
// out by the job scheduler. leaves must hold at least n distinct
// non-negative entries; extra entries are ignored, so a scheduler can
// pass a whole allocation for a smaller rank count.
func MappingFromLeaves(leaves []int, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("dimemas: mapping needs at least one rank, got %d", n)
	}
	if n > len(leaves) {
		return nil, fmt.Errorf("dimemas: %d ranks do not fit %d leaves", n, len(leaves))
	}
	m := make([]int, n)
	seen := make(map[int]bool, n)
	for r := 0; r < n; r++ {
		l := leaves[r]
		if l < 0 {
			return nil, fmt.Errorf("dimemas: leaf %d for rank %d is negative", l, r)
		}
		if seen[l] {
			return nil, fmt.Errorf("dimemas: leaf %d assigned to two ranks", l)
		}
		seen[l] = true
		m[r] = l
	}
	return m, nil
}

// MappingByName resolves "linear", "round-robin", "random" or an
// explicit allocation "leaves:0,17,33,..." (the command-line
// selector).
func MappingByName(name string, t *xgft.Topology, n int, seed int64) ([]int, error) {
	if list, ok := strings.CutPrefix(name, "leaves:"); ok {
		parts := strings.Split(list, ",")
		leaves := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("dimemas: bad leaf %q in mapping %q", p, name)
			}
			if v >= t.Leaves() {
				return nil, fmt.Errorf("dimemas: leaf %d out of range [0,%d)", v, t.Leaves())
			}
			leaves[i] = v
		}
		return MappingFromLeaves(leaves, n)
	}
	switch name {
	case "", "linear", "sequential":
		return LinearMapping(n), nil
	case "round-robin", "rr":
		return RoundRobinMapping(t, n)
	case "random":
		return RandomMapping(t, n, seed)
	default:
		return nil, fmt.Errorf("dimemas: unknown mapping %q (want linear, round-robin, random or leaves:0,4,...)", name)
	}
}
