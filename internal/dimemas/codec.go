package dimemas

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/eventq"
)

// Traces serialize to a line-delimited JSON format so post-mortem
// traces can be stored, inspected, and replayed later — the role of
// the Dimemas trace files in the paper's methodology. The format is
// versioned: a header object followed by one object per (rank, op).
//
//	{"format":"xgft-trace","version":1,"ranks":2}
//	{"rank":0,"op":"send","dst":1,"bytes":1024,"tag":0}
//	{"rank":1,"op":"recv","src":0,"tag":0}
const (
	traceFormat  = "xgft-trace"
	traceVersion = 1
)

type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Ranks   int    `json:"ranks"`
}

type traceLine struct {
	Rank  int    `json:"rank"`
	Op    string `json:"op"`
	Dst   *int   `json:"dst,omitempty"`
	Src   *int   `json:"src,omitempty"`
	Bytes *int64 `json:"bytes,omitempty"`
	Tag   *int   `json:"tag,omitempty"`
	Req   *int   `json:"req,omitempty"`
	Dur   *int64 `json:"dur,omitempty"`
}

// WriteTrace serializes the trace. The trace is validated first.
func WriteTrace(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(traceHeader{Format: traceFormat, Version: traceVersion, Ranks: t.NumRanks()}); err != nil {
		return err
	}
	for rank, ops := range t.Ranks {
		for _, op := range ops {
			line, err := encodeOp(rank, op)
			if err != nil {
				return err
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}

func encodeOp(rank int, op Op) (traceLine, error) {
	l := traceLine{Rank: rank}
	switch o := op.(type) {
	case Compute:
		l.Op = "compute"
		d := int64(o.Dur)
		l.Dur = &d
	case Send:
		l.Op = "send"
		l.Dst, l.Bytes, l.Tag = &o.Dst, &o.Bytes, &o.Tag
	case ISend:
		l.Op = "isend"
		l.Dst, l.Bytes, l.Tag, l.Req = &o.Dst, &o.Bytes, &o.Tag, &o.Req
	case Recv:
		l.Op = "recv"
		l.Src, l.Tag = &o.Src, &o.Tag
	case Wait:
		l.Op = "wait"
		l.Req = &o.Req
	case WaitAll:
		l.Op = "waitall"
	case Barrier:
		l.Op = "barrier"
	default:
		return l, fmt.Errorf("dimemas: cannot encode op %T", op)
	}
	return l, nil
}

// ReadTrace parses the WriteTrace format and validates the result.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("dimemas: reading trace header: %w", err)
	}
	if hdr.Format != traceFormat {
		return nil, fmt.Errorf("dimemas: not a trace file (format %q)", hdr.Format)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("dimemas: unsupported trace version %d (want %d)", hdr.Version, traceVersion)
	}
	if hdr.Ranks <= 0 {
		return nil, fmt.Errorf("dimemas: trace declares %d ranks", hdr.Ranks)
	}
	t := &Trace{Ranks: make([][]Op, hdr.Ranks)}
	for {
		var line traceLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dimemas: reading trace line: %w", err)
		}
		if line.Rank < 0 || line.Rank >= hdr.Ranks {
			return nil, fmt.Errorf("dimemas: trace line for rank %d out of %d", line.Rank, hdr.Ranks)
		}
		op, err := decodeOp(line)
		if err != nil {
			return nil, err
		}
		t.Ranks[line.Rank] = append(t.Ranks[line.Rank], op)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeOp(l traceLine) (Op, error) {
	need := func(name string, got bool) error {
		if !got {
			return fmt.Errorf("dimemas: op %q missing field %q", l.Op, name)
		}
		return nil
	}
	switch l.Op {
	case "compute":
		if err := need("dur", l.Dur != nil); err != nil {
			return nil, err
		}
		return Compute{Dur: eventq.Time(*l.Dur)}, nil
	case "send":
		if err := need("dst", l.Dst != nil); err != nil {
			return nil, err
		}
		if err := need("bytes", l.Bytes != nil); err != nil {
			return nil, err
		}
		return Send{Dst: *l.Dst, Bytes: *l.Bytes, Tag: intOr(l.Tag, 0)}, nil
	case "isend":
		if err := need("dst", l.Dst != nil); err != nil {
			return nil, err
		}
		if err := need("bytes", l.Bytes != nil); err != nil {
			return nil, err
		}
		return ISend{Dst: *l.Dst, Bytes: *l.Bytes, Tag: intOr(l.Tag, 0), Req: intOr(l.Req, 0)}, nil
	case "recv":
		if err := need("src", l.Src != nil); err != nil {
			return nil, err
		}
		return Recv{Src: *l.Src, Tag: intOr(l.Tag, 0)}, nil
	case "wait":
		if err := need("req", l.Req != nil); err != nil {
			return nil, err
		}
		return Wait{Req: *l.Req}, nil
	case "waitall":
		return WaitAll{}, nil
	case "barrier":
		return Barrier{}, nil
	default:
		return nil, fmt.Errorf("dimemas: unknown op %q", l.Op)
	}
}

func intOr(p *int, def int) int {
	if p == nil {
		return def
	}
	return *p
}
