package dimemas

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCodecRoundTripAllOps(t *testing.T) {
	tr := &Trace{Ranks: [][]Op{
		{
			Compute{Dur: 1234},
			Send{Dst: 1, Bytes: 1024, Tag: 3},
			ISend{Dst: 1, Bytes: 2048, Tag: 4, Req: 9},
			Recv{Src: 1, Tag: 5},
			Wait{Req: 9},
			WaitAll{},
			Barrier{},
		},
		{
			Recv{Src: 0, Tag: 3},
			Recv{Src: 0, Tag: 4},
			Send{Dst: 0, Bytes: 512, Tag: 5},
			Barrier{},
		},
	}}
	got := roundTrip(t, tr)
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip changed trace:\n got %#v\nwant %#v", got, tr)
	}
}

func TestCodecRoundTripAnySource(t *testing.T) {
	tr := &Trace{Ranks: [][]Op{
		{Recv{Src: AnySource, Tag: 0}},
		{Send{Dst: 0, Bytes: 64, Tag: 0}},
	}}
	got := roundTrip(t, tr)
	if got.Ranks[0][0].(Recv).Src != AnySource {
		t.Error("AnySource not preserved")
	}
}

func TestCodecRejectsInvalidTraceOnWrite(t *testing.T) {
	bad := &Trace{Ranks: [][]Op{{Send{Dst: 99, Bytes: 1}}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, bad); err == nil {
		t.Error("invalid trace written")
	}
}

func TestCodecReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"wrong format":    `{"format":"nope","version":1,"ranks":1}`,
		"wrong version":   `{"format":"xgft-trace","version":9,"ranks":1}`,
		"zero ranks":      `{"format":"xgft-trace","version":1,"ranks":0}`,
		"rank overflow":   `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":5,"op":"barrier"}`,
		"unknown op":      `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"frobnicate"}`,
		"missing field":   `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"send","bytes":10}`,
		"missing bytes":   `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"send","dst":0}`,
		"missing src":     `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"recv"}`,
		"missing req":     `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"wait"}`,
		"missing dur":     `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"compute"}`,
		"invalid content": `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `{"rank":0,"op":"send","dst":7,"bytes":10}`,
		"garbage line":    `{"format":"xgft-trace","version":1,"ranks":1}` + "\n" + `not json`,
	}
	for name, text := range cases {
		if _, err := ReadTrace(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCodecDefaultsOptionalFields(t *testing.T) {
	text := `{"format":"xgft-trace","version":1,"ranks":2}` + "\n" +
		`{"rank":0,"op":"send","dst":1,"bytes":10}` + "\n" +
		`{"rank":1,"op":"recv","src":0}` + "\n"
	tr, err := ReadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ranks[0][0].(Send).Tag != 0 {
		t.Error("default tag not 0")
	}
}

func TestCodecRoundTripReplaysIdentically(t *testing.T) {
	// A serialized-and-reloaded trace must replay to the exact same
	// completion time.
	tp, err := xgft.NewSlimmedTree(16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Ranks: make([][]Op, 32)}
	for r := 0; r < 32; r++ {
		dst := (r + 5) % 32
		src := (r - 5 + 32) % 32
		tr.Ranks[r] = []Op{
			Compute{Dur: 100},
			ISend{Dst: dst, Bytes: 8 * 1024, Tag: 0, Req: 0},
			Recv{Src: src, Tag: 0},
			WaitAll{},
		}
	}
	loaded := roundTrip(t, tr)
	cfg := Config{Net: venus.DefaultConfig()}
	a, err := Replay(tr, tp, core.NewDModK(tp), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(loaded, tp, core.NewDModK(tp), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("original replays to %d, reloaded to %d", a, b)
	}
}
