package dimemas

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func paperTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func cfg() Config { return Config{Net: venus.DefaultConfig()} }

func replayOn(t testing.TB, tr *Trace, tp *xgft.Topology) eventq.Time {
	t.Helper()
	end, err := Replay(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestValidateTrace(t *testing.T) {
	good := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: 10, Tag: 0}, Barrier{}},
		{Recv{Src: 0, Tag: 0}, Barrier{}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	bad := []*Trace{
		{},
		{Ranks: [][]Op{{Compute{Dur: -1}}}},
		{Ranks: [][]Op{{Send{Dst: 5}}}},
		{Ranks: [][]Op{{Send{Dst: 0, Bytes: -1}}}},
		{Ranks: [][]Op{{ISend{Dst: 9}}}},
		{Ranks: [][]Op{{Recv{Src: 7}}}},
		{Ranks: [][]Op{{Barrier{}}, {}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestTraceCounters(t *testing.T) {
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: 100}, ISend{Dst: 1, Bytes: 50, Req: 0}, WaitAll{}},
		{Recv{Src: 0}, Recv{Src: 0}},
	}}
	if got := tr.CountMessages(); got != 2 {
		t.Errorf("messages = %d, want 2", got)
	}
	if got := tr.TotalBytes(); got != 150 {
		t.Errorf("bytes = %d, want 150", got)
	}
}

func TestPingPong(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: 1024, Tag: 1}, Recv{Src: 1, Tag: 2}},
		{Recv{Src: 0, Tag: 1}, Send{Dst: 0, Bytes: 1024, Tag: 2}},
	}}
	end := replayOn(t, tr, tp)
	// Two sequential same-switch messages: 2 x 2 hops x (4096+32).
	want := eventq.Time(2 * 2 * (4096 + 32))
	if end != want {
		t.Errorf("ping-pong took %d ns, want %d", end, want)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{{Compute{Dur: 12345}}}}
	end := replayOn(t, tr, tp)
	if end != 12345 {
		t.Errorf("compute-only trace ended at %d", end)
	}
}

func TestISendOverlapsBothDirections(t *testing.T) {
	// Two ranks exchanging simultaneously with ISend finish in about
	// one message time (full duplex), not two.
	tp := paperTree(t, 16)
	const bytes = 64 * 1024
	tr := &Trace{Ranks: [][]Op{
		{ISend{Dst: 1, Bytes: bytes, Req: 0}, Recv{Src: 1}, WaitAll{}},
		{ISend{Dst: 0, Bytes: bytes, Req: 0}, Recv{Src: 0}, WaitAll{}},
	}}
	end := replayOn(t, tr, tp)
	oneWay := eventq.Time(bytes/8*32) + 4096 + 2*32
	if end > oneWay+oneWay/8 {
		t.Errorf("full-duplex exchange took %d ns, want about %d", end, oneWay)
	}
}

func TestBlockingSendSerializes(t *testing.T) {
	// The same exchange with blocking semantics deadlock-free order:
	// rank 0 sends then receives; rank 1 receives then sends; total is
	// two sequential message times.
	tp := paperTree(t, 16)
	const bytes = 64 * 1024
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: bytes}, Recv{Src: 1}},
		{Recv{Src: 0}, Send{Dst: 0, Bytes: bytes}},
	}}
	end := replayOn(t, tr, tp)
	oneWay := eventq.Time(bytes / 8 * 32)
	if end < 2*oneWay {
		t.Errorf("sequential exchange took %d ns, want at least %d", end, 2*oneWay)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Rank 1 computes 1 ms before the barrier; rank 0's post-barrier
	// send cannot start earlier.
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Barrier{}, Send{Dst: 1, Bytes: 1024, Tag: 0}},
		{Compute{Dur: 1_000_000}, Barrier{}, Recv{Src: 0, Tag: 0}},
	}}
	end := replayOn(t, tr, tp)
	if end < 1_000_000 {
		t.Errorf("barrier did not hold rank 0: end %d", end)
	}
}

func TestConsecutiveBarriers(t *testing.T) {
	tp := paperTree(t, 16)
	ops := []Op{Barrier{}, Barrier{}, Barrier{}}
	tr := &Trace{Ranks: [][]Op{ops, ops, ops}}
	if _, err := Replay(tr, tp, core.NewDModK(tp), cfg()); err != nil {
		t.Fatalf("consecutive barriers deadlocked: %v", err)
	}
}

func TestWaitSpecificRequest(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{
			ISend{Dst: 1, Bytes: 1024, Tag: 0, Req: 7},
			Wait{Req: 7},
			Send{Dst: 1, Bytes: 1024, Tag: 1},
		},
		{Recv{Src: 0, Tag: 0}, Recv{Src: 0, Tag: 1}},
	}}
	if _, err := Replay(tr, tp, core.NewDModK(tp), cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceRecv(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Recv{Src: AnySource, Tag: 5}, Recv{Src: AnySource, Tag: 5}},
		{Send{Dst: 0, Bytes: 512, Tag: 5}},
		{Send{Dst: 0, Bytes: 512, Tag: 5}},
	}}
	if _, err := Replay(tr, tp, core.NewDModK(tp), cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 0, Bytes: 4096, Tag: 0}, Recv{Src: 0, Tag: 0}},
	}}
	if _, err := Replay(tr, tp, core.NewDModK(tp), cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestStalledReplayReportsError(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Recv{Src: 1, Tag: 0}}, // never sent
		{},
	}}
	if _, err := Replay(tr, tp, core.NewDModK(tp), cfg()); err == nil {
		t.Error("stalled replay succeeded")
	}
}

func TestMappingValidation(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{{}, {}}}
	c := cfg()
	c.Mapping = []int{0}
	if _, err := NewEngine(tr, tp, core.NewDModK(tp), c); err == nil {
		t.Error("short mapping accepted")
	}
	c.Mapping = []int{0, 0}
	if _, err := NewEngine(tr, tp, core.NewDModK(tp), c); err == nil {
		t.Error("duplicate mapping accepted")
	}
	c.Mapping = []int{0, 999}
	if _, err := NewEngine(tr, tp, core.NewDModK(tp), c); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestCustomMappingChangesLocality(t *testing.T) {
	// Ranks 0,1 on the same switch vs on different switches: the
	// same-switch mapping is strictly faster (2 vs 4 hops).
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: 64 * 1024, Tag: 0}},
		{Recv{Src: 0, Tag: 0}},
	}}
	local, err := Replay(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.Mapping = []int{0, 16}
	eng, err := NewEngine(tr, tp, core.NewDModK(tp), c)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if remote <= local {
		t.Errorf("remote mapping %d not slower than local %d", remote, local)
	}
}

func TestTooManyRanks(t *testing.T) {
	tp := paperTree(t, 16)
	tr := &Trace{Ranks: make([][]Op, 300)}
	if _, err := NewEngine(tr, tp, core.NewDModK(tp), cfg()); err == nil {
		t.Error("300 ranks on 256 leaves accepted")
	}
}

func TestReplayOnCrossbar(t *testing.T) {
	tr := &Trace{Ranks: [][]Op{
		{Send{Dst: 1, Bytes: 8 * 1024, Tag: 0}},
		{Recv{Src: 0, Tag: 0}},
	}}
	end, err := ReplayOnCrossbar(tr, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("crossbar replay took no time")
	}
}

func TestMeasuredSlowdownAtLeastOne(t *testing.T) {
	tp := paperTree(t, 4)
	tr := &Trace{Ranks: make([][]Op, 64)}
	for r := 0; r < 64; r++ {
		dst := (r + 17) % 64
		src := (r - 17 + 64) % 64
		tr.Ranks[r] = []Op{
			ISend{Dst: dst, Bytes: 16 * 1024, Tag: 0, Req: 0},
			Recv{Src: src, Tag: 0},
			WaitAll{},
		}
	}
	s, err := MeasuredSlowdown(tr, tp, core.NewRandom(tp, 3), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.99 {
		t.Errorf("slowdown %.3f < 1", s)
	}
}
