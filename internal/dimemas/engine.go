package dimemas

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/venus"
	"repro/internal/xgft"
)

// Engine replays a trace over a simulated network. One Engine per
// run; not safe for concurrent use.
type Engine struct {
	trace *Trace
	sim   *venus.Sim
	algo  core.Algorithm
	// mapping[r] is the leaf node hosting rank r (the paper maps
	// processes to nodes sequentially).
	mapping []int

	ranks []*rankState

	barrierCount int

	finished int
}

type rankState struct {
	id      int
	ops     []Op
	pc      int
	blocked blockKind

	// Receive matching.
	wantSrc, wantTag int
	arrived          map[msgKey]int // delivered-but-unconsumed counts

	// Send tracking.
	outstanding int          // incomplete ISends
	reqDone     map[int]bool // completed ISend requests
	waitReq     int
}

type blockKind int

const (
	notBlocked blockKind = iota
	blockedCompute
	blockedRecv
	blockedSendDone // blocking send in flight
	blockedWait
	blockedWaitAll
	blockedBarrier
	finishedRank
)

type msgKey struct {
	src, tag int
}

// Config selects the network model of a replay.
type Config struct {
	Net venus.Config
	// Mapping optionally overrides the sequential rank->leaf mapping.
	Mapping []int
}

// NewEngine builds a replay of the trace over the topology with the
// given routing algorithm.
func NewEngine(t *Trace, topo *xgft.Topology, algo core.Algorithm, cfg Config) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NumRanks()
	if n > topo.Leaves() {
		return nil, fmt.Errorf("dimemas: %d ranks do not fit %d leaves", n, topo.Leaves())
	}
	mapping := cfg.Mapping
	if mapping == nil {
		mapping = make([]int, n)
		for i := range mapping {
			mapping[i] = i
		}
	}
	if len(mapping) != n {
		return nil, fmt.Errorf("dimemas: mapping covers %d ranks, trace has %d", len(mapping), n)
	}
	node2rank := make(map[int]int, n)
	for r, node := range mapping {
		if node < 0 || node >= topo.Leaves() {
			return nil, fmt.Errorf("dimemas: rank %d mapped to node %d out of range", r, node)
		}
		if prev, dup := node2rank[node]; dup {
			return nil, fmt.Errorf("dimemas: ranks %d and %d share node %d", prev, r, node)
		}
		node2rank[node] = r
	}
	sim, err := venus.New(topo, cfg.Net)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		trace:   t,
		sim:     sim,
		algo:    algo,
		mapping: mapping,
		ranks:   make([]*rankState, n),
	}
	for r := range e.ranks {
		e.ranks[r] = &rankState{
			id:      r,
			ops:     t.Ranks[r],
			arrived: make(map[msgKey]int),
			reqDone: make(map[int]bool),
		}
	}
	return e, nil
}

// Run replays the full trace and returns the completion time of the
// last rank. maxEvents <= 0 means unbounded.
func (e *Engine) Run(maxEvents uint64) (eventq.Time, error) {
	for _, rs := range e.ranks {
		e.advance(rs)
	}
	if !e.sim.Q.Run(maxEvents) {
		return 0, fmt.Errorf("dimemas: event budget exhausted (%d ranks finished of %d)", e.finished, len(e.ranks))
	}
	if e.finished != len(e.ranks) {
		return 0, fmt.Errorf("dimemas: replay stalled: %d of %d ranks finished (mismatched sends/receives?)", e.finished, len(e.ranks))
	}
	return e.sim.Q.Now(), nil
}

// advance executes ops of a rank until it blocks or finishes.
func (e *Engine) advance(rs *rankState) {
	for {
		if rs.blocked == finishedRank {
			return
		}
		if rs.pc >= len(rs.ops) {
			rs.blocked = finishedRank
			e.finished++
			return
		}
		op := rs.ops[rs.pc]
		switch o := op.(type) {
		case Compute:
			rs.pc++
			if o.Dur > 0 {
				rs.blocked = blockedCompute
				e.sim.Q.After(o.Dur, func() {
					rs.blocked = notBlocked
					e.advance(rs)
				})
				return
			}
		case Send:
			rs.pc++
			rs.blocked = blockedSendDone
			e.inject(rs, o.Dst, o.Bytes, o.Tag, func() {
				rs.blocked = notBlocked
				e.advance(rs)
			})
			return
		case ISend:
			rs.pc++
			rs.outstanding++
			req := o.Req
			e.inject(rs, o.Dst, o.Bytes, o.Tag, func() {
				rs.outstanding--
				rs.reqDone[req] = true
				switch {
				case rs.blocked == blockedWait && rs.waitReq == req:
					rs.blocked = notBlocked
					e.advance(rs)
				case rs.blocked == blockedWaitAll && rs.outstanding == 0:
					rs.blocked = notBlocked
					e.advance(rs)
				}
			})
		case Recv:
			if e.tryConsume(rs, o.Src, o.Tag) {
				rs.pc++
				continue
			}
			rs.blocked = blockedRecv
			rs.wantSrc, rs.wantTag = o.Src, o.Tag
			return
		case Wait:
			if rs.reqDone[o.Req] {
				rs.pc++
				continue
			}
			rs.blocked = blockedWait
			rs.waitReq = o.Req
			return
		case WaitAll:
			if rs.outstanding == 0 {
				rs.pc++
				continue
			}
			rs.blocked = blockedWaitAll
			return
		case Barrier:
			rs.pc++
			e.barrierCount++
			if e.barrierCount < len(e.ranks) {
				rs.blocked = blockedBarrier
				return
			}
			// Last rank releases everyone. Snapshot the waiters
			// before advancing any of them: a released rank may
			// immediately block on the *next* barrier and must not be
			// re-released by this loop.
			e.barrierCount = 0
			var waiters []*rankState
			for _, other := range e.ranks {
				if other != rs && other.blocked == blockedBarrier {
					waiters = append(waiters, other)
				}
			}
			for _, other := range waiters {
				other.blocked = notBlocked
				e.advance(other)
			}
		default:
			panic(fmt.Sprintf("dimemas: unhandled op %T", op)) //lint:allow banned unreachable unless a new op type is added without a case
		}
	}
}

// inject sends a message through the simulator and invokes onSent
// when the last byte is delivered (MPI synchronous completion).
func (e *Engine) inject(rs *rankState, dstRank int, bytes int64, tag int, onSent func()) {
	srcNode := e.mapping[rs.id]
	dstNode := e.mapping[dstRank]
	m := venus.Message{Src: srcNode, Dst: dstNode, Bytes: bytes, Tag: tag}
	if srcNode != dstNode {
		m.Route = e.algo.Route(srcNode, dstNode)
	}
	srcRank := rs.id
	m.OnDelivered = func(eventq.Time) {
		e.deliver(dstRank, srcRank, tag)
		onSent()
	}
	if err := e.sim.Inject(m); err != nil {
		// Routes were validated at build time; this is a programming
		// error, not an input error.
		panic(fmt.Sprintf("dimemas: inject failed: %v", err)) //lint:allow banned routes validated at build time; failure is a programming error
	}
}

// deliver records a fully-arrived message at the destination rank and
// unblocks a matching Recv.
func (e *Engine) deliver(dstRank, srcRank, tag int) {
	rs := e.ranks[dstRank]
	rs.arrived[msgKey{src: srcRank, tag: tag}]++
	if rs.blocked == blockedRecv && e.tryConsume(rs, rs.wantSrc, rs.wantTag) {
		rs.blocked = notBlocked
		rs.pc++
		e.advance(rs)
	}
}

// tryConsume consumes one arrived message matching (src, tag); src
// may be AnySource.
func (e *Engine) tryConsume(rs *rankState, src, tag int) bool {
	if src != AnySource {
		k := msgKey{src: src, tag: tag}
		if rs.arrived[k] > 0 {
			rs.arrived[k]--
			return true
		}
		return false
	}
	// AnySource: match the arrived message with the lowest source rank,
	// not whichever map iteration yields first — the choice feeds back
	// into later specific-source receives, so it must be deterministic.
	best := msgKey{src: -1}
	for k, n := range rs.arrived {
		if n > 0 && k.tag == tag && (best.src < 0 || k.src < best.src) {
			best = k
		}
	}
	if best.src < 0 {
		return false
	}
	rs.arrived[best]--
	return true
}

// Time returns the current simulated time (useful mid-replay).
func (e *Engine) Time() eventq.Time { return e.sim.Q.Now() }

// Replay is the one-call convenience: build an engine and run it.
func Replay(t *Trace, topo *xgft.Topology, algo core.Algorithm, cfg Config) (eventq.Time, error) {
	eng, err := NewEngine(t, topo, algo, cfg)
	if err != nil {
		return 0, err
	}
	// Generous event budget proportional to the segment-hop volume,
	// so a genuinely stalled replay fails fast instead of spinning.
	segs := uint64(t.TotalBytes()/int64(cfg.Net.SegmentBytes)) + uint64(t.CountMessages()) + 1
	return eng.Run(segs*2*xgft.MaxHeight*8 + 1_000_000)
}

// ReplayOnCrossbar replays the trace on the ideal single-stage
// crossbar reference network.
func ReplayOnCrossbar(t *Trace, cfg Config) (eventq.Time, error) {
	xb, err := xgft.NewFullCrossbar(t.NumRanks())
	if err != nil {
		return 0, err
	}
	cfg.Mapping = nil // sequential identity on the crossbar
	return Replay(t, xb, core.NewSModK(xb), cfg)
}

// MeasuredSlowdown replays the trace on the topology and on the
// crossbar and returns the ratio — the application-level counterpart
// of the paper's Figs. 2 and 5 Y axis.
func MeasuredSlowdown(t *Trace, topo *xgft.Topology, algo core.Algorithm, cfg Config) (float64, error) {
	net, err := Replay(t, topo, algo, cfg)
	if err != nil {
		return 0, err
	}
	ref, err := ReplayOnCrossbar(t, cfg)
	if err != nil {
		return 0, err
	}
	if ref == 0 {
		return 1, nil
	}
	return float64(net) / float64(ref), nil
}
