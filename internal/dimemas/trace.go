// Package dimemas is the MPI trace replay engine of the evaluation
// methodology (§VI-B): it reconstructs the temporal behaviour of an
// application from a per-rank operation trace (compute bursts, sends,
// receives, waits, barriers), driving the network simulator
// (internal/venus) for every transfer so that message timing reflects
// routing and contention. It substitutes for the Dimemas simulator
// fed with post-mortem traces (see DESIGN.md, substitution #3).
package dimemas

import (
	"fmt"

	"repro/internal/eventq"
)

// AnySource matches a receive against any sender (MPI_ANY_SOURCE).
const AnySource = -1

// Op is one trace operation of a rank. The concrete types below are
// the full vocabulary of the replay engine.
type Op interface{ isOp() }

// Compute advances the rank's local clock without network activity.
type Compute struct{ Dur eventq.Time }

// Send is a blocking (synchronous-completion) send: the rank resumes
// when the last byte is delivered. This conservative semantic is what
// separates communication phases in our synthetic traces.
type Send struct {
	Dst   int
	Bytes int64
	Tag   int
}

// ISend is a non-blocking send tracked by a per-rank request number;
// completion is observed by Wait or WaitAll.
type ISend struct {
	Dst   int
	Bytes int64
	Tag   int
	Req   int
}

// Recv blocks until a matching message (by source and tag) has been
// fully delivered. Src may be AnySource.
type Recv struct {
	Src int
	Tag int
}

// Wait blocks until the given ISend request has completed.
type Wait struct{ Req int }

// WaitAll blocks until every outstanding ISend of the rank completed.
type WaitAll struct{}

// Barrier blocks until every rank has reached its matching barrier.
type Barrier struct{}

func (Compute) isOp() {}
func (Send) isOp()    {}
func (ISend) isOp()   {}
func (Recv) isOp()    {}
func (Wait) isOp()    {}
func (WaitAll) isOp() {}
func (Barrier) isOp() {}

// Trace is a complete application trace: one operation list per rank.
type Trace struct {
	Ranks [][]Op
}

// NumRanks returns the number of ranks in the trace.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// Validate performs static checks: endpoint ranges, non-negative
// sizes and durations, barrier count consistency.
func (t *Trace) Validate() error {
	n := len(t.Ranks)
	if n == 0 {
		return fmt.Errorf("dimemas: empty trace")
	}
	barriers := -1
	for r, ops := range t.Ranks {
		count := 0
		for i, op := range ops {
			switch o := op.(type) {
			case Compute:
				if o.Dur < 0 {
					return fmt.Errorf("dimemas: rank %d op %d: negative compute", r, i)
				}
			case Send:
				if o.Dst < 0 || o.Dst >= n {
					return fmt.Errorf("dimemas: rank %d op %d: send destination %d out of range", r, i, o.Dst)
				}
				if o.Bytes < 0 {
					return fmt.Errorf("dimemas: rank %d op %d: negative send size", r, i)
				}
			case ISend:
				if o.Dst < 0 || o.Dst >= n {
					return fmt.Errorf("dimemas: rank %d op %d: isend destination %d out of range", r, i, o.Dst)
				}
				if o.Bytes < 0 {
					return fmt.Errorf("dimemas: rank %d op %d: negative isend size", r, i)
				}
			case Recv:
				if o.Src != AnySource && (o.Src < 0 || o.Src >= n) {
					return fmt.Errorf("dimemas: rank %d op %d: recv source %d out of range", r, i, o.Src)
				}
			case Wait, WaitAll:
				// always legal
			case Barrier:
				count++
			default:
				return fmt.Errorf("dimemas: rank %d op %d: unknown op %T", r, i, op)
			}
		}
		if barriers == -1 {
			barriers = count
		} else if count != barriers {
			return fmt.Errorf("dimemas: rank %d has %d barriers, rank 0 has %d", r, count, barriers)
		}
	}
	return nil
}

// CountMessages returns the total number of sends in the trace.
func (t *Trace) CountMessages() int {
	total := 0
	for _, ops := range t.Ranks {
		for _, op := range ops {
			switch op.(type) {
			case Send, ISend:
				total++
			}
		}
	}
	return total
}

// TotalBytes returns the byte volume of all sends.
func (t *Trace) TotalBytes() int64 {
	var total int64
	for _, ops := range t.Ranks {
		for _, op := range ops {
			switch o := op.(type) {
			case Send:
				total += o.Bytes
			case ISend:
				total += o.Bytes
			}
		}
	}
	return total
}
