package dimemas_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/traces"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func slimTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestLinearMapping(t *testing.T) {
	m := dimemas.LinearMapping(5)
	for i, v := range m {
		if v != i {
			t.Fatalf("linear[%d] = %d", i, v)
		}
	}
}

func TestRoundRobinMapping(t *testing.T) {
	tp := slimTree(t, 16)
	m, err := dimemas.RoundRobinMapping(tp, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0..15 land on distinct switches, slot 0.
	for r := 0; r < 16; r++ {
		if m[r] != r*16 {
			t.Errorf("rank %d on node %d, want %d", r, m[r], r*16)
		}
	}
	// Ranks 16..31 are slot 1 of each switch.
	for r := 16; r < 32; r++ {
		if m[r] != (r-16)*16+1 {
			t.Errorf("rank %d on node %d, want %d", r, m[r], (r-16)*16+1)
		}
	}
	if _, err := dimemas.RoundRobinMapping(tp, 300); err == nil {
		t.Error("overflow accepted")
	}
}

func TestRandomMappingDeterministicPerSeed(t *testing.T) {
	tp := slimTree(t, 16)
	a, err := dimemas.RandomMapping(tp, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dimemas.RandomMapping(tp, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dimemas.RandomMapping(tp, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, 0
	seen := make(map[int]bool)
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff++
		}
		if seen[a[i]] {
			t.Fatalf("node %d mapped twice", a[i])
		}
		seen[a[i]] = true
	}
	if !same {
		t.Error("same seed produced different mappings")
	}
	if diff == 0 {
		t.Error("different seeds produced identical mappings")
	}
	if _, err := dimemas.RandomMapping(tp, 300, 1); err == nil {
		t.Error("overflow accepted")
	}
}

func TestMappingFromLeaves(t *testing.T) {
	cases := []struct {
		name   string
		leaves []int
		n      int
		want   []int // nil means an error is expected
	}{
		{"exact", []int{4, 9, 17}, 3, []int{4, 9, 17}},
		{"prefix of a larger allocation", []int{4, 9, 17, 30}, 2, []int{4, 9}},
		{"single rank", []int{255}, 1, []int{255}},
		{"too few leaves", []int{4, 9}, 3, nil},
		{"zero ranks", []int{4}, 0, nil},
		{"negative leaf", []int{4, -1, 2}, 3, nil},
		{"duplicate leaf", []int{4, 9, 4}, 3, nil},
		{"duplicate outside the used prefix", []int{4, 9, 9}, 2, []int{4, 9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := dimemas.MappingFromLeaves(c.leaves, c.n)
			if c.want == nil {
				if err == nil {
					t.Fatalf("MappingFromLeaves(%v, %d) = %v, want error", c.leaves, c.n, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("MappingFromLeaves(%v, %d): %v", c.leaves, c.n, err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("mapping %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("mapping %v, want %v", got, c.want)
				}
			}
		})
	}
}

func TestMappingByName(t *testing.T) {
	tp := slimTree(t, 16)
	for _, name := range []string{"", "linear", "sequential", "round-robin", "rr", "random"} {
		if _, err := dimemas.MappingByName(name, tp, 32, 1); err != nil {
			t.Errorf("MappingByName(%q): %v", name, err)
		}
	}
	if _, err := dimemas.MappingByName("spiral", tp, 32, 1); err == nil {
		t.Error("unknown mapping accepted")
	}
	// Explicit allocations ride the same selector.
	m, err := dimemas.MappingByName("leaves:3, 7,255", tp, 3, 1)
	if err != nil {
		t.Fatalf("leaves selector: %v", err)
	}
	if m[0] != 3 || m[1] != 7 || m[2] != 255 {
		t.Errorf("leaves mapping %v", m)
	}
	for _, bad := range []string{"leaves:3,x", "leaves:3,256", "leaves:3,3", "leaves:3"} {
		if _, err := dimemas.MappingByName(bad, tp, 2, 1); err == nil {
			t.Errorf("MappingByName(%q) accepted", bad)
		}
	}
}

func TestRoundRobinDestroysCGLocality(t *testing.T) {
	// CG's butterfly phases are switch-local under the sequential
	// mapping; round-robin placement forces them through the roots
	// and must be slower.
	tp := slimTree(t, 16)
	tr, err := traces.CG(128, 16*1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	algo := core.NewDModK(tp)
	seqTime, err := dimemas.Replay(tr, tp, algo, dimemas.Config{Net: venus.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := dimemas.RoundRobinMapping(tp, 128)
	if err != nil {
		t.Fatal(err)
	}
	rrTime, err := dimemas.Replay(tr, tp, algo, dimemas.Config{Net: venus.DefaultConfig(), Mapping: rr})
	if err != nil {
		t.Fatal(err)
	}
	if rrTime <= seqTime {
		t.Errorf("round-robin placement %d not slower than sequential %d", rrTime, seqTime)
	}
}
