package hashutil

import "testing"

// TestSplitmix64KnownAnswers pins the implementation to the published
// splitmix64 sequence (Steele et al. / Vigna's reference code): for a
// generator seeded with s, the i-th output is Splitmix64(s + i*gamma)
// with gamma = 0x9e3779b97f4a7c15. Any drift here silently changes
// every routing table and cache fingerprint in the repository.
func TestSplitmix64KnownAnswers(t *testing.T) {
	const gamma = 0x9e3779b97f4a7c15
	// The first five outputs of the reference generator seeded with 0.
	seq0 := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	state := uint64(0)
	for i, want := range seq0 {
		if got := Splitmix64(state); got != want {
			t.Errorf("seed 0 output %d = %#016x, want %#016x", i, got, want)
		}
		state += gamma
	}
	// The first outputs of the generator seeded with 42.
	seq42 := []uint64{
		0xbdd732262feb6e95,
		0x28efe333b266f103,
		0x47526757130f9f52,
	}
	state = 42
	for i, want := range seq42 {
		if got := Splitmix64(state); got != want {
			t.Errorf("seed 42 output %d = %#016x, want %#016x", i, got, want)
		}
		state += gamma
	}
}

func TestSplitmix64Deterministic(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, ^uint64(0)} {
		if Splitmix64(x) != Splitmix64(x) {
			t.Fatalf("Splitmix64(%d) not deterministic", x)
		}
	}
}

// TestFoldOrderAndSeedSensitivity checks the properties the routing
// schemes rely on: folding is sensitive to value order, to every
// position, and to the starting state.
func TestFoldOrderAndSeedSensitivity(t *testing.T) {
	if Fold(1, 2, 3) == Fold(1, 3, 2) {
		t.Error("Fold ignores value order")
	}
	if Fold(1, 2, 3) == Fold(2, 2, 3) {
		t.Error("Fold ignores the starting state")
	}
	if Fold(1, 2, 3) == Fold(1, 2, 4) {
		t.Error("Fold ignores the last value")
	}
	if Fold(0, 7) != Splitmix64(7) {
		t.Error("Fold does not XOR-then-advance as documented")
	}
	if Fold(1, 2, 3) != Splitmix64(Splitmix64(1^2)^3) {
		t.Error("Fold does not chain through Splitmix64 as documented")
	}
	if Mix(1, 2) != Fold(0x8a5cd789635d2dff, 1, 2) {
		t.Error("Mix does not use its fixed seed")
	}
}

// TestStream pins the Stream draw source to its definition (output-
// feedback splitmix64 from a Mix-hashed key) and checks the ranges the
// test-suite migration off math/rand relies on.
func TestStream(t *testing.T) {
	s := NewStream(7, 9)
	want := Mix(7, 9)
	for i := 0; i < 4; i++ {
		want = Splitmix64(want)
		if got := s.Next(); got != want {
			t.Fatalf("draw %d = %#x, want %#x", i, got, want)
		}
	}
	// Same key, same sequence; different key, different sequence.
	a, b, c := NewStream(1), NewStream(1), NewStream(2)
	if a.Next() != b.Next() {
		t.Error("identically-keyed streams diverge")
	}
	if a.Next() == c.Next() {
		t.Error("differently-keyed streams collide on the second draw")
	}
	s = NewStream(3)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		counts[v]++
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
	for v, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("Intn(5): value %d drawn %d/5000 times, want ~1000", v, n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

// TestStreamIndependence checks that streams keyed by different seeds
// look unrelated: over many draws, two keyed streams never collide
// and their low bits are roughly balanced — the property that lets
// every sweep cell derive its own randomness from its coordinates.
func TestStreamIndependence(t *testing.T) {
	const draws = 1 << 14
	seen := make(map[uint64][2]uint64, 4*draws)
	for _, seed := range []uint64{1, 2, 3, 0xdeadbeef} {
		ones := 0
		for i := uint64(0); i < draws; i++ {
			v := Mix(seed, i)
			if prev, dup := seen[v]; dup {
				t.Fatalf("collision: Mix(%d,%d) == Mix(%d,%d) == %#x", seed, i, prev[0], prev[1], v)
			}
			seen[v] = [2]uint64{seed, i}
			if v&1 == 1 {
				ones++
			}
		}
		// A fair coin over 2^14 draws stays within ±5% of half with
		// overwhelming probability.
		if ones < draws*45/100 || ones > draws*55/100 {
			t.Errorf("seed %d: %d/%d odd outputs, want ~half", seed, ones, draws)
		}
	}
}
