// Package hashutil is the single home of the keyed splitmix64 stream
// used for deterministic, seed-reproducible randomness throughout the
// repository: routing schemes hash (seed, pair, level) tuples into
// port choices, and caches hash pattern content into fingerprints.
// Keeping one implementation guarantees the routing layer and the
// fingerprint layer never diverge.
package hashutil

// Splitmix64 advances the splitmix64 state and returns the next
// value (Steele et al., "Fast splittable pseudorandom number
// generators").
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fold folds values into a running hash: each value is XORed into
// the state, which is then advanced through Splitmix64.
func Fold(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		h = Splitmix64(h ^ v)
	}
	return h
}

// Mix hashes a tuple of values into a well-distributed 64-bit key
// from a fixed seed.
func Mix(vals ...uint64) uint64 {
	return Fold(0x8a5cd789635d2dff, vals...)
}
