// Package hashutil is the single home of the keyed splitmix64 stream
// used for deterministic, seed-reproducible randomness throughout the
// repository: routing schemes hash (seed, pair, level) tuples into
// port choices, and caches hash pattern content into fingerprints.
// Keeping one implementation guarantees the routing layer and the
// fingerprint layer never diverge.
package hashutil

// Splitmix64 advances the splitmix64 state and returns the next
// value (Steele et al., "Fast splittable pseudorandom number
// generators"). Pure arithmetic, so it is safe on the resolve hot
// path (trace-id derivation and head sampling hash through it per
// span).
//
//repro:hotpath
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fold folds values into a running hash: each value is XORed into
// the state, which is then advanced through Splitmix64.
func Fold(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		h = Splitmix64(h ^ v)
	}
	return h
}

// Mix hashes a tuple of values into a well-distributed 64-bit key
// from a fixed seed.
func Mix(vals ...uint64) uint64 {
	return Fold(0x8a5cd789635d2dff, vals...)
}

// Stream is a sequential keyed splitmix64 draw source: the drop-in
// replacement for the rand.Rand instances tests used to build from a
// seed, producing the same sequence on every platform and Go version
// (math/rand makes no such guarantee across releases, which is why it
// is banned repository-wide — see the CI gate). Not safe for
// concurrent use; derive one Stream per goroutine from distinct keys.
type Stream struct {
	state uint64
}

// NewStream returns a stream keyed by the values (hashed through Mix,
// so nearby seeds produce unrelated sequences).
func NewStream(vals ...uint64) *Stream {
	return &Stream{state: Mix(vals...)}
}

// Next returns the next 64-bit draw.
func (s *Stream) Next() uint64 {
	s.state = Splitmix64(s.state)
	return s.state
}

// Intn returns a draw in [0, n); n must be positive. The modulo bias
// is negligible for the small n these streams feed (n << 2^64).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("hashutil: Intn with non-positive n") //lint:allow banned precondition violation is a programming error
	}
	return int(s.Next() % uint64(n))
}

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}
