package xgft

import (
	"testing"
	"testing/quick"
)

// modKRoute builds the S-mod-k route for (s,d) directly from the
// definition, for use as a test fixture (the real algorithms live in
// internal/core).
func modKRoute(t *Topology, s, d int) Route {
	l := t.NCALevel(s, d)
	up := make([]int, l)
	lab := t.Label(0, s)
	for lvl := 0; lvl < l; lvl++ {
		j := lvl - 1
		if j < 0 {
			j = 0
		}
		up[lvl] = lab[j] % t.W(lvl)
	}
	return Route{Src: s, Dst: d, Up: up}
}

func TestRouteValidateAndConnect(t *testing.T) {
	tp := MustNew(3, []int{4, 4, 4}, []int{1, 2, 2})
	n := tp.Leaves()
	for s := 0; s < n; s += 3 {
		for d := 0; d < n; d += 5 {
			r := modKRoute(tp, s, d)
			if err := r.Validate(tp); err != nil {
				t.Fatalf("Validate(%d->%d): %v", s, d, err)
			}
			if !r.VerifyConnects(tp) {
				t.Fatalf("route %d->%d does not connect", s, d)
			}
		}
	}
}

func TestRouteValidateErrors(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	cases := []struct {
		name string
		r    Route
	}{
		{"src out of range", Route{Src: -1, Dst: 3, Up: []int{0, 1}}},
		{"dst out of range", Route{Src: 0, Dst: 16, Up: []int{0, 1}}},
		{"wrong ascent length", Route{Src: 0, Dst: 5, Up: []int{0}}},
		{"port negative", Route{Src: 0, Dst: 5, Up: []int{0, -1}}},
		{"port too large", Route{Src: 0, Dst: 5, Up: []int{0, 4}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.r.Validate(tp); err == nil {
				t.Errorf("Validate accepted %+v", c.r)
			}
		})
	}
}

func TestRouteNCA(t *testing.T) {
	tp := MustNew(2, []int{16, 16}, []int{1, 16})
	// s=5 (switch 0), d=37 (switch 2): NCA at level 2 chosen by up
	// ports; root index = W2 digit (since w1=1 the W1 digit is 0).
	r := Route{Src: 5, Dst: 37, Up: []int{0, 9}}
	level, idx := r.NCA(tp)
	if level != 2 {
		t.Fatalf("NCA level = %d, want 2", level)
	}
	if idx != 9 {
		t.Fatalf("NCA index = %d, want 9", idx)
	}
	if got := r.Hops(); got != 4 {
		t.Errorf("Hops = %d, want 4", got)
	}
}

func TestRouteDownPorts(t *testing.T) {
	tp := MustNew(2, []int{16, 16}, []int{1, 16})
	r := Route{Src: 5, Dst: 37, Up: []int{0, 9}}
	// Descent from level 2: take dest digit 1 (=2), then digit 0 (=5).
	got := r.DownPorts(tp)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("DownPorts = %v, want [2 5]", got)
	}
}

func TestRouteChannelsDisjointHalves(t *testing.T) {
	tp := MustNew(2, []int{16, 16}, []int{1, 16})
	r := Route{Src: 5, Dst: 37, Up: []int{0, 9}}
	up := r.UpChannels(tp, nil)
	down := r.DownChannels(tp, nil)
	if len(up) != 2 || len(down) != 2 {
		t.Fatalf("channel counts = %d,%d, want 2,2", len(up), len(down))
	}
	// The ascent leaves from src's subtree, the descent enters dst's:
	// with distinct first-level switches the wire sets are disjoint.
	for _, u := range up {
		for _, d := range down {
			if u == d {
				t.Fatalf("up and down halves share wire %d", u)
			}
		}
	}
}

func TestRouteWalkOrder(t *testing.T) {
	tp := MustNew(2, []int{16, 16}, []int{1, 16})
	r := Route{Src: 5, Dst: 37, Up: []int{0, 9}}
	var ups, downs int
	var order []bool
	r.Walk(tp, func(level, node, port, channel int, up bool) {
		order = append(order, up)
		if up {
			ups++
		} else {
			downs++
		}
	})
	if ups != 2 || downs != 2 {
		t.Fatalf("walk visited %d up, %d down, want 2,2", ups, downs)
	}
	// Ascent strictly precedes descent.
	seenDown := false
	for _, u := range order {
		if !u {
			seenDown = true
		} else if seenDown {
			t.Fatal("ascent hop after descent hop")
		}
	}
}

func TestRouteWalkMatchesChannelLists(t *testing.T) {
	tp := MustNew(3, []int{3, 4, 2}, []int{1, 2, 3})
	r := modKRoute(tp, 1, 23)
	wantUp := r.UpChannels(tp, nil)
	wantDown := r.DownChannels(tp, nil)
	var gotUp, gotDown []int
	r.Walk(tp, func(_, _, _, ch int, up bool) {
		if up {
			gotUp = append(gotUp, ch)
		} else {
			gotDown = append(gotDown, ch)
		}
	})
	if !equalInts(gotUp, wantUp) {
		t.Errorf("walk up channels %v, want %v", gotUp, wantUp)
	}
	if !equalInts(gotDown, wantDown) {
		t.Errorf("walk down channels %v, want %v", gotDown, wantDown)
	}
}

func TestQuickRandomRoutesConnect(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		n := tp.Leaves()
		s, d := r.Intn(n), r.Intn(n)
		l := tp.NCALevel(s, d)
		up := make([]int, l)
		for i := range up {
			up[i] = r.Intn(tp.W(i))
		}
		rt := Route{Src: s, Dst: d, Up: up}
		return rt.Validate(tp) == nil && rt.VerifyConnects(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickWalkChannelCount(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		n := tp.Leaves()
		s, d := r.Intn(n), r.Intn(n)
		rt := modKRoute(tp, s, d)
		count := 0
		rt.Walk(tp, func(_, _, _, ch int, _ bool) {
			if ch < 0 || ch >= tp.TotalChannels() {
				count = -1 << 30
			}
			count++
		})
		return count == rt.Hops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
