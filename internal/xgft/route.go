package xgft

import "fmt"

// Route is a minimal deadlock-free path between two leaves: the
// ascending half is the sequence of up-ports to the chosen NCA
// (Up[l] is the port taken at level l, equivalently the W_{l+1} digit
// of the NCA); the descending half is uniquely determined by the
// destination label (paper §V).
type Route struct {
	Src, Dst int
	Up       []int
}

// NCALevel returns the level of the route's nearest common ancestor.
func (r Route) NCALevel() int { return len(r.Up) }

// DownPorts returns the down-ports taken from the NCA to Dst, from the
// NCA level downwards: element i is the port taken at level
// NCALevel-i, which is digit (NCALevel-1-i) of Dst.
func (r Route) DownPorts(t *Topology) []int {
	l := len(r.Up)
	d := t.Label(0, r.Dst)
	ports := make([]int, l)
	for i := 0; i < l; i++ {
		ports[i] = d[l-1-i]
	}
	return ports
}

// NCA returns the (level, index) of the route's nearest common
// ancestor switch.
func (r Route) NCA(t *Topology) (level, index int) {
	return len(r.Up), t.NCAIndex(r.Src, r.Up)
}

// Hops returns the total number of channel traversals (up + down).
func (r Route) Hops() int { return 2 * len(r.Up) }

// UpChannels appends the flat channel IDs of the ascending half to dst
// and returns it.
func (r Route) UpChannels(t *Topology, dst []int) []int {
	idx := r.Src
	for l, p := range r.Up {
		dst = append(dst, t.UpChannelID(l, idx, p))
		idx = t.Parent(l, idx, p)
	}
	return dst
}

// DownChannels appends the flat channel IDs of the descending half to
// dst (ordered from the NCA towards the destination) and returns it.
// Down channels share IDs with their paired up channels; the caller
// distinguishes direction.
func (r Route) DownChannels(t *Topology, dst []int) []int {
	l := len(r.Up)
	// Walk up from Dst: the descending path visits exactly the
	// ancestors of Dst below the NCA, and the channel between level i
	// and i+1 is identified by the child-side node at level i.
	idx := r.Dst
	var ids [MaxHeight]int
	for i := 0; i < l; i++ {
		p := r.upPortTowardsNCA(t, i)
		ids[i] = t.UpChannelID(i, idx, p)
		idx = t.Parent(i, idx, p)
	}
	for i := l - 1; i >= 0; i-- {
		dst = append(dst, ids[i])
	}
	return dst
}

// upPortTowardsNCA returns the W-digit the NCA has at position i,
// which is Up[i] by construction.
func (r Route) upPortTowardsNCA(_ *Topology, i int) int { return r.Up[i] }

// Validate checks that the route is well formed for the topology:
// endpoints in range, correct ascent length (at least the NCA level of
// the pair; the paper only uses minimal routes, so exactly), and every
// port within its radix.
func (r Route) Validate(t *Topology) error {
	if r.Src < 0 || r.Src >= t.Leaves() {
		return fmt.Errorf("xgft: route source %d out of range [0,%d)", r.Src, t.Leaves())
	}
	if r.Dst < 0 || r.Dst >= t.Leaves() {
		return fmt.Errorf("xgft: route destination %d out of range [0,%d)", r.Dst, t.Leaves())
	}
	want := t.NCALevel(r.Src, r.Dst)
	if len(r.Up) != want {
		return fmt.Errorf("xgft: route %d->%d has ascent length %d, want NCA level %d", r.Src, r.Dst, len(r.Up), want)
	}
	for l, p := range r.Up {
		if p < 0 || p >= t.W(l) {
			return fmt.Errorf("xgft: route %d->%d up-port %d at level %d out of range [0,%d)", r.Src, r.Dst, p, l, t.W(l))
		}
	}
	return nil
}

// Walk calls fn for every directed channel traversal of the route in
// path order: first the ascent (up=true), then the descent (up=false).
// The channel argument is the flat wire ID; node is the child-side
// node index of that wire.
func (r Route) Walk(t *Topology, fn func(level, node, port, channel int, up bool)) {
	idx := r.Src
	for l, p := range r.Up {
		fn(l, idx, p, t.UpChannelID(l, idx, p), true)
		idx = t.Parent(l, idx, p)
	}
	l := len(r.Up)
	var nodes [MaxHeight]int
	var ports [MaxHeight]int
	dn := r.Dst
	for i := 0; i < l; i++ {
		nodes[i] = dn
		ports[i] = r.Up[i]
		dn = t.Parent(i, dn, r.Up[i])
	}
	for i := l - 1; i >= 0; i-- {
		fn(i, nodes[i], ports[i], t.UpChannelID(i, nodes[i], ports[i]), false)
	}
}

// VerifyConnects replays the route hop by hop through the adjacency
// relations and reports whether it really leads from Src to Dst. This
// is the strong correctness check used by tests: Validate checks
// shape, VerifyConnects checks semantics.
func (r Route) VerifyConnects(t *Topology) bool {
	idx := r.Src
	for l, p := range r.Up {
		if p < 0 || p >= t.W(l) {
			return false
		}
		idx = t.Parent(l, idx, p)
	}
	level := len(r.Up)
	d := t.Label(0, r.Dst)
	for l := level; l > 0; l-- {
		idx = t.Child(l, idx, d[l-1])
	}
	return idx == r.Dst
}
