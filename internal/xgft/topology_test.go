package xgft

import (
	"testing"
	"testing/quick"

	"repro/internal/hashutil"
)

// paperTree returns the evaluation topology XGFT(2;16,16;1,w2).
func paperTree(t *testing.T, w2 int) *Topology {
	t.Helper()
	tp, err := NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatalf("NewSlimmedTree: %v", err)
	}
	return tp
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		h    int
		m, w []int
	}{
		{"zero height", 0, nil, nil},
		{"negative height", -1, nil, nil},
		{"huge height", MaxHeight + 1, make([]int, MaxHeight+1), make([]int, MaxHeight+1)},
		{"short m", 2, []int{4}, []int{1, 2}},
		{"short w", 2, []int{4, 4}, []int{1}},
		{"zero m", 2, []int{0, 4}, []int{1, 2}},
		{"zero w", 2, []int{4, 4}, []int{0, 2}},
		{"negative m", 1, []int{-3}, []int{1}},
		{"overflow leaves", 4, []int{1 << 10, 1 << 10, 1 << 10, 1 << 10}, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.h, c.m, c.w); err == nil {
				t.Errorf("New(%d,%v,%v) succeeded, want error", c.h, c.m, c.w)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad parameters did not panic")
		}
	}()
	MustNew(0, nil, nil)
}

func TestKaryNTreeCounts(t *testing.T) {
	// A k-ary n-tree has k^n leaves and n*k^(n-1) switches.
	cases := []struct{ k, n int }{{2, 2}, {2, 3}, {4, 2}, {4, 3}, {16, 2}, {2, 6}, {3, 4}}
	for _, c := range cases {
		tp, err := NewKaryNTree(c.k, c.n)
		if err != nil {
			t.Fatalf("NewKaryNTree(%d,%d): %v", c.k, c.n, err)
		}
		wantLeaves := pow(c.k, c.n)
		if got := tp.Leaves(); got != wantLeaves {
			t.Errorf("%v leaves = %d, want %d", tp, got, wantLeaves)
		}
		wantSwitches := c.n * pow(c.k, c.n-1)
		if got := tp.InnerSwitches(); got != wantSwitches {
			t.Errorf("%v switches = %d, want %d", tp, got, wantSwitches)
		}
		if k, ok := tp.IsKaryNTree(); !ok || k != c.k {
			t.Errorf("%v IsKaryNTree = (%d,%v), want (%d,true)", tp, k, ok, c.k)
		}
		if tp.IsSlimmed() {
			t.Errorf("%v reported slimmed", tp)
		}
	}
}

func TestEquation1InnerSwitches(t *testing.T) {
	// Paper Eq. (1): I = sum_{i=1..h} prod_{j>i} m_j * prod_{j<=i} w_j.
	eq1 := func(h int, m, w []int) int {
		total := 0
		for i := 1; i <= h; i++ {
			term := 1
			for j := i + 1; j <= h; j++ {
				term *= m[j-1]
			}
			for j := 1; j <= i; j++ {
				term *= w[j-1]
			}
			total += term
		}
		return total
	}
	cases := []struct {
		h    int
		m, w []int
	}{
		{2, []int{16, 16}, []int{1, 16}},
		{2, []int{16, 16}, []int{1, 10}},
		{2, []int{16, 16}, []int{1, 1}},
		{3, []int{4, 4, 4}, []int{1, 2, 2}},
		{3, []int{4, 4, 4}, []int{1, 4, 4}},
		{4, []int{2, 3, 4, 5}, []int{1, 2, 3, 4}},
		{1, []int{64}, []int{1}},
	}
	for _, c := range cases {
		tp := MustNew(c.h, c.m, c.w)
		if got, want := tp.InnerSwitches(), eq1(c.h, c.m, c.w); got != want {
			t.Errorf("%v InnerSwitches = %d, want Eq.(1) %d", tp, got, want)
		}
	}
}

func TestSlimmedTreeProperties(t *testing.T) {
	full := paperTree(t, 16)
	if full.IsSlimmed() {
		t.Error("w2=16 tree reported slimmed")
	}
	for w2 := 1; w2 <= 15; w2++ {
		tp := paperTree(t, w2)
		if !tp.IsSlimmed() {
			t.Errorf("w2=%d tree not reported slimmed", w2)
		}
		if got, want := tp.InnerSwitches(), 16+w2; got != want {
			t.Errorf("w2=%d switches = %d, want %d", w2, got, want)
		}
		if got := tp.NodesAt(2); got != w2 {
			t.Errorf("w2=%d roots = %d, want %d", w2, got, w2)
		}
	}
}

func TestFullCrossbar(t *testing.T) {
	tp, err := NewFullCrossbar(64)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Leaves() != 64 || tp.InnerSwitches() != 1 || tp.Height() != 1 {
		t.Errorf("crossbar shape wrong: leaves=%d switches=%d h=%d", tp.Leaves(), tp.InnerSwitches(), tp.Height())
	}
	// Every pair of distinct leaves has NCA level 1 and exactly one NCA.
	if got := tp.NCALevel(3, 59); got != 1 {
		t.Errorf("crossbar NCA level = %d, want 1", got)
	}
	if got := tp.NCACount(1); got != 1 {
		t.Errorf("crossbar NCA count = %d, want 1", got)
	}
}

func TestLabelIndexRoundTrip(t *testing.T) {
	tp := MustNew(3, []int{3, 4, 2}, []int{1, 2, 3})
	for level := 0; level <= tp.Height(); level++ {
		for idx := 0; idx < tp.NodesAt(level); idx++ {
			lab := tp.Label(level, idx)
			if got := tp.Index(level, lab); got != idx {
				t.Fatalf("level %d index %d -> label %v -> index %d", level, idx, lab, got)
			}
			for j, dig := range lab {
				base := tp.m[j]
				if j < level {
					base = tp.w[j]
				}
				if dig < 0 || dig >= base {
					t.Fatalf("level %d index %d digit %d = %d out of base %d", level, idx, j, dig, base)
				}
			}
		}
	}
}

func TestTableILabels(t *testing.T) {
	// Table I: leaf labels use <M_h..M_1>; level-i nodes replace the i
	// lowest digits by W digits; node counts follow N^i.
	tp := paperTree(t, 10)
	if got := tp.NodesAt(0); got != 256 {
		t.Errorf("leaves = %d, want 256", got)
	}
	if got := tp.NodesAt(1); got != 16 {
		t.Errorf("level-1 switches = %d, want 16", got)
	}
	if got := tp.NodesAt(2); got != 10 {
		t.Errorf("roots = %d, want 10", got)
	}
	// Leaf 37 = 2*16 + 5 -> <2,5>.
	if got := tp.FormatLabel(0, 37); got != "<2,5>" {
		t.Errorf("leaf 37 label = %s, want <2,5>", got)
	}
	// Level-1 switch 7 -> <7,0> (W_1 digit is always 0 since w1=1).
	if got := tp.FormatLabel(1, 7); got != "<7,0>" {
		t.Errorf("switch 7 label = %s, want <7,0>", got)
	}
}

func TestParentChildInverse(t *testing.T) {
	tp := MustNew(3, []int{3, 4, 2}, []int{1, 2, 3})
	for level := 0; level < tp.Height(); level++ {
		for idx := 0; idx < tp.NodesAt(level); idx++ {
			for p := 0; p < tp.W(level); p++ {
				parent := tp.Parent(level, idx, p)
				if parent < 0 || parent >= tp.NodesAt(level+1) {
					t.Fatalf("Parent(%d,%d,%d) = %d out of range", level, idx, p, parent)
				}
				// The down-port on the parent that returns to idx is
				// idx's digit at position level.
				c := tp.DownPortOf(level, idx)
				if got := tp.Child(level+1, parent, c); got != idx {
					t.Fatalf("Child(Parent(%d,%d,%d)=%d, %d) = %d, want %d", level, idx, p, parent, c, got, idx)
				}
				if got := tp.UpPortOf(level, parent); got != p {
					t.Fatalf("UpPortOf(%d,%d) = %d, want %d", level, parent, got, p)
				}
			}
		}
	}
}

func TestNCALevelProperties(t *testing.T) {
	tp := paperTree(t, 10)
	n := tp.Leaves()
	for s := 0; s < n; s += 7 {
		if got := tp.NCALevel(s, s); got != 0 {
			t.Fatalf("NCALevel(%d,%d) = %d, want 0", s, s, got)
		}
		for d := 0; d < n; d += 5 {
			l := tp.NCALevel(s, d)
			if l != tp.NCALevel(d, s) {
				t.Fatalf("NCALevel not symmetric for (%d,%d)", s, d)
			}
			if s != d {
				sameSwitch := s/16 == d/16
				if sameSwitch && l != 1 {
					t.Fatalf("NCALevel(%d,%d) = %d, want 1 (same switch)", s, d, l)
				}
				if !sameSwitch && l != 2 {
					t.Fatalf("NCALevel(%d,%d) = %d, want 2", s, d, l)
				}
			}
		}
	}
}

func TestNCACount(t *testing.T) {
	tp := paperTree(t, 10)
	if got := tp.NCACount(1); got != 1 {
		t.Errorf("NCACount(1) = %d, want 1", got)
	}
	if got := tp.NCACount(2); got != 10 {
		t.Errorf("NCACount(2) = %d, want 10", got)
	}
	deep := MustNew(3, []int{4, 4, 4}, []int{1, 2, 3})
	if got := deep.NCACount(3); got != 6 {
		t.Errorf("deep NCACount(3) = %d, want 6", got)
	}
}

func TestChannelIDRoundTrip(t *testing.T) {
	tp := MustNew(3, []int{3, 4, 2}, []int{1, 2, 3})
	seen := make(map[int]bool)
	for level := 0; level < tp.Height(); level++ {
		for idx := 0; idx < tp.NodesAt(level); idx++ {
			for p := 0; p < tp.W(level); p++ {
				id := tp.UpChannelID(level, idx, p)
				if id < 0 || id >= tp.TotalChannels() {
					t.Fatalf("channel ID %d out of range [0,%d)", id, tp.TotalChannels())
				}
				if seen[id] {
					t.Fatalf("duplicate channel ID %d", id)
				}
				seen[id] = true
				gl, gi, gp := tp.ChannelOf(id)
				if gl != level || gi != idx || gp != p {
					t.Fatalf("ChannelOf(%d) = (%d,%d,%d), want (%d,%d,%d)", id, gl, gi, gp, level, idx, p)
				}
			}
		}
	}
	if len(seen) != tp.TotalChannels() {
		t.Fatalf("enumerated %d channels, want %d", len(seen), tp.TotalChannels())
	}
}

func TestChannelCountsMatchPaper(t *testing.T) {
	// Paper: number of up links from level i = N^i * w_{i+1}.
	tp := MustNew(3, []int{4, 4, 4}, []int{1, 2, 2})
	for l := 0; l < tp.Height(); l++ {
		want := tp.NodesAt(l) * tp.W(l)
		if got := tp.ChannelsAt(l); got != want {
			t.Errorf("ChannelsAt(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestStringNotation(t *testing.T) {
	tp := paperTree(t, 10)
	if got, want := tp.String(), "XGFT(2;16,16;1,10)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := paperTree(t, 10)
	b := paperTree(t, 10)
	c := paperTree(t, 11)
	d := MustNew(1, []int{256}, []int{1})
	if !a.Equal(b) {
		t.Error("identical topologies not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different topologies reported Equal")
	}
}

func TestAccessorCopies(t *testing.T) {
	tp := paperTree(t, 10)
	ms := tp.Ms()
	ms[0] = 99
	if tp.M(0) == 99 {
		t.Error("Ms() returned internal slice")
	}
	ws := tp.Ws()
	ws[1] = 99
	if tp.W(1) == 99 {
		t.Error("Ws() returned internal slice")
	}
}

// randomTopology draws a small random XGFT for property tests.
func randomTopology(r *hashutil.Stream) *Topology {
	h := 1 + r.Intn(4)
	m := make([]int, h)
	w := make([]int, h)
	for i := range m {
		m[i] = 1 + r.Intn(4)
		w[i] = 1 + r.Intn(4)
	}
	w[0] = 1 + r.Intn(2)
	return MustNew(h, m, w)
}

func TestQuickLabelBijection(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		for level := 0; level <= tp.Height(); level++ {
			n := tp.NodesAt(level)
			idx := r.Intn(n)
			if tp.Index(level, tp.Label(level, idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickParentChildAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		level := r.Intn(tp.Height())
		idx := r.Intn(tp.NodesAt(level))
		p := r.Intn(tp.W(level))
		parent := tp.Parent(level, idx, p)
		// Parent label must equal child label with digit `level`
		// replaced by p.
		cl := tp.Label(level, idx)
		pl := tp.Label(level+1, parent)
		for j := 0; j < tp.Height(); j++ {
			want := cl[j]
			if j == level {
				want = p
			}
			if pl[j] != want {
				return false
			}
		}
		return tp.Child(level+1, parent, cl[level]) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickNCALevelMatchesLabels(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		n := tp.Leaves()
		s, d := r.Intn(n), r.Intn(n)
		want := 0
		sl, dl := tp.Label(0, s), tp.Label(0, d)
		for j := 0; j < tp.Height(); j++ {
			if sl[j] != dl[j] {
				want = j + 1
			}
		}
		return tp.NCALevel(s, d) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
