package xgft

import "fmt"

// Degraded topology views. A View is a Topology plus a set of failed
// wires (child-parent link pairs) and failed switches; it answers
// "does this route survive the failures" without rebuilding the
// topology, which is what lets a subnet manager patch only the routes
// that traverse a failed element. Failing a switch fails every wire
// adjacent to it, so all fault queries reduce to wire-set membership.
//
// Views are plain mutable values: derive one per fault scenario with
// Clone and mutate the copy. All read methods are safe for concurrent
// use once mutation stops (the fabric layer freezes a View per
// generation).

// SwitchID names a switch as (level, index); level 0 names a leaf.
type SwitchID struct {
	Level, Index int
}

// View is a fault overlay over an immutable Topology.
type View struct {
	topo *Topology
	// failed is a bitset over flat wire IDs [0, TotalChannels()).
	failed   []uint64
	nFailed  int
	switches []SwitchID // failed switches, in failure order
}

// NewView returns a healthy view of the topology (no failures).
func NewView(t *Topology) *View {
	return &View{
		topo:   t,
		failed: make([]uint64, (t.TotalChannels()+63)/64),
	}
}

// Topology returns the underlying (healthy) topology.
func (v *View) Topology() *Topology { return v.topo }

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	return &View{
		topo:     v.topo,
		failed:   append([]uint64(nil), v.failed...),
		nFailed:  v.nFailed,
		switches: append([]SwitchID(nil), v.switches...),
	}
}

// FailWire marks the wire with the given flat channel ID failed (both
// the up and the down channel riding it). It reports whether the wire
// was previously healthy.
func (v *View) FailWire(id int) bool {
	if id < 0 || id >= v.topo.TotalChannels() {
		return false
	}
	w, b := id/64, uint64(1)<<(id%64)
	if v.failed[w]&b != 0 {
		return false
	}
	v.failed[w] |= b
	v.nFailed++
	return true
}

// FailLink fails the wire leaving (level, index) through up-port p.
// It reports whether the link was previously healthy.
func (v *View) FailLink(level, index, p int) bool {
	if level < 0 || level >= v.topo.Height() ||
		index < 0 || index >= v.topo.NodesAt(level) ||
		p < 0 || p >= v.topo.W(level) {
		return false
	}
	return v.FailWire(v.topo.UpChannelID(level, index, p))
}

// FailSwitch fails a switch at level >= 1: every wire to its children
// and (below the roots) every wire to its parents. It reports whether
// any adjacent wire was previously healthy.
func (v *View) FailSwitch(level, index int) bool {
	t := v.topo
	if level < 1 || level > t.Height() || index < 0 || index >= t.NodesAt(level) {
		return false
	}
	any := false
	// Child-side wires: the up-port a child uses towards this switch
	// is the switch's own W-digit at position level-1, identical for
	// every child.
	p := t.UpPortOf(level-1, index)
	for c := 0; c < t.M(level-1); c++ {
		if v.FailWire(t.UpChannelID(level-1, t.Child(level, index, c), p)) {
			any = true
		}
	}
	if level < t.Height() {
		for p := 0; p < t.W(level); p++ {
			if v.FailWire(t.UpChannelID(level, index, p)) {
				any = true
			}
		}
	}
	if any {
		v.switches = append(v.switches, SwitchID{Level: level, Index: index})
	}
	return any
}

// WireFailed reports whether the wire with the given flat ID failed.
func (v *View) WireFailed(id int) bool {
	return v.failed[id/64]&(uint64(1)<<(id%64)) != 0
}

// FailedWires returns the number of failed wires.
func (v *View) FailedWires() int { return v.nFailed }

// FailedSwitches returns the switches failed through FailSwitch, in
// failure order.
func (v *View) FailedSwitches() []SwitchID {
	return append([]SwitchID(nil), v.switches...)
}

// Healthy reports whether the view carries no failures.
func (v *View) Healthy() bool { return v.nFailed == 0 }

// RouteOK reports whether the route traverses only healthy wires.
// Both halves are checked: the ascent through r.Up and the descent
// the destination label determines.
func (v *View) RouteOK(r Route) bool {
	if v.nFailed == 0 {
		return true
	}
	t := v.topo
	idx := r.Src
	for l, p := range r.Up {
		if v.WireFailed(t.UpChannelID(l, idx, p)) {
			return false
		}
		idx = t.Parent(l, idx, p)
	}
	// The descent visits the ancestors of Dst below the NCA; the wire
	// between levels i and i+1 is identified by its child-side node.
	idx = r.Dst
	for i := 0; i < len(r.Up); i++ {
		if v.WireFailed(t.UpChannelID(i, idx, r.Up[i])) {
			return false
		}
		idx = t.Parent(i, idx, r.Up[i])
	}
	return true
}

// String summarizes the fault state.
func (v *View) String() string {
	return fmt.Sprintf("view of %s: %d/%d wires failed, %d switches failed",
		v.topo, v.nFailed, v.topo.TotalChannels(), len(v.switches))
}
