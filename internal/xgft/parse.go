package xgft

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a topology from the compact notation
// "h;m1,...,mh;w1,...,wh" — e.g. "2;16,16;1,10" for the paper's
// slimmed tree — mirroring the XGFT(h;m...;w...) notation with the
// decoration stripped.
func Parse(spec string) (*Topology, error) {
	parts := strings.Split(strings.TrimSpace(spec), ";")
	if len(parts) != 3 {
		return nil, fmt.Errorf(`xgft: spec %q: want "h;m1,..,mh;w1,..,wh"`, spec)
	}
	h, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("xgft: spec %q: bad height: %v", spec, err)
	}
	m, err := parseInts(parts[1])
	if err != nil {
		return nil, fmt.Errorf("xgft: spec %q: bad m-vector: %v", spec, err)
	}
	w, err := parseInts(parts[2])
	if err != nil {
		return nil, fmt.Errorf("xgft: spec %q: bad w-vector: %v", spec, err)
	}
	return New(h, m, w)
}

func parseInts(s string) ([]int, error) {
	fields := strings.Split(s, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
