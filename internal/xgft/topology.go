// Package xgft models extended generalized fat tree (XGFT) topologies as
// defined by Öhring et al. and used by Rodriguez et al. (CLUSTER 2009).
//
// An XGFT(h; m1..mh; w1..wh) has h+1 levels. Level 0 holds the
// N = m1*m2*...*mh leaf (processing) nodes; levels 1..h hold switches.
// Every non-leaf node at level i has m_i children, and every non-root
// node at level i has w_{i+1} parents.
//
// Throughout this package levels are 0-indexed the same way as the
// paper (leaves at level 0, roots at level h), but the parameter
// vectors are 0-indexed slices: M[i] is the paper's m_{i+1} and
// W[i] is the paper's w_{i+1}.
//
// Node identity is (level, index) with index a mixed-radix number over
// the node's label digits (digit h-1 most significant). The label of a
// node at level l has digits j=0..h-1 where digits j < l are W-digits
// (range [0, W[j])) and digits j >= l are M-digits (range [0, M[j])),
// exactly the <M_h .. M_{l+1}, W_l .. W_1> labels of the paper's
// Table I.
package xgft

import (
	"errors"
	"fmt"
	"strings"
)

// MaxHeight bounds the height accepted by New. Realistic fat trees have
// h <= 6; the bound only guards against absurd allocations.
const MaxHeight = 16

// Topology is an immutable description of an XGFT(h; m...; w...).
type Topology struct {
	h int
	m []int // m[i] = paper m_{i+1}: children per node at level i+1
	w []int // w[i] = paper w_{i+1}: parents per node at level i

	leaves     int   // product of all m[i]
	nodesAt    []int // nodesAt[l] = number of nodes at level l
	upChanAt   []int // upChanAt[l] = number of up channels leaving level l
	upChanBase []int // prefix sums of upChanAt for flat channel IDs
	totalUp    int
}

// New validates the parameter vectors and constructs the topology.
// m and w must both have length h; every m_i >= 1 and w_i >= 1.
func New(h int, m, w []int) (*Topology, error) {
	if h < 1 || h > MaxHeight {
		return nil, fmt.Errorf("xgft: height %d out of range [1,%d]", h, MaxHeight)
	}
	if len(m) != h || len(w) != h {
		return nil, fmt.Errorf("xgft: need %d m-parameters and %d w-parameters, got %d and %d", h, h, len(m), len(w))
	}
	leaves := 1
	for i, mi := range m {
		if mi < 1 {
			return nil, fmt.Errorf("xgft: m[%d]=%d must be >= 1", i, mi)
		}
		if leaves > (1<<31)/mi {
			return nil, errors.New("xgft: too many leaves (overflow)")
		}
		leaves *= mi
	}
	for i, wi := range w {
		if wi < 1 {
			return nil, fmt.Errorf("xgft: w[%d]=%d must be >= 1", i, wi)
		}
	}
	t := &Topology{
		h:      h,
		m:      append([]int(nil), m...),
		w:      append([]int(nil), w...),
		leaves: leaves,
	}
	t.nodesAt = make([]int, h+1)
	for l := 0; l <= h; l++ {
		n := 1
		for j := l; j < h; j++ {
			n *= t.m[j]
		}
		for j := 0; j < l; j++ {
			n *= t.w[j]
		}
		t.nodesAt[l] = n
	}
	t.upChanAt = make([]int, h)
	t.upChanBase = make([]int, h+1)
	for l := 0; l < h; l++ {
		t.upChanAt[l] = t.nodesAt[l] * t.w[l]
		t.upChanBase[l+1] = t.upChanBase[l] + t.upChanAt[l]
	}
	t.totalUp = t.upChanBase[h]
	return t, nil
}

// MustNew is New that panics on error; intended for tests and literals
// with compile-time-known good parameters.
func MustNew(h int, m, w []int) *Topology {
	t, err := New(h, m, w)
	if err != nil {
		panic(err) //lint:allow banned Must-constructor contract: callers pass compile-time-known parameters
	}
	return t
}

// NewKaryNTree builds the k-ary n-tree XGFT(n; k,...,k; 1,k,...,k):
// N = k^n leaves and n*k^(n-1) switches, full bisection bandwidth.
func NewKaryNTree(k, n int) (*Topology, error) {
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("xgft: invalid k-ary n-tree parameters k=%d n=%d", k, n)
	}
	m := make([]int, n)
	w := make([]int, n)
	for i := range m {
		m[i] = k
		w[i] = k
	}
	w[0] = 1
	return New(n, m, w)
}

// NewSlimmedTree builds XGFT(2; m1,m2; 1,w2): the progressively slimmed
// two-level trees of the paper's evaluation (Figs. 2, 4, 5). With
// m1=m2=16 and w2=16 this is the full 16-ary 2-tree; w2 < 16 slims it.
func NewSlimmedTree(m1, m2, w2 int) (*Topology, error) {
	return New(2, []int{m1, m2}, []int{1, w2})
}

// NewFullCrossbar models the paper's ideal single-stage crossbar
// reference network as XGFT(1; n; 1): one switch, every leaf one
// injection and one ejection channel, no internal contention.
func NewFullCrossbar(n int) (*Topology, error) {
	return New(1, []int{n}, []int{1})
}

// Height returns h: the level of the root switches.
//
//repro:hotpath
func (t *Topology) Height() int { return t.h }

// Leaves returns the number of processing (level-0) nodes.
//
//repro:hotpath
func (t *Topology) Leaves() int { return t.leaves }

// M returns the paper's m_{i+1} (children per level-(i+1) node).
func (t *Topology) M(i int) int { return t.m[i] }

// W returns the paper's w_{i+1} (parents per level-i node).
func (t *Topology) W(i int) int { return t.w[i] }

// Ms returns a copy of the child-count vector (Ms()[i] = m_{i+1}).
func (t *Topology) Ms() []int { return append([]int(nil), t.m...) }

// Ws returns a copy of the parent-count vector (Ws()[i] = w_{i+1}).
func (t *Topology) Ws() []int { return append([]int(nil), t.w...) }

// NodesAt returns the number of nodes at level l (the paper's N^l).
func (t *Topology) NodesAt(l int) int { return t.nodesAt[l] }

// InnerSwitches computes the paper's Eq. (1): the total number of
// switches on levels 1..h.
func (t *Topology) InnerSwitches() int {
	total := 0
	for l := 1; l <= t.h; l++ {
		total += t.nodesAt[l]
	}
	return total
}

// IsKaryNTree reports whether the topology is a (full-bisection)
// k-ary n-tree and, if so, returns k.
func (t *Topology) IsKaryNTree() (k int, ok bool) {
	k = t.m[0]
	if t.w[0] != 1 {
		return 0, false
	}
	for i := 0; i < t.h; i++ {
		if t.m[i] != k {
			return 0, false
		}
		if i > 0 && t.w[i] != k {
			return 0, false
		}
	}
	return k, true
}

// IsSlimmed reports whether some level has fewer parents than children
// below it would need for full bisection (w_{i+1} < m_i for i >= 1),
// making the network blocking.
func (t *Topology) IsSlimmed() bool {
	for i := 1; i < t.h; i++ {
		if t.w[i] < t.m[i-1] {
			return true
		}
	}
	return false
}

// String renders the standard XGFT(h; m...; w...) notation.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XGFT(%d;", t.h)
	for i, mi := range t.m {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", mi)
	}
	b.WriteByte(';')
	for i, wi := range t.w {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", wi)
	}
	b.WriteByte(')')
	return b.String()
}

// digitBase returns the radix of digit j for a node at level l.
func (t *Topology) digitBase(level, j int) int {
	if j < level {
		return t.w[j]
	}
	return t.m[j]
}

// Label decodes the index of a node at the given level into its label
// digits, least significant (the paper's M_1/W_1) first.
func (t *Topology) Label(level, index int) []int {
	d := make([]int, t.h)
	t.LabelInto(level, index, d)
	return d
}

// LabelInto is Label without allocation; d must have length h.
func (t *Topology) LabelInto(level, index int, d []int) {
	for j := 0; j < t.h; j++ {
		base := t.digitBase(level, j)
		d[j] = index % base
		index /= base
	}
}

// Index encodes label digits (least significant first) of a node at
// the given level back into its index. Digits out of range panic via
// checkDigits in debug paths; Index itself trusts its input.
func (t *Topology) Index(level int, d []int) int {
	idx := 0
	for j := t.h - 1; j >= 0; j-- {
		idx = idx*t.digitBase(level, j) + d[j]
	}
	return idx
}

// FormatLabel renders a label the way the paper's Table I does:
// <D_h, ..., D_1> with most significant digit first.
func (t *Topology) FormatLabel(level, index int) string {
	d := t.Label(level, index)
	var b strings.Builder
	b.WriteByte('<')
	for j := t.h - 1; j >= 0; j-- {
		if j < t.h-1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d[j])
	}
	b.WriteByte('>')
	return b.String()
}

// Parent returns the index (at level+1) of the parent reached from the
// node (level, index) through up-port p in [0, W(level)).
//
//repro:hotpath
func (t *Topology) Parent(level, index, p int) int {
	// Going up replaces digit `level` (an M-digit of radix m[level])
	// with the W-digit p. Recompute the mixed-radix index with the
	// changed radix at position `level`.
	lowBase := 1
	for j := 0; j < level; j++ {
		lowBase *= t.w[j]
	}
	low := index % lowBase
	rest := index / lowBase // digits level.. with m[level] next
	high := rest / t.m[level]
	return (high*t.w[level]+p)*lowBase + low
}

// Child returns the index (at level-1) of the child reached from the
// node (level, index) through down-port c in [0, M(level-1)).
func (t *Topology) Child(level, index, c int) int {
	j := level - 1 // digit being replaced: W-digit w[j] -> M-digit c
	lowBase := 1
	for i := 0; i < j; i++ {
		lowBase *= t.w[i]
	}
	low := index % lowBase
	rest := index / lowBase
	high := rest / t.w[j]
	return (high*t.m[j]+c)*lowBase + low
}

// UpPortOf returns the up-port on child (at level) that leads to the
// given parent (at level+1), i.e. the parent's digit at position level.
func (t *Topology) UpPortOf(level, parentIndex int) int {
	lowBase := 1
	for j := 0; j < level; j++ {
		lowBase *= t.w[j]
	}
	return (parentIndex / lowBase) % t.w[level]
}

// DownPortOf returns the down-port on a parent at level+1 that leads
// to the given child (at level), i.e. the child's digit at position
// level.
func (t *Topology) DownPortOf(level, childIndex int) int {
	lowBase := 1
	for j := 0; j < level; j++ {
		lowBase *= t.w[j]
	}
	return (childIndex / lowBase) % t.m[level]
}

// NCALevel returns the level of the nearest common ancestors of two
// distinct leaves: one plus the highest digit position at which their
// labels differ. For s == d it returns 0.
func (t *Topology) NCALevel(s, d int) int {
	if s == d {
		return 0
	}
	level := 0
	for j := 0; j < t.h; j++ {
		base := t.m[j]
		if s%base != d%base {
			level = j + 1
		}
		s /= base
		d /= base
	}
	return level
}

// NCACount returns how many distinct NCAs a pair with NCA level l can
// choose from: the product w_1*...*w_l of the free W-digits.
func (t *Topology) NCACount(l int) int {
	n := 1
	for j := 0; j < l; j++ {
		n *= t.w[j]
	}
	return n
}

// NCAIndex returns the index (at level l = len(up) = NCALevel) of the
// NCA reached from leaf s by taking up-ports up[0..l-1].
func (t *Topology) NCAIndex(s int, up []int) int {
	idx := s
	for l, p := range up {
		idx = t.Parent(l, idx, p)
	}
	return idx
}

// RootOfRoute returns, for two-level trees and higher, the index of
// the top-level ancestor a route through the given NCA would use if
// extended; for the common h=2 evaluation topologies the NCA at level
// 2 is itself a root.
//
// UpChannelID flat-numbers the up channel leaving (level, index)
// through port p; the same ID also identifies the paired down channel
// (parent -> child over the same wire). IDs are dense in
// [0, TotalChannels()).
//
//repro:hotpath
func (t *Topology) UpChannelID(level, index, p int) int {
	return t.upChanBase[level] + index*t.w[level] + p
}

// ChannelOf decodes a flat channel ID back into (level, index, port)
// where index is the lower (child-side) endpoint.
func (t *Topology) ChannelOf(id int) (level, index, p int) {
	level = 0
	for level+1 < t.h && id >= t.upChanBase[level+1] {
		level++
	}
	id -= t.upChanBase[level]
	return level, id / t.w[level], id % t.w[level]
}

// TotalChannels returns the number of distinct child-parent wire pairs
// (each carrying one up and one down channel).
func (t *Topology) TotalChannels() int { return t.totalUp }

// ChannelsAt returns the number of up channels leaving level l.
func (t *Topology) ChannelsAt(l int) int { return t.upChanAt[l] }

// Equal reports structural equality of two topologies.
func (t *Topology) Equal(o *Topology) bool {
	if t.h != o.h {
		return false
	}
	for i := 0; i < t.h; i++ {
		if t.m[i] != o.m[i] || t.w[i] != o.w[i] {
			return false
		}
	}
	return true
}
