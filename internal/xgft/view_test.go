package xgft

import "testing"

func TestViewHealthy(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	v := NewView(tp)
	if !v.Healthy() || v.FailedWires() != 0 {
		t.Fatalf("fresh view not healthy: %s", v)
	}
	r := Route{Src: 0, Dst: 5, Up: []int{0, 2}}
	if !v.RouteOK(r) {
		t.Fatalf("healthy view rejected route %v", r)
	}
}

func TestViewFailLink(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	v := NewView(tp)
	if !v.FailLink(1, 0, 2) {
		t.Fatalf("FailLink reported already-failed on healthy view")
	}
	if v.FailLink(1, 0, 2) {
		t.Fatalf("FailLink reported newly-failed twice")
	}
	if v.FailedWires() != 1 {
		t.Fatalf("FailedWires = %d, want 1", v.FailedWires())
	}
	if !v.WireFailed(tp.UpChannelID(1, 0, 2)) {
		t.Fatalf("failed wire not reported failed")
	}

	// A route ascending through the failed link must be rejected; the
	// same pair through another root must pass. Src 0 and dst 5 sit
	// under different leaf switches (labels <0,0> and <1,1>), so the
	// ascent reaches level 2 through switch (1, 0).
	bad := Route{Src: 0, Dst: 5, Up: []int{0, 2}}
	if v.RouteOK(bad) {
		t.Fatalf("route through failed up-wire accepted")
	}
	good := Route{Src: 0, Dst: 5, Up: []int{0, 3}}
	if !v.RouteOK(good) {
		t.Fatalf("route avoiding failed wire rejected")
	}
	// The paired down channel fails with the wire: a route descending
	// through (1,0) port 2 — i.e. dst under switch 0 with NCA digit 2 —
	// is rejected too.
	badDown := Route{Src: 5, Dst: 0, Up: []int{0, 2}}
	if v.RouteOK(badDown) {
		t.Fatalf("route through failed down-wire accepted")
	}
}

func TestViewOutOfRange(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	v := NewView(tp)
	if v.FailLink(-1, 0, 0) || v.FailLink(2, 0, 0) || v.FailLink(1, 99, 0) || v.FailLink(1, 0, 9) {
		t.Fatalf("out-of-range FailLink reported success")
	}
	if v.FailWire(-1) || v.FailWire(tp.TotalChannels()) {
		t.Fatalf("out-of-range FailWire reported success")
	}
	if v.FailSwitch(0, 0) || v.FailSwitch(3, 0) {
		t.Fatalf("out-of-range FailSwitch reported success")
	}
	if !v.Healthy() {
		t.Fatalf("rejected failures mutated the view: %s", v)
	}
}

func TestViewFailSwitch(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	v := NewView(tp)
	// Root 2: its four child wires are the port-2 up-links of the four
	// level-1 switches. Roots have no parents, so exactly 4 wires fail.
	if !v.FailSwitch(2, 2) {
		t.Fatalf("FailSwitch reported nothing newly failed")
	}
	if v.FailedWires() != tp.M(1) {
		t.Fatalf("root failure killed %d wires, want %d", v.FailedWires(), tp.M(1))
	}
	for s := 0; s < tp.NodesAt(1); s++ {
		if !v.WireFailed(tp.UpChannelID(1, s, 2)) {
			t.Fatalf("wire (1,%d,2) to failed root still healthy", s)
		}
	}
	if got := v.FailedSwitches(); len(got) != 1 || got[0] != (SwitchID{Level: 2, Index: 2}) {
		t.Fatalf("FailedSwitches = %v", got)
	}
	if v.FailSwitch(2, 2) {
		t.Fatalf("re-failing a dead switch reported new failures")
	}

	// A mid-level switch also loses its parent-side wires.
	v2 := NewView(MustNew(3, []int{2, 2, 2}, []int{1, 2, 2}))
	if !v2.FailSwitch(1, 0) {
		t.Fatalf("FailSwitch(1,0) reported nothing newly failed")
	}
	// 2 children below (w1=1 wire each) + 2 parents above.
	if v2.FailedWires() != 4 {
		t.Fatalf("mid-level switch failure killed %d wires, want 4", v2.FailedWires())
	}
}

func TestViewCloneIndependence(t *testing.T) {
	tp := MustNew(2, []int{4, 4}, []int{1, 4})
	v := NewView(tp)
	v.FailLink(1, 0, 0)
	c := v.Clone()
	c.FailLink(1, 0, 1)
	c.FailSwitch(2, 3)
	if v.FailedWires() != 1 {
		t.Fatalf("mutating the clone changed the original: %s", v)
	}
	if !c.WireFailed(tp.UpChannelID(1, 0, 0)) {
		t.Fatalf("clone lost the original's failure")
	}
}
