package xgft

import (
	"repro/internal/hashutil"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		spec   string
		leaves int
		h      int
	}{
		{"2;16,16;1,16", 256, 2},
		{"2;16,16;1,10", 256, 2},
		{" 3;4,4,4;1,2,2 ", 64, 3},
		{"1;64;1", 64, 1},
		{"2; 8 , 8 ; 1 , 4", 64, 2},
	}
	for _, c := range cases {
		tp, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if tp.Leaves() != c.leaves || tp.Height() != c.h {
			t.Errorf("Parse(%q) = %v", c.spec, tp)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"2;16,16",
		"2;16,16;1,16;extra",
		"x;16,16;1,16",
		"2;16,x;1,16",
		"2;16,16;1,x",
		"2;16;1,16",
		"0;;",
		"2;16,16;1,0",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseQuickRoundTrip(t *testing.T) {
	// Parse is the inverse of the String notation minus decoration.
	f := func(seed int64) bool {
		r := newRand(seed)
		tp := randomTopology(r)
		s := tp.String() // XGFT(h;m...;w...)
		spec := s[len("XGFT(") : len(s)-1]
		got, err := Parse(spec)
		if err != nil {
			return false
		}
		return got.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func newRand(seed int64) *hashutil.Stream { return hashutil.NewStream(uint64(seed)) }
