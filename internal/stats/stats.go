// Package stats provides the descriptive statistics behind the
// paper's boxplot figures: five-number summaries (min, quartiles,
// median, max) over the 40-60 seeded samples per configuration, plus
// means and standard deviations for reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a boxplot five-number summary plus moments.
type Summary struct {
	N              int
	Min, Max       float64
	Q1, Median, Q3 float64
	Mean, StdDev   float64
}

// Summarize computes the summary of the samples. It panics on an
// empty slice: summarizing nothing is a programming error.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("stats: summarizing empty sample set") //lint:allow banned documented precondition; empty input is a programming error
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	// Two-pass variance: the textbook E[x²]-E[x]² form catastrophically
	// cancels for large-magnitude samples with small spread (makespans
	// around 1e9 ns would report a zero or garbage StdDev).
	var m2 float64
	for _, v := range s {
		d := v - mean
		m2 += d * d
	}
	variance := m2 / float64(n)
	return Summary{
		N:      n,
		Min:    s[0],
		Max:    s[n-1],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

// quantile interpolates linearly between order statistics (type-7
// quantile, the common default).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// String renders the summary the way EXPERIMENTS.md tables expect.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f (n=%d)",
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.N)
}

// SummarizeInts is Summarize over integer samples (Fig. 4 censuses).
func SummarizeInts(samples []int) Summary {
	f := make([]float64, len(samples))
	for i, v := range samples {
		f[i] = float64(v)
	}
	return Summarize(f)
}
