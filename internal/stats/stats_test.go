package stats

import (
	"math"
	"repro/internal/hashutil"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %.2f/%.2f, want 2/4", s.Q1, s.Q3)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %.2f", s.Mean)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %.4f, want sqrt(2)", s.StdDev)
	}
	if s.IQR() != 2 {
		t.Errorf("IQR = %.2f", s.IQR())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 || s.StdDev != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]float64{2.5, 2.5, 2.5, 2.5})
	if s.StdDev != 0 {
		t.Errorf("constant samples have stddev %.9f", s.StdDev)
	}
}

func TestSummarizeLargeOffsetStdDev(t *testing.T) {
	// Samples with a huge common offset and tiny spread: the old
	// E[x²]-E[x]² variance cancelled catastrophically here (makespans
	// around 1e9 ns reported a zero or garbage StdDev). The two-pass
	// form is exact: variance of {0,1,2} is 2/3 regardless of offset.
	s := Summarize([]float64{1e9, 1e9 + 1, 1e9 + 2})
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Errorf("offset samples stddev = %.12f, want %.12f", s.StdDev, want)
	}
	if s.Mean != 1e9+1 {
		t.Errorf("offset samples mean = %.3f, want 1e9+1", s.Mean)
	}
}

func TestSummarizeInterpolation(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("even-count median = %.3f, want 2.5", s.Median)
	}
	if math.Abs(s.Q1-1.75) > 1e-12 || math.Abs(s.Q3-3.25) > 1e-12 {
		t.Errorf("quartiles = %.3f/%.3f, want 1.75/3.25", s.Q1, s.Q3)
	}
}

func TestSummarizeUnsortedInputUnchanged(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	Summarize(in)
	if in[0] != 5 || in[4] != 3 {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Summarize(nil)
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{10, 20, 30})
	if s.Median != 20 || s.Min != 10 || s.Max != 30 {
		t.Errorf("int summary = %+v", s)
	}
}

func TestStringFormat(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, part := range []string{"min=", "med=", "max=", "n=3"} {
		if !strings.Contains(str, part) {
			t.Errorf("String() = %q missing %q", str, part)
		}
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		n := 1 + rng.Intn(100)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = (rng.Float64() - 0.5) * 20
		}
		s := Summarize(samples)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
