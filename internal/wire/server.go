package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DefaultTimeout is the per-frame read/write deadline when
// Server.Timeout is zero: a peer that stalls mid-frame (slow-loris)
// or stops draining responses is cut loose instead of pinning a
// goroutine and its buffers forever.
const DefaultTimeout = 30 * time.Second

// Resolver is the store a Server fronts: a batch resolve into packed
// route words, tagged with the generation it was served from.
// fabric.Fabric implements it.
type Resolver interface {
	ResolveBatchPacked(pairs [][2]int, out []uint64) (resolved int, generation uint64)
}

// Server serves the binary resolve protocol over a listener: one
// goroutine per connection, each owning a reusable read buffer, pair
// batch, packed batch and response buffer, so the steady-state
// request loop performs zero allocations per resolve. Protocol
// violations get one best-effort error frame and the connection is
// closed; well-formed traffic is served until the peer disconnects,
// a deadline expires, or the server closes.
type Server struct {
	// Resolver answers the batches. Required.
	Resolver Resolver
	// Timeout is the per-frame read deadline and per-response write
	// deadline; 0 means DefaultTimeout. Tests use short values to
	// exercise the slow-loris path quickly.
	Timeout time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("wire: server closed")

func (s *Server) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return DefaultTimeout
}

// track registers a listener or connection for Close; it reports
// false (and closes nothing) when the server is already closed.
func (s *Server) track(l net.Listener, c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if l != nil {
		if s.listeners == nil {
			s.listeners = make(map[net.Listener]struct{})
		}
		s.listeners[l] = struct{}{}
	}
	if c != nil {
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	}
	return true
}

func (s *Server) untrack(l net.Listener, c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l != nil {
		delete(s.listeners, l)
	}
	if c != nil {
		delete(s.conns, c)
	}
}

// Serve accepts connections on l until the listener fails or the
// server is closed. It always closes l before returning.
func (s *Server) Serve(l net.Listener) error {
	if s.Resolver == nil {
		l.Close()
		return errors.New("wire: Server.Resolver is required")
	}
	if !s.track(l, nil) {
		l.Close()
		return ErrServerClosed
	}
	defer func() {
		s.untrack(l, nil)
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		if !s.track(nil, conn) {
			conn.Close()
			return ErrServerClosed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(nil, conn)
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every active connection, and waits
// for the per-connection goroutines to drain — after Close returns no
// server goroutine remains.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn is the per-connection request loop; every buffer it needs
// is allocated once here and reused for the connection's lifetime.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	timeout := s.timeout()
	fr := NewFrameReader(bufio.NewReaderSize(conn, 64<<10))
	pairs := make([][2]int, 0, 1024)
	packed := make([]uint64, 0, 1024)
	wbuf := make([]byte, 0, 16<<10)
	fail := func(code byte, msg string) {
		// Best-effort: the peer may already be gone, and the
		// connection closes either way.
		conn.SetWriteDeadline(time.Now().Add(timeout))
		conn.Write(AppendError(wbuf[:0], code, msg))
	}
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		typ, payload, err := fr.Read()
		if err != nil {
			// A clean close between frames needs no error frame; a
			// malformed header gets one so the peer can tell protocol
			// rejection from a network fault.
			if err == io.EOF {
				return
			}
			code := byte(ErrCodeMalformed)
			if errors.Is(err, ErrTooLarge) {
				code = ErrCodeOverflow
			}
			fail(code, err.Error())
			return
		}
		if typ != TypeResolveRequest {
			fail(ErrCodeBadType, fmt.Sprintf("unexpected frame type %d (want resolve request)", typ))
			return
		}
		pairs, err = DecodeResolveRequest(payload, pairs[:0])
		if err != nil {
			fail(ErrCodeMalformed, err.Error())
			return
		}
		if cap(packed) < len(pairs) {
			packed = make([]uint64, len(pairs))
		}
		packed = packed[:len(pairs)]
		_, gen := s.Resolver.ResolveBatchPacked(pairs, packed)
		wbuf, err = AppendResolveResponse(wbuf[:0], gen, packed)
		if err != nil {
			fail(ErrCodeServer, err.Error())
			return
		}
		conn.SetWriteDeadline(time.Now().Add(timeout))
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}
