package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Span names the server records, as constants for repolint's obskeys
// pass. wire.request covers one frame from decode through response
// write; decode/resolve/encode are its stage children, recorded only
// for sampled traces.
const (
	spanRequest = "wire.request"
	spanDecode  = "wire.decode"
	spanResolve = "wire.resolve"
	spanEncode  = "wire.encode"

	attrPairs = "pairs"
	attrGen   = "gen"
)

// SpanNames lists every span name this package records, for the
// documentation drift test.
func SpanNames() []string {
	return []string{spanRequest, spanDecode, spanResolve, spanEncode}
}

// DefaultTimeout is the per-frame read/write deadline when
// Server.Timeout is zero: a peer that stalls mid-frame (slow-loris)
// or stops draining responses is cut loose instead of pinning a
// goroutine and its buffers forever.
const DefaultTimeout = 30 * time.Second

// Resolver is the store a Server fronts: a batch resolve into packed
// route words, tagged with the generation it was served from.
// fabric.Fabric implements it.
type Resolver interface {
	ResolveBatchPacked(pairs [][2]int, out []uint64) (resolved int, generation uint64)
}

// TracedResolver is the optional extension a Resolver implements to
// join the server's trace: the batch span it records becomes a child
// of the wire request's resolve span instead of a locally minted
// root. fabric.Fabric implements it.
type TracedResolver interface {
	ResolveBatchPackedTraced(parent trace.SpanContext, pairs [][2]int, out []uint64) (resolved int, generation uint64)
}

// Server serves the binary resolve protocol over a listener: one
// goroutine per connection, each owning a reusable read buffer, pair
// batch, packed batch and response buffer, so the steady-state
// request loop performs zero allocations per resolve. Protocol
// violations get one best-effort error frame and the connection is
// closed; well-formed traffic is served until the peer disconnects,
// a deadline expires, or the server closes.
type Server struct {
	// Resolver answers the batches. Required.
	Resolver Resolver
	// Timeout is the per-frame read deadline and per-response write
	// deadline; 0 means DefaultTimeout. Tests use short values to
	// exercise the slow-loris path quickly.
	Timeout time.Duration
	// Metrics, when set, registers the wire_* instruments (frames,
	// bytes, deadline cuts, connection counts, request latency) on the
	// registry. Per-connection stats are kept either way.
	Metrics *obs.Registry
	// Tracer, when set, records a wire.request span per frame. Traced
	// (type 4) requests join the client's trace and inherit its
	// sampling verdict; plain requests get a locally minted root keyed
	// by connection and frame coordinates. nil disables spans; the
	// timing trailer on traced responses is filled either way.
	Tracer *trace.Tracer

	mu        sync.Mutex
	listeners map[net.Listener]struct{} // guarded by mu
	conns     map[net.Conn]*connState   // guarded by mu
	closed    bool                      // guarded by mu
	wg        sync.WaitGroup
	m         *serverMetrics
	connSeq   atomic.Uint64
}

// serverMetrics are the registry instruments a Server records into.
// Counters shard by connection id, so busy peers do not contend.
type serverMetrics struct {
	frames       *obs.Counter
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	deadlineCuts *obs.Counter
	conns        *obs.Counter
	connsActive  *obs.Gauge
	requestNS    *obs.Histogram
}

// Metric names as constants so repolint's obskeys pass keeps the
// inventory greppable.
const (
	metricFrames       = "wire_frames_total"
	metricBytesRead    = "wire_bytes_read_total"
	metricBytesWritten = "wire_bytes_written_total"
	metricDeadlineCuts = "wire_deadline_cuts_total"
	metricConns        = "wire_conns_total"
	metricConnsActive  = "wire_conns_active"
	metricRequestNS    = "wire_request_ns"
)

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		frames:       reg.Counter(metricFrames, "resolve request frames served", 8),
		bytesRead:    reg.Counter(metricBytesRead, "bytes read from resolve peers", 8),
		bytesWritten: reg.Counter(metricBytesWritten, "bytes written to resolve peers", 8),
		deadlineCuts: reg.Counter(metricDeadlineCuts, "connections cut by a read/write deadline", 1),
		conns:        reg.Counter(metricConns, "connections accepted", 1),
		connsActive:  reg.Gauge(metricConnsActive, "connections currently open"),
		requestNS:    reg.Histogram(metricRequestNS, "server-side resolve service time (decode, resolve, respond)"),
	}
}

// connState is one connection's live stat block, updated with atomics
// on the serve path and snapshotted by ConnStats.
type connState struct {
	id           uint64
	remote       string
	frames       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	deadlineCuts atomic.Uint64
}

// ConnStats is a point-in-time snapshot of one open connection.
type ConnStats struct {
	RemoteAddr   string `json:"remote_addr"`
	Frames       uint64 `json:"frames"`
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
	DeadlineCuts uint64 `json:"deadline_cuts"`
}

// ConnStats snapshots every open connection's counters, ordered by
// accept order (oldest first).
func (s *Server) ConnStats() []ConnStats {
	s.mu.Lock()
	states := make([]*connState, 0, len(s.conns))
	for _, st := range s.conns {
		states = append(states, st)
	}
	s.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]ConnStats, len(states))
	for i, st := range states {
		out[i] = ConnStats{
			RemoteAddr:   st.remote,
			Frames:       st.frames.Load(),
			BytesRead:    st.bytesRead.Load(),
			BytesWritten: st.bytesWritten.Load(),
			DeadlineCuts: st.deadlineCuts.Load(),
		}
	}
	return out
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("wire: server closed")

func (s *Server) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return DefaultTimeout
}

// track registers a listener for Close; it reports false (and closes
// nothing) when the server is already closed.
func (s *Server) track(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.m == nil && s.Metrics != nil {
		s.m = newServerMetrics(s.Metrics)
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[l] = struct{}{}
	return true
}

// trackConn registers a connection for Close and allocates its stat
// block; it reports false when the server is already closed.
func (s *Server) trackConn(c net.Conn) (*connState, bool) {
	st := &connState{id: s.connSeq.Add(1)}
	if addr := c.RemoteAddr(); addr != nil {
		st.remote = addr.String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]*connState)
	}
	s.conns[c] = st
	if s.m != nil {
		s.m.conns.Inc()
		s.m.connsActive.Add(1)
	}
	return st, true
}

func (s *Server) untrack(l net.Listener, c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l != nil {
		delete(s.listeners, l)
	}
	if c != nil {
		if _, ok := s.conns[c]; ok && s.m != nil {
			s.m.connsActive.Add(-1)
		}
		delete(s.conns, c)
	}
}

// Serve accepts connections on l until the listener fails or the
// server is closed. It always closes l before returning.
func (s *Server) Serve(l net.Listener) error {
	if s.Resolver == nil {
		l.Close()
		return errors.New("wire: Server.Resolver is required")
	}
	if !s.track(l) {
		l.Close()
		return ErrServerClosed
	}
	defer func() {
		s.untrack(l, nil)
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		st, ok := s.trackConn(conn)
		if !ok {
			conn.Close()
			return ErrServerClosed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(nil, conn)
			s.serveConn(conn, st)
		}()
	}
}

// Close stops accepting, closes every active connection, and waits
// for the per-connection goroutines to drain — after Close returns no
// server goroutine remains.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// countingReader feeds the connection's bufio reader while crediting
// bytes to the per-connection stat block and the registry counter.
type countingReader struct {
	conn net.Conn
	st   *connState
	m    *serverMetrics
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.conn.Read(p)
	if n > 0 {
		r.st.bytesRead.Add(uint64(n))
		if r.m != nil {
			r.m.bytesRead.AddAt(r.st.id, uint64(n))
		}
	}
	return n, err
}

// deadlineCut reports whether err is a deadline expiry (as opposed to
// a peer disconnect or protocol fault).
func deadlineCut(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serveConn is the per-connection request loop; every buffer it needs
// is allocated once here and reused for the connection's lifetime, so
// the steady state — metrics included — allocates nothing per frame.
func (s *Server) serveConn(conn net.Conn, st *connState) {
	defer conn.Close()
	timeout := s.timeout()
	m := s.m
	tracer := s.Tracer
	var tres TracedResolver
	if tracer != nil {
		// Only worth the indirection when spans are on; the plain
		// interface call stays on the tracerless path.
		tres, _ = s.Resolver.(TracedResolver)
	}
	fr := NewFrameReader(bufio.NewReaderSize(&countingReader{conn: conn, st: st, m: m}, 64<<10))
	pairs := make([][2]int, 0, 1024)
	packed := make([]uint64, 0, 1024)
	wbuf := make([]byte, 0, 16<<10)
	cut := func(err error) {
		if deadlineCut(err) {
			st.deadlineCuts.Add(1)
			if m != nil {
				m.deadlineCuts.Inc()
			}
		}
	}
	write := func(buf []byte) error {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		n, err := conn.Write(buf)
		if n > 0 {
			st.bytesWritten.Add(uint64(n))
			if m != nil {
				m.bytesWritten.AddAt(st.id, uint64(n))
			}
		}
		if err != nil {
			cut(err)
		}
		return err
	}
	fail := func(code byte, msg string) {
		// Best-effort: the peer may already be gone, and the
		// connection closes either way.
		write(AppendError(wbuf[:0], code, msg))
	}
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		typ, payload, err := fr.Read()
		if err != nil {
			// A clean close between frames needs no error frame; a
			// malformed header gets one so the peer can tell protocol
			// rejection from a network fault.
			cut(err)
			if err == io.EOF {
				return
			}
			code := byte(ErrCodeMalformed)
			if errors.Is(err, ErrTooLarge) {
				code = ErrCodeOverflow
			}
			fail(code, err.Error())
			return
		}
		traced := typ == TypeResolveRequestTraced
		start := time.Now()
		if typ != TypeResolveRequest && !traced {
			fail(ErrCodeBadType, fmt.Sprintf("unexpected frame type %d (want resolve request)", typ))
			return
		}
		// The request span joins the client's trace when one came over
		// the wire (keeping its sampling verdict), else it gets a local
		// root keyed by connection and frame coordinates.
		var parent trace.SpanContext
		body := payload
		if traced {
			tc, terr := ParseTraceContext(payload)
			if terr != nil {
				fail(ErrCodeMalformed, terr.Error())
				return
			}
			parent = trace.SpanContext{
				Trace: trace.TraceID{Hi: tc.TraceHi, Lo: tc.TraceLo},
				Span:  tc.SpanID,
				Flags: tc.Flags,
			}
			body = payload[TraceContextSize:]
		} else {
			parent = tracer.Root(st.id, st.frames.Load()+1)
		}
		req := tracer.StartSpan(parent, spanRequest)
		ds := tracer.StartChild(req.Context(), spanDecode)
		pairs, err = DecodeResolveRequest(body, pairs[:0])
		ds.End()
		if err != nil {
			req.End()
			fail(ErrCodeMalformed, err.Error())
			return
		}
		var tm Timing
		tm.DecodeNS = time.Since(start).Nanoseconds()
		if cap(packed) < len(pairs) {
			packed = make([]uint64, len(pairs))
		}
		packed = packed[:len(pairs)]
		rs := tracer.StartChild(req.Context(), spanResolve)
		resolveStart := time.Now()
		var gen uint64
		if tres != nil {
			// Nest the resolver's own span under wire.resolve (under
			// the request when sampling dropped the stage child).
			rparent := rs.Context()
			if !rparent.Valid() {
				rparent = req.Context()
			}
			_, gen = tres.ResolveBatchPackedTraced(rparent, pairs, packed)
		} else {
			_, gen = s.Resolver.ResolveBatchPacked(pairs, packed)
		}
		tm.ResolveNS = time.Since(resolveStart).Nanoseconds()
		rs.SetAttr(attrPairs, int64(len(pairs)))
		rs.End()
		es := tracer.StartChild(req.Context(), spanEncode)
		encodeStart := time.Now()
		if traced {
			wbuf, err = AppendResolveResponseTraced(wbuf[:0], gen, packed, Timing{})
		} else {
			wbuf, err = AppendResolveResponse(wbuf[:0], gen, packed)
		}
		tm.EncodeNS = time.Since(encodeStart).Nanoseconds()
		es.End()
		if err != nil {
			req.End()
			fail(ErrCodeServer, err.Error())
			return
		}
		if traced {
			tm.TotalNS = time.Since(start).Nanoseconds()
			PatchTiming(wbuf, tm)
		}
		werr := write(wbuf)
		req.SetAttr(attrPairs, int64(len(pairs)))
		req.SetAttr(attrGen, int64(gen))
		req.End()
		if werr != nil {
			return
		}
		st.frames.Add(1)
		if m != nil {
			m.frames.AddAt(st.id, 1)
			m.requestNS.Observe(time.Since(start).Nanoseconds())
		}
	}
}
