package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/hashutil"
	"repro/internal/trace"
)

func TestTracedRequestRoundTrip(t *testing.T) {
	tc := TraceContext{TraceHi: 0x1122334455667788, TraceLo: 0x99AABBCCDDEEFF00, SpanID: 0xCAFE, Flags: 1}
	pairs := [][2]int{{0, 1}, {MaxEndpoint, 7}, {3, 3}}
	frame, err := AppendResolveRequestTraced(nil, tc, pairs)
	if err != nil {
		t.Fatal(err)
	}
	typ, n, err := ParseHeader(frame)
	if err != nil || typ != TypeResolveRequestTraced || n != len(frame)-HeaderSize {
		t.Fatalf("header: typ %d len %d err %v", typ, n, err)
	}
	if v := frame[2]; v != VersionTraced {
		t.Fatalf("traced request carries version %d, want %d", v, VersionTraced)
	}
	gotTC, gotPairs, err := DecodeResolveRequestTraced(frame[HeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotTC != tc {
		t.Fatalf("trace context %+v, want %+v", gotTC, tc)
	}
	if len(gotPairs) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(gotPairs), len(pairs))
	}
	for i := range pairs {
		if gotPairs[i] != pairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, gotPairs[i], pairs[i])
		}
	}
	// The batch after the context prefix is byte-identical to a v1
	// request payload for the same pairs.
	v1, err := AppendResolveRequest(nil, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[HeaderSize+TraceContextSize:], v1[HeaderSize:]) {
		t.Fatal("traced request batch bytes differ from the v1 encoding")
	}
}

func TestTracedResponseRoundTripAndPatch(t *testing.T) {
	packed := []uint64{0, ^uint64(0), 0xDEAD}
	frame, err := AppendResolveResponseTraced(nil, 42, packed, Timing{})
	if err != nil {
		t.Fatal(err)
	}
	if v := frame[2]; v != VersionTraced {
		t.Fatalf("traced response carries version %d, want %d", v, VersionTraced)
	}
	// The resolve payload proper sits at the same offsets as a v1
	// response, byte for byte; only the trailer is new.
	v1, err := AppendResolveResponse(nil, 42, packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[HeaderSize:len(frame)-TimingSize], v1[HeaderSize:]) {
		t.Fatal("traced response resolve bytes differ from the v1 encoding")
	}

	tm := Timing{TotalNS: 1000, DecodeNS: 100, ResolveNS: 700, EncodeNS: 150}
	if err := PatchTiming(frame, tm); err != nil {
		t.Fatal(err)
	}
	gen, gotPacked, gotTM, err := DecodeResolveResponseTraced(frame[HeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || gotTM != tm {
		t.Fatalf("gen %d tm %+v, want 42 %+v", gen, gotTM, tm)
	}
	for i := range packed {
		if gotPacked[i] != packed[i] {
			t.Fatalf("packed[%d] = %#x, want %#x", i, gotPacked[i], packed[i])
		}
	}

	if err := PatchTiming(frame[:HeaderSize+12], tm); err == nil {
		t.Error("PatchTiming accepted a frame with no room for a trailer")
	}
}

func TestParseHeaderVersionByType(t *testing.T) {
	mk := func(version, typ byte) []byte {
		h := make([]byte, HeaderSize)
		binary.BigEndian.PutUint16(h[0:2], Magic)
		h[2], h[3] = version, typ
		return h
	}
	ok := []struct{ v, typ byte }{
		{Version, TypeResolveRequest},
		{Version, TypeResolveResponse},
		{Version, TypeError},
		{VersionTraced, TypeResolveRequestTraced},
		{VersionTraced, TypeResolveResponseTraced},
	}
	for _, c := range ok {
		if _, _, err := ParseHeader(mk(c.v, c.typ)); err != nil {
			t.Errorf("version %d type %d rejected: %v", c.v, c.typ, err)
		}
	}
	bad := []struct{ v, typ byte }{
		{Version, TypeResolveRequestTraced},  // traced type under v1
		{Version, TypeResolveResponseTraced}, // traced type under v1
		{VersionTraced, TypeResolveRequest},  // v1 type under v2
		{VersionTraced, TypeError},           // v1 type under v2
		{3, TypeResolveRequest},              // unknown version
		{VersionTraced, 6},                   // unknown type
	}
	for _, c := range bad {
		if _, _, err := ParseHeader(mk(c.v, c.typ)); err == nil {
			t.Errorf("version %d type %d accepted", c.v, c.typ)
		}
	}
}

func TestTracedDecodeRejectsMalformed(t *testing.T) {
	if _, err := ParseTraceContext(make([]byte, TraceContextSize)); err == nil {
		t.Error("context prefix with no batch accepted")
	}
	if _, _, err := DecodeResolveRequestTraced(make([]byte, 10), nil); err == nil {
		t.Error("short traced request accepted")
	}
	// Valid prefix, corrupt batch count.
	frame, _ := AppendResolveRequestTraced(nil, TraceContext{}, [][2]int{{1, 2}})
	payload := append([]byte{}, frame[HeaderSize:]...)
	binary.BigEndian.PutUint32(payload[TraceContextSize:], 9)
	if _, _, err := DecodeResolveRequestTraced(payload, nil); err == nil {
		t.Error("traced request with wrong count accepted")
	}
	if _, _, _, err := DecodeResolveResponseTraced(make([]byte, 12), nil); err == nil {
		t.Error("traced response with no trailer accepted")
	}
	// Trailer present but body count wrong.
	resp, _ := AppendResolveResponseTraced(nil, 1, []uint64{5}, Timing{})
	payload = append([]byte{}, resp[HeaderSize:]...)
	binary.BigEndian.PutUint32(payload[8:12], 7)
	if _, _, _, err := DecodeResolveResponseTraced(payload, nil); err == nil {
		t.Error("traced response with wrong count accepted")
	}
}

// startTracedServer is startServer with a tracer attached.
func startTracedServer(t *testing.T, r Resolver, tr *trace.Tracer) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Resolver: r, Timeout: 2 * time.Second, Tracer: tr}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		select {
		case err := <-done:
			if !errors.Is(err, ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	return l.Addr().String()
}

// TestServerTracedEndToEnd drives traced frames through a live server
// and checks the three promises: payloads match the untraced path
// byte-for-byte, the timing trailer is filled and internally
// consistent, and the server's spans join the client's trace.
func TestServerTracedEndToEnd(t *testing.T) {
	f := testFabric(t, false)
	tr := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 64})
	addr := startTracedServer(t, f, tr)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n := f.Topology().Leaves()
	st := hashutil.NewStream(0x7a, 2)
	pairs := make([][2]int, 300)
	for i := range pairs {
		pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
	}
	client := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 16})
	sc := client.Root(1, 1)
	tc := TraceContext{TraceHi: sc.Trace.Hi, TraceLo: sc.Trace.Lo, SpanID: sc.Span, Flags: sc.Flags}

	gen, packed, tm, err := c.ResolveBatchPackedTraced(tc, pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(pairs))
	wantGen := f.Generation().Seq()
	f.Generation().ResolveBatchPacked(pairs, want)
	if gen != wantGen {
		t.Errorf("generation %d, want %d", gen, wantGen)
	}
	for i := range want {
		if packed[i] != want[i] {
			t.Fatalf("pair %v: packed %#x traced, %#x in process", pairs[i], packed[i], want[i])
		}
	}
	if tm.TotalNS <= 0 {
		t.Errorf("timing trailer not filled: %+v", tm)
	}
	if sum := tm.DecodeNS + tm.ResolveNS + tm.EncodeNS; sum > tm.TotalNS {
		t.Errorf("stage sum %d exceeds total %d", sum, tm.TotalNS)
	}

	// The server's spans joined our trace: the flight recorder holds a
	// wire.request rooted at our span, with the stage children inside.
	byName := map[string]trace.SpanRecord{}
	for _, rec := range tr.Spans(0) {
		byName[rec.Name] = rec
	}
	req, ok := byName["wire.request"]
	if !ok {
		t.Fatalf("no wire.request span recorded; got %v", byName)
	}
	if req.TraceID != sc.Trace.String() {
		t.Errorf("server span trace %s, want client trace %s", req.TraceID, sc.Trace.String())
	}
	if !req.Sampled {
		t.Error("server span did not inherit the client's sampling verdict")
	}
	if req.Attrs["pairs"] != int64(len(pairs)) {
		t.Errorf("wire.request attrs = %v", req.Attrs)
	}
	for _, stage := range []string{"wire.decode", "wire.resolve", "wire.encode"} {
		child, ok := byName[stage]
		if !ok {
			t.Errorf("no %s span recorded", stage)
			continue
		}
		if child.Parent != req.SpanID {
			t.Errorf("%s parent = %s, want %s", stage, child.Parent, req.SpanID)
		}
	}

	// Plain v1 requests keep working on the same connection — the
	// traced protocol is additive.
	genV1, packedV1, err := c.ResolveBatchPacked(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if genV1 != gen {
		t.Errorf("v1 generation %d after traced %d", genV1, gen)
	}
	for i := range want {
		if packedV1[i] != want[i] {
			t.Fatalf("pair %v: v1 packed %#x, want %#x", pairs[i], packedV1[i], want[i])
		}
	}
}

// TestServerUntracedSpansLocalRoot: a tracer-equipped server serving
// v1 clients still records request spans, under locally minted roots.
func TestServerUntracedSpansLocalRoot(t *testing.T) {
	f := testFabric(t, false)
	tr := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 16})
	addr := startTracedServer(t, f, tr)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.ResolveBatchPacked([][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range tr.Spans(0) {
		if rec.Name == "wire.request" && rec.TraceID != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no wire.request span for a v1 request; spans: %+v", tr.Spans(0))
	}
}

// TestServerTracedSteadyStateAllocs pins the traced serve path: after
// warmup, traced batches through a tracer-equipped server allocate
// nothing per request on either side of the wire.
func TestServerTracedSteadyStateAllocs(t *testing.T) {
	f := testFabric(t, false)
	// Sampling off: the flight recorder still sees wire.request, but
	// no stage children are recorded — the production default.
	tr := trace.New(trace.Config{SampleNum: 0, SampleDen: 1, RecorderCap: 64})
	addr := startTracedServer(t, f, tr)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs := make([][2]int, 128)
	n := f.Topology().Leaves()
	st := hashutil.NewStream(0x99, 3)
	for i := range pairs {
		pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
	}
	tc := TraceContext{TraceHi: 1, TraceLo: 2, SpanID: 3}
	for i := 0; i < 4; i++ { // warmup: buffers grow, names intern
		if _, _, _, err := c.ResolveBatchPackedTraced(tc, pairs); err != nil {
			t.Fatal(err)
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if _, _, _, err := c.ResolveBatchPackedTraced(tc, pairs); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&ms1)
	// The client side is strictly alloc-free; the server goroutine
	// shares the process, so budget a handful of stray allocations
	// (timer wheels, netpoll) rather than zero.
	if per := float64(ms1.Mallocs-ms0.Mallocs) / rounds; per > 8 {
		t.Errorf("traced steady state allocates %.1f objects per round trip", per)
	}
}
