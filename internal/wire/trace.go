package wire

// Protocol version 2: traced resolve frames. A v2 request prefixes
// the standard batch with a 25-byte trace context (trace id hi/lo,
// parent span id, flags) so the server can attach its spans to the
// client's trace; a v2 response suffixes the standard packed payload
// with a 32-byte timing trailer (total/decode/resolve/encode
// nanoseconds) so the client can split its measured RTT into queue
// time and server time. The trailer sits at the END of the payload so
// the resolve bytes proper — generation, count, packed words — are at
// the same offsets as a v1 response, byte for byte; the differential
// test relies on that.
//
// Old clients are unaffected: they send type-1 frames under version
// 1 and receive type-2 responses, exactly as before. Old servers
// reject type-4 frames at ParseHeader with the version error a v2
// client knows how to report.

import (
	"encoding/binary"
	"fmt"
)

const (
	// VersionTraced is the protocol version carried by traced frames
	// (types 4 and 5). Version-1 frames remain valid; the version a
	// header must carry is a function of its type.
	VersionTraced = 2

	// TypeResolveRequestTraced and TypeResolveResponseTraced are the
	// traced counterparts of types 1 and 2.
	TypeResolveRequestTraced  = 4
	TypeResolveResponseTraced = 5

	// TraceContextSize is the trace-context prefix of a traced
	// request: trace id hi (8) + lo (8) + span id (8) + flags (1).
	TraceContextSize = 25
	// TimingSize is the timing trailer of a traced response: total,
	// decode, resolve and encode nanoseconds, 8 bytes each.
	TimingSize = 32
)

// TraceContext is the wire form of a span context: enough for the
// server to mint child spans in the caller's trace and to honor the
// caller's sampling verdict. The zero value is "untraced".
type TraceContext struct {
	TraceHi, TraceLo uint64
	SpanID           uint64
	Flags            byte
}

// Timing is a traced response's server-side time attribution, all in
// nanoseconds of server monotonic time. Total covers the request from
// header parse to response write; Decode, Resolve and Encode are the
// stages within it. Total minus the three stages is server-side
// framing overhead; client RTT minus Total is network plus queueing.
type Timing struct {
	TotalNS   int64
	DecodeNS  int64
	ResolveNS int64
	EncodeNS  int64
}

// versionFor returns the protocol version a frame of the given type
// must carry.
//
//repro:hotpath
func versionFor(typ byte) byte {
	if typ == TypeResolveRequestTraced || typ == TypeResolveResponseTraced {
		return VersionTraced
	}
	return Version
}

// AppendResolveRequestTraced appends a traced resolve-request frame:
// the trace context, then the standard count+pairs batch.
//
//repro:hotpath
func AppendResolveRequestTraced(buf []byte, tc TraceContext, pairs [][2]int) ([]byte, error) {
	if len(pairs) > MaxPairs {
		return buf, fmt.Errorf("wire: batch of %d pairs exceeds limit %d: %w", len(pairs), MaxPairs, ErrTooLarge)
	}
	for _, p := range pairs {
		if p[0] < 0 || p[0] > MaxEndpoint || p[1] < 0 || p[1] > MaxEndpoint {
			return buf, fmt.Errorf("wire: pair (%d,%d) not encodable as uint32", p[0], p[1])
		}
	}
	buf = AppendHeader(buf, TypeResolveRequestTraced, TraceContextSize+4+8*len(pairs))
	buf = binary.BigEndian.AppendUint64(buf, tc.TraceHi)
	buf = binary.BigEndian.AppendUint64(buf, tc.TraceLo)
	buf = binary.BigEndian.AppendUint64(buf, tc.SpanID)
	buf = append(buf, tc.Flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p[0]))
		buf = binary.BigEndian.AppendUint32(buf, uint32(p[1]))
	}
	return buf, nil
}

// ParseTraceContext reads the trace-context prefix of a traced
// resolve-request payload. The batch that follows starts at offset
// TraceContextSize and decodes with DecodeResolveRequest — servers
// split the two steps so the decode proper can run under a span of
// the request's own trace.
//
//repro:hotpath
func ParseTraceContext(payload []byte) (TraceContext, error) {
	var tc TraceContext
	if len(payload) < TraceContextSize+4 {
		return tc, fmt.Errorf("wire: traced resolve request payload too short (%d bytes)", len(payload))
	}
	tc.TraceHi = binary.BigEndian.Uint64(payload[0:8])
	tc.TraceLo = binary.BigEndian.Uint64(payload[8:16])
	tc.SpanID = binary.BigEndian.Uint64(payload[16:24])
	tc.Flags = payload[24]
	return tc, nil
}

// DecodeResolveRequestTraced parses a traced resolve-request payload,
// appending the batch to dst (pass dst[:0] to reuse) and returning
// the trace context with the extended slice.
//
//repro:hotpath
func DecodeResolveRequestTraced(payload []byte, dst [][2]int) (TraceContext, [][2]int, error) {
	tc, err := ParseTraceContext(payload)
	if err != nil {
		return tc, dst, err
	}
	dst, err = DecodeResolveRequest(payload[TraceContextSize:], dst)
	return tc, dst, err
}

// AppendResolveResponseTraced appends a traced resolve-response
// frame: the standard generation+count+packed payload followed by the
// timing trailer. Encode time is not known until the append finishes,
// so servers append with a partial Timing and patch the final bytes
// with PatchTiming once measured.
//
//repro:hotpath
func AppendResolveResponseTraced(buf []byte, generation uint64, packed []uint64, tm Timing) ([]byte, error) {
	if len(packed) > MaxPairs {
		return buf, fmt.Errorf("wire: response batch %d exceeds limit %d: %w", len(packed), MaxPairs, ErrTooLarge)
	}
	buf = AppendHeader(buf, TypeResolveResponseTraced, 12+8*len(packed)+TimingSize)
	buf = binary.BigEndian.AppendUint64(buf, generation)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(packed)))
	for _, p := range packed {
		buf = binary.BigEndian.AppendUint64(buf, p)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(tm.TotalNS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(tm.DecodeNS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(tm.ResolveNS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(tm.EncodeNS))
	return buf, nil
}

// PatchTiming overwrites the timing trailer of a complete traced
// response frame in place. The frame must end with a TimingSize
// trailer (any frame AppendResolveResponseTraced built qualifies).
//
//repro:hotpath
func PatchTiming(frame []byte, tm Timing) error {
	if len(frame) < HeaderSize+12+TimingSize {
		return fmt.Errorf("wire: frame of %d bytes too short to carry a timing trailer", len(frame))
	}
	off := len(frame) - TimingSize
	binary.BigEndian.PutUint64(frame[off:off+8], uint64(tm.TotalNS))
	binary.BigEndian.PutUint64(frame[off+8:off+16], uint64(tm.DecodeNS))
	binary.BigEndian.PutUint64(frame[off+16:off+24], uint64(tm.ResolveNS))
	binary.BigEndian.PutUint64(frame[off+24:off+32], uint64(tm.EncodeNS))
	return nil
}

// DecodeResolveResponseTraced parses a traced resolve-response
// payload, appending the packed words to dst (pass dst[:0] to reuse)
// and returning the serving generation and timing trailer with the
// extended slice.
//
//repro:hotpath
func DecodeResolveResponseTraced(payload []byte, dst []uint64) (generation uint64, packed []uint64, tm Timing, err error) {
	if len(payload) < 12+TimingSize {
		return 0, dst, tm, fmt.Errorf("wire: traced resolve response payload too short (%d bytes)", len(payload))
	}
	body := payload[:len(payload)-TimingSize]
	trailer := payload[len(payload)-TimingSize:]
	generation, dst, err = DecodeResolveResponse(body, dst)
	if err != nil {
		return 0, dst, tm, err
	}
	tm.TotalNS = int64(binary.BigEndian.Uint64(trailer[0:8]))
	tm.DecodeNS = int64(binary.BigEndian.Uint64(trailer[8:16]))
	tm.ResolveNS = int64(binary.BigEndian.Uint64(trailer[16:24]))
	tm.EncodeNS = int64(binary.BigEndian.Uint64(trailer[24:32]))
	return generation, dst, tm, nil
}
