package wire

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/xgft"
)

const benchBatch = 4096

func benchPairs(n int) [][2]int {
	pairs := make([][2]int, benchBatch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	return pairs
}

// BenchmarkWireEncodeRequest measures framing one 4096-pair batch.
func BenchmarkWireEncodeRequest(b *testing.B) {
	pairs := benchPairs(256)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendResolveRequest(buf[:0], pairs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkWireDecodeRequest measures parsing one 4096-pair batch.
func BenchmarkWireDecodeRequest(b *testing.B) {
	frame, err := AppendResolveRequest(nil, benchPairs(256))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([][2]int, 0, benchBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = DecodeResolveRequest(frame[HeaderSize:], dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkWireEncodeResponse measures framing 4096 packed routes.
func BenchmarkWireEncodeResponse(b *testing.B) {
	packed := make([]uint64, benchBatch)
	for i := range packed {
		packed[i] = 2<<56 | uint64(i&0xffff)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendResolveResponse(buf[:0], 1, packed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkWireDecodeResponse measures parsing 4096 packed routes.
func BenchmarkWireDecodeResponse(b *testing.B) {
	packed := make([]uint64, benchBatch)
	for i := range packed {
		packed[i] = 2<<56 | uint64(i&0xffff)
	}
	frame, err := AppendResolveResponse(nil, 1, packed)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]uint64, 0, benchBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, dst, err = DecodeResolveResponse(frame[HeaderSize:], dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkWireResolveEndToEnd is the daemon-path headline: full
// binary round trips (client encode → TCP loopback → server decode →
// fabric packed resolve → response → client decode) with the
// resolves/s metric the >1M/s acceptance bar reads.
func BenchmarkWireResolveEndToEnd(b *testing.B) {
	tp := xgft.MustNew(2, []int{16, 16}, []int{1, 16})
	f, err := fabric.New(fabric.Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &Server{Resolver: f}
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Addr().String(), 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pairs := benchPairs(tp.Leaves())
	if _, _, err := c.ResolveBatchPacked(pairs); err != nil { // warm buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.ResolveBatchPacked(pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "resolves/s")
}
