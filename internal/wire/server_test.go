package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hashutil"
	"repro/internal/xgft"
)

// startServer runs a Server over a loopback listener and returns its
// address. Cleanup closes the server and asserts every goroutine it
// spawned has drained.
func startServer(t *testing.T, r Resolver, timeout time.Duration) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Resolver: r, Timeout: timeout}
	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		select {
		case err := <-done:
			if !errors.Is(err, ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Close")
		}
		// Close waits on the per-connection goroutines, so after it
		// returns the count must be back to (at most) the baseline;
		// poll briefly to let exiting goroutines be reaped.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutine leak: %d before, %d after close\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
	})
	return l.Addr().String()
}

func testFabric(t testing.TB, telemetry bool) *fabric.Fabric {
	t.Helper()
	tp := xgft.MustNew(2, []int{8, 8}, []int{1, 4})
	f, err := fabric.New(fabric.Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: telemetry})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestServerResolvesBatches is the basic round trip: batches through
// a real fabric come back packed, tagged with the serving generation,
// and decode to the in-process routes.
func TestServerResolvesBatches(t *testing.T) {
	f := testFabric(t, true)
	addr := startServer(t, f, 0)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n := f.Topology().Leaves()
	st := hashutil.NewStream(0x51, 1)
	pairs := make([][2]int, 777)
	for i := range pairs {
		pairs[i] = [2]int{st.Intn(n), st.Intn(n)}
	}
	pairs[0] = [2]int{0, 0}     // self
	pairs[1] = [2]int{n + 3, 1} // out of range
	want := make([]xgft.Route, len(pairs))
	wantResolved := f.Generation().ResolveBatch(pairs, want)

	gen, got, err := c.ResolveBatchPacked(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("generation %d, want 0", gen)
	}
	wantPacked := make([]uint64, len(pairs))
	f.Generation().ResolveBatchPacked(pairs, wantPacked)
	for i := range got {
		if got[i] != wantPacked[i] {
			t.Fatalf("pair %v: packed %#x over the wire, %#x in process", pairs[i], got[i], wantPacked[i])
		}
	}

	// The materializing client API mirrors Generation.ResolveBatch.
	out := make([]xgft.Route, len(pairs))
	_, resolved, err := c.ResolveBatch(pairs, out)
	if err != nil {
		t.Fatal(err)
	}
	if resolved != wantResolved {
		t.Fatalf("resolved %d over the wire, %d in process", resolved, wantResolved)
	}
	for i := range out {
		if fmt.Sprint(out[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("pair %v: route %v over the wire, %v in process", pairs[i], out[i], want[i])
		}
	}

	// The binary path feeds telemetry like the in-process one: the
	// fabric recorded both passes over the wire plus the two local
	// ResolveBatch* calls above.
	if total := f.Telemetry().Total(); total == 0 {
		t.Error("binary resolves did not reach telemetry")
	}

	// Single-pair convenience API.
	r, _, ok, err := c.Resolve(0, n-1)
	if err != nil || !ok {
		t.Fatalf("resolve(0,%d): ok %v err %v", n-1, ok, err)
	}
	if !r.VerifyConnects(f.Topology()) {
		t.Fatalf("resolved route %v does not connect", r)
	}
}

// TestServerSurvivesManyConnections exercises connect/resolve/close
// churn; the startServer cleanup asserts no goroutine outlives it.
func TestServerSurvivesManyConnections(t *testing.T) {
	f := testFabric(t, false)
	addr := startServer(t, f, 0)
	for i := 0; i < 20; i++ {
		c, err := Dial(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.ResolveBatchPacked([][2]int{{0, i % 8}}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

// dialRaw opens a raw connection for malformed-input tests.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// expectErrorThenClose asserts the server answers with one error
// frame carrying the code and then closes the connection.
func expectErrorThenClose(t *testing.T, conn net.Conn, wantCode byte) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := NewFrameReader(conn)
	typ, payload, err := fr.Read()
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if typ != TypeError {
		t.Fatalf("frame type %d, want error", typ)
	}
	re, err := DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != wantCode {
		t.Fatalf("error code %d (%s), want %d", re.Code, re.Msg, wantCode)
	}
	if _, _, err := fr.Read(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 0)
	conn := dialRaw(t, addr)
	hdr := AppendHeader(nil, TypeResolveRequest, 0)
	binary.BigEndian.PutUint32(hdr[4:8], MaxPayload+1)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	expectErrorThenClose(t, conn, ErrCodeOverflow)
}

func TestServerRejectsWrongVersion(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 0)
	conn := dialRaw(t, addr)
	frame, err := AppendResolveRequest(nil, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	frame[2] = Version + 1
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	expectErrorThenClose(t, conn, ErrCodeMalformed)
}

func TestServerRejectsBadMagicAndType(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 0)
	conn := dialRaw(t, addr)
	if _, err := conn.Write([]byte("GET /resolve?src=0&dst=1")); err != nil {
		t.Fatal(err)
	}
	expectErrorThenClose(t, conn, ErrCodeMalformed)

	// A well-formed frame of the wrong type (a response sent to the
	// server) is refused with a distinct code.
	conn2 := dialRaw(t, addr)
	frame, err := AppendResolveResponse(nil, 0, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(frame); err != nil {
		t.Fatal(err)
	}
	expectErrorThenClose(t, conn2, ErrCodeBadType)
}

func TestServerRejectsCountMismatch(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 0)
	conn := dialRaw(t, addr)
	// Declare 4 pairs, carry 1.
	payload := binary.BigEndian.AppendUint32(nil, 4)
	payload = append(payload, make([]byte, 8)...)
	frame := AppendHeader(nil, TypeResolveRequest, len(payload))
	frame = append(frame, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	expectErrorThenClose(t, conn, ErrCodeMalformed)
}

// TestServerCutsSlowLoris proves the per-frame read deadline: a peer
// that sends half a header and stalls is disconnected instead of
// pinning its goroutine (the cleanup's leak check is the teeth).
func TestServerCutsSlowLoris(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 200*time.Millisecond)
	conn := dialRaw(t, addr)
	if _, err := conn.Write([]byte{0xFA, 0x57, Version}); err != nil { // 3 of 8 header bytes
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server times out reading the rest of the header and closes;
	// depending on timing we see its error frame first or a bare
	// close, but the connection must die either way.
	deadline := time.Now().Add(5 * time.Second)
	buf := make([]byte, 256)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			return // closed — the deadline fired
		}
	}
	t.Fatal("connection survived a stalled header past the read deadline")
}

// TestServerCutsStalledBody is the payload-phase slow-loris: a valid
// header whose payload never arrives.
func TestServerCutsStalledBody(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 200*time.Millisecond)
	conn := dialRaw(t, addr)
	if _, err := conn.Write(AppendHeader(nil, TypeResolveRequest, 4+8*16)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	deadline := time.Now().Add(5 * time.Second)
	buf := make([]byte, 256)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
	t.Fatal("connection survived a stalled payload past the read deadline")
}

// TestServerSteadyStateAllocs pins the zero-allocation claim
// end-to-end: after warmup, repeated equal-size batches through the
// full server loop allocate nothing on the server side beyond what
// the kernel I/O costs. Run on the serveConn internals via a
// pipe-free loopback connection with allocation sampling around the
// resolver, since testing.AllocsPerRun cannot isolate another
// goroutine; instead we assert the resolver-facing path (codec +
// fabric) is allocation-free and rely on serveConn's buffer reuse,
// which TestServerResolvesBatches exercises for correctness.
func TestServerSteadyStateAllocs(t *testing.T) {
	f := testFabric(t, true)
	pairs := testPairs(512, 9)
	n := f.Topology().Leaves()
	for i := range pairs {
		pairs[i] = [2]int{pairs[i][0] % n, pairs[i][1] % n}
	}
	packed := make([]uint64, len(pairs))
	wbuf := make([]byte, 0, 16<<10)
	pairsBuf := make([][2]int, 0, len(pairs))
	var frame []byte
	frame, err := AppendResolveRequest(frame, pairs)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		// The per-request server work: decode, resolve, encode.
		var err error
		pairsBuf, err = DecodeResolveRequest(frame[HeaderSize:], pairsBuf[:0])
		if err != nil {
			t.Fatal(err)
		}
		_, gen := f.ResolveBatchPacked(pairsBuf, packed)
		wbuf, err = AppendResolveResponse(wbuf[:0], gen, packed)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per served batch, want 0", allocs)
	}
}

func TestServeRequiresResolver(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{}
	if err := srv.Serve(l); err == nil || !strings.Contains(err.Error(), "Resolver") {
		t.Fatalf("Serve without resolver: %v", err)
	}
}

func TestServeAfterCloseRefuses(t *testing.T) {
	srv := &Server{Resolver: testFabric(t, false)}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Close: %v, want ErrServerClosed", err)
	}
}

// TestClientReportsRemoteError proves the client surfaces a server
// error frame as *RemoteError.
func TestClientReportsRemoteError(t *testing.T) {
	addr := startServer(t, testFabric(t, false), 0)
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, 2*time.Second)
	defer c.Close()
	// Poison the connection with a raw malformed frame, then observe
	// the error response through the client.
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ResolveBatchPacked([][2]int{{0, 1}})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want *RemoteError", err)
	}
}
