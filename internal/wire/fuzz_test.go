package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameReader feeds arbitrary byte streams to the frame reader:
// it must never panic, never hand back a payload beyond MaxPayload,
// and never grow its buffer past the protocol bound no matter what
// lengths the stream declares.
func FuzzFrameReader(f *testing.F) {
	req, _ := AppendResolveRequest(nil, [][2]int{{0, 1}, {5, 3}})
	resp, _ := AppendResolveResponse(nil, 7, []uint64{0, ^uint64(0), 1 << 56})
	f.Add(req)
	f.Add(resp)
	f.Add(AppendError(nil, ErrCodeMalformed, "nope"))
	f.Add(append(append([]byte{}, req...), resp...)) // two frames back to back
	f.Add([]byte{0xFA, 0x57, Version, TypeResolveRequest, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("GET /resolve?src=0&dst=1 HTTP/1.1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			typ, payload, err := fr.Read()
			if err != nil {
				if err == io.EOF && len(payload) != 0 {
					t.Fatalf("EOF with %d payload bytes", len(payload))
				}
				break
			}
			switch typ {
			case TypeResolveRequest, TypeResolveResponse, TypeError,
				TypeResolveRequestTraced, TypeResolveResponseTraced:
			default:
				t.Fatalf("reader returned undefined type %d", typ)
			}
			if len(payload) > MaxPayload {
				t.Fatalf("payload %d exceeds MaxPayload %d", len(payload), MaxPayload)
			}
			if cap(fr.buf) > MaxPayload {
				t.Fatalf("reader buffer grew to %d, past MaxPayload %d", cap(fr.buf), MaxPayload)
			}
		}
	})
}

// FuzzDecodeResolveRequest throws arbitrary payloads at the request
// decoder: no panic, no over-allocation (accepted batches are bounded
// by the bytes received), and every accepted payload re-encodes to
// the identical bytes (the codec is a bijection on valid frames).
func FuzzDecodeResolveRequest(f *testing.F) {
	good, _ := AppendResolveRequest(nil, [][2]int{{0, 1}, {1 << 20, 3}})
	f.Add(good[HeaderSize:])
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		pairs, err := DecodeResolveRequest(payload, nil)
		if err != nil {
			return
		}
		if len(pairs) > MaxPairs {
			t.Fatalf("accepted %d pairs past MaxPairs %d", len(pairs), MaxPairs)
		}
		if 4+8*len(pairs) != len(payload) {
			t.Fatalf("accepted %d pairs from %d payload bytes", len(pairs), len(payload))
		}
		frame, err := AppendResolveRequest(nil, pairs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(frame[HeaderSize:], payload) {
			t.Fatal("decode/encode round trip changed the payload")
		}
	})
}

// FuzzDecodeResolveResponse is the response-direction twin.
func FuzzDecodeResolveResponse(f *testing.F) {
	good, _ := AppendResolveResponse(nil, 3, []uint64{0, ^uint64(0), 2<<56 | 0x0107})
	f.Add(good[HeaderSize:])
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, payload []byte) {
		gen, packed, err := DecodeResolveResponse(payload, nil)
		if err != nil {
			return
		}
		if len(packed) > MaxPairs {
			t.Fatalf("accepted %d routes past MaxPairs %d", len(packed), MaxPairs)
		}
		if 12+8*len(packed) != len(payload) {
			t.Fatalf("accepted %d routes from %d payload bytes", len(packed), len(payload))
		}
		frame, err := AppendResolveResponse(nil, gen, packed)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(frame[HeaderSize:], payload) {
			t.Fatal("decode/encode round trip changed the payload")
		}
	})
}

// FuzzDecodeResolveRequestTraced covers the v2 request decoder: no
// panic, bounded batches, and bijective re-encoding (context prefix
// included).
func FuzzDecodeResolveRequestTraced(f *testing.F) {
	tc := TraceContext{TraceHi: 0xAB, TraceLo: 0xCD, SpanID: 0xEF, Flags: 1}
	good, _ := AppendResolveRequestTraced(nil, tc, [][2]int{{0, 1}, {1 << 20, 3}})
	f.Add(good[HeaderSize:])
	f.Add(make([]byte, TraceContextSize+4))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		tc, pairs, err := DecodeResolveRequestTraced(payload, nil)
		if err != nil {
			return
		}
		if len(pairs) > MaxPairs {
			t.Fatalf("accepted %d pairs past MaxPairs %d", len(pairs), MaxPairs)
		}
		if TraceContextSize+4+8*len(pairs) != len(payload) {
			t.Fatalf("accepted %d pairs from %d payload bytes", len(pairs), len(payload))
		}
		frame, err := AppendResolveRequestTraced(nil, tc, pairs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(frame[HeaderSize:], payload) {
			t.Fatal("decode/encode round trip changed the payload")
		}
	})
}

// FuzzDecodeResolveResponseTraced is the traced response twin,
// trailer included.
func FuzzDecodeResolveResponseTraced(f *testing.F) {
	tm := Timing{TotalNS: 100, DecodeNS: 10, ResolveNS: 60, EncodeNS: 20}
	good, _ := AppendResolveResponseTraced(nil, 3, []uint64{0, ^uint64(0)}, tm)
	f.Add(good[HeaderSize:])
	f.Add(make([]byte, 12+TimingSize))
	f.Fuzz(func(t *testing.T, payload []byte) {
		gen, packed, tm, err := DecodeResolveResponseTraced(payload, nil)
		if err != nil {
			return
		}
		if len(packed) > MaxPairs {
			t.Fatalf("accepted %d routes past MaxPairs %d", len(packed), MaxPairs)
		}
		if 12+8*len(packed)+TimingSize != len(payload) {
			t.Fatalf("accepted %d routes from %d payload bytes", len(packed), len(payload))
		}
		frame, err := AppendResolveResponseTraced(nil, gen, packed, tm)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(frame[HeaderSize:], payload) {
			t.Fatal("decode/encode round trip changed the payload")
		}
	})
}

// FuzzDecodeError rounds out the frame types.
func FuzzDecodeError(f *testing.F) {
	f.Add(AppendError(nil, ErrCodeOverflow, "too big")[HeaderSize:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		re, err := DecodeError(payload)
		if err != nil {
			return
		}
		if len(re.Msg) > MaxErrorLen {
			t.Fatalf("accepted %d-byte message past MaxErrorLen %d", len(re.Msg), MaxErrorLen)
		}
	})
}
