package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/xgft"
)

// Unreachable is fabric.PackedUnreachable re-exported, so clients
// that only inspect packed words need not import the fabric package.
const Unreachable = fabric.PackedUnreachable

// Client speaks the binary resolve protocol over one connection. It
// is not safe for concurrent use — the protocol is strict
// request/response per connection; open one Client per goroutine. All
// buffers are owned by the client and reused, so a steady stream of
// equal-size batches performs zero allocations per call.
type Client struct {
	// RTT, when set, observes one sample per ResolveBatchPacked round
	// trip (request write through decoded response, in nanoseconds).
	// Share one histogram across clients to aggregate; set before use.
	RTT *obs.Histogram

	conn    net.Conn
	fr      *FrameReader
	timeout time.Duration
	wbuf    []byte
	packed  []uint64
	arena   []int
}

// Dial connects to a binary resolve listener. timeout bounds the
// dial, every request write and every response read; 0 means
// DefaultTimeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an established connection (tests use net.Pipe-like
// setups). timeout 0 means DefaultTimeout.
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{
		conn:    conn,
		fr:      NewFrameReader(bufio.NewReaderSize(conn, 64<<10)),
		timeout: timeout,
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ResolveBatchPacked resolves the batch and returns the serving
// generation plus one packed word per pair, in request order —
// fabric.PackedUnreachable for unresolvable slots, otherwise the
// store's packed encoding (decode with fabric.PackedNCALevel /
// fabric.AppendPackedUp). The returned slice is reused by the next
// call.
func (c *Client) ResolveBatchPacked(pairs [][2]int) (generation uint64, packed []uint64, err error) {
	var start time.Time
	if c.RTT != nil {
		start = time.Now()
	}
	c.wbuf, err = AppendResolveRequest(c.wbuf[:0], pairs)
	if err != nil {
		return 0, nil, err
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return 0, nil, fmt.Errorf("wire: writing request: %w", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	typ, payload, err := c.fr.Read()
	if err != nil {
		return 0, nil, err
	}
	switch typ {
	case TypeResolveResponse:
	case TypeError:
		re, derr := DecodeError(payload)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, re
	default:
		return 0, nil, fmt.Errorf("wire: unexpected frame type %d in response", typ)
	}
	generation, c.packed, err = DecodeResolveResponse(payload, c.packed[:0])
	if err != nil {
		return 0, nil, err
	}
	if len(c.packed) != len(pairs) {
		return 0, nil, fmt.Errorf("wire: response carries %d routes for %d pairs", len(c.packed), len(pairs))
	}
	if c.RTT != nil {
		c.RTT.Observe(time.Since(start).Nanoseconds())
	}
	return generation, c.packed, nil
}

// ResolveBatchPackedTraced is ResolveBatchPacked over the traced (v2)
// frames: the request carries tc so the server's spans join the
// caller's trace, and the response's timing trailer is returned — the
// server's own time attribution, which the caller subtracts from its
// measured RTT to isolate network and queueing. The server must speak
// version 2; older servers reject the frame with a version error.
func (c *Client) ResolveBatchPackedTraced(tc TraceContext, pairs [][2]int) (generation uint64, packed []uint64, tm Timing, err error) {
	var start time.Time
	if c.RTT != nil {
		start = time.Now()
	}
	c.wbuf, err = AppendResolveRequestTraced(c.wbuf[:0], tc, pairs)
	if err != nil {
		return 0, nil, tm, err
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return 0, nil, tm, fmt.Errorf("wire: writing request: %w", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	typ, payload, err := c.fr.Read()
	if err != nil {
		return 0, nil, tm, err
	}
	switch typ {
	case TypeResolveResponseTraced:
	case TypeError:
		re, derr := DecodeError(payload)
		if derr != nil {
			return 0, nil, tm, derr
		}
		return 0, nil, tm, re
	default:
		return 0, nil, tm, fmt.Errorf("wire: unexpected frame type %d in response", typ)
	}
	generation, c.packed, tm, err = DecodeResolveResponseTraced(payload, c.packed[:0])
	if err != nil {
		return 0, nil, tm, err
	}
	if len(c.packed) != len(pairs) {
		return 0, nil, tm, fmt.Errorf("wire: response carries %d routes for %d pairs", len(c.packed), len(pairs))
	}
	if c.RTT != nil {
		c.RTT.Observe(time.Since(start).Nanoseconds())
	}
	return generation, c.packed, tm, nil
}

// ResolveBatch resolves the batch into materialized routes,
// mirroring fabric.Generation.ResolveBatch exactly: out[i] is the
// zero route for unresolvable pairs, the empty route for self pairs,
// and carries the ascent otherwise; the return value counts resolved
// pairs. out must be at least as long as pairs. Ascents share one
// arena owned by the client and reused by the next call.
func (c *Client) ResolveBatch(pairs [][2]int, out []xgft.Route) (generation uint64, resolved int, err error) {
	generation, packed, err := c.ResolveBatchPacked(pairs)
	if err != nil {
		return 0, 0, err
	}
	need := 0
	for _, p := range packed {
		if p != fabric.PackedUnreachable {
			need += fabric.PackedNCALevel(p)
		}
	}
	if cap(c.arena) < need {
		c.arena = make([]int, need)
	}
	arena := c.arena[:0]
	for i, p := range packed {
		if p == fabric.PackedUnreachable {
			out[i] = xgft.Route{}
			continue
		}
		src, dst := pairs[i][0], pairs[i][1]
		if l := fabric.PackedNCALevel(p); l > 0 {
			start := len(arena)
			arena = fabric.AppendPackedUp(p, arena)
			out[i] = xgft.Route{Src: src, Dst: dst, Up: arena[start:len(arena):len(arena)]}
		} else {
			out[i] = xgft.Route{Src: src, Dst: dst}
		}
		resolved++
	}
	return generation, resolved, nil
}

// Resolve resolves one pair — the convenience form; batch for
// throughput.
func (c *Client) Resolve(src, dst int) (r xgft.Route, generation uint64, ok bool, err error) {
	var out [1]xgft.Route
	generation, resolved, err := c.ResolveBatch([][2]int{{src, dst}}, out[:])
	if err != nil {
		return xgft.Route{}, 0, false, err
	}
	return out[0], generation, resolved == 1, nil
}
