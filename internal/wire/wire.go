// Package wire is the binary resolve protocol: the wire-speed front
// door that serves the fabric's packed route store at close to its
// in-process rate, where the HTTP/JSON path burns the budget on
// encode/decode and per-request allocation. Frames are
// length-prefixed over TCP with a fixed 8-byte header; a resolve
// request carries a batch of (src, dst) pairs and its response the
// matching packed route words — the store's in-memory encoding
// (internal/fabric packRoute), shipped verbatim, with
// fabric.PackedUnreachable marking unresolved slots — plus the
// generation the batch was served from.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       2     magic 0xFA57
//	2       1     version (1)
//	3       1     type: 1 resolve request, 2 resolve response, 3 error
//	4       4     payload length (bounds-checked before any allocation)
//	8       ...   payload
//
// Payloads:
//
//	resolve request:   count uint32, then count × (src uint32, dst uint32)
//	resolve response:  generation uint64, count uint32, then count × packed uint64
//	error:             code byte, then UTF-8 message (≤ MaxErrorLen)
//
// The encoder/decoder pairs are append/reuse style so both sides run
// allocation-free in steady state: servers reuse one read buffer,
// pair slice and response buffer per connection; clients reuse one
// request buffer and packed slice per connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// Magic is the first two bytes of every frame.
	Magic = 0xFA57
	// Version is the protocol version this package speaks; frames
	// carrying any other version are rejected before their payload is
	// read.
	Version = 1

	// HeaderSize is the fixed frame header length.
	HeaderSize = 8

	// TypeResolveRequest, TypeResolveResponse and TypeError are the
	// defined frame types.
	TypeResolveRequest  = 1
	TypeResolveResponse = 2
	TypeError           = 3

	// MaxPairs bounds one batch; larger batches gain nothing (the
	// response would exceed the socket buffer many times over) and a
	// bound lets both sides pre-size buffers.
	MaxPairs = 65536
	// MaxPayload is the largest legal payload (a full traced
	// response: generation + count + MaxPairs packed words + timing
	// trailer). A header declaring more is a protocol error — the
	// reader never allocates past it.
	MaxPayload = 12 + 8*MaxPairs + TimingSize
	// MaxErrorLen bounds an error frame's message.
	MaxErrorLen = 512
	// MaxEndpoint is the largest encodable endpoint index (indexes are
	// uint32 on the wire; out-of-range values still resolve — to
	// PackedUnreachable — so a client may probe beyond the topology).
	MaxEndpoint = 1<<32 - 1
)

// Error codes carried by TypeError frames.
const (
	ErrCodeMalformed   = 1 // frame or payload failed to parse
	ErrCodeBadVersion  = 2 // unsupported protocol version
	ErrCodeBadType     = 3 // unexpected frame type
	ErrCodeOverflow    = 4 // declared payload exceeds MaxPayload
	ErrCodeServer      = 5 // server-side failure
	ErrCodeUnavailable = 6 // server shutting down
)

// ErrTooLarge is returned when a header declares a payload beyond
// MaxPayload, or an encoder is asked to exceed MaxPairs/MaxErrorLen.
var ErrTooLarge = errors.New("wire: frame exceeds protocol limits")

// RemoteError is a decoded TypeError frame: the server's explanation
// for why it is closing the connection.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Msg)
}

// AppendHeader appends a frame header for a payload of the given type
// and length. The version byte follows the type: traced frames carry
// VersionTraced, everything else Version — so a v1-only peer rejects
// traced traffic at the header, before any payload parsing.
//
//repro:hotpath
func AppendHeader(buf []byte, typ byte, payloadLen int) []byte {
	var h [HeaderSize]byte
	binary.BigEndian.PutUint16(h[0:2], Magic)
	h[2] = versionFor(typ)
	h[3] = typ
	binary.BigEndian.PutUint32(h[4:8], uint32(payloadLen))
	return append(buf, h[:]...)
}

// ParseHeader validates an 8-byte frame header and returns its type
// and declared payload length. The length is checked against
// MaxPayload here, so callers can allocate afterwards without a bound
// check of their own.
//
//repro:hotpath
func ParseHeader(h []byte) (typ byte, payloadLen int, err error) {
	if len(h) < HeaderSize {
		return 0, 0, fmt.Errorf("wire: short header (%d bytes)", len(h))
	}
	if m := binary.BigEndian.Uint16(h[0:2]); m != Magic {
		return 0, 0, fmt.Errorf("wire: bad magic %#04x", m)
	}
	v := h[2]
	if v != Version && v != VersionTraced {
		return 0, 0, fmt.Errorf("wire: unsupported version %d (speak %d and %d)", v, Version, VersionTraced)
	}
	typ = h[3]
	switch typ {
	case TypeResolveRequest, TypeResolveResponse, TypeError,
		TypeResolveRequestTraced, TypeResolveResponseTraced:
	default:
		return 0, 0, fmt.Errorf("wire: unknown frame type %d", typ)
	}
	if v != versionFor(typ) {
		return 0, 0, fmt.Errorf("wire: frame type %d under version %d (want %d)", typ, v, versionFor(typ))
	}
	n := binary.BigEndian.Uint32(h[4:8])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("wire: declared payload %d exceeds limit %d: %w", n, MaxPayload, ErrTooLarge)
	}
	return typ, int(n), nil
}

// AppendResolveRequest appends a complete resolve-request frame for
// the batch. Every src/dst must be in [0, MaxEndpoint]; batches
// beyond MaxPairs are refused.
//
//repro:hotpath
func AppendResolveRequest(buf []byte, pairs [][2]int) ([]byte, error) {
	if len(pairs) > MaxPairs {
		return buf, fmt.Errorf("wire: batch of %d pairs exceeds limit %d: %w", len(pairs), MaxPairs, ErrTooLarge)
	}
	for _, p := range pairs {
		if p[0] < 0 || p[0] > MaxEndpoint || p[1] < 0 || p[1] > MaxEndpoint {
			return buf, fmt.Errorf("wire: pair (%d,%d) not encodable as uint32", p[0], p[1])
		}
	}
	buf = AppendHeader(buf, TypeResolveRequest, 4+8*len(pairs))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p[0]))
		buf = binary.BigEndian.AppendUint32(buf, uint32(p[1]))
	}
	return buf, nil
}

// DecodeResolveRequest parses a resolve-request payload, appending
// the batch to dst (pass dst[:0] to reuse its backing array) and
// returning the extended slice. The declared count must match the
// payload length exactly, so the appended length is bounded by the
// bytes actually received.
//
//repro:hotpath
func DecodeResolveRequest(payload []byte, dst [][2]int) ([][2]int, error) {
	if len(payload) < 4 {
		return dst, fmt.Errorf("wire: resolve request payload too short (%d bytes)", len(payload))
	}
	count := binary.BigEndian.Uint32(payload[0:4])
	if count > MaxPairs {
		return dst, fmt.Errorf("wire: request batch %d exceeds limit %d: %w", count, MaxPairs, ErrTooLarge)
	}
	if len(payload) != 4+8*int(count) {
		return dst, fmt.Errorf("wire: resolve request declares %d pairs but carries %d bytes", count, len(payload)-4)
	}
	for i := 0; i < int(count); i++ {
		off := 4 + 8*i
		dst = append(dst, [2]int{
			int(binary.BigEndian.Uint32(payload[off : off+4])),
			int(binary.BigEndian.Uint32(payload[off+4 : off+8])),
		})
	}
	return dst, nil
}

// AppendResolveResponse appends a complete resolve-response frame:
// the serving generation and one packed route word per requested
// pair.
//
//repro:hotpath
func AppendResolveResponse(buf []byte, generation uint64, packed []uint64) ([]byte, error) {
	if len(packed) > MaxPairs {
		return buf, fmt.Errorf("wire: response batch %d exceeds limit %d: %w", len(packed), MaxPairs, ErrTooLarge)
	}
	buf = AppendHeader(buf, TypeResolveResponse, 12+8*len(packed))
	buf = binary.BigEndian.AppendUint64(buf, generation)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(packed)))
	for _, p := range packed {
		buf = binary.BigEndian.AppendUint64(buf, p)
	}
	return buf, nil
}

// DecodeResolveResponse parses a resolve-response payload, appending
// the packed words to dst (pass dst[:0] to reuse) and returning the
// serving generation with the extended slice.
//
//repro:hotpath
func DecodeResolveResponse(payload []byte, dst []uint64) (generation uint64, packed []uint64, err error) {
	if len(payload) < 12 {
		return 0, dst, fmt.Errorf("wire: resolve response payload too short (%d bytes)", len(payload))
	}
	generation = binary.BigEndian.Uint64(payload[0:8])
	count := binary.BigEndian.Uint32(payload[8:12])
	if count > MaxPairs {
		return 0, dst, fmt.Errorf("wire: response batch %d exceeds limit %d: %w", count, MaxPairs, ErrTooLarge)
	}
	if len(payload) != 12+8*int(count) {
		return 0, dst, fmt.Errorf("wire: resolve response declares %d routes but carries %d bytes", count, len(payload)-12)
	}
	for i := 0; i < int(count); i++ {
		off := 12 + 8*i
		dst = append(dst, binary.BigEndian.Uint64(payload[off:off+8]))
	}
	return generation, dst, nil
}

// AppendError appends a complete error frame; messages beyond
// MaxErrorLen are truncated, never refused (the error path must not
// itself error).
//
//repro:hotpath
func AppendError(buf []byte, code byte, msg string) []byte {
	if len(msg) > MaxErrorLen {
		msg = msg[:MaxErrorLen]
	}
	buf = AppendHeader(buf, TypeError, 1+len(msg))
	buf = append(buf, code)
	return append(buf, msg...)
}

// DecodeError parses an error payload.
//
//repro:hotpath
func DecodeError(payload []byte) (*RemoteError, error) {
	if len(payload) < 1 {
		return nil, errors.New("wire: empty error payload")
	}
	if len(payload) > 1+MaxErrorLen {
		return nil, fmt.Errorf("wire: error payload %d bytes exceeds limit %d: %w", len(payload), 1+MaxErrorLen, ErrTooLarge)
	}
	return &RemoteError{Code: payload[0], Msg: string(payload[1:])}, nil
}

// FrameReader reads frames from a stream into one reusable buffer.
// The returned payload aliases that buffer, valid until the next
// Read. The buffer never grows past MaxPayload — a header declaring
// more fails before any allocation — so a hostile peer cannot make
// the reader balloon.
type FrameReader struct {
	r   io.Reader
	hdr [HeaderSize]byte
	buf []byte
}

// NewFrameReader returns a FrameReader over r. Wrap raw connections
// in a bufio.Reader first if small frames dominate.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read reads the next frame, returning its type and payload. The
// payload is valid only until the next Read. io.EOF is returned
// verbatim on a clean close before any header byte; a close
// mid-frame is io.ErrUnexpectedEOF.
//
//repro:hotpath
func (fr *FrameReader) Read() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading header: %w", err)
	}
	typ, n, err := ParseHeader(fr.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: reading %d-byte payload: %w", n, err)
	}
	return typ, payload, nil
}
