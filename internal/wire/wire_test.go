package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/hashutil"
)

// testPairs builds a keyed-deterministic batch.
func testPairs(count int, key uint64) [][2]int {
	st := hashutil.NewStream(0x3142, key)
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{st.Intn(1 << 20), st.Intn(1 << 20)}
	}
	return pairs
}

func TestResolveRequestRoundTrip(t *testing.T) {
	for _, count := range []int{0, 1, 7, 1024} {
		pairs := testPairs(count, uint64(count))
		frame, err := AppendResolveRequest(nil, pairs)
		if err != nil {
			t.Fatal(err)
		}
		typ, n, err := ParseHeader(frame)
		if err != nil || typ != TypeResolveRequest || n != len(frame)-HeaderSize {
			t.Fatalf("header: typ %d len %d err %v", typ, n, err)
		}
		got, err := DecodeResolveRequest(frame[HeaderSize:], nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pairs) {
			t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
		}
		for i := range got {
			if got[i] != pairs[i] {
				t.Fatalf("pair %d: %v != %v", i, got[i], pairs[i])
			}
		}
	}
}

func TestResolveResponseRoundTrip(t *testing.T) {
	packed := []uint64{0, 1<<56 | 3, ^uint64(0), 2<<56 | 0x0102}
	frame, err := AppendResolveResponse(nil, 42, packed)
	if err != nil {
		t.Fatal(err)
	}
	typ, n, err := ParseHeader(frame)
	if err != nil || typ != TypeResolveResponse || n != len(frame)-HeaderSize {
		t.Fatalf("header: typ %d len %d err %v", typ, n, err)
	}
	gen, got, err := DecodeResolveResponse(frame[HeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || len(got) != len(packed) {
		t.Fatalf("gen %d routes %d, want 42 %d", gen, len(got), len(packed))
	}
	for i := range got {
		if got[i] != packed[i] {
			t.Fatalf("route %d: %#x != %#x", i, got[i], packed[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, ErrCodeBadVersion, "speak version 1")
	typ, _, err := ParseHeader(frame)
	if err != nil || typ != TypeError {
		t.Fatalf("header: typ %d err %v", typ, err)
	}
	re, err := DecodeError(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != ErrCodeBadVersion || re.Msg != "speak version 1" {
		t.Fatalf("decoded %+v", re)
	}
	if !strings.Contains(re.Error(), "speak version 1") {
		t.Fatalf("RemoteError.Error() = %q", re.Error())
	}
	// Oversized messages truncate instead of failing.
	long := AppendError(nil, ErrCodeServer, strings.Repeat("x", 2*MaxErrorLen))
	re, err = DecodeError(long[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Msg) != MaxErrorLen {
		t.Fatalf("truncated message %d bytes, want %d", len(re.Msg), MaxErrorLen)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good, err := AppendResolveRequest(nil, [][2]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(h []byte)) []byte {
		h := append([]byte(nil), good[:HeaderSize]...)
		f(h)
		return h
	}
	cases := []struct {
		name string
		hdr  []byte
	}{
		{"short", good[:HeaderSize-1]},
		{"bad magic", mutate(func(h []byte) { h[0] = 0x00 })},
		{"bad version", mutate(func(h []byte) { h[2] = Version + 1 })},
		{"bad type", mutate(func(h []byte) { h[3] = 99 })},
		{"oversized", mutate(func(h []byte) { binary.BigEndian.PutUint32(h[4:8], MaxPayload+1) })},
	}
	for _, c := range cases {
		if _, _, err := ParseHeader(c.hdr); err == nil {
			t.Errorf("%s: header accepted", c.name)
		}
	}
	if _, _, err := ParseHeader(mutate(func(h []byte) { binary.BigEndian.PutUint32(h[4:8], MaxPayload+1) })); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized header error %v, want ErrTooLarge", err)
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	if _, err := DecodeResolveRequest([]byte{1, 2}, nil); err == nil {
		t.Error("short request payload accepted")
	}
	// Declared count does not match carried bytes.
	bad := binary.BigEndian.AppendUint32(nil, 3)
	bad = append(bad, make([]byte, 8)...) // one pair, not three
	if _, err := DecodeResolveRequest(bad, nil); err == nil {
		t.Error("count/length mismatch accepted")
	}
	// Count beyond MaxPairs is rejected before any allocation.
	huge := binary.BigEndian.AppendUint32(nil, MaxPairs+1)
	if _, err := DecodeResolveRequest(huge, nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized request count: %v, want ErrTooLarge", err)
	}
	if _, _, err := DecodeResolveResponse([]byte{1}, nil); err == nil {
		t.Error("short response payload accepted")
	}
	badResp := binary.BigEndian.AppendUint64(nil, 7)
	badResp = binary.BigEndian.AppendUint32(badResp, 2)
	badResp = append(badResp, make([]byte, 8)...) // one word, not two
	if _, _, err := DecodeResolveResponse(badResp, nil); err == nil {
		t.Error("response count/length mismatch accepted")
	}
	if _, err := DecodeError(nil); err == nil {
		t.Error("empty error payload accepted")
	}
}

func TestAppendRejectsUnencodable(t *testing.T) {
	if _, err := AppendResolveRequest(nil, [][2]int{{-1, 0}}); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := AppendResolveRequest(nil, make([][2]int, MaxPairs+1)); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized batch accepted")
	}
	if _, err := AppendResolveResponse(nil, 0, make([]uint64, MaxPairs+1)); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized response accepted")
	}
}

func TestFrameReaderSequentialFrames(t *testing.T) {
	var stream []byte
	stream, err := AppendResolveRequest(stream, testPairs(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendResolveResponse(stream, 9, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	stream = AppendError(stream, ErrCodeServer, "done")
	fr := NewFrameReader(bytes.NewReader(stream))
	wantTypes := []byte{TypeResolveRequest, TypeResolveResponse, TypeError}
	for i, want := range wantTypes {
		typ, _, err := fr.Read()
		if err != nil || typ != want {
			t.Fatalf("frame %d: typ %d err %v, want %d", i, typ, err, want)
		}
	}
	if _, _, err := fr.Read(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncatedFrame(t *testing.T) {
	frame, err := AppendResolveRequest(nil, testPairs(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-payload and mid-header.
	for _, cut := range []int{HeaderSize + 3, HeaderSize - 2} {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]))
		if _, _, err := fr.Read(); err == nil || err == io.EOF {
			t.Fatalf("cut at %d: err %v, want unexpected-EOF error", cut, err)
		}
	}
}

// TestCodecSteadyStateAllocs pins the hot-path contract: with reused
// buffers, one encode+decode cycle of each direction allocates
// nothing.
func TestCodecSteadyStateAllocs(t *testing.T) {
	pairs := testPairs(256, 3)
	packed := make([]uint64, 256)
	var frame []byte
	pairsBuf := make([][2]int, 0, 256)
	packedBuf := make([]uint64, 0, 256)
	// Warm the frame buffer.
	frame, err := AppendResolveRequest(frame[:0], pairs)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		frame, err = AppendResolveRequest(frame[:0], pairs)
		if err != nil {
			t.Fatal(err)
		}
		pairsBuf, err = DecodeResolveRequest(frame[HeaderSize:], pairsBuf[:0])
		if err != nil {
			t.Fatal(err)
		}
		frame, err = AppendResolveResponse(frame[:0], 1, packed)
		if err != nil {
			t.Fatal(err)
		}
		_, packedBuf, err = DecodeResolveResponse(frame[HeaderSize:], packedBuf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per codec cycle, want 0", allocs)
	}
}
