package contention

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

func paperTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func analyze(t testing.TB, tp *xgft.Topology, algo core.Algorithm, p *pattern.Pattern) *Analysis {
	t.Helper()
	tbl, err := core.BuildTable(tp, algo, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tp, p, tbl.Routes)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeConservation(t *testing.T) {
	// Every byte injected crosses level-0 up channels exactly once,
	// and every ejected byte crosses level-0 down channels once.
	tp := paperTree(t, 10)
	p := pattern.WRF256()
	a := analyze(t, tp, core.NewDModK(tp), p)
	var inject, upL0, eject, downL0 int64
	for _, b := range a.InjectBytes {
		inject += b
	}
	for _, b := range a.EjectBytes {
		eject += b
	}
	for ch := 0; ch < tp.ChannelsAt(0); ch++ {
		upL0 += a.UpBytes[ch]
		downL0 += a.DownBytes[ch]
	}
	if inject != upL0 {
		t.Errorf("injected %d != level-0 up %d", inject, upL0)
	}
	if eject != downL0 {
		t.Errorf("ejected %d != level-0 down %d", eject, downL0)
	}
	if inject != p.TotalBytes() {
		t.Errorf("injected %d != pattern total %d", inject, p.TotalBytes())
	}
}

func TestAnalyzeMismatches(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.New(256)
	p.Add(0, 16, 100)
	if _, err := Analyze(tp, p, nil); err == nil {
		t.Error("route/flow count mismatch accepted")
	}
	wrong := []xgft.Route{{Src: 1, Dst: 16, Up: []int{0, 0}}}
	if _, err := Analyze(tp, p, wrong); err == nil {
		t.Error("misaligned route endpoints accepted")
	}
}

func TestEndpointVsNetworkContention(t *testing.T) {
	// Two flows from one source share their ascent under S-mod-k:
	// endpoint contention 2, network contention 1.
	tp := paperTree(t, 16)
	p := pattern.New(256)
	p.Add(0, 17, 100)
	p.Add(0, 33, 100)
	a := analyze(t, tp, core.NewSModK(tp), p)
	if got := a.MaxEndpointContention(); got != 2 {
		t.Errorf("endpoint contention = %d, want 2", got)
	}
	if got := a.MaxNetworkContention(); got != 1 {
		t.Errorf("network contention = %d, want 1 (same-source flows share for free)", got)
	}
	if got := a.MaxFlowsPerChannel(); got != 2 {
		t.Errorf("flows per channel = %d, want 2", got)
	}
}

func TestCGPhase5DModKPathology(t *testing.T) {
	// §VII-A: under D-mod-k on the full 16-ary 2-tree, CG's fifth
	// phase funnels the 16 flows of each switch through 2 up ports:
	// 8 distinct-source flows per channel, an 8x slowdown.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, pattern.DefaultCGPhaseBytes)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports "eight times longer": 8 even and 8 odd
	// sources per switch share one port each. Two of the sixteen are
	// the diagonal fixed points of the transpose, which exchange
	// locally, so the network carries 7 distinct-source flows per
	// port (see EXPERIMENTS.md, X1).
	a := analyze(t, tp, core.NewDModK(tp), ph)
	if got := a.MaxNetworkContention(); got != 7 {
		t.Errorf("D-mod-k network contention = %d, want 7", got)
	}
	s, err := Slowdown(tp, core.NewDModK(tp), ph)
	if err != nil {
		t.Fatal(err)
	}
	if s < 6.9 || s > 7.1 {
		t.Errorf("D-mod-k phase-5 slowdown = %.2f, want ~7", s)
	}
}

func TestCGPhase5SModKSameAsDModK(t *testing.T) {
	// The CG transpose is (nearly) symmetric; the paper observes
	// S-mod-k and D-mod-k perform identically on it.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, pattern.DefaultCGPhaseBytes)
	if err != nil {
		t.Fatal(err)
	}
	sS, err := Slowdown(tp, core.NewSModK(tp), ph)
	if err != nil {
		t.Fatal(err)
	}
	sD, err := Slowdown(tp, core.NewDModK(tp), ph)
	if err != nil {
		t.Fatal(err)
	}
	if sS != sD {
		t.Errorf("S-mod-k %.3f != D-mod-k %.3f on symmetric pattern", sS, sD)
	}
}

func TestCGFullRunFactorOfTwo(t *testing.T) {
	// §VII-A: the 8x fifth phase degrades the whole five-phase run by
	// "more than a factor of two": (4 + 8)/5 = 2.4 analytically.
	tp := paperTree(t, 16)
	phases := pattern.CGD128Phases()
	s, err := PhasedSlowdown(tp, core.NewDModK(tp), phases)
	if err != nil {
		t.Fatal(err)
	}
	if s < 2.0 || s > 2.8 {
		t.Errorf("CG.D-128 D-mod-k slowdown = %.2f, want ~2.4", s)
	}
}

func TestColoredRemovesCGPathology(t *testing.T) {
	tp := paperTree(t, 16)
	phases := pattern.CGD128Phases()
	col := core.NewColored(tp, phases, core.ColoredConfig{})
	s, err := PhasedSlowdown(tp, col, phases)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1.05 {
		t.Errorf("colored CG slowdown = %.2f, want ~1 (conflict-free phases)", s)
	}
}

func TestWRFDModKNearOptimal(t *testing.T) {
	// WRF's pairwise exchange is routed without extra network
	// contention by D-mod-k on the full tree: slowdown 1.
	tp := paperTree(t, 16)
	p := pattern.WRF256()
	s, err := Slowdown(tp, core.NewDModK(tp), p)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("WRF D-mod-k slowdown = %.3f, want 1", s)
	}
}

func TestWRFRandomWorseThanModK(t *testing.T) {
	// Fig. 2a: Random is worse than S-mod-k/D-mod-k for WRF.
	tp := paperTree(t, 16)
	p := pattern.WRF256()
	sRand, err := Slowdown(tp, core.NewRandom(tp, 17), p)
	if err != nil {
		t.Fatal(err)
	}
	sMod, err := Slowdown(tp, core.NewDModK(tp), p)
	if err != nil {
		t.Fatal(err)
	}
	if sRand <= sMod {
		t.Errorf("random %.3f not worse than d-mod-k %.3f on WRF", sRand, sMod)
	}
}

func TestSlimmingMonotonicity(t *testing.T) {
	// Shrinking w2 cannot improve the analytic bound for a
	// per-destination-concentrating scheme on WRF.
	p := pattern.WRF256()
	prev := 0.0
	for w2 := 16; w2 >= 1; w2-- {
		tp := paperTree(t, w2)
		s, err := Slowdown(tp, core.NewDModK(tp), p)
		if err != nil {
			t.Fatal(err)
		}
		if s+1e-9 < prev {
			t.Errorf("slowdown dropped from %.3f to %.3f when slimming to w2=%d", prev, s, w2)
		}
		prev = s
	}
	// Fully slimmed tree: a single root must carry everything.
	tp := paperTree(t, 1)
	s, err := Slowdown(tp, core.NewDModK(tp), p)
	if err != nil {
		t.Fatal(err)
	}
	if s < 8 {
		t.Errorf("w2=1 slowdown = %.2f, want heavy congestion (>=8)", s)
	}
}

func TestSlowdownAtLeastOne(t *testing.T) {
	tp := paperTree(t, 16)
	for trial := 0; trial < 10; trial++ {
		p := pattern.KeyedRandomPermutation(256, 1000, uint64(trial)+1)
		for _, algo := range []core.Algorithm{core.NewSModK(tp), core.NewRandom(tp, uint64(trial))} {
			s, err := Slowdown(tp, algo, p)
			if err != nil {
				t.Fatal(err)
			}
			if s < 1 {
				t.Errorf("%s slowdown %.3f < 1", algo.Name(), s)
			}
		}
	}
}

func TestPhaseBounds(t *testing.T) {
	tp := paperTree(t, 16)
	phases := pattern.CGD128Phases()
	network, crossbar, err := PhaseBounds(tp, core.NewDModK(tp), phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(network) != 5 || len(crossbar) != 5 {
		t.Fatalf("bounds lengths %d/%d, want 5/5", len(network), len(crossbar))
	}
	for i := 0; i < 4; i++ {
		if network[i] != crossbar[i] {
			t.Errorf("local phase %d has network bound %d != crossbar %d", i, network[i], crossbar[i])
		}
	}
	if network[4] != 7*crossbar[4] {
		t.Errorf("phase 5 network bound %d, want 7x crossbar %d", network[4], crossbar[4])
	}
}

func TestPhasedSlowdownErrors(t *testing.T) {
	tp := paperTree(t, 16)
	if _, err := PhasedSlowdown(tp, core.NewDModK(tp), nil); err == nil {
		t.Error("empty phase list accepted")
	}
}

// TestDualityTheorem verifies §VII-B: for any pattern P, the
// contention profile of S-mod-k on P equals the mirrored profile of
// D-mod-k on P's inverse — channel by channel, not just in
// distribution.
func TestDualityTheorem(t *testing.T) {
	tp := paperTree(t, 10)
	patterns := []*pattern.Pattern{
		pattern.WRF256(),
		pattern.KeyedRandomPermutation(256, 100, 99),
		pattern.UniformRandom(256, 3, 100, 99),
		pattern.Shift(256, 37, 100),
	}
	for pi, p := range patterns {
		aS := analyze(t, tp, core.NewSModK(tp), p)
		aD := analyze(t, tp, core.NewDModK(tp), p.Inverse())
		for ch := range aS.UpBytes {
			if aS.UpBytes[ch] != aD.DownBytes[ch] {
				t.Fatalf("pattern %d channel %d: S-up bytes %d != D-down bytes %d", pi, ch, aS.UpBytes[ch], aD.DownBytes[ch])
			}
			if aS.DownBytes[ch] != aD.UpBytes[ch] {
				t.Fatalf("pattern %d channel %d: S-down bytes %d != D-up bytes %d", pi, ch, aS.DownBytes[ch], aD.UpBytes[ch])
			}
			if aS.UpGroups[ch] != aD.DownGroups[ch] || aS.DownGroups[ch] != aD.UpGroups[ch] {
				t.Fatalf("pattern %d channel %d: group profiles differ", pi, ch)
			}
		}
		if aS.CompletionBound() != aD.CompletionBound() {
			t.Fatalf("pattern %d: completion bounds differ", pi)
		}
	}
}

func TestQuickDualityOnRandomPermutations(t *testing.T) {
	tp := paperTree(t, 7)
	f := func(seed int64) bool {
		p := pattern.KeyedRandomPermutation(256, 100, uint64(seed))
		tblS, err := core.BuildTable(tp, core.NewSModK(tp), p)
		if err != nil {
			return false
		}
		tblD, err := core.BuildTable(tp, core.NewDModK(tp), p.Inverse())
		if err != nil {
			return false
		}
		aS, err := Analyze(tp, p, tblS.Routes)
		if err != nil {
			return false
		}
		aD, err := Analyze(tp, p.Inverse(), tblD.Routes)
		if err != nil {
			return false
		}
		return aS.MaxNetworkContention() == aD.MaxNetworkContention() &&
			aS.CompletionBound() == aD.CompletionBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroupProfile(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.New(256)
	p.Add(0, 17, 10)
	p.Add(1, 18, 10)
	a := analyze(t, tp, core.NewDModK(tp), p)
	up := a.GroupProfile(true)
	if len(up) == 0 {
		t.Fatal("empty up profile")
	}
	for i := 1; i < len(up); i++ {
		if up[i-1] > up[i] {
			t.Fatal("profile not sorted")
		}
	}
}

func TestNCAHistogram(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.New(256)
	p.Add(0, 16, 10) // crosses switches: root-level NCA
	p.Add(0, 1, 10)  // same switch: level-1 NCA, excluded
	tbl, err := core.BuildTable(tp, core.NewDModK(tp), p)
	if err != nil {
		t.Fatal(err)
	}
	h := NCAHistogram(tp, tbl.Routes, 2)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 1 {
		t.Errorf("histogram counted %d root routes, want 1", total)
	}
	if h[0] != 1 { // d-mod-k: root = dst mod 16 = 0
		t.Errorf("route not on root 0: %v", h)
	}
}

func TestCrossbarBound(t *testing.T) {
	p := pattern.New(4)
	p.Add(0, 1, 100)
	p.Add(2, 1, 50)
	if got := CrossbarBound(p); got != 150 {
		t.Errorf("crossbar bound = %d, want 150 (ejection at node 1)", got)
	}
	empty := pattern.New(4)
	if got := CrossbarBound(empty); got != 0 {
		t.Errorf("empty bound = %d", got)
	}
}
