package contention

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Slowdown computes the analytic slowdown of one communication phase
// under a routing algorithm: the congestion completion bound on the
// topology divided by the same bound on the ideal full crossbar
// (the paper's normalization, §VI-B). The result is >= 1 up to
// floating-point for any minimal routing.
func Slowdown(t *xgft.Topology, algo core.Algorithm, p *pattern.Pattern) (float64, error) {
	return SlowdownCached(nil, t, algo, p)
}

// SlowdownCached is Slowdown with the routing table served from (and
// stored into) the given cache; a nil cache recomputes.
func SlowdownCached(c *core.TableCache, t *xgft.Topology, algo core.Algorithm, p *pattern.Pattern) (float64, error) {
	tbl, err := c.Build(t, algo, p)
	if err != nil {
		return 0, err
	}
	a, err := Analyze(t, p, tbl.Routes)
	if err != nil {
		return 0, err
	}
	xb := CrossbarBound(p)
	if xb == 0 {
		return 1, nil // pattern without network traffic
	}
	return float64(a.CompletionBound()) / float64(xb), nil
}

// SlowdownRoutes computes the analytic slowdown of one phase from an
// explicit route set (as produced by core.PatchTable on a degraded
// view) instead of from an algorithm: routes must be aligned with
// p.Flows. This is the degraded-fabric path — the healthy-table cache
// cannot serve patched tables.
func SlowdownRoutes(t *xgft.Topology, p *pattern.Pattern, routes []xgft.Route) (float64, error) {
	a, err := Analyze(t, p, routes)
	if err != nil {
		return 0, err
	}
	xb := CrossbarBound(p)
	if xb == 0 {
		return 1, nil
	}
	return float64(a.CompletionBound()) / float64(xb), nil
}

// PhasedSlowdown computes the slowdown of a sequence of dependent
// communication phases (e.g. CG's five exchanges): total bound over
// the phases divided by the total crossbar bound. Phases are assumed
// separated by synchronization, so their times add.
func PhasedSlowdown(t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern) (float64, error) {
	return PhasedSlowdownCached(nil, t, algo, phases)
}

// PhasedSlowdownCached is PhasedSlowdown with table memoization; a
// nil cache recomputes.
func PhasedSlowdownCached(c *core.TableCache, t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern) (float64, error) {
	if len(phases) == 0 {
		return 0, fmt.Errorf("contention: no phases")
	}
	var network, crossbar int64
	for _, p := range phases {
		tbl, err := c.Build(t, algo, p)
		if err != nil {
			return 0, err
		}
		a, err := Analyze(t, p, tbl.Routes)
		if err != nil {
			return 0, err
		}
		xb := CrossbarBound(p)
		network += a.CompletionBound()
		crossbar += xb
	}
	if crossbar == 0 {
		return 1, nil
	}
	return float64(network) / float64(crossbar), nil
}

// PhaseBounds returns the per-phase completion bounds (in bytes) on
// the topology and on the crossbar, for phase-resolved reporting
// (Fig. 3's "fifth phase takes eight times longer" analysis).
func PhaseBounds(t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern) (network, crossbar []int64, err error) {
	return PhaseBoundsCached(nil, t, algo, phases)
}

// PhaseBoundsCached is PhaseBounds with table memoization; a nil
// cache recomputes.
func PhaseBoundsCached(c *core.TableCache, t *xgft.Topology, algo core.Algorithm, phases []*pattern.Pattern) (network, crossbar []int64, err error) {
	network = make([]int64, len(phases))
	crossbar = make([]int64, len(phases))
	for i, p := range phases {
		tbl, err := c.Build(t, algo, p)
		if err != nil {
			return nil, nil, err
		}
		a, err := Analyze(t, p, tbl.Routes)
		if err != nil {
			return nil, nil, err
		}
		network[i] = a.CompletionBound()
		crossbar[i] = CrossbarBound(p)
	}
	return network, crossbar, nil
}
