package contention

import (
	"fmt"
	"sort"

	"repro/internal/xgft"
)

// Deadlock analysis (§V: "finding a minimal deadlock-free path").
// Up*/down* routing on a fat tree is deadlock-free because the
// channel dependency graph (Dally & Seitz) is acyclic: ascending
// channels only depend on higher ascending channels or on descending
// ones, and descending channels only on lower descending channels.
// VerifyDeadlockFree checks that property constructively for an
// arbitrary route set, so route tables loaded from files (or produced
// by future non-minimal schemes) can be certified before simulation.

// dirChannel identifies a directed channel: wire ID plus direction.
type dirChannel struct {
	wire int
	up   bool
}

// VerifyDeadlockFree builds the channel dependency graph induced by
// the routes (an edge from channel A to channel B wherever some route
// traverses A immediately before B) and reports an error describing a
// cycle if one exists.
func VerifyDeadlockFree(t *xgft.Topology, routes []xgft.Route) error {
	adj := make(map[dirChannel][]dirChannel)
	seenEdge := make(map[[2]dirChannel]bool)
	for _, r := range routes {
		var prev *dirChannel
		r.Walk(t, func(_, _, _, wire int, up bool) {
			cur := dirChannel{wire: wire, up: up}
			if prev != nil {
				e := [2]dirChannel{*prev, cur}
				if !seenEdge[e] {
					seenEdge[e] = true
					adj[*prev] = append(adj[*prev], cur)
				}
			}
			p := cur
			prev = &p
		})
	}
	// Iterative DFS three-coloring for cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[dirChannel]int)
	type frame struct {
		node dirChannel
		next int
	}
	// DFS roots in sorted order so the cycle a faulty route set is
	// reported through does not depend on map iteration order.
	starts := make([]dirChannel, 0, len(adj))
	for start := range adj {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool {
		if starts[i].wire != starts[j].wire {
			return starts[i].wire < starts[j].wire
		}
		return !starts[i].up && starts[j].up
	})
	for _, start := range starts {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				child := adj[f.node][f.next]
				f.next++
				switch color[child] {
				case white:
					color[child] = gray
					stack = append(stack, frame{node: child})
				case gray:
					return fmt.Errorf("contention: channel dependency cycle through wire %d (%s) and wire %d (%s)",
						f.node.wire, dirName(f.node.up), child.wire, dirName(child.up))
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

func dirName(up bool) string {
	if up {
		return "up"
	}
	return "down"
}
