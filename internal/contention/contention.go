// Package contention implements the combinatorial contention analysis
// of the paper (§IV, §VII): per-channel loads of a routed pattern,
// the endpoint-vs-network contention distinction, the grouped
// contention metric of the authors' ICS'09 work (flows serialized at
// an endpoint share channels for free), and analytic completion-time
// bounds that normalize against the ideal full crossbar.
package contention

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Analysis is the result of Analyze: per-channel byte totals, flow
// counts and endpoint-group counts, plus per-adapter injection and
// ejection totals.
type Analysis struct {
	Topo *xgft.Topology

	UpBytes    []int64 // per channel, ascending direction
	DownBytes  []int64 // per channel, descending direction
	UpFlows    []int
	DownFlows  []int
	UpGroups   []int // distinct sources using the up channel
	DownGroups []int // distinct destinations using the down channel

	InjectBytes []int64 // per leaf
	EjectBytes  []int64 // per leaf
	OutDegree   []int
	InDegree    []int
}

// Analyze computes the census of a routed pattern. routes must be
// aligned with p.Flows (as produced by core.BuildTable). Self-flows
// are skipped.
func Analyze(t *xgft.Topology, p *pattern.Pattern, routes []xgft.Route) (*Analysis, error) {
	if len(routes) != len(p.Flows) {
		return nil, fmt.Errorf("contention: %d routes for %d flows", len(routes), len(p.Flows))
	}
	n := t.TotalChannels()
	a := &Analysis{
		Topo:        t,
		UpBytes:     make([]int64, n),
		DownBytes:   make([]int64, n),
		UpFlows:     make([]int, n),
		DownFlows:   make([]int, n),
		UpGroups:    make([]int, n),
		DownGroups:  make([]int, n),
		InjectBytes: p.BytesOut(),
		EjectBytes:  p.BytesIn(),
		OutDegree:   p.OutDegree(),
		InDegree:    p.InDegree(),
	}
	upSeen := make(map[groupKey]bool)
	downSeen := make(map[groupKey]bool)
	for i, f := range p.Flows {
		if f.Src == f.Dst {
			continue
		}
		r := routes[i]
		if r.Src != f.Src || r.Dst != f.Dst {
			return nil, fmt.Errorf("contention: route %d endpoints (%d,%d) do not match flow (%d,%d)", i, r.Src, r.Dst, f.Src, f.Dst)
		}
		r.Walk(t, func(_, _, _, ch int, up bool) {
			if up {
				a.UpBytes[ch] += f.Bytes
				a.UpFlows[ch]++
				k := groupKey{ch: ch, endpoint: f.Src}
				if !upSeen[k] {
					upSeen[k] = true
					a.UpGroups[ch]++
				}
			} else {
				a.DownBytes[ch] += f.Bytes
				a.DownFlows[ch]++
				k := groupKey{ch: ch, endpoint: f.Dst}
				if !downSeen[k] {
					downSeen[k] = true
					a.DownGroups[ch]++
				}
			}
		})
	}
	return a, nil
}

type groupKey struct {
	ch       int
	endpoint int
}

// MaxEndpointContention returns the paper's §IV endpoint contention:
// the largest number of messages produced by or destined to a single
// node.
func (a *Analysis) MaxEndpointContention() int {
	max := 0
	for _, d := range a.OutDegree {
		if d > max {
			max = d
		}
	}
	for _, d := range a.InDegree {
		if d > max {
			max = d
		}
	}
	return max
}

// MaxNetworkContention returns the largest endpoint-group count over
// all channels: contention a routing scheme is responsible for. A
// value of 1 means no two independently-serialized flows ever share a
// channel (the pattern is routed without blocking).
func (a *Analysis) MaxNetworkContention() int {
	max := 0
	for _, g := range a.UpGroups {
		if g > max {
			max = g
		}
	}
	for _, g := range a.DownGroups {
		if g > max {
			max = g
		}
	}
	return max
}

// MaxFlowsPerChannel returns the classic (endpoint-blind) congestion
// figure the paper argues against using alone.
func (a *Analysis) MaxFlowsPerChannel() int {
	max := 0
	for _, f := range a.UpFlows {
		if f > max {
			max = f
		}
	}
	for _, f := range a.DownFlows {
		if f > max {
			max = f
		}
	}
	return max
}

// CompletionBound returns the congestion lower bound on completion
// time in bytes: the largest byte total any single serialized
// resource (injection adapter, wire direction, ejection adapter)
// must move. Divide by link bandwidth for seconds.
func (a *Analysis) CompletionBound() int64 {
	var max int64
	for _, b := range a.InjectBytes {
		if b > max {
			max = b
		}
	}
	for _, b := range a.EjectBytes {
		if b > max {
			max = b
		}
	}
	for _, b := range a.UpBytes {
		if b > max {
			max = b
		}
	}
	for _, b := range a.DownBytes {
		if b > max {
			max = b
		}
	}
	return max
}

// CrossbarBound returns the completion bound of the same pattern on
// the ideal single-stage crossbar: only injection and ejection
// serialize.
func CrossbarBound(p *pattern.Pattern) int64 {
	var max int64
	for _, b := range p.BytesOut() {
		if b > max {
			max = b
		}
	}
	for _, b := range p.BytesIn() {
		if b > max {
			max = b
		}
	}
	return max
}

// GroupProfile returns the sorted multiset of group counts of the
// given direction over all channels — the paper's "number of
// patterns routed with contention level C" view. Channels carrying
// nothing are omitted.
func (a *Analysis) GroupProfile(up bool) []int {
	src := a.DownGroups
	if up {
		src = a.UpGroups
	}
	var out []int
	for _, g := range src {
		if g > 0 {
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out
}

// NCAHistogram counts routes per NCA switch at the given level.
// Routes with a lower NCA level are ignored, matching Fig. 4 which
// plots only root-level assignments.
func NCAHistogram(t *xgft.Topology, routes []xgft.Route, level int) []int {
	counts := make([]int, t.NodesAt(level))
	for _, r := range routes {
		if r.NCALevel() != level {
			continue
		}
		_, idx := r.NCA(t)
		counts[idx]++
	}
	return counts
}
