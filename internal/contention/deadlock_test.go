package contention

import (
	"repro/internal/hashutil"
	"testing"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

func TestAllAlgorithmsAreDeadlockFree(t *testing.T) {
	tp := paperTree(t, 10)
	p := pattern.UniformRandom(256, 3, 100, 4)
	algos := []core.Algorithm{
		core.NewSModK(tp),
		core.NewDModK(tp),
		core.NewRandom(tp, 1),
		core.NewRandomNCAUp(tp, 1),
		core.NewRandomNCADown(tp, 1),
	}
	for _, algo := range algos {
		tbl, err := core.BuildTable(tp, algo, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyDeadlockFree(tp, tbl.Routes); err != nil {
			t.Errorf("%s: %v", algo.Name(), err)
		}
	}
}

func TestDeadlockFreeOnDeepTrees(t *testing.T) {
	tp, err := xgft.NewKaryNTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.KeyedRandomPermutation(64, 100, 5)
	lw, err := core.NewLevelWise(tp, []*pattern.Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := core.BuildTable(tp, lw, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDeadlockFree(tp, tbl.Routes); err != nil {
		t.Error(err)
	}
}

func TestDeadlockDetectsFabricatedCycle(t *testing.T) {
	// Hand-build dependency edges that form a cycle by walking two
	// fabricated "routes" that traverse channels up then down then up
	// again is impossible through the Route API (routes are always
	// up*/down*), so synthesize the cycle with two routes whose
	// dependency edges chain into a loop: A->B from one route and
	// B->A from another is also impossible for minimal routes — the
	// checker must accept all of them. Instead verify the checker
	// notices a cycle on a degenerate 1-switch topology where we feed
	// it the same wire twice in both directions via two crafted
	// routes sharing wires in opposite orders at level >= 2.
	tp := xgft.MustNew(2, []int{2, 2}, []int{1, 2})
	// Route 1: 0 -> 2 via root 0; route 2: 2 -> 0 via root 0. Their
	// dependency edges are disjoint chains; the graph stays acyclic
	// and the checker must pass. This guards against false positives.
	r1 := xgft.Route{Src: 0, Dst: 2, Up: []int{0, 0}}
	r2 := xgft.Route{Src: 2, Dst: 0, Up: []int{0, 0}}
	if err := VerifyDeadlockFree(tp, []xgft.Route{r1, r2}); err != nil {
		t.Errorf("acyclic opposite routes flagged: %v", err)
	}
}

func TestDeadlockEmptyRoutes(t *testing.T) {
	tp := paperTree(t, 16)
	if err := VerifyDeadlockFree(tp, nil); err != nil {
		t.Error(err)
	}
	// Self-routes contribute nothing.
	if err := VerifyDeadlockFree(tp, []xgft.Route{{Src: 3, Dst: 3}}); err != nil {
		t.Error(err)
	}
}

func TestDeadlockFreeTheoremQuick(t *testing.T) {
	// Any set of minimal up*/down* routes is deadlock-free — check on
	// random topologies and random route choices.
	for seed := int64(0); seed < 30; seed++ {
		rng := hashutil.NewStream(uint64(seed))
		h := 1 + rng.Intn(3)
		m := make([]int, h)
		w := make([]int, h)
		for i := range m {
			m[i] = 1 + rng.Intn(3)
			w[i] = 1 + rng.Intn(3)
		}
		tp, err := xgft.New(h, m, w)
		if err != nil {
			t.Fatal(err)
		}
		n := tp.Leaves()
		var routes []xgft.Route
		for i := 0; i < 50; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			l := tp.NCALevel(s, d)
			up := make([]int, l)
			for j := range up {
				up[j] = rng.Intn(tp.W(j))
			}
			routes = append(routes, xgft.Route{Src: s, Dst: d, Up: up})
		}
		if err := VerifyDeadlockFree(tp, routes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
