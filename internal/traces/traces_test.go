package traces

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/pattern"
	"repro/internal/venus"
	"repro/internal/xgft"
)

func paperTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func cfg() dimemas.Config { return dimemas.Config{Net: venus.DefaultConfig()} }

func TestWRFTraceValid(t *testing.T) {
	tr, err := WRF(4, 4, 1024, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 16 {
		t.Errorf("ranks = %d", tr.NumRanks())
	}
	// 2 iterations x (2*16 - 2*4) messages.
	if got := tr.CountMessages(); got != 48 {
		t.Errorf("messages = %d, want 48", got)
	}
}

func TestWRFTraceReplays(t *testing.T) {
	tp := paperTree(t, 16)
	tr, err := WRF(16, 16, 8*1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	end, err := dimemas.Replay(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("replay took no time")
	}
}

func TestWRFErrors(t *testing.T) {
	if _, err := WRF(1, 4, 1024, 1, 0); err == nil {
		t.Error("1-row mesh accepted")
	}
	if _, err := WRF(4, 4, 1024, 0, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestWRF256MatchesPattern(t *testing.T) {
	tr := WRF256()
	if tr.NumRanks() != 256 {
		t.Fatalf("ranks = %d", tr.NumRanks())
	}
	if got, want := tr.CountMessages(), len(pattern.WRF256().Flows); got != want {
		t.Errorf("trace has %d messages, pattern has %d flows", got, want)
	}
}

func TestCGTraceStructure(t *testing.T) {
	tr, err := CG(128, 1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5 phases x 128 sends (fixed-point self-sends included).
	if got := tr.CountMessages(); got != 5*128 {
		t.Errorf("messages = %d, want %d", got, 5*128)
	}
}

func TestCGTraceReplays(t *testing.T) {
	tp := paperTree(t, 16)
	tr, err := CG(128, 8*1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	end, err := dimemas.Replay(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("replay took no time")
	}
}

func TestCGReplaySlowdownShowsPathology(t *testing.T) {
	// End-to-end: the full replay pipeline reproduces the §VII-A
	// observation that CG under D-mod-k is >2x slower than the
	// crossbar while Colored stays close to 1.
	tp := paperTree(t, 16)
	tr, err := CG(128, 32*1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sD, err := dimemas.MeasuredSlowdown(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if sD < 1.8 {
		t.Errorf("CG d-mod-k slowdown = %.2f, want > 1.8 (pathology)", sD)
	}
	phases, err := pattern.CGPhases(128, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewColored(tp, phases, core.ColoredConfig{})
	sC, err := dimemas.MeasuredSlowdown(tr, tp, col, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if sC >= sD {
		t.Errorf("colored %.2f not better than d-mod-k %.2f", sC, sD)
	}
	if sC > 1.5 {
		t.Errorf("colored CG slowdown = %.2f, want near 1", sC)
	}
}

func TestFromPatternRoundTrip(t *testing.T) {
	p := pattern.Shift(64, 5, 2048)
	tr, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalBytes(); got != p.TotalBytes() {
		t.Errorf("trace bytes %d != pattern bytes %d", got, p.TotalBytes())
	}
	tp := paperTree(t, 16)
	if _, err := dimemas.Replay(tr, tp, core.NewSModK(tp), cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFromPhasesErrors(t *testing.T) {
	if _, err := FromPhases(0, nil, 1, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	mismatch := pattern.New(8)
	if _, err := FromPhases(16, []*pattern.Pattern{mismatch}, 1, 0); err == nil {
		t.Error("phase size mismatch accepted")
	}
	ok := pattern.New(16)
	if _, err := FromPhases(16, []*pattern.Pattern{ok}, 0, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestMultipleIterationsReplay(t *testing.T) {
	tp := paperTree(t, 16)
	tr, err := WRF(4, 4, 4*1024, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	one, err := WRF(4, 4, 4*1024, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	end3, err := dimemas.Replay(tr, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	end1, err := dimemas.Replay(one, tp, core.NewDModK(tp), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if end3 < 2*end1 {
		t.Errorf("3 iterations (%d ns) not ~3x one iteration (%d ns)", end3, end1)
	}
}
