// Package traces generates the synthetic application traces that
// substitute for the paper's post-mortem WRF-256 and NAS CG.D-128
// traces (DESIGN.md, substitution #1): the communication structure is
// exactly the one the paper documents; compute intervals are
// parameters.
package traces

import (
	"fmt"

	"repro/internal/dimemas"
	"repro/internal/eventq"
	"repro/internal/pattern"
)

// WRF builds the WRF halo-exchange trace on a rows x cols task mesh:
// every iteration, each task posts non-blocking sends to its ±cols
// neighbours (both outstanding simultaneously, as the paper
// describes), receives from them, and waits for completion.
func WRF(rows, cols int, bytes int64, iterations int, compute eventq.Time) (*dimemas.Trace, error) {
	if rows < 2 || cols < 1 {
		return nil, fmt.Errorf("traces: WRF mesh %dx%d too small", rows, cols)
	}
	if iterations < 1 {
		return nil, fmt.Errorf("traces: need at least one iteration")
	}
	n := rows * cols
	t := &dimemas.Trace{Ranks: make([][]dimemas.Op, n)}
	for r := 0; r < n; r++ {
		var ops []dimemas.Op
		for it := 0; it < iterations; it++ {
			if compute > 0 {
				ops = append(ops, dimemas.Compute{Dur: compute})
			}
			tag := it
			req := 0
			if r+cols < n {
				ops = append(ops, dimemas.ISend{Dst: r + cols, Bytes: bytes, Tag: tag, Req: req})
				req++
			}
			if r-cols >= 0 {
				ops = append(ops, dimemas.ISend{Dst: r - cols, Bytes: bytes, Tag: tag, Req: req})
				req++
			}
			if r+cols < n {
				ops = append(ops, dimemas.Recv{Src: r + cols, Tag: tag})
			}
			if r-cols >= 0 {
				ops = append(ops, dimemas.Recv{Src: r - cols, Tag: tag})
			}
			ops = append(ops, dimemas.WaitAll{})
		}
		t.Ranks[r] = ops
	}
	return t, nil
}

// WRF256 is the paper's WRF-256 instance: 16x16 mesh, one iteration.
func WRF256() *dimemas.Trace {
	t, err := WRF(16, 16, pattern.DefaultWRFBytes, 1, 0)
	if err != nil {
		panic(err) //lint:allow banned unreachable with constant arguments
	}
	return t
}

// CG builds the NAS CG trace: per iteration, the row-butterfly
// phases followed by the transpose exchange, phases separated by the
// data dependencies of the kernel (modelled with barriers, which is
// conservative but preserves the paper's per-phase accounting).
func CG(nprocs int, bytes int64, iterations int, compute eventq.Time) (*dimemas.Trace, error) {
	phases, err := pattern.CGPhases(nprocs, bytes)
	if err != nil {
		return nil, err
	}
	if iterations < 1 {
		return nil, fmt.Errorf("traces: need at least one iteration")
	}
	return FromPhases(nprocs, phases, iterations, compute)
}

// CGD128 is the paper's CG.D-128 instance: 128 ranks, five phases of
// 750 KB messages.
func CGD128() *dimemas.Trace {
	t, err := CG(128, pattern.DefaultCGPhaseBytes, 1, 0)
	if err != nil {
		panic(err) //lint:allow banned unreachable with constant arguments
	}
	return t
}

// FromPhases lowers a sequence of communication phases into a trace:
// each phase is a non-blocking exchange (all sends posted, then all
// receives, then wait), with a barrier separating phases.
func FromPhases(n int, phases []*pattern.Pattern, iterations int, compute eventq.Time) (*dimemas.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("traces: no ranks")
	}
	if iterations < 1 {
		return nil, fmt.Errorf("traces: need at least one iteration")
	}
	// Pre-index flows by source and destination per phase.
	type exchange struct {
		sends [][]dimemas.ISend // per rank
		recvs [][]dimemas.Recv  // per rank
	}
	exchanges := make([]exchange, len(phases))
	for pi, ph := range phases {
		if ph.N != n {
			return nil, fmt.Errorf("traces: phase %d is over %d endpoints, want %d", pi, ph.N, n)
		}
		ex := exchange{sends: make([][]dimemas.ISend, n), recvs: make([][]dimemas.Recv, n)}
		reqs := make([]int, n)
		for _, f := range ph.Flows {
			ex.sends[f.Src] = append(ex.sends[f.Src], dimemas.ISend{Dst: f.Dst, Bytes: f.Bytes, Tag: pi, Req: reqs[f.Src]})
			reqs[f.Src]++
			ex.recvs[f.Dst] = append(ex.recvs[f.Dst], dimemas.Recv{Src: f.Src, Tag: pi})
		}
		exchanges[pi] = ex
	}
	t := &dimemas.Trace{Ranks: make([][]dimemas.Op, n)}
	for r := 0; r < n; r++ {
		var ops []dimemas.Op
		for it := 0; it < iterations; it++ {
			for pi := range exchanges {
				if compute > 0 {
					ops = append(ops, dimemas.Compute{Dur: compute})
				}
				for _, s := range exchanges[pi].sends[r] {
					ops = append(ops, s)
				}
				for _, rc := range exchanges[pi].recvs[r] {
					ops = append(ops, rc)
				}
				ops = append(ops, dimemas.WaitAll{})
				ops = append(ops, dimemas.Barrier{})
			}
		}
		t.Ranks[r] = ops
	}
	return t, nil
}

// FromPattern lowers a single flat pattern (the paper's strategy (ii):
// everything injected at once) into a one-phase trace.
func FromPattern(p *pattern.Pattern) (*dimemas.Trace, error) {
	return FromPhases(p.N, []*pattern.Pattern{p}, 1, 0)
}
