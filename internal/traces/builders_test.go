package traces

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/pattern"
)

func TestCGD128PaperInstance(t *testing.T) {
	tr := CGD128()
	if tr.NumRanks() != 128 {
		t.Fatalf("ranks = %d", tr.NumRanks())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Five phases of 128 sends each at 750 KB.
	if got := tr.TotalBytes(); got != 5*128*750*1024 {
		t.Errorf("total bytes = %d", got)
	}
}

func TestWRFComputePhases(t *testing.T) {
	// Compute intervals serialize before the exchanges; total time
	// grows accordingly.
	tp := paperTree(t, 16)
	fast, err := WRF(4, 4, 4*1024, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := WRF(4, 4, 4*1024, 1, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	cfgv := cfg()
	tFast, err := dimemas.Replay(fast, tp, core.NewDModK(tp), cfgv)
	if err != nil {
		t.Fatal(err)
	}
	tSlow, err := dimemas.Replay(slow, tp, core.NewDModK(tp), cfgv)
	if err != nil {
		t.Fatal(err)
	}
	if tSlow < tFast+500_000 {
		t.Errorf("compute did not serialize: %d vs %d", tSlow, tFast)
	}
}

func TestFromPhasesIterationsScaleMessages(t *testing.T) {
	ph := pattern.Shift(8, 1, 1024)
	phases := []*pattern.Pattern{ph}
	one, err := FromPhases(8, phases, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	three, err := FromPhases(8, phases, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if three.CountMessages() != 3*one.CountMessages() {
		t.Errorf("3 iterations has %d messages, one has %d", three.CountMessages(), one.CountMessages())
	}
}
