package core

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

// AlgorithmNames lists the selectable routing schemes in a stable
// order (the order the paper's figures use).
func AlgorithmNames() []string {
	names := []string{"s-mod-k", "d-mod-k", "random", "r-NCA-u", "r-NCA-d", "colored", "level-wise"}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return names
}

// NewByName constructs a routing algorithm by its paper name. The
// seed matters only for the randomized schemes; phases are required
// only by "colored" (pattern-aware).
func NewByName(name string, t *xgft.Topology, seed uint64, phases []*pattern.Pattern) (Algorithm, error) {
	switch name {
	case "s-mod-k":
		return NewSModK(t), nil
	case "d-mod-k":
		return NewDModK(t), nil
	case "random":
		return NewRandom(t, seed), nil
	case "r-NCA-u":
		return NewRandomNCAUp(t, seed), nil
	case "r-NCA-d":
		return NewRandomNCADown(t, seed), nil
	case "colored":
		if len(phases) == 0 {
			return nil, fmt.Errorf("core: colored routing needs the communication phases")
		}
		return NewColored(t, phases, ColoredConfig{Seed: seed}), nil
	case "level-wise":
		if len(phases) == 0 {
			return nil, fmt.Errorf("core: level-wise routing needs the communication phases")
		}
		return NewLevelWise(t, phases)
	default:
		return nil, fmt.Errorf("core: unknown routing algorithm %q (known: %v)", name, AlgorithmNames())
	}
}
