package core

import (
	"repro/internal/hashutil"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func paperTree(t testing.TB, w2 int) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func allAlgorithms(t testing.TB, tp *xgft.Topology) []Algorithm {
	t.Helper()
	return []Algorithm{
		NewSModK(tp),
		NewDModK(tp),
		NewRandom(tp, 1),
		NewRandomNCAUp(tp, 1),
		NewRandomNCADown(tp, 1),
	}
}

func TestAllAlgorithmsProduceValidRoutes(t *testing.T) {
	tp := paperTree(t, 10)
	n := tp.Leaves()
	for _, algo := range allAlgorithms(t, tp) {
		for s := 0; s < n; s += 11 {
			for d := 0; d < n; d += 7 {
				r := algo.Route(s, d)
				if s == d {
					if len(r.Up) != 0 {
						t.Fatalf("%s: self route %d has ascent", algo.Name(), s)
					}
					continue
				}
				if err := r.Validate(tp); err != nil {
					t.Fatalf("%s: %v", algo.Name(), err)
				}
				if !r.VerifyConnects(tp) {
					t.Fatalf("%s: route %d->%d does not connect", algo.Name(), s, d)
				}
			}
		}
	}
}

func TestAlgorithmsAreDeterministic(t *testing.T) {
	tp := paperTree(t, 10)
	for _, algo := range allAlgorithms(t, tp) {
		a := algo.Route(3, 200)
		b := algo.Route(3, 200)
		if len(a.Up) != len(b.Up) {
			t.Fatalf("%s nondeterministic length", algo.Name())
		}
		for i := range a.Up {
			if a.Up[i] != b.Up[i] {
				t.Fatalf("%s nondeterministic at level %d", algo.Name(), i)
			}
		}
	}
}

func TestSModKDefinition(t *testing.T) {
	// Paper: S-mod-k chooses parent floor(s/k^(l-1)) mod k at hop l of
	// a k-ary n-tree.
	tp, err := xgft.NewKaryNTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	algo := NewSModK(tp)
	s, d := 37, 5 // differ in top digit: NCA at level 3
	r := algo.Route(s, d)
	if len(r.Up) != 3 {
		t.Fatalf("ascent length %d, want 3", len(r.Up))
	}
	// Level 0 uses digit 0 mod w1=1 -> 0; level 1 uses digit 0 of s
	// (37 mod 4 = 1); level 2 uses digit 1 (37/4 mod 4 = 1).
	if r.Up[0] != 0 || r.Up[1] != 37%4 || r.Up[2] != (37/4)%4 {
		t.Errorf("S-mod-k ascent = %v, want [0 %d %d]", r.Up, 37%4, (37/4)%4)
	}
}

func TestDModKDefinition(t *testing.T) {
	tp := paperTree(t, 16)
	algo := NewDModK(tp)
	// Pairs crossing switches: first real up-port is d mod 16
	// (paper §VII-A: "D-mod-k routing will choose r1 = (d mod 16)").
	for _, pair := range [][2]int{{0, 16}, {5, 37}, {100, 250}} {
		r := algo.Route(pair[0], pair[1])
		if r.Up[1] != pair[1]%16 {
			t.Errorf("d-mod-k %d->%d: r1 = %d, want %d", pair[0], pair[1], r.Up[1], pair[1]%16)
		}
	}
}

func TestSModKSingleUpPathPerSource(t *testing.T) {
	// S-mod-k gives every source a unique path up regardless of the
	// destination (§VII): all routes from one source share ascent.
	tp := paperTree(t, 10)
	algo := NewSModK(tp)
	for s := 0; s < 48; s += 5 {
		var ref []int
		for d := 0; d < tp.Leaves(); d += 13 {
			if tp.NCALevel(s, d) != 2 {
				continue
			}
			r := algo.Route(s, d)
			if ref == nil {
				ref = r.Up
				continue
			}
			for i := range ref {
				if r.Up[i] != ref[i] {
					t.Fatalf("source %d uses different ascents %v vs %v", s, ref, r.Up)
				}
			}
		}
	}
}

func TestDModKSingleDownPathPerDestination(t *testing.T) {
	tp := paperTree(t, 10)
	algo := NewDModK(tp)
	for d := 0; d < 48; d += 5 {
		var refNCA = -1
		for s := 0; s < tp.Leaves(); s += 13 {
			if tp.NCALevel(s, d) != 2 {
				continue
			}
			r := algo.Route(s, d)
			_, nca := r.NCA(tp)
			if refNCA == -1 {
				refNCA = nca
				continue
			}
			if nca != refNCA {
				t.Fatalf("destination %d reached via roots %d and %d", d, refNCA, nca)
			}
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	tp := paperTree(t, 16)
	a := NewRandom(tp, 1)
	b := NewRandom(tp, 2)
	diff := 0
	for s := 0; s < 64; s++ {
		d := (s + 16) % 256
		ra, rb := a.Route(s, d), b.Route(s, d)
		if ra.Up[1] != rb.Up[1] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("two seeds produced identical random tables")
	}
}

func TestRandomUniformlySpreadsRoots(t *testing.T) {
	tp := paperTree(t, 16)
	algo := NewRandom(tp, 42)
	counts := make([]int, 16)
	n := 0
	for s := 0; s < 256; s++ {
		for d := 0; d < 256; d += 3 {
			if tp.NCALevel(s, d) != 2 {
				continue
			}
			r := algo.Route(s, d)
			_, idx := r.NCA(tp)
			counts[idx]++
			n++
		}
	}
	mean := float64(n) / 16
	for root, c := range counts {
		if f := float64(c); f < mean*0.85 || f > mean*1.15 {
			t.Errorf("root %d got %d routes, mean %.0f (poor spread)", root, c, mean)
		}
	}
}

func TestRelabelingIsBalanced(t *testing.T) {
	// Every root receives either floor(m/w) or ceil(m/w) of the guide
	// digits of each subtree.
	tp := paperTree(t, 10)
	algo := NewRandomNCAUp(tp, 7)
	for sw := 0; sw < 16; sw++ {
		counts := make([]int, 10)
		for leaf := sw * 16; leaf < (sw+1)*16; leaf++ {
			p, ok := RelabeledDigit(algo, 1, leaf)
			if !ok {
				t.Fatal("RelabeledDigit failed")
			}
			if p < 0 || p >= 10 {
				t.Fatalf("relabeled digit %d out of range", p)
			}
			counts[p]++
		}
		for v, c := range counts {
			if c != 1 && c != 2 {
				t.Errorf("switch %d: port %d got %d digits, want 1 or 2", sw, v, c)
			}
		}
	}
}

func TestRelabelingConcentratesEndpointContention(t *testing.T) {
	// r-NCA-u must give each source a single ascent (like S-mod-k);
	// r-NCA-d a single root per destination (like D-mod-k).
	tp := paperTree(t, 10)
	up := NewRandomNCAUp(tp, 3)
	down := NewRandomNCADown(tp, 3)
	for e := 0; e < 64; e += 7 {
		var refUp []int
		refRoot := -1
		for o := 0; o < tp.Leaves(); o += 11 {
			if tp.NCALevel(e, o) != 2 {
				continue
			}
			ru := up.Route(e, o)
			if refUp == nil {
				refUp = ru.Up
			} else {
				for i := range refUp {
					if ru.Up[i] != refUp[i] {
						t.Fatalf("r-NCA-u source %d has two ascents", e)
					}
				}
			}
			rd := down.Route(o, e)
			_, root := rd.NCA(tp)
			if refRoot == -1 {
				refRoot = root
			} else if root != refRoot {
				t.Fatalf("r-NCA-d destination %d uses two roots", e)
			}
		}
	}
}

func TestRelabelingSeedsDiffer(t *testing.T) {
	tp := paperTree(t, 16)
	a := NewRandomNCAUp(tp, 1)
	b := NewRandomNCAUp(tp, 99)
	diff := 0
	for s := 0; s < 256; s++ {
		pa, _ := RelabeledDigit(a, 1, s)
		pb, _ := RelabeledDigit(b, 1, s)
		if pa != pb {
			diff++
		}
	}
	if diff < 32 {
		t.Errorf("only %d/256 relabeled digits differ between seeds", diff)
	}
}

func TestMakeBalancedMapProperties(t *testing.T) {
	cases := []struct{ m, w int }{{16, 16}, {16, 10}, {16, 1}, {5, 3}, {3, 5}, {1, 1}, {4, 8}}
	for _, c := range cases {
		mp := makeBalancedMap(c.m, c.w, 12345)
		if len(mp) != c.m {
			t.Fatalf("map length %d, want %d", len(mp), c.m)
		}
		counts := make([]int, c.w)
		for _, v := range mp {
			if v < 0 || int(v) >= c.w {
				t.Fatalf("value %d out of [0,%d)", v, c.w)
			}
			counts[v]++
		}
		if c.w >= c.m {
			for _, cnt := range counts {
				if cnt > 1 {
					t.Errorf("m=%d w=%d: injection violated (%v)", c.m, c.w, counts)
				}
			}
			continue
		}
		lo, hi := c.m/c.w, (c.m+c.w-1)/c.w
		for v, cnt := range counts {
			if cnt < lo || cnt > hi {
				t.Errorf("m=%d w=%d: value %d count %d outside [%d,%d]", c.m, c.w, v, cnt, lo, hi)
			}
		}
	}
}

func TestModKIsSpecialCaseOfFamily(t *testing.T) {
	// Replacing the random balanced maps by the modulo function must
	// reproduce S-mod-k exactly; verified indirectly: both concentrate
	// per-source ascents and both are balanced when w divides m. Here
	// we check the family with w=m gives a permutation of ports per
	// subtree, as mod does.
	tp := paperTree(t, 16)
	algo := NewRandomNCAUp(tp, 5)
	for sw := 0; sw < 16; sw++ {
		seen := make([]bool, 16)
		for leaf := sw * 16; leaf < (sw+1)*16; leaf++ {
			p, _ := RelabeledDigit(algo, 1, leaf)
			if seen[p] {
				t.Fatalf("switch %d: port %d reused (not balanced)", sw, p)
			}
			seen[p] = true
		}
	}
}

func TestBuildTable(t *testing.T) {
	tp := paperTree(t, 16)
	p := pattern.WRF256()
	tbl, err := BuildTable(tp, NewDModK(tp), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Routes) != len(p.Flows) {
		t.Fatalf("table has %d routes, want %d", len(tbl.Routes), len(p.Flows))
	}
	for i, r := range tbl.Routes {
		if r.Src != p.Flows[i].Src || r.Dst != p.Flows[i].Dst {
			t.Fatalf("route %d endpoints mismatch", i)
		}
	}
	big := pattern.New(1024)
	big.Add(0, 1000, 1)
	if _, err := BuildTable(tp, NewDModK(tp), big); err == nil {
		t.Error("oversized pattern accepted")
	}
}

func TestAllPairsNCACensusFig4a(t *testing.T) {
	// Fig. 4a: XGFT(2;16,16;1,16): S-mod-k and D-mod-k assign exactly
	// 3840 routes to each of the 16 roots (256*240/16).
	tp := paperTree(t, 16)
	for _, algo := range []Algorithm{NewSModK(tp), NewDModK(tp)} {
		census := AllPairsNCACensus(tp, algo)
		for root, c := range census {
			if c != 3840 {
				t.Errorf("%s root %d: %d routes, want 3840", algo.Name(), root, c)
			}
		}
	}
}

func TestAllPairsNCACensusFig4b(t *testing.T) {
	// Fig. 4b: XGFT(2;16,16;1,10): the modulo maps digits 10..15 onto
	// roots 0..5, so roots 0-5 get 7680 routes and roots 6-9 get 3840.
	tp := paperTree(t, 10)
	for _, algo := range []Algorithm{NewSModK(tp), NewDModK(tp)} {
		census := AllPairsNCACensus(tp, algo)
		for root, c := range census {
			want := 3840
			if root < 6 {
				want = 7680
			}
			if c != want {
				t.Errorf("%s root %d: %d routes, want %d", algo.Name(), root, c, want)
			}
		}
	}
}

func TestCensusRelabeledIsBalancedOnSlimmedTree(t *testing.T) {
	// The paper's motivation for mapping m's onto w's: r-NCA-* keep
	// the census nearly flat where mod-k is bimodal.
	tp := paperTree(t, 10)
	census := AllPairsNCACensus(tp, NewRandomNCAUp(tp, 11))
	total := 0
	for _, c := range census {
		total += c
	}
	if total != 256*240 {
		t.Fatalf("census total %d, want %d", total, 256*240)
	}
	mean := float64(total) / 10
	for root, c := range census {
		if f := float64(c); f < 0.8*mean || f > 1.2*mean {
			t.Errorf("r-NCA-u root %d census %d far from mean %.0f", root, c, mean)
		}
	}
}

func TestColoredRoutesPermutationConflictFreeOnFullTree(t *testing.T) {
	// §VII-A: on the full 16-ary 2-tree many optimal solutions exist
	// for any permutation; Colored must find one (max group = 1).
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 1024)
	if err != nil {
		t.Fatal(err)
	}
	col := NewColored(tp, []*pattern.Pattern{ph}, ColoredConfig{})
	if got := col.MaxGroups(ph); got != 1 {
		t.Errorf("colored max group contention = %d, want 1 (conflict-free)", got)
	}
}

func TestColoredFallsBackForUnknownPairs(t *testing.T) {
	tp := paperTree(t, 16)
	ph := pattern.New(256)
	ph.Add(0, 16, 100)
	col := NewColored(tp, []*pattern.Pattern{ph}, ColoredConfig{})
	r := col.Route(5, 200) // not in pattern
	if err := r.Validate(tp); err != nil {
		t.Fatal(err)
	}
	want := NewDModK(tp).Route(5, 200)
	for i := range want.Up {
		if r.Up[i] != want.Up[i] {
			t.Errorf("fallback differs from d-mod-k at level %d", i)
		}
	}
}

func TestColoredBeatsDModKOnCGPhase5(t *testing.T) {
	// On the slimmed tree the pathology of D-mod-k (2 groups of 8
	// flows per switch through 2 ports) must be reduced by Colored.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dmodk := NewDModK(tp)
	st := newPhaseState(tp)
	for _, f := range ph.Flows {
		if f.Src == f.Dst {
			continue
		}
		st.apply(f, dmodk.Route(f.Src, f.Dst).Up, 1)
	}
	dmax := 0
	for _, g := range st.upGroups {
		if g > dmax {
			dmax = g
		}
	}
	if dmax < 7 {
		t.Fatalf("expected D-mod-k pathology (>=7 groups per channel), got %d", dmax)
	}
	col := NewColored(tp, []*pattern.Pattern{ph}, ColoredConfig{})
	if got := col.MaxGroups(ph); got >= dmax {
		t.Errorf("colored max groups %d not better than d-mod-k %d", got, dmax)
	}
}

func TestNewByName(t *testing.T) {
	tp := paperTree(t, 16)
	ph := pattern.New(256)
	ph.Add(0, 16, 1)
	for _, name := range AlgorithmNames() {
		algo, err := NewByName(name, tp, 1, []*pattern.Pattern{ph})
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if algo.Name() != name {
			t.Errorf("NewByName(%q).Name() = %q", name, algo.Name())
		}
	}
	if _, err := NewByName("nonsense", tp, 1, nil); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := NewByName("colored", tp, 1, nil); err == nil {
		t.Error("colored without phases accepted")
	}
}

func TestQuickAllAlgorithmsConnectRandomTopologies(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		h := 1 + rng.Intn(3)
		m := make([]int, h)
		w := make([]int, h)
		for i := range m {
			m[i] = 1 + rng.Intn(4)
			w[i] = 1 + rng.Intn(4)
		}
		tp, err := xgft.New(h, m, w)
		if err != nil {
			return false
		}
		algos := []Algorithm{
			NewSModK(tp), NewDModK(tp), NewRandom(tp, uint64(seed)),
			NewRandomNCAUp(tp, uint64(seed)), NewRandomNCADown(tp, uint64(seed)),
		}
		n := tp.Leaves()
		s, d := rng.Intn(n), rng.Intn(n)
		for _, a := range algos {
			r := a.Route(s, d)
			if s != d && (r.Validate(tp) != nil || !r.VerifyConnects(tp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformReduction(t *testing.T) {
	// uniform must cover every bucket for small n.
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 4096; i++ {
			v := uniform(mix(uint64(n), uint64(i)), n)
			if v < 0 || v >= n {
				t.Fatalf("uniform out of range: %d of %d", v, n)
			}
			seen[v] = true
		}
		for b, ok := range seen {
			if !ok {
				t.Errorf("n=%d bucket %d never hit", n, b)
			}
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{0xffffffffffffffff, 2, 1, 0xfffffffffffffffe},
		{0xffffffffffffffff, 0xffffffffffffffff, 0xfffffffffffffffe, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
