package core

import "repro/internal/xgft"

// modK implements the shared machinery of S-mod-k and D-mod-k: the
// up-port at switch level l is guide-label digit l-1 modulo w_{l+1}
// (paper §V), where the guide label is the source's (S-mod-k) or the
// destination's (D-mod-k).
type modK struct {
	topo      *xgft.Topology
	useSource bool
	name      string
}

// NewSModK returns the source-mod-k self-routing scheme of the early
// fat-tree literature: every source is assigned a unique ascending
// path regardless of the destination, concentrating source-side
// endpoint contention.
func NewSModK(t *xgft.Topology) Algorithm {
	return &modK{topo: t, useSource: true, name: "s-mod-k"}
}

// NewDModK returns the destination-mod-k scheme: every destination is
// assigned a unique descending path regardless of the source,
// concentrating destination-side endpoint contention.
func NewDModK(t *xgft.Topology) Algorithm {
	return &modK{topo: t, useSource: false, name: "d-mod-k"}
}

func (m *modK) Name() string { return m.name }

// CacheKey marks mod-k routes as memoizable: they are a pure function
// of the topology spec and the scheme name.
func (m *modK) CacheKey() string { return m.name }

func (m *modK) Route(src, dst int) xgft.Route {
	l := m.topo.NCALevel(src, dst)
	r := xgft.Route{Src: src, Dst: dst}
	if l == 0 {
		return r
	}
	guide := src
	if !m.useSource {
		guide = dst
	}
	lab := m.topo.Label(0, guide)
	r.Up = make([]int, l)
	for lvl := 0; lvl < l; lvl++ {
		r.Up[lvl] = lab[guideDigit(lvl)] % m.topo.W(lvl)
	}
	return r
}
