package core

import (
	"fmt"

	"repro/internal/xgft"
)

// randomNCA implements the static Random routing of Greenberg &
// Leiserson (and the Myrinet/InfiniBand default the paper describes):
// every (source, destination) pair is assigned an independently,
// uniformly chosen NCA. The choice is a pure hash of
// (seed, src, dst, level), so the scheme is a static table — the same
// pair always uses the same path — yet different seeds give the
// independent samples used for the paper's boxplots.
type randomNCA struct {
	topo *xgft.Topology
	seed uint64
}

// NewRandom returns the static Random routing scheme for the topology.
func NewRandom(t *xgft.Topology, seed uint64) Algorithm {
	return &randomNCA{topo: t, seed: seed}
}

func (r *randomNCA) Name() string { return "random" }

// CacheKey marks Random routes as memoizable: they are a pure hash of
// (seed, pair), so the seed identifies the whole table.
func (r *randomNCA) CacheKey() string { return fmt.Sprintf("random/%#x", r.seed) }

func (r *randomNCA) Route(src, dst int) xgft.Route {
	l := r.topo.NCALevel(src, dst)
	rt := xgft.Route{Src: src, Dst: dst}
	if l == 0 {
		return rt
	}
	rt.Up = make([]int, l)
	for lvl := 0; lvl < l; lvl++ {
		h := mix(r.seed, uint64(src), uint64(dst), uint64(lvl))
		rt.Up[lvl] = uniform(h, r.topo.W(lvl))
	}
	return rt
}
