package core

import (
	"fmt"

	"repro/internal/xgft"
)

// Incremental table patching for degraded fabrics. When links or
// switches fail, only the routes whose paths traverse a failed
// element need new paths; everything else stays byte-identical. The
// replacement search enumerates the pair's alternative NCAs (every
// W-digit combination of the ascent) starting from a keyed-hash
// offset, so repair load spreads over the surviving roots instead of
// piling onto the lowest-numbered one, while remaining a pure
// function of (pair, view) — patched tables are reproducible.

// PatchStats summarizes one patch pass.
type PatchStats struct {
	// Examined counts non-self routes checked against the view.
	Examined int
	// Rerouted counts routes that traversed a failed element and were
	// assigned a surviving path.
	Rerouted int
	// Unreachable counts routes for which no minimal path survives;
	// their table entries have Up == nil (see Table docs).
	Unreachable int
}

// RerouteAvoiding returns a minimal route for r's pair that avoids
// every failed element of the view. If r already does, it is returned
// unchanged. The candidate NCAs are scanned in a deterministic
// keyed-hash order per pair; ok is false when no minimal path
// survives.
func RerouteAvoiding(v *xgft.View, r xgft.Route) (out xgft.Route, ok bool) {
	if v.RouteOK(r) {
		return r, true
	}
	t := v.Topology()
	l := len(r.Up)
	count := t.NCACount(l)
	// Candidate c encodes the ascent digits in mixed radix over
	// w[0..l-1]; start at a hash of the pair.
	start := uniform(mix(uint64(r.Src), uint64(r.Dst)), count)
	cand := xgft.Route{Src: r.Src, Dst: r.Dst, Up: make([]int, l)}
	for i := 0; i < count; i++ {
		c := start + i
		if c >= count {
			c -= count
		}
		for lvl := 0; lvl < l; lvl++ {
			w := t.W(lvl)
			cand.Up[lvl] = c % w
			c /= w
		}
		if v.RouteOK(cand) {
			return cand, true
		}
	}
	return xgft.Route{Src: r.Src, Dst: r.Dst}, false
}

// PatchTable derives a routing table valid on the degraded view from
// a table built on the healthy topology: routes that avoid every
// failed element are shared with the input, the rest are rerouted
// through surviving NCAs. Pairs with no surviving minimal path get an
// entry with Up == nil and are counted in stats.Unreachable — callers
// decide whether a disconnected pair is an error. The input table is
// not modified.
func PatchTable(tbl *Table, v *xgft.View) (*Table, PatchStats, error) {
	if !v.Topology().Equal(tbl.Topo) {
		return nil, PatchStats{}, fmt.Errorf("core: patch view is over %s, table over %s", v.Topology(), tbl.Topo)
	}
	out := &Table{Topo: tbl.Topo, Algo: tbl.Algo, Routes: tbl.Routes}
	var st PatchStats
	copied := false
	for i, r := range tbl.Routes {
		if r.Src == r.Dst {
			continue
		}
		st.Examined++
		if v.RouteOK(r) {
			continue
		}
		if !copied {
			out.Routes = append([]xgft.Route(nil), tbl.Routes...)
			copied = true
		}
		nr, ok := RerouteAvoiding(v, r)
		if ok {
			st.Rerouted++
		} else {
			st.Unreachable++
		}
		out.Routes[i] = nr
	}
	return out, st, nil
}
