package core

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func TestRerouteAvoiding(t *testing.T) {
	tp := xgft.MustNew(2, []int{4, 4}, []int{1, 4})
	algo := NewDModK(tp)
	v := xgft.NewView(tp)
	v.FailLink(1, 0, 1) // kills routes from leaves 0-3 through root digit 1

	n := tp.Leaves()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r := algo.Route(s, d)
			nr, ok := RerouteAvoiding(v, r)
			if !ok {
				t.Fatalf("pair (%d,%d) unreachable with one failed link", s, d)
			}
			if !v.RouteOK(nr) {
				t.Fatalf("reroute of (%d,%d) still uses a failed wire: %v", s, d, nr)
			}
			if err := nr.Validate(tp); err != nil {
				t.Fatalf("reroute of (%d,%d) invalid: %v", s, d, err)
			}
			if !nr.VerifyConnects(tp) {
				t.Fatalf("reroute of (%d,%d) does not connect: %v", s, d, nr)
			}
			if v.RouteOK(r) && &r.Up != &nr.Up {
				// Healthy routes must come back unchanged.
				for i := range r.Up {
					if r.Up[i] != nr.Up[i] {
						t.Fatalf("healthy route (%d,%d) was rewritten: %v -> %v", s, d, r.Up, nr.Up)
					}
				}
			}
		}
	}
}

func TestRerouteDeterministic(t *testing.T) {
	tp := xgft.MustNew(2, []int{4, 4}, []int{1, 4})
	v := xgft.NewView(tp)
	v.FailLink(1, 0, 0)
	v.FailLink(1, 0, 1)
	r := NewDModK(tp).Route(0, 4)
	a, okA := RerouteAvoiding(v, r)
	b, okB := RerouteAvoiding(v, r)
	if okA != okB || len(a.Up) != len(b.Up) {
		t.Fatalf("reroute not deterministic: %v/%v vs %v/%v", a, okA, b, okB)
	}
	for i := range a.Up {
		if a.Up[i] != b.Up[i] {
			t.Fatalf("reroute not deterministic: %v vs %v", a.Up, b.Up)
		}
	}
}

func TestRerouteUnreachable(t *testing.T) {
	tp := xgft.MustNew(2, []int{4, 4}, []int{1, 4})
	v := xgft.NewView(tp)
	// Cut every up-link of leaf switch 0: leaves 0-3 cannot reach any
	// other leaf switch.
	for p := 0; p < 4; p++ {
		v.FailLink(1, 0, p)
	}
	r := NewDModK(tp).Route(0, 4)
	nr, ok := RerouteAvoiding(v, r)
	if ok {
		t.Fatalf("severed pair reported reachable via %v", nr)
	}
	if nr.Up != nil || nr.Src != 0 || nr.Dst != 4 {
		t.Fatalf("unreachable sentinel malformed: %+v", nr)
	}
	// Pairs under the severed switch still route (NCA level 1).
	if _, ok := RerouteAvoiding(v, NewDModK(tp).Route(0, 1)); !ok {
		t.Fatalf("intra-switch pair reported unreachable")
	}
}

func TestPatchTable(t *testing.T) {
	tp := xgft.MustNew(2, []int{4, 4}, []int{1, 4})
	algo := NewDModK(tp)
	p := pattern.AllToAll(tp.Leaves(), 1)
	tbl, err := BuildTable(tp, algo, p)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy view: the table is shared, nothing is rerouted.
	v := xgft.NewView(tp)
	same, st, err := PatchTable(tbl, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rerouted != 0 || st.Unreachable != 0 {
		t.Fatalf("healthy patch rerouted: %+v", st)
	}
	if &same.Routes[0] != &tbl.Routes[0] {
		t.Fatalf("healthy patch copied the route slice")
	}

	v.FailLink(1, 2, 3)
	patched, st, err := PatchTable(tbl, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rerouted == 0 {
		t.Fatalf("failed link patched no routes: %+v", st)
	}
	if st.Unreachable != 0 {
		t.Fatalf("single link failure severed pairs: %+v", st)
	}
	if st.Examined != len(p.Flows) {
		t.Fatalf("examined %d of %d flows", st.Examined, len(p.Flows))
	}
	for i, r := range patched.Routes {
		if r.Src == r.Dst {
			continue
		}
		if !v.RouteOK(r) {
			t.Fatalf("patched route %d still failed: %v", i, r)
		}
		if !r.VerifyConnects(tp) {
			t.Fatalf("patched route %d does not connect: %v", i, r)
		}
	}
	// The input table is untouched: d-mod-k routes to destinations with
	// root digit 3 under switch 2 still use the failed wire.
	broken := 0
	for _, r := range tbl.Routes {
		if r.Src != r.Dst && !v.RouteOK(r) {
			broken++
		}
	}
	if broken != st.Rerouted {
		t.Fatalf("input table mutated: %d broken routes remain, %d were rerouted", broken, st.Rerouted)
	}
}

func TestPatchTableTopologyMismatch(t *testing.T) {
	tp := xgft.MustNew(2, []int{4, 4}, []int{1, 4})
	other := xgft.MustNew(2, []int{4, 4}, []int{1, 2})
	tbl, err := BuildTable(tp, NewDModK(tp), pattern.Shift(tp.Leaves(), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PatchTable(tbl, xgft.NewView(other)); err == nil {
		t.Fatalf("mismatched view accepted")
	}
}
