package core

import (
	"fmt"
	"sync"

	"repro/internal/xgft"
)

// relabelFamily implements the paper's §VIII proposal: a recursive,
// per-subtree balanced random relabeling of the guide digits. At
// switch level l the up-port is F(l, subtree)(digit), where F is an
// independent balanced random map [0, m) -> [0, w_{l+1}) drawn per
// (level, enclosing subtree): every port value receives either
// floor(m/w) or ceil(m/w) guide-digit values, so load on the NCAs is
// as even as the radices allow, while all flows guided by the same
// endpoint still share one path (concentrating endpoint contention
// exactly like S-mod-k / D-mod-k).
//
// Replacing F by the modulo function recovers S-mod-k / D-mod-k,
// which the paper notes become particular cases of the family.
type relabelFamily struct {
	topo      *xgft.Topology
	seed      uint64
	useSource bool
	name      string

	prodM []int // prodM[j] = m_1*...*m_j: leaf-digit place values

	mu   sync.RWMutex
	maps map[mapKey][]int32
}

type mapKey struct {
	level  int
	prefix int
}

// NewRandomNCAUp returns the paper's "Random NCA Up" (r-NCA-u)
// algorithm: the relabeled guide digits of the *source* steer the
// ascent, concentrating source-side endpoint contention on the way up
// while distributing responsibilities over the roots at random.
func NewRandomNCAUp(t *xgft.Topology, seed uint64) Algorithm {
	return newRelabelFamily(t, seed, true, "r-NCA-u")
}

// NewRandomNCADown returns "Random NCA Down" (r-NCA-d): the relabeled
// guide digits of the *destination* steer the route, concentrating
// destination-side endpoint contention on the way down.
func NewRandomNCADown(t *xgft.Topology, seed uint64) Algorithm {
	return newRelabelFamily(t, seed, false, "r-NCA-d")
}

func newRelabelFamily(t *xgft.Topology, seed uint64, useSource bool, name string) *relabelFamily {
	f := &relabelFamily{
		topo:      t,
		seed:      seed,
		useSource: useSource,
		name:      name,
		maps:      make(map[mapKey][]int32),
		prodM:     make([]int, t.Height()+1),
	}
	f.prodM[0] = 1
	for j := 0; j < t.Height(); j++ {
		f.prodM[j+1] = f.prodM[j] * t.M(j)
	}
	return f
}

func (f *relabelFamily) Name() string { return f.name }

// CacheKey marks relabeling-family routes as memoizable: the balanced
// maps are a deterministic stream of (seed, level, subtree), so name
// plus seed identifies the table. The unbalanced ablation inherits
// this method with its own name field, so the two never alias.
func (f *relabelFamily) CacheKey() string { return fmt.Sprintf("%s/%#x", f.name, f.seed) }

func (f *relabelFamily) Route(src, dst int) xgft.Route {
	l := f.topo.NCALevel(src, dst)
	r := xgft.Route{Src: src, Dst: dst}
	if l == 0 {
		return r
	}
	guide := src
	if !f.useSource {
		guide = dst
	}
	r.Up = make([]int, l)
	for lvl := 0; lvl < l; lvl++ {
		r.Up[lvl] = f.portAt(lvl, guide)
	}
	return r
}

// portAt evaluates the relabeled guide digit of the given leaf at a
// switch level: the balanced map of the leaf's enclosing subtree
// applied to the leaf's plain guide digit.
func (f *relabelFamily) portAt(lvl, guide int) int {
	j := guideDigit(lvl)
	digit := (guide / f.prodM[j]) % f.topo.M(j)
	prefix := guide / f.prodM[j+1]
	return int(f.balancedMap(lvl, prefix)[digit])
}

// balancedMap returns (building lazily) the balanced random map for a
// (switch level, enclosing subtree) context. Maps are generated from a
// deterministic stream keyed by (seed, level, prefix), so tables are
// reproducible and deep trees need no up-front O(prod m) work.
func (f *relabelFamily) balancedMap(lvl, prefix int) []int32 {
	key := mapKey{level: lvl, prefix: prefix}
	f.mu.RLock()
	m, ok := f.maps[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.maps[key]; ok {
		return m
	}
	m = makeBalancedMap(f.topo.M(guideDigit(lvl)), f.topo.W(lvl), mix(f.seed, uint64(lvl), uint64(prefix)))
	f.maps[key] = m
	return m
}

// makeBalancedMap draws a uniformly random balanced surjection-like
// map from [0,m) to [0,w): value v appears floor(m/w)+1 times if
// v < m mod w, else floor(m/w) times (or, when w > m, a random
// injection). The multiset of values is fixed; only the assignment to
// digits is shuffled (Fisher-Yates over the keyed splitmix64 stream).
func makeBalancedMap(m, w int, key uint64) []int32 {
	vals := make([]int32, m)
	if w >= m {
		// Injection: choose m distinct ports via a partial shuffle of
		// [0, w).
		ports := make([]int32, w)
		for i := range ports {
			ports[i] = int32(i)
		}
		state := key
		for i := 0; i < m; i++ {
			state = splitmix64(state)
			j := i + uniform(state, w-i)
			ports[i], ports[j] = ports[j], ports[i]
		}
		copy(vals, ports[:m])
		return vals
	}
	base := m / w
	extra := m % w
	// Randomize which ports receive the extra preimage, then which
	// digits map to which port; both matter for balancing load across
	// the roots of slimmed trees (Fig. 4b).
	order := make([]int32, w)
	for i := range order {
		order[i] = int32(i)
	}
	state := key
	for i := w - 1; i > 0; i-- {
		state = splitmix64(state)
		j := uniform(state, i+1)
		order[i], order[j] = order[j], order[i]
	}
	i := 0
	for rank, v := range order {
		reps := base
		if rank < extra {
			reps++
		}
		for r := 0; r < reps; r++ {
			vals[i] = v
			i++
		}
	}
	for i := m - 1; i > 0; i-- {
		state = splitmix64(state)
		j := uniform(state, i+1)
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

// RelabeledDigit exposes the relabeled guide digit for tests and
// analysis tools: the port the family would take at the given switch
// level for a leaf.
func RelabeledDigit(a Algorithm, lvl, leaf int) (int, bool) {
	switch f := a.(type) {
	case *relabelFamily:
		return f.portAt(lvl, leaf), true
	case *unbalancedFamily:
		return f.portAt(lvl, leaf), true
	default:
		return 0, false
	}
}

// unbalancedFamily is the ablation of the balanced-map design choice
// (§VIII: "if we give labels based solely on the children per level
// parameters and then try to use a modulo function ... we will create
// an unbalance"): each guide digit maps to an independent *uniform*
// random port instead of a balanced assignment. Endpoint contention
// is still concentrated (the map is a pure function of the endpoint),
// but root load is only balanced in expectation — the configuration
// the paper argues against. Used by ablation tests and benchmarks.
type unbalancedFamily struct {
	*relabelFamily
}

// NewUnbalancedNCAUp is r-NCA-u with the balanced maps replaced by
// uniform random maps — the ablation baseline for the paper's
// balancing argument.
func NewUnbalancedNCAUp(t *xgft.Topology, seed uint64) Algorithm {
	return &unbalancedFamily{newRelabelFamily(t, seed, true, "u-NCA-u")}
}

// NewUnbalancedNCADown is the destination-guided counterpart.
func NewUnbalancedNCADown(t *xgft.Topology, seed uint64) Algorithm {
	return &unbalancedFamily{newRelabelFamily(t, seed, false, "u-NCA-d")}
}

func (f *unbalancedFamily) Route(src, dst int) xgft.Route {
	l := f.topo.NCALevel(src, dst)
	r := xgft.Route{Src: src, Dst: dst}
	if l == 0 {
		return r
	}
	guide := src
	if !f.useSource {
		guide = dst
	}
	r.Up = make([]int, l)
	for lvl := 0; lvl < l; lvl++ {
		r.Up[lvl] = f.portAt(lvl, guide)
	}
	return r
}

// portAt draws the port as an independent uniform hash of
// (seed, level, subtree, digit) — same concentration, no balancing.
func (f *unbalancedFamily) portAt(lvl, guide int) int {
	j := guideDigit(lvl)
	digit := (guide / f.prodM[j]) % f.topo.M(j)
	prefix := guide / f.prodM[j+1]
	h := mix(f.seed, uint64(lvl), uint64(prefix), uint64(digit))
	return uniform(h, f.topo.W(lvl))
}
