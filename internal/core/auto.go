package core

import (
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// AutoModK implements the heuristic the paper sketches in §VII-C for
// non-symmetric patterns: "choose S-mod-k for a many-destinations
// dominated pattern, and D-mod-k for a many-sources dominated
// pattern". The intuition follows the duality analysis: the scheme
// should concentrate contention at the endpoint side that dominates,
// so the other side's channels stay conflict-free.
//
// Asymmetry is measured on the pattern the routing is provisioned
// for: if the mean out-degree of active sources exceeds the mean
// in-degree of active destinations (fan-out dominated, every source
// talks to many destinations), S-mod-k is chosen, because each
// source's many flows then share one ascent. Conversely a fan-in
// dominated pattern picks D-mod-k. Ties (all permutations, all
// symmetric patterns) default to D-mod-k, the better-studied scheme.
func AutoModK(t *xgft.Topology, p *pattern.Pattern) Algorithm {
	if fanOutDominated(p) {
		return NewSModK(t)
	}
	return NewDModK(t)
}

// fanOutDominated reports whether active sources talk to more
// destinations than active destinations hear sources.
func fanOutDominated(p *pattern.Pattern) bool {
	out := p.OutDegree()
	in := p.InDegree()
	var outSum, outActive, inSum, inActive int
	for _, d := range out {
		if d > 0 {
			outSum += d
			outActive++
		}
	}
	for _, d := range in {
		if d > 0 {
			inSum += d
			inActive++
		}
	}
	if outActive == 0 || inActive == 0 {
		return false
	}
	// Mean degrees share the numerator (total flows), so the
	// comparison reduces to which side has FEWER active endpoints:
	// fewer active sources means each active source fans out more.
	return outActive < inActive
}
