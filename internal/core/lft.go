package core

import (
	"fmt"

	"repro/internal/xgft"
)

// Destination-based forwarding. InfiniBand switches (the deployment
// context of the D-mod-k literature the paper builds on) forward by
// destination LID alone: each switch holds one output port per
// destination. A routing scheme is implementable as such linear
// forwarding tables (LFTs) exactly when its port choice at every
// switch is a function of the destination only — true for D-mod-k and
// r-NCA-d, false for S-mod-k, r-NCA-u and per-pair Random. CompileLFT
// performs the compilation and detects violations, making the
// distinction the paper draws between the two scheme families
// machine-checkable.

// LFT holds per-switch destination-indexed forwarding: for an
// ascending packet at switch (level, index), Up[level][index][dst]
// is the up-port; descending ports need no table (the label digits
// determine them).
type LFT struct {
	Topo *xgft.Topology
	// Up[l] has NodesAt(l) rows of Leaves() ports; -1 marks
	// destinations never routed through that switch.
	Up [][][]int8
}

// CompileLFT builds destination-based tables by probing the algorithm
// over all (source, destination) pairs. If two sources disagree on
// the port a shared switch should use for one destination, the
// algorithm is not destination-based and an error identifying the
// conflict is returned.
func CompileLFT(t *xgft.Topology, algo Algorithm) (*LFT, error) {
	if t.W(0) > 127 {
		return nil, fmt.Errorf("core: LFT port width exceeds int8")
	}
	lft := &LFT{Topo: t, Up: make([][][]int8, t.Height())}
	for l := 0; l < t.Height(); l++ {
		lft.Up[l] = make([][]int8, t.NodesAt(l))
		for i := range lft.Up[l] {
			row := make([]int8, t.Leaves())
			for d := range row {
				row[d] = -1
			}
			lft.Up[l][i] = row
		}
	}
	n := t.Leaves()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r := algo.Route(s, d)
			node := s
			for l, p := range r.Up {
				prev := lft.Up[l][node][d]
				if prev >= 0 && int(prev) != p {
					return nil, fmt.Errorf("core: %s is not destination-based: switch (%d,%d) forwards destination %d via ports %d and %d",
						algo.Name(), l, node, d, prev, p)
				}
				lft.Up[l][node][d] = int8(p)
				node = t.Parent(l, node, p)
			}
		}
	}
	return lft, nil
}

// Route implements Algorithm by walking the compiled tables,
// so a compiled LFT can drive simulations directly.
func (f *LFT) Route(src, dst int) xgft.Route {
	t := f.Topo
	l := t.NCALevel(src, dst)
	r := xgft.Route{Src: src, Dst: dst}
	if l == 0 {
		return r
	}
	r.Up = make([]int, l)
	node := src
	for lvl := 0; lvl < l; lvl++ {
		p := f.Up[lvl][node][dst]
		if p < 0 {
			// Unpopulated entry (pair never probed): fall back to the
			// destination's own digits, the d-mod-k default every
			// fabric ships with.
			lab := t.Label(0, dst)
			p = int8(lab[guideDigit(lvl)] % t.W(lvl))
		}
		r.Up[lvl] = int(p)
		node = t.Parent(lvl, node, int(p))
	}
	return r
}

// Name implements Algorithm.
func (f *LFT) Name() string { return "lft" }

// IsDestinationBased reports whether the algorithm can be compiled to
// destination-indexed forwarding tables on the topology.
func IsDestinationBased(t *xgft.Topology, algo Algorithm) bool {
	_, err := CompileLFT(t, algo)
	return err == nil
}
