package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func cacheTestTopo(t *testing.T) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestTableCacheHitsAndEquivalence(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(16)

	algo := NewRandomNCAUp(tp, 7)
	tbl1, err := c.Build(tp, algo, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh equal-seed instance on an equal-spec topology must hit.
	tp2, _ := xgft.NewSlimmedTree(16, 16, 10)
	tbl2, err := c.Build(tp2, NewRandomNCAUp(tp2, 7), p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if tbl1 != tbl2 {
		t.Error("equal (topo, algo, pattern) triple did not hit the cache")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// Cached routes must equal a fresh computation.
	fresh, err := BuildTable(tp, NewRandomNCAUp(tp, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl1.Routes, fresh.Routes) {
		t.Error("cached routes differ from fresh BuildTable")
	}
}

func TestTableCacheKeysSeparate(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(64)
	distinct := []Algorithm{
		NewSModK(tp),
		NewDModK(tp),
		NewRandom(tp, 1),
		NewRandom(tp, 2),
		NewRandomNCAUp(tp, 1),
		NewRandomNCADown(tp, 1),
		NewUnbalancedNCAUp(tp, 1),
	}
	for _, algo := range distinct {
		if _, err := c.Build(tp, algo, p); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != uint64(len(distinct)) {
		t.Errorf("distinct algorithms aliased: %d hits / %d misses", hits, misses)
	}
	// Different w2 must not alias either.
	slim, _ := xgft.NewSlimmedTree(16, 16, 9)
	if _, err := c.Build(slim, NewSModK(slim), p); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Error("different topology spec hit the cache")
	}
}

func TestTableCacheCapacityAndPassThrough(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(2)
	for seed := uint64(1); seed <= 4; seed++ {
		if _, err := c.Build(tp, NewRandom(tp, seed), p); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("capacity 2 cache retains %d entries", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("purged cache retains %d entries", c.Len())
	}

	// Pass-through and nil caches never store but still build.
	for _, pc := range []*TableCache{NewTableCache(0), nil} {
		tbl, err := pc.Build(tp, NewSModK(tp), p)
		if err != nil || tbl == nil {
			t.Fatalf("pass-through build failed: %v", err)
		}
		if pc.Len() != 0 {
			t.Error("pass-through cache stored an entry")
		}
	}

	// Non-memoizable algorithms (no CacheKey) bypass storage.
	c2 := NewTableCache(8)
	lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
	if err != nil {
		t.Skipf("levelwise unavailable on this pattern: %v", err)
	}
	if _, err := c2.Build(tp, lw, p); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Error("non-memoizable algorithm was cached")
	}
}

// TestTableCacheConcurrent is the race-mode test of the cache: many
// goroutines build overlapping keys; run with -race to check the
// synchronization (satellite of the parallel-engine PR).
func TestTableCacheConcurrent(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(32)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := uint64(i%4) + 1 // overlapping keys across goroutines
				tbl, err := c.Build(tp, NewRandomNCAUp(tp, seed), p)
				if err != nil {
					errs <- err
					return
				}
				if len(tbl.Routes) != len(p.Flows) {
					errs <- fmt.Errorf("goroutine %d: truncated table", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRelabelFamilyConcurrentRoutes exercises the lazily-built
// balanced maps from many goroutines sharing one algorithm instance —
// the per-worker safety the parallel sweep engine relies on when a
// cached table's algorithm is reused. Run with -race.
func TestRelabelFamilyConcurrentRoutes(t *testing.T) {
	tp := cacheTestTopo(t)
	algo := NewRandomNCAUp(tp, 3)
	n := tp.Leaves()
	want := algo.Route(1, 200)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := (g*131 + i) % n
				d := (g*17 + i*7 + 1) % n
				_ = algo.Route(s, d)
			}
		}(g)
	}
	wg.Wait()
	if got := algo.Route(1, 200); !reflect.DeepEqual(got, want) {
		t.Errorf("route changed under concurrency: %v -> %v", want, got)
	}
}

// countingAlgo wraps an algorithm with a route-call counter so tests
// can observe how many times a table was actually computed.
type countingAlgo struct {
	Algorithm
	key   string
	calls *atomic.Int64
}

func (a countingAlgo) CacheKey() string { return a.key }

func (a countingAlgo) Route(s, d int) xgft.Route {
	a.calls.Add(1)
	return a.Algorithm.Route(s, d)
}

// TestTableCacheCoalesces checks the singleflight behaviour: many
// goroutines building the same cold key compute the table exactly
// once — the rest wait for the in-flight build instead of duplicating
// it. Run with -race.
func TestTableCacheCoalesces(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(8)
	var calls atomic.Int64
	algo := countingAlgo{Algorithm: NewDModK(tp), key: "counting", calls: &calls}

	const workers = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	tables := make([]*Table, workers)
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			tables[g], errs[g] = c.Build(tp, algo, p)
		}(g)
	}
	start.Done()
	wg.Wait()
	for g := 0; g < workers; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if tables[g] != tables[0] {
			t.Fatalf("goroutine %d got a different table instance", g)
		}
	}
	if got := calls.Load(); got != int64(len(p.Flows)) {
		t.Fatalf("table computed %.1f times, want exactly once", float64(got)/float64(len(p.Flows)))
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits+c.Coalesced() != workers-1 {
		t.Fatalf("hits (%d) + coalesced (%d) = %d, want %d", hits, c.Coalesced(), hits+c.Coalesced(), workers-1)
	}
}

// panicOnceAlgo panics on its first Route call and behaves normally
// afterwards, modelling a build blowing up mid-flight.
type panicOnceAlgo struct {
	Algorithm
	key   string
	calls *atomic.Int64
}

func (a panicOnceAlgo) CacheKey() string { return a.key }

func (a panicOnceAlgo) Route(s, d int) xgft.Route {
	if a.calls.Add(1) == 1 {
		panic("boom")
	}
	return a.Algorithm.Route(s, d)
}

// TestTableCacheBuildPanicUnwedges checks that a panicking build does
// not leave its key wedged: the panic propagates to the caller, and a
// retry of the same key computes instead of hanging on a dead
// in-flight entry.
func TestTableCacheBuildPanicUnwedges(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.Shift(tp.Leaves(), 1, 1)
	c := NewTableCache(8)
	var calls atomic.Int64
	algo := panicOnceAlgo{Algorithm: NewDModK(tp), key: "panic-once", calls: &calls}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate to the building caller")
			}
		}()
		c.Build(tp, algo, p)
	}()

	done := make(chan error, 1)
	go func() {
		tbl, err := c.Build(tp, algo, p)
		if err == nil && tbl == nil {
			err = fmt.Errorf("nil table with nil error")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry after panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry after panic hung on the wedged in-flight entry")
	}
}
