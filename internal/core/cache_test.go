package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func cacheTestTopo(t *testing.T) *xgft.Topology {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestTableCacheHitsAndEquivalence(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(16)

	algo := NewRandomNCAUp(tp, 7)
	tbl1, err := c.Build(tp, algo, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh equal-seed instance on an equal-spec topology must hit.
	tp2, _ := xgft.NewSlimmedTree(16, 16, 10)
	tbl2, err := c.Build(tp2, NewRandomNCAUp(tp2, 7), p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if tbl1 != tbl2 {
		t.Error("equal (topo, algo, pattern) triple did not hit the cache")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// Cached routes must equal a fresh computation.
	fresh, err := BuildTable(tp, NewRandomNCAUp(tp, 7), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl1.Routes, fresh.Routes) {
		t.Error("cached routes differ from fresh BuildTable")
	}
}

func TestTableCacheKeysSeparate(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(64)
	distinct := []Algorithm{
		NewSModK(tp),
		NewDModK(tp),
		NewRandom(tp, 1),
		NewRandom(tp, 2),
		NewRandomNCAUp(tp, 1),
		NewRandomNCADown(tp, 1),
		NewUnbalancedNCAUp(tp, 1),
	}
	for _, algo := range distinct {
		if _, err := c.Build(tp, algo, p); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != uint64(len(distinct)) {
		t.Errorf("distinct algorithms aliased: %d hits / %d misses", hits, misses)
	}
	// Different w2 must not alias either.
	slim, _ := xgft.NewSlimmedTree(16, 16, 9)
	if _, err := c.Build(slim, NewSModK(slim), p); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Error("different topology spec hit the cache")
	}
}

func TestTableCacheCapacityAndPassThrough(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(2)
	for seed := uint64(1); seed <= 4; seed++ {
		if _, err := c.Build(tp, NewRandom(tp, seed), p); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("capacity 2 cache retains %d entries", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("purged cache retains %d entries", c.Len())
	}

	// Pass-through and nil caches never store but still build.
	for _, pc := range []*TableCache{NewTableCache(0), nil} {
		tbl, err := pc.Build(tp, NewSModK(tp), p)
		if err != nil || tbl == nil {
			t.Fatalf("pass-through build failed: %v", err)
		}
		if pc.Len() != 0 {
			t.Error("pass-through cache stored an entry")
		}
	}

	// Non-memoizable algorithms (no CacheKey) bypass storage.
	c2 := NewTableCache(8)
	lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
	if err != nil {
		t.Skipf("levelwise unavailable on this pattern: %v", err)
	}
	if _, err := c2.Build(tp, lw, p); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Error("non-memoizable algorithm was cached")
	}
}

// TestTableCacheConcurrent is the race-mode test of the cache: many
// goroutines build overlapping keys; run with -race to check the
// synchronization (satellite of the parallel-engine PR).
func TestTableCacheConcurrent(t *testing.T) {
	tp := cacheTestTopo(t)
	p := pattern.WRF256()
	c := NewTableCache(32)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := uint64(i%4) + 1 // overlapping keys across goroutines
				tbl, err := c.Build(tp, NewRandomNCAUp(tp, seed), p)
				if err != nil {
					errs <- err
					return
				}
				if len(tbl.Routes) != len(p.Flows) {
					errs <- fmt.Errorf("goroutine %d: truncated table", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRelabelFamilyConcurrentRoutes exercises the lazily-built
// balanced maps from many goroutines sharing one algorithm instance —
// the per-worker safety the parallel sweep engine relies on when a
// cached table's algorithm is reused. Run with -race.
func TestRelabelFamilyConcurrentRoutes(t *testing.T) {
	tp := cacheTestTopo(t)
	algo := NewRandomNCAUp(tp, 3)
	n := tp.Leaves()
	want := algo.Route(1, 200)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := (g*131 + i) % n
				d := (g*17 + i*7 + 1) % n
				_ = algo.Route(s, d)
			}
		}(g)
	}
	wg.Wait()
	if got := algo.Route(1, 200); !reflect.DeepEqual(got, want) {
		t.Errorf("route changed under concurrency: %v -> %v", want, got)
	}
}
