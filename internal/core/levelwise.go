package core

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

// LevelWise is the pattern-aware permutation scheduler of Ding,
// Hoare, Jones & Melhem ("Level-wise scheduling algorithm for fat
// tree interconnection networks", SC'06 — the paper's ref. [15],
// cited as the efficient algorithm for known permutations on k-ary
// n-trees). Ascent ports are assigned level by level: at level l the
// flows still climbing form a bipartite multigraph between their
// current up-side and down-side ancestors; a König edge coloring with
// w_{l+1} colors assigns the ports so that no two flows share an up
// or down channel — a constructive proof of the rearrangeability the
// paper invokes in §II.
//
// On full k-ary n-trees any (partial) permutation is routed with zero
// network contention. On slimmed trees, where conflicts are
// unavoidable, the balanced folding of ColorBipartiteBalanced spreads
// them evenly (ceil(D/w) flows per channel), which is what §VII-A
// demands of a good slimmed-tree schedule.
type LevelWise struct {
	topo     *xgft.Topology
	fallback Algorithm
	routes   map[[2]int][]int
}

// NewLevelWise schedules every phase of the pattern sequence
// independently (phases contend only with themselves). Non-permutation
// phases are legal: degrees just exceed one and the balanced coloring
// spreads them. Pairs outside the phases fall back to D-mod-k.
func NewLevelWise(t *xgft.Topology, phases []*pattern.Pattern) (*LevelWise, error) {
	lw := &LevelWise{
		topo:     t,
		fallback: NewDModK(t),
		routes:   make(map[[2]int][]int),
	}
	for pi, ph := range phases {
		if err := lw.schedulePhase(ph); err != nil {
			return nil, fmt.Errorf("core: level-wise phase %d: %w", pi, err)
		}
	}
	return lw, nil
}

// Name implements Algorithm.
func (lw *LevelWise) Name() string { return "level-wise" }

// Route implements Algorithm.
func (lw *LevelWise) Route(src, dst int) xgft.Route {
	if up, ok := lw.routes[[2]int{src, dst}]; ok {
		return xgft.Route{Src: src, Dst: dst, Up: append([]int(nil), up...)}
	}
	return lw.fallback.Route(src, dst)
}

type lwFlow struct {
	src, dst int
	nca      int
	up       []int
}

func (lw *LevelWise) schedulePhase(ph *pattern.Pattern) error {
	t := lw.topo
	var flows []*lwFlow
	seen := make(map[[2]int]bool)
	for _, f := range ph.Flows {
		if f.Src == f.Dst {
			continue
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, done := lw.routes[key]; done {
			continue // fixed by an earlier phase
		}
		l := t.NCALevel(f.Src, f.Dst)
		flows = append(flows, &lwFlow{src: f.Src, dst: f.Dst, nca: l, up: make([]int, l)})
	}
	// Level 0: the leaf's w1 ports. Every flow from one leaf shares
	// the single adapter anyway; use port 0 balanced by flow count
	// when w1 > 1 (the paper's trees all have w1 = 1).
	if t.W(0) > 1 {
		perLeaf := make(map[int]int)
		for _, f := range flows {
			f.up[0] = perLeaf[f.src] % t.W(0)
			perLeaf[f.src]++
		}
	}
	// Levels 1..h-1: edge-color the climbing flows.
	for l := 1; l < t.Height(); l++ {
		var climbing []*lwFlow
		var edges [][2]int
		for _, f := range flows {
			if f.nca <= l {
				continue
			}
			upAnc := t.NCAIndex(f.src, f.up[:l])
			downAnc := t.NCAIndex(f.dst, f.up[:l])
			climbing = append(climbing, f)
			edges = append(edges, [2]int{upAnc, downAnc})
		}
		if len(climbing) == 0 {
			break
		}
		nodes := t.NodesAt(l)
		colors, err := ColorBipartiteBalanced(nodes, nodes, t.W(l), edges)
		if err != nil {
			return err
		}
		for i, f := range climbing {
			f.up[l] = colors[i]
		}
	}
	for _, f := range flows {
		r := xgft.Route{Src: f.src, Dst: f.dst, Up: f.up}
		if err := r.Validate(t); err != nil {
			return err
		}
		lw.routes[[2]int{f.src, f.dst}] = f.up
	}
	return nil
}

// MaxGroups reports the maximum per-channel endpoint-group contention
// of the scheduled routes for a phase (1 = conflict-free), mirroring
// Colored.MaxGroups for comparisons.
func (lw *LevelWise) MaxGroups(ph *pattern.Pattern) int {
	st := newPhaseState(lw.topo)
	for _, f := range ph.Flows {
		if f.Src == f.Dst {
			continue
		}
		st.apply(f, lw.Route(f.Src, f.Dst).Up, 1)
	}
	max := 0
	for _, g := range st.upGroups {
		if g > max {
			max = g
		}
	}
	for _, g := range st.downGroups {
		if g > max {
			max = g
		}
	}
	return max
}
