package core

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Colored is the pattern-aware baseline of the paper's evaluation
// (the "Colored" scheme of the authors' ICS'09 work), reproduced here
// as a greedy NCA assignment with hill-climbing refinement (see
// DESIGN.md, substitution #4). It is *not* oblivious: it knows the
// communication phases in advance and assigns NCAs so that groups of
// flows that are not already serialized at an endpoint avoid sharing
// channels. The paper uses it as the best-achievable envelope for a
// network of the same cost.
type Colored struct {
	topo     *xgft.Topology
	fallback Algorithm
	routes   map[[2]int][]int
	cacheKey string
}

// ColoredConfig tunes the optimizer.
type ColoredConfig struct {
	// MaxPasses bounds local-search sweeps per phase (default 8).
	MaxPasses int
	// MaxCandidates bounds the number of ascent vectors tried per
	// flow (default 4096); beyond it, candidates are the mod-k
	// defaults plus a deterministic pseudo-random sample.
	MaxCandidates int
	// Seed feeds candidate sampling for very wide trees.
	Seed uint64
}

func (c ColoredConfig) withDefaults() ColoredConfig {
	if c.MaxPasses <= 0 {
		c.MaxPasses = 8
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 4096
	}
	return c
}

// NewColored optimizes routes for the given communication phases
// (each phase contends only with itself, matching the paper's
// per-phase extraction of connectivity matrices). Pairs appearing in
// several phases keep their first assignment; pairs outside every
// phase fall back to D-mod-k.
func NewColored(t *xgft.Topology, phases []*pattern.Pattern, cfg ColoredConfig) *Colored {
	cfg = cfg.withDefaults()
	c := &Colored{
		topo:     t,
		fallback: NewDModK(t),
		routes:   make(map[[2]int][]int),
	}
	for _, ph := range phases {
		c.optimizePhase(ph, cfg)
	}
	id := mix(uint64(cfg.MaxPasses), uint64(cfg.MaxCandidates), cfg.Seed)
	var totalBytes int64
	for _, ph := range phases {
		id = mix(id, ph.Fingerprint())
		totalBytes += ph.TotalBytes()
	}
	// Cheap exact invariants (phase count, byte total) ride along with
	// the hash so a 64-bit collision alone cannot alias two keys,
	// matching the tableKey design.
	c.cacheKey = fmt.Sprintf("colored/%d/%#x/%#x", len(phases), totalBytes, id)
	return c
}

// Name implements Algorithm.
func (c *Colored) Name() string { return "colored" }

// CacheKey marks Colored routes as memoizable: the optimizer is
// deterministic in (topology, input phases, config), all of which the
// key encodes.
func (c *Colored) CacheKey() string { return c.cacheKey }

// Route implements Algorithm.
func (c *Colored) Route(src, dst int) xgft.Route {
	if up, ok := c.routes[[2]int{src, dst}]; ok {
		return xgft.Route{Src: src, Dst: dst, Up: append([]int(nil), up...)}
	}
	return c.fallback.Route(src, dst)
}

// phaseState tracks, per channel and direction, how many flows of
// each endpoint group currently use it, plus the number of distinct
// groups. Potential = sum over channels of groups^2; distinct groups
// on one channel serialize each other (network contention), while
// flows within one group are already serialized at their endpoint and
// cost nothing extra (§IV).
type phaseState struct {
	topo       *xgft.Topology
	upCounts   []map[int]int // by source
	downCounts []map[int]int // by destination
	upGroups   []int
	downGroups []int
	potential  int64
}

func newPhaseState(t *xgft.Topology) *phaseState {
	n := t.TotalChannels()
	return &phaseState{
		topo:       t,
		upCounts:   make([]map[int]int, n),
		downCounts: make([]map[int]int, n),
		upGroups:   make([]int, n),
		downGroups: make([]int, n),
	}
}

func (st *phaseState) apply(f pattern.Flow, up []int, delta int) {
	r := xgft.Route{Src: f.Src, Dst: f.Dst, Up: up}
	r.Walk(st.topo, func(_, _, _, ch int, isUp bool) {
		counts, groups := st.downCounts, st.downGroups
		key := f.Dst
		if isUp {
			counts, groups = st.upCounts, st.upGroups
			key = f.Src
		}
		if counts[ch] == nil {
			counts[ch] = make(map[int]int)
		}
		g := int64(groups[ch])
		counts[ch][key] += delta
		switch counts[ch][key] {
		case 0:
			if delta < 0 {
				groups[ch]--
				st.potential += (g-1)*(g-1) - g*g
			}
		case delta: // 0 -> 1 when adding
			if delta > 0 {
				groups[ch]++
				st.potential += (g+1)*(g+1) - g*g
			}
		}
	})
}

// cost evaluates the potential delta of adding the flow with the given
// ascent without mutating state.
func (st *phaseState) cost(f pattern.Flow, up []int) int64 {
	var delta int64
	r := xgft.Route{Src: f.Src, Dst: f.Dst, Up: up}
	r.Walk(st.topo, func(_, _, _, ch int, isUp bool) {
		counts, groups := st.downCounts, st.downGroups
		key := f.Dst
		if isUp {
			counts, groups = st.upCounts, st.upGroups
			key = f.Src
		}
		if counts[ch][key] == 0 {
			g := int64(groups[ch])
			delta += (g+1)*(g+1) - g*g
		}
	})
	return delta
}

func (c *Colored) optimizePhase(ph *pattern.Pattern, cfg ColoredConfig) {
	type job struct {
		flow pattern.Flow
		cand [][]int
		pick int
	}
	var jobs []*job
	seen := make(map[[2]int]bool)
	st := newPhaseState(c.topo)
	for _, f := range ph.Flows {
		if f.Src == f.Dst {
			continue
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		if prior, ok := c.routes[key]; ok {
			// Fixed by an earlier phase: count its load, don't move it.
			st.apply(f, prior, 1)
			continue
		}
		jobs = append(jobs, &job{flow: f, cand: c.candidates(f, cfg), pick: -1})
	}
	// Deterministic order: heaviest flows first, then by pair.
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].flow.Bytes != jobs[j].flow.Bytes {
			return jobs[i].flow.Bytes > jobs[j].flow.Bytes
		}
		if jobs[i].flow.Src != jobs[j].flow.Src {
			return jobs[i].flow.Src < jobs[j].flow.Src
		}
		return jobs[i].flow.Dst < jobs[j].flow.Dst
	})
	// Greedy construction.
	for _, jb := range jobs {
		best, bestCost := 0, int64(1)<<62
		for i, cand := range jb.cand {
			if cost := st.cost(jb.flow, cand); cost < bestCost {
				best, bestCost = i, cost
			}
		}
		jb.pick = best
		st.apply(jb.flow, jb.cand[best], 1)
	}
	// Hill-climbing sweeps.
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		improved := false
		for _, jb := range jobs {
			st.apply(jb.flow, jb.cand[jb.pick], -1)
			best, bestCost := jb.pick, st.cost(jb.flow, jb.cand[jb.pick])
			for i, cand := range jb.cand {
				if i == jb.pick {
					continue
				}
				if cost := st.cost(jb.flow, cand); cost < bestCost {
					best, bestCost = i, cost
				}
			}
			if best != jb.pick {
				improved = true
				jb.pick = best
			}
			st.apply(jb.flow, jb.cand[jb.pick], 1)
		}
		if !improved {
			break
		}
	}
	for _, jb := range jobs {
		c.routes[[2]int{jb.flow.Src, jb.flow.Dst}] = jb.cand[jb.pick]
	}
}

// candidates enumerates ascent vectors for a flow: the full cartesian
// product of up-port choices when small, otherwise the two mod-k
// defaults plus a deterministic random sample.
func (c *Colored) candidates(f pattern.Flow, cfg ColoredConfig) [][]int {
	l := c.topo.NCALevel(f.Src, f.Dst)
	total := 1
	for lvl := 0; lvl < l; lvl++ {
		total *= c.topo.W(lvl)
		if total > cfg.MaxCandidates {
			break
		}
	}
	if total <= cfg.MaxCandidates {
		out := make([][]int, 0, total)
		cur := make([]int, l)
		for {
			out = append(out, append([]int(nil), cur...))
			lvl := 0
			for ; lvl < l; lvl++ {
				cur[lvl]++
				if cur[lvl] < c.topo.W(lvl) {
					break
				}
				cur[lvl] = 0
			}
			if lvl == l {
				break
			}
		}
		return out
	}
	out := [][]int{
		c.fallback.Route(f.Src, f.Dst).Up,
		NewSModK(c.topo).Route(f.Src, f.Dst).Up,
	}
	for k := 0; len(out) < cfg.MaxCandidates; k++ {
		cand := make([]int, l)
		for lvl := 0; lvl < l; lvl++ {
			cand[lvl] = uniform(mix(cfg.Seed, uint64(f.Src), uint64(f.Dst), uint64(k), uint64(lvl)), c.topo.W(lvl))
		}
		out = append(out, cand)
	}
	return out
}

// MaxGroups reports the maximum per-channel group contention of the
// routes Colored assigned for a phase — used by tests to verify that
// permutations on full trees are routed conflict-free.
func (c *Colored) MaxGroups(ph *pattern.Pattern) int {
	st := newPhaseState(c.topo)
	for _, f := range ph.Flows {
		if f.Src == f.Dst {
			continue
		}
		st.apply(f, c.Route(f.Src, f.Dst).Up, 1)
	}
	max := 0
	for _, g := range st.upGroups {
		if g > max {
			max = g
		}
	}
	for _, g := range st.downGroups {
		if g > max {
			max = g
		}
	}
	return max
}
