package core

import "testing"

func TestUnbalancedFamilyConcentratesButDoesNotBalance(t *testing.T) {
	tp := paperTree(t, 10)
	algo := NewUnbalancedNCAUp(tp, 5)
	if algo.Name() != "u-NCA-u" {
		t.Errorf("name = %s", algo.Name())
	}
	// Concentration: one ascent per source.
	for s := 0; s < 64; s += 7 {
		var ref []int
		for d := 0; d < tp.Leaves(); d += 13 {
			if tp.NCALevel(s, d) != 2 {
				continue
			}
			r := algo.Route(s, d)
			if err := r.Validate(tp); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = r.Up
				continue
			}
			for i := range ref {
				if r.Up[i] != ref[i] {
					t.Fatalf("source %d has two ascents", s)
				}
			}
		}
	}
}

func TestBalancedBeatsUnbalancedWithinSwitch(t *testing.T) {
	// The balancing property the paper argues for: within one switch,
	// the balanced family never puts more than ceil(m/w) sources on
	// one port; the uniform family regularly does. Checked over many
	// seeds so the statement is statistical for the unbalanced one.
	tp := paperTree(t, 10)
	worstBalanced, worstUnbalanced := 0, 0
	for seed := uint64(1); seed <= 30; seed++ {
		bal := NewRandomNCAUp(tp, seed)
		unbal := NewUnbalancedNCAUp(tp, seed)
		for sw := 0; sw < 16; sw++ {
			bCount := make([]int, 10)
			uCount := make([]int, 10)
			for leaf := sw * 16; leaf < (sw+1)*16; leaf++ {
				pb, _ := RelabeledDigit(bal, 1, leaf)
				pu, _ := RelabeledDigit(unbal, 1, leaf)
				bCount[pb]++
				uCount[pu]++
			}
			for _, c := range bCount {
				if c > worstBalanced {
					worstBalanced = c
				}
			}
			for _, c := range uCount {
				if c > worstUnbalanced {
					worstUnbalanced = c
				}
			}
		}
	}
	if worstBalanced != 2 { // ceil(16/10)
		t.Errorf("balanced worst-case port load = %d, want 2", worstBalanced)
	}
	if worstUnbalanced <= worstBalanced {
		t.Errorf("unbalanced worst %d not above balanced %d: ablation shows no effect", worstUnbalanced, worstBalanced)
	}
}

func TestUnbalancedCensusHasWiderSpread(t *testing.T) {
	// Fig. 4b view of the ablation: the all-pairs census of the
	// unbalanced variant spreads further from the mean than the
	// balanced one (averaged over seeds).
	tp := paperTree(t, 10)
	spread := func(mk func(seed uint64) Algorithm) int {
		total := 0
		for seed := uint64(1); seed <= 10; seed++ {
			census := AllPairsNCACensus(tp, mk(seed))
			min, max := 1<<31, 0
			for _, c := range census {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			total += max - min
		}
		return total
	}
	balanced := spread(func(s uint64) Algorithm { return NewRandomNCAUp(tp, s) })
	unbalanced := spread(func(s uint64) Algorithm { return NewUnbalancedNCAUp(tp, s) })
	if unbalanced <= balanced {
		t.Errorf("unbalanced census spread %d not wider than balanced %d", unbalanced, balanced)
	}
}

func TestUnbalancedDownVariant(t *testing.T) {
	tp := paperTree(t, 10)
	algo := NewUnbalancedNCADown(tp, 3)
	if algo.Name() != "u-NCA-d" {
		t.Errorf("name = %s", algo.Name())
	}
	for d := 0; d < 32; d += 5 {
		refRoot := -1
		for s := 0; s < tp.Leaves(); s += 17 {
			if tp.NCALevel(s, d) != 2 {
				continue
			}
			r := algo.Route(s, d)
			_, root := r.NCA(tp)
			if refRoot == -1 {
				refRoot = root
			} else if root != refRoot {
				t.Fatalf("destination %d uses two roots", d)
			}
		}
	}
}
