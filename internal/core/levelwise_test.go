package core

import (
	"repro/internal/hashutil"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func TestColorBipartiteProper(t *testing.T) {
	// A 3-regular bipartite multigraph colors with 3 colors.
	edges := [][2]int{
		{0, 0}, {0, 1}, {0, 2},
		{1, 0}, {1, 1}, {1, 2},
		{2, 0}, {2, 1}, {2, 2},
	}
	cols, err := ColorBipartite(3, 3, 3, edges)
	if err != nil {
		t.Fatal(err)
	}
	assertProperColoring(t, 3, 3, edges, cols, 1)
}

func TestColorBipartiteParallelEdges(t *testing.T) {
	// Multigraph with parallel edges: two (0,0) edges need two colors.
	edges := [][2]int{{0, 0}, {0, 0}}
	cols, err := ColorBipartite(1, 1, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0] == cols[1] {
		t.Errorf("parallel edges share color %d", cols[0])
	}
}

func TestColorBipartiteDegreeOverflow(t *testing.T) {
	edges := [][2]int{{0, 0}, {0, 1}, {0, 2}}
	if _, err := ColorBipartite(1, 3, 2, edges); err == nil {
		t.Error("degree 3 with 2 colors accepted")
	}
	if _, err := ColorBipartite(1, 1, 0, nil); err == nil {
		t.Error("zero colors accepted")
	}
	if _, err := ColorBipartite(1, 1, 1, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestColorBipartiteBalancedFolding(t *testing.T) {
	// Degree 4 folded into 2 colors: every vertex sees each color at
	// most ceil(4/2) = 2 times.
	var edges [][2]int
	for l := 0; l < 4; l++ {
		for r := 0; r < 4; r++ {
			edges = append(edges, [2]int{l, r})
		}
	}
	cols, err := ColorBipartiteBalanced(4, 4, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	assertProperColoring(t, 4, 4, edges, cols, 2)
}

func TestColorBipartiteBalancedEmpty(t *testing.T) {
	cols, err := ColorBipartiteBalanced(2, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 {
		t.Errorf("colors = %v", cols)
	}
	if _, err := ColorBipartiteBalanced(1, 1, 1, [][2]int{{0, 9}}); err == nil {
		t.Error("bad endpoint accepted")
	}
	if _, err := ColorBipartiteBalanced(1, 1, 0, nil); err == nil {
		t.Error("zero colors accepted")
	}
}

// assertProperColoring checks every vertex sees each color at most
// `load` times.
func assertProperColoring(t *testing.T, nL, nR int, edges [][2]int, cols []int, load int) {
	t.Helper()
	perL := make(map[[2]int]int)
	perR := make(map[[2]int]int)
	for i, e := range edges {
		c := cols[i]
		perL[[2]int{e[0], c}]++
		perR[[2]int{e[1], c}]++
		if perL[[2]int{e[0], c}] > load {
			t.Fatalf("left vertex %d color %d used %d times (load %d)", e[0], c, perL[[2]int{e[0], c}], load)
		}
		if perR[[2]int{e[1], c}] > load {
			t.Fatalf("right vertex %d color %d used %d times (load %d)", e[1], c, perR[[2]int{e[1], c}], load)
		}
	}
}

func TestQuickEdgeColoringRandomBipartite(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		n := 2 + rng.Intn(12)
		colors := 1 + rng.Intn(6)
		// Build a multigraph with max degree <= colors.
		degL := make([]int, n)
		degR := make([]int, n)
		var edges [][2]int
		for tries := 0; tries < n*colors*2; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if degL[u] < colors && degR[v] < colors {
				degL[u]++
				degR[v]++
				edges = append(edges, [2]int{u, v})
			}
		}
		cols, err := ColorBipartite(n, n, colors, edges)
		if err != nil {
			return false
		}
		seenL := make(map[[2]int]bool)
		seenR := make(map[[2]int]bool)
		for i, e := range edges {
			c := cols[i]
			if c < 0 || c >= colors {
				return false
			}
			if seenL[[2]int{e[0], c}] || seenR[[2]int{e[1], c}] {
				return false
			}
			seenL[[2]int{e[0], c}] = true
			seenR[[2]int{e[1], c}] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevelWiseConflictFreeOnFullTree(t *testing.T) {
	// Constructive rearrangeability (§II): every permutation on the
	// full 16-ary 2-tree routes with zero network contention.
	tp := paperTree(t, 16)
	for trial := 0; trial < 5; trial++ {
		p := pattern.KeyedRandomPermutation(256, 1000, uint64(trial)+1)
		lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		if got := lw.MaxGroups(p); got != 1 {
			t.Fatalf("trial %d: level-wise contention %d, want 1", trial, got)
		}
	}
}

func TestLevelWiseConflictFreeOnDeepTree(t *testing.T) {
	// The inductive argument must hold through three levels.
	tp, err := xgft.NewKaryNTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		p := pattern.KeyedRandomPermutation(64, 1000, uint64(trial)+101)
		lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		if got := lw.MaxGroups(p); got != 1 {
			t.Fatalf("trial %d: deep level-wise contention %d, want 1", trial, got)
		}
		tbl, err := BuildTable(tp, lw, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tbl.Routes {
			if r.Src != r.Dst && !r.VerifyConnects(tp) {
				t.Fatal("level-wise route does not connect")
			}
		}
	}
}

func TestLevelWiseCGTranspose(t *testing.T) {
	// The pattern that defeats D-mod-k is routed conflict-free.
	tp := paperTree(t, 16)
	ph, err := pattern.CGTransposePhase(128, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := NewLevelWise(tp, []*pattern.Pattern{ph})
	if err != nil {
		t.Fatal(err)
	}
	if got := lw.MaxGroups(ph); got != 1 {
		t.Errorf("level-wise CG transpose contention %d, want 1", got)
	}
}

func TestLevelWiseBalancedOnSlimmedTree(t *testing.T) {
	// On XGFT(2;16,16;1,w2) a permutation needs at most ceil(16/w2)
	// flows per channel; the balanced coloring must hit that bound.
	for _, w2 := range []int{8, 5, 3} {
		tp := paperTree(t, w2)
		p := pattern.KeyedRandomPermutation(256, 1000, uint64(w2)+201)
		lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		bound := (16 + w2 - 1) / w2
		if got := lw.MaxGroups(p); got > bound {
			t.Errorf("w2=%d: level-wise contention %d above optimal bound %d", w2, got, bound)
		}
	}
}

func TestLevelWiseFallback(t *testing.T) {
	tp := paperTree(t, 16)
	ph := pattern.New(256)
	ph.Add(0, 16, 10)
	lw, err := NewLevelWise(tp, []*pattern.Pattern{ph})
	if err != nil {
		t.Fatal(err)
	}
	if lw.Name() != "level-wise" {
		t.Errorf("name = %s", lw.Name())
	}
	r := lw.Route(100, 200)
	if err := r.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

func TestLevelWiseAtLeastAsGoodAsColored(t *testing.T) {
	// Level-wise is constructive and provably conflict-free on full
	// trees; Colored's local search may stop at a local optimum, so
	// level-wise must never be worse.
	tp := paperTree(t, 16)
	for trial := 0; trial < 3; trial++ {
		p := pattern.KeyedRandomPermutation(256, 1000, uint64(trial)+301)
		lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		col := NewColored(tp, []*pattern.Pattern{p}, ColoredConfig{})
		if lw.MaxGroups(p) > col.MaxGroups(p) {
			t.Errorf("level-wise %d worse than colored %d on a permutation", lw.MaxGroups(p), col.MaxGroups(p))
		}
	}
}

func TestQuickLevelWiseRandomTopologiesAndPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		k := 2 + rng.Intn(3)
		n := 2 + rng.Intn(2)
		tp, err := xgft.NewKaryNTree(k, n)
		if err != nil {
			return false
		}
		p := pattern.KeyedRandomPermutation(tp.Leaves(), 100, uint64(seed)+1)
		lw, err := NewLevelWise(tp, []*pattern.Pattern{p})
		if err != nil {
			return false
		}
		return lw.MaxGroups(p) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
