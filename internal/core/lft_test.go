package core

import (
	"testing"

	"repro/internal/xgft"
)

func TestDModKIsDestinationBased(t *testing.T) {
	tp := paperTree(t, 10)
	lft, err := CompileLFT(tp, NewDModK(tp))
	if err != nil {
		t.Fatalf("d-mod-k failed to compile: %v", err)
	}
	// The compiled tables reproduce d-mod-k's routes exactly.
	for s := 0; s < 64; s += 7 {
		for d := 0; d < 256; d += 11 {
			if s == d {
				continue
			}
			want := NewDModK(tp).Route(s, d)
			got := lft.Route(s, d)
			for i := range want.Up {
				if got.Up[i] != want.Up[i] {
					t.Fatalf("LFT route %d->%d differs at level %d", s, d, i)
				}
			}
		}
	}
}

func TestRNCADownIsDestinationBased(t *testing.T) {
	tp := paperTree(t, 10)
	if !IsDestinationBased(tp, NewRandomNCADown(tp, 5)) {
		t.Error("r-NCA-d is not destination-based (it must be: it concentrates destination contention)")
	}
}

func TestSModKIsNotDestinationBased(t *testing.T) {
	tp := paperTree(t, 16)
	if IsDestinationBased(tp, NewSModK(tp)) {
		t.Error("s-mod-k compiled to destination-based tables (it routes by source)")
	}
	if IsDestinationBased(tp, NewRandomNCAUp(tp, 1)) {
		t.Error("r-NCA-u compiled to destination-based tables")
	}
	if IsDestinationBased(tp, NewRandom(tp, 1)) {
		t.Error("per-pair random compiled to destination-based tables")
	}
}

func TestLFTFallbackForUnpopulatedEntries(t *testing.T) {
	tp := paperTree(t, 16)
	lft, err := CompileLFT(tp, NewDModK(tp))
	if err != nil {
		t.Fatal(err)
	}
	// Clear one entry and confirm the route still connects via the
	// d-mod-k default.
	lft.Up[1][0][17] = -1
	r := lft.Route(0, 17)
	if err := r.Validate(tp); err != nil {
		t.Fatal(err)
	}
	if !r.VerifyConnects(tp) {
		t.Error("fallback route does not connect")
	}
	if lft.Name() != "lft" {
		t.Errorf("name = %s", lft.Name())
	}
}

func TestLFTOnDeepTree(t *testing.T) {
	tp, err := xgft.NewKaryNTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	lft, err := CompileLFT(tp, NewRandomNCADown(tp, 9))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 64; s += 5 {
		for d := 0; d < 64; d += 3 {
			if s == d {
				continue
			}
			r := lft.Route(s, d)
			if !r.VerifyConnects(tp) {
				t.Fatalf("LFT route %d->%d broken", s, d)
			}
		}
	}
}
