// Package core implements the oblivious routing schemes analyzed and
// proposed by Rodriguez et al. (CLUSTER 2009) for extended generalized
// fat trees: the classical S-mod-k and D-mod-k self-routing schemes,
// static Random NCA selection, the paper's new relabeling-based family
// (Random NCA Up / Random NCA Down), and a pattern-aware "Colored"
// baseline reproducing the role of the ICS'09 scheme the paper compares
// against.
//
// All algorithms produce, for each (source, destination) leaf pair, a
// minimal route through one of the pair's nearest common ancestors
// (xgft.Route). Oblivious algorithms are pure functions of the pair
// (plus a seed); Colored is a function of a whole pattern.
package core

import (
	"fmt"

	"repro/internal/hashutil"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// Algorithm computes a static route for every leaf pair. Route must be
// deterministic: calling it twice with the same arguments yields the
// same route (static, pre-computable routing tables).
type Algorithm interface {
	// Name identifies the algorithm in reports ("s-mod-k", ...).
	Name() string
	// Route returns the minimal route from src to dst. src == dst
	// yields an empty route (no network traversal).
	Route(src, dst int) xgft.Route
}

// splitmix64 advances the splitmix64 state and returns the next value.
// It is the deterministic keyed stream behind Random and the
// relabeling family, so routing tables are reproducible from a seed
// without storing per-pair state.
func splitmix64(x uint64) uint64 { return hashutil.Splitmix64(x) }

// mix hashes a tuple of values into a well-distributed 64-bit key.
func mix(vals ...uint64) uint64 { return hashutil.Mix(vals...) }

// uniform maps a hash to [0, n) without the bias of a plain modulus
// (multiply-shift reduction).
func uniform(h uint64, n int) int {
	hi, _ := mul64(h, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo), avoiding
// math/bits only to keep the arithmetic explicit.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	m := t & mask
	c = t >> 32
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + t>>32
	return hi, lo
}

// Table is a pre-computed routing table: routes for every flow of a
// pattern (the artifact a subnet manager would install). It keeps
// insertion order aligned with the pattern's flow order.
type Table struct {
	Topo   *xgft.Topology
	Algo   string
	Routes []xgft.Route
}

// BuildTable computes routes for every flow of the pattern. Self-flows
// get empty routes. The table is validated on construction.
func BuildTable(t *xgft.Topology, algo Algorithm, p *pattern.Pattern) (*Table, error) {
	if p.N > t.Leaves() {
		return nil, fmt.Errorf("core: pattern over %d endpoints does not fit %d leaves", p.N, t.Leaves())
	}
	tbl := &Table{Topo: t, Algo: algo.Name(), Routes: make([]xgft.Route, len(p.Flows))}
	for i, f := range p.Flows {
		r := algo.Route(f.Src, f.Dst)
		if f.Src != f.Dst {
			if err := r.Validate(t); err != nil {
				return nil, fmt.Errorf("core: %s produced invalid route for flow %d: %w", algo.Name(), i, err)
			}
		}
		tbl.Routes[i] = r
	}
	return tbl, nil
}

// AllPairsNCACensus counts, for every top-ancestor choice, how many of
// the N*(N-1) ordered pairs with NCA at the top level are assigned to
// each root, reproducing the census of the paper's Fig. 4 ("number of
// routes assigned per NCA"). Pairs whose NCA is below the top level do
// not reach a root and are excluded, as in the figure.
func AllPairsNCACensus(t *xgft.Topology, algo Algorithm) []int {
	counts := make([]int, t.NodesAt(t.Height()))
	n := t.Leaves()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || t.NCALevel(s, d) != t.Height() {
				continue
			}
			r := algo.Route(s, d)
			_, idx := r.NCA(t)
			counts[idx]++
		}
	}
	return counts
}

// guideDigit returns the label digit position that steers the up-port
// choice at the given switch level: the paper's "M_l mod w_{l+1}" uses
// digit l-1 (0-indexed) at level l; the leaf uses digit 0 (w_1 = 1 in
// all of the paper's topologies, so the leaf choice is degenerate).
func guideDigit(level int) int {
	if level == 0 {
		return 0
	}
	return level - 1
}
