package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

// CacheKeyer is implemented by algorithms whose Route function is a
// pure function of (topology spec, CacheKey): the same key on an
// equal-spec topology always yields the same routes. The key must
// therefore encode everything the algorithm was constructed from
// beyond the topology — the seed for the randomized schemes, the
// input phases for the pattern-aware ones. Algorithms that do not
// implement it are never memoized.
type CacheKeyer interface {
	CacheKey() string
}

// tableKey identifies one BuildTable computation. Besides the pattern
// fingerprint it keeps the cheap exact pattern invariants (N, flow
// count, byte total) so a 64-bit hash collision alone cannot alias two
// different computations.
type tableKey struct {
	topo    string
	algo    string
	n       int
	flows   int
	bytes   int64
	pattern uint64
}

// TableCache memoizes BuildTable results across experiment cells: the
// same (topology spec, algorithm identity, pattern content) triple is
// computed once and shared read-only afterwards. Cached *Table values
// must not be mutated by callers — routes are index data valid for any
// topology with the same spec.
//
// The cache is safe for concurrent use, and concurrent Build calls
// for the same key are coalesced singleflight-style: one caller
// computes, the rest wait for its result instead of duplicating the
// work (the case a fabric rebuild storm produces). Capacity bounds
// the number of retained tables with FIFO eviction; a capacity <= 0
// cache is a pass-through (never stores, never coalesces), which is
// how benchmarks measure the uncached engine.
type TableCache struct {
	capacity   int
	hits       atomic.Uint64
	misses     atomic.Uint64
	coalesced  atomic.Uint64
	algoHits   atomic.Uint64
	algoMisses atomic.Uint64

	mu       sync.Mutex
	entries  map[tableKey]*Table
	order    []tableKey
	inflight map[tableKey]*inflightBuild

	algoMu    sync.Mutex
	algos     map[string]Algorithm
	algoOrder []string
}

// inflightBuild is one in-progress BuildTable computation; done is
// closed after tbl/err are set.
type inflightBuild struct {
	done chan struct{}
	tbl  *Table
	err  error
}

// NewTableCache returns a cache retaining at most capacity tables.
// capacity <= 0 disables storage entirely (every Build recomputes).
func NewTableCache(capacity int) *TableCache {
	return &TableCache{
		capacity: capacity,
		entries:  make(map[tableKey]*Table),
		inflight: make(map[tableKey]*inflightBuild),
		algos:    make(map[string]Algorithm),
	}
}

// MemoAlgorithm memoizes an expensive deterministic algorithm
// construction (the Colored optimizer spends milliseconds per
// topology) under the caller's key, which must encode every
// construction input. The returned instance may be shared across
// goroutines, so build must produce an algorithm whose Route is safe
// for concurrent use. Pass-through and nil caches always rebuild.
func (c *TableCache) MemoAlgorithm(key string, build func() Algorithm) Algorithm {
	if c == nil || c.capacity <= 0 {
		return build()
	}
	c.algoMu.Lock()
	algo, ok := c.algos[key]
	c.algoMu.Unlock()
	if ok {
		c.algoHits.Add(1)
		return algo
	}
	c.algoMisses.Add(1)
	algo = build()
	c.algoMu.Lock()
	if _, exists := c.algos[key]; !exists {
		for len(c.algoOrder) >= c.capacity {
			oldest := c.algoOrder[0]
			c.algoOrder = c.algoOrder[1:]
			delete(c.algos, oldest)
		}
		c.algos[key] = algo
		c.algoOrder = append(c.algoOrder, key)
	}
	c.algoMu.Unlock()
	return algo
}

// Build returns the routing table for the flow set, serving it from
// the cache when the algorithm is memoizable (implements CacheKeyer)
// and the triple has been built before. A nil cache, a pass-through
// cache, and a non-memoizable algorithm all fall back to BuildTable.
func (c *TableCache) Build(t *xgft.Topology, algo Algorithm, p *pattern.Pattern) (*Table, error) {
	if c == nil || c.capacity <= 0 {
		return BuildTable(t, algo, p)
	}
	keyer, ok := algo.(CacheKeyer)
	if !ok {
		return BuildTable(t, algo, p)
	}
	key := tableKey{
		topo:    t.String(),
		algo:    keyer.CacheKey(),
		n:       p.N,
		flows:   len(p.Flows),
		bytes:   p.TotalBytes(),
		pattern: p.Fingerprint(),
	}
	c.mu.Lock()
	if tbl := c.entries[key]; tbl != nil {
		c.mu.Unlock()
		c.hits.Add(1)
		return tbl, nil
	}
	if fl := c.inflight[key]; fl != nil {
		// Another goroutine is already computing this table: wait for
		// it instead of duplicating the build.
		c.mu.Unlock()
		<-fl.done
		c.coalesced.Add(1)
		return fl.tbl, fl.err
	}
	fl := &inflightBuild{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)
	// Complete the flight even if BuildTable panics (a malformed
	// pattern can make an algorithm panic): the key must not stay
	// wedged and waiters must not hang on done. The panic itself
	// still propagates to this caller; waiters see an error.
	defer func() {
		if fl.tbl == nil && fl.err == nil {
			fl.err = fmt.Errorf("core: table build for %q on %s panicked", key.algo, key.topo)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			if _, exists := c.entries[key]; !exists {
				for len(c.order) >= c.capacity {
					oldest := c.order[0]
					c.order = c.order[1:]
					delete(c.entries, oldest)
				}
				c.entries[key] = fl.tbl
				c.order = append(c.order, key)
			}
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.tbl, fl.err = BuildTable(t, algo, p)
	return fl.tbl, fl.err
}

// Coalesced reports how many Build calls were served by waiting on an
// identical in-flight computation instead of recomputing (neither a
// hit nor a miss in Stats' terms).
func (c *TableCache) Coalesced() uint64 {
	if c == nil {
		return 0
	}
	return c.coalesced.Load()
}

// Stats reports table-lookup effectiveness: hits and misses of
// memoizable Build calls since construction (pass-through builds and
// MemoAlgorithm lookups are not counted — see MemoStats).
func (c *TableCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// MemoStats reports MemoAlgorithm effectiveness: hits and misses of
// memoized algorithm constructions since construction.
func (c *TableCache) MemoStats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.algoHits.Load(), c.algoMisses.Load()
}

// Len returns the number of currently retained tables.
func (c *TableCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every retained table and memoized algorithm, keeping
// the hit/miss counters.
func (c *TableCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[tableKey]*Table)
	c.order = nil
	c.mu.Unlock()
	c.algoMu.Lock()
	c.algos = make(map[string]Algorithm)
	c.algoOrder = nil
	c.algoMu.Unlock()
}
