package core

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xgft"
)

func TestFixedTableSetAndRoute(t *testing.T) {
	tp := paperTree(t, 16)
	f := NewFixedTable(tp, "test", nil)
	if f.Name() != "test" {
		t.Errorf("name = %s", f.Name())
	}
	r := xgft.Route{Src: 0, Dst: 16, Up: []int{0, 9}}
	if err := f.Set(r); err != nil {
		t.Fatal(err)
	}
	got := f.Route(0, 16)
	if got.Up[1] != 9 {
		t.Errorf("explicit route not used: %v", got.Up)
	}
	// Unknown pair falls back to d-mod-k.
	fb := f.Route(0, 17)
	want := NewDModK(tp).Route(0, 17)
	if fb.Up[1] != want.Up[1] {
		t.Errorf("fallback mismatch: %v vs %v", fb.Up, want.Up)
	}
	if f.Len() != 1 {
		t.Errorf("len = %d", f.Len())
	}
}

func TestFixedTableSetValidates(t *testing.T) {
	tp := paperTree(t, 16)
	f := NewFixedTable(tp, "", nil)
	if err := f.Set(xgft.Route{Src: 0, Dst: 16, Up: []int{0, 99}}); err == nil {
		t.Error("invalid route accepted")
	}
	if err := f.Set(xgft.Route{Src: 0, Dst: 500, Up: []int{0, 0}}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestFixedTableDefaultName(t *testing.T) {
	tp := paperTree(t, 16)
	if got := NewFixedTable(tp, "", nil).Name(); got != "fixed" {
		t.Errorf("default name = %s", got)
	}
}

func TestSnapshotRoundTripThroughText(t *testing.T) {
	tp := paperTree(t, 10)
	algo := NewRandomNCAUp(tp, 7)
	p := pattern.WRF256()
	pairs := make([][2]int, 0, len(p.Flows))
	for _, f := range p.Flows {
		pairs = append(pairs, [2]int{f.Src, f.Dst})
	}
	snap, err := Snapshot(tp, algo, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != len(p.Flows) {
		t.Fatalf("snapshot has %d entries, want %d", snap.Len(), len(p.Flows))
	}
	var buf strings.Builder
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(tp, strings.NewReader(buf.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != snap.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), snap.Len())
	}
	for _, pr := range pairs {
		a := snap.Route(pr[0], pr[1])
		b := loaded.Route(pr[0], pr[1])
		if len(a.Up) != len(b.Up) {
			t.Fatalf("pair %v: ascent length mismatch", pr)
		}
		for i := range a.Up {
			if a.Up[i] != b.Up[i] {
				t.Fatalf("pair %v: route changed through serialization", pr)
			}
		}
	}
}

func TestSnapshotSkipsSelfPairs(t *testing.T) {
	tp := paperTree(t, 16)
	snap, err := Snapshot(tp, NewDModK(tp), [][2]int{{3, 3}, {0, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 1 {
		t.Errorf("len = %d, want 1", snap.Len())
	}
}

func TestReadTableHeaderMismatch(t *testing.T) {
	tp := paperTree(t, 16)
	text := "# xgft 2;16,16;1,10\n0 16 0,3\n"
	if _, err := ReadTable(tp, strings.NewReader(text), nil); err == nil {
		t.Error("mismatched header accepted")
	}
}

func TestReadTableParseErrors(t *testing.T) {
	tp := paperTree(t, 16)
	bad := []string{
		"0 16\n",           // missing ports
		"x 16 0,0\n",       // bad src
		"0 y 0,0\n",        // bad dst
		"0 16 0,z\n",       // bad port
		"0 16 0,99\n",      // invalid route
		"0 16 0\n",         // wrong ascent length
		"0 16 0,0 extra\n", // too many fields
		"0 300 0,0\n",      // out of range
	}
	for _, text := range bad {
		if _, err := ReadTable(tp, strings.NewReader(text), nil); err == nil {
			t.Errorf("bad table %q accepted", text)
		}
	}
}

func TestReadTableEmptyAndComments(t *testing.T) {
	tp := paperTree(t, 16)
	text := "# xgft 2;16,16;1,16\n\n# comment\n0 16 0,5\n"
	f, err := ReadTable(tp, strings.NewReader(text), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Errorf("len = %d", f.Len())
	}
	if got := f.Route(0, 16); got.Up[1] != 5 {
		t.Errorf("route = %v", got.Up)
	}
}

func TestAutoModKHeuristic(t *testing.T) {
	tp := paperTree(t, 16)
	// Gather: many sources, one destination -> fan-in dominated ->
	// D-mod-k concentrates the single destination's descent.
	gather := pattern.New(256)
	for s := 1; s < 32; s++ {
		gather.Add(s, 0, 100)
	}
	if got := AutoModK(tp, gather).Name(); got != "d-mod-k" {
		t.Errorf("gather chose %s, want d-mod-k", got)
	}
	// Scatter: one source, many destinations -> fan-out dominated ->
	// S-mod-k shares the single ascent.
	scatter := pattern.New(256)
	for d := 1; d < 32; d++ {
		scatter.Add(0, d, 100)
	}
	if got := AutoModK(tp, scatter).Name(); got != "s-mod-k" {
		t.Errorf("scatter chose %s, want s-mod-k", got)
	}
	// Symmetric permutation: tie -> default d-mod-k.
	perm := pattern.Shift(256, 9, 100)
	if got := AutoModK(tp, perm).Name(); got != "d-mod-k" {
		t.Errorf("permutation chose %s, want d-mod-k", got)
	}
	// Empty pattern: default.
	if got := AutoModK(tp, pattern.New(256)).Name(); got != "d-mod-k" {
		t.Errorf("empty chose %s", got)
	}
}

func TestAutoModKReducesContentionOnScatterGather(t *testing.T) {
	// The heuristic's promise: the chosen scheme routes the pattern
	// with no network contention, the rejected one may not.
	tp := paperTree(t, 16)
	scatter := pattern.New(256)
	for d := 16; d < 48; d++ {
		scatter.Add(0, d, 100)
	}
	chosen := AutoModK(tp, scatter)
	st := newPhaseState(tp)
	for _, f := range scatter.Flows {
		st.apply(f, chosen.Route(f.Src, f.Dst).Up, 1)
	}
	for _, g := range st.upGroups {
		if g > 1 {
			t.Errorf("chosen scheme has up-group contention %d on scatter", g)
		}
	}
}
