package core

import "fmt"

// Bipartite edge coloring is the combinatorial engine behind the
// level-wise permutation scheduler (levelwise.go): by König's
// edge-coloring theorem, a bipartite multigraph of maximum degree D
// is D-edge-colorable, and each color class touches every vertex at
// most once. The implementation is the classic alternating-path
// (Vizing-fan-free) algorithm: insert edges one by one; when the two
// endpoints have no common free color, flip an alternating two-color
// path to make one.

// bipartiteColorer colors edges between `left` and `right` vertex
// sets with `colors` colors.
type bipartiteColorer struct {
	colors int
	// usedL[u][c] / usedR[v][c] = edge index using color c at the
	// vertex, or -1.
	usedL, usedR [][]int32
	// edge endpoints and assigned colors.
	edgeL, edgeR []int32
	edgeColor    []int32
}

// newBipartiteColorer allocates a colorer for nL left and nR right
// vertices.
func newBipartiteColorer(nL, nR, colors int) *bipartiteColorer {
	b := &bipartiteColorer{
		colors: colors,
		usedL:  make([][]int32, nL),
		usedR:  make([][]int32, nR),
	}
	for i := range b.usedL {
		b.usedL[i] = fillNeg(colors)
	}
	for i := range b.usedR {
		b.usedR[i] = fillNeg(colors)
	}
	return b
}

func fillNeg(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// addEdge inserts an edge and colors it, flipping an alternating path
// if necessary. It fails only if an endpoint already has full degree
// (more edges than colors), which violates the coloring precondition.
func (b *bipartiteColorer) addEdge(u, v int) (int, error) {
	id := int32(len(b.edgeL))
	b.edgeL = append(b.edgeL, int32(u))
	b.edgeR = append(b.edgeR, int32(v))
	b.edgeColor = append(b.edgeColor, -1)

	cu := b.freeColor(b.usedL[u])
	cv := b.freeColor(b.usedR[v])
	if cu < 0 || cv < 0 {
		return 0, fmt.Errorf("core: edge coloring: vertex degree exceeds %d colors", b.colors)
	}
	if cu == cv {
		b.assign(id, cu)
		return cu, nil
	}
	// u is free on cu, v is free on cv. Flip the alternating
	// (cu, cv)-path starting at v: every edge colored cu becomes cv
	// and vice versa. The path cannot reach u (it would close an odd
	// cycle in a bipartite graph), so afterwards both endpoints are
	// free on cu.
	b.flipPath(int(v), cu, cv, false)
	b.assign(id, cu)
	return cu, nil
}

func (b *bipartiteColorer) freeColor(used []int32) int {
	for c, e := range used {
		if e < 0 {
			return c
		}
	}
	return -1
}

func (b *bipartiteColorer) assign(id int32, c int) {
	b.edgeColor[id] = int32(c)
	b.usedL[b.edgeL[id]][c] = id
	b.usedR[b.edgeR[id]][c] = id
}

// flipPath walks the alternating path of colors (a, b) starting at a
// right vertex (onLeft=false) that is free on b but may be taken on
// a, then swaps the colors of every edge on the path. The path is
// collected before any mutation: recoloring in place would make the
// walk rediscover the edge it just flipped.
func (b *bipartiteColorer) flipPath(start, colA, colB int, onLeft bool) {
	var path []int32
	v := start
	left := onLeft
	want := colA
	for {
		var used []int32
		if left {
			used = b.usedL[v]
		} else {
			used = b.usedR[v]
		}
		e := used[want]
		if e < 0 {
			break
		}
		path = append(path, e)
		if left {
			v = int(b.edgeR[e])
		} else {
			v = int(b.edgeL[e])
		}
		left = !left
		if want == colA {
			want = colB
		} else {
			want = colA
		}
	}
	// Clear the old slots of every path edge, then install the
	// swapped colors; two passes keep the used arrays consistent even
	// though adjacent path edges exchange slots at shared vertices.
	for _, e := range path {
		c := b.edgeColor[e]
		b.usedL[b.edgeL[e]][c] = -1
		b.usedR[b.edgeR[e]][c] = -1
	}
	for _, e := range path {
		c := b.edgeColor[e]
		other := int32(colA)
		if c == int32(colA) {
			other = int32(colB)
		}
		b.edgeColor[e] = other
		b.usedL[b.edgeL[e]][other] = e
		b.usedR[b.edgeR[e]][other] = e
	}
}

// ColorBipartite colors the edges (pairs of left/right vertex IDs)
// with the given number of colors, returning one color per edge in
// input order. Colors must be >= the maximum vertex degree.
func ColorBipartite(nL, nR, colors int, edges [][2]int) ([]int, error) {
	if colors < 1 {
		return nil, fmt.Errorf("core: edge coloring needs at least one color")
	}
	b := newBipartiteColorer(nL, nR, colors)
	out := make([]int, len(edges))
	for i, e := range edges {
		if e[0] < 0 || e[0] >= nL || e[1] < 0 || e[1] >= nR {
			return nil, fmt.Errorf("core: edge %d endpoints (%d,%d) out of range", i, e[0], e[1])
		}
		c, err := b.addEdge(e[0], e[1])
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	// The alternating flips may have recolored earlier edges; report
	// the final colors.
	for i := range out {
		out[i] = int(b.edgeColor[i])
	}
	return out, nil
}

// ColorBipartiteBalanced colors with exactly `colors` colors even
// when the maximum degree D exceeds them: it colors with
// ceil(D/colors)*colors virtual colors and folds them modulo
// `colors`, so every vertex sees each folded color at most
// ceil(D/colors) times — the balanced overload used for slimmed
// trees, where conflicts are unavoidable and must be spread evenly
// (paper §VII-A: "these conflicts should be distributed such that no
// set of communicating pairs suffers more contention than others").
func ColorBipartiteBalanced(nL, nR, colors int, edges [][2]int) ([]int, error) {
	if colors < 1 {
		return nil, fmt.Errorf("core: edge coloring needs at least one color")
	}
	degL := make([]int, nL)
	degR := make([]int, nR)
	maxDeg := 0
	for i, e := range edges {
		if e[0] < 0 || e[0] >= nL || e[1] < 0 || e[1] >= nR {
			return nil, fmt.Errorf("core: edge %d endpoints (%d,%d) out of range", i, e[0], e[1])
		}
		degL[e[0]]++
		degR[e[1]]++
		if degL[e[0]] > maxDeg {
			maxDeg = degL[e[0]]
		}
		if degR[e[1]] > maxDeg {
			maxDeg = degR[e[1]]
		}
	}
	if maxDeg == 0 {
		return make([]int, len(edges)), nil
	}
	virtual := ((maxDeg + colors - 1) / colors) * colors
	cols, err := ColorBipartite(nL, nR, virtual, edges)
	if err != nil {
		return nil, err
	}
	for i := range cols {
		cols[i] %= colors
	}
	return cols, nil
}
