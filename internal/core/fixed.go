package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xgft"
)

// FixedTable is an Algorithm backed by an explicit per-pair route
// map, the in-memory form of the forwarding tables a subnet manager
// (e.g. OpenSM on InfiniBand, which the paper's cited works target)
// would install. Pairs without an explicit entry fall back to a
// configurable default scheme.
type FixedTable struct {
	topo     *xgft.Topology
	name     string
	fallback Algorithm
	routes   map[[2]int][]int
}

// NewFixedTable builds an empty fixed table with the given fallback
// (nil means D-mod-k).
func NewFixedTable(t *xgft.Topology, name string, fallback Algorithm) *FixedTable {
	if fallback == nil {
		fallback = NewDModK(t)
	}
	if name == "" {
		name = "fixed"
	}
	return &FixedTable{
		topo:     t,
		name:     name,
		fallback: fallback,
		routes:   make(map[[2]int][]int),
	}
}

// Name implements Algorithm.
func (f *FixedTable) Name() string { return f.name }

// Route implements Algorithm.
func (f *FixedTable) Route(src, dst int) xgft.Route {
	if up, ok := f.routes[[2]int{src, dst}]; ok {
		return xgft.Route{Src: src, Dst: dst, Up: append([]int(nil), up...)}
	}
	return f.fallback.Route(src, dst)
}

// Set installs the route for one pair. The route is validated.
func (f *FixedTable) Set(r xgft.Route) error {
	if err := r.Validate(f.topo); err != nil {
		return err
	}
	f.routes[[2]int{r.Src, r.Dst}] = append([]int(nil), r.Up...)
	return nil
}

// Len returns the number of explicit entries.
func (f *FixedTable) Len() int { return len(f.routes) }

// Snapshot captures every route an algorithm produces for the pairs
// of a pattern into a FixedTable — freezing, for example, one seed of
// a randomized scheme for offline inspection or replay.
func Snapshot(t *xgft.Topology, algo Algorithm, pairs [][2]int) (*FixedTable, error) {
	f := NewFixedTable(t, algo.Name()+"-snapshot", nil)
	for _, p := range pairs {
		if p[0] == p[1] {
			continue
		}
		if err := f.Set(algo.Route(p[0], p[1])); err != nil {
			return nil, fmt.Errorf("core: snapshot %d->%d: %w", p[0], p[1], err)
		}
	}
	return f, nil
}

// WriteTo serializes the table in a line-oriented text format
// comparable to OpenSM's LFT dumps:
//
//	# xgft 2;16,16;1,10
//	0 16 0,3
//	...
//
// one "src dst port,port,..." line per explicit entry, sorted.
func (f *FixedTable) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "# xgft %s\n", specOf(f.topo))
	total += int64(n)
	if err != nil {
		return total, err
	}
	keys := make([][2]int, 0, len(f.routes))
	for k := range f.routes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		ports := f.routes[k]
		strs := make([]string, len(ports))
		for i, p := range ports {
			strs[i] = strconv.Itoa(p)
		}
		n, err := fmt.Fprintf(w, "%d %d %s\n", k[0], k[1], strings.Join(strs, ","))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadTable parses the WriteTo format against a topology (the header
// must match) and returns the fixed table.
func ReadTable(t *xgft.Topology, r io.Reader, fallback Algorithm) (*FixedTable, error) {
	f := NewFixedTable(t, "fixed", fallback)
	sc := bufio.NewScanner(r)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !sawHeader {
				sawHeader = true
				want := "# xgft " + specOf(t)
				if line != want {
					return nil, fmt.Errorf("core: table header %q does not match topology (%q)", line, want)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: line %d: want \"src dst ports\", got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("core: line %d: bad source: %v", lineNo, err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("core: line %d: bad destination: %v", lineNo, err)
		}
		var up []int
		if fields[2] != "-" {
			for _, s := range strings.Split(fields[2], ",") {
				p, err := strconv.Atoi(s)
				if err != nil {
					return nil, fmt.Errorf("core: line %d: bad port %q: %v", lineNo, s, err)
				}
				up = append(up, p)
			}
		}
		if err := f.Set(xgft.Route{Src: src, Dst: dst, Up: up}); err != nil {
			return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// specOf renders the compact h;m...;w... spec of a topology (the
// inverse of xgft.Parse).
func specOf(t *xgft.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d;", t.Height())
	for i, m := range t.Ms() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", m)
	}
	b.WriteByte(';')
	for i, w := range t.Ws() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", w)
	}
	return b.String()
}
