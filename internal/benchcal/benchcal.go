// Package benchcal pins a deterministic ALU-bound reference workload
// used to normalize benchmark timings across machine-speed drift.
// Shared CI runners swing tens of percent between runs (frequency
// scaling, noisy neighbors); a raw ns/op gate at 10% flakes on that
// alone. Each gated package exposes the same BenchmarkCalibration via
// Bench, and cmd/benchgate divides every benchmark's current ns/op by
// the calibration drift ratio of its package before comparing to the
// committed baseline — machine drift cancels, code regressions
// remain.
package benchcal

import "testing"

// Spin advances a splitmix64-style mixer n times and returns the
// final state. Pure integer ALU work with a serial dependency chain:
// no memory traffic, no branches the predictor can miss, so its
// timing tracks effective CPU speed and little else.
func Spin(n int) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		x ^= z
	}
	return x
}

var sink uint64

// Bench is the body every gated package wraps as its
// BenchmarkCalibration. Spin(4096) lands in the microseconds — the
// same magnitude as the gated hot paths, so per-iteration overhead
// distorts neither.
func Bench(b *testing.B) {
	b.ReportAllocs()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Spin(4096)
	}
	sink = acc
}
