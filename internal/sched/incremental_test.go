package sched_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/hashutil"
	"repro/internal/sched"
)

// TestPlaceIncrementalMatchesFullRescore is the scheduler-side
// differential contract: the telemetry policy's delta path (job flows
// applied to a shared background LoadState and reverted) must place
// every job on exactly the leaves the from-scratch path chooses,
// through a churny submit/release sequence that grows, fragments, and
// re-fills the pool.
func TestPlaceIncrementalMatchesFullRescore(t *testing.T) {
	run := func(full bool) [][]int {
		f := testFabric(t, 4, false)
		p, err := sched.PolicyByName("telemetry")
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.New(sched.Config{Fabric: f, Policy: p, FullRescore: full})
		if err != nil {
			t.Fatal(err)
		}
		var placements [][]int
		var live []uint64
		for i := 0; i < 24; i++ {
			n := int(hashutil.Mix(0x91ace, uint64(i))%12) + 2
			job, err := s.Submit(permSpec(fmt.Sprintf("j%d", i), n, uint64(i)+1))
			if errors.Is(err, sched.ErrNoCapacity) {
				placements = append(placements, nil)
			} else if err != nil {
				t.Fatal(err)
			} else {
				placements = append(placements, job.Leaves)
				live = append(live, job.ID)
			}
			// Release the oldest live job on a keyed cadence so later
			// placements score against a fragmented, shifting background.
			if len(live) > 0 && hashutil.Mix(0x91ace, 7, uint64(i))%3 == 0 {
				if err := s.Release(live[0]); err != nil {
					t.Fatal(err)
				}
				live = live[1:]
			}
		}
		return placements
	}
	inc, full := run(false), run(true)
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("placements diverged:\nincremental: %v\nfull:        %v", inc, full)
	}
}
