package sched_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/xgft"
)

// testFabric compiles a d-mod-k fabric on XGFT(2;8,8;1,w2).
func testFabric(t testing.TB, w2 int, telemetry bool) *fabric.Fabric {
	t.Helper()
	tp, err := xgft.NewSlimmedTree(8, 8, w2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(fabric.Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: telemetry})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newScheduler(t testing.TB, f *fabric.Fabric, policy string) *sched.Scheduler {
	t.Helper()
	p, err := sched.PolicyByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sched.Config{Fabric: f, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// permSpec is a permutation job over n ranks.
func permSpec(name string, n int, seed uint64) sched.JobSpec {
	return sched.JobSpec{
		Name:   name,
		N:      n,
		Phases: []*pattern.Pattern{pattern.KeyedRandomPermutation(n, 1024, seed)},
	}
}

func TestSubmitReleaseSnapshot(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "linear")
	a, err := s.Submit(permSpec("a", 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != 1 || a.N != 8 || a.Policy != "linear" {
		t.Fatalf("job a: %+v", a)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(a.Leaves, want) {
		t.Fatalf("linear leaves %v, want %v", a.Leaves, want)
	}
	b, err := s.Submit(permSpec("b", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{8, 9, 10, 11, 12}; !reflect.DeepEqual(b.Leaves, want) {
		t.Fatalf("second linear job %v, want %v", b.Leaves, want)
	}
	snap := s.Snapshot()
	if snap.Leaves != 64 || snap.Free != 64-13 || len(snap.Jobs) != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Jobs[0].ID != 1 || snap.Jobs[1].ID != 2 {
		t.Fatalf("snapshot job order %+v", snap.Jobs)
	}
	if snap.FreeBlocks != 1 || snap.LargestFree != 64-13 || snap.Fragmentation != 0 {
		t.Fatalf("free census %+v", snap)
	}
	// Releasing the first job splits nothing (block merges left edge),
	// releasing the middle of three creates a hole.
	if err := s.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	snap = s.Snapshot()
	if snap.Free != 64-5 || snap.FreeBlocks != 2 || snap.LargestFree != 64-13 {
		t.Fatalf("after release: %+v", snap)
	}
	if snap.Fragmentation <= 0 {
		t.Fatalf("fragmented pool reports fragmentation %v", snap.Fragmentation)
	}
	if err := s.Release(a.ID); err == nil {
		t.Fatal("double release accepted")
	}
	if _, ok := s.Job(b.ID); !ok {
		t.Fatal("job b lost")
	}
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0].ID != b.ID {
		t.Fatalf("active jobs %v", jobs)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "linear")
	if _, err := s.Submit(sched.JobSpec{N: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := s.Submit(sched.JobSpec{N: 65}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := s.Submit(sched.JobSpec{N: 4, Phases: []*pattern.Pattern{pattern.AllToAll(8, 1)}}); err == nil {
		t.Error("phase over the wrong rank count accepted")
	}
	bad := pattern.New(4)
	bad.Add(0, 9, 1)
	if _, err := s.Submit(sched.JobSpec{N: 4, Phases: []*pattern.Pattern{bad}}); err == nil {
		t.Error("invalid phase accepted")
	}
	if _, err := s.Submit(sched.JobSpec{N: 4, Phases: []*pattern.Pattern{nil}}); err == nil {
		t.Error("nil phase accepted")
	}
	// Fill the pool, then overflow it.
	if _, err := s.Submit(sched.JobSpec{Name: "fill", N: 64}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(sched.JobSpec{Name: "over", N: 1})
	if !errors.Is(err, sched.ErrNoCapacity) {
		t.Fatalf("overflow error %v, want ErrNoCapacity", err)
	}
}

func TestLinearFallbackWhenFragmented(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "linear")
	// Alternate 4-leaf jobs, then release every other one: free pool
	// becomes 8 holes of 4, so a 6-leaf job cannot sit contiguously.
	var ids []uint64
	for i := 0; i < 16; i++ {
		j, err := s.Submit(permSpec("j", 4, uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for i := 0; i < 16; i += 2 {
		if err := s.Release(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	j, err := s.Submit(permSpec("frag", 6, 99))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 8, 9}; !reflect.DeepEqual(j.Leaves, want) {
		t.Fatalf("fallback leaves %v, want lowest free %v", j.Leaves, want)
	}
	if snap := s.Snapshot(); snap.Fragmentation == 0 {
		t.Fatalf("snapshot of a shattered pool: %+v", snap)
	}
}

func TestRandomPolicyDeterministicPerJobID(t *testing.T) {
	run := func() [][]int {
		s := newScheduler(t, testFabric(t, 8, false), "random")
		var got [][]int
		for i := 0; i < 4; i++ {
			j, err := s.Submit(permSpec("r", 6, uint64(i)+1))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, j.Leaves)
		}
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("random policy not reproducible:\n%v\nvs\n%v", a, b)
	}
	// Different job IDs draw different subsets (overwhelmingly).
	if reflect.DeepEqual(a[0], a[1]) && reflect.DeepEqual(a[1], a[2]) {
		t.Fatalf("random policy repeats allocations: %v", a)
	}
}

func TestBalancedPolicySpreadsAcrossSubtrees(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "balanced")
	// 8 subtrees of 8 leaves. First job of 8 drains subtree 0 (tie ->
	// lowest), second drains subtree 1.
	a, err := s.Submit(permSpec("a", 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(a.Leaves, want) {
		t.Fatalf("first balanced job %v, want %v", a.Leaves, want)
	}
	b, err := s.Submit(permSpec("b", 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{8, 9, 10, 11, 12, 13, 14, 15}; !reflect.DeepEqual(b.Leaves, want) {
		t.Fatalf("second balanced job %v, want %v", b.Leaves, want)
	}
	// A 12-leaf job takes one whole free subtree plus the start of the
	// next (fewest subtrees, freest first).
	c, err := s.Submit(permSpec("c", 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27}; !reflect.DeepEqual(c.Leaves, want) {
		t.Fatalf("spanning balanced job %v, want %v", c.Leaves, want)
	}
}

// placementScore mirrors the telemetry policy's objective: the
// analytic slowdown of the background plus the job remapped onto the
// candidate leaves, under the fabric's installed routes.
func placementScore(t *testing.T, f *fabric.Fabric, bg, job *pattern.Pattern, leaves []int) float64 {
	t.Helper()
	tp := f.Topology()
	combined := pattern.New(tp.Leaves())
	combined.Flows = append(combined.Flows, bg.Flows...)
	for _, fl := range job.Flows {
		combined.Add(leaves[fl.Src], leaves[fl.Dst], fl.Bytes)
	}
	q := pattern.New(tp.Leaves())
	var routes []xgft.Route
	gen := f.Generation()
	for _, fl := range combined.Flows {
		if fl.Src == fl.Dst {
			continue
		}
		r, ok := gen.Resolve(fl.Src, fl.Dst)
		if !ok {
			t.Fatalf("pair (%d,%d) did not resolve", fl.Src, fl.Dst)
		}
		q.Add(fl.Src, fl.Dst, fl.Bytes)
		routes = append(routes, r)
	}
	s, err := contention.SlowdownRoutes(tp, q, routes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTelemetryPolicyNeverWorseThanItsCandidates pins the telemetry
// policy's contract: because its candidate set contains the linear
// and balanced proposals, its chosen allocation never scores worse
// than any other policy's choice on the identical request.
func TestTelemetryPolicyNeverWorseThanItsCandidates(t *testing.T) {
	f := testFabric(t, 2, false) // heavily slimmed: crossings are expensive
	s := newScheduler(t, f, "linear")
	// A busy tenant on leaves 10..49: its all-to-all is the
	// background the probe job must coexist with, and it fragments
	// the free pool into {0..9} and {50..63}.
	pad, err := s.Submit(sched.JobSpec{Name: "pad", N: 10})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := s.Submit(sched.JobSpec{
		Name:   "busy",
		N:      40,
		Phases: []*pattern.Pattern{pattern.AllToAll(40, 4096)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(pad.ID); err != nil {
		t.Fatal(err)
	}
	var free []int
	for l := 0; l < 10; l++ {
		free = append(free, l)
	}
	for l := 50; l < 64; l++ {
		free = append(free, l)
	}
	jobPat := pattern.KeyedRandomPermutation(8, 1024, 7)
	req := &sched.Request{
		Topo:       f.Topology(),
		Free:       free,
		N:          8,
		JobID:      3,
		Seed:       1,
		Pattern:    jobPat,
		Background: busy.LeafPattern(),
		Resolve:    f.Generation().Resolve,
	}
	scores := make(map[string]float64)
	for _, name := range sched.PolicyNames() {
		p, err := sched.PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		leaves, err := p.Place(req)
		if err != nil {
			t.Fatal(err)
		}
		scores[name] = placementScore(t, f, busy.LeafPattern(), jobPat, leaves)
	}
	for _, other := range []string{"linear", "random", "balanced"} {
		if scores["telemetry"] > scores[other]+1e-9 {
			t.Errorf("telemetry score %.4f worse than %s score %.4f (all: %v)",
				scores["telemetry"], other, scores[other], scores)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range sched.PolicyNames() {
		p, err := sched.PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if p, err := sched.PolicyByName(""); err != nil || p.Name() != "linear" {
		t.Errorf("empty name: %v, %v", p, err)
	}
	if _, err := sched.PolicyByName("greedy"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRemapPatternAndJobViews(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "linear")
	ph := pattern.New(3)
	ph.Add(0, 1, 10)
	ph.Add(2, 0, 20)
	// Occupy the first two leaves so the job lands at 2,3,4.
	if _, err := s.Submit(sched.JobSpec{Name: "pad", N: 2}); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(sched.JobSpec{Name: "m", N: 3, Phases: []*pattern.Pattern{ph}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 3, 4}; !reflect.DeepEqual(j.Mapping(), want) {
		t.Fatalf("mapping %v, want %v", j.Mapping(), want)
	}
	lp := j.LeafPhases()
	if len(lp) != 1 || lp[0].N != 64 {
		t.Fatalf("leaf phases %+v", lp)
	}
	want := []pattern.Flow{{Src: 2, Dst: 3, Bytes: 10}, {Src: 4, Dst: 2, Bytes: 20}}
	if !reflect.DeepEqual(lp[0].Flows, want) {
		t.Fatalf("remapped flows %v, want %v", lp[0].Flows, want)
	}
	if !reflect.DeepEqual(j.LeafPattern().Flows, want) {
		t.Fatalf("leaf pattern %v, want %v", j.LeafPattern().Flows, want)
	}
	// The tenant pattern is the union over active jobs in submission
	// order; the empty pad job contributes nothing.
	if got := s.TenantPattern().Flows; !reflect.DeepEqual(got, want) {
		t.Fatalf("tenant pattern %v, want %v", got, want)
	}
}

func TestReoptimizeRefitsToTenantPattern(t *testing.T) {
	// The d-mod-k funnel on a slimmed tree: every leaf of switch 0
	// sends to a distinct destination in one mod-w residue class, so
	// d-mod-k funnels all flows through one top link and the optimizer
	// must find a strictly better table.
	f := testFabric(t, 4, true)
	s := newScheduler(t, f, "linear")
	funnel := pattern.New(64)
	for r := 0; r < 8; r++ {
		funnel.Add(r, 8+r*4, 1)
	}
	j, err := s.Submit(sched.JobSpec{Name: "funnel", N: 64, Phases: []*pattern.Pattern{funnel}})
	if err != nil {
		t.Fatal(err)
	}
	res, ran, err := s.Reoptimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ran || !res.Swapped {
		t.Fatalf("reoptimize did not swap: ran=%v %+v", ran, res)
	}
	if res.Current != 8 {
		t.Errorf("funnel slowdown under d-mod-k = %v, want 8", res.Current)
	}
	if f.Stats().Algo == "d-mod-k" {
		t.Errorf("fabric still serves d-mod-k after swap")
	}
	// Releasing the tenant and re-optimizing is a no-op pass (no
	// observed flows -> below MinFlows).
	if err := s.Release(j.ID); err != nil {
		t.Fatal(err)
	}
	res, ran, err = s.Reoptimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ran || res.Swapped || res.Pairs != 0 {
		t.Fatalf("empty-tenant reoptimize: ran=%v %+v", ran, res)
	}
}

func TestReoptimizeWithoutTelemetry(t *testing.T) {
	s := newScheduler(t, testFabric(t, 8, false), "linear")
	if _, ran, err := s.Reoptimize(0); ran || err != nil {
		t.Fatalf("reoptimize on a telemetry-less fabric: ran=%v err=%v", ran, err)
	}
	if s.SyncTelemetry() {
		t.Fatal("SyncTelemetry reported success without telemetry")
	}
}

func TestSyncTelemetryMirrorsTenants(t *testing.T) {
	f := testFabric(t, 8, true)
	s := newScheduler(t, f, "linear")
	ph := pattern.New(2)
	ph.Add(0, 1, 3)
	if _, err := s.Submit(sched.JobSpec{Name: "t", N: 2, Phases: []*pattern.Pattern{ph}}); err != nil {
		t.Fatal(err)
	}
	// Stray observed traffic is replaced, not accumulated.
	f.Telemetry().Record(5, 6)
	if !s.SyncTelemetry() {
		t.Fatal("SyncTelemetry failed")
	}
	if got := f.Telemetry().Count(0, 1); got != 3 {
		t.Errorf("counter (0,1) = %d, want 3", got)
	}
	if got := f.Telemetry().Count(5, 6); got != 0 {
		t.Errorf("stray counter survived sync: %d", got)
	}
}

// TestSubmitReleaseRacingResolveBatch hammers the scheduler's
// Submit/Release/Reoptimize path while a resolver floods
// ResolveBatch, under -race: placement must never disturb the
// lock-free resolve path.
func TestSubmitReleaseRacingResolveBatch(t *testing.T) {
	f := testFabric(t, 4, true)
	s := newScheduler(t, f, "balanced")
	n := f.Topology().Leaves()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pairs := make([][2]int, 256)
			out := make([]xgft.Route, len(pairs))
			for i := range pairs {
				pairs[i] = [2]int{(i + w) % n, (i * 7) % n}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := f.ResolveBatch(pairs, out); got != len(pairs) {
					// Healthy fabric: everything must resolve.
					t.Errorf("resolved %d/%d", got, len(pairs))
					return
				}
			}
		}(w)
	}
	// A second optimizer client: concurrent Reoptimize/SyncTelemetry
	// calls must serialize their Reset+Record rewrites instead of
	// interleaving them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.SyncTelemetry()
			if _, _, err := s.Reoptimize(0.5); err != nil {
				t.Errorf("concurrent reoptimize: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		j, err := s.Submit(permSpec("churn", 4+i%8, uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, _, err := s.Reoptimize(0.5); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Release(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
