package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/evaluate"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/xgft"
)

// schedSeed domain-separates the scheduler's keyed-hash draws from
// every other consumer of the splitmix64 stream.
const schedSeed = 0x5c4ed

// Request is everything a policy may consult to place one job. The
// scheduler builds it under its mutex, so policies see a frozen pool.
type Request struct {
	// Topo is the fabric's healthy topology.
	Topo *xgft.Topology
	// Free lists the free leaves, ascending.
	Free []int
	// N is the job size; len(Free) >= N is guaranteed.
	N int
	// JobID is the identity the job will get: the only per-job
	// randomness key, so a policy's draw is a pure function of
	// (seed, job id) and replays identically.
	JobID uint64
	// Seed is the scheduler's seed.
	Seed uint64
	// Pattern is the job's aggregate rank-space traffic.
	Pattern *pattern.Pattern
	// Background is the traffic currently observed on the fabric in
	// leaf space: the telemetry snapshot when the fabric counts
	// flows, otherwise the combined pattern of the placed tenants.
	Background *pattern.Pattern
	// Resolve returns the fabric's currently installed route for a
	// leaf pair (one consistent generation for the whole placement).
	Resolve func(src, dst int) (xgft.Route, bool)
	// Evaluator scores candidate allocations for traffic-aware
	// policies. The scheduler fills it in from its configuration; a
	// hand-built request may leave it nil, which scores with the
	// analytic default.
	Evaluator evaluate.Evaluator
	// FullRescore forces the telemetry policy onto its from-scratch
	// path: every candidate re-embeds the job into the background and
	// is scored by a full evaluator pass, instead of applying the
	// job as a pattern-delta to a shared background LoadState.
	// Scores and placements are bit-identical either way; the flag
	// exists for that comparison (the churn sweep's full mode).
	FullRescore bool
	// Metrics, when set, attaches the evaluate_* delta instruments to
	// the background LoadState the telemetry policy scores against.
	Metrics *obs.Registry
}

// Policy chooses leaves for a job. Place must return exactly req.N
// distinct free leaves in ascending order, and must be deterministic
// in its request (no shared RNG, index-order tie-breaking) — the
// property that keeps concurrent churn sweeps byte-identical.
type Policy interface {
	Name() string
	Place(req *Request) ([]int, error)
}

// Linear is first-fit contiguous: the first run of N consecutive
// free leaves, falling back to the N lowest-indexed free leaves when
// fragmentation has destroyed every large-enough hole. The contiguous
// case generalizes the paper's sequential mapping to a busy cluster.
func Linear() Policy { return linearPolicy{} }

type linearPolicy struct{}

func (linearPolicy) Name() string { return "linear" }

func (linearPolicy) Place(req *Request) ([]int, error) {
	free := req.Free
	start := 0
	for i := range free {
		if i > 0 && free[i] != free[i-1]+1 {
			start = i
		}
		if i-start+1 == req.N {
			return append([]int(nil), free[start:i+1]...), nil
		}
	}
	// No hole is big enough: scatter over the lowest free leaves.
	return append([]int(nil), free[:req.N]...), nil
}

// Random places the job on a uniform subset of the free leaves drawn
// from the keyed splitmix64 stream under (seed, job id) — the
// placement analogue of the Random routing baseline, and like it a
// deterministic function of its key.
func Random() Policy { return randomPolicy{} }

type randomPolicy struct{}

func (randomPolicy) Name() string { return "random" }

func (randomPolicy) Place(req *Request) ([]int, error) {
	perm := pattern.KeyedPerm(len(req.Free), hashutil.Mix(schedSeed, req.Seed, req.JobID))
	leaves := make([]int, req.N)
	for i := range leaves {
		leaves[i] = req.Free[perm[i]]
	}
	sort.Ints(leaves)
	return leaves, nil
}

// Balanced spreads jobs across the top-level subtrees: each
// allocation drains the subtree with the most free leaves first, so
// successive jobs land in different subtrees, every job occupies the
// fewest subtrees the pool allows, and tenants share as few NCA
// (top-level) links as possible. Ties break on the lowest subtree
// index; leaves within a subtree are taken in ascending order.
func Balanced() Policy { return balancedPolicy{} }

type balancedPolicy struct{}

func (balancedPolicy) Name() string { return "balanced" }

// subtreeOf maps a leaf to its top-level subtree: the most
// significant M-digit of its label (radix m_h). Two leaves in the
// same subtree reach each other below the roots; two in different
// subtrees must cross a top-level NCA link.
func subtreeOf(t *xgft.Topology, leaf int) int {
	return leaf / (t.Leaves() / t.M(t.Height()-1))
}

func (balancedPolicy) Place(req *Request) ([]int, error) {
	nSub := req.Topo.M(req.Topo.Height() - 1)
	bySub := make([][]int, nSub)
	for _, l := range req.Free {
		g := subtreeOf(req.Topo, l)
		bySub[g] = append(bySub[g], l)
	}
	leaves := make([]int, 0, req.N)
	for len(leaves) < req.N {
		best := -1
		for g := range bySub {
			if len(bySub[g]) == 0 {
				continue
			}
			if best < 0 || len(bySub[g]) > len(bySub[best]) {
				best = g
			}
		}
		take := req.N - len(leaves)
		if take > len(bySub[best]) {
			take = len(bySub[best])
		}
		leaves = append(leaves, bySub[best][:take]...)
		bySub[best] = bySub[best][take:]
	}
	sort.Ints(leaves)
	return leaves, nil
}

// telemetryCandidates is how many keyed-random draws the telemetry
// policy scores besides the linear and balanced proposals.
const telemetryCandidates = 4

// Telemetry scores candidate allocations — the linear proposal, the
// balanced proposal, and a few keyed-random draws — by embedding the
// job's remapped pattern into the currently observed background flows
// and scoring the combination under the fabric's installed routes
// with the request's evaluator (the analytic slowdown bound by
// default). The lowest score wins; ties break on candidate order.
// This is the placement counterpart of the fabric's telemetry-driven
// table optimizer: the same observed-traffic signal, steering
// allocation instead of routing.
//
// Under the analytic evaluator the background is materialized once
// into an evaluate.LoadState and each candidate is scored by applying
// its remapped job flows as a pattern-delta and reverting —
// O(job flows) per candidate instead of re-resolving and re-scoring
// the whole background. Request.FullRescore (or a non-analytic
// evaluator) selects the from-scratch path; both produce bit-identical
// scores and therefore identical placements.
func Telemetry() Policy { return telemetryPolicy{} }

type telemetryPolicy struct{}

func (telemetryPolicy) Name() string { return "telemetry" }

func (telemetryPolicy) Place(req *Request) ([]int, error) {
	cands := make([][]int, 0, 2+telemetryCandidates)
	if c, err := Linear().Place(req); err == nil {
		cands = append(cands, c)
	}
	if c, err := Balanced().Place(req); err == nil {
		cands = append(cands, c)
	}
	for i := 0; i < telemetryCandidates; i++ {
		perm := pattern.KeyedPerm(len(req.Free), hashutil.Mix(schedSeed, req.Seed, req.JobID, uint64(i)+1))
		c := make([]int, req.N)
		for j := range c {
			c[j] = req.Free[perm[j]]
		}
		sort.Ints(c)
		cands = append(cands, c)
	}
	ls := backgroundLoadState(req)
	best, bestScore := -1, 0.0
	for i, cand := range cands {
		var score float64
		var err error
		if ls != nil {
			score, err = scorePlacementDelta(req, ls, cand)
		} else {
			score, err = scorePlacement(req, cand)
		}
		if err != nil {
			return nil, err
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return cands[best], nil
}

// backgroundLoadState materializes the background traffic's per-link
// loads under the installed routes, shared across every candidate of
// one placement. nil selects the from-scratch path: an explicit
// FullRescore, or an evaluator whose score is not a pure per-link
// load function (anything non-analytic).
func backgroundLoadState(req *Request) *evaluate.LoadState {
	if req.FullRescore {
		return nil
	}
	if req.Evaluator != nil && req.Evaluator.Name() != evaluate.Analytic {
		return nil
	}
	n := req.Topo.Leaves()
	q := pattern.New(n)
	var routes []xgft.Route
	for _, fl := range req.Background.Flows {
		if fl.Src == fl.Dst {
			continue
		}
		r, ok := req.Resolve(fl.Src, fl.Dst)
		if !ok {
			continue
		}
		q.Add(fl.Src, fl.Dst, fl.Bytes)
		routes = append(routes, r)
	}
	ls, err := evaluate.NewLoadState(req.Topo, q, routes)
	if err != nil {
		return nil
	}
	if req.Metrics != nil {
		ls.Instrument(req.Metrics)
	}
	return ls
}

// scorePlacementDelta scores one candidate by applying the job's
// remapped flows as a pattern-delta to the shared background
// LoadState and reverting. Flow inclusion mirrors scorePlacement
// exactly — self-flows and pairs the fabric cannot resolve are
// dropped — and the loads are exact int64 sums, so the score is
// bit-identical to the from-scratch path.
func scorePlacementDelta(req *Request, ls *evaluate.LoadState, leaves []int) (float64, error) {
	add := make([]evaluate.RoutedFlow, 0, len(req.Pattern.Flows))
	for _, fl := range req.Pattern.Flows {
		src, dst := leaves[fl.Src], leaves[fl.Dst]
		if src == dst {
			continue
		}
		r, ok := req.Resolve(src, dst)
		if !ok {
			continue
		}
		add = append(add, evaluate.RoutedFlow{Route: r, Bytes: fl.Bytes})
	}
	if err := ls.ApplyPatternDelta(add, nil); err != nil {
		return 0, err
	}
	score := ls.Slowdown()
	if err := ls.ApplyPatternDelta(nil, add); err != nil {
		return 0, err
	}
	return score, nil
}

// scorePlacement embeds the job (remapped onto the candidate leaves)
// into the background flows and scores the combination under the
// fabric's installed routes with the request's evaluator. Pairs the
// fabric cannot currently resolve (severed by faults) are dropped
// from the scored pattern, mirroring fabric.Optimize's scoring rule.
func scorePlacement(req *Request, leaves []int) (float64, error) {
	n := req.Topo.Leaves()
	combined := pattern.New(n)
	combined.Flows = append(combined.Flows, req.Background.Flows...)
	for _, fl := range req.Pattern.Flows {
		combined.Add(leaves[fl.Src], leaves[fl.Dst], fl.Bytes)
	}
	q := pattern.New(n)
	routes := make([]xgft.Route, 0, len(combined.Flows))
	for _, fl := range combined.Flows {
		if fl.Src == fl.Dst {
			continue
		}
		r, ok := req.Resolve(fl.Src, fl.Dst)
		if !ok {
			continue
		}
		q.Add(fl.Src, fl.Dst, fl.Bytes)
		routes = append(routes, r)
	}
	ev := req.Evaluator
	if ev == nil {
		ev = evaluate.NewAnalytic(nil)
	}
	res, err := ev.ScoreRoutes(req.Topo, q, routes)
	if err != nil {
		return 0, err
	}
	return res.Slowdown, nil
}

// PolicyNames lists the selectable policies in presentation order.
func PolicyNames() []string { return []string{"linear", "random", "balanced", "telemetry"} }

// PolicyByName resolves a policy by its command-line name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "linear":
		return Linear(), nil
	case "random":
		return Random(), nil
	case "balanced":
		return Balanced(), nil
	case "telemetry":
		return Telemetry(), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (want %s)", name, strings.Join(PolicyNames(), ", "))
	}
}
