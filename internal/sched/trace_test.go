package sched_test

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

// TestPlacementSpans: every submission — accepted or rejected —
// records one sched.place span carrying the outcome.
func TestPlacementSpans(t *testing.T) {
	tr := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 16})
	p, err := sched.PolicyByName("linear")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sched.Config{Fabric: testFabric(t, 8, false), Policy: p, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}

	job, err := s.Submit(permSpec("a", 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(permSpec("big", 99, 1)); err == nil {
		t.Fatal("oversized job accepted")
	}

	recs := tr.Spans(0)
	if len(recs) != 2 {
		t.Fatalf("recorded %d spans, want 2: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Name != "sched.place" {
			t.Fatalf("span %q, want sched.place", r.Name)
		}
	}
	// Flight-recorder order is oldest-first: accept, then reject.
	acc, rej := recs[0], recs[1]
	if acc.Attrs["placed"] != 1 || acc.Attrs["job"] != int64(job.ID) || acc.Attrs["n"] != 8 {
		t.Errorf("accept span attrs = %v", acc.Attrs)
	}
	if rej.Attrs["placed"] != 0 || rej.Attrs["n"] != 99 {
		t.Errorf("reject span attrs = %v", rej.Attrs)
	}
	if _, ok := rej.Attrs["job"]; ok {
		t.Errorf("reject span carries a job id: %v", rej.Attrs)
	}

	names := map[string]bool{}
	for _, n := range sched.SpanNames() {
		names[n] = true
	}
	for _, n := range tr.Names() {
		if !names[n] {
			t.Errorf("span %q recorded but missing from SpanNames()", n)
		}
	}
}
