package sched_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/xgft"
)

// benchScheduler builds a telemetry-policy scheduler on the
// acceptance topology XGFT(2;16,16;1,10) with a heavy resident tenant
// mix — six all-to-all jobs whose combined flows are the background
// every probe placement must score against.
func benchScheduler(b *testing.B, fullRescore bool) *sched.Scheduler {
	b.Helper()
	tp, err := xgft.NewSlimmedTree(16, 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fabric.New(fabric.Config{Topo: tp, Algo: core.NewDModK(tp)})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sched.PolicyByName("telemetry")
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.New(sched.Config{Fabric: f, Policy: p, FullRescore: fullRescore})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		spec := sched.JobSpec{
			Name:   fmt.Sprintf("tenant%d", i),
			N:      16,
			Phases: []*pattern.Pattern{pattern.AllToAll(16, 4096)},
		}
		if _, err := s.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// benchPlace times one probe placement (submit + release) against the
// resident background: the telemetry policy scores six candidate
// allocations per submission, which is where the delta and
// from-scratch paths part ways.
func benchPlace(b *testing.B, s *sched.Scheduler) {
	b.Helper()
	spec := permSpec("probe", 16, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Release(j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceIncremental prices a telemetry-policy placement on
// the delta path: the background materializes into one LoadState and
// each candidate costs O(job flows).
func BenchmarkPlaceIncremental(b *testing.B) {
	benchPlace(b, benchScheduler(b, false))
}

// BenchmarkPlaceFullRescore is the same placement forced onto the
// from-scratch path: every candidate re-embeds the job into the
// background and pays a full census.
func BenchmarkPlaceFullRescore(b *testing.B) {
	benchPlace(b, benchScheduler(b, true))
}
