// Package sched is the multi-tenant job scheduler: it owns the leaf
// pool of a serving fabric and decides which leaves each job gets.
// The paper evaluates routing for one workload occupying the whole
// XGFT; a production cluster runs many concurrent jobs, and their
// placement decides which routes ever carry traffic — placement
// quality and routing quality interact. The scheduler closes that
// loop: jobs (a size plus an application-style traffic profile) are
// placed by pluggable policies, the job's rank-space pattern is
// remapped onto the allocated leaves (dimemas.MappingFromLeaves), and
// the combined tenant traffic can be pushed back into the fabric's
// telemetry so the pattern-aware optimizer re-fits the routing table
// to what the cluster actually runs.
//
// Every policy is a pure function of (scheduler state, job id, seed):
// there is no shared RNG and every tie is broken by index order, so
// concurrent sweeps over scheduler runs stay byte-identical.
package sched

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dimemas"
	"repro/internal/evaluate"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/trace"
	"repro/internal/xgft"
)

// ErrNoCapacity reports a job that does not fit the free pool. It is
// a sentinel (errors.Is) so servers can map it to "try again later"
// rather than "bad request".
var ErrNoCapacity = fmt.Errorf("sched: not enough free leaves")

// Config parameterizes a scheduler.
type Config struct {
	// Fabric is the serving fabric whose leaf pool the scheduler
	// owns. Required: placement policies read its current routes and
	// Reoptimize feeds its telemetry.
	Fabric *fabric.Fabric
	// Policy places jobs; nil selects Linear (the paper's sequential
	// mapping generalized to a busy cluster).
	Policy Policy
	// Seed keys the random policy's draws and the telemetry policy's
	// candidate allocations. Defaults to 1, so runs are reproducible.
	Seed uint64
	// Evaluator scores candidate allocations for traffic-aware
	// policies; nil adopts the fabric's evaluator, so scheduler and
	// optimizer judge "better" with the same backend by default.
	Evaluator evaluate.Evaluator
	// FullRescore forces the telemetry policy's from-scratch scoring
	// path (see Request.FullRescore); placements are bit-identical
	// either way.
	FullRescore bool
	// Metrics, when set, registers the sched_* instruments (placement
	// counters and latency, pool gauges) on the registry.
	Metrics *obs.Registry
	// Journal, when set, receives job.submit / job.release /
	// job.reject events.
	Journal *obs.Journal
	// Tracer, when set, records a sched.place span per submission
	// (accepted or rejected), so placement latency shows up in the
	// same flight recorder as the resolve traffic it shapes.
	Tracer *trace.Tracer
}

// schedMetrics are the registry instruments a scheduler records into.
// The placements counter carries the policy as a constant label, so
// side-by-side schedulers stay distinguishable on one registry.
type schedMetrics struct {
	placements    *obs.Counter
	releases      *obs.Counter
	rejections    *obs.Counter
	placeNS       *obs.Histogram
	jobs          *obs.Gauge
	freeLeaves    *obs.Gauge
	fragmentation *obs.Gauge
}

// Metric and journal-event names as constants (one placements
// variant per policy: the label set is closed, and constants are what
// repolint's obskeys pass can check against the inventory).
const (
	metricPlacementsLinear    = `sched_placements_total{policy="linear"}`
	metricPlacementsRandom    = `sched_placements_total{policy="random"}`
	metricPlacementsBalanced  = `sched_placements_total{policy="balanced"}`
	metricPlacementsTelemetry = `sched_placements_total{policy="telemetry"}`
	metricReleases            = "sched_releases_total"
	metricRejections          = "sched_rejections_total"
	metricPlaceNS             = "sched_place_ns"
	metricJobs                = "sched_jobs"
	metricFreeLeaves          = "sched_free_leaves"
	metricFragmentation       = "sched_fragmentation"

	eventJobSubmit  = "job.submit"
	eventJobReject  = "job.reject"
	eventJobRelease = "job.release"

	spanPlace = "sched.place"

	attrJob    = "job"
	attrN      = "n"
	attrPlaced = "placed"
)

// SpanNames lists every span name the scheduler can record, for the
// docs-drift check and the fabricd trace inventory.
func SpanNames() []string { return []string{spanPlace} }

// placementsMetric maps a policy name to its labeled counter name. A
// future policy must add its constant (and README row) here; until it
// does it shares the linear counter rather than minting an unchecked
// name at runtime.
func placementsMetric(policy string) string {
	switch policy {
	case "random":
		return metricPlacementsRandom
	case "balanced":
		return metricPlacementsBalanced
	case "telemetry":
		return metricPlacementsTelemetry
	default:
		return metricPlacementsLinear
	}
}

func newSchedMetrics(reg *obs.Registry, policy string) *schedMetrics {
	return &schedMetrics{
		//lint:allow obskeys the name is one of the four per-policy constants selected by placementsMetric
		placements:    reg.Counter(placementsMetric(policy), "jobs placed", 1),
		releases:      reg.Counter(metricReleases, "jobs released", 1),
		rejections:    reg.Counter(metricRejections, "submissions rejected (capacity or invalid spec)", 1),
		placeNS:       reg.Histogram(metricPlaceNS, "placement decision latency"),
		jobs:          reg.Gauge(metricJobs, "active jobs"),
		freeLeaves:    reg.Gauge(metricFreeLeaves, "unallocated leaves"),
		fragmentation: reg.Gauge(metricFragmentation, "free-pool fragmentation (1 - largest_free/free)"),
	}
}

// JobSpec describes a submission: a size and an application-style
// traffic profile (communication phases over N ranks, the shape of
// experiments.App).
type JobSpec struct {
	// Name is a free-form label ("wrf-32").
	Name string
	// N is the number of leaves requested (one rank per leaf).
	N int
	// Phases are the job's communication phases; every phase must be
	// a pattern over exactly N endpoints. An empty profile is legal
	// (a compute-only job still occupies leaves).
	Phases []*pattern.Pattern
}

// Job is a placed job. Jobs are immutable after placement; the
// scheduler hands out the same *Job it stores, so callers must not
// mutate the slices.
type Job struct {
	// ID is the scheduler-assigned identity (1, 2, ... in submission
	// order).
	ID uint64
	// Name, N and Phases echo the spec.
	Name   string
	N      int
	Phases []*pattern.Pattern
	// Policy names the policy that placed the job.
	Policy string
	// Leaves is the allocation, ascending; rank r runs on Leaves[r].
	Leaves []int

	leafPhases []*pattern.Pattern // phases remapped onto Leaves
	leafAll    *pattern.Pattern   // union of leafPhases
}

// Mapping returns the rank -> leaf mapping (a copy), the exact form
// dimemas.Config.Mapping consumes for replaying the job's trace onto
// its allocation.
func (j *Job) Mapping() []int { return append([]int(nil), j.Leaves...) }

// LeafPhases returns the job's communication phases remapped onto the
// allocated leaves (patterns over the fabric's leaf count).
func (j *Job) LeafPhases() []*pattern.Pattern { return j.leafPhases }

// LeafPattern returns the union of the remapped phases: the job's
// aggregate traffic in leaf space.
func (j *Job) LeafPattern() *pattern.Pattern { return j.leafAll }

// JobInfo is the reporting view of a placed job.
type JobInfo struct {
	ID     uint64
	Name   string
	N      int
	Leaves []int
}

// Snapshot is a consistent view of the scheduler's pool: the active
// jobs in submission order plus the free-block census the churn sweep
// tracks over time.
type Snapshot struct {
	Policy string
	// Leaves and Free count the pool and its unallocated part.
	Leaves int
	Free   int
	// Jobs lists the active jobs in submission order.
	Jobs []JobInfo
	// FreeBlocks counts the maximal runs of contiguous free leaves;
	// LargestFree is the longest such run.
	FreeBlocks  int
	LargestFree int
	// Fragmentation is 1 - LargestFree/Free: 0 when the free pool is
	// one contiguous block (or empty), approaching 1 as it shatters.
	Fragmentation float64
}

// Scheduler owns a fabric's leaf pool. All methods are safe for
// concurrent use; placement and release serialize on an internal
// mutex while the fabric's resolve path stays lock-free.
type Scheduler struct {
	f      *fabric.Fabric
	topo   *xgft.Topology
	policy Policy
	seed   uint64
	eval   evaluate.Evaluator
	full   bool          // force from-scratch placement scoring
	reg    *obs.Registry // nil when metrics are disabled

	m       *schedMetrics
	journal *obs.Journal
	tracer  *trace.Tracer

	mu     sync.Mutex
	nextID uint64          // guarded by mu
	free   []bool          // free[leaf]; guarded by mu
	nFree  int             // guarded by mu
	jobs   map[uint64]*Job // guarded by mu
	order  []uint64        // active job IDs in submission order; guarded by mu
}

// New builds a scheduler owning the fabric's full leaf pool.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("sched: Config.Fabric is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = Linear()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = cfg.Fabric.Evaluator()
	}
	topo := cfg.Fabric.Topology()
	s := &Scheduler{
		f:      cfg.Fabric,
		topo:   topo,
		policy: cfg.Policy,
		seed:   cfg.Seed,
		eval:   cfg.Evaluator,
		full:   cfg.FullRescore,
		reg:    cfg.Metrics,
		free:   make([]bool, topo.Leaves()),
		nFree:  topo.Leaves(),
		jobs:   make(map[uint64]*Job),
	}
	for i := range s.free {
		s.free[i] = true
	}
	if cfg.Metrics != nil {
		s.m = newSchedMetrics(cfg.Metrics, cfg.Policy.Name())
	}
	s.journal = cfg.Journal
	s.tracer = cfg.Tracer
	s.mu.Lock()
	s.poolGaugesLocked()
	s.mu.Unlock()
	return s, nil
}

// Fabric returns the fabric whose pool the scheduler owns.
func (s *Scheduler) Fabric() *fabric.Fabric { return s.f }

// Policy returns the placement policy's name.
func (s *Scheduler) Policy() string { return s.policy.Name() }

// Submit validates the spec, asks the policy for an allocation, and
// places the job. It returns ErrNoCapacity (wrapped) when fewer than
// spec.N leaves are free; any other error means the spec was invalid
// or the policy misbehaved, and the pool is unchanged either way.
func (s *Scheduler) Submit(spec JobSpec) (job *Job, err error) {
	start := time.Now() //lint:allow nondeterminism placement latency measurement is observational
	// The placement span records every submission's outcome; its
	// duration is the same decision latency the sched_place_ns
	// histogram sees, so a slow policy trips the span budget anomaly.
	sp := s.tracer.StartSpan(trace.SpanContext{}, spanPlace)
	defer func() {
		sp.SetAttr(attrN, int64(spec.N))
		if job != nil {
			sp.SetAttr(attrJob, int64(job.ID))
			sp.SetAttr(attrPlaced, 1)
		} else {
			sp.SetAttr(attrPlaced, 0)
		}
		sp.End()
	}()
	if spec.N < 1 || spec.N > s.topo.Leaves() {
		return nil, s.reject(spec, start, fmt.Errorf("sched: job size %d out of range [1,%d]", spec.N, s.topo.Leaves()))
	}
	for i, ph := range spec.Phases {
		if ph == nil {
			return nil, s.reject(spec, start, fmt.Errorf("sched: phase %d is nil", i))
		}
		if ph.N != spec.N {
			return nil, s.reject(spec, start, fmt.Errorf("sched: phase %d is over %d endpoints, want %d", i, ph.N, spec.N))
		}
		if err := ph.Validate(); err != nil {
			return nil, s.reject(spec, start, fmt.Errorf("sched: phase %d: %w", i, err))
		}
	}
	all := unionPhases(spec.N, spec.Phases)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nFree < spec.N {
		return nil, s.reject(spec, start, fmt.Errorf("%w: %d requested, %d free", ErrNoCapacity, spec.N, s.nFree))
	}
	id := s.nextID + 1
	// Background traffic for pattern-aware policies: what the fabric
	// has actually observed when it counts flows, the composed tenant
	// pattern otherwise (a fresh telemetry window falls back too).
	bg := s.f.SnapshotFlows()
	if bg == nil || len(bg.Flows) == 0 {
		bg = s.backgroundLocked()
	}
	req := &Request{
		Topo:        s.topo,
		Free:        s.freeListLocked(),
		N:           spec.N,
		JobID:       id,
		Seed:        s.seed,
		Pattern:     all,
		Background:  bg,
		Resolve:     s.f.Generation().Resolve,
		Evaluator:   s.eval,
		FullRescore: s.full,
		Metrics:     s.reg,
	}
	leaves, err := s.policy.Place(req)
	if err != nil {
		return nil, s.reject(spec, start, fmt.Errorf("sched: policy %s: %w", s.policy.Name(), err))
	}
	if err := s.checkAllocationLocked(leaves, spec.N); err != nil {
		return nil, s.reject(spec, start, fmt.Errorf("sched: policy %s returned an invalid allocation: %w", s.policy.Name(), err))
	}
	mapping, err := dimemas.MappingFromLeaves(leaves, spec.N)
	if err != nil {
		return nil, s.reject(spec, start, fmt.Errorf("sched: policy %s returned an invalid allocation: %w", s.policy.Name(), err))
	}
	job = &Job{
		ID:     id,
		Name:   spec.Name,
		N:      spec.N,
		Phases: append([]*pattern.Pattern(nil), spec.Phases...),
		Policy: s.policy.Name(),
		Leaves: leaves,
	}
	job.leafPhases = make([]*pattern.Pattern, len(spec.Phases))
	for i, ph := range spec.Phases {
		job.leafPhases[i] = RemapPattern(ph, mapping, s.topo.Leaves())
	}
	job.leafAll = RemapPattern(all, mapping, s.topo.Leaves())
	for _, l := range leaves {
		s.free[l] = false
	}
	s.nFree -= spec.N
	s.nextID = id
	s.jobs[id] = job
	s.order = append(s.order, id)
	dur := time.Since(start) //lint:allow nondeterminism placement latency measurement is observational
	if s.m != nil {
		s.m.placements.Inc()
		s.m.placeNS.Observe(dur.Nanoseconds())
		s.poolGaugesLocked()
	}
	if s.journal != nil {
		s.journal.Record(eventJobSubmit, dur, map[string]any{
			"job": id, "name": spec.Name, "n": spec.N,
			"policy": job.Policy, "leaves": job.Leaves, "free": s.nFree,
		})
	}
	return job, nil
}

// reject is the Submit error path: count it, journal it, pass the
// error through.
func (s *Scheduler) reject(spec JobSpec, start time.Time, err error) error {
	if s.m != nil {
		s.m.rejections.Inc()
	}
	if s.journal != nil {
		s.journal.Record(eventJobReject, time.Since(start), map[string]any{ //lint:allow nondeterminism journal duration is observational
			"name": spec.Name, "n": spec.N, "error": err.Error(),
		})
	}
	return err
}

// Release frees a job's leaves. Unknown IDs are an error (the job may
// have already been released).
func (s *Scheduler) Release(id uint64) error {
	start := time.Now() //lint:allow nondeterminism release latency measurement is observational
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("sched: no job %d", id)
	}
	for _, l := range job.Leaves {
		s.free[l] = true
	}
	s.nFree += len(job.Leaves)
	delete(s.jobs, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.m != nil {
		s.m.releases.Inc()
		s.poolGaugesLocked()
	}
	if s.journal != nil {
		s.journal.Record(eventJobRelease, time.Since(start), map[string]any{ //lint:allow nondeterminism journal duration is observational
			"job": id, "name": job.Name, "n": job.N, "free": s.nFree,
		})
	}
	return nil
}

// Job returns a placed job by ID.
func (s *Scheduler) Job(id uint64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the active jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Snapshot returns the pool census: active jobs in submission order
// plus the free-block fragmentation figures.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Policy: s.policy.Name(),
		Leaves: s.topo.Leaves(),
		Free:   s.nFree,
	}
	for _, id := range s.order {
		j := s.jobs[id]
		snap.Jobs = append(snap.Jobs, JobInfo{
			ID:     j.ID,
			Name:   j.Name,
			N:      j.N,
			Leaves: append([]int(nil), j.Leaves...),
		})
	}
	snap.FreeBlocks, snap.LargestFree, snap.Fragmentation = s.censusLocked()
	return snap
}

// censusLocked counts the maximal runs of contiguous free leaves and
// the fragmentation figure derived from them.
func (s *Scheduler) censusLocked() (blocks, largest int, frag float64) {
	run := 0
	for _, f := range s.free {
		if f {
			run++
			if run == 1 {
				blocks++
			}
			if run > largest {
				largest = run
			}
		} else {
			run = 0
		}
	}
	if s.nFree > 0 {
		frag = 1 - float64(largest)/float64(s.nFree)
	}
	return blocks, largest, frag
}

// poolGaugesLocked refreshes the pool gauges after a placement or
// release.
func (s *Scheduler) poolGaugesLocked() {
	if s.m == nil {
		return
	}
	_, _, frag := s.censusLocked()
	s.m.jobs.Set(float64(len(s.order)))
	s.m.freeLeaves.Set(float64(s.nFree))
	s.m.fragmentation.Set(frag)
}

// TenantPattern returns the union of every active job's leaf-space
// traffic: the combined pattern the cluster currently runs, in
// submission order (deterministic fingerprint).
func (s *Scheduler) TenantPattern() *pattern.Pattern {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backgroundLocked()
}

// SyncTelemetry rewrites the fabric's flow counters to exactly the
// combined tenant pattern, so "observed traffic" means "what the
// placed jobs run" even before any of them resolves a route. It
// reports false when the fabric's telemetry is disabled. The rewrite
// happens under the scheduler's mutex, so concurrent syncs never
// interleave their Reset and Record halves.
func (s *Scheduler) SyncTelemetry() bool {
	tel := s.f.Telemetry()
	if tel == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncTelemetryLocked(tel)
	return true
}

func (s *Scheduler) syncTelemetryLocked(tel *fabric.Telemetry) {
	p := s.backgroundLocked()
	tel.Reset()
	for _, fl := range p.Flows {
		if fl.Src != fl.Dst && fl.Bytes > 0 {
			tel.RecordN(fl.Src, fl.Dst, uint64(fl.Bytes))
		}
	}
}

// Reoptimize pushes the combined tenant pattern into the fabric's
// telemetry and runs one threshold-gated optimizer pass over it, so a
// submission or release can immediately re-fit the routing table to
// the new tenant mix. ran is false (with a zero result and nil error)
// when the fabric's telemetry is disabled. The scheduler's mutex is
// held through the pass: concurrent Reoptimize calls serialize, and
// the optimizer always scores the tenant mix the sync wrote (resolve
// traffic stays lock-free on the fabric).
func (s *Scheduler) Reoptimize(threshold float64) (res fabric.OptimizeResult, ran bool, err error) {
	tel := s.f.Telemetry()
	if tel == nil {
		return fabric.OptimizeResult{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncTelemetryLocked(tel)
	res, err = s.f.Optimize(fabric.OptimizeConfig{
		Threshold: threshold,
		Seed:      s.seed,
		Reset:     true,
	})
	return res, true, err
}

// freeListLocked returns the free leaves in ascending order.
func (s *Scheduler) freeListLocked() []int {
	out := make([]int, 0, s.nFree)
	for l, f := range s.free {
		if f {
			out = append(out, l)
		}
	}
	return out
}

// backgroundLocked unions the active jobs' leaf patterns in
// submission order.
func (s *Scheduler) backgroundLocked() *pattern.Pattern {
	bg := pattern.New(s.topo.Leaves())
	for _, id := range s.order {
		bg.Flows = append(bg.Flows, s.jobs[id].leafAll.Flows...)
	}
	return bg
}

// checkAllocationLocked verifies a policy's allocation: exactly n
// leaves, ascending, distinct, in range, and currently free.
func (s *Scheduler) checkAllocationLocked(leaves []int, n int) error {
	if len(leaves) != n {
		return fmt.Errorf("%d leaves for a job of size %d", len(leaves), n)
	}
	for i, l := range leaves {
		if l < 0 || l >= s.topo.Leaves() {
			return fmt.Errorf("leaf %d out of range", l)
		}
		if i > 0 && leaves[i-1] >= l {
			return fmt.Errorf("leaves not strictly ascending at index %d", i)
		}
		if !s.free[l] {
			return fmt.Errorf("leaf %d is not free", l)
		}
	}
	return nil
}

// RemapPattern lifts a rank-space pattern onto a placement: flow
// (src, dst) becomes (mapping[src], mapping[dst]) over a pattern of
// leaves endpoints. Flow order (and with it the fingerprint) is
// preserved.
func RemapPattern(p *pattern.Pattern, mapping []int, leaves int) *pattern.Pattern {
	out := &pattern.Pattern{N: leaves, Flows: make([]pattern.Flow, len(p.Flows))}
	for i, fl := range p.Flows {
		out.Flows[i] = pattern.Flow{Src: mapping[fl.Src], Dst: mapping[fl.Dst], Bytes: fl.Bytes}
	}
	return out
}

// unionPhases merges a job's phases into its aggregate pattern.
func unionPhases(n int, phases []*pattern.Pattern) *pattern.Pattern {
	all := pattern.New(n)
	for _, ph := range phases {
		all.Flows = append(all.Flows, ph.Flows...)
	}
	return all
}
