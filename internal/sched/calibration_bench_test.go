package sched_test

import (
	"testing"

	"repro/internal/benchcal"
)

// BenchmarkCalibration is the shared machine-speed reference
// (internal/benchcal): cmd/benchgate divides this package's gated
// benchmarks by its drift ratio so the regression gate tracks code,
// not CI-runner speed.
func BenchmarkCalibration(b *testing.B) { benchcal.Bench(b) }
