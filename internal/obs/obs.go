// Package obs is the fabric-wide observability core: a
// zero-allocation metrics registry (sharded atomic counters, gauges,
// lock-free log-bucketed latency histograms), a bounded control-plane
// event journal with an optional log/slog sink, and Prometheus-text
// exposition. It is the measurement substrate every serving-path
// package records into — the resolve hot path, the wire protocol, the
// scheduler and the evaluator cache — so instruments must be cheap
// enough to live inside paths the bench gate defends: every recording
// operation is a handful of uncontended atomic adds, no locks, no
// allocation, no time lookups of its own.
//
// Registration (naming an instrument) allocates and takes the
// registry mutex; it happens at construction time. Recording (Add,
// Set, Observe) never does. Exposition walks the instruments under
// the registry mutex but reads their values atomically, so it can run
// concurrently with recorders.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// pad fills a cache line so adjacent shards never false-share.
const padBytes = 56

// Counter is a monotonically increasing sharded atomic counter.
// Callers that know a natural shard key (source leaf, connection
// index) spread their adds with AddAt; Add uses shard 0. Value sums
// the shards.
type Counter struct {
	name, help string
	shards     []counterShard
	mask       uint64
}

type counterShard struct {
	v atomic.Uint64
	_ [padBytes]byte
}

// Add increments the counter by n on shard 0.
//
//repro:hotpath
func (c *Counter) Add(n uint64) { c.shards[0].v.Add(n) }

// Inc increments the counter by one on shard 0.
//
//repro:hotpath
func (c *Counter) Inc() { c.Add(1) }

// AddAt increments the counter by n on the shard selected by key
// (masked into range), so concurrent writers with distinct keys never
// contend on one cache line.
//
//repro:hotpath
func (c *Counter) AddAt(key uint64, n uint64) { c.shards[key&c.mask].v.Add(n) }

// Value sums the shards.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) write(w *bufio.Writer, header bool) {
	writeHeader(w, header, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// Gauge is an instantaneous float64 value (generation number,
// fragmentation, active connections).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop, safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) write(w *bufio.Writer, header bool) {
	writeHeader(w, header, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// funcMetric exposes a value computed at scrape time — the bridge for
// subsystems that already keep their own atomics (the evaluator
// cache's hit/miss counters) and should not double-count.
type funcMetric struct {
	name, help, kind string
	fn               func() float64
}

func (f *funcMetric) write(w *bufio.Writer, header bool) {
	writeHeader(w, header, f.name, f.help, f.kind)
	fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
}

// metric is anything the registry can expose; header is false when an
// earlier instrument with the same base name already emitted the
// HELP/TYPE lines (constant-labelled siblings share one header).
type metric interface {
	write(w *bufio.Writer, header bool)
}

// Registry names and exposes a process's instruments. The zero value
// is not ready; use NewRegistry. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	order []string          // guarded by mu
	byKey map[string]metric // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

// register installs m under name, or returns the existing instrument
// when the name is already taken. Re-registering a name as a
// different instrument kind is a programming error and panics.
func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[name]; ok {
		if fmt.Sprintf("%T", prev) != fmt.Sprintf("%T", m) {
			panic(fmt.Sprintf("obs: %q re-registered as a different instrument kind", name)) //lint:allow banned kind conflict at registration is a programming error caught at startup
		}
		return prev
	}
	r.byKey[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name, creating it with
// the given shard count (rounded up to a power of two, minimum 1) on
// first use. The name may carry a constant Prometheus label set
// (`wire_frames_total` or `sched_placements_total{policy="linear"}`).
func (r *Registry) Counter(name, help string, shards int) *Counter {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Counter{name: name, help: help, shards: make([]counterShard, n), mask: uint64(n - 1)}
	return r.register(name, c).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// CounterFunc exposes fn as a counter sampled at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "counter", fn: func() float64 { return float64(fn()) }})
}

// GaugeFunc exposes fn as a gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "gauge", fn: fn})
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, newHistogram(name, help)).(*Histogram)
}

// WritePrometheus writes every registered instrument in registration
// order in the Prometheus text exposition format (version 0.0.4).
// Instruments sharing a base name (constant-labelled variants) emit
// one HELP/TYPE header for the first and bare samples after.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]metric, len(names))
	for i, n := range names {
		metrics[i] = r.byKey[n]
	}
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for i, m := range metrics {
		base := baseName(names[i])
		m.write(bw, !seen[base])
		seen[base] = true
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, emit bool, name, help, kind string) {
	if !emit {
		return
	}
	base := baseName(name)
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", base, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
}

// baseName strips a constant label set from a metric name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// labeledName splices a quantile label into a possibly-labelled name:
// h_ns + 0.5 -> h_ns{quantile="0.5"}, h_ns{x="y"} -> h_ns{x="y",quantile="0.5"}.
func labeledName(name, key, value string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:len(name)-1] + `,` + key + `="` + value + `"}`
		}
	}
	return name + `{` + key + `="` + value + `"}`
}

// formatFloat renders floats the Prometheus way: integers without a
// decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot is a point-in-time read of every instrument, keyed by
// metric name — quantile samples appear under labelled names exactly
// as exposed. It is what cmd/fabrictop renders.
type Snapshot map[string]float64

// Snapshot reads every instrument. Histograms contribute their
// quantiles, count, sum and max.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]metric, len(names))
	for i, n := range names {
		metrics[i] = r.byKey[n]
	}
	r.mu.Unlock()
	snap := make(Snapshot, len(names))
	for i, m := range metrics {
		name := names[i]
		switch v := m.(type) {
		case *Counter:
			snap[name] = float64(v.Value())
		case *Gauge:
			snap[name] = v.Value()
		case *funcMetric:
			snap[name] = v.fn()
		case *Histogram:
			for _, q := range exportQuantiles {
				snap[labeledName(name, "quantile", q.label)] = float64(v.Quantile(q.q))
			}
			snap[name+"_count"] = float64(v.Count())
			snap[name+"_sum"] = float64(v.Sum())
			snap[name+"_max"] = float64(v.Max())
		}
	}
	return snap
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}
