package obs

import (
	"bufio"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Histogram buckets: log-linear (HDR-style) over non-negative int64
// values — nanosecond latencies in practice. Values below 2^subBits
// get one bucket each (exact); above, every power-of-two octave is
// split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 1/2^subBits = 12.5%. The whole structure is a
// flat array of atomic counters: Observe is a bucket-index
// computation (a bit scan and two shifts) plus four uncontended
// atomic operations, no locks, no allocation — cheap enough for the
// resolve hot path the bench gate defends.
const (
	subBits    = 3
	subCount   = 1 << subBits
	numBuckets = subCount + (64-subBits)<<subBits // exact region + octaves
)

// exportQuantiles are the quantiles exposition and snapshots report.
var exportQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.9, "0.9"},
	{0.99, "0.99"},
}

// Histogram is a lock-free log-bucketed distribution recorder with
// p50/p90/p99/max readout. The zero value is not ready; histograms
// are created through Registry.Histogram.
type Histogram struct {
	name, help string
	count      atomic.Uint64
	sum        atomic.Int64
	max        atomic.Int64
	buckets    [numBuckets]atomic.Uint64
}

func newHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a non-negative value to its bucket.
//
//repro:hotpath
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 // position of the top bit, >= subBits
	mant := (v >> (exp - subBits)) & (subCount - 1)
	return int((exp-subBits)<<subBits) + int(mant) + subCount
}

// bucketBound returns the largest value mapping to bucket i — the
// value Quantile reports for observations landing there.
func bucketBound(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	u := uint(i - subCount)
	exp := u>>subBits + subBits
	mant := uint64(u & (subCount - 1))
	low := uint64(1)<<exp | mant<<(exp-subBits)
	high := low + 1<<(exp-subBits) - 1
	if high > uint64(1<<63-1) {
		high = 1<<63 - 1
	}
	return int64(high)
}

// Observe records one value. Negative values clamp to zero (a clock
// step mid-measurement must not corrupt the top octave).
//
//repro:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (exact, not bucketed); 0
// before any observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// the observed values, accurate to the bucket resolution (12.5%
// relative above the exact region). It returns 0 when nothing has
// been observed. Concurrent observations make the readout
// approximate, never torn.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the buckets first so the walk is over one consistent-ish
	// view; the count is derived from the same snapshot.
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := range counts {
		seen += counts[i]
		if seen >= target {
			// Never report beyond the exact maximum: the top bucket's
			// bound can overshoot it by the bucket width.
			return min64(bucketBound(i), h.Max())
		}
	}
	return h.Max()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// write exposes the histogram as a Prometheus summary: quantile
// samples, _sum and _count, plus a _max gauge (the exact maximum,
// which summaries cannot carry).
func (h *Histogram) write(w *bufio.Writer, header bool) {
	writeHeader(w, header, h.name, h.help, "summary")
	for _, q := range exportQuantiles {
		fmt.Fprintf(w, "%s %d\n", labeledName(h.name, "quantile", q.label), h.Quantile(q.q))
	}
	fmt.Fprintf(w, "%s_sum %d\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
	fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", baseName(h.name), h.name, h.Max())
}
