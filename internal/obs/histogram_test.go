package obs

import (
	"math/bits"
	"sync"
	"testing"
)

// TestBucketIndexKnownAnswers pins the log-linear bucketing: the
// exact region covers [0, 8), every octave above splits into 8 linear
// sub-buckets, and indexes are monotone in the value.
func TestBucketIndexKnownAnswers(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {7, 7}, // exact region, one bucket per value
		{8, 8}, {9, 9}, {15, 15}, // first octave: still exact (width 1)
		{16, 16}, {17, 16}, {18, 17}, // width-2 sub-buckets
		{31, 23},
		{32, 24}, {35, 24}, {36, 25}, // width-4 sub-buckets
		{1 << 20, 8 + 17*8}, // each octave starts 8 past the previous
		{1<<20 + 1<<17 - 1, 8 + 17*8},
		{1<<20 + 1<<17, 8 + 17*8 + 1},
		{1<<63 - 1, 8 + 59*8 + 7}, // top bit at position 62 -> octave 59
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Monotonicity and bound consistency across octave boundaries.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 7, 8, 15, 16, 31, 32, 63, 64, 1023, 1024, 1 << 30, 1 << 62, 1<<63 - 1} {
		i := bucketIndex(v)
		if i < prev {
			t.Errorf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if b := bucketBound(i); uint64(b) < v {
			t.Errorf("bucketBound(%d) = %d below member value %d", i, b, v)
		}
	}
}

// TestBucketBoundInverse checks every bucket's bound maps back into
// the same bucket (the bound is the largest member).
func TestBucketBoundInverse(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		b := bucketBound(i)
		if got := bucketIndex(uint64(b)); got != i {
			// The clamped top of the range is allowed to fall short.
			if b == 1<<63-1 && got < i {
				continue
			}
			t.Fatalf("bucketIndex(bucketBound(%d)=%d) = %d", i, b, got)
		}
		if i >= subCount {
			// One past the bound belongs to the next bucket.
			if b < 1<<62 && bucketIndex(uint64(b)+1) != i+1 {
				t.Fatalf("bucketIndex(%d+1) = %d, want %d", b, bucketIndex(uint64(b)+1), i+1)
			}
		}
	}
}

// TestQuantileKnownAnswers feeds a known distribution and pins the
// quantile readout to the bucket resolution.
func TestQuantileKnownAnswers(t *testing.T) {
	h := newHistogram("t_ns", "")
	// 100 observations: 1..100. Exact p50 = 50, p90 = 90, p99 = 99.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Fatalf("sum = %d", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %d", got)
	}
	check := func(q float64, exact int64) {
		t.Helper()
		got := h.Quantile(q)
		if got < exact || float64(got) > float64(exact)*1.125+1 {
			t.Errorf("Quantile(%v) = %d, want within [%d, %v]", q, got, exact, float64(exact)*1.125+1)
		}
	}
	check(0.5, 50)
	check(0.9, 90)
	check(0.99, 99)
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %d, want the exact max 100", got)
	}
	if got := h.Quantile(0); got < 1 || got > 1 {
		t.Fatalf("Quantile(0) = %d, want 1 (smallest observation's bucket)", got)
	}
}

func TestQuantileSingleValueAndEmpty(t *testing.T) {
	h := newHistogram("t_ns", "")
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram must read 0")
	}
	h.Observe(12345)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Fatalf("Quantile(%v) = %d, want 12345 (single observation, capped at max)", q, got)
		}
	}
}

func TestObserveNegativeClamps(t *testing.T) {
	h := newHistogram("t_ns", "")
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation not clamped: count %d sum %d q1 %d", h.Count(), h.Sum(), h.Quantile(1))
	}
}

// TestHistogramConcurrentObserve hammers Observe from many goroutines
// while reading quantiles — the race detector's target — and checks
// the final count is exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram("t_ns", "")
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := uint64(w + 1)
			for i := 0; i < per; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(int64(v >> (v % 32)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			h.Quantile(0.5)
			h.Max()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

// TestBucketResolution verifies the design claim: relative bucket
// width above the exact region is at most 1/8.
func TestBucketResolution(t *testing.T) {
	// Stop below the clamp region at the top of the int64 range, where
	// bounds saturate and widths stop being meaningful.
	for i := subCount; bucketBound(i) < 1<<62; i++ {
		hi := bucketBound(i)
		lo := bucketBound(i-1) + 1
		width := hi - lo + 1
		if float64(width) > float64(lo)/float64(subCount)+1 {
			t.Fatalf("bucket %d [%d,%d] wider than %v", i, lo, hi, float64(lo)/subCount)
		}
		if bits.Len64(uint64(hi)) > 64 {
			t.Fatalf("bound overflow at %d", i)
		}
	}
}
