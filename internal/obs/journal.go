package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Event is one control-plane decision: a generation swap, a fault, an
// optimizer pass, a job placement. Events answer "why does the fabric
// look like this" — the question /stats counters cannot.
type Event struct {
	// Seq numbers events monotonically from 1; gaps in a Tail reveal
	// ring overwrites.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock recording time.
	Time time.Time `json:"time"`
	// Type names the decision ("generation.swap", "fail.link",
	// "optimize", "job.submit", ...). See docs/ARCHITECTURE.md for the
	// schema inventory.
	Type string `json:"type"`
	// Dur is how long the decision took (zero when not measured).
	Dur time.Duration `json:"dur_ns"`
	// Fields carries the decision's structured payload. Maps marshal
	// with sorted keys, so JSON output is deterministic.
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal is a bounded ring of control-plane events with an optional
// structured-log sink. Appends overwrite the oldest entries once the
// ring is full; sequence numbers expose the loss. Control-plane rates
// are low (swaps, placements), so appends take a mutex — the hot
// resolve path never touches the journal.
type Journal struct {
	mu   sync.Mutex
	seq  uint64  // guarded by mu
	ring []Event // guarded by mu
	n    int     // occupied entries, <= len(ring); guarded by mu
	next int     // ring index the next event lands in; guarded by mu

	logger *slog.Logger
}

// NewJournal returns a journal retaining the last capacity events
// (minimum 1). A non-nil logger receives every event as a structured
// log record, so journal events and daemon logs interleave in one
// stream.
func NewJournal(capacity int, logger *slog.Logger) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{ring: make([]Event, capacity), logger: logger}
}

// Record appends an event and returns its sequence number.
func (j *Journal) Record(typ string, dur time.Duration, fields map[string]any) uint64 {
	now := time.Now()
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, Time: now, Type: typ, Dur: dur, Fields: fields}
	j.ring[j.next] = ev
	j.next = (j.next + 1) % len(j.ring)
	if j.n < len(j.ring) {
		j.n++
	}
	logger := j.logger
	j.mu.Unlock()
	if logger != nil {
		attrs := make([]slog.Attr, 0, len(fields)+2)
		attrs = append(attrs, slog.Uint64("seq", ev.Seq))
		if dur > 0 {
			attrs = append(attrs, slog.Duration("dur", dur))
		}
		keys := make([]string, 0, len(fields))
		for k := range fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			attrs = append(attrs, slog.Any(k, fields[k]))
		}
		logger.LogAttrs(context.Background(), slog.LevelInfo, typ, attrs...)
	}
	return ev.Seq
}

// Tail returns the most recent n events, oldest first. n <= 0 or
// beyond the retained count returns everything retained. The returned
// events are copies; Fields maps are shared and must be treated as
// immutable (recorders hand ownership to the journal).
func (j *Journal) Tail(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > j.n {
		n = j.n
	}
	out := make([]Event, n)
	// The newest event sits at next-1; walk back n entries.
	start := j.next - n
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = j.ring[(start+i)%len(j.ring)]
	}
	return out
}

// Since returns every retained event with Seq > seq, oldest first.
// Since(0) is the full retained tail. If events past seq were already
// overwritten, the result starts later than seq+1 — callers detect the
// gap by comparing the first returned Seq against seq+1.
func (j *Journal) Since(seq uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	// The oldest retained event has sequence seq-n+1; everything the
	// caller has not seen is the newest min(n, j.seq-seq) entries.
	if seq >= j.seq {
		return nil
	}
	n := int(j.seq - seq)
	if n > j.n {
		n = j.n
	}
	out := make([]Event, n)
	start := j.next - n
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = j.ring[(start+i)%len(j.ring)]
	}
	return out
}

// Seq returns the sequence number of the newest event (0 when empty).
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Cap returns the ring capacity.
//
//lint:allow locks the ring slice header is immutable after NewJournal; only its contents need mu
func (j *Journal) Cap() int { return len(j.ring) }

// Logger returns the journal's sink, or a discard logger when none
// was configured — callers can always log adjacent to the event
// stream without a nil check.
func (j *Journal) Logger() *slog.Logger {
	if j.logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return j.logger
}
