package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// counters, gauges, func metrics, histograms-as-summaries, and
// constant-labelled siblings sharing one header.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabric_resolves_total", "routes served", 4).Add(42)
	r.Counter(`sched_placements_total{policy="linear"}`, "jobs placed", 1).Add(3)
	r.Counter(`sched_placements_total{policy="random"}`, "jobs placed", 1).Add(1)
	r.Gauge("fabric_generation", "current generation sequence").Set(7)
	r.Gauge("sched_fragmentation", "free-pool fragmentation").Set(0.25)
	r.CounterFunc("evaluate_cache_hits_total", "memoized scores served", func() uint64 { return 9 })
	r.GaugeFunc("wire_conns_active", "open connections", func() float64 { return 2 })
	h := r.Histogram("fabric_resolve_batch_packed_ns", "packed batch resolve latency")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s (regenerate with -update-golden):\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestWritePrometheusParses sanity-checks the format rules a scraper
// relies on: every non-comment line is "name value", every TYPE
// appears once per base name.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter(`c_total{x="a"}`, "h", 1).Add(1)
	r.Counter(`c_total{x="b"}`, "h", 1).Add(2)
	r.Histogram("lat_ns", "h").Observe(10)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("sample line %q is not `name value`", line)
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Fatalf("TYPE for %q emitted %d times", name, n)
		}
	}
}
