package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help", 4)
	if got := len(c.shards); got != 4 {
		t.Fatalf("4 shards requested, got %d", got)
	}
	c.Add(3)
	c.Inc()
	for k := uint64(0); k < 64; k++ {
		c.AddAt(k, 2)
	}
	if got, want := c.Value(), uint64(3+1+64*2); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

func TestCounterShardRounding(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8},
	} {
		c := r.Counter("round_total_"+strings.Repeat("x", tc.ask+1), "", tc.ask)
		if len(c.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.ask, len(c.shards), tc.want)
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %v", g.Value())
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h", 1)
	b := r.Counter("same_total", "h", 8)
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", 1).Add(7)
	r.Gauge("g", "").Set(0.25)
	r.CounterFunc("cf_total", "", func() uint64 { return 11 })
	r.GaugeFunc("gf", "", func() float64 { return -2 })
	h := r.Histogram("h_ns", "")
	h.Observe(5)
	snap := r.Snapshot()
	for name, want := range map[string]float64{
		"c_total":               7,
		"g":                     0.25,
		"cf_total":              11,
		"gf":                    -2,
		`h_ns{quantile="0.5"}`:  5,
		`h_ns{quantile="0.99"}`: 5,
		"h_ns_count":            1,
		"h_ns_sum":              5,
		"h_ns_max":              5,
	} {
		if got, ok := snap[name]; !ok || got != want {
			t.Errorf("snapshot[%q] = %v (present %v), want %v", name, got, ok, want)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Race-detector workout: all instrument kinds recorded from many
	// goroutines while a reader scrapes. Totals must be exact for
	// counters and histogram counts (atomic adds never drop).
	r := NewRegistry()
	c := r.Counter("conc_total", "", 8)
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_ns", "")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.AddAt(uint64(w), 1)
				g.Add(1)
				h.Observe(int64(i % 1000))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.Snapshot()
			h.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if got, want := c.Value(), uint64(workers*perWorker); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(workers*perWorker); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestBaseAndLabeledNames(t *testing.T) {
	if got := baseName(`a_total{policy="x"}`); got != "a_total" {
		t.Fatalf("baseName = %q", got)
	}
	if got := baseName("a_total"); got != "a_total" {
		t.Fatalf("baseName = %q", got)
	}
	if got := labeledName("h", "quantile", "0.5"); got != `h{quantile="0.5"}` {
		t.Fatalf("labeledName = %q", got)
	}
	if got := labeledName(`h{a="b"}`, "quantile", "0.5"); got != `h{a="b",quantile="0.5"}` {
		t.Fatalf("labeledName = %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		3:    "3",
		-2:   "-2",
		0.25: "0.25",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
