package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalTailOrderAndWraparound(t *testing.T) {
	j := NewJournal(4, nil)
	if j.Cap() != 4 || j.Len() != 0 || j.Seq() != 0 {
		t.Fatalf("fresh journal: cap %d len %d seq %d", j.Cap(), j.Len(), j.Seq())
	}
	if got := j.Tail(10); len(got) != 0 {
		t.Fatalf("empty tail returned %d events", len(got))
	}
	for i := 1; i <= 10; i++ {
		seq := j.Record("tick", 0, map[string]any{"i": i})
		if seq != uint64(i) {
			t.Fatalf("Record %d returned seq %d", i, seq)
		}
	}
	if j.Len() != 4 || j.Seq() != 10 {
		t.Fatalf("after 10 records: len %d seq %d", j.Len(), j.Seq())
	}
	// The ring retains the newest 4 (seqs 7..10), oldest first.
	tail := j.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail(0) returned %d events", len(tail))
	}
	for i, ev := range tail {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.Type != "tick" || ev.Fields["i"] != 7+i {
			t.Fatalf("tail[%d] = %+v", i, ev)
		}
	}
	// A bounded tail returns the newest n.
	tail = j.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 9 || tail[1].Seq != 10 {
		t.Fatalf("Tail(2) = %+v", tail)
	}
	// Asking beyond the retained count returns what is retained.
	if got := j.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) returned %d events", len(got))
	}
}

func TestJournalSince(t *testing.T) {
	j := NewJournal(4, nil)
	if got := j.Since(0); got != nil {
		t.Fatalf("Since on empty journal = %+v", got)
	}
	for i := 1; i <= 10; i++ {
		j.Record("tick", 0, map[string]any{"i": i})
	}
	// Caller saw through seq 8: events 9 and 10 are new.
	got := j.Since(8)
	if len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 10 {
		t.Fatalf("Since(8) = %+v", got)
	}
	// Caller saw through seq 2, but the ring only retains 7..10: the
	// gap (first Seq != 3) is visible to the caller.
	got = j.Since(2)
	if len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("Since(2) = %+v", got)
	}
	// Fully caught up (or ahead): nothing new.
	if got := j.Since(10); got != nil {
		t.Fatalf("Since(10) = %+v", got)
	}
	if got := j.Since(99); got != nil {
		t.Fatalf("Since(99) = %+v", got)
	}
	// Since(0) is the whole retained tail.
	if got := j.Since(0); len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("Since(0) = %+v", got)
	}
}

func TestJournalMinimumCapacity(t *testing.T) {
	j := NewJournal(0, nil)
	if j.Cap() != 1 {
		t.Fatalf("capacity clamped to %d, want 1", j.Cap())
	}
	j.Record("a", 0, nil)
	j.Record("b", 0, nil)
	tail := j.Tail(0)
	if len(tail) != 1 || tail[0].Type != "b" {
		t.Fatalf("Tail = %+v", tail)
	}
}

func TestJournalSlogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	j := NewJournal(8, logger)
	j.Record("generation.swap", 3*time.Millisecond, map[string]any{
		"seq_to": uint64(2), "reason": "fail-link",
	})
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("sink wrote invalid JSON %q: %v", line, err)
	}
	if rec["msg"] != "generation.swap" || rec["reason"] != "fail-link" || rec["seq"] != float64(1) {
		t.Fatalf("sink record = %v", rec)
	}
	if _, ok := rec["dur"]; !ok {
		t.Fatalf("sink record lacks dur: %v", rec)
	}
}

func TestJournalEventJSONDeterministic(t *testing.T) {
	j := NewJournal(2, nil)
	j.Record("optimize", time.Millisecond, map[string]any{"b": 1, "a": 2, "c": 3})
	ev := j.Tail(1)[0]
	got, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	// encoding/json sorts map keys, so the payload is stable.
	if !strings.Contains(string(got), `"fields":{"a":2,"b":1,"c":3}`) {
		t.Fatalf("event JSON = %s", got)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(16, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record("e", 0, map[string]any{"w": w})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tail := j.Tail(8)
			for k := 1; k < len(tail); k++ {
				if tail[k].Seq != tail[k-1].Seq+1 {
					t.Errorf("tail seqs not contiguous: %d after %d", tail[k].Seq, tail[k-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if j.Seq() != 2000 {
		t.Fatalf("seq = %d, want 2000", j.Seq())
	}
}
