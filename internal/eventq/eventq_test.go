package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hashutil"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	if !q.Run(0) {
		t.Fatal("run did not drain")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if q.Now() != 30 {
		t.Errorf("final time = %d, want 30", q.Now())
	}
	if q.Processed() != 3 {
		t.Errorf("processed = %d", q.Processed())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got[:i+1])
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var q Queue
	var times []Time
	q.At(10, func() {
		times = append(times, q.Now())
		q.After(5, func() { times = append(times, q.Now()) })
	})
	q.Run(0)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	q.At(10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	q.At(5, func() {})
}

func TestRunBudget(t *testing.T) {
	var q Queue
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		q.After(1, reschedule)
	}
	q.At(0, reschedule)
	if q.Run(50) {
		t.Fatal("unbounded chain reported drained")
	}
	if count != 50 {
		t.Errorf("executed %d events, want 50", count)
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		q.At(at, func() { got = append(got, at) })
	}
	q.RunUntil(12)
	if len(got) != 2 {
		t.Fatalf("ran %d events, want 2", len(got))
	}
	if q.Now() != 12 {
		t.Errorf("clock = %d, want 12", q.Now())
	}
	q.RunUntil(100)
	if len(got) != 4 {
		t.Errorf("ran %d events total, want 4", len(got))
	}
	if q.Len() != 0 {
		t.Errorf("queue still has %d events", q.Len())
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
	if !q.Run(0) {
		t.Error("Run on empty queue returned false")
	}
	q.RunUntil(50)
	if q.Now() != 50 {
		t.Errorf("RunUntil did not advance the idle clock: %d", q.Now())
	}
}

func TestQuickHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := hashutil.NewStream(uint64(seed))
		var q Queue
		n := 1 + rng.Intn(200)
		want := make([]Time, n)
		var got []Time
		for i := range want {
			at := Time(rng.Intn(1000))
			want[i] = at
			q.At(at, func() { got = append(got, q.Now()) })
		}
		q.Run(0)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != n {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
