// Package eventq provides the discrete-event scheduling core shared
// by the network simulator (internal/venus) and the trace replay
// engine (internal/dimemas): a monotonic clock and a binary-heap
// calendar of callbacks with deterministic FIFO ordering among
// same-time events.
package eventq

// Time is simulated time in nanoseconds.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Queue is a discrete-event calendar. The zero value is ready to use.
type Queue struct {
	now    Time
	seq    uint64
	events []event
	ran    uint64
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Processed returns the number of events executed so far (for
// simulator statistics and benchmarks).
func (q *Queue) Processed() uint64 { return q.ran }

// At schedules fn at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (q *Queue) At(t Time, fn func()) {
	if t < q.now {
		panic("eventq: scheduling into the past") //lint:allow banned causality violation is a programming error, not an input error
	}
	q.seq++
	q.events = append(q.events, event{at: t, seq: q.seq, fn: fn})
	q.up(len(q.events) - 1)
}

// After schedules fn d nanoseconds from now.
func (q *Queue) After(d Time, fn func()) { q.At(q.now+d, fn) }

// Step executes the earliest pending event, advancing the clock.
// It reports whether an event was executed.
func (q *Queue) Step() bool {
	if len(q.events) == 0 {
		return false
	}
	e := q.events[0]
	last := len(q.events) - 1
	q.events[0] = q.events[last]
	q.events = q.events[:last]
	if last > 0 {
		q.down(0)
	}
	q.now = e.at
	q.ran++
	e.fn()
	return true
}

// Run drains the calendar. maxEvents <= 0 means unbounded; otherwise
// Run stops (returning false) once the budget is exhausted — the
// guard rail against runaway simulations in tests.
func (q *Queue) Run(maxEvents uint64) bool {
	for n := uint64(0); ; n++ {
		if maxEvents > 0 && n >= maxEvents {
			return false
		}
		if !q.Step() {
			return true
		}
	}
}

// RunUntil executes events with time <= deadline; remaining events
// stay queued and the clock ends at min(deadline, last event time).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.events) > 0 && q.events[0].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

func (q *Queue) less(i, j int) bool {
	if q.events[i].at != q.events[j].at {
		return q.events[i].at < q.events[j].at
	}
	return q.events[i].seq < q.events[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.events[i], q.events[parent] = q.events[parent], q.events[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.events)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.events[i], q.events[smallest] = q.events[smallest], q.events[i]
		i = smallest
	}
}
