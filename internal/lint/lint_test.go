package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one fixture subtree rooted under testdata/src.
func loadFixture(t *testing.T, rel string) *Program {
	t.Helper()
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	dir := filepath.Join("internal", "lint", "testdata", "src", filepath.FromSlash(rel))
	prog, err := Load(root, module, []string{dir + "/..."})
	if err != nil {
		t.Fatalf("Load(%s): %v", rel, err)
	}
	return prog
}

// diag is the comparable form of a finding: file base name, line, and
// analyzer.
func diag(f Finding) string {
	return strings.Join([]string{filepath.Base(f.Pos.Filename), itoa(f.Pos.Line), f.Analyzer}, ":")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// assertDiags runs one analyzer set over a fixture and compares the
// exact (file:line:analyzer) golden set.
func assertDiags(t *testing.T, prog *Program, analyzers []*Analyzer, want []string) map[string]int {
	t.Helper()
	findings, suppressed := prog.Run(analyzers)
	var got []string
	for _, f := range findings {
		got = append(got, diag(f))
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics mismatch\n got: %v\nwant: %v", got, want)
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
	return suppressed
}

func TestNondeterminismFixture(t *testing.T) {
	prog := loadFixture(t, "repro/internal/core")
	assertDiags(t, prog, []*Analyzer{NondeterminismAnalyzer}, []string{
		"nondet.go:8:nondeterminism",  // math/rand import
		"nondet.go:16:nondeterminism", // time.Now
		"nondet.go:17:nondeterminism", // time.Sleep
		"nondet.go:28:nondeterminism", // append without sort
		"nondet.go:47:nondeterminism", // return inside map range
		"nondet.go:57:nondeterminism", // builder write
	})
}

func TestHotpathFixture(t *testing.T) {
	prog := loadFixture(t, "fixture/hotpath")
	assertDiags(t, prog, []*Analyzer{HotpathAnalyzer}, []string{
		"hot.go:23:hotpath", // fmt.Println
		"hot.go:23:hotpath", // ...and boxing its argument into any
		"hot.go:30:hotpath", // defer
		"hot.go:35:hotpath", // closure
		"hot.go:43:hotpath", // interface boxing
		"hot.go:52:hotpath", // unvetted call
	})
}

func TestLocksFixture(t *testing.T) {
	prog := loadFixture(t, "fixture/locks")
	assertDiags(t, prog, []*Analyzer{LocksAnalyzer}, []string{
		"locks.go:26:locks", // Bad: unguarded read
		"locks.go:35:locks", // BadBranch: lock not held on every path
		"locks.go:47:locks", // BadAfterUnlock
		"locks.go:67:locks", // Peek: mixed plain/atomic
	})
}

func TestObskeysFixture(t *testing.T) {
	prog := loadFixture(t, "fixture/obskeys")
	assertDiags(t, prog, []*Analyzer{ObskeysAnalyzer}, []string{
		"obskeys.go:20:obskeys", // string literal
		"obskeys.go:21:obskeys", // variable
		"obskeys.go:22:obskeys", // malformed constant value
		"spans.go:25:obskeys",   // span name literal
		"spans.go:27:obskeys",   // span name variable
		"spans.go:29:obskeys",   // malformed span name constant
		"spans.go:31:obskeys",   // constant from another package
	})
}

func TestBannedFixture(t *testing.T) {
	prog := loadFixture(t, "fixture/bannedfix")
	assertDiags(t, prog, []*Analyzer{BannedAnalyzer}, []string{
		"banned.go:8:banned",  // reflect import
		"banned.go:16:banned", // os.Exit
		"banned.go:21:banned", // panic in library path
	})
}

func TestBannedExemptInCmd(t *testing.T) {
	prog := loadFixture(t, "repro/cmd/toolfix")
	assertDiags(t, prog, []*Analyzer{BannedAnalyzer}, nil)
}

func TestAllowSuppression(t *testing.T) {
	prog := loadFixture(t, "fixture/allowed")
	suppressed := assertDiags(t, prog, Analyzers, []string{
		"allowed.go:23:banned", // mismatched analyzer name does not suppress
		"allowed.go:28:banned", // malformed allow suppresses nothing
		"allowed.go:28:lint",   // ...and is itself a finding
	})
	if suppressed["banned"] != 2 {
		t.Errorf("suppressed[banned] = %d, want 2 (trailing + line-above)", suppressed["banned"])
	}
}

// TestModuleClean is the self-test the CI job depends on: the repo's
// own tree must produce zero findings under the full analyzer set.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	prog, err := Load(root, module, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, _ := prog.Run(Analyzers)
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if len(prog.Hotpath) == 0 {
		t.Error("no //repro:hotpath facts collected from the module; annotations missing?")
	}
}

func TestFuncIDAndHelpers(t *testing.T) {
	prog := loadFixture(t, "fixture/hotpath")
	if len(prog.Packages) != 1 {
		t.Fatalf("packages = %d, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	if pkg.Path != "fixture/hotpath" {
		t.Errorf("fixture path = %q, want %q (testdata/src rewriting)", pkg.Path, "fixture/hotpath")
	}
	if !prog.Hotpath["fixture/hotpath.hotHelper"] {
		t.Errorf("hotpath fact base missing hotHelper: %v", prog.Hotpath)
	}
	if pkg.Fset() == nil {
		t.Error("Fset is nil")
	}
}

func TestLoadErrors(t *testing.T) {
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	if _, err := Load(root, module, []string{"no/such/dir"}); err == nil {
		t.Error("Load of a missing directory succeeded")
	}
	if _, _, err := FindModuleRoot("/"); err == nil {
		t.Error("FindModuleRoot above any module succeeded")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "banned", Message: "m"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "x.go", 3, 7
	if got, want := f.String(), "x.go:3:7: [banned] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
