package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotpathAnalyzer is the static complement to the AllocsPerRun pins:
// a function annotated //repro:hotpath (the resolve paths, the wire
// codec, the obs recording primitives) may not
//
//   - call anything in fmt,
//   - create a closure (every FuncLit is a potential allocation),
//   - use defer (a per-call cost the resolve loop cannot afford),
//   - box a concrete value into an interface (the hidden allocation
//     AllocsPerRun pins keep catching one PR too late), or
//   - call any function that is not itself //repro:hotpath-annotated,
//     on the allowlist below, or a builtin.
//
// Cold error exits are exempt: calls and conversions inside a return
// statement of a function whose last result is error only run when
// the call has already failed, so error construction there (including
// fmt.Errorf) does not tax the steady state.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "bounds what //repro:hotpath functions may call, allocate, and box",
	Run:  runHotpath,
}

// hotpathAllowedPkgs are packages every function of which is safe on
// the hot path: atomics, bit tricks, and the binary codec helpers —
// all allocation-free by construction.
var hotpathAllowedPkgs = map[string]bool{
	"sync/atomic":     true,
	"math/bits":       true,
	"encoding/binary": true,
	"errors":          true,
	"unsafe":          true,
}

// hotpathAllowedFuncs are individually vetted stdlib functions (by
// FuncID). Extend this table when a new hot path needs a new
// primitive; the row is the review record.
var hotpathAllowedFuncs = map[string]bool{
	"time.Now":                    true, // monotonic read, no allocation
	"time.Since":                  true,
	"time.(Duration).Nanoseconds": true,
	"io.ReadFull":                 true, // loops on Read, allocates nothing
}

func runHotpath(prog *Program, pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "repro:hotpath") {
				continue
			}
			findings = append(findings, checkHotFunc(prog, pkg, fd)...)
		}
	}
	return findings
}

// errorResult reports whether the function's last result is error.
func errorResult(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func checkHotFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var findings []Finding
	report := func(n ast.Node, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:      pkg.Position(n.Pos()),
			Analyzer: "hotpath",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	coldExits := false
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			coldExits = errorResult(sig)
		}
	}
	name := fd.Name.Name

	// cold marks nodes inside return statements of error-returning hot
	// functions: the error exit, off the steady-state path.
	cold := make(map[ast.Node]bool)
	if coldExits {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				ast.Inspect(ret, func(m ast.Node) bool {
					if m != nil {
						cold[m] = true
					}
					return true
				})
				return false
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n, "%s is //repro:hotpath but uses defer (per-call overhead on the hot path)", name)
		case *ast.FuncLit:
			report(n, "%s is //repro:hotpath but creates a closure (potential allocation per call)", name)
			return false // the closure body is not the hot path
		case *ast.CallExpr:
			if cold[n] {
				return true
			}
			findings = append(findings, checkHotCall(prog, pkg, name, n)...)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				if cold[rhs] {
					continue
				}
				dst := pkg.Info.TypeOf(n.Lhs[i])
				if boxes(dst, pkg.Info.TypeOf(rhs), rhs) {
					report(rhs, "%s is //repro:hotpath but boxes a %s into %s (interface allocation)", name, pkg.Info.TypeOf(rhs), dst)
				}
			}
		}
		return true
	})
	return findings
}

// checkHotCall vets one call in a hot function: the callee must be a
// builtin, allowlisted, or itself hotpath-annotated, and its
// arguments must not box into interface parameters.
func checkHotCall(prog *Program, pkg *Package, name string, call *ast.CallExpr) []Finding {
	var findings []Finding
	report := func(n ast.Node, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:      pkg.Position(n.Pos()),
			Analyzer: "hotpath",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// Type conversions: only interface conversions box.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(tv.Type, pkg.Info.TypeOf(call.Args[0]), call.Args[0]) {
			report(call, "%s is //repro:hotpath but converts %s to interface %s (boxing allocation)", name, pkg.Info.TypeOf(call.Args[0]), tv.Type)
		}
		return findings
	}
	if calleeBuiltin(pkg.Info, call) != nil {
		return findings
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		report(call, "%s is //repro:hotpath but makes a dynamic call (function value or method expression); hot calls must be static so the analyzer can follow them", name)
		return findings
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			report(call, "%s is //repro:hotpath but calls %s through an interface (dynamic dispatch the analyzer cannot follow)", name, fn.Name())
			return findings
		}
	}
	id := FuncID(fn)
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "fmt":
		report(call, "%s is //repro:hotpath but calls %s.%s (fmt formats through reflection and allocates)", name, pkgPath, fn.Name())
	case hotpathAllowedPkgs[pkgPath], hotpathAllowedFuncs[id], prog.Hotpath[id]:
		// vetted
	default:
		report(call, "%s is //repro:hotpath but calls %s, which is neither //repro:hotpath nor on the hotpath allowlist", name, id)
	}
	// Interface parameters box concrete arguments.
	if sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					break // f(xs...) passes the slice through, no boxing
				}
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if boxes(pt, pkg.Info.TypeOf(arg), arg) {
				report(arg, "%s is //repro:hotpath but boxes argument %d of %s into interface %s", name, i, fn.Name(), pt)
			}
		}
	}
	return findings
}

// boxes reports whether assigning src (with static type srcType) to a
// destination of type dst allocates an interface box: dst is an
// interface, src is a non-interface non-nil concrete value.
func boxes(dst, srcType types.Type, src ast.Expr) bool {
	if dst == nil || srcType == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := srcType.Underlying().(*types.Interface); ok {
		return false
	}
	if b, ok := srcType.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
