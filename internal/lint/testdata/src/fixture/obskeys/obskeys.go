// Package obskeys is a lint fixture for the obskeys analyzer: metric
// names passed to internal/obs as literals, variables, and malformed
// constants, plus well-formed constants that must not be flagged.
package obskeys

import "repro/internal/obs"

const (
	goodName    = "fixture_requests_total"
	labeledName = `fixture_requests_total{policy="linear"}`
	badValue    = "Fixture-Requests"
)

var varName = "fixture_bytes_total"

// Register exercises every name-argument shape.
func Register(reg *obs.Registry) {
	reg.Counter(goodName, "ok: constant, well-formed", 1)
	reg.Counter(labeledName, "ok: constant with label suffix", 1)
	reg.Counter("fixture_literal_total", "literal", 1) // want: not a constant
	reg.Gauge(varName, "variable")                     // want: not a constant
	reg.Histogram(badValue, "malformed value")         // want: bad name
}
