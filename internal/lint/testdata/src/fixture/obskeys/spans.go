// Span-name fixtures for the obskeys analyzer: names passed to
// trace.Tracer.Start/StartSpan/StartChild/SetBudget as literals,
// variables, out-of-package constants and malformed constants, plus
// well-formed in-package constants that must not be flagged.
package obskeys

import (
	"context"

	"repro/internal/trace"
)

const (
	goodSpan = "fixture.resolve"
	badSpan  = "Fixture-Resolve"
)

var varSpan = "fixture.place"

// Trace exercises every span-name shape.
func Trace(tr *trace.Tracer) {
	sc := tr.Root(1, 2)
	s := tr.StartSpan(sc, goodSpan)
	s.End()
	c := tr.StartChild(sc, "fixture.literal") // want: not a constant
	c.End()
	v := tr.StartSpan(sc, varSpan) // want: not a constant
	v.End()
	b := tr.StartSpan(sc, badSpan) // want: bad name
	b.End()
	tr.SetBudget(trace.ReasonBudget, 0) // want: constant from another package
	_, s2 := tr.Start(context.Background(), goodSpan)
	s2.End()
}
