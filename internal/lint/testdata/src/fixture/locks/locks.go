// Package locks is a lint fixture for the locks analyzer: guarded
// fields accessed with and without their mutex, the Locked-suffix
// convention, and mixed plain/atomic field access.
package locks

import (
	"sync"
	"sync/atomic"
)

// Box has one guarded counter.
type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Good locks around the access: no finding.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Bad reads the guarded field with no lock.
func (b *Box) Bad() int {
	return b.n // want: unguarded access
}

// BadBranch acquires the lock in one branch only; the access after
// the branch is not covered on every path.
func (b *Box) BadBranch(lock bool) int {
	if lock {
		b.mu.Lock()
	}
	v := b.n // want: not held on every path
	if lock {
		b.mu.Unlock()
	}
	return v
}

// BadAfterUnlock touches the field after releasing.
func (b *Box) BadAfterUnlock() int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return b.n // want: accessed after unlock
}

// bumpLocked follows the caller-holds-the-lock suffix convention: no
// finding.
func (b *Box) bumpLocked() { b.n++ }

// Mixed has a field touched both atomically and plainly.
type Mixed struct {
	hits  uint64
	total uint64
}

// Touch records atomically; Peek reads the same field plainly.
func (m *Mixed) Touch() {
	atomic.AddUint64(&m.hits, 1)
	m.total++ // plain-only field: no finding
}

func (m *Mixed) Peek() uint64 {
	return m.hits // want: mixed plain/atomic access
}
