// Package allowed is a lint fixture for the //lint:allow escape
// hatch: the first two violations carry valid marks (trailing and
// line-above) and must be suppressed and counted; the mismatched and
// malformed marks suppress nothing, and the malformed one is itself a
// finding.
package allowed

import "os"

// Trailing-comment form.
func Quit() {
	os.Exit(3) //lint:allow banned fixture exercises the trailing-allow form
}

// Line-above form.
func Explode() {
	//lint:allow banned fixture exercises the line-above-allow form
	panic("boom")
}

// Wrong-analyzer marks do not suppress other analyzers' findings.
func Mismatched() {
	panic("still reported") //lint:allow nondeterminism wrong analyzer name on purpose
}

// Malformed: no reason after the analyzer name.
func Unreasoned() {
	os.Exit(4) //lint:allow banned
}
