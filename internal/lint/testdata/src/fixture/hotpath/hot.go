// Package hotpath is a lint fixture for the hotpath analyzer: hot
// functions with seeded violations (fmt, defer, closures, boxing,
// unvetted calls) and clean hot functions that must not be flagged.
package hotpath

import (
	"fmt"
	"sync/atomic"
)

var sink atomic.Uint64

// helper is not hotpath-annotated: hot callers must not call it.
func helper() uint64 { return 1 }

//repro:hotpath
func hotHelper() uint64 { return 2 }

// HotFmt calls fmt on the hot path.
//
//repro:hotpath
func HotFmt(v int) {
	fmt.Println(v) // want: fmt call
}

// HotDefer uses defer; HotClosure creates a closure.
//
//repro:hotpath
func HotDefer() {
	defer sink.Add(1) // want: defer
}

//repro:hotpath
func HotClosure() func() {
	return func() {} // want: closure
}

// HotBox boxes a concrete int into an interface.
//
//repro:hotpath
func HotBox(v int) {
	var i interface{}
	i = v // want: boxing
	_ = i
}

// HotCallsCold calls a function that is neither annotated nor
// allowlisted.
//
//repro:hotpath
func HotCallsCold() uint64 {
	return helper() // want: unvetted call
}

// HotClean only uses atomics, builtins, and another hot function: no
// findings.
//
//repro:hotpath
func HotClean(xs []uint64) uint64 {
	sink.Add(hotHelper())
	return uint64(len(xs))
}

// HotColdExit constructs its error inside the return statement: the
// cold-exit carve-out applies and fmt.Errorf there is not a finding.
//
//repro:hotpath
func HotColdExit(v int) (uint64, error) {
	if v < 0 {
		return 0, fmt.Errorf("hotpath: negative %d", v)
	}
	return uint64(v), nil
}
