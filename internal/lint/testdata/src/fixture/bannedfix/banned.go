// Package bannedfix is a lint fixture for the banned analyzer: os.Exit
// and panic in library code, a reflect import, and the exempt shapes
// (panic in init).
package bannedfix

import (
	"os"
	"reflect" // want: reflect outside tests
)

// Kind leaks reflection so the import is used.
func Kind(v any) string { return reflect.TypeOf(v).String() }

// Quit exits from library code.
func Quit() {
	os.Exit(1) // want: os.Exit outside cmd/*
}

// Explode panics on a non-init library path.
func Explode() {
	panic("boom") // want: panic in library
}

func init() {
	if false {
		panic("init-time config error") // exempt: init path
	}
}
