// Package core is a lint fixture impersonating the result-producing
// package repro/internal/core: every seeded violation below must be
// reported by the nondeterminism analyzer, and the rescued variants
// must not.
package core

import (
	"math/rand" // want: banned import
	"sort"
	"strings"
	"time"
)

// Clock reads time in a result-producing package.
func Clock() int64 {
	t := time.Now() // want: wall-clock read
	time.Sleep(0)   // want: wall-clock read
	return t.UnixNano()
}

// Draw uses the banned RNG.
func Draw() int { return rand.Intn(6) }

// LeakAppend appends inside a map range with no rescue sort.
func LeakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: order leak
	}
	return keys
}

// SortedAppend is the canonical collect-then-sort idiom: not a finding.
func SortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LeakReturn returns from inside a map range.
func LeakReturn(m map[string]int) string {
	for k, v := range m {
		if v > 0 {
			return k // want: order-dependent winner
		}
	}
	return ""
}

// LeakBuilder writes a builder inside a map range.
func LeakBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want: order-dependent output
	}
	return b.String()
}
