// Command toolfix is a lint fixture impersonating a cmd/* package:
// os.Exit and panic are exempt here, so this package must produce no
// banned findings.
package main

import "os"

func main() {
	if len(os.Args) > 99 {
		panic("absurd argv")
	}
	os.Exit(0)
}
