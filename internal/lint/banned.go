package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// BannedAnalyzer is the table-driven banned-symbol pass. Each row
// names one symbol (a function call, a builtin, or an import) and the
// package class it is banned in; extending the policy is adding a row.
var BannedAnalyzer = &Analyzer{
	Name: "banned",
	Doc:  "table-driven banned symbols: os.Exit outside cmd/*, reflect outside tests, panic in library non-init paths",
	Run:  runBanned,
}

// bannedRule is one row of the policy table.
type bannedRule struct {
	// kind is "call" (qualified function call), "import" (package
	// import), or "builtin" (builtin-like identifier call).
	kind string
	// symbol: "os.Exit" for calls, "reflect" for imports, "panic" for
	// builtins.
	symbol string
	// exempt reports whether this use is outside the rule's scope.
	exempt func(ctx bannedContext) bool
	// reason completes "…: <reason>" in the finding message.
	reason string
}

// bannedContext is what a rule's exemption predicate can see.
type bannedContext struct {
	pkg      *Package
	test     bool   // the use is in a _test.go file
	cmd      bool   // the package lives under cmd/
	funcName string // enclosing function name ("" at package scope)
	inInit   bool   // enclosing function is init or a main.main path
}

// bannedRules is the policy. Add a row to ban a new symbol; the row
// is the review record for why.
var bannedRules = []bannedRule{
	{
		kind:   "call",
		symbol: "os.Exit",
		exempt: func(ctx bannedContext) bool { return ctx.cmd || ctx.test },
		reason: "library code must return errors so callers (and tests) see them; only cmd/* may decide the process exit code",
	},
	{
		kind:   "import",
		symbol: "reflect",
		exempt: func(ctx bannedContext) bool { return ctx.test },
		reason: "reflection defeats the static analyzers and costs allocations; shipped code uses concrete types",
	},
	{
		kind:   "builtin",
		symbol: "panic",
		exempt: func(ctx bannedContext) bool { return ctx.test || ctx.cmd || ctx.inInit },
		reason: "library non-init paths must return errors; a panic in the resolve or scoring path takes down the whole fabricd process",
	},
}

func runBanned(prog *Program, pkg *Package) []Finding {
	var findings []Finding
	cmd := strings.HasPrefix(pkg.Path, prog.Module+"/cmd/") || pkg.Path == prog.Module+"/cmd"
	for _, file := range pkg.Files {
		test := isTestFile(pkg.Position(file.Pos()))
		ctx := bannedContext{pkg: pkg, test: test, cmd: cmd}

		for _, rule := range bannedRules {
			if rule.kind != "import" {
				continue
			}
			for _, imp := range file.Imports {
				if strings.Trim(imp.Path.Value, `"`) != rule.symbol {
					continue
				}
				if rule.exempt(ctx) {
					continue
				}
				findings = append(findings, Finding{
					Pos:      pkg.Position(imp.Pos()),
					Analyzer: "banned",
					Message:  fmt.Sprintf("import of %s: %s", rule.symbol, rule.reason),
				})
			}
		}

		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fctx := ctx
			fctx.funcName = fd.Name.Name
			fctx.inInit = fd.Recv == nil && fd.Name.Name == "init"
			findings = append(findings, bannedInFunc(prog, pkg, fd, fctx)...)
		}
	}
	return findings
}

func bannedInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, ctx bannedContext) []Finding {
	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, rule := range bannedRules {
			switch rule.kind {
			case "call":
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					continue
				}
				if fn.Pkg().Path()+"."+fn.Name() != rule.symbol {
					continue
				}
			case "builtin":
				b := calleeBuiltin(pkg.Info, call)
				if b == nil || b.Name() != rule.symbol {
					continue
				}
			default:
				continue
			}
			if rule.exempt(ctx) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      pkg.Position(call.Pos()),
				Analyzer: "banned",
				Message:  fmt.Sprintf("call to %s in %s: %s", rule.symbol, ctx.funcName, rule.reason),
			})
		}
		return true
	})
	return findings
}
