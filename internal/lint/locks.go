package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LocksAnalyzer checks the repo's two concurrency-annotation
// contracts:
//
//  1. A struct field commented "guarded by <mu>" may only be touched
//     through a receiver inside methods that hold <mu> on every path
//     to the access. The walk is a conservative straight-line
//     approximation: Lock()/RLock() acquires, Unlock()/RUnlock()
//     releases, deferred unlocks keep the lock held to function end,
//     branch-local acquisitions do not escape their branch, and
//     methods whose name ends in "Locked" are taken to run with every
//     guard held (the codebase's caller-holds-the-lock convention).
//  2. A field that is ever accessed field-level through sync/atomic
//     (atomic.AddUint64(&s.f, ...)) may never also be read or written
//     plainly — mixed plain/atomic access is a data race the race
//     detector only catches when the schedule cooperates.
var LocksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  "enforces 'guarded by <mu>' field comments and bans mixed plain/atomic field access",
	Run:  runLocks,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardedField is one annotated field: its object, the struct's type
// name, and the guarding mutex field name.
type guardedField struct {
	field *types.Var
	owner *types.TypeName
	mu    string
}

func runLocks(prog *Program, pkg *Package) []Finding {
	guarded := collectGuarded(pkg)
	var findings []Finding
	if len(guarded) > 0 {
		findings = append(findings, checkGuarded(pkg, guarded)...)
	}
	findings = append(findings, checkAtomicMix(pkg)...)
	return findings
}

// collectGuarded finds "guarded by <mu>" field annotations.
func collectGuarded(pkg *Package) map[*types.Var]guardedField {
	guarded := make(map[*types.Var]guardedField)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if owner == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{field: v, owner: owner, mu: mu}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's trailing or
// doc comment.
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if group == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuarded walks every method of every annotated struct.
func checkGuarded(pkg *Package, guarded map[*types.Var]guardedField) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvField := fd.Recv.List[0]
			if len(recvField.Names) == 0 {
				continue
			}
			recvVar, _ := pkg.Info.Defs[recvField.Names[0]].(*types.Var)
			if recvVar == nil {
				continue
			}
			owner := namedOf(recvVar.Type())
			if owner == nil {
				continue
			}
			// Does this struct have any guarded fields?
			relevant := false
			for _, g := range guarded {
				if g.owner == owner.Obj() {
					relevant = true
					break
				}
			}
			if !relevant {
				continue
			}
			w := &lockWalker{
				pkg:     pkg,
				guarded: guarded,
				owner:   owner.Obj(),
				recv:    recvVar,
				method:  fd.Name.Name,
			}
			held := map[string]bool{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Caller-holds-the-lock convention: assume every guard.
				for _, g := range guarded {
					if g.owner == owner.Obj() {
						held[g.mu] = true
					}
				}
			}
			w.walkList(fd.Body.List, held)
			findings = append(findings, w.findings...)
		}
	}
	return findings
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// lockWalker tracks which guard mutexes are held along a
// straight-line walk of a method body.
type lockWalker struct {
	pkg      *Package
	guarded  map[*types.Var]guardedField
	owner    *types.TypeName
	recv     *types.Var
	method   string
	findings []Finding
}

// walkList walks statements in order, threading the held-set through,
// and returns the held-set at the end of the list.
func (w *lockWalker) walkList(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, stmt := range list {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both.
func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]bool) map[string]bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if mu, locked := w.lockCall(s.X); mu != "" {
			if locked {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return held
		}
		w.scan(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end; any
		// other deferred work runs at exit with unknown lock state, so
		// its body is checked lock-free.
		if mu, locked := w.lockCall(s.Call); mu != "" && !locked {
			return held
		}
		w.scan(s.Call, map[string]bool{})
	case *ast.BlockStmt:
		return w.walkList(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.walkList(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held)
		}
		after := w.walkList(s.Body.List, copyHeld(held))
		if s.Post != nil {
			w.walkStmt(s.Post, after)
		}
		return intersect(held, after)
	case *ast.RangeStmt:
		w.scan(s.X, held)
		after := w.walkList(s.Body.List, copyHeld(held))
		return intersect(held, after)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkList(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Assign, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkList(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, copyHeld(held))
				}
				w.walkList(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine runs with no lock inherited.
		w.scan(s.Call, map[string]bool{})
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	default:
		w.scan(stmt, held)
	}
	return held
}

// lockCall matches recv.<mu>.Lock/RLock/Unlock/RUnlock() and returns
// the mutex field name and whether it acquires.
func (w *lockWalker) lockCall(expr ast.Expr) (mu string, locked bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := ast.Unparen(muSel.X).(*ast.Ident)
	if !ok || w.pkg.Info.ObjectOf(base) != w.recv {
		return "", false
	}
	return muSel.Sel.Name, acquire
}

// scan inspects a node (expression or statement) for guarded-field
// accesses through the receiver under the given held-set. Function
// literals are scanned with an empty held-set (they may run later)
// unless they contain their own locking.
func (w *lockWalker) scan(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			w.walkList(m.Body.List, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(m.X).(*ast.Ident)
			if !ok || w.pkg.Info.ObjectOf(base) != w.recv {
				return true
			}
			obj := w.pkg.Info.ObjectOf(m.Sel)
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			g, ok := w.guarded[v]
			if !ok || g.owner != w.owner {
				return true
			}
			if !held[g.mu] {
				w.findings = append(w.findings, Finding{
					Pos:      w.pkg.Position(m.Pos()),
					Analyzer: "locks",
					Message: fmt.Sprintf("%s.%s accesses %s (guarded by %s) without holding %s on every path",
						w.owner.Name(), w.method, v.Name(), g.mu, g.mu),
				})
			}
			return false
		}
		return true
	})
}

// checkAtomicMix flags fields accessed both through sync/atomic and
// plainly.
func checkAtomicMix(pkg *Package) []Finding {
	// Pass 1: fields whose address feeds a sync/atomic call, and the
	// exact selector nodes involved (those are the sanctioned uses).
	atomicFields := make(map[*types.Var]string) // field -> first atomic op name
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue // &s.f[i] is element-level, not field-level
				}
				if v := fieldVar(pkg, sel); v != nil {
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = fn.Name()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a mixed access.
	var findings []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg.Position(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldVar(pkg, sel)
			if v == nil {
				return true
			}
			op, ok := atomicFields[v]
			if !ok {
				return true
			}
			findings = append(findings, Finding{
				Pos:      pkg.Position(sel.Pos()),
				Analyzer: "locks",
				Message: fmt.Sprintf("plain access to field %s, which is also accessed via sync/atomic.%s: mixed plain/atomic access races; use atomics everywhere or a mutex",
					v.Name(), op),
			})
			return false
		})
	}
	return findings
}

// fieldVar resolves a selector to a struct field variable, nil for
// methods, package selectors, and locals.
func fieldVar(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
