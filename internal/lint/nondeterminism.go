package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NondeterminismAnalyzer encodes the repo's headline guarantee —
// byte-identical results at any -parallel, on any platform — as three
// source properties:
//
//  1. math/rand (v1 or v2) is banned everywhere, tests included: no
//     cross-release sequence guarantee exists, so every random draw
//     must come from internal/hashutil keyed streams. This retires
//     the CI grep.
//  2. time.Now/time.Since/time.Sleep are banned in result-producing
//     packages: wall-clock reads there leak timing into results.
//     Observational uses (latency stats on a non-result path) carry
//     //lint:allow nondeterminism <reason>.
//  3. Ranging over a map while appending to a slice, writing a
//     builder/writer, or returning from inside the body is the
//     classic map-iteration-order leak; an append is rescued by a
//     subsequent sort of the same slice in the enclosing block.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "bans math/rand, wall-clock reads in result-producing packages, and map-iteration-order leaks",
	Run:  runNondeterminism,
}

// resultPackages are the module-relative packages whose outputs are
// results (figures, tables, scores, placements): wall-clock reads
// there are findings unless explicitly allowed as observational.
var resultPackages = []string{
	"internal/core",
	"internal/pattern",
	"internal/contention",
	"internal/stats",
	"internal/hashutil",
	"internal/xgft",
	"internal/venus",
	"internal/dimemas",
	"internal/traces",
	"internal/experiments",
	"internal/evaluate",
	"internal/sched",
	"internal/fabric",
	"internal/eventq",
	"internal/benchcal",
}

// isResultPackage reports whether the package path is in the
// result-producing set (test units of those packages are not).
func isResultPackage(module, path string) bool {
	for _, rel := range resultPackages {
		if path == module+"/"+rel {
			return true
		}
	}
	return false
}

func runNondeterminism(prog *Program, pkg *Package) []Finding {
	var findings []Finding
	resultPkg := isResultPackage(prog.Module, strings.TrimSuffix(pkg.Path, "_test"))
	for _, file := range pkg.Files {
		filePos := pkg.Position(file.Pos())
		test := isTestFile(filePos)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				findings = append(findings, Finding{
					Pos:      pkg.Position(imp.Pos()),
					Analyzer: "nondeterminism",
					Message:  fmt.Sprintf("import of %s: no cross-release sequence guarantee; use internal/hashutil keyed streams (Stream, Mix, KeyedPerm)", path),
				})
			}
		}
		if test {
			continue // clock and map-order checks cover shipped code only
		}
		if resultPkg {
			findings = append(findings, clockFindings(pkg, file)...)
		}
		findings = append(findings, mapOrderFindings(pkg, file)...)
	}
	return findings
}

// clockFindings flags wall-clock reads in a result-producing package.
func clockFindings(pkg *Package, file *ast.File) []Finding {
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		switch fn.Name() {
		case "Now", "Since", "Sleep":
			findings = append(findings, Finding{
				Pos:      pkg.Position(call.Pos()),
				Analyzer: "nondeterminism",
				Message:  fmt.Sprintf("time.%s in result-producing package %s: wall-clock reads leak timing into results; derive values from inputs, or annotate observational uses with //lint:allow nondeterminism <reason>", fn.Name(), pkg.Path),
			})
		}
		return true
	})
	return findings
}

// mapOrderFindings flags map-range bodies whose effects depend on
// iteration order.
func mapOrderFindings(pkg *Package, file *ast.File) []Finding {
	var findings []Finding
	// Visit every statement list so each range statement knows the
	// statements that follow it (the sort-rescue scan).
	var visitList func(list []ast.Stmt)
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				visitList(n.List)
				return false
			case *ast.CaseClause:
				visitList(n.Body)
				return false
			case *ast.CommClause:
				visitList(n.Body)
				return false
			}
			return true
		})
	}
	visitList = func(list []ast.Stmt) {
		for i, stmt := range list {
			rs := rangeStmt(stmt)
			if rs != nil && isMapType(pkg.Info.TypeOf(rs.X)) {
				findings = append(findings, mapRangeBody(pkg, rs, list[i+1:])...)
			}
			visit(stmt)
		}
	}
	visit(file)
	return findings
}

// rangeStmt unwraps a (possibly labeled) range statement.
func rangeStmt(stmt ast.Stmt) *ast.RangeStmt {
	for {
		switch s := stmt.(type) {
		case *ast.LabeledStmt:
			stmt = s.Stmt
		case *ast.RangeStmt:
			return s
		default:
			return nil
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeBody inspects one map-range body for order-dependent
// effects. tail is the statement list after the range statement, for
// the sort rescue.
func mapRangeBody(pkg *Package, rs *ast.RangeStmt, tail []ast.Stmt) []Finding {
	var findings []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			findings = append(findings, Finding{
				Pos:      pkg.Position(n.Pos()),
				Analyzer: "nondeterminism",
				Message:  "return from inside a map range: which entry wins depends on iteration order; collect, sort, then decide",
			})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeBuiltin(pkg.Info, call) == nil || len(call.Args) == 0 {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				var target types.Object
				if i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						target = pkg.Info.ObjectOf(id)
					}
				}
				if target != nil && sortedAfter(pkg, target, tail) {
					continue
				}
				findings = append(findings, Finding{
					Pos:      pkg.Position(call.Pos()),
					Analyzer: "nondeterminism",
					Message:  "append inside a map range without a subsequent sort of the slice: element order follows map iteration order; sort after the loop or iterate a sorted key slice",
				})
			}
		case *ast.CallExpr:
			if f := builderWrite(pkg, n); f != "" {
				findings = append(findings, Finding{
					Pos:      pkg.Position(n.Pos()),
					Analyzer: "nondeterminism",
					Message:  fmt.Sprintf("%s inside a map range: output order follows map iteration order; iterate sorted keys instead", f),
				})
			}
		}
		return true
	})
	return findings
}

// builderWrite reports a call that emits output whose order the map
// iteration decides: Write* on strings.Builder / bytes.Buffer, or any
// fmt print call.
func builderWrite(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "Write") {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return named.Obj().Name() + "." + fn.Name()
	}
	return ""
}

// sortedAfter reports whether a statement after the range sorts the
// append target (sort.* or slices.Sort* with the target among the
// arguments) — the canonical collect-then-sort idiom.
func sortedAfter(pkg *Package, target types.Object, tail []ast.Stmt) bool {
	for _, stmt := range tail {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if pkgPath != "sort" && pkgPath != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ok := false
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, isIdent := a.(*ast.Ident); isIdent && pkg.Info.ObjectOf(id) == target {
						ok = true
					}
					return !ok
				})
				if ok {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
