package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObskeysAnalyzer keeps the metric and journal namespace greppable:
// every metric name and journal event type handed to internal/obs
// must be an in-package string constant whose value matches
// ^[a-z][a-z0-9_.]*$ (optionally followed by one {label="value"}
// suffix). A constant name is a stable grep anchor, so the README
// metric inventory cannot drift from the code; a fmt.Sprintf'd or
// concatenated name can.
var ObskeysAnalyzer = &Analyzer{
	Name: "obskeys",
	Doc:  "requires metric names and journal event types to be in-package constants matching ^[a-z][a-z0-9_.]*$",
	Run:  runObskeys,
}

// obsNameFuncs are the internal/obs entry points whose first string
// argument is a metric name or journal event type.
var obsNameFuncs = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
	"Record":      true, // Journal.Record(typ, ...)
}

var (
	obsNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)
	obsLabelRE = regexp.MustCompile(`^\{[a-z][a-z0-9_]*="[^"{}]*"\}$`)
)

func runObskeys(prog *Program, pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg.Position(file.Pos())) {
			continue // tests may mint throwaway names
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !obsNameFuncs[fn.Name()] {
				return true
			}
			if fn.Pkg().Path() != prog.Module+"/internal/obs" {
				return true
			}
			findings = append(findings, checkObsName(pkg, fn.Name(), call.Args[0])...)
			return true
		})
	}
	return findings
}

// checkObsName validates one name argument: in-package named constant,
// well-formed value.
func checkObsName(pkg *Package, callee string, arg ast.Expr) []Finding {
	pos := pkg.Position(arg.Pos())
	ident, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("name passed to obs.%s must be an in-package string constant (got an expression); constants keep the metric inventory greppable", callee),
		}}
	}
	obj := pkg.Info.ObjectOf(ident)
	cst, ok := obj.(*types.Const)
	if !ok {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("name %q passed to obs.%s must be a string constant, not a variable", ident.Name, callee),
		}}
	}
	if cst.Pkg() != pkg.Pkg {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("constant %s passed to obs.%s is declared outside this package; declare metric names in the package that owns them", ident.Name, callee),
		}}
	}
	if cst.Val().Kind() != constant.String {
		return nil // not a string constant: the typechecker already rejected it
	}
	val := constant.StringVal(cst.Val())
	base, label := val, ""
	if i := strings.IndexByte(val, '{'); i >= 0 {
		base, label = val[:i], val[i:]
	}
	if !obsNameRE.MatchString(base) || (label != "" && !obsLabelRE.MatchString(label)) {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("metric name %q does not match ^[a-z][a-z0-9_.]*$ (with optional {label=\"value\"} suffix)", val),
		}}
	}
	return nil
}
