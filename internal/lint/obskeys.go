package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObskeysAnalyzer keeps the metric, journal and span namespace
// greppable: every metric name, journal event type and span name
// handed to internal/obs or internal/trace must be an in-package
// string constant whose value matches ^[a-z][a-z0-9_.]*$ (optionally
// followed by one {label="value"} suffix). A constant name is a
// stable grep anchor, so the README metric inventory and the
// docs/ARCHITECTURE.md span inventory cannot drift from the code; a
// fmt.Sprintf'd or concatenated name can.
var ObskeysAnalyzer = &Analyzer{
	Name: "obskeys",
	Doc:  "requires metric names, journal event types and span names to be in-package constants matching ^[a-z][a-z0-9_.]*$",
	Run:  runObskeys,
}

// obsNameFunc describes one vetted entry point: the defining package
// (as a suffix under the module path) and the index of the name
// argument.
type obsNameFunc struct {
	pkg string
	arg int
}

// obsNameFuncs are the internal/obs and internal/trace entry points
// whose string argument is a metric name, journal event type or span
// name.
var obsNameFuncs = map[string]obsNameFunc{
	"Counter":     {pkg: "/internal/obs", arg: 0},
	"Gauge":       {pkg: "/internal/obs", arg: 0},
	"Histogram":   {pkg: "/internal/obs", arg: 0},
	"CounterFunc": {pkg: "/internal/obs", arg: 0},
	"GaugeFunc":   {pkg: "/internal/obs", arg: 0},
	"Record":      {pkg: "/internal/obs", arg: 0}, // Journal.Record(typ, ...)
	"Start":       {pkg: "/internal/trace", arg: 1},
	"StartSpan":   {pkg: "/internal/trace", arg: 1},
	"StartChild":  {pkg: "/internal/trace", arg: 1},
	"SetBudget":   {pkg: "/internal/trace", arg: 0},
}

var (
	obsNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)
	obsLabelRE = regexp.MustCompile(`^\{[a-z][a-z0-9_]*="[^"{}]*"\}$`)
)

func runObskeys(prog *Program, pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg.Position(file.Pos())) {
			continue // tests may mint throwaway names
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			spec, ok := obsNameFuncs[fn.Name()]
			if !ok || fn.Pkg().Path() != prog.Module+spec.pkg {
				return true
			}
			// The defining package may route names through its own
			// wrappers (trace.Start delegates to StartSpan with a
			// variable); call sites elsewhere are what must be constant.
			if pkg.Pkg == fn.Pkg() || len(call.Args) <= spec.arg {
				return true
			}
			callee := strings.TrimPrefix(spec.pkg, "/internal/") + "." + fn.Name()
			findings = append(findings, checkObsName(pkg, callee, call.Args[spec.arg])...)
			return true
		})
	}
	return findings
}

// checkObsName validates one name argument: in-package named constant,
// well-formed value.
func checkObsName(pkg *Package, callee string, arg ast.Expr) []Finding {
	pos := pkg.Position(arg.Pos())
	ident, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("name passed to %s must be an in-package string constant (got an expression); constants keep the metric inventory greppable", callee),
		}}
	}
	obj := pkg.Info.ObjectOf(ident)
	cst, ok := obj.(*types.Const)
	if !ok {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("name %q passed to %s must be a string constant, not a variable", ident.Name, callee),
		}}
	}
	if cst.Pkg() != pkg.Pkg {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("constant %s passed to %s is declared outside this package; declare metric names in the package that owns them", ident.Name, callee),
		}}
	}
	if cst.Val().Kind() != constant.String {
		return nil // not a string constant: the typechecker already rejected it
	}
	val := constant.StringVal(cst.Val())
	base, label := val, ""
	if i := strings.IndexByte(val, '{'); i >= 0 {
		base, label = val[:i], val[i:]
	}
	if !obsNameRE.MatchString(base) || (label != "" && !obsLabelRE.MatchString(label)) {
		return []Finding{{
			Pos:      pos,
			Analyzer: "obskeys",
			Message:  fmt.Sprintf("metric name %q does not match ^[a-z][a-z0-9_.]*$ (with optional {label=\"value\"} suffix)", val),
		}}
	}
	return nil
}
