// Package lint is the repo's custom static-analysis pass: a
// stdlib-only driver (go/parser + go/types with the source importer —
// no module dependencies) that loads every package in the module and
// runs repo-specific analyzers over the type-checked ASTs. Each
// analyzer encodes one invariant the reproduction's guarantees rest
// on — byte-identical determinism at any parallelism, zero
// allocations on the resolve hot path, lock discipline around the
// generation machinery, a drift-free metric inventory — so the
// invariants are machine-checked properties of the source instead of
// reviewer memory.
//
// Annotation grammar:
//
//	//repro:hotpath
//	    on a function declaration marks it part of the allocation-free
//	    hot path; the hotpath analyzer then bounds what it may call.
//
//	//lint:allow <analyzer> <reason>
//	    on the offending line (trailing) or the line above suppresses
//	    that analyzer's findings there. The reason is mandatory; the
//	    driver counts every suppression so escapes stay visible.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the analyzer that produced
// it, and the message.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name is the identifier //lint:allow comments reference.
	Name string
	// Doc is the one-line invariant description (for -list output and
	// the README inventory).
	Doc string
	// Run reports the analyzer's findings for one package. The driver
	// applies //lint:allow suppression afterwards, so Run reports
	// everything it sees.
	Run func(prog *Program, pkg *Package) []Finding
}

// Package is one type-checked package unit (a package's files plus
// its in-package test files; external _test packages load as their
// own unit).
type Package struct {
	// Path is the import path. Packages under a testdata/src fixture
	// tree get the path after "testdata/src/", so fixtures can
	// impersonate any package class.
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	fset  *token.FileSet
}

// Fset returns the file set positions resolve against.
func (p *Package) Fset() *token.FileSet { return p.fset }

// Position resolves a token.Pos.
func (p *Package) Position(pos token.Pos) token.Position { return p.fset.Position(pos) }

// allow is one parsed //lint:allow mark.
type allow struct {
	analyzer string
	reason   string
}

// Program is a loaded module (or fixture subset): every package unit,
// the cross-package facts analyzers need, and the //lint:allow marks.
type Program struct {
	Fset     *token.FileSet
	Module   string // module path from go.mod ("repro")
	Root     string // module root directory
	Packages []*Package

	// Hotpath is the set of //repro:hotpath-annotated functions, keyed
	// by funcID, collected across every loaded package so cross-package
	// hot calls (fabric -> obs) check against one fact base.
	Hotpath map[string]bool

	// allows maps filename -> line -> marks. A mark registered at line
	// L suppresses findings on L (trailing comment) and L+1 (comment on
	// the line above).
	allows map[string]map[int][]allow

	// malformed collects //lint:allow comments missing their mandatory
	// reason; they suppress nothing and are reported as findings.
	malformed []Finding
}

// FindModuleRoot walks up from dir to the enclosing go.mod and
// returns the root directory and module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks the packages selected by patterns
// (resolved relative to root): "dir" loads one directory, "dir/..."
// loads a subtree, "./..." the whole module. Walks skip testdata
// directories unless the pattern itself points into one, so fixture
// packages with seeded violations never leak into a module-wide run.
func Load(root, module string, patterns []string) (*Program, error) {
	prog := &Program{
		Fset:    token.NewFileSet(),
		Module:  module,
		Root:    root,
		Hotpath: make(map[string]bool),
		allows:  make(map[string]map[int][]allow),
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	imp := importer.ForCompiler(prog.Fset, "source", nil)
	for _, dir := range dirs {
		if err := prog.loadDir(dir, imp); err != nil {
			return nil, err
		}
	}
	prog.collectFacts()
	return prog, nil
}

// expandPattern resolves one pattern to package directories.
func expandPattern(root, pat string) ([]string, error) {
	recursive := strings.HasSuffix(pat, "...")
	base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	if base == "" || base == "." {
		base = root
	} else if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	info, err := os.Stat(base)
	if err != nil {
		return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
	}
	if !recursive {
		return []string{base}, nil
	}
	// A pattern explicitly rooted inside testdata means "lint the
	// fixtures"; any other walk must not descend into them.
	intoTestdata := strings.Contains(base, "testdata")
	var dirs []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			(name == "testdata" && !intoTestdata)) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor derives a unit's import path from its directory.
// Directories under a testdata/src tree take the path after that
// marker, so a fixture at testdata/src/repro/internal/core analyzes
// as package path "repro/internal/core".
func importPathFor(root, module, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	rel = filepath.ToSlash(rel)
	if _, after, ok := strings.Cut(rel+"/", "testdata/src/"); ok {
		return strings.TrimSuffix(after, "/")
	}
	return module + "/" + rel
}

// loadDir parses and checks the package units in one directory: the
// primary package (with its in-package test files) and, when present,
// the external _test package.
func (prog *Program) loadDir(dir string, imp types.Importer) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	units := make(map[string][]*ast.File)
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		name := f.Name.Name
		if units[name] == nil {
			names = append(names, name)
		}
		units[name] = append(units[name], f)
	}
	sort.Strings(names)
	basePath := importPathFor(prog.Root, prog.Module, dir)
	for _, name := range names {
		path := basePath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		pkg, err := prog.check(path, dir, units[name], imp)
		if err != nil {
			return err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return nil
}

// check type-checks one unit.
func (prog *Program) check(path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, prog.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info, fset: prog.Fset}, nil
}

// collectFacts gathers the cross-package fact base: //repro:hotpath
// annotations and //lint:allow marks.
func (prog *Program) collectFacts() {
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, "repro:hotpath") {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.Hotpath[FuncID(fn)] = true
				}
			}
			for _, group := range file.Comments {
				for _, c := range group.List {
					prog.recordAllow(c)
				}
			}
		}
	}
}

// hasDirective reports whether the doc group carries the directive
// comment (exact prefix match after "//", directive style).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// recordAllow parses one comment as a //lint:allow mark.
func (prog *Program) recordAllow(c *ast.Comment) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "lint:allow")
	if !ok {
		return
	}
	pos := prog.Fset.Position(c.Pos())
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		prog.malformed = append(prog.malformed, Finding{
			Pos:      pos,
			Analyzer: "lint",
			Message:  "malformed //lint:allow: want //lint:allow <analyzer> <reason> (the reason is mandatory)",
		})
		return
	}
	m := prog.allows[pos.Filename]
	if m == nil {
		m = make(map[int][]allow)
		prog.allows[pos.Filename] = m
	}
	end := prog.Fset.Position(c.End()).Line
	a := allow{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
	m[end] = append(m[end], a)
	m[end+1] = append(m[end+1], a)
}

// suppressed reports whether an allow mark covers the finding.
func (prog *Program) suppressed(f Finding) bool {
	for _, a := range prog.allows[f.Pos.Filename][f.Pos.Line] {
		if a.analyzer == f.Analyzer {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every loaded package, applies
// //lint:allow suppression, and returns the surviving findings
// (sorted by position) plus the per-analyzer suppression counts.
func (prog *Program) Run(analyzers []*Analyzer) (findings []Finding, suppressed map[string]int) {
	suppressed = make(map[string]int)
	findings = append(findings, prog.malformed...)
	// Nested walks (a map range inside a map range) can surface the
	// same diagnostic twice; identical findings collapse to one.
	seen := make(map[Finding]bool)
	for _, f := range findings {
		seen[f] = true
	}
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			for _, f := range a.Run(prog, pkg) {
				if seen[f] {
					continue
				}
				seen[f] = true
				if prog.suppressed(f) {
					suppressed[f.Analyzer]++
					continue
				}
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, suppressed
}

// Analyzers is the full pass list, in reporting order.
var Analyzers = []*Analyzer{
	NondeterminismAnalyzer,
	HotpathAnalyzer,
	LocksAnalyzer,
	ObskeysAnalyzer,
	BannedAnalyzer,
}

// FuncID names a function stably across packages:
// "pkg/path.Name" for functions, "pkg/path.(Type).Name" for methods
// (pointer receivers stripped, generic origins used).
func FuncID(fn *types.Func) string {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			return pkg.Path() + ".(" + t.Obj().Name() + ")." + fn.Name()
		default:
			return pkg.Path() + ".(?)." + fn.Name()
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(pos token.Position) bool {
	return strings.HasSuffix(pos.Filename, "_test.go")
}

// calleeFunc resolves a call expression's static callee, nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeBuiltin resolves a call's builtin (append, len, ...), nil
// when the call is not a builtin.
func calleeBuiltin(info *types.Info, call *ast.CallExpr) *types.Builtin {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b
		}
	}
	return nil
}
