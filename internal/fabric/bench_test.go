package fabric

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/xgft"
)

func benchFabric(b *testing.B) *Fabric { return benchFabricTelemetry(b, false) }

func benchFabricTelemetry(b *testing.B, telemetry bool) *Fabric {
	b.Helper()
	tp := xgft.MustNew(2, []int{16, 16}, []int{1, 16})
	f, err := New(Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: telemetry})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkResolve measures single-pair lock-free resolution on a
// cached generation.
func BenchmarkResolve(b *testing.B) {
	f := benchFabric(b)
	n := f.Topology().Leaves()
	h := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = hashutil.Splitmix64(h)
		s := int(h % uint64(n))
		d := int(h >> 32 % uint64(n))
		if _, ok := f.Resolve(s, d); !ok {
			b.Fatal("resolve failed")
		}
	}
}

// BenchmarkResolveBatch measures bulk resolution throughput; the
// routes/s metric is the fabric's serving-rate headline (target:
// >= 1M routes/s on a cached generation).
func BenchmarkResolveBatch(b *testing.B) {
	f := benchFabric(b)
	n := f.Topology().Leaves()
	const batch = 4096
	pairs := make([][2]int, batch)
	out := make([]xgft.Route, batch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ResolveBatch(pairs, out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkResolveBatchPacked measures the wire-speed hot path: bulk
// resolution into packed words (no route materialization, zero
// allocations) — what the binary resolve protocol serves per request.
func BenchmarkResolveBatchPacked(b *testing.B) {
	f := benchFabric(b)
	n := f.Topology().Leaves()
	const batch = 4096
	pairs := make([][2]int, batch)
	out := make([]uint64, batch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ResolveBatchPacked(pairs, out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkResolveBatchPackedObserved is the wire-speed hot path with
// full observability enabled — metrics registry, event journal and
// telemetry all attached. The bench gate holds it to the same
// regression budget as the bare path: per-batch instrumentation (two
// timestamps, a histogram observe, sharded counter adds) must stay in
// the noise.
func BenchmarkResolveBatchPackedObserved(b *testing.B) {
	tp := xgft.MustNew(2, []int{16, 16}, []int{1, 16})
	reg := obs.NewRegistry()
	f, err := New(Config{
		Topo: tp, Algo: core.NewDModK(tp),
		Telemetry: true, Metrics: reg, Journal: obs.NewJournal(64, nil),
	})
	if err != nil {
		b.Fatal(err)
	}
	n := tp.Leaves()
	const batch = 4096
	pairs := make([][2]int, batch)
	out := make([]uint64, batch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ResolveBatchPacked(pairs, out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkResolveBatchPackedTraced is the wire-speed hot path with
// full observability plus a tracer (sampling off — the production
// default): per batch the tracing layer adds one root mint, two clock
// reads and a flight-recorder write. The bench gate holds it to the
// same regression budget as the untraced observed path.
func BenchmarkResolveBatchPackedTraced(b *testing.B) {
	tp := xgft.MustNew(2, []int{16, 16}, []int{1, 16})
	reg := obs.NewRegistry()
	tr := trace.New(trace.Config{SampleNum: 0, SampleDen: 1, RecorderCap: 4096})
	f, err := New(Config{
		Topo: tp, Algo: core.NewDModK(tp),
		Telemetry: true, Metrics: reg, Journal: obs.NewJournal(64, nil),
		Tracer: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := tp.Leaves()
	const batch = 4096
	pairs := make([][2]int, batch)
	out := make([]uint64, batch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ResolveBatchPacked(pairs, out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkResolveTelemetry is BenchmarkResolve with the flow
// counters enabled: the acceptance bar is < 10% regression (one
// uncontended atomic add per resolve).
func BenchmarkResolveTelemetry(b *testing.B) {
	f := benchFabricTelemetry(b, true)
	n := f.Topology().Leaves()
	h := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = hashutil.Splitmix64(h)
		s := int(h % uint64(n))
		d := int(h >> 32 % uint64(n))
		if _, ok := f.Resolve(s, d); !ok {
			b.Fatal("resolve failed")
		}
	}
}

// BenchmarkResolveBatchTelemetry is the batch throughput headline
// with telemetry enabled.
func BenchmarkResolveBatchTelemetry(b *testing.B) {
	f := benchFabricTelemetry(b, true)
	n := f.Topology().Leaves()
	const batch = 4096
	pairs := make([][2]int, batch)
	out := make([]xgft.Route, batch)
	h := uint64(1)
	for i := range pairs {
		h = hashutil.Splitmix64(h)
		pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ResolveBatch(pairs, out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "routes/s")
}

// BenchmarkOptimize measures one full re-optimization pass (snapshot,
// four candidate scores, swap decision) over all-pairs traffic.
func BenchmarkOptimize(b *testing.B) {
	f := benchFabricTelemetry(b, true)
	n := f.Topology().Leaves()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				f.Resolve(s, d)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Optimize(OptimizeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// optimizeBenchFabric is the acceptance topology XGFT(2;16,16;1,10)
// with all-pairs traffic observed — the Optimize path the incremental
// scoring claim is benchmarked on.
func optimizeBenchFabric(b *testing.B) *Fabric {
	b.Helper()
	tp := xgft.MustNew(2, []int{16, 16}, []int{1, 10})
	f, err := New(Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: true})
	if err != nil {
		b.Fatal(err)
	}
	tel := f.Telemetry()
	n := tp.Leaves()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				tel.RecordN(s, d, 64)
			}
		}
	}
	// Converge once so the timed passes measure the steady churn
	// regime: serving table == best candidate, no swap per pass.
	if _, err := f.Optimize(OptimizeConfig{}); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkOptimizeIncremental measures a steady-state delta-path
// re-optimization pass on XGFT(2;16,16;1,10): candidates score as
// route-deltas against the serving generation's LoadState.
func BenchmarkOptimizeIncremental(b *testing.B) {
	f := optimizeBenchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Optimize(OptimizeConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Incremental {
			b.Fatal("pass did not take the delta path")
		}
	}
}

// BenchmarkOptimizeFullRebuild is the same pass forced onto the
// from-scratch path — the denominator of the incremental speedup.
func BenchmarkOptimizeFullRebuild(b *testing.B) {
	f := optimizeBenchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Optimize(OptimizeConfig{FullRebuild: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailLinkSwap measures a full degrade cycle: incremental
// patch, deadlock verification, and generation swap.
func BenchmarkFailLinkSwap(b *testing.B) {
	f := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.FailLink(1, i%16, i/16%16); err != nil {
			b.StopTimer()
			if _, err := f.Heal(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
	}
}

// BenchmarkHeal measures a cache-served full rebuild (the hot-swap
// back to the healthy table).
func BenchmarkHeal(b *testing.B) {
	f := benchFabric(b)
	if _, err := f.FailLink(1, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Heal(); err != nil {
			b.Fatal(err)
		}
	}
}
