package fabric

import (
	"fmt"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/trace"
	"repro/internal/xgft"
)

// The re-optimization loop: the paper's central observation is that
// no single oblivious scheme wins across traffic patterns — the best
// table depends on the pattern being run. A static fabric serves one
// scheme forever; Optimize instead snapshots the telemetry counters,
// scores the current generation against candidate tables (the
// oblivious baselines plus the pattern-aware Colored optimizer seeded
// with the observed pattern), and hot-swaps a better table in, the
// way robust-clustering estimators re-fit as the observed data
// distribution shifts.

// OptimizeConfig parameterizes one re-optimization pass.
type OptimizeConfig struct {
	// Threshold is the minimum relative improvement of the best
	// candidate over the current generation required to swap: 0.05
	// demands 5% lower analytic slowdown. 0 swaps on any strict
	// improvement.
	Threshold float64
	// MinFlows is the minimum number of distinct observed pairs below
	// which the pass is a no-op (not enough signal). Defaults to 1.
	MinFlows int
	// Seed feeds the randomized candidates (r-NCA-u/d) and the
	// Colored sampler. Defaults to 1, so passes are reproducible.
	Seed uint64
	// Reset zeroes the telemetry counters after the snapshot, making
	// each pass observe only the traffic since the previous one.
	Reset bool
}

func (c OptimizeConfig) withDefaults() OptimizeConfig {
	if c.MinFlows <= 0 {
		c.MinFlows = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CandidateScore is one candidate table's slowdown (under the
// fabric's evaluator) on the observed pattern.
type CandidateScore struct {
	Algo     string
	Slowdown float64
}

// OptimizeResult describes one re-optimization pass.
type OptimizeResult struct {
	// Pairs and Resolves describe the observed pattern: distinct
	// (src, dst) pairs and total recorded resolves.
	Pairs    int
	Resolves int64
	// Current is the serving generation's slowdown on the observed
	// pattern under the fabric's evaluator (1 exactly when the
	// pattern is contention-free under the current table).
	Current float64
	// Candidates lists every scored candidate in scoring order.
	Candidates []CandidateScore
	// Best names the best-scoring candidate; BestSlowdown its score.
	Best         string
	BestSlowdown float64
	// Swapped reports whether a new generation was installed; Stats
	// describes the generation serving after the pass either way.
	Swapped bool
	Stats   Stats
}

// allPairsIndex returns the index of pair (s, d) in the all-pairs
// probe pattern (s-major, self-pairs skipped) that fabric tables are
// aligned with.
func allPairsIndex(n, s, d int) int {
	i := s*(n-1) + d
	if d > s {
		i--
	}
	return i
}

// Optimize runs one telemetry-driven re-optimization pass: snapshot
// the flow counters, score the current generation and the candidate
// schemes (d-mod-k, r-NCA-u/d, and Colored seeded with the observed
// pattern — all served through the table cache) on the observed
// pattern with the fabric's evaluator (analytic slowdown bound by
// default, any evaluate.Evaluator by injection), and hot-swap the
// best candidate in if it improves on the serving table by more than
// the threshold.
//
// The pass composes with fault handling: candidates are patched
// through the current generation's degraded view before scoring and
// installation, so an optimize swap never resurrects a failed wire,
// and the pass serializes with FailLink/FailSwitch/Heal on the
// fabric's mutex while readers stay lock-free on the old generation.
// Heal still rebuilds the configured scheme's healthy table,
// discarding any optimized choice along with the faults.
func (f *Fabric) Optimize(cfg OptimizeConfig) (res OptimizeResult, err error) {
	if f.tel == nil {
		return OptimizeResult{}, fmt.Errorf("fabric: telemetry is disabled (enable Config.Telemetry)")
	}
	cfg = cfg.withDefaults()
	start := time.Now() //lint:allow nondeterminism optimizer wall time is observational (journal only)
	// The decision event records what the pass saw and what it decided
	// — every candidate's score, the winner, and the threshold verdict
	// — or the failure that aborted it. It lands after the swap event
	// publish fires, so a journal tail reads swap-then-why.
	defer func() { f.journalOptimize(res, err, cfg.Threshold, time.Since(start)) }() //lint:allow nondeterminism optimizer wall time is observational (journal only)
	// The pass span wraps scoring and the swap decision; a decision
	// outcome that flip-flops (swap, no-swap, swap again within the
	// detector window) is the instability anomaly the blackbox captures.
	sp := f.tracer.StartSpan(trace.SpanContext{}, spanOptimize)
	defer func() {
		sp.SetAttr(attrCandidates, int64(len(res.Candidates)))
		swapped := int64(0)
		if res.Swapped {
			swapped = 1
		}
		sp.SetAttr(attrSwapped, swapped)
		sp.End()
		if err == nil && f.tracer != nil && f.flips.Note(res.Swapped) {
			f.tracer.ReportAnomaly(trace.ReasonFlipFlop)
		}
	}()
	f.mu.Lock()
	defer f.mu.Unlock()

	obs := f.tel.SnapshotFlows()
	if cfg.Reset {
		f.tel.Reset()
	}
	cur := f.gen.Load()
	res = OptimizeResult{
		Pairs:    len(obs.Flows),
		Resolves: obs.TotalBytes(),
		Stats:    cur.stats,
	}
	if len(obs.Flows) < cfg.MinFlows {
		return res, nil
	}
	view := cur.view

	// Score the serving generation. Pairs whose minimal paths are all
	// severed are dropped from the scored pattern; every candidate is
	// patched through the same view with the same reroute search, so
	// the surviving flow set — and with it the comparison — is
	// identical across candidates.
	current, err := f.scoreRoutes(obs, func(s, d int) (xgft.Route, bool) {
		return cur.Resolve(s, d)
	})
	if err != nil {
		return res, err
	}
	res.Current = current

	var bestTbl *core.Table
	for _, cand := range f.candidates(obs, cfg.Seed) {
		cs := f.tracer.StartChild(sp.Context(), spanCandidate)
		tbl, err := f.cache.Build(f.topo, cand, f.pairs)
		if err != nil {
			cs.End()
			return res, fmt.Errorf("fabric: candidate %s: %w", cand.Name(), err)
		}
		n := f.topo.Leaves()
		score, err := f.scoreRoutes(obs, func(s, d int) (xgft.Route, bool) {
			return core.RerouteAvoiding(view, tbl.Routes[allPairsIndex(n, s, d)])
		})
		if err != nil {
			cs.End()
			return res, fmt.Errorf("fabric: candidate %s: %w", cand.Name(), err)
		}
		cs.SetAttr(attrSlowdownPPM, int64(score*1e6))
		cs.End()
		res.Candidates = append(res.Candidates, CandidateScore{Algo: cand.Name(), Slowdown: score})
		if bestTbl == nil || score < res.BestSlowdown {
			bestTbl = tbl
			res.Best, res.BestSlowdown = cand.Name(), score
		}
	}
	// Swap only on strict improvement beyond the threshold. Identical
	// tables score bit-identically, so a generation already serving
	// the best candidate never churns.
	if bestTbl == nil || res.Current-res.BestSlowdown <= cfg.Threshold*res.Current {
		return res, nil
	}
	gen, err := f.genFromTable(bestTbl, view, cur.stats.Seq+1, res.Best)
	if err != nil {
		return res, err
	}
	f.publish(gen, "optimize")
	res.Swapped = true
	res.Stats = gen.stats
	return res, nil
}

// journalOptimize records one pass's decision event ("optimize", or
// "optimize.error" for aborted passes) with per-candidate scores and
// the threshold verdict.
func (f *Fabric) journalOptimize(res OptimizeResult, err error, threshold float64, dur time.Duration) {
	if f.journal == nil {
		return
	}
	if err != nil {
		f.journal.Record(eventOptimizeError, dur, map[string]any{"error": err.Error()})
		return
	}
	cands := make([]map[string]any, len(res.Candidates))
	for i, c := range res.Candidates {
		cands[i] = map[string]any{"algo": c.Algo, "slowdown": c.Slowdown}
	}
	f.journal.Record(eventOptimize, dur, map[string]any{
		"pairs": res.Pairs, "resolves": res.Resolves,
		"current": res.Current, "candidates": cands,
		"best": res.Best, "best_slowdown": res.BestSlowdown,
		"threshold": threshold, "swapped": res.Swapped,
		"generation": res.Stats.Seq,
	})
}

// candidates enumerates the candidate schemes for an observed
// pattern, in scoring order. The Colored optimizer is memoized
// through the table cache (keyed by topology, pattern content and
// seed), so repeated passes over a stable pattern reuse it.
func (f *Fabric) candidates(obs *pattern.Pattern, seed uint64) []core.Algorithm {
	coloredKey := fmt.Sprintf("colored|%s|%d:%#x:%#x|%#x",
		f.topo, len(obs.Flows), obs.TotalBytes(), obs.Fingerprint(), seed)
	return []core.Algorithm{
		core.NewDModK(f.topo),
		core.NewRandomNCAUp(f.topo, seed),
		core.NewRandomNCADown(f.topo, seed),
		f.cache.MemoAlgorithm(coloredKey, func() core.Algorithm {
			return core.NewColored(f.topo, []*pattern.Pattern{obs}, core.ColoredConfig{Seed: seed})
		}),
	}
}

// scoreRoutes scores the observed pattern under the per-pair route
// function with the fabric's evaluator, dropping unreachable pairs
// from both the pattern and the normalization.
func (f *Fabric) scoreRoutes(obs *pattern.Pattern, route func(s, d int) (xgft.Route, bool)) (float64, error) {
	q := pattern.New(obs.N)
	routes := make([]xgft.Route, 0, len(obs.Flows))
	for _, fl := range obs.Flows {
		r, ok := route(fl.Src, fl.Dst)
		if !ok {
			continue
		}
		q.Add(fl.Src, fl.Dst, fl.Bytes)
		routes = append(routes, r)
	}
	res, err := f.eval.ScoreRoutes(f.topo, q, routes)
	if err != nil {
		return 0, err
	}
	return res.Slowdown, nil
}

// genFromTable packs a healthy all-pairs table into a generation
// under the given fault view: core.PatchTable (the same repair path
// FailLink uses) reroutes the routes riding failed wires and marks
// pairs with no surviving minimal path, which pack to the unreachable
// sentinel. The result must pass VerifyDeadlockFree or installation
// is refused.
func (f *Fabric) genFromTable(tbl *core.Table, view *xgft.View, seq uint64, algoName string) (*Generation, error) {
	start := time.Now() //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	patched, st, err := core.PatchTable(tbl, view)
	if err != nil {
		return nil, err
	}
	n := f.topo.Leaves()
	shards := make([][]uint64, n)
	for s := range shards {
		shards[s] = make([]uint64, n)
	}
	for i, fl := range f.pairs.Flows {
		r := patched.Routes[i]
		if r.Up == nil {
			shards[fl.Src][fl.Dst] = PackedUnreachable
			continue
		}
		shards[fl.Src][fl.Dst] = packRoute(r)
	}
	gen := &Generation{
		topo:   f.topo,
		view:   view,
		shards: shards,
		stats: Stats{
			Seq:            seq,
			Algo:           algoName,
			Routes:         len(f.pairs.Flows) - st.Unreachable,
			Patched:        st.Rerouted,
			Unreachable:    st.Unreachable,
			FailedWires:    view.FailedWires(),
			FailedSwitches: len(view.FailedSwitches()),
		},
	}
	if err := contention.VerifyDeadlockFree(f.topo, gen.Routes()); err != nil {
		return nil, fmt.Errorf("fabric: candidate table rejected: %w", err)
	}
	gen.stats.BuildTime = time.Since(start) //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	return gen, nil
}
