package fabric

import (
	"fmt"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/pattern"
	"repro/internal/trace"
	"repro/internal/xgft"
)

// The re-optimization loop: the paper's central observation is that
// no single oblivious scheme wins across traffic patterns — the best
// table depends on the pattern being run. A static fabric serves one
// scheme forever; Optimize instead snapshots the telemetry counters,
// scores the current generation against candidate tables (the
// oblivious baselines plus the pattern-aware Colored optimizer seeded
// with the observed pattern), and hot-swaps a better table in, the
// way robust-clustering estimators re-fit as the observed data
// distribution shifts.
//
// Scoring converges by deltas, not rebuilds: under the analytic
// evaluator the pass materializes the observed pattern's per-link
// loads once (evaluate.LoadState, seeded with the serving routes) and
// scores each candidate by applying only its route differences and
// reverting — O(touched links) per candidate instead of a full
// contention census. Candidates whose delta crosses the cutover (a
// structurally different table, not churn-scale drift) score with one
// flat pass instead, so the delta discipline never costs more than
// the rebuild it replaces. The winning table installs through the same
// delta discipline FailLink uses: rows that no candidate route
// changed are shared with the serving generation, only touched rows
// repack. Both fall back to the from-scratch path — a non-analytic
// evaluator (whose score is not a pure per-link load function), a
// candidate whose resolvable pair set diverges from the serving
// generation's, or an explicit OptimizeConfig.FullRebuild.

// OptimizeConfig parameterizes one re-optimization pass.
type OptimizeConfig struct {
	// Threshold is the minimum relative improvement of the best
	// candidate over the current generation required to swap: 0.05
	// demands 5% lower analytic slowdown. 0 swaps on any strict
	// improvement.
	Threshold float64
	// MinFlows is the minimum number of distinct observed pairs below
	// which the pass is a no-op (not enough signal). Defaults to 1.
	MinFlows int
	// Seed feeds the randomized candidates (r-NCA-u/d) and the
	// Colored sampler. Defaults to 1, so passes are reproducible.
	Seed uint64
	// Reset zeroes the telemetry counters after the snapshot, making
	// each pass observe only the traffic since the previous one.
	Reset bool
	// FullRebuild forces the from-scratch path: every candidate is
	// scored with a full evaluator pass and the winning table is
	// repacked row by row instead of patched by delta. Scores and swap
	// decisions are bit-identical either way (the churn sweep's
	// cross-mode check enforces it); the flag exists for that
	// comparison and as the escape hatch the architecture docs
	// describe.
	FullRebuild bool
}

func (c OptimizeConfig) withDefaults() OptimizeConfig {
	if c.MinFlows <= 0 {
		c.MinFlows = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CandidateScore is one candidate table's slowdown (under the
// fabric's evaluator) on the observed pattern.
type CandidateScore struct {
	Algo     string
	Slowdown float64
	// Touched counts the observed routes the candidate would change
	// relative to the serving generation. It is 0 when the difference
	// was never computed (a from-scratch pass, or a candidate whose
	// resolvable pair set diverged from the base); a candidate scored
	// from scratch because its delta crossed the cutover still reports
	// the measured delta.
	Touched int
	// Incremental reports whether the score came from the delta path.
	Incremental bool
}

// OptimizeResult describes one re-optimization pass.
type OptimizeResult struct {
	// Pairs and Resolves describe the observed pattern: distinct
	// (src, dst) pairs and total recorded resolves.
	Pairs    int
	Resolves int64
	// Current is the serving generation's slowdown on the observed
	// pattern under the fabric's evaluator (1 exactly when the
	// pattern is contention-free under the current table).
	Current float64
	// Candidates lists every scored candidate in scoring order.
	Candidates []CandidateScore
	// Best names the best-scoring candidate; BestSlowdown its score.
	Best         string
	BestSlowdown float64
	// Incremental reports whether candidate scoring ran on the delta
	// path; LinksTouched is the total per-link load updates it
	// performed (0 when from scratch).
	Incremental  bool
	LinksTouched uint64
	// SwapTouched counts the packed routes the installed generation
	// changed relative to its predecessor (0 when no swap happened or
	// the swap was a full rebuild).
	SwapTouched int
	// Swapped reports whether a new generation was installed; Stats
	// describes the generation serving after the pass either way.
	Swapped bool
	Stats   Stats
}

// allPairsIndex returns the index of pair (s, d) in the all-pairs
// probe pattern (s-major, self-pairs skipped) that fabric tables are
// aligned with.
func allPairsIndex(n, s, d int) int {
	i := s*(n-1) + d
	if d > s {
		i--
	}
	return i
}

// Optimize runs one telemetry-driven re-optimization pass: snapshot
// the flow counters, score the current generation and the candidate
// schemes (d-mod-k, r-NCA-u/d, and Colored seeded with the observed
// pattern — all served through the table cache) on the observed
// pattern with the fabric's evaluator (analytic slowdown bound by
// default, any evaluate.Evaluator by injection), and hot-swap the
// best candidate in if it improves on the serving table by more than
// the threshold.
//
// The pass composes with fault handling: candidates are patched
// through the current generation's degraded view before scoring and
// installation, so an optimize swap never resurrects a failed wire,
// and the pass serializes with FailLink/FailSwitch/Heal on the
// fabric's mutex while readers stay lock-free on the old generation.
// Heal still rebuilds the configured scheme's healthy table,
// discarding any optimized choice along with the faults.
func (f *Fabric) Optimize(cfg OptimizeConfig) (res OptimizeResult, err error) {
	if f.tel == nil {
		return OptimizeResult{}, fmt.Errorf("fabric: telemetry is disabled (enable Config.Telemetry)")
	}
	cfg = cfg.withDefaults()
	start := time.Now() //lint:allow nondeterminism optimizer wall time is observational (journal only)
	// The decision event records what the pass saw and what it decided
	// — every candidate's score, the winner, and the threshold verdict
	// — or the failure that aborted it. It lands after the swap event
	// publish fires, so a journal tail reads swap-then-why.
	defer func() { f.journalOptimize(res, err, cfg.Threshold, time.Since(start)) }() //lint:allow nondeterminism optimizer wall time is observational (journal only)
	// The pass span wraps scoring and the swap decision; a decision
	// outcome that flip-flops (swap, no-swap, swap again within the
	// detector window) is the instability anomaly the blackbox captures.
	sp := f.tracer.StartSpan(trace.SpanContext{}, spanOptimize)
	defer func() {
		sp.SetAttr(attrCandidates, int64(len(res.Candidates)))
		swapped := int64(0)
		if res.Swapped {
			swapped = 1
		}
		sp.SetAttr(attrSwapped, swapped)
		sp.End()
		if err == nil && f.tracer != nil && f.flips.Note(res.Swapped) {
			f.tracer.ReportAnomaly(trace.ReasonFlipFlop)
		}
	}()
	f.mu.Lock()
	defer f.mu.Unlock()

	obs := f.tel.SnapshotFlows()
	if cfg.Reset {
		f.tel.Reset()
	}
	cur := f.gen.Load()
	res = OptimizeResult{
		Pairs:    len(obs.Flows),
		Resolves: obs.TotalBytes(),
		Stats:    cur.stats,
	}
	if len(obs.Flows) < cfg.MinFlows {
		return res, nil
	}
	view := cur.view

	// Materialize the serving generation's base: the observed pattern
	// filtered to resolvable pairs, with the routes the fabric serves
	// today. Pairs whose minimal paths are all severed are dropped
	// from the scored pattern; every candidate is patched through the
	// same view with the same reroute search, so the surviving flow
	// set — and with it the comparison — is identical across
	// candidates (the delta scorer verifies per candidate and falls
	// back to from-scratch scoring if it ever were not).
	base := f.baseState(obs, cur)
	incremental := !cfg.FullRebuild && f.eval.Name() == evaluate.Analytic
	var ls *evaluate.LoadState
	if incremental {
		ls, err = evaluate.NewLoadState(f.topo, base.q, base.routes)
		if err != nil {
			return res, err
		}
		if f.reg != nil {
			ls.Instrument(f.reg)
		}
		res.Incremental = true
		res.Current = ls.Slowdown()
	} else {
		r, serr := f.eval.ScoreRoutes(f.topo, base.q, base.routes)
		if serr != nil {
			return res, serr
		}
		res.Current = r.Slowdown
	}

	var bestTbl *core.Table
	for _, cand := range f.candidates(obs, cfg.Seed) {
		cs := f.tracer.StartChild(sp.Context(), spanCandidate)
		tbl, err := f.cache.Build(f.topo, cand, f.pairs)
		if err != nil {
			cs.End()
			return res, fmt.Errorf("fabric: candidate %s: %w", cand.Name(), err)
		}
		score, err := f.scoreCandidate(obs, base, ls, view, tbl)
		if err != nil {
			cs.End()
			return res, fmt.Errorf("fabric: candidate %s: %w", cand.Name(), err)
		}
		score.Algo = cand.Name()
		if score.Incremental && f.m != nil {
			f.m.candIncremental.Inc()
		}
		cs.SetAttr(attrSlowdownPPM, int64(score.Slowdown*1e6))
		cs.End()
		res.Candidates = append(res.Candidates, score)
		if bestTbl == nil || score.Slowdown < res.BestSlowdown {
			bestTbl = tbl
			res.Best, res.BestSlowdown = cand.Name(), score.Slowdown
		}
	}
	if ls != nil {
		res.LinksTouched = ls.LinksTouched()
	}
	// Swap only on strict improvement beyond the threshold. Identical
	// tables score bit-identically, so a generation already serving
	// the best candidate never churns.
	if bestTbl == nil || res.Current-res.BestSlowdown <= cfg.Threshold*res.Current {
		return res, nil
	}
	var gen *Generation
	if cfg.FullRebuild {
		gen, err = f.genFromTable(bestTbl, view, cur.stats.Seq+1, res.Best)
	} else {
		gen, res.SwapTouched, err = f.genFromTableDelta(bestTbl, view, cur, res.Best)
	}
	if err != nil {
		return res, err
	}
	f.publish(gen, "optimize")
	res.Swapped = true
	res.Stats = gen.stats
	return res, nil
}

// optimizeBase is the serving generation's view of the observed
// pattern: the resolvable flows (q, routes aligned) plus, for each
// raw observed flow, its index into q (-1 when the pair is severed) —
// what the delta scorer diffs candidates against.
type optimizeBase struct {
	q      *pattern.Pattern
	routes []xgft.Route
	qIdx   []int
}

// baseState resolves every observed flow through the serving
// generation, mirroring the historical scoring filter exactly.
func (f *Fabric) baseState(obs *pattern.Pattern, cur *Generation) *optimizeBase {
	base := &optimizeBase{
		q:    pattern.New(obs.N),
		qIdx: make([]int, len(obs.Flows)),
	}
	for i, fl := range obs.Flows {
		r, ok := cur.Resolve(fl.Src, fl.Dst)
		if !ok {
			base.qIdx[i] = -1
			continue
		}
		base.qIdx[i] = len(base.q.Flows)
		base.q.Add(fl.Src, fl.Dst, fl.Bytes)
		base.routes = append(base.routes, r)
	}
	return base
}

// deltaScoreCutover sets where delta scoring stops paying: a
// candidate that changes more than 1/deltaScoreCutover of the
// observed routes is scored from scratch. Applying and reverting a
// near-total delta walks every link twice, which costs more than one
// flat census — the delta path is reserved for the steady-churn
// regime it wins in, where candidates drift from the serving table a
// few routes at a time.
const deltaScoreCutover = 4

// scoreCandidate scores one candidate table on the observed pattern.
// With a LoadState it computes the candidate's route differences
// against the base; a small delta is applied, read, and reverted —
// O(touched links) — while a delta past the cutover scores with one
// evaluator pass over the routes the diff already resolved. Without a
// LoadState (non-analytic evaluator, full rebuild) or for a candidate
// whose resolvable pair set diverges from the base, it scores from
// scratch, reproducing the historical path. Every path produces
// bit-identical scores: the loads are exact integer sums either way.
func (f *Fabric) scoreCandidate(obs *pattern.Pattern, base *optimizeBase, ls *evaluate.LoadState, view *xgft.View, tbl *core.Table) (CandidateScore, error) {
	n := f.topo.Leaves()
	if ls != nil {
		var flows []pattern.Flow
		var oldR, newR []xgft.Route
		candR := make([]xgft.Route, 0, len(base.routes))
		diverged := false
		for i, fl := range obs.Flows {
			r, ok := core.RerouteAvoiding(view, tbl.Routes[allPairsIndex(n, fl.Src, fl.Dst)])
			if ok != (base.qIdx[i] >= 0) {
				// The candidate resolves a different pair set than the
				// serving generation — the base loads are not a valid
				// starting point, so score this candidate from scratch.
				diverged = true
				break
			}
			if !ok {
				continue
			}
			candR = append(candR, r)
			qi := base.qIdx[i]
			if routeEqual(base.routes[qi], r) {
				continue
			}
			flows = append(flows, base.q.Flows[qi])
			oldR = append(oldR, base.routes[qi])
			newR = append(newR, r)
		}
		switch {
		case diverged:
			// Fall through to the historical route-function path below.
		case len(flows)*deltaScoreCutover > len(base.q.Flows):
			// The diff already resolved every candidate route, so the
			// from-scratch score is one evaluator pass over it.
			r, err := f.eval.ScoreRoutes(f.topo, base.q, candR)
			if err != nil {
				return CandidateScore{}, err
			}
			return CandidateScore{Slowdown: r.Slowdown, Touched: len(flows)}, nil
		default:
			if err := ls.ApplyRouteDelta(flows, oldR, newR); err != nil {
				return CandidateScore{}, err
			}
			score := ls.Slowdown()
			if err := ls.ApplyRouteDelta(flows, newR, oldR); err != nil {
				return CandidateScore{}, err
			}
			return CandidateScore{Slowdown: score, Touched: len(flows), Incremental: true}, nil
		}
	}
	score, err := f.scoreRoutes(obs, func(s, d int) (xgft.Route, bool) {
		return core.RerouteAvoiding(view, tbl.Routes[allPairsIndex(n, s, d)])
	})
	if err != nil {
		return CandidateScore{}, err
	}
	return CandidateScore{Slowdown: score}, nil
}

// routeEqual reports whether two routes between the same endpoints
// are the same path (equal ascents; the descent is destination-
// determined).
func routeEqual(a, b xgft.Route) bool {
	if len(a.Up) != len(b.Up) {
		return false
	}
	for i := range a.Up {
		if a.Up[i] != b.Up[i] {
			return false
		}
	}
	return true
}

// journalOptimize records one pass's decision event ("optimize", or
// "optimize.error" for aborted passes) with per-candidate scores and
// the threshold verdict, plus an "optimize.incremental" event for
// delta-path passes with their touched-route counts.
func (f *Fabric) journalOptimize(res OptimizeResult, err error, threshold float64, dur time.Duration) {
	if f.journal == nil {
		return
	}
	if err != nil {
		f.journal.Record(eventOptimizeError, dur, map[string]any{"error": err.Error()})
		return
	}
	cands := make([]map[string]any, len(res.Candidates))
	for i, c := range res.Candidates {
		cands[i] = map[string]any{"algo": c.Algo, "slowdown": c.Slowdown}
	}
	// The incremental detail event lands first so the decision event
	// stays the pass's last word and a journal tail still reads
	// swap-then-why.
	if res.Incremental {
		touched := make([]map[string]any, 0, len(res.Candidates))
		for _, c := range res.Candidates {
			touched = append(touched, map[string]any{"algo": c.Algo, "touched_routes": c.Touched, "incremental": c.Incremental})
		}
		f.journal.Record(eventOptimizeIncremental, dur, map[string]any{
			"pairs": res.Pairs, "candidates": touched,
			"links_touched": res.LinksTouched,
			"swap_touched":  res.SwapTouched, "swapped": res.Swapped,
		})
	}
	f.journal.Record(eventOptimize, dur, map[string]any{
		"pairs": res.Pairs, "resolves": res.Resolves,
		"current": res.Current, "candidates": cands,
		"best": res.Best, "best_slowdown": res.BestSlowdown,
		"threshold": threshold, "swapped": res.Swapped,
		"generation": res.Stats.Seq,
	})
}

// candidates enumerates the candidate schemes for an observed
// pattern, in scoring order. The Colored optimizer is memoized
// through the table cache (keyed by topology, pattern content and
// seed), so repeated passes over a stable pattern reuse it.
func (f *Fabric) candidates(obs *pattern.Pattern, seed uint64) []core.Algorithm {
	coloredKey := fmt.Sprintf("colored|%s|%d:%#x:%#x|%#x",
		f.topo, len(obs.Flows), obs.TotalBytes(), obs.Fingerprint(), seed)
	return []core.Algorithm{
		core.NewDModK(f.topo),
		core.NewRandomNCAUp(f.topo, seed),
		core.NewRandomNCADown(f.topo, seed),
		f.cache.MemoAlgorithm(coloredKey, func() core.Algorithm {
			return core.NewColored(f.topo, []*pattern.Pattern{obs}, core.ColoredConfig{Seed: seed})
		}),
	}
}

// scoreRoutes scores the observed pattern under the per-pair route
// function with the fabric's evaluator, dropping unreachable pairs
// from both the pattern and the normalization.
func (f *Fabric) scoreRoutes(obs *pattern.Pattern, route func(s, d int) (xgft.Route, bool)) (float64, error) {
	q := pattern.New(obs.N)
	routes := make([]xgft.Route, 0, len(obs.Flows))
	for _, fl := range obs.Flows {
		r, ok := route(fl.Src, fl.Dst)
		if !ok {
			continue
		}
		q.Add(fl.Src, fl.Dst, fl.Bytes)
		routes = append(routes, r)
	}
	res, err := f.eval.ScoreRoutes(f.topo, q, routes)
	if err != nil {
		return 0, err
	}
	return res.Slowdown, nil
}

// genFromTable packs a healthy all-pairs table into a generation
// under the given fault view: core.PatchTable (the same repair path
// FailLink uses) reroutes the routes riding failed wires and marks
// pairs with no surviving minimal path, which pack to the unreachable
// sentinel. The result must pass VerifyDeadlockFree or installation
// is refused.
func (f *Fabric) genFromTable(tbl *core.Table, view *xgft.View, seq uint64, algoName string) (*Generation, error) {
	start := time.Now() //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	patched, st, err := core.PatchTable(tbl, view)
	if err != nil {
		return nil, err
	}
	n := f.topo.Leaves()
	shards := make([][]uint64, n)
	for s := range shards {
		shards[s] = make([]uint64, n)
	}
	for i, fl := range f.pairs.Flows {
		r := patched.Routes[i]
		if r.Up == nil {
			shards[fl.Src][fl.Dst] = PackedUnreachable
			continue
		}
		shards[fl.Src][fl.Dst] = packRoute(r)
	}
	gen := &Generation{
		topo:   f.topo,
		view:   view,
		shards: shards,
		stats: Stats{
			Seq:            seq,
			Algo:           algoName,
			Routes:         len(f.pairs.Flows) - st.Unreachable,
			Patched:        st.Rerouted,
			Unreachable:    st.Unreachable,
			FailedWires:    view.FailedWires(),
			FailedSwitches: len(view.FailedSwitches()),
		},
	}
	if err := contention.VerifyDeadlockFree(f.topo, gen.Routes()); err != nil {
		return nil, fmt.Errorf("fabric: candidate table rejected: %w", err)
	}
	gen.stats.BuildTime = time.Since(start) //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	return gen, nil
}

// genFromTableDelta packs the winning table against the serving
// generation the way FailLink's patch does: rows whose packed routes
// are unchanged are shared with cur, and a row is cloned
// copy-on-write the first time one of its routes differs. The route
// set still flows through core.PatchTable (the same repair machinery)
// and the full VerifyDeadlockFree gate; only the packing is
// differential. Returns the number of packed routes that changed.
func (f *Fabric) genFromTableDelta(tbl *core.Table, view *xgft.View, cur *Generation, algoName string) (*Generation, int, error) {
	start := time.Now() //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	patched, st, err := core.PatchTable(tbl, view)
	if err != nil {
		return nil, 0, err
	}
	n := f.topo.Leaves()
	shards := make([][]uint64, n)
	copy(shards, cur.shards)
	touched := 0
	for i, fl := range f.pairs.Flows {
		r := patched.Routes[i]
		v := PackedUnreachable
		if r.Up != nil {
			v = packRoute(r)
		}
		if shards[fl.Src][fl.Dst] == v {
			continue
		}
		if isSameRow(shards[fl.Src], cur.shards[fl.Src]) {
			shards[fl.Src] = append([]uint64(nil), cur.shards[fl.Src]...)
		}
		shards[fl.Src][fl.Dst] = v
		touched++
	}
	gen := &Generation{
		topo:   f.topo,
		view:   view,
		shards: shards,
		stats: Stats{
			Seq:            cur.stats.Seq + 1,
			Algo:           algoName,
			Routes:         len(f.pairs.Flows) - st.Unreachable,
			Patched:        st.Rerouted,
			Unreachable:    st.Unreachable,
			FailedWires:    view.FailedWires(),
			FailedSwitches: len(view.FailedSwitches()),
		},
	}
	if err := contention.VerifyDeadlockFree(f.topo, gen.Routes()); err != nil {
		return nil, 0, fmt.Errorf("fabric: candidate table rejected: %w", err)
	}
	gen.stats.BuildTime = time.Since(start) //lint:allow nondeterminism candidate build time is observational (journal/metrics only)
	return gen, touched, nil
}

// isSameRow reports whether two row slices are the same array (the
// copy-on-write "not yet cloned" test).
func isSameRow(a, b []uint64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}
