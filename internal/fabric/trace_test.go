package fabric

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/xgft"
)

func tracedFabric(t testing.TB, tr *trace.Tracer) *Fabric {
	t.Helper()
	tp := xgft.MustNew(2, []int{8, 8}, []int{1, 8})
	reg := obs.NewRegistry()
	jnl := obs.NewJournal(64, nil)
	f, err := New(Config{
		Topo: tp, Algo: core.NewDModK(tp),
		Telemetry: true, Metrics: reg, Journal: jnl, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestTracedResolveBatchPackedZeroAllocs pins the acceptance bar:
// with tracing compiled in — tracer attached, flight recorder live —
// a packed batch on a fully observed fabric still allocates nothing,
// whether the trace is sampled or not.
func TestTracedResolveBatchPackedZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		num, den uint64
	}{
		{"sampling off", 0, 1},
		{"sampling on", 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New(trace.Config{SampleNum: tc.num, SampleDen: tc.den, RecorderCap: 64})
			f := tracedFabric(t, tr)
			n := f.Topology().Leaves()
			pairs := make([][2]int, 1024)
			out := make([]uint64, len(pairs))
			h := uint64(1)
			for i := range pairs {
				h = hashutil.Splitmix64(h)
				pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
			}
			f.ResolveBatchPacked(pairs, out) // warmup: intern span names
			if avg := testing.AllocsPerRun(100, func() {
				f.ResolveBatchPacked(pairs, out)
			}); avg != 0 {
				t.Fatalf("traced ResolveBatchPacked allocates %v per batch, want 0", avg)
			}
			root := tr.Root(1, 1)
			if avg := testing.AllocsPerRun(100, func() {
				f.ResolveBatchPackedTraced(root, pairs, out)
			}); avg != 0 {
				t.Fatalf("ResolveBatchPackedTraced allocates %v per batch, want 0", avg)
			}
		})
	}
}

// TestBatchSpanJoinsCallerTrace: a batch resolved under a caller's
// context lands in the flight recorder inside the caller's trace,
// annotated with the batch shape.
func TestBatchSpanJoinsCallerTrace(t *testing.T) {
	tr := trace.New(trace.Config{SampleNum: 1, SampleDen: 1, RecorderCap: 16})
	f := tracedFabric(t, tr)
	root := tr.Root(7, 9)
	pairs := [][2]int{{0, 9}, {1, 10}, {2, 2}}
	out := make([]uint64, len(pairs))
	resolved, gen := f.ResolveBatchPackedTraced(root, pairs, out)

	var rec trace.SpanRecord
	found := false
	for _, r := range tr.Spans(0) {
		if r.Name == "fabric.resolve_batch_packed" {
			rec, found = r, true
		}
	}
	if !found {
		t.Fatalf("no batch span recorded; spans: %+v", tr.Spans(0))
	}
	if rec.TraceID != root.Trace.String() {
		t.Errorf("span trace %s, want caller trace %s", rec.TraceID, root.Trace.String())
	}
	if !rec.Sampled {
		t.Error("span did not inherit the caller's sampling verdict")
	}
	if rec.Attrs["pairs"] != int64(len(pairs)) || rec.Attrs["resolved"] != int64(resolved) || rec.Attrs["gen"] != int64(gen) {
		t.Errorf("span attrs = %v (resolved %d gen %d)", rec.Attrs, resolved, gen)
	}

	// The plain entry point mints its own root: recorded, different
	// trace.
	f.ResolveBatchPacked(pairs, out)
	last := tr.Spans(1)[0]
	if last.Name != "fabric.resolve_batch_packed" {
		t.Fatalf("plain batch span missing: %+v", last)
	}
	if last.TraceID == rec.TraceID {
		t.Error("plain batch joined the caller's trace instead of minting a root")
	}
}

// TestOptimizeSpansAndFlipFlopAnomaly drives the optimize outcome
// through swap → hold → swap (via Heal discarding the optimized
// table): two outcome flips inside the detector window, which must
// report the flipflop anomaly. The pass spans carry the decision.
func TestOptimizeSpansAndFlipFlopAnomaly(t *testing.T) {
	var mu sync.Mutex
	var reasons []string
	tr := trace.New(trace.Config{
		SampleNum: 1, SampleDen: 1, RecorderCap: 128, AnomalyCooldown: -1,
		OnAnomaly: func(a trace.Anomaly) {
			mu.Lock()
			reasons = append(reasons, a.Reason)
			mu.Unlock()
		},
	})
	tp := xgft.MustNew(2, []int{8, 8}, []int{1, 4})
	reg := obs.NewRegistry()
	f, err := New(Config{Topo: tp, Algo: core.NewDModK(tp), Telemetry: true, Metrics: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	adv := adversarialPattern(tp)

	// Pass 1: the adversarial funnel makes a candidate win — swap.
	drive(t, f, adv)
	res, err := f.Optimize(OptimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Fatalf("pass 1 did not swap: %+v", res)
	}
	// Pass 2: same traffic, serving table already best — hold.
	res, err = f.Optimize(OptimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swapped {
		t.Fatalf("pass 2 re-swapped: %+v", res)
	}
	if got := len(reasons); got != 0 {
		t.Fatalf("anomaly after one flip: %v", reasons)
	}
	// Heal discards the optimized table; pass 3 swaps again — the
	// second flip inside the window.
	if _, err := f.Heal(); err != nil {
		t.Fatal(err)
	}
	res, err = f.Optimize(OptimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Fatalf("pass 3 did not swap: %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 1 || reasons[0] != trace.ReasonFlipFlop {
		t.Fatalf("anomalies = %v, want one %q", reasons, trace.ReasonFlipFlop)
	}

	// The pass spans recorded the decisions: three fabric.optimize
	// spans, the candidate children under the sampled ones.
	var passes, cands int
	for _, r := range tr.Spans(0) {
		switch r.Name {
		case "fabric.optimize":
			passes++
			if _, ok := r.Attrs["swapped"]; !ok {
				t.Errorf("optimize span lacks the swapped attr: %+v", r)
			}
		case "fabric.optimize.candidate":
			cands++
			if _, ok := r.Attrs["slowdown_ppm"]; !ok {
				t.Errorf("candidate span lacks slowdown_ppm: %+v", r)
			}
		}
	}
	if passes != 3 {
		t.Errorf("recorded %d optimize spans, want 3", passes)
	}
	if cands != 12 { // 4 candidates per pass
		t.Errorf("recorded %d candidate spans, want 12", cands)
	}

	// The span names the fabric exports cover everything recorded.
	names := map[string]bool{}
	for _, n := range SpanNames() {
		names[n] = true
	}
	for _, n := range tr.Names() {
		if !names[n] {
			t.Errorf("span %q recorded but missing from SpanNames()", n)
		}
	}
}

// TestTracedChurnRace is the tracing layer under the race detector:
// traced batches against live Optimize swaps, flight-recorder scrapes
// and anomaly-triggered blackbox dumps, all concurrent.
func TestTracedChurnRace(t *testing.T) {
	dir := t.TempDir()
	bb := &trace.Blackbox{Dir: dir}
	tr := trace.New(trace.Config{
		SampleNum: 1, SampleDen: 2, RecorderCap: 128,
		Budget: time.Hour, AnomalyCooldown: time.Millisecond,
		OnAnomaly: func(a trace.Anomaly) { bb.Dump(a.Reason) },
	})
	bb.Tracer = tr
	f := tracedFabric(t, tr)
	n := f.Topology().Leaves()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pairs := make([][2]int, 256)
			out := make([]uint64, len(pairs))
			h := uint64(w + 1)
			for i := range pairs {
				h = hashutil.Splitmix64(h)
				pairs[i] = [2]int{int(h % uint64(n)), int(h >> 32 % uint64(n))}
			}
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.ResolveBatchPackedTraced(tr.Root(uint64(w), i), pairs, out)
				f.ResolveBatchPacked(pairs, out)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.Optimize(OptimizeConfig{Threshold: 0.01})
			f.Heal()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range tr.Spans(32) {
				if r.Name == "" {
					t.Error("scraped a span with no name")
					return
				}
			}
			bb.Dump("scrape")
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if tr.SpanCount() == 0 {
		t.Fatal("no spans recorded under churn")
	}
	names, err := bb.List()
	if err != nil || len(names) == 0 {
		t.Fatalf("no blackbox bundles spooled: %v, %v", names, err)
	}
}
